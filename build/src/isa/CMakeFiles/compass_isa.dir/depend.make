# Empty dependencies file for compass_isa.
# This may be replaced when dependencies are built.
