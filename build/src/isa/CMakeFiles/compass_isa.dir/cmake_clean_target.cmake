file(REMOVE_RECURSE
  "libcompass_isa.a"
)
