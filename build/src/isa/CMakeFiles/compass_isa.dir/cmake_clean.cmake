file(REMOVE_RECURSE
  "CMakeFiles/compass_isa.dir/assembler.cpp.o"
  "CMakeFiles/compass_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/compass_isa.dir/interpreter.cpp.o"
  "CMakeFiles/compass_isa.dir/interpreter.cpp.o.d"
  "CMakeFiles/compass_isa.dir/program.cpp.o"
  "CMakeFiles/compass_isa.dir/program.cpp.o.d"
  "libcompass_isa.a"
  "libcompass_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
