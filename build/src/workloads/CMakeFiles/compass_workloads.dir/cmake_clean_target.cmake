file(REMOVE_RECURSE
  "libcompass_workloads.a"
)
