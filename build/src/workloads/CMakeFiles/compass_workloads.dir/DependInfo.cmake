
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/db/btree.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/db/btree.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/db/btree.cpp.o.d"
  "/root/repo/src/workloads/db/buffer_pool.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/db/buffer_pool.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/db/buffer_pool.cpp.o.d"
  "/root/repo/src/workloads/db/table.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/db/table.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/db/table.cpp.o.d"
  "/root/repo/src/workloads/db/tpcc.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/db/tpcc.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/db/tpcc.cpp.o.d"
  "/root/repo/src/workloads/db/tpcd.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/db/tpcd.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/db/tpcd.cpp.o.d"
  "/root/repo/src/workloads/db/wal.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/db/wal.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/db/wal.cpp.o.d"
  "/root/repo/src/workloads/runner.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/runner.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/runner.cpp.o.d"
  "/root/repo/src/workloads/sci/kernels.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/sci/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/sci/kernels.cpp.o.d"
  "/root/repo/src/workloads/web/fileset.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/web/fileset.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/web/fileset.cpp.o.d"
  "/root/repo/src/workloads/web/server.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/web/server.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/web/server.cpp.o.d"
  "/root/repo/src/workloads/web/trace.cpp" "src/workloads/CMakeFiles/compass_workloads.dir/web/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/compass_workloads.dir/web/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/compass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/compass_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/compass_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/compass_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/compass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/compass_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
