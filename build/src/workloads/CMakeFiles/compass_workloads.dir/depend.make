# Empty dependencies file for compass_workloads.
# This may be replaced when dependencies are built.
