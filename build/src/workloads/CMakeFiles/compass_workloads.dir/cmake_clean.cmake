file(REMOVE_RECURSE
  "CMakeFiles/compass_workloads.dir/db/btree.cpp.o"
  "CMakeFiles/compass_workloads.dir/db/btree.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/db/buffer_pool.cpp.o"
  "CMakeFiles/compass_workloads.dir/db/buffer_pool.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/db/table.cpp.o"
  "CMakeFiles/compass_workloads.dir/db/table.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/db/tpcc.cpp.o"
  "CMakeFiles/compass_workloads.dir/db/tpcc.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/db/tpcd.cpp.o"
  "CMakeFiles/compass_workloads.dir/db/tpcd.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/db/wal.cpp.o"
  "CMakeFiles/compass_workloads.dir/db/wal.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/runner.cpp.o"
  "CMakeFiles/compass_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/sci/kernels.cpp.o"
  "CMakeFiles/compass_workloads.dir/sci/kernels.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/web/fileset.cpp.o"
  "CMakeFiles/compass_workloads.dir/web/fileset.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/web/server.cpp.o"
  "CMakeFiles/compass_workloads.dir/web/server.cpp.o.d"
  "CMakeFiles/compass_workloads.dir/web/trace.cpp.o"
  "CMakeFiles/compass_workloads.dir/web/trace.cpp.o.d"
  "libcompass_workloads.a"
  "libcompass_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
