# Empty dependencies file for compass_dev.
# This may be replaced when dependencies are built.
