file(REMOVE_RECURSE
  "CMakeFiles/compass_dev.dir/device_hub.cpp.o"
  "CMakeFiles/compass_dev.dir/device_hub.cpp.o.d"
  "CMakeFiles/compass_dev.dir/disk.cpp.o"
  "CMakeFiles/compass_dev.dir/disk.cpp.o.d"
  "CMakeFiles/compass_dev.dir/ethernet.cpp.o"
  "CMakeFiles/compass_dev.dir/ethernet.cpp.o.d"
  "libcompass_dev.a"
  "libcompass_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
