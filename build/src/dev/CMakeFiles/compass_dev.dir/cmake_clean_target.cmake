file(REMOVE_RECURSE
  "libcompass_dev.a"
)
