file(REMOVE_RECURSE
  "libcompass_mem.a"
)
