
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/arena.cpp" "src/mem/CMakeFiles/compass_mem.dir/arena.cpp.o" "gcc" "src/mem/CMakeFiles/compass_mem.dir/arena.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/compass_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/compass_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/machine_numa.cpp" "src/mem/CMakeFiles/compass_mem.dir/machine_numa.cpp.o" "gcc" "src/mem/CMakeFiles/compass_mem.dir/machine_numa.cpp.o.d"
  "/root/repo/src/mem/machine_simple.cpp" "src/mem/CMakeFiles/compass_mem.dir/machine_simple.cpp.o" "gcc" "src/mem/CMakeFiles/compass_mem.dir/machine_simple.cpp.o.d"
  "/root/repo/src/mem/vm.cpp" "src/mem/CMakeFiles/compass_mem.dir/vm.cpp.o" "gcc" "src/mem/CMakeFiles/compass_mem.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/compass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/compass_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
