file(REMOVE_RECURSE
  "CMakeFiles/compass_mem.dir/arena.cpp.o"
  "CMakeFiles/compass_mem.dir/arena.cpp.o.d"
  "CMakeFiles/compass_mem.dir/cache.cpp.o"
  "CMakeFiles/compass_mem.dir/cache.cpp.o.d"
  "CMakeFiles/compass_mem.dir/machine_numa.cpp.o"
  "CMakeFiles/compass_mem.dir/machine_numa.cpp.o.d"
  "CMakeFiles/compass_mem.dir/machine_simple.cpp.o"
  "CMakeFiles/compass_mem.dir/machine_simple.cpp.o.d"
  "CMakeFiles/compass_mem.dir/vm.cpp.o"
  "CMakeFiles/compass_mem.dir/vm.cpp.o.d"
  "libcompass_mem.a"
  "libcompass_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
