# Empty compiler generated dependencies file for compass_mem.
# This may be replaced when dependencies are built.
