
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/backend_os.cpp" "src/os/CMakeFiles/compass_os.dir/backend_os.cpp.o" "gcc" "src/os/CMakeFiles/compass_os.dir/backend_os.cpp.o.d"
  "/root/repo/src/os/fs.cpp" "src/os/CMakeFiles/compass_os.dir/fs.cpp.o" "gcc" "src/os/CMakeFiles/compass_os.dir/fs.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/compass_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/compass_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/ksync.cpp" "src/os/CMakeFiles/compass_os.dir/ksync.cpp.o" "gcc" "src/os/CMakeFiles/compass_os.dir/ksync.cpp.o.d"
  "/root/repo/src/os/os_server.cpp" "src/os/CMakeFiles/compass_os.dir/os_server.cpp.o" "gcc" "src/os/CMakeFiles/compass_os.dir/os_server.cpp.o.d"
  "/root/repo/src/os/tcpip.cpp" "src/os/CMakeFiles/compass_os.dir/tcpip.cpp.o" "gcc" "src/os/CMakeFiles/compass_os.dir/tcpip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/compass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/compass_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/compass_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/compass_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
