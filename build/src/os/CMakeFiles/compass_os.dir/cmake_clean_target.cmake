file(REMOVE_RECURSE
  "libcompass_os.a"
)
