file(REMOVE_RECURSE
  "CMakeFiles/compass_os.dir/backend_os.cpp.o"
  "CMakeFiles/compass_os.dir/backend_os.cpp.o.d"
  "CMakeFiles/compass_os.dir/fs.cpp.o"
  "CMakeFiles/compass_os.dir/fs.cpp.o.d"
  "CMakeFiles/compass_os.dir/kernel.cpp.o"
  "CMakeFiles/compass_os.dir/kernel.cpp.o.d"
  "CMakeFiles/compass_os.dir/ksync.cpp.o"
  "CMakeFiles/compass_os.dir/ksync.cpp.o.d"
  "CMakeFiles/compass_os.dir/os_server.cpp.o"
  "CMakeFiles/compass_os.dir/os_server.cpp.o.d"
  "CMakeFiles/compass_os.dir/tcpip.cpp.o"
  "CMakeFiles/compass_os.dir/tcpip.cpp.o.d"
  "libcompass_os.a"
  "libcompass_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
