# Empty compiler generated dependencies file for compass_os.
# This may be replaced when dependencies are built.
