# Empty dependencies file for compass_stats.
# This may be replaced when dependencies are built.
