file(REMOVE_RECURSE
  "CMakeFiles/compass_stats.dir/counters.cpp.o"
  "CMakeFiles/compass_stats.dir/counters.cpp.o.d"
  "CMakeFiles/compass_stats.dir/report.cpp.o"
  "CMakeFiles/compass_stats.dir/report.cpp.o.d"
  "CMakeFiles/compass_stats.dir/time_breakdown.cpp.o"
  "CMakeFiles/compass_stats.dir/time_breakdown.cpp.o.d"
  "libcompass_stats.a"
  "libcompass_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
