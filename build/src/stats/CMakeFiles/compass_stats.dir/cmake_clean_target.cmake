file(REMOVE_RECURSE
  "libcompass_stats.a"
)
