
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/counters.cpp" "src/stats/CMakeFiles/compass_stats.dir/counters.cpp.o" "gcc" "src/stats/CMakeFiles/compass_stats.dir/counters.cpp.o.d"
  "/root/repo/src/stats/report.cpp" "src/stats/CMakeFiles/compass_stats.dir/report.cpp.o" "gcc" "src/stats/CMakeFiles/compass_stats.dir/report.cpp.o.d"
  "/root/repo/src/stats/time_breakdown.cpp" "src/stats/CMakeFiles/compass_stats.dir/time_breakdown.cpp.o" "gcc" "src/stats/CMakeFiles/compass_stats.dir/time_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
