file(REMOVE_RECURSE
  "CMakeFiles/compass_util.dir/flags.cpp.o"
  "CMakeFiles/compass_util.dir/flags.cpp.o.d"
  "CMakeFiles/compass_util.dir/rng.cpp.o"
  "CMakeFiles/compass_util.dir/rng.cpp.o.d"
  "libcompass_util.a"
  "libcompass_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
