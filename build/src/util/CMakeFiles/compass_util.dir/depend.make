# Empty dependencies file for compass_util.
# This may be replaced when dependencies are built.
