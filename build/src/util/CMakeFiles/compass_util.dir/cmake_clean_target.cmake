file(REMOVE_RECURSE
  "libcompass_util.a"
)
