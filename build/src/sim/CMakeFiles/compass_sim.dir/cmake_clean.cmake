file(REMOVE_RECURSE
  "CMakeFiles/compass_sim.dir/native_env.cpp.o"
  "CMakeFiles/compass_sim.dir/native_env.cpp.o.d"
  "CMakeFiles/compass_sim.dir/proc.cpp.o"
  "CMakeFiles/compass_sim.dir/proc.cpp.o.d"
  "CMakeFiles/compass_sim.dir/simulation.cpp.o"
  "CMakeFiles/compass_sim.dir/simulation.cpp.o.d"
  "libcompass_sim.a"
  "libcompass_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
