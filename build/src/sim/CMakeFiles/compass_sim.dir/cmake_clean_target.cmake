file(REMOVE_RECURSE
  "libcompass_sim.a"
)
