# Empty compiler generated dependencies file for compass_sim.
# This may be replaced when dependencies are built.
