file(REMOVE_RECURSE
  "CMakeFiles/compass_core.dir/backend.cpp.o"
  "CMakeFiles/compass_core.dir/backend.cpp.o.d"
  "CMakeFiles/compass_core.dir/communicator.cpp.o"
  "CMakeFiles/compass_core.dir/communicator.cpp.o.d"
  "CMakeFiles/compass_core.dir/event_port.cpp.o"
  "CMakeFiles/compass_core.dir/event_port.cpp.o.d"
  "CMakeFiles/compass_core.dir/frontend.cpp.o"
  "CMakeFiles/compass_core.dir/frontend.cpp.o.d"
  "CMakeFiles/compass_core.dir/proc_sched.cpp.o"
  "CMakeFiles/compass_core.dir/proc_sched.cpp.o.d"
  "CMakeFiles/compass_core.dir/sim_context.cpp.o"
  "CMakeFiles/compass_core.dir/sim_context.cpp.o.d"
  "libcompass_core.a"
  "libcompass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
