file(REMOVE_RECURSE
  "libcompass_core.a"
)
