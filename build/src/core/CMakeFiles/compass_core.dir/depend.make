# Empty dependencies file for compass_core.
# This may be replaced when dependencies are built.
