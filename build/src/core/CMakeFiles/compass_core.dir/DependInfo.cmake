
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/compass_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/compass_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/communicator.cpp" "src/core/CMakeFiles/compass_core.dir/communicator.cpp.o" "gcc" "src/core/CMakeFiles/compass_core.dir/communicator.cpp.o.d"
  "/root/repo/src/core/event_port.cpp" "src/core/CMakeFiles/compass_core.dir/event_port.cpp.o" "gcc" "src/core/CMakeFiles/compass_core.dir/event_port.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/core/CMakeFiles/compass_core.dir/frontend.cpp.o" "gcc" "src/core/CMakeFiles/compass_core.dir/frontend.cpp.o.d"
  "/root/repo/src/core/proc_sched.cpp" "src/core/CMakeFiles/compass_core.dir/proc_sched.cpp.o" "gcc" "src/core/CMakeFiles/compass_core.dir/proc_sched.cpp.o.d"
  "/root/repo/src/core/sim_context.cpp" "src/core/CMakeFiles/compass_core.dir/sim_context.cpp.o" "gcc" "src/core/CMakeFiles/compass_core.dir/sim_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/compass_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
