# Empty compiler generated dependencies file for bench_os_server.
# This may be replaced when dependencies are built.
