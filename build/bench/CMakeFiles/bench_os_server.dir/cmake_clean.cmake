file(REMOVE_RECURSE
  "CMakeFiles/bench_os_server.dir/bench_os_server.cpp.o"
  "CMakeFiles/bench_os_server.dir/bench_os_server.cpp.o.d"
  "bench_os_server"
  "bench_os_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_os_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
