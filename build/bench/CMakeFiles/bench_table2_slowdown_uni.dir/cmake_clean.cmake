file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_slowdown_uni.dir/bench_table2_slowdown_uni.cpp.o"
  "CMakeFiles/bench_table2_slowdown_uni.dir/bench_table2_slowdown_uni.cpp.o.d"
  "bench_table2_slowdown_uni"
  "bench_table2_slowdown_uni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_slowdown_uni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
