# Empty compiler generated dependencies file for bench_table2_slowdown_uni.
# This may be replaced when dependencies are built.
