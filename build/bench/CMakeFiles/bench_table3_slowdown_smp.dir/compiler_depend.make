# Empty compiler generated dependencies file for bench_table3_slowdown_smp.
# This may be replaced when dependencies are built.
