file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_slowdown_smp.dir/bench_table3_slowdown_smp.cpp.o"
  "CMakeFiles/bench_table3_slowdown_smp.dir/bench_table3_slowdown_smp.cpp.o.d"
  "bench_table3_slowdown_smp"
  "bench_table3_slowdown_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_slowdown_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
