
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_slowdown_smp.cpp" "bench/CMakeFiles/bench_table3_slowdown_smp.dir/bench_table3_slowdown_smp.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_slowdown_smp.dir/bench_table3_slowdown_smp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/compass_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/compass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/compass_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/compass_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/compass_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/compass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/compass_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
