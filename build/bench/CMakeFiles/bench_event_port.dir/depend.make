# Empty dependencies file for bench_event_port.
# This may be replaced when dependencies are built.
