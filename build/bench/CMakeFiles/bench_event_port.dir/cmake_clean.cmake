file(REMOVE_RECURSE
  "CMakeFiles/bench_event_port.dir/bench_event_port.cpp.o"
  "CMakeFiles/bench_event_port.dir/bench_event_port.cpp.o.d"
  "bench_event_port"
  "bench_event_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
