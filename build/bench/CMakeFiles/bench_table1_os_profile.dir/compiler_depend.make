# Empty compiler generated dependencies file for bench_table1_os_profile.
# This may be replaced when dependencies are built.
