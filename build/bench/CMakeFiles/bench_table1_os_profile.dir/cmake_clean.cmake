file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_os_profile.dir/bench_table1_os_profile.cpp.o"
  "CMakeFiles/bench_table1_os_profile.dir/bench_table1_os_profile.cpp.o.d"
  "bench_table1_os_profile"
  "bench_table1_os_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_os_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
