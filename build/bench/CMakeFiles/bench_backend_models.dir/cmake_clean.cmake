file(REMOVE_RECURSE
  "CMakeFiles/bench_backend_models.dir/bench_backend_models.cpp.o"
  "CMakeFiles/bench_backend_models.dir/bench_backend_models.cpp.o.d"
  "bench_backend_models"
  "bench_backend_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backend_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
