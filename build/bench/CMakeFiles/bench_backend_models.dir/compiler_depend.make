# Empty compiler generated dependencies file for bench_backend_models.
# This may be replaced when dependencies are built.
