file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mmap.dir/bench_ablation_mmap.cpp.o"
  "CMakeFiles/bench_ablation_mmap.dir/bench_ablation_mmap.cpp.o.d"
  "bench_ablation_mmap"
  "bench_ablation_mmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
