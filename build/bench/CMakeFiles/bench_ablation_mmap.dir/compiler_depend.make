# Empty compiler generated dependencies file for bench_ablation_mmap.
# This may be replaced when dependencies are built.
