# Empty dependencies file for sci_kernel.
# This may be replaced when dependencies are built.
