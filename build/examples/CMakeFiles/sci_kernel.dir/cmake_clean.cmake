file(REMOVE_RECURSE
  "CMakeFiles/sci_kernel.dir/sci_kernel.cpp.o"
  "CMakeFiles/sci_kernel.dir/sci_kernel.cpp.o.d"
  "sci_kernel"
  "sci_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
