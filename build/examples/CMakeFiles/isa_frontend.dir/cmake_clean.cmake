file(REMOVE_RECURSE
  "CMakeFiles/isa_frontend.dir/isa_frontend.cpp.o"
  "CMakeFiles/isa_frontend.dir/isa_frontend.cpp.o.d"
  "isa_frontend"
  "isa_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
