# Empty dependencies file for isa_frontend.
# This may be replaced when dependencies are built.
