file(REMOVE_RECURSE
  "CMakeFiles/oltp_server.dir/oltp_server.cpp.o"
  "CMakeFiles/oltp_server.dir/oltp_server.cpp.o.d"
  "oltp_server"
  "oltp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
