# Empty compiler generated dependencies file for oltp_server.
# This may be replaced when dependencies are built.
