file(REMOVE_RECURSE
  "CMakeFiles/numa_placement.dir/numa_placement.cpp.o"
  "CMakeFiles/numa_placement.dir/numa_placement.cpp.o.d"
  "numa_placement"
  "numa_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
