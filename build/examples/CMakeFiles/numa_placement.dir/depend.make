# Empty dependencies file for numa_placement.
# This may be replaced when dependencies are built.
