# Empty dependencies file for os_server_test.
# This may be replaced when dependencies are built.
