file(REMOVE_RECURSE
  "CMakeFiles/os_server_test.dir/os_server_test.cpp.o"
  "CMakeFiles/os_server_test.dir/os_server_test.cpp.o.d"
  "os_server_test"
  "os_server_test.pdb"
  "os_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
