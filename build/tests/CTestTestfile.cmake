# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/dev_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/os_server_test[1]_include.cmake")
