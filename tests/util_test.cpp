// Unit tests for util: RNG determinism/distribution, Zipf, flags, checks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/check.h"
#include "util/flags.h"
#include "util/rng.h"

namespace compass::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformityRoughly) {
  Rng r(11);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(10)];
  for (const auto& [_, c] : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Rng, NurandWithinBounds) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.nurand(255, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng r(17);
  Zipf z(100, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[z.next(r)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng r(19);
  Zipf z(10, 0.0);
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.next(r)];
  for (const auto& [_, c] : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Zipf, AllRanksReachable) {
  Rng r(23);
  Zipf z(5, 0.5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(z.next(r));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Check, ThrowsWithMessage) {
  try {
    COMPASS_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { COMPASS_CHECK(2 + 2 == 4); }

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "hello"};
  Flags f(4, argv, {{"alpha", "0"}, {"beta", "x"}});
  EXPECT_EQ(f.get_int("alpha"), 3);
  EXPECT_EQ(f.get("beta"), "hello");
}

TEST(Flags, DefaultsApply) {
  const char* argv[] = {"prog"};
  Flags f(1, argv, {{"gamma", "2.5"}});
  EXPECT_DOUBLE_EQ(f.get_double("gamma"), 2.5);
}

TEST(Flags, BareBooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  Flags f(2, argv, {{"verbose", "false"}});
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(Flags(2, argv, {}), ConfigError);
}

TEST(Flags, BadIntThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags f(2, argv, {{"n", "0"}});
  EXPECT_THROW(f.get_int("n"), ConfigError);
}

TEST(Flags, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Flags f(2, argv, {{"n", "0"}});
  EXPECT_TRUE(f.help_requested());
  EXPECT_NE(f.usage("prog").find("--n"), std::string::npos);
}

TEST(Flags, PositionalCollected) {
  const char* argv[] = {"prog", "one", "two"};
  Flags f(3, argv, {});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "one");
}

}  // namespace
}  // namespace compass::util
