// Direct tests of the OS-server protocol (paper §3.1–3.2): OS-thread
// pairing on first call, kernel-mode event generation on the client's
// event port, pseudo-interrupt forwarding for user-mode processes, and
// inline handling for kernel-mode code.
#include <gtest/gtest.h>

#include "os/fs.h"
#include "sim/simulation.h"

namespace compass {
namespace {

using sim::Proc;
using sim::Simulation;
using sim::SimulationConfig;

SimulationConfig cfg(int cpus = 2) {
  SimulationConfig c;
  c.core.num_cpus = cpus;
  return c;
}

TEST(OsServerProtocol, ThreadsPairOnFirstCallOnly) {
  Simulation sim(cfg());
  std::atomic<int> paired_before{-1}, paired_after{-1};
  sim.spawn("a", [&](Proc& p) {
    paired_before = sim.os_server().paired_threads();
    p.getpid();  // first OS call triggers the connection request
    paired_after = sim.os_server().paired_threads();
    p.getpid();  // second call reuses the pairing
    EXPECT_EQ(sim.os_server().paired_threads(), paired_after.load());
  });
  sim.run();
  EXPECT_EQ(paired_before.load(), 0);
  EXPECT_EQ(paired_after.load(), 1);
}

TEST(OsServerProtocol, EachClientGetsItsOwnThread) {
  Simulation sim(cfg(2));
  for (int i = 0; i < 3; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    sim.spawn(name, [](Proc& p) {
      p.getpid();
      p.ctx().compute(10'000);
      p.getpid();
    });
  }
  sim.run();
  EXPECT_EQ(sim.os_server().num_os_threads(), 3);
  EXPECT_EQ(sim.os_server().paired_threads(), 3);
}

TEST(OsServerProtocol, GetpidReturnsProcId) {
  Simulation sim(cfg());
  std::atomic<std::int64_t> pid0{-1}, pid1{-1};
  // Process ids are allocated in registration order after the OS server's
  // bottom halves and netd; compare relative values instead of absolutes.
  sim.spawn("a", [&](Proc& p) { pid0 = p.getpid(); });
  sim.spawn("b", [&](Proc& p) { pid1 = p.getpid(); });
  sim.run();
  EXPECT_GE(pid0.load(), 0);
  EXPECT_EQ(pid1.load(), pid0.load() + 1);
}

TEST(OsServerProtocol, KernelEventsBilledToClientCpu) {
  // A single process on one CPU makes a file-writing OS call; all kernel
  // events must land on that same CPU's accounting (the OS thread adopts
  // the client's event port).
  Simulation sim(cfg(2));
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.creat("/k");
    const Addr buf = p.alloc(4096);
    p.write_fd(fd, buf, 4096);
    p.close(fd);
  });
  sim.run();
  const auto& tb = sim.breakdown();
  // The OS thread adopts the client's port, so kernel time lands on the
  // CPU the client ran on (the one with its user time), not elsewhere.
  const CpuId app_cpu =
      tb.cpu(0)[ExecMode::kUser] > tb.cpu(1)[ExecMode::kUser] ? 0 : 1;
  const CpuId other = 1 - app_cpu;
  EXPECT_GT(tb.cpu(app_cpu)[ExecMode::kKernel], 0u);
  EXPECT_GT(tb.cpu(app_cpu)[ExecMode::kKernel],
            5 * tb.cpu(other)[ExecMode::kKernel]);
}

TEST(OsServerProtocol, PseudoInterruptRunsInInterruptMode) {
  // A user-mode process doing pure user work while a disk I/O from another
  // process completes: the user-mode process forwards a pseudo interrupt
  // request to its OS thread, and the handler's time lands in the
  // interrupt column.
  Simulation sim(cfg(1));
  std::vector<std::uint8_t> content(4096, 1);
  sim.kernel().fs().populate("/io", content);
  sim.spawn("io", [&](Proc& p) {
    const auto fd = p.open("/io");
    const Addr buf = p.alloc(4096);
    p.read_fd(fd, buf, 4096);  // blocks on the disk
    p.close(fd);
  });
  sim.spawn("user", [&](Proc& p) {
    // Pure user-mode loop long enough to be on-CPU when the disk
    // completion interrupt arrives.
    for (int i = 0; i < 3000; ++i) {
      p.ctx().compute(200);
      p.ctx().load(0x40, 8);
    }
  });
  sim.run();
  EXPECT_GT(sim.breakdown().total()[ExecMode::kInterrupt], 0u);
  EXPECT_GT(sim.stats().counter_value("os.interrupts"), 0u);
}

TEST(OsServerProtocol, CategoryTwoCallsBypassTheOsServer) {
  // shmget/shmat are category 2: they must not pair an OS thread.
  Simulation sim(cfg());
  std::atomic<int> paired{-1};
  sim.spawn("app", [&](Proc& p) {
    const auto segid = p.shmget(1, 4096);
    const auto base = p.shmat(segid);
    EXPECT_GT(base, 0);
    paired = sim.os_server().paired_threads();
  });
  sim.run();
  EXPECT_EQ(paired.load(), 0);
}

TEST(OsServerProtocol, SimOffRegionStillAllowsOsCalls) {
  // The paper's event-generation control flag (signal handlers, static
  // constructors): instrumentation off, but OS calls must still function.
  Simulation sim(cfg());
  std::int64_t fd = -1;
  std::uint64_t refs_during_off = 0;
  sim.spawn("app", [&](Proc& p) {
    const std::uint64_t before = sim.stats().counter_value("backend.mem_refs");
    {
      core::SimContext::SimOff off(p.ctx());
      p.ctx().load(0x99, 8);  // suppressed
      fd = p.creat("/sig");   // functional: kernel events still flow
    }
    refs_during_off = sim.stats().counter_value("backend.mem_refs") - before;
    p.close(fd);
  });
  sim.run();
  EXPECT_GE(fd, 0);
  // Kernel-side references happened, but not the suppressed user load.
  EXPECT_GT(refs_during_off, 0u);
  EXPECT_TRUE(sim.kernel().fs().exists("/sig"));
}

}  // namespace
}  // namespace compass
