// Tests for the checkpoint/restore subsystem (src/ckpt/): state-io
// primitives, checkpoint-file robustness against malformed input, and the
// golden restore-equivalence property — a run restored from cycle T must
// produce byte-identical traces and golden-matching counters versus the
// uninterrupted run — crossed with backend workers, the frontend L1 filter,
// an enabled fault plan, and both warp paths (sharded self-serve vs legacy
// port-paced), plus structural rejection of malformed warp-shard sections.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "trace/golden.h"
#include "trace/trace_recorder.h"
#include "util/state_io.h"
#include "workloads/runner.h"

namespace compass {
namespace {

using util::StateError;
using util::StateSink;
using util::StateSource;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "compass_ckpt_test." + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
  std::fclose(f);
  return bytes;
}

// ---- state-io primitives ---------------------------------------------------

TEST(StateIo, VarintRoundTrip) {
  StateSink sink;
  const std::uint64_t values[] = {0,     1,          127,        128,
                                  16383, 16384,      0xDEADBEEF, 1ull << 62,
                                  ~0ull, 0x80,       0x3FFF,     42};
  for (const std::uint64_t v : values) sink.varint(v);
  StateSource src({sink.bytes().data(), sink.bytes().size()});
  for (const std::uint64_t v : values) EXPECT_EQ(src.varint(), v);
  EXPECT_TRUE(src.at_end());
}

TEST(StateIo, SvarintRoundTrip) {
  StateSink sink;
  const std::int64_t values[] = {0, 1, -1, 63, -64, 1ll << 40, -(1ll << 40),
                                 INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values) sink.svarint(v);
  StateSource src({sink.bytes().data(), sink.bytes().size()});
  for (const std::int64_t v : values) EXPECT_EQ(src.svarint(), v);
  EXPECT_TRUE(src.at_end());
}

TEST(StateIo, VarintRejectsTruncation) {
  StateSink sink;
  sink.varint(1ull << 40);
  std::vector<std::uint8_t> buf = sink.take();
  buf.pop_back();  // drop the terminating byte
  StateSource src({buf.data(), buf.size()});
  EXPECT_THROW(src.varint(), StateError);
}

TEST(StateIo, VarintRejectsOverlongEncoding) {
  const std::vector<std::uint8_t> buf(11, 0x80);
  StateSource src({buf.data(), buf.size()});
  EXPECT_THROW(src.varint(), StateError);
}

TEST(StateIo, ScalarAndBlobRoundTrip) {
  StateSink sink;
  sink.u8(0xAB);
  sink.u32le(0x01020304);
  sink.u64le(0x1122334455667788ull);
  sink.str("quiescent");
  const std::uint8_t payload[] = {9, 8, 7};
  sink.blob({payload, 3});
  StateSource src({sink.bytes().data(), sink.bytes().size()});
  EXPECT_EQ(src.u8(), 0xAB);
  EXPECT_EQ(src.u32le(), 0x01020304u);
  EXPECT_EQ(src.u64le(), 0x1122334455667788ull);
  EXPECT_EQ(src.str(), "quiescent");
  const auto got = src.blob();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2], 7);
  EXPECT_TRUE(src.at_end());
}

TEST(StateIo, TruncatedBlobThrows) {
  StateSink sink;
  const std::vector<std::uint8_t> payload(64, 0x5A);
  sink.blob({payload.data(), payload.size()});
  std::vector<std::uint8_t> buf = sink.take();
  buf.resize(buf.size() - 10);
  StateSource src({buf.data(), buf.size()});
  EXPECT_THROW(src.blob(), StateError);
}

// ---- checkpoint-file format ------------------------------------------------

ckpt::CheckpointFile make_test_file() {
  ckpt::CheckpointFile f;
  f.config = {{3, 17}, {7, 1}};
  f.meta = {{"workload", "sci"}, {"n", "8"}};
  f.target = 1000;
  f.quiescent = 1034;
  f.nprocs = 4;
  f.sections[static_cast<std::uint8_t>(ckpt::SectionId::kWarpLog)] = {1, 2, 3};
  f.sections[static_cast<std::uint8_t>(ckpt::SectionId::kStats)] = {0, 9};
  return f;
}

TEST(CkptFormat, EncodeDecodeRoundTrip) {
  const ckpt::CheckpointFile f = make_test_file();
  const std::vector<std::uint8_t> bytes = ckpt::encode_file(f);
  const ckpt::CheckpointFile g = ckpt::decode_file(bytes);
  EXPECT_EQ(g.config, f.config);
  EXPECT_EQ(g.meta, f.meta);
  EXPECT_EQ(g.target, f.target);
  EXPECT_EQ(g.quiescent, f.quiescent);
  EXPECT_EQ(g.nprocs, f.nprocs);
  EXPECT_EQ(g.sections, f.sections);
  EXPECT_TRUE(g.has_section(ckpt::SectionId::kStats));
  EXPECT_FALSE(g.has_section(ckpt::SectionId::kVm));
  EXPECT_THROW(g.section(ckpt::SectionId::kVm), StateError);
}

TEST(CkptFormat, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = ckpt::encode_file(make_test_file());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(ckpt::decode_file(bytes), StateError);
}

TEST(CkptFormat, RejectsUnknownVersion) {
  std::vector<std::uint8_t> bytes = ckpt::encode_file(make_test_file());
  bytes[8] += 1;  // version u32 LE sits right after the 8-byte magic
  EXPECT_THROW(ckpt::decode_file(bytes), StateError);
}

TEST(CkptFormat, RejectsCorruptedSectionPayload) {
  std::vector<std::uint8_t> bytes = ckpt::encode_file(make_test_file());
  bytes.back() ^= 0x01;  // last byte of the last section payload
  EXPECT_THROW(ckpt::decode_file(bytes), StateError);
}

TEST(CkptFormat, RejectsCorruptedConfigBlock) {
  const ckpt::CheckpointFile f = make_test_file();
  std::vector<std::uint8_t> bytes = ckpt::encode_file(f);
  // The config block starts right after magic+version+hash (8+4+8 bytes);
  // flipping its first byte must trip the config fingerprint.
  bytes[20] ^= 0x01;
  EXPECT_THROW(ckpt::decode_file(bytes), StateError);
}

TEST(CkptFormat, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> bytes = ckpt::encode_file(make_test_file());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        ckpt::decode_file({bytes.data(), len}), StateError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(CkptFormat, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = ckpt::encode_file(make_test_file());
  bytes.push_back(0);
  EXPECT_THROW(ckpt::decode_file(bytes), StateError);
}

TEST(CkptFormat, FileRoundTrip) {
  const std::string path = temp_path("roundtrip.ckpt");
  const ckpt::CheckpointFile f = make_test_file();
  ckpt::write_file(path, f);
  const ckpt::CheckpointFile g = ckpt::read_file(path);
  EXPECT_EQ(g.sections, f.sections);
  std::remove(path.c_str());
}

TEST(CkptWriter, RejectsConflictingOrMissingTargets) {
  sim::SimulationConfig cfg;
  ckpt::CreateOptions both;
  both.every = 100;
  both.at_cycles = {200};
  EXPECT_THROW(ckpt::CheckpointWriter(cfg, both), util::SimError);
  ckpt::CreateOptions neither;
  EXPECT_THROW(ckpt::CheckpointWriter(cfg, neither), util::SimError);
}

// ---- golden restore equivalence --------------------------------------------

struct RunOutput {
  workloads::ScenarioStats stats;
  std::vector<std::uint8_t> trace;
  bool self_serve = false;  ///< restore runs: which warp path fast-forwarded
};

/// Uninterrupted reference run with a trace recorder attached.
RunOutput run_plain(sim::SimulationConfig cfg,
                    const workloads::ScenarioParams& params,
                    const std::string& tag) {
  const std::string path = temp_path(tag + ".base.trace");
  RunOutput out;
  {
    trace::TraceRecorder recorder(cfg, path);
    cfg.trace_sink = &recorder;
    out.stats = workloads::run_scenario(cfg, params);
    recorder.finalize();
  }
  out.trace = slurp(path);
  std::remove(path.c_str());
  return out;
}

/// Same run with a CheckpointWriter snapshotting at `opts` targets.
std::vector<std::string> run_create(sim::SimulationConfig cfg,
                                    const workloads::ScenarioParams& params,
                                    ckpt::CreateOptions opts) {
  opts.meta = params.kv;
  opts.meta["workload"] = params.workload;
  ckpt::CheckpointWriter writer(cfg, opts);
  cfg.ckpt = &writer;
  cfg.post_build = [&writer](sim::Simulation& s) { writer.bind(s); };
  workloads::run_scenario(cfg, params);
  return writer.written();
}

/// Restore from an in-memory checkpoint and run to completion (or run_for).
RunOutput run_restore(ckpt::CheckpointFile file, const std::string& tag,
                      Cycles run_for = 0, int workers_override = -1,
                      ckpt::WarpMode warp = ckpt::WarpMode::kAuto) {
  sim::SimulationConfig cfg = ckpt::config_from(file, workers_override);
  const workloads::ScenarioParams params = [&file] {
    workloads::ScenarioParams p;
    p.kv = file.meta;
    p.workload = p.kv.at("workload");
    p.kv.erase("workload");
    return p;
  }();
  ckpt::CheckpointRestorer restorer(std::move(file), run_for, warp);
  cfg.ckpt = &restorer;
  cfg.post_build = [&restorer](sim::Simulation& s) { restorer.bind(s); };
  const std::string path = temp_path(tag + ".restore.trace");
  RunOutput out;
  {
    trace::TraceRecorder recorder(cfg, path);
    cfg.trace_sink = &recorder;
    out.stats = workloads::run_scenario(cfg, params);
    recorder.finalize();
  }
  EXPECT_TRUE(restorer.installed()) << tag << ": warp never reached snapshot";
  out.self_serve = restorer.self_serve_active();
  out.trace = slurp(path);
  std::remove(path.c_str());
  return out;
}

void expect_equivalent(const RunOutput& base, const RunOutput& restored,
                       const std::string& tag) {
  EXPECT_EQ(base.trace, restored.trace)
      << tag << ": restored trace is not byte-identical";
  const std::vector<std::string> diff =
      trace::golden_diff(base.stats.snapshot, restored.stats.snapshot);
  EXPECT_TRUE(diff.empty()) << tag << ": " << diff.size()
                            << " counter mismatches, first: "
                            << (diff.empty() ? "" : diff.front());
  EXPECT_EQ(base.stats.cycles, restored.stats.cycles) << tag;
  EXPECT_EQ(base.stats.work_units, restored.stats.work_units) << tag;
}

/// One full equivalence check: uninterrupted vs create-at-T vs restore.
void check_roundtrip(const sim::SimulationConfig& cfg,
                     const workloads::ScenarioParams& params, Cycles at,
                     const std::string& tag, int restore_workers = -1) {
  const RunOutput base = run_plain(cfg, params, tag);
  ASSERT_GT(base.stats.cycles, at) << tag << ": snapshot target after run end";
  ckpt::CreateOptions opts;
  opts.out = temp_path(tag + ".ckpt");
  opts.at_cycles = {at};
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_EQ(files.size(), 1u) << tag;
  ckpt::CheckpointFile file = ckpt::read_file(files[0]);
  EXPECT_GE(file.quiescent, at) << tag;
  const RunOutput restored =
      run_restore(std::move(file), tag, 0, restore_workers);
  expect_equivalent(base, restored, tag);
  std::remove(files[0].c_str());
}

workloads::ScenarioParams sci_params() {
  return {"sci", {{"n", "16"}, {"nprocs", "2"}}};
}

workloads::ScenarioParams web_params() {
  return {"web", {{"requests", "6"}, {"servers", "1"}, {"seed", "99"}}};
}

workloads::ScenarioParams tpcc_params() {
  return {"tpcc", {{"workers", "2"}}};
}

workloads::ScenarioParams tpcd_params() {
  // lineitems trimmed so the scan still crosses the snapshot cycle but the
  // three-legged roundtrip stays fast.
  return {"tpcd", {{"workers", "2"}, {"repeats", "1"}, {"lineitems", "1500"}}};
}

TEST(CkptGolden, SciRestoreMatchesUninterrupted) {
  sim::SimulationConfig cfg;
  check_roundtrip(cfg, sci_params(), 15'000, "sci");
}

TEST(CkptGolden, WebRestoreMatchesUninterrupted) {
  sim::SimulationConfig cfg;
  check_roundtrip(cfg, web_params(), 400'000, "web");
}

TEST(CkptGolden, TpccRestoreMatchesUninterrupted) {
  sim::SimulationConfig cfg;
  check_roundtrip(cfg, tpcc_params(), 1'000'000, "tpcc");
}

TEST(CkptGolden, ParallelBackendRestoreMatches) {
  // W=4 on both sides of the snapshot: triggers must fire at the same
  // dispatch points as the serial loop, and the restore warp must force
  // serial dispatch until install.
  sim::SimulationConfig cfg;
  cfg.core.backend_workers = 4;
  check_roundtrip(cfg, tpcc_params(), 1'000'000, "tpcc_w4");
}

TEST(CkptGolden, L1FilterRestoreMatches) {
  // With the frontend filter on, warp replies must carry the recorded
  // l1_gen and teach slots or the mirrors diverge.
  sim::SimulationConfig cfg;
  cfg.core.l1_filter = true;
  check_roundtrip(cfg, sci_params(), 15'000, "sci_l1");
}

TEST(CkptGolden, FaultedPlanRestoreMatches) {
  sim::SimulationConfig cfg;
  cfg.fault.seed = 7;
  cfg.fault.disk_error_prob = 0.05;
  cfg.fault.oscall_eintr_prob = 0.02;
  check_roundtrip(cfg, tpcc_params(), 1'000'000, "tpcc_fault");
}

TEST(CkptGolden, RestoreWithDifferentWorkerCountMatches) {
  // backend_workers is deliberately excluded from the config fingerprint: a
  // serial create run must restore bit-identically under W=4 fan-out.
  sim::SimulationConfig cfg;
  check_roundtrip(cfg, sci_params(), 15'000, "sci_w_override",
                  /*restore_workers=*/4);
}

TEST(CkptGolden, EverySeriesEachRestores) {
  sim::SimulationConfig cfg;
  const workloads::ScenarioParams params = web_params();
  const RunOutput base = run_plain(cfg, params, "web_series");
  ckpt::CreateOptions opts;
  opts.out = temp_path("web_series.ckpt");
  opts.every = 600'000;
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_GE(files.size(), 2u) << "run too short to sample twice";
  for (const std::string& path : files) {
    const RunOutput restored =
        run_restore(ckpt::read_file(path), "web_series");
    expect_equivalent(base, restored, "web_series:" + path);
    std::remove(path.c_str());
  }
}

TEST(CkptGolden, RunForStopsEarly) {
  sim::SimulationConfig cfg;
  const workloads::ScenarioParams params = web_params();
  const RunOutput base = run_plain(cfg, params, "web_runfor");
  ckpt::CreateOptions opts;
  opts.out = temp_path("web_runfor.ckpt");
  opts.at_cycles = {400'000};
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_EQ(files.size(), 1u);
  ckpt::CheckpointFile file = ckpt::read_file(files[0]);
  const Cycles quiescent = file.quiescent;
  const RunOutput region =
      run_restore(std::move(file), "web_runfor", /*run_for=*/100'000);
  EXPECT_LT(region.stats.cycles, base.stats.cycles)
      << "run_for did not stop the region early";
  EXPECT_GE(region.stats.cycles, quiescent + 100'000);
  std::remove(files[0].c_str());
}

TEST(CkptGolden, TruncatedWarpLogIsDivergence) {
  sim::SimulationConfig cfg;
  const workloads::ScenarioParams params = sci_params();
  ckpt::CreateOptions opts;
  opts.out = temp_path("sci_diverge.ckpt");
  opts.at_cycles = {15'000};
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_EQ(files.size(), 1u);
  ckpt::CheckpointFile file = ckpt::read_file(files[0]);
  // Chop the tail off the warp log: the warp must notice the missing
  // replies instead of installing silently-wrong state.
  auto& log =
      file.sections[static_cast<std::uint8_t>(ckpt::SectionId::kWarpLog)];
  ASSERT_GT(log.size(), 64u);
  log.resize(log.size() - 48);
  EXPECT_THROW(run_restore(std::move(file), "sci_diverge"), StateError);
  std::remove(files[0].c_str());
}

// ---- workload-coverage gaps ------------------------------------------------

TEST(CkptGolden, TpcdRestoreMatchesUninterrupted) {
  sim::SimulationConfig cfg;
  check_roundtrip(cfg, tpcd_params(), 1'000'000, "tpcd");
}

TEST(CkptGolden, TpcdMmapRestoreMatchesUninterrupted) {
  // Q1 through the mmap path (single worker): page-fault driven reads must
  // replay from the warp log exactly like buffer-pool reads do.
  sim::SimulationConfig cfg;
  workloads::ScenarioParams params = tpcd_params();
  params.kv["workers"] = "1";
  params.kv["use_mmap"] = "1";
  check_roundtrip(cfg, params, 1'000'000, "tpcd_mmap");
}

TEST(CkptGolden, WebMultiServerRestoreMatches) {
  // Two httpd processes share the listen queue; the snapshot lands with
  // both mid-request and the restore must revive each server's connection
  // state bit-identically.
  sim::SimulationConfig cfg;
  workloads::ScenarioParams params = web_params();
  params.kv["servers"] = "2";
  check_roundtrip(cfg, params, 400'000, "web2");
}

// ---- self-serve vs port-paced warp -----------------------------------------

TEST(CkptGolden, PortPacedWarpMatchesSelfServe) {
  // The same checkpoint must restore bit-identically through both warp
  // paths, for every workload family.
  struct Case {
    workloads::ScenarioParams params;
    Cycles at;
    const char* tag;
  };
  const Case cases[] = {
      {sci_params(), 15'000, "sci_modes"},
      {web_params(), 400'000, "web_modes"},
      {tpcc_params(), 1'000'000, "tpcc_modes"},
      {tpcd_params(), 1'000'000, "tpcd_modes"},
  };
  for (const Case& c : cases) {
    sim::SimulationConfig cfg;
    const RunOutput base = run_plain(cfg, c.params, c.tag);
    ckpt::CreateOptions opts;
    opts.out = temp_path(std::string(c.tag) + ".ckpt");
    opts.at_cycles = {c.at};
    const std::vector<std::string> files = run_create(cfg, c.params, opts);
    ASSERT_EQ(files.size(), 1u) << c.tag;
    const RunOutput self = run_restore(ckpt::read_file(files[0]), c.tag, 0, -1,
                                       ckpt::WarpMode::kSelfServe);
    EXPECT_TRUE(self.self_serve) << c.tag;
    expect_equivalent(base, self, std::string(c.tag) + ":self");
    const RunOutput port = run_restore(ckpt::read_file(files[0]), c.tag, 0, -1,
                                       ckpt::WarpMode::kPortPaced);
    EXPECT_FALSE(port.self_serve) << c.tag;
    expect_equivalent(base, port, std::string(c.tag) + ":port");
    std::remove(files[0].c_str());
  }
}

TEST(CkptGolden, SelfServeWarpAcrossWorkerCounts) {
  // W is a host execution strategy: a serial create must self-serve restore
  // bit-identically under any backend fan-out.
  sim::SimulationConfig cfg;
  const workloads::ScenarioParams params = tpcc_params();
  const RunOutput base = run_plain(cfg, params, "tpcc_selfw");
  ckpt::CreateOptions opts;
  opts.out = temp_path("tpcc_selfw.ckpt");
  opts.at_cycles = {1'000'000};
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_EQ(files.size(), 1u);
  for (int w : {1, 2, 4}) {
    const RunOutput restored =
        run_restore(ckpt::read_file(files[0]), "tpcc_selfw", 0, w,
                    ckpt::WarpMode::kSelfServe);
    EXPECT_TRUE(restored.self_serve) << "w" << w;
    expect_equivalent(base, restored, "tpcc_selfw:w" + std::to_string(w));
  }
  std::remove(files[0].c_str());
}

TEST(CkptGolden, L1FilterSelfServeAndPortPacedMatch) {
  // Filter-on shards carry the l1_gen + teach payloads; both warp paths
  // must hand them to the frontend mirrors identically.
  sim::SimulationConfig cfg;
  cfg.core.l1_filter = true;
  const workloads::ScenarioParams params = sci_params();
  const RunOutput base = run_plain(cfg, params, "sci_l1_modes");
  ckpt::CreateOptions opts;
  opts.out = temp_path("sci_l1_modes.ckpt");
  opts.at_cycles = {15'000};
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_EQ(files.size(), 1u);
  const RunOutput self = run_restore(ckpt::read_file(files[0]), "sci_l1_modes",
                                     0, -1, ckpt::WarpMode::kSelfServe);
  EXPECT_TRUE(self.self_serve);
  expect_equivalent(base, self, "sci_l1_modes:self");
  const RunOutput port = run_restore(ckpt::read_file(files[0]), "sci_l1_modes",
                                     0, -1, ckpt::WarpMode::kPortPaced);
  EXPECT_FALSE(port.self_serve);
  expect_equivalent(base, port, "sci_l1_modes:port");
  std::remove(files[0].c_str());
}

// ---- warp-shard format robustness ------------------------------------------

/// Create a small sci checkpoint and hand back its decoded file.
ckpt::CheckpointFile make_sci_ckpt(const std::string& tag) {
  sim::SimulationConfig cfg;
  ckpt::CreateOptions opts;
  opts.out = temp_path(tag + ".ckpt");
  opts.at_cycles = {15'000};
  const std::vector<std::string> files = run_create(cfg, sci_params(), opts);
  EXPECT_EQ(files.size(), 1u);
  ckpt::CheckpointFile file = ckpt::read_file(files[0]);
  std::remove(files[0].c_str());
  return file;
}

std::vector<std::uint8_t>& shard_section(ckpt::CheckpointFile& f) {
  return f.sections[static_cast<std::uint8_t>(ckpt::SectionId::kWarpShards)];
}

TEST(CkptShards, StrippedWarpSectionsFallBackToPortPaced) {
  // A file without the self-serve sections (older writer) must still
  // restore golden through the port-paced warp under kAuto — and refuse
  // kSelfServe outright.
  sim::SimulationConfig cfg;
  const workloads::ScenarioParams params = sci_params();
  const RunOutput base = run_plain(cfg, params, "sci_strip");
  ckpt::CreateOptions opts;
  opts.out = temp_path("sci_strip.ckpt");
  opts.at_cycles = {15'000};
  const std::vector<std::string> files = run_create(cfg, params, opts);
  ASSERT_EQ(files.size(), 1u);
  ckpt::CheckpointFile file = ckpt::read_file(files[0]);
  std::remove(files[0].c_str());
  file.sections.erase(static_cast<std::uint8_t>(ckpt::SectionId::kWarpSpine));
  file.sections.erase(static_cast<std::uint8_t>(ckpt::SectionId::kWarpShards));
  ckpt::CheckpointFile stripped = file;
  const RunOutput restored = run_restore(std::move(file), "sci_strip");
  EXPECT_FALSE(restored.self_serve)
      << "restore self-served without warp sections";
  expect_equivalent(base, restored, "sci_strip");
  EXPECT_THROW(ckpt::CheckpointRestorer(std::move(stripped), 0,
                                        ckpt::WarpMode::kSelfServe),
               StateError);
}

TEST(CkptShards, TruncatedShardSectionIsRejected) {
  ckpt::CheckpointFile file = make_sci_ckpt("sci_shard_trunc");
  std::vector<std::uint8_t>& bytes = shard_section(file);
  ASSERT_GT(bytes.size(), 16u);
  bytes.resize(bytes.size() - 9);
  EXPECT_THROW(ckpt::CheckpointRestorer(std::move(file)), StateError);
}

TEST(CkptShards, ReorderedShardSeqIsRejected) {
  ckpt::CheckpointFile file = make_sci_ckpt("sci_shard_order");
  std::vector<std::uint8_t>& bytes = shard_section(file);
  std::vector<ckpt::WarpShard> shards =
      ckpt::decode_shards({bytes.data(), bytes.size()}, /*l1_filter=*/false);
  // Swap the first two ticketed records of some shard out of program order.
  bool swapped = false;
  for (ckpt::WarpShard& shard : shards) {
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < shard.records.size() && slots.size() < 2; ++i)
      if (shard.records[i].tag != ckpt::kShardIrqPop) slots.push_back(i);
    if (slots.size() < 2) continue;
    std::swap(shard.records[slots[0]].seq, shard.records[slots[1]].seq);
    swapped = true;
    break;
  }
  ASSERT_TRUE(swapped) << "no shard with two ticketed records";
  bytes = ckpt::encode_shards(shards, /*l1_filter=*/false);
  EXPECT_THROW(ckpt::CheckpointRestorer(std::move(file)), StateError);
}

TEST(CkptShards, ForeignProcShardIsRejected) {
  ckpt::CheckpointFile file = make_sci_ckpt("sci_shard_foreign");
  std::vector<std::uint8_t>& bytes = shard_section(file);
  std::vector<ckpt::WarpShard> shards =
      ckpt::decode_shards({bytes.data(), bytes.size()}, /*l1_filter=*/false);
  ASSERT_FALSE(shards.empty());
  shards.front().proc = static_cast<ProcId>(file.nprocs + 3);
  bytes = ckpt::encode_shards(shards, /*l1_filter=*/false);
  EXPECT_THROW(ckpt::CheckpointRestorer(std::move(file)), StateError);
}

TEST(CkptShards, DuplicateProcShardIsRejected) {
  ckpt::CheckpointFile file = make_sci_ckpt("sci_shard_dup");
  std::vector<std::uint8_t>& bytes = shard_section(file);
  std::vector<ckpt::WarpShard> shards =
      ckpt::decode_shards({bytes.data(), bytes.size()}, /*l1_filter=*/false);
  ASSERT_FALSE(shards.empty());
  shards.push_back(shards.front());
  bytes = ckpt::encode_shards(shards, /*l1_filter=*/false);
  EXPECT_THROW(ckpt::CheckpointRestorer(std::move(file)), StateError);
}

// ---- profile-driven region sampling ----------------------------------------

// A heavily front-loaded profile: even cycle spacing would stuff almost all
// events into the first region, while the event-count quantile boundaries
// must land early and produce regions whose event counts balance.
TEST(CkptSampling, BalancedCyclesEqualizeFrontLoadedProfile) {
  ckpt::EventProfile profile(/*bucket_width=*/100);
  // 100 buckets spanning cycles [0, 10000): bucket b gets 1000 events for
  // b < 10, then 10 events each — 10000 events up front, 900 in the tail.
  for (std::size_t b = 0; b < 100; ++b)
    for (std::uint64_t i = 0; i < (b < 10 ? 1000u : 10u); ++i)
      profile.record(static_cast<Cycles>(b) * 100);
  const std::uint64_t total = profile.total();
  ASSERT_EQ(total, 10'900u);

  const int regions = 4;
  const std::vector<Cycles> cuts =
      ckpt::balanced_sample_cycles(profile, regions);
  ASSERT_EQ(cuts.size(), static_cast<std::size_t>(regions - 1));
  // Boundaries sit inside the front-loaded burst, not at even spacing
  // (2500/5000/7500): the last quantile still falls in the first tenth of
  // the cycle span.
  EXPECT_LT(cuts.back(), 1'100u);
  for (std::size_t i = 1; i < cuts.size(); ++i)
    EXPECT_LT(cuts[i - 1], cuts[i]);

  // Per-region event counts from the histogram: each region must carry its
  // fair share within one bucket's worth of slack (a boundary can only be
  // off by the bucket that crossed the quantile).
  std::vector<std::uint64_t> sums(static_cast<std::size_t>(regions), 0);
  for (std::size_t b = 0; b < profile.counts.size(); ++b) {
    const Cycles start = static_cast<Cycles>(b) * profile.bucket_width;
    std::size_t region = 0;
    while (region < cuts.size() && start >= cuts[region]) ++region;
    sums[region] += profile.counts[b];
  }
  const std::uint64_t fair = total / static_cast<std::uint64_t>(regions);
  constexpr std::uint64_t kMaxBucket = 1000;  // largest single-bucket count
  for (const std::uint64_t s : sums) {
    EXPECT_GE(s + kMaxBucket, fair);
    EXPECT_LE(s, fair + kMaxBucket);
  }
}

TEST(CkptSampling, UniformProfileSplitsEvenly) {
  ckpt::EventProfile profile(/*bucket_width=*/10);
  for (std::size_t b = 0; b < 80; ++b)
    for (int i = 0; i < 5; ++i)
      profile.record(static_cast<Cycles>(b) * 10);
  const std::vector<Cycles> cuts = ckpt::balanced_sample_cycles(profile, 4);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_EQ(cuts[0], 200u);
  EXPECT_EQ(cuts[1], 400u);
  EXPECT_EQ(cuts[2], 600u);
}

TEST(CkptSampling, EmptyAndSpikeProfiles) {
  ckpt::EventProfile empty(100);
  EXPECT_TRUE(ckpt::balanced_sample_cycles(empty, 4).empty());
  // All mass in one bucket: no interior boundary can split it.
  ckpt::EventProfile spike(100);
  for (int i = 0; i < 500; ++i) spike.record(250);
  EXPECT_TRUE(ckpt::balanced_sample_cycles(spike, 4).empty());
}

TEST(CkptGolden, WrongProcessCountIsRejected) {
  sim::SimulationConfig cfg;
  ckpt::CreateOptions opts;
  opts.out = temp_path("sci_nprocs.ckpt");
  opts.at_cycles = {15'000};
  const std::vector<std::string> files = run_create(cfg, sci_params(), opts);
  ASSERT_EQ(files.size(), 1u);
  ckpt::CheckpointFile file = ckpt::read_file(files[0]);
  file.nprocs += 1;
  EXPECT_THROW(run_restore(std::move(file), "sci_nprocs"), StateError);
  std::remove(files[0].c_str());
}

}  // namespace
}  // namespace compass
