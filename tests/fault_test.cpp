// Tests for the deterministic fault-injection plane (src/fault/):
// injector determinism, per-kind fire-and-recover behaviour through the
// full simulation stack, WAL crash-point recovery, TCP retransmission
// under seeded loss, the zero-plan no-op guarantee, the trace-codec
// round trip and faulted record/replay golden identity, plus regression
// tests for the disk counter and socket-close teardown fixes.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dev/disk.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "os/tcpip.h"
#include "sim/simulation.h"
#include "trace/config_codec.h"
#include "trace/golden.h"
#include "trace/trace_reader.h"
#include "trace/trace_recorder.h"
#include "trace/trace_replayer.h"
#include "workloads/runner.h"

namespace compass {
namespace {

using fault::DiskFault;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using sim::Proc;
using sim::Simulation;
using sim::SimulationConfig;

std::uint64_t cnt(const stats::StatsSnapshot& snap, const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

FaultPlan busy_plan(std::uint64_t seed = 7) {
  FaultPlan p;
  p.seed = seed;
  p.disk_error_prob = 0.2;
  p.disk_timeout_prob = 0.1;
  p.net_drop_prob = 0.2;
  p.net_dup_prob = 0.2;
  p.net_corrupt_prob = 0.2;
  p.oscall_eintr_prob = 0.1;
  p.oscall_enomem_prob = 0.1;
  p.oscall_eio_prob = 0.1;
  p.sched_jitter_prob = 0.5;
  p.sched_jitter_cycles = 10'000;
  return p;
}

// ------------------------------------------------------------ plan basics

TEST(FaultPlan, ZeroPlanIsInertRegardlessOfSeed) {
  FaultPlan p;
  EXPECT_FALSE(p.enabled());
  p.seed = 0xDEADBEEF;  // the seed alone enables nothing
  EXPECT_FALSE(p.enabled());
  p.net_drop_prob = 0.01;
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, ValidateRejectsBadRates) {
  FaultPlan p;
  p.disk_error_prob = 1.5;
  EXPECT_THROW(p.validate(), util::SimError);
  p = FaultPlan{};
  p.net_drop_prob = -0.1;
  EXPECT_THROW(p.validate(), util::SimError);
}

// ----------------------------------------------------- injector determinism

TEST(FaultInjectorDeterminism, SameSeedSameDrawSequence) {
  const FaultPlan plan = busy_plan(99);
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 200; ++i) {
    const ProcId proc = static_cast<ProcId>(i % 5);
    EXPECT_EQ(a.draw_disk(proc, 0), b.draw_disk(proc, 0)) << i;
    EXPECT_EQ(a.draw_net_drop(0), b.draw_net_drop(0)) << i;
    EXPECT_EQ(a.draw_rx(), b.draw_rx()) << i;
    EXPECT_EQ(a.draw_oscall(proc), b.draw_oscall(proc)) << i;
    EXPECT_EQ(a.slice_quantum(proc, 0, 0, 100'000),
              b.slice_quantum(proc, 0, 0, 100'000))
        << i;
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(FaultKind::kCount); ++k) {
    EXPECT_EQ(a.injected(static_cast<FaultKind>(k)),
              b.injected(static_cast<FaultKind>(k)));
    EXPECT_EQ(a.recovered(static_cast<FaultKind>(k)),
              b.recovered(static_cast<FaultKind>(k)));
  }
}

TEST(FaultInjectorDeterminism, DifferentSeedsDiverge) {
  FaultInjector a(busy_plan(1)), b(busy_plan(2));
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i)
    diverged = a.draw_rx() != b.draw_rx() ||
               a.draw_disk(0, 0) != b.draw_disk(0, 0);
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorDeterminism, RetryBoundsForceSuccess) {
  FaultPlan p;
  p.disk_error_prob = 1.0;  // every draw would fault...
  p.net_drop_prob = 1.0;
  FaultInjector inj(p);
  // ...but the final permitted attempt is forced clean.
  EXPECT_EQ(inj.draw_disk(0, p.disk_max_retries), DiskFault::kNone);
  EXPECT_FALSE(inj.draw_net_drop(p.net_max_retries));
  EXPECT_NE(inj.draw_disk(0, 0), DiskFault::kNone);
  EXPECT_TRUE(inj.draw_net_drop(0));
}

// -------------------------------------------- zero plan is provably a no-op

TEST(FaultSim, ZeroPlanRunsBitIdenticalToBaseline) {
  workloads::WebScenario sc;
  sc.requests = 8;
  SimulationConfig base;
  base.core.num_cpus = 2;
  SimulationConfig seeded = base;
  seeded.fault.seed = 0xFEEDFACE;  // rates all zero: plan stays inert
  const workloads::ScenarioStats a = workloads::run_web(base, sc);
  const workloads::ScenarioStats b = workloads::run_web(seeded, sc);
  EXPECT_EQ(a.snapshot.cycles, b.snapshot.cycles);
  EXPECT_EQ(a.snapshot.counters, b.snapshot.counters);
  EXPECT_EQ(a.snapshot.cpu_time, b.snapshot.cpu_time);
  EXPECT_EQ(cnt(b.snapshot, "fault.injected.net_drop"), 0u);  // not published
}

TEST(FaultSim, ZeroPlanEmitsNoConfigKeys) {
  SimulationConfig base;
  SimulationConfig seeded = base;
  seeded.fault.seed = 12345;
  EXPECT_EQ(trace::encode_config(base).size(),
            trace::encode_config(seeded).size());
  SimulationConfig faulted = base;
  faulted.fault.net_drop_prob = 0.1;
  EXPECT_GT(trace::encode_config(faulted).size(),
            trace::encode_config(base).size());
}

TEST(FaultTrace, ConfigCodecRoundTripsThePlan) {
  SimulationConfig cfg;
  cfg.fault = busy_plan(0xABCD);
  cfg.fault.disk_timeout_cycles = 123'456;
  cfg.fault.wal_crash_at = 17;
  const sim::SimulationConfig back =
      trace::decode_config(trace::encode_config(cfg));
  EXPECT_EQ(back.fault.seed, cfg.fault.seed);
  EXPECT_EQ(back.fault.disk_error_prob, cfg.fault.disk_error_prob);
  EXPECT_EQ(back.fault.disk_timeout_prob, cfg.fault.disk_timeout_prob);
  EXPECT_EQ(back.fault.disk_timeout_cycles, cfg.fault.disk_timeout_cycles);
  EXPECT_EQ(back.fault.disk_max_retries, cfg.fault.disk_max_retries);
  EXPECT_EQ(back.fault.net_drop_prob, cfg.fault.net_drop_prob);
  EXPECT_EQ(back.fault.net_dup_prob, cfg.fault.net_dup_prob);
  EXPECT_EQ(back.fault.net_corrupt_prob, cfg.fault.net_corrupt_prob);
  EXPECT_EQ(back.fault.net_backoff_cycles, cfg.fault.net_backoff_cycles);
  EXPECT_EQ(back.fault.net_max_retries, cfg.fault.net_max_retries);
  EXPECT_EQ(back.fault.oscall_eintr_prob, cfg.fault.oscall_eintr_prob);
  EXPECT_EQ(back.fault.oscall_enomem_prob, cfg.fault.oscall_enomem_prob);
  EXPECT_EQ(back.fault.oscall_eio_prob, cfg.fault.oscall_eio_prob);
  EXPECT_EQ(back.fault.oscall_max_consecutive, cfg.fault.oscall_max_consecutive);
  EXPECT_EQ(back.fault.sched_jitter_prob, cfg.fault.sched_jitter_prob);
  EXPECT_EQ(back.fault.sched_jitter_cycles, cfg.fault.sched_jitter_cycles);
  EXPECT_EQ(back.fault.wal_crash_at, cfg.fault.wal_crash_at);
  EXPECT_TRUE(back.fault.enabled());
}

// ---------------------------------------- every kind fires — and recovers

TEST(FaultSim, DiskFaultsFireAndCallersRecover) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault.seed = 5;
  cfg.fault.disk_error_prob = 0.3;
  cfg.fault.disk_timeout_prob = 0.2;
  workloads::TpccScenario sc;
  sc.tpcc.txns_per_worker = 10;
  const workloads::ScenarioStats st = workloads::run_tpcc(cfg, sc);
  EXPECT_EQ(st.work_units, 20u);  // every transaction still commits
  const std::uint64_t err = cnt(st.snapshot, "fault.injected.disk_error");
  const std::uint64_t to = cnt(st.snapshot, "fault.injected.disk_timeout");
  EXPECT_GT(err, 0u);
  EXPECT_GT(to, 0u);
  const std::uint64_t rec = cnt(st.snapshot, "fault.recovered.disk_error") +
                            cnt(st.snapshot, "fault.recovered.disk_timeout");
  EXPECT_GT(rec, 0u);
  EXPECT_LE(rec, err + to);
  // The device counted the failures it serviced.
  EXPECT_GT(cnt(st.snapshot, "disk0.errors"), 0u);
  EXPECT_GT(cnt(st.snapshot, "disk0.timeouts"), 0u);
}

TEST(FaultSim, OscallFaultsAreRetriedTransparently) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault.seed = 3;
  cfg.fault.oscall_eintr_prob = 0.25;
  cfg.fault.oscall_enomem_prob = 0.2;
  cfg.fault.oscall_eio_prob = 0.2;
  Simulation sim(cfg);
  std::string readback;
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.creat("/data/t.txt");
    ASSERT_GE(fd, 0);
    const Addr buf = p.alloc(4096);
    const std::string msg = "fault-tolerant payload";
    p.put_bytes(buf, {reinterpret_cast<const std::uint8_t*>(msg.data()),
                      msg.size()});
    // Despite heavy transient failures the libc-style wrappers retry and
    // the data path stays correct.
    EXPECT_EQ(p.write_fd(fd, buf, msg.size()),
              static_cast<std::int64_t>(msg.size()));
    p.close(fd);
    const auto fd2 = p.open("/data/t.txt");
    ASSERT_GE(fd2, 0);
    const Addr buf2 = p.alloc(4096);
    const auto n = p.read_fd(fd2, buf2, 4096);
    ASSERT_EQ(n, static_cast<std::int64_t>(msg.size()));
    const auto bytes = p.get_bytes(buf2, static_cast<std::size_t>(n));
    readback.assign(bytes.begin(), bytes.end());
    p.close(fd2);
  });
  sim.run();
  EXPECT_EQ(readback, "fault-tolerant payload");
  ASSERT_NE(sim.fault_injector(), nullptr);
  const std::uint64_t inj =
      sim.fault_injector()->injected(FaultKind::kOscallEintr) +
      sim.fault_injector()->injected(FaultKind::kOscallEnomem) +
      sim.fault_injector()->injected(FaultKind::kOscallEio);
  EXPECT_GT(inj, 0u);
  const std::uint64_t rec =
      sim.fault_injector()->recovered(FaultKind::kOscallEintr) +
      sim.fault_injector()->recovered(FaultKind::kOscallEnomem) +
      sim.fault_injector()->recovered(FaultKind::kOscallEio);
  EXPECT_GT(rec, 0u);
  EXPECT_LE(rec, inj);
}

TEST(FaultSim, TcpRetransmitsUnderSeededLoss) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault.seed = 11;
  cfg.fault.net_drop_prob = 0.35;
  workloads::WebScenario sc;
  sc.requests = 10;
  const workloads::ScenarioStats st = workloads::run_web(cfg, sc);
  // Every request completes: dropped frames are retransmitted with backoff
  // and the injector forces delivery within the retry bound.
  EXPECT_EQ(st.work_units, sc.requests);
  EXPECT_GT(cnt(st.snapshot, "fault.injected.net_drop"), 0u);
  EXPECT_GT(cnt(st.snapshot, "fault.recovered.net_drop"), 0u);
  EXPECT_LE(cnt(st.snapshot, "fault.recovered.net_drop"),
            cnt(st.snapshot, "fault.injected.net_drop"));
}

TEST(FaultSim, RxDupAndCorruptAreDetectedAndDiscarded) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault.seed = 21;
  cfg.fault.net_dup_prob = 0.25;
  cfg.fault.net_corrupt_prob = 0.25;
  workloads::WebScenario sc;
  sc.requests = 12;
  const workloads::ScenarioStats st = workloads::run_web(cfg, sc);
  EXPECT_EQ(st.work_units, sc.requests);  // dedup/checksum keep streams exact
  EXPECT_GT(cnt(st.snapshot, "fault.injected.net_dup"), 0u);
  EXPECT_GT(cnt(st.snapshot, "fault.injected.net_corrupt"), 0u);
  EXPECT_LE(cnt(st.snapshot, "fault.recovered.net_dup"),
            cnt(st.snapshot, "fault.injected.net_dup"));
  EXPECT_LE(cnt(st.snapshot, "fault.recovered.net_corrupt"),
            cnt(st.snapshot, "fault.injected.net_corrupt"));
}

TEST(FaultSim, SchedulerJitterPerturbsPreemptiveRuns) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.core.preemptive = true;
  cfg.core.quantum = 40'000;
  cfg.fault.seed = 9;
  cfg.fault.sched_jitter_prob = 0.8;
  cfg.fault.sched_jitter_cycles = 15'000;
  workloads::SciScenario sc;
  sc.matmul.n = 24;
  sc.matmul.nprocs = 2;
  const workloads::ScenarioStats st = workloads::run_sci(cfg, sc);
  EXPECT_EQ(st.work_units, 1u);
  EXPECT_GT(cnt(st.snapshot, "fault.injected.sched_jitter"), 0u);
}

// ----------------------------------------------------- deterministic stats

TEST(FaultSim, SameFaultedPlanYieldsIdenticalStats) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault = busy_plan(31);
  workloads::WebScenario sc;
  sc.requests = 10;
  const workloads::ScenarioStats a = workloads::run_web(cfg, sc);
  const workloads::ScenarioStats b = workloads::run_web(cfg, sc);
  EXPECT_EQ(a.snapshot.cycles, b.snapshot.cycles);
  EXPECT_EQ(a.snapshot.counters, b.snapshot.counters);  // fault.* included
  EXPECT_EQ(a.snapshot.cpu_time, b.snapshot.cpu_time);
}

// ------------------------------------------------- WAL crash-point recovery

TEST(FaultWal, CrashPointRecoveryReplaysTheCommittedPrefix) {
  for (const std::uint64_t crash_at : {1ull, 7ull, 19ull, 33ull}) {
    SimulationConfig cfg;
    cfg.core.num_cpus = 2;
    cfg.fault.seed = 13;
    cfg.fault.wal_crash_at = crash_at;
    workloads::TpccScenario sc;
    sc.tpcc.txns_per_worker = 25;

    constexpr std::int64_t kStartSem = 9001;
    constexpr std::int64_t kDoneSem = 9002;
    Simulation sim(cfg);
    auto tpcc = std::make_shared<workloads::db::Tpcc>(sc.tpcc);
    tpcc->wal().set_crash_at(cfg.fault.wal_crash_at);
    tpcc->wal().set_fault_injector(sim.fault_injector());
    std::vector<workloads::db::Tpcc::WorkerResult> results(
        static_cast<std::size_t>(sc.workers));
    std::uint64_t replayed = 0;
    std::int64_t stock_ytd = 0, orderline_amount = 0;
    bool crashed = false;
    sim.spawn("db2.coord", [&, workers = sc.workers](Proc& p) {
      tpcc->setup(p);
      p.sem_init(kStartSem, 0);
      for (int i = 0; i < workers; ++i) p.sem_v(kStartSem);
      p.sem_init(kDoneSem, 0);
      for (int i = 0; i < workers; ++i) p.sem_p(kDoneSem);
      crashed = tpcc->wal().crashed();
      if (crashed) replayed = tpcc->wal().recover(p);
      stock_ytd = tpcc->total_stock_ytd(p);
      orderline_amount = tpcc->total_orderline_amount(p);
    });
    for (int w = 0; w < sc.workers; ++w) {
      sim.spawn("db2.agent" + std::to_string(w), [&, w](Proc& p) {
        p.sem_init(kStartSem, 0);
        p.sem_p(kStartSem);
        results[static_cast<std::size_t>(w)] = tpcc->worker(p, w);
        p.sem_init(kDoneSem, 0);
        p.sem_v(kDoneSem);
      });
    }
    sim.run();

    ASSERT_TRUE(crashed) << "crash_at=" << crash_at;
    std::uint64_t committed = 0;
    for (const auto& r : results) committed += r.new_orders + r.payments;
    // The Nth commit attempt crashes, so exactly N-1 committed — and
    // recovery replays exactly that prefix (the torn record is rejected
    // by its length/checksum framing).
    EXPECT_EQ(committed, crash_at - 1) << "crash_at=" << crash_at;
    EXPECT_EQ(replayed, committed) << "crash_at=" << crash_at;
    // Table-level invariant survives the crash: the crashed transaction's
    // updates were applied atomically with its order lines.
    EXPECT_EQ(stock_ytd, orderline_amount) << "crash_at=" << crash_at;
    ASSERT_NE(sim.fault_injector(), nullptr);
    EXPECT_EQ(sim.fault_injector()->injected(FaultKind::kWalCrash), 1u);
    EXPECT_EQ(sim.fault_injector()->recovered(FaultKind::kWalCrash), 1u);
  }
}

// ----------------------------------------- faulted record/replay (golden)

TEST(FaultTrace, FaultedWebRecordReplaysBitIdentically) {
  const std::string path =
      testing::TempDir() + "compass_fault_test.webf.trace";
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault = busy_plan(17);
  trace::TraceRecorder recorder(cfg, path);
  cfg.trace_sink = &recorder;
  workloads::WebScenario sc;
  sc.requests = 10;
  const workloads::ScenarioStats live = workloads::run_web(cfg, sc);
  recorder.finalize();

  const trace::TraceData data = trace::TraceReader::read_file(path);
  const sim::SimulationConfig decoded = trace::decode_config(data.config);
  EXPECT_TRUE(decoded.fault.enabled());  // the plan travelled with the trace
  trace::TraceReplayer replayer(data, decoded);
  replayer.run();
  const stats::StatsSnapshot replay = stats::make_snapshot(
      replayer.now(), replayer.stats(), replayer.breakdown());
  const std::vector<std::string> diffs =
      trace::golden_diff(live.snapshot, replay);
  for (const std::string& d : diffs) ADD_FAILURE() << d;
  EXPECT_EQ(live.snapshot.cycles, replay.cycles);
  std::remove(path.c_str());
}

TEST(FaultTrace, FaultedPreemptiveSciReplaysBitIdentically) {
  const std::string path =
      testing::TempDir() + "compass_fault_test.scij.trace";
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.core.preemptive = true;
  cfg.core.quantum = 40'000;
  cfg.fault.seed = 23;
  cfg.fault.sched_jitter_prob = 0.8;
  cfg.fault.sched_jitter_cycles = 15'000;
  cfg.fault.oscall_eintr_prob = 0.1;
  trace::TraceRecorder recorder(cfg, path);
  cfg.trace_sink = &recorder;
  workloads::SciScenario sc;
  sc.matmul.n = 16;
  sc.matmul.nprocs = 2;
  const workloads::ScenarioStats live = workloads::run_sci(cfg, sc);
  recorder.finalize();

  const trace::TraceData data = trace::TraceReader::read_file(path);
  trace::TraceReplayer replayer(data, trace::decode_config(data.config));
  replayer.run();
  const stats::StatsSnapshot replay = stats::make_snapshot(
      replayer.now(), replayer.stats(), replayer.breakdown());
  const std::vector<std::string> diffs =
      trace::golden_diff(live.snapshot, replay);
  for (const std::string& d : diffs) ADD_FAILURE() << d;
  std::remove(path.c_str());
}

// ------------------------------------------------------- regression fixes

TEST(FaultDev, FailedDiskRequestsDoNotCountAsTransfers) {
  stats::StatsRegistry reg;
  dev::DiskConfig dc;
  dev::Disk disk(0, dc, &reg);
  const Cycles clean = disk.submit(10, 1, /*write=*/false, 0);
  EXPECT_GT(clean, 0u);
  EXPECT_EQ(reg.counter_value("disk0.reads"), 1u);

  // An errored request fails fast: no read/block accounting, only errors.
  disk.submit(20, 4, /*write=*/false, clean, DiskFault::kError);
  EXPECT_EQ(reg.counter_value("disk0.reads"), 1u);
  EXPECT_EQ(reg.counter_value("disk0.errors"), 1u);

  // A timed-out request holds the disk longer than a clean one would and
  // still transfers nothing.
  const std::uint64_t blocks_before = reg.counter_value("disk0.blocks");
  const Cycles t0 = disk.submit(30, 1, /*write=*/true, 2 * clean);
  const Cycles t1 = disk.submit(30, 1, /*write=*/true, t0,
                                DiskFault::kTimeout, 250'000);
  EXPECT_GE(t1, t0 + 250'000);
  EXPECT_EQ(reg.counter_value("disk0.timeouts"), 1u);
  EXPECT_EQ(reg.counter_value("disk0.writes"), 1u);  // only the clean write
  EXPECT_EQ(reg.counter_value("disk0.blocks"), blocks_before + 1);
}

TEST(FaultSock, ListenerCloseFreesPendingConnections) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  Simulation sim(cfg);
  // A client SYN arrives while the server is listening; the server closes
  // the listener without ever accepting. The half-open connection socket
  // and its queued state must be torn down with the listener.
  sim.backend().scheduler().schedule_at(20'000, [&sim] {
    os::FrameHeader syn{0x20001, 7070, os::kFrameSyn, 0, 0, 0, 0};
    sim.devices().deliver_rx_frame(os::make_frame(syn, {}));
  });
  sim.spawn("server", [&](Proc& p) {
    const auto lsock = p.socket();
    ASSERT_GE(lsock, 0);
    ASSERT_EQ(p.bind(lsock, 7070), 0);
    ASSERT_EQ(p.listen(lsock), 0);
    const std::int32_t fds[1] = {static_cast<std::int32_t>(lsock)};
    EXPECT_EQ(p.select(fds), lsock);  // SYN queued the pending connection
    EXPECT_EQ(p.close(lsock), 0);     // close without accepting
  });
  sim.run();
  EXPECT_EQ(sim.kernel().net().open_sockets(), 0u);
}

}  // namespace
}  // namespace compass
