// Tests for the physical-device models: disk timing/queueing, ethernet
// staging + wire, the interval timer, and the DeviceHub interrupt plumbing.
#include <gtest/gtest.h>

#include <atomic>

#include "core/frontend.h"
#include "dev/device_hub.h"
#include "mem/machine.h"

namespace compass::dev {
namespace {

TEST(Disk, ServiceIncludesTransferPerBlock) {
  Disk d(0, DiskConfig{});
  const Cycles one = d.submit(100, 1, false, 0);
  Disk d2(0, DiskConfig{});
  const Cycles four = d2.submit(100, 4, false, 0);
  EXPECT_EQ(four - one, 3 * DiskConfig{}.per_block_transfer);
}

TEST(Disk, SeekScalesWithDistanceUpToMax) {
  DiskConfig cfg;
  Disk d(0, cfg);
  d.submit(0, 1, false, 0);
  Disk d2(0, cfg);
  d2.submit(0, 1, false, 0);
  // Next request: near vs far seek from block 1.
  const Cycles near_done = d.submit(2, 1, false, 1'000'000'000);
  const Cycles far_done = d2.submit(100'000'000, 1, false, 1'000'000'000);
  EXPECT_GT(far_done, near_done);
  // Seek is bounded by seek_max.
  Disk d3(0, cfg);
  d3.submit(0, 1, false, 0);
  const Cycles bounded = d3.submit(~0ull / 2, 1, false, 1'000'000'000);
  EXPECT_LE(bounded - 1'000'000'000,
            cfg.fixed_overhead + cfg.seek_max + cfg.rotational_avg +
                cfg.per_block_transfer);
}

TEST(Disk, FifoQueueingDelaysSecondRequest) {
  Disk d(0, DiskConfig{});
  const Cycles first = d.submit(10, 1, false, 0);
  const Cycles second = d.submit(10, 1, true, 0);  // same instant
  EXPECT_GT(second, first);
}

TEST(Disk, StatsRecorded) {
  stats::StatsRegistry reg;
  Disk d(3, DiskConfig{}, &reg);
  d.submit(1, 2, false, 0);
  d.submit(5, 1, true, 0);
  EXPECT_EQ(reg.counter_value("disk3.reads"), 1u);
  EXPECT_EQ(reg.counter_value("disk3.writes"), 1u);
  EXPECT_EQ(reg.counter_value("disk3.blocks"), 3u);
}

TEST(Disk, ZeroBlocksThrows) {
  Disk d(0, DiskConfig{});
  EXPECT_THROW(d.submit(0, 0, false, 0), util::SimError);
}

class RecordingWire : public Wire {
 public:
  void on_tx(std::vector<std::uint8_t> frame, Cycles done) override {
    frames.push_back(std::move(frame));
    times.push_back(done);
  }
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<Cycles> times;
};

TEST(Ethernet, StageTransmitDeliversToWire) {
  Ethernet eth(EthernetConfig{});
  RecordingWire wire;
  eth.set_wire(&wire);
  const auto id = eth.stage_tx({1, 2, 3, 4});
  EXPECT_EQ(eth.pending_tx(), 1u);
  const Cycles done = eth.transmit(id, 100);
  EXPECT_GT(done, 100u);
  ASSERT_EQ(wire.frames.size(), 1u);
  EXPECT_EQ(wire.frames[0], (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(wire.times[0], done);
  EXPECT_EQ(eth.pending_tx(), 0u);
}

TEST(Ethernet, LargerFramesTakeLonger) {
  Ethernet eth(EthernetConfig{});
  const auto small = eth.stage_tx(std::vector<std::uint8_t>(100));
  const Cycles t1 = eth.transmit(small, 0);
  Ethernet eth2(EthernetConfig{});
  const auto big = eth2.stage_tx(std::vector<std::uint8_t>(10'000));
  const Cycles t2 = eth2.transmit(big, 0);
  EXPECT_GT(t2, t1);
}

TEST(Ethernet, RxRingIsFifo) {
  Ethernet eth(EthernetConfig{});
  eth.inject_rx({9, 8, 7});
  eth.inject_rx({1, 2});
  EXPECT_EQ(eth.pending_rx(), 2u);
  EXPECT_EQ(eth.take_next_rx(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(eth.take_next_rx(), (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(eth.pending_rx(), 0u);
  EXPECT_THROW(eth.take_next_rx(), util::SimError);
}

TEST(Ethernet, UnknownTxIdThrows) {
  Ethernet eth(EthernetConfig{});
  EXPECT_THROW(eth.transmit(42, 0), util::SimError);
}

// --------------------------------------------------- hub + backend plumbing

struct HubSim {
  explicit HubSim(core::SimConfig cfg, DeviceHubConfig hub_cfg = {})
      : comm(cfg.num_cpus), mem(5), hub(hub_cfg, &reg) {
    core::Backend::Hooks hooks;
    hooks.memsys = &mem;
    hooks.devices = &hub;
    backend = std::make_unique<core::Backend>(cfg, comm, hooks);
    hub.bind(*backend);
  }
  stats::StatsRegistry reg;
  core::Communicator comm;
  mem::FlatMemory mem;
  DeviceHub hub;
  std::unique_ptr<core::Backend> backend;
};

core::SimConfig one_cpu() {
  core::SimConfig cfg;
  cfg.num_cpus = 1;
  return cfg;
}

TEST(DeviceHub, DiskCompletionInterruptCarriesTag) {
  HubSim sim(one_cpu());
  core::Frontend io(*sim.backend, "io");
  core::Frontend spin(*sim.backend, "spin");
  std::atomic<bool> woke{false};
  core::CpuState* cs = &sim.comm.cpu_state(0);
  auto hook = [cs](core::SimContext& ctx) {
    ctx.irq_enter(0);
    while (auto d = cs->pop())
      if (d->irq == core::Irq::kDisk) ctx.wakeup(d->payload);
    ctx.irq_exit();
  };
  io.context().set_interrupt_hook(hook);
  spin.context().set_interrupt_hook(hook);
  io.start([&](core::SimContext& ctx) {
    ctx.compute(10);
    ctx.dev_request(static_cast<std::uint64_t>(DevOp::kDiskRead), 7,
                    (0ull << 32) | 2, 0xCAFE);
    ctx.block_on(0xCAFE);
    woke = true;
  });
  spin.start([](core::SimContext& ctx) {
    for (int i = 0; i < 40000; ++i) {
      ctx.compute(50);
      ctx.load(0x10, 8);
    }
  });
  sim.backend->run();
  io.join();
  spin.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(sim.reg.counter_value("disk0.reads"), 1u);
}

TEST(DeviceHub, TimerTicksRaiseInterrupts) {
  core::SimConfig cfg = one_cpu();
  DeviceHubConfig hub_cfg;
  hub_cfg.timer_interval = 10'000;
  HubSim sim(cfg, hub_cfg);
  core::Frontend f(*sim.backend, "app");
  std::atomic<int> ticks{0};
  core::CpuState* cs = &sim.comm.cpu_state(0);
  f.context().set_interrupt_hook([&, cs](core::SimContext& ctx) {
    ctx.irq_enter(0);
    while (auto d = cs->pop())
      if (d->irq == core::Irq::kTimer) ++ticks;
    ctx.irq_exit();
  });
  f.start([](core::SimContext& ctx) {
    for (int i = 0; i < 2000; ++i) {
      ctx.compute(50);
      ctx.load(0x20, 8);
    }
  });
  sim.backend->run();
  f.join();
  // ~100k cycles of work with a 10k-cycle timer → several ticks.
  EXPECT_GE(ticks.load(), 5);
}

TEST(DeviceHub, BadOpThrows) {
  HubSim sim(one_cpu());
  const std::array<std::uint64_t, 4> args{999, 0, 0, 0};
  EXPECT_THROW(sim.hub.device_request(0, 0, 0, args), util::SimError);
}

TEST(DeviceHub, DiskIdRouting) {
  DeviceHubConfig cfg;
  cfg.num_disks = 3;
  stats::StatsRegistry reg;
  DeviceHub hub(cfg, &reg);
  EXPECT_EQ(hub.num_disks(), 3);
  EXPECT_EQ(hub.disk(2).id(), 2);
  EXPECT_THROW(hub.disk(3), util::SimError);
}

}  // namespace
}  // namespace compass::dev
