// Workload tests: the mini database engine (buffer pool, B+-tree, heap
// table, WAL, TPCC/TPCD drivers), the web stack (fileset, trace, server +
// player), and the scientific kernels — both simulating and native.
#include <gtest/gtest.h>

#include "os/fs.h"
#include "sim/native_env.h"
#include "sim/simulation.h"
#include "workloads/db/tpcc.h"
#include "workloads/db/tpcd.h"
#include "workloads/sci/kernels.h"
#include "workloads/web/server.h"
#include "workloads/web/trace.h"

namespace compass::workloads {
namespace {

using sim::BackendModel;
using sim::Proc;
using sim::Simulation;
using sim::SimulationConfig;

SimulationConfig small_sim(int cpus = 2) {
  SimulationConfig cfg;
  cfg.core.num_cpus = cpus;
  cfg.model = BackendModel::kSimple;
  cfg.user_heap_bytes = 8ull << 20;
  return cfg;
}

// --------------------------------------------------------------- usync

TEST(Usync, LatchMutualExclusion) {
  Simulation sim(small_sim(2));
  // Two processes increment a shared counter under a latch; no lost
  // updates allowed.
  constexpr int kIters = 50;
  auto latch = std::make_shared<ULatch>();
  std::atomic<std::int64_t> final_value{-1};
  sim.spawn("init", [&](Proc& p) {
    const auto segid = p.shmget(1, 4096);
    const auto base = static_cast<Addr>(p.shmat(segid));
    latch->init(p, base);
    p.write<std::int64_t>(base + 8, 0);
    p.sem_init(1, 0);
    p.sem_v(1);
    p.sem_v(1);
    // Wait for both workers.
    p.sem_init(2, 0);
    p.sem_p(2);
    p.sem_p(2);
    final_value = p.read<std::int64_t>(base + 8);
  });
  for (int w = 0; w < 2; ++w) {
    sim.spawn(std::string("w").append(std::to_string(w)), [&, w](Proc& p) {
      const auto segid = p.shmget(1, 4096);
      const auto base = static_cast<Addr>(p.shmat(segid));
      p.sem_init(1, 0);
      p.sem_p(1);
      for (int i = 0; i < kIters; ++i) {
        latch->lock(p);
        const auto v = p.read<std::int64_t>(base + 8);
        p.ctx().compute(100);  // widen the race window
        p.write<std::int64_t>(base + 8, v + 1);
        latch->unlock(p);
      }
      p.sem_init(2, 0);
      p.sem_v(2);
      (void)w;
    });
  }
  sim.run();
  EXPECT_EQ(final_value.load(), 2 * kIters);
}

TEST(Usync, BarrierRounds) {
  Simulation sim(small_sim(2));
  constexpr int kProcs = 3;
  constexpr int kRounds = 5;
  auto barrier = std::make_shared<UBarrier>();
  // Shared round counter array; each round, every proc writes its slot,
  // then after the barrier everyone checks all slots.
  std::atomic<int> violations{0};
  sim.spawn("init", [&](Proc& p) {
    const auto segid = p.shmget(2, 4096);
    const auto base = static_cast<Addr>(p.shmat(segid));
    barrier->init(p, kProcs, base);
    for (int i = 0; i < kProcs; ++i)
      p.write<std::int64_t>(base + 256 + static_cast<Addr>(i) * 8, -1);
    p.sem_init(9, 0);
    for (int i = 0; i < kProcs; ++i) p.sem_v(9);
  });
  for (int w = 0; w < kProcs; ++w) {
    sim.spawn(std::string("w").append(std::to_string(w)), [&, w](Proc& p) {
      const auto segid = p.shmget(2, 4096);
      const auto base = static_cast<Addr>(p.shmat(segid));
      p.sem_init(9, 0);
      p.sem_p(9);
      for (int round = 0; round < kRounds; ++round) {
        p.write<std::int64_t>(base + 256 + static_cast<Addr>(w) * 8, round);
        barrier->arrive(p);
        for (int i = 0; i < kProcs; ++i) {
          const auto v = p.read<std::int64_t>(base + 256 + static_cast<Addr>(i) * 8);
          if (v < round) ++violations;
        }
        barrier->arrive(p);
      }
    });
  }
  sim.run();
  EXPECT_EQ(violations.load(), 0);
}

// ------------------------------------------------------------ db engine

TEST(DbEngine, BTreeInsertLookupScanSim) {
  Simulation sim(small_sim(1));
  bool ok_lookups = true;
  std::uint64_t scanned = 0;
  sim.spawn("db", [&](Proc& p) {
    db::DbConfig dbc;
    dbc.pool_pages = 64;
    db::BufferPool pool(dbc);
    pool.register_file(1, "/db/idx");
    pool.init(p);
    db::BTree tree(pool, 1);
    tree.create(p);
    // Enough keys to force splits (fanout ≈ 254).
    constexpr std::int64_t kN = 900;
    for (std::int64_t k = 0; k < kN; ++k)
      tree.insert(p, (k * 37) % kN, static_cast<std::uint64_t>(k) + 1);
    for (std::int64_t k = 0; k < kN; k += 17) {
      const auto v = tree.lookup(p, k);
      if (!v.has_value()) ok_lookups = false;
    }
    if (tree.lookup(p, 100000).has_value()) ok_lookups = false;
    std::int64_t prev = -1;
    scanned = tree.scan(p, 0, kN, [&](std::int64_t k, std::uint64_t) {
      if (k <= prev) ok_lookups = false;  // must be sorted
      prev = k;
    });
    if (tree.size(p) != kN) ok_lookups = false;
  });
  sim.run();
  EXPECT_TRUE(ok_lookups);
  EXPECT_EQ(scanned, 900u);
}

TEST(DbEngine, TableAppendReadUpdate) {
  Simulation sim(small_sim(1));
  bool ok = true;
  sim.spawn("db", [&](Proc& p) {
    db::DbConfig dbc;
    dbc.pool_pages = 32;
    db::BufferPool pool(dbc);
    pool.register_file(1, "/db/t");
    pool.init(p);
    db::Table t(pool, 1, 64);
    t.create(p);
    std::vector<db::Rid> rids;
    for (int i = 0; i < 300; ++i) {
      std::array<std::uint8_t, 64> rec{};
      std::memcpy(rec.data(), &i, 4);
      rids.push_back(t.append(p, rec));
      if (t.rid_of(static_cast<std::uint64_t>(i)) != rids.back()) ok = false;
    }
    if (t.count(p) != 300) ok = false;
    std::array<std::uint8_t, 64> out{};
    t.read(p, rids[137], out);
    int v = 0;
    std::memcpy(&v, out.data(), 4);
    if (v != 137) ok = false;
    t.update(p, rids[137], [&](Addr rec) {
      p.write<std::int32_t>(rec, 4242);
    });
    t.read(p, rids[137], out);
    std::memcpy(&v, out.data(), 4);
    if (v != 4242) ok = false;
    // Scan visits everything once.
    std::uint64_t n = t.for_each(p, [](db::Rid, Addr) {});
    if (n != 300) ok = false;
  });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(DbEngine, BufferPoolEvictsAndRereads) {
  SimulationConfig cfg = small_sim(1);
  cfg.kernel.buffer_cache_buffers = 8;  // force kernel-cache evictions too
  Simulation sim(cfg);
  std::uint64_t misses = 0;
  bool ok = true;
  sim.spawn("db", [&](Proc& p) {
    db::DbConfig dbc;
    dbc.pool_pages = 4;  // tiny pool forces eviction
    db::BufferPool pool(dbc);
    pool.register_file(1, "/db/small");
    pool.init(p);
    // Write distinct data into 12 pages through the pool.
    for (std::uint32_t pg = 1; pg <= 12; ++pg) {
      const Addr f = pool.pin(p, {1, pg});
      p.write<std::uint64_t>(f + 64, pg * 1111);
      pool.unpin(p, {1, pg}, true);
    }
    // Read them all back (requires eviction + refetch).
    for (std::uint32_t pg = 1; pg <= 12; ++pg) {
      const Addr f = pool.pin(p, {1, pg});
      if (p.read<std::uint64_t>(f + 64) != pg * 1111) ok = false;
      pool.unpin(p, {1, pg}, false);
    }
    misses = pool.misses();
  });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GT(misses, 12u);  // every page missed at least once
  EXPECT_GT(sim.stats().counter_value("disk0.writes"), 0u);
}

TEST(DbEngine, TpccConsistencyAcrossWorkers) {
  Simulation sim(small_sim(2));
  db::TpccConfig tc;
  tc.warehouses = 2;
  tc.items = 120;
  tc.customers_per_wh = 20;
  tc.txns_per_worker = 12;
  tc.db.pool_pages = 96;
  auto tpcc = std::make_shared<db::Tpcc>(tc);
  constexpr int kWorkers = 2;
  std::array<db::Tpcc::WorkerResult, kWorkers> results;
  std::atomic<std::int64_t> stock_ytd{-1}, ol_amount{-2}, wh_ytd{-3},
      pay_total{0};
  sim.spawn("coord", [&](Proc& p) {
    tpcc->setup(p);
    p.sem_init(5, 0);
    for (int i = 0; i < kWorkers; ++i) p.sem_v(5);
    p.sem_init(6, 0);
    for (int i = 0; i < kWorkers; ++i) p.sem_p(6);
    stock_ytd = tpcc->total_stock_ytd(p);
    ol_amount = tpcc->total_orderline_amount(p);
    wh_ytd = tpcc->total_warehouse_ytd(p);
  });
  for (int w = 0; w < kWorkers; ++w) {
    sim.spawn("worker" + std::to_string(w), [&, w](Proc& p) {
      p.sem_init(5, 0);
      p.sem_p(5);
      results[static_cast<std::size_t>(w)] = tpcc->worker(p, w);
      p.sem_init(6, 0);
      p.sem_v(6);
    });
  }
  sim.run();
  std::uint64_t new_orders = 0, payments = 0;
  for (const auto& r : results) {
    new_orders += r.new_orders;
    payments += r.payments;
  }
  EXPECT_EQ(new_orders + payments,
            static_cast<std::uint64_t>(kWorkers * tc.txns_per_worker));
  // Invariants: stock ytd == order line totals; warehouse ytd == payments.
  EXPECT_EQ(stock_ytd.load(), ol_amount.load());
  EXPECT_GT(new_orders, 0u);
  EXPECT_GT(payments, 0u);
  EXPECT_GT(tpcc->wal().commits(), 0u);
  EXPECT_GT(tpcc->wal().fsyncs(), 0u);
  (void)pay_total;
  EXPECT_GE(wh_ytd.load(), 0);
}

TEST(DbEngine, TpcdQ1MatchesAcrossAccessPaths) {
  // Q1 via the buffer pool must equal Q1 via mmap, and both must equal a
  // host-side reference computed from the generator stream.
  db::TpcdConfig tc;
  tc.lineitems = 800;
  tc.db.pool_pages = 48;

  // Host reference.
  util::Rng rng(tc.seed);
  db::Tpcd::Q1Result ref{};
  for (std::uint64_t i = 0; i < tc.lineitems; ++i) {
    db::LineItemRec rec{};
    rec.orderkey = static_cast<std::int64_t>(i / 4);
    rec.partkey = rng.next_in(0, 9999);
    rec.quantity = rng.next_in(1, 50);
    rec.extendedprice = rng.next_in(100, 100'000);
    rec.discount_pct = rng.next_in(0, 10);
    rec.tax_pct = rng.next_in(0, 8);
    rec.shipdate = static_cast<std::int32_t>(rng.next_in(0, 2555));
    rec.returnflag = static_cast<std::uint8_t>(rng.next_in(0, 1));
    rec.linestatus = static_cast<std::uint8_t>(rng.next_in(0, 1));
    auto& g = ref[static_cast<std::size_t>(rec.returnflag * 2 + rec.linestatus)];
    ++g.count;
    g.sum_qty += rec.quantity;
    g.sum_price += rec.extendedprice;
    g.sum_disc_price += rec.extendedprice * (100 - rec.discount_pct) / 100;
  }

  Simulation sim(small_sim(2));
  auto tpcd = std::make_shared<db::Tpcd>(tc);
  db::Tpcd::Q1Result via_pool{}, via_mmap{};
  sim.spawn("dss", [&](Proc& p) {
    tpcd->setup(p);
    via_pool = tpcd->q1(p);
    via_mmap = tpcd->q1_mmap(p);
  });
  sim.run();
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(via_pool[g].count, ref[g].count) << "group " << g;
    EXPECT_EQ(via_pool[g].sum_qty, ref[g].sum_qty);
    EXPECT_EQ(via_pool[g].sum_price, ref[g].sum_price);
    EXPECT_EQ(via_pool[g].sum_disc_price, ref[g].sum_disc_price);
    EXPECT_EQ(via_mmap[g].count, ref[g].count);
    EXPECT_EQ(via_mmap[g].sum_disc_price, ref[g].sum_disc_price);
  }
}

TEST(DbEngine, TpcdPartitionedQ6SumsToWhole) {
  db::TpcdConfig tc;
  tc.lineitems = 600;
  tc.db.pool_pages = 64;
  Simulation sim(small_sim(2));
  auto tpcd = std::make_shared<db::Tpcd>(tc);
  std::atomic<std::int64_t> whole{0}, parts{0};
  sim.spawn("coord", [&](Proc& p) {
    tpcd->setup(p);
    whole = tpcd->q6(p);
    p.sem_init(3, 0);
    p.sem_v(3);
    p.sem_v(3);
  });
  std::array<std::int64_t, 2> partial{};
  for (int w = 0; w < 2; ++w) {
    sim.spawn(std::string("w").append(std::to_string(w)), [&, w](Proc& p) {
      p.sem_init(3, 0);
      p.sem_p(3);
      partial[static_cast<std::size_t>(w)] = tpcd->q6(p, w, 2);
    });
  }
  sim.run();
  parts = partial[0] + partial[1];
  EXPECT_EQ(whole.load(), parts.load());
  EXPECT_NE(whole.load(), 0);
}

TEST(DbEngine, NativeMatchesSimulatedResults) {
  // The same TPCD Q1 on the native environment must produce identical
  // query results (execution-driven correctness independent of timing).
  db::TpcdConfig tc;
  tc.lineitems = 300;
  tc.db.pool_pages = 32;

  db::Tpcd::Q1Result sim_result{};
  {
    Simulation s(small_sim(1));
    auto tpcd = std::make_shared<db::Tpcd>(tc);
    s.spawn("dss", [&](Proc& p) {
      tpcd->setup(p);
      sim_result = tpcd->q1(p);
    });
    s.run();
  }
  db::Tpcd::Q1Result native_result{};
  {
    sim::NativeEnv env;
    db::Tpcd tpcd(tc);
    Proc& p = env.add_process("raw");
    tpcd.setup(p);
    native_result = tpcd.q1(p);
  }
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(sim_result[g].count, native_result[g].count);
    EXPECT_EQ(sim_result[g].sum_disc_price, native_result[g].sum_disc_price);
  }
}

// ------------------------------------------------------------------ web

TEST(Web, FilesetPopulatesAndPicks) {
  web::FilesetConfig fc;
  fc.dirs = 2;
  fc.files_per_class = 2;
  web::Fileset fs(fc);
  EXPECT_EQ(fs.num_files(), 2 * 4 * 2);
  // Class mix: class 1 must be picked most often.
  util::Rng rng(1);
  std::array<int, 4> per_class{};
  for (int i = 0; i < 20000; ++i) {
    const std::string& path = fs.pick(rng);
    const auto pos = path.find("class");
    per_class[static_cast<std::size_t>(path[pos + 5] - '0')]++;
  }
  EXPECT_GT(per_class[1], per_class[0]);
  EXPECT_GT(per_class[0], per_class[2]);
  EXPECT_GT(per_class[2], per_class[3]);
}

TEST(Web, TraceSerializeParseRoundTrip) {
  web::FilesetConfig fc;
  web::Fileset fs(fc);
  const web::Trace t = web::Trace::generate(fs, 20, 10'000, 99);
  ASSERT_EQ(t.entries.size(), 20u);
  const web::Trace t2 = web::Trace::parse(t.serialize());
  ASSERT_EQ(t2.entries.size(), t.entries.size());
  for (std::size_t i = 0; i < t.entries.size(); ++i) {
    EXPECT_EQ(t.entries[i].start, t2.entries[i].start);
    EXPECT_EQ(t.entries[i].path, t2.entries[i].path);
  }
}

TEST(Web, ServerServesTraceEndToEnd) {
  SimulationConfig cfg = small_sim(2);
  Simulation sim(cfg);
  web::FilesetConfig fc;
  fc.dirs = 2;
  fc.files_per_class = 2;
  fc.size_scale = 0.05;
  web::Fileset fileset(fc);
  fileset.populate(sim.kernel().fs());

  const web::Trace trace = web::Trace::generate(fileset, 10, 100'000, 5);
  // Expected bytes: sum of file sizes + headers.
  std::uint64_t expected_body = 0;
  for (const auto& e : trace.entries)
    expected_body += sim.kernel().fs().file_size(e.path);

  web::TracePlayerConfig pc;
  pc.concurrency = 3;
  pc.num_servers = 1;
  web::TracePlayer player(sim, trace, pc);
  player.install();

  web::WebServerConfig wc;
  web::WebServerResult result;
  sim.spawn("httpd", [&](Proc& p) {
    web::WebServer server(wc);
    result = server.run(p);
  });
  sim.run();
  EXPECT_EQ(player.completed(), 10u);
  EXPECT_EQ(result.requests, 11u);  // 10 + quit
  EXPECT_GE(player.response_bytes(), expected_body);
  EXPECT_GT(sim.breakdown().shares().os_total, 30.0);  // web is OS-heavy
}

TEST(Web, PreforkServersShareThePort) {
  SimulationConfig cfg = small_sim(2);
  Simulation sim(cfg);
  web::FilesetConfig fc;
  fc.dirs = 1;
  fc.files_per_class = 1;
  fc.size_scale = 0.05;
  web::Fileset fileset(fc);
  fileset.populate(sim.kernel().fs());
  const web::Trace trace = web::Trace::generate(fileset, 8, 50'000, 6);

  web::TracePlayerConfig pc;
  pc.concurrency = 2;
  pc.num_servers = 2;
  web::TracePlayer player(sim, trace, pc);
  player.install();

  std::array<web::WebServerResult, 2> results;
  for (int s = 0; s < 2; ++s) {
    sim.spawn("httpd" + std::to_string(s), [&, s](Proc& p) {
      web::WebServer server(web::WebServerConfig{});
      results[static_cast<std::size_t>(s)] = server.run(p);
    });
  }
  sim.run();
  EXPECT_EQ(player.completed(), 8u);
  // Round-robin SYN delivery: both servers served something.
  EXPECT_GT(results[0].requests, 0u);
  EXPECT_GT(results[1].requests, 0u);
  EXPECT_EQ(results[0].requests + results[1].requests, 8u + 2u);
}

// ------------------------------------------------------------------ sci

TEST(Sci, MatmulMatchesReference) {
  sci::MatmulConfig mc;
  mc.n = 24;
  mc.block = 8;
  mc.nprocs = 2;
  Simulation sim(small_sim(2));
  auto mm = std::make_shared<sci::ParallelMatmul>(mc);
  std::atomic<std::int64_t> checksum{0};
  sim.spawn("coord", [&](Proc& p) {
    mm->setup(p);
    p.sem_init(4, 0);
    p.sem_v(4);
    p.sem_v(4);
    p.sem_init(8, 0);
    p.sem_p(8);
    p.sem_p(8);
    checksum = mm->checksum(p);
  });
  for (int w = 0; w < 2; ++w) {
    sim.spawn(std::string("w").append(std::to_string(w)), [&, w](Proc& p) {
      p.sem_init(4, 0);
      p.sem_p(4);
      mm->worker(p, w);
      p.sem_init(8, 0);
      p.sem_v(8);
    });
  }
  sim.run();
  EXPECT_EQ(checksum.load(), mm->expected_checksum());
  // Scientific code is user-dominated (the paper's contrast).
  EXPECT_GT(sim.breakdown().shares().user, 60.0);
}

TEST(Sci, ReduceSumsCorrectly) {
  sci::ReduceConfig rc;
  rc.elements = 2000;
  rc.nprocs = 3;
  Simulation sim(small_sim(2));
  auto red = std::make_shared<sci::ParallelReduce>(rc);
  std::atomic<std::int64_t> result{0};
  sim.spawn("coord", [&](Proc& p) {
    red->setup(p);
    p.sem_init(4, 0);
    for (int i = 0; i < rc.nprocs; ++i) p.sem_v(4);
    p.sem_init(8, 0);
    for (int i = 0; i < rc.nprocs; ++i) p.sem_p(8);
    result = red->result(p);
  });
  for (int w = 0; w < rc.nprocs; ++w) {
    sim.spawn(std::string("w").append(std::to_string(w)), [&, w](Proc& p) {
      p.sem_init(4, 0);
      p.sem_p(4);
      red->worker(p, w);
      p.sem_init(8, 0);
      p.sem_v(8);
    });
  }
  sim.run();
  EXPECT_EQ(result.load(), red->expected());
}

}  // namespace
}  // namespace compass::workloads
