// Unit tests for stats: counters, histograms, time breakdown, tables, and
// the snapshot JSON codec's rejection of malformed input.
#include <gtest/gtest.h>

#include "stats/counters.h"
#include "stats/json.h"
#include "stats/report.h"
#include "stats/time_breakdown.h"
#include "util/check.h"
#include "util/rng.h"

namespace compass::stats {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BasicMoments) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 10}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 20u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, ZeroSample) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.max());
}

TEST(Histogram, LargeSamples) {
  Histogram h;
  h.record(~0ull);
  h.record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
}

TEST(Histogram, Reset) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(StatsRegistry, NamedAccessAndMissing) {
  StatsRegistry r;
  r.counter("a").inc(3);
  EXPECT_EQ(r.counter_value("a"), 3u);
  EXPECT_EQ(r.counter_value("missing"), 0u);
  r.histogram("h").record(7);
  EXPECT_EQ(r.histograms().at("h").count(), 1u);
  r.reset_all();
  EXPECT_EQ(r.counter_value("a"), 0u);
}

TEST(TimeBreakdown, SharesMatchCharges) {
  TimeBreakdown tb(2);
  tb.charge(0, ExecMode::kUser, 800);
  tb.charge(0, ExecMode::kKernel, 150);
  tb.charge(1, ExecMode::kInterrupt, 50);
  tb.charge(1, ExecMode::kIdle, 500);
  const TimeShares s = tb.shares();
  EXPECT_NEAR(s.user, 80.0, 1e-9);
  EXPECT_NEAR(s.kernel, 15.0, 1e-9);
  EXPECT_NEAR(s.interrupt, 5.0, 1e-9);
  EXPECT_NEAR(s.os_total, 20.0, 1e-9);
  // Idle excluded from the busy-time denominator (Table 1 semantics).
  EXPECT_EQ(tb.total().busy(), 1000u);
  EXPECT_EQ(tb.total()[ExecMode::kIdle], 500u);
}

TEST(TimeBreakdown, EmptyIsZero) {
  TimeBreakdown tb(1);
  const TimeShares s = tb.shares();
  EXPECT_EQ(s.user, 0.0);
  EXPECT_EQ(s.os_total, 0.0);
}

TEST(TimeBreakdown, PerCpuAccounting) {
  TimeBreakdown tb(3);
  tb.charge(2, ExecMode::kUser, 42);
  EXPECT_EQ(tb.cpu(2)[ExecMode::kUser], 42u);
  EXPECT_EQ(tb.cpu(0)[ExecMode::kUser], 0u);
  tb.reset();
  EXPECT_EQ(tb.cpu(2)[ExecMode::kUser], 0u);
}

TEST(TimeBreakdown, BadCpuThrows) {
  TimeBreakdown tb(1);
  EXPECT_THROW(tb.charge(5, ExecMode::kUser, 1), util::SimError);
}

TEST(TimeBreakdown, ToStringMentionsShares) {
  TimeBreakdown tb(1);
  tb.charge(0, ExecMode::kUser, 50);
  tb.charge(0, ExecMode::kKernel, 50);
  const std::string s = tb.to_string("test");
  EXPECT_NE(s.find("user 50.0%"), std::string::npos);
  EXPECT_NE(s.find("OS 50.0%"), std::string::npos);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), util::SimError);
}

TEST(Format, Helpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pct(85.06), "85.1%");
  EXPECT_EQ(with_commas(34841), "34,841");
  EXPECT_EQ(with_commas(7), "7");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

// ---- snapshot JSON codec ---------------------------------------------------

namespace {

StatsSnapshot sample_snapshot() {
  StatsSnapshot snap;
  snap.cycles = 123456789;
  snap.counters = {{"backend.mem_refs", 592261},
                   {"os.syscalls", 9468},
                   {"weird \"name\"\\with\tescapes", 7}};
  snap.cpu_time = {{1, 2, 3, 4}, {0, 0, 0, 0}};
  snap.histograms["web.latency"] = HistSummary{10, 1000, 5, 400};
  return snap;
}

}  // namespace

TEST(StatsJson, RoundTripPreservesEverything) {
  const StatsSnapshot snap = sample_snapshot();
  const StatsSnapshot back = parse_stats_json(to_json(snap));
  EXPECT_EQ(back.cycles, snap.cycles);
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.cpu_time, snap.cpu_time);
  ASSERT_EQ(back.histograms.size(), 1u);
  const HistSummary& h = back.histograms.at("web.latency");
  EXPECT_EQ(h.count, 10u);
  EXPECT_EQ(h.sum, 1000u);
  EXPECT_EQ(h.min, 5u);
  EXPECT_EQ(h.max, 400u);
}

TEST(StatsJson, RejectsMalformedDocuments) {
  const char* kBad[] = {
      "",                                     // empty
      "42",                                   // not an object
      "{\"cycles\": }",                       // missing value
      "{\"cycles\": -1}",                     // negative integer
      "{\"cycles\": 1,}",                     // trailing comma
      "{\"cycles\": 1",                       // unterminated object
      "{\"bogus\": 1}",                       // unknown key
      "{\"cycles\": 1} trailing",             // trailing content
      "{\"counters\": {\"a\" 1}}",            // missing colon
      "{\"counters\": {\"a\": \"str\"}}",     // wrong value type
      "{\"cpu_time\": [[1, 2, 3]]}",          // short cpu row
      "{\"cpu_time\": [[1, 2, 3, 4, 5]]}",    // long cpu row
      "{\"histograms\": {\"h\": {\"bogus\": 1}}}",  // unknown hist field
      "{\"counters\": {\"unterminated",       // unterminated string
  };
  for (const char* text : kBad)
    EXPECT_THROW(parse_stats_json(text), util::SimError) << text;
}

TEST(StatsJson, RejectsEveryTruncation) {
  // Any strict prefix of a valid document must throw, never mis-parse.
  const std::string good = to_json(sample_snapshot());
  ASSERT_TRUE(good.size() > 2);
  for (std::size_t n = 0; n + 1 < good.size(); ++n)
    EXPECT_THROW(parse_stats_json(good.substr(0, n)), util::SimError) << n;
}

TEST(StatsJson, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_stats_json("{\"cycles\": 1, \"cycles\": 2}"),
               util::SimError);
  EXPECT_THROW(
      parse_stats_json("{\"counters\": {\"a\": 1, \"a\": 2}}"),
      util::SimError);
  EXPECT_THROW(parse_stats_json("{\"histograms\": {\"h\": {\"count\": 1}, "
                                "\"h\": {\"count\": 2}}}"),
               util::SimError);
  EXPECT_THROW(parse_stats_json("{\"histograms\": {\"h\": {\"count\": 1, "
                                "\"count\": 2}}}"),
               util::SimError);
}

TEST(StatsJson, RandomizedCounterMapRoundTrip) {
  // Property: any counter map — hostile names included — survives
  // to_json/parse unchanged.
  util::Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    StatsSnapshot snap;
    snap.cycles = rng.next_u64() >> 1;
    const int n = static_cast<int>(rng.next_in(0, 40));
    for (int i = 0; i < n; ++i) {
      std::string name;
      const int len = static_cast<int>(rng.next_in(1, 24));
      for (int k = 0; k < len; ++k)
        name += static_cast<char>(rng.next_in(1, 126));  // incl. " \ and ctl
      snap.counters[name] = rng.next_u64();
    }
    const StatsSnapshot back = parse_stats_json(to_json(snap));
    EXPECT_EQ(back.cycles, snap.cycles);
    EXPECT_EQ(back.counters, snap.counters);
  }
}

}  // namespace
}  // namespace compass::stats
