// Tests for the deterministic sharded parallel backend: ShardPool lifecycle
// and barrier semantics (including a create/destroy stress that regresses
// the shutdown lost-wakeup), EventPort::peek_pending, lane-A window
// execution against a direct Backend, and the headline property — for any
// worker count the backend produces bit-identical cycles, counters, CPU
// time and recorded trace bytes across the sci/web/tpcc workloads,
// including preemptive scheduling and an enabled fault plan.
//
// The CI matrix reruns the golden tests under COMPASS_TEST_WORKERS=1|2|4;
// unset, they compare workers 2 and 4 against the serial baseline.
// COMPASS_TEST_FILTER=1 additionally enables the frontend L1 reference
// filter for every run in this file, so worker-count invariance is also
// proven under filtered (coarsened-granularity) batches.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/backend_shard.h"
#include "core/frontend.h"
#include "mem/l1_filter.h"
#include "mem/machine.h"
#include "stats/json.h"
#include "trace/trace_recorder.h"
#include "workloads/runner.h"

namespace compass {
namespace {

using core::Backend;
using core::Communicator;
using core::Event;
using core::EventPort;
using core::Frontend;
using core::Reply;
using core::ShardPool;
using core::SimConfig;
using core::WindowItem;

std::string temp_path(const std::string& name) {
  // Pid-unique: ctest runs each test case as its own process and -j runs
  // them concurrently against the same TempDir.
  return testing::TempDir() + "compass_parallel_test." +
         std::to_string(::getpid()) + "." + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
  std::fclose(f);
  return bytes;
}

/// Worker counts to compare against the serial baseline. The CI matrix pins
/// one value via COMPASS_TEST_WORKERS; locally both 2 and 4 are exercised.
std::vector<int> worker_counts() {
  if (const char* env = std::getenv("COMPASS_TEST_WORKERS")) {
    const int w = std::atoi(env);
    if (w > 1) return {w};
    return {};  // 1 or bad value: the baseline IS the run under test
  }
  return {2, 4};
}

/// CI matrix knob: COMPASS_TEST_FILTER=1 reruns every golden comparison in
/// this file with the frontend L1 reference filter on. The filter changes
/// batch granularity, so each setting compares against its own serial
/// baseline — the invariant under test is worker-count independence.
bool test_filter_enabled() {
  const char* env = std::getenv("COMPASS_TEST_FILTER");
  return env != nullptr && std::atoi(env) != 0;
}

// ------------------------------------------------------------- ShardPool

TEST(ShardPool, CreateDestroyStress) {
  // Start workers and immediately tear them down, repeatedly. Regression
  // for the shutdown lost-wakeup: a destructor that only notified (without
  // advancing the ring head) could fire in the gap between a worker's
  // pre-sleep re-check and its futex wait, leaving join() stuck forever.
  for (int i = 0; i < 200; ++i) {
    ShardPool pool(3, 8, [](WindowItem&) {});
  }
}

TEST(ShardPool, BarrierRunsEveryDelegatedItem) {
  std::atomic<int> ran{0};
  ShardPool pool(3, 16, [&](WindowItem& item) {
    item.local_refs = static_cast<std::uint64_t>(item.proc) * 10;
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<WindowItem> items(12);
  for (int round = 0; round < 50; ++round) {
    ran.store(0);
    pool.begin_window(static_cast<int>(items.size()));
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i].proc = static_cast<ProcId>(i);
      items[i].local_refs = 0;
      pool.push(static_cast<int>(i % 3), &items[i]);
    }
    pool.wait_window();
    EXPECT_EQ(ran.load(), 12);
    // The barrier's acquire pairs with each worker's release decrement:
    // all item writes must be visible to the coordinator here.
    for (std::size_t i = 0; i < items.size(); ++i)
      EXPECT_EQ(items[i].local_refs, i * 10);
  }
}

TEST(ShardPool, WorkerExceptionRethrownAtBarrier) {
  ShardPool pool(2, 8, [](WindowItem& item) {
    if (item.proc == 3) throw util::SimError("boom from shard");
  });
  std::vector<WindowItem> items(4);
  pool.begin_window(4);
  for (int i = 0; i < 4; ++i) {
    items[static_cast<std::size_t>(i)].proc = static_cast<ProcId>(i);
    pool.push(i % 2, &items[static_cast<std::size_t>(i)]);
  }
  EXPECT_THROW(pool.wait_window(), util::SimError);
  // The pool must stay usable after a failed window.
  pool.begin_window(1);
  items[0].proc = 0;
  pool.push(0, &items[0]);
  pool.wait_window();
}

// ------------------------------------------------------ EventPort::peek

TEST(EventPortPeek, ReportsFirstLastAndKind) {
  Communicator comm(1);
  comm.create_port(0);
  EventPort& port = comm.port(0);
  Reply r;
  std::thread frontend([&] {
    std::vector<Event> batch;
    batch.push_back(Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x100, 8, 40));
    batch.push_back(Event::mem_ref(ExecMode::kUser, RefType::kStore, 0x140, 8, 55));
    batch.push_back(Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x180, 8, 70));
    r = port.post_and_wait(batch);
  });
  while (!port.has_pending()) std::this_thread::yield();
  const EventPort::PendingPeek peek = port.peek_pending();
  EXPECT_EQ(peek.first_time, 40u);
  EXPECT_EQ(peek.first_time, port.pending_time());
  EXPECT_EQ(peek.last_time, 70u);
  EXPECT_EQ(peek.kind, core::EventKind::kMemRef);
  (void)port.take_batch();
  Reply reply;
  reply.resume_time = 80;
  port.reply(reply);
  frontend.join();
  EXPECT_EQ(r.resume_time, 80u);
}

// ------------------------------------------------- direct Backend, lane A

struct DirectRun {
  Cycles cycles = 0;
  std::uint64_t windows = 0;
  stats::StatsSnapshot snap;
};

/// Drive a raw Backend with `nprocs` compute+load frontends over a vm-less
/// FlatMemory — the concurrent-access-safe model, so multi-item windows
/// execute fully in parallel on the shard workers (lane A).
DirectRun direct_run(int workers, int nprocs = 6) {
  SimConfig cfg;
  cfg.num_cpus = 4;
  cfg.context_switch_cycles = 100;
  cfg.backend_workers = workers;
  cfg.l1_filter = test_filter_enabled();
  Communicator comm(cfg.num_cpus);
  stats::StatsRegistry reg;
  mem::FlatMemory memsys(10, nullptr, &reg);
  Backend::Hooks hooks;
  hooks.memsys = &memsys;
  Backend backend(cfg, comm, hooks, &reg);

  std::vector<std::unique_ptr<Frontend>> procs;
  core::SimContext::Options opts;
  opts.batch_size = 8;  // batches span time, so windows can chain
  if (cfg.l1_filter)    // flat model: every reference is absorbable
    opts.filter_factory = [] { return std::make_unique<mem::FlatFilter>(10); };
  for (int p = 0; p < nprocs; ++p)
    procs.push_back(
        std::make_unique<Frontend>(backend, "p" + std::to_string(p), opts));
  for (int p = 0; p < nprocs; ++p) {
    const Addr base = 0x1000 + static_cast<Addr>(p) * 0x10000;
    procs[static_cast<std::size_t>(p)]->start([base, p](core::SimContext& ctx) {
      for (int i = 0; i < 300; ++i) {
        ctx.compute(static_cast<Cycles>(13 + (p % 3) * 7));
        ctx.load(base + static_cast<Addr>(i) * 64, 8);
      }
    });
  }
  backend.run();
  for (auto& f : procs) f->join();

  DirectRun out;
  out.cycles = backend.now();
  out.windows = backend.windows_executed();
  out.snap = stats::make_snapshot(backend.now(), reg, backend.time_breakdown());
  return out;
}

TEST(ParallelBackend, LaneAWindowsFormAndMatchSerial) {
  const DirectRun serial = direct_run(1);
  EXPECT_EQ(serial.windows, 0u);  // workers=1 never enters the windowed loop
  for (const int w : worker_counts()) {
    const DirectRun par = direct_run(w);
    EXPECT_EQ(par.cycles, serial.cycles) << "workers=" << w;
    EXPECT_EQ(par.snap.counters, serial.snap.counters) << "workers=" << w;
    EXPECT_EQ(par.snap.cpu_time, serial.snap.cpu_time) << "workers=" << w;
    // Independent per-CPU reference streams must actually form multi-item
    // windows — otherwise this test exercises nothing but the fallthrough.
    EXPECT_GT(par.windows, 0u) << "workers=" << w;
  }
}

// ------------------------------------------- workload golden identity

struct GoldenRun {
  stats::StatsSnapshot snap;
  std::vector<std::uint8_t> trace;
};

enum class Wl {
  // Default (simple MESI-bus) machine: lane B via classify/plan/apply.
  kSci, kWeb, kTpcc, kTpccPreempt, kWebFaulted,
  // CC-NUMA machine: the "most complex backend", same lane-B property.
  kSciNuma, kWebNuma, kTpccNuma, kWebFaultedNuma,
  // 16-CPU simple machine: above snoop_filter_min_cpus, so the sharded
  // lane-B tier coexists with the exact presence-bitmask snoop filter
  // (and its Debug probe-sweep cross-check).
  kTpccSnoop16,
};

GoldenRun golden_run(Wl which, int workers, const std::string& tag) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  cfg.core.backend_workers = workers;
  cfg.core.l1_filter = test_filter_enabled();
  switch (which) {
    case Wl::kSciNuma:
    case Wl::kWebNuma:
    case Wl::kTpccNuma:
    case Wl::kWebFaultedNuma:
      cfg.model = sim::BackendModel::kNuma;
      cfg.core.num_nodes = 2;
      break;
    case Wl::kTpccSnoop16:
      cfg.core.num_cpus = 16;
      break;
    default:
      break;
  }

  // Each case creates its recorder AFTER its config tweaks so the recorded
  // header matches the effective configuration.
  const std::string path = temp_path(tag + ".trace");
  GoldenRun out;
  workloads::ScenarioStats st;
  switch (which) {
    case Wl::kSci:
    case Wl::kSciNuma: {
      workloads::SciScenario sc;
      sc.matmul.n = 10;
      sc.matmul.nprocs = 3;
      trace::TraceRecorder rec(cfg, path);
      cfg.trace_sink = &rec;
      st = workloads::run_sci(cfg, sc);
      rec.finalize();
      break;
    }
    case Wl::kWeb:
    case Wl::kWebNuma: {
      workloads::WebScenario sc;
      sc.requests = 30;
      sc.servers = 2;
      sc.seed = 99;
      trace::TraceRecorder rec(cfg, path);
      cfg.trace_sink = &rec;
      st = workloads::run_web(cfg, sc);
      rec.finalize();
      break;
    }
    case Wl::kTpcc:
    case Wl::kTpccNuma:
    case Wl::kTpccSnoop16: {
      workloads::TpccScenario sc;
      sc.workers = which == Wl::kTpccSnoop16 ? 8 : 4;
      trace::TraceRecorder rec(cfg, path);
      cfg.trace_sink = &rec;
      st = workloads::run_tpcc(cfg, sc);
      rec.finalize();
      break;
    }
    case Wl::kTpccPreempt: {
      cfg.core.preemptive = true;
      cfg.core.quantum = 500;
      workloads::TpccScenario sc;
      sc.workers = 4;
      trace::TraceRecorder rec(cfg, path);
      cfg.trace_sink = &rec;
      st = workloads::run_tpcc(cfg, sc);
      rec.finalize();
      break;
    }
    case Wl::kWebFaulted:
    case Wl::kWebFaultedNuma: {
      cfg.fault.seed = 7;
      cfg.fault.oscall_eintr_prob = 0.2;
      cfg.fault.net_drop_prob = 0.1;
      cfg.fault.sched_jitter_prob = 0.3;
      cfg.fault.sched_jitter_cycles = 5'000;
      workloads::WebScenario sc;
      sc.requests = 25;
      sc.servers = 2;
      sc.seed = 11;
      trace::TraceRecorder rec(cfg, path);
      cfg.trace_sink = &rec;
      st = workloads::run_web(cfg, sc);
      rec.finalize();
      break;
    }
  }
  out.snap = st.snapshot;
  out.trace = slurp(path);
  std::remove(path.c_str());
  return out;
}

class GoldenAcrossWorkers : public ::testing::TestWithParam<Wl> {};

TEST_P(GoldenAcrossWorkers, BitIdenticalToSerial) {
  const Wl which = GetParam();
  const GoldenRun serial = golden_run(which, 1, "w1");
  ASSERT_FALSE(serial.trace.empty());
  for (const int w : worker_counts()) {
    const GoldenRun par = golden_run(which, w, "w" + std::to_string(w));
    EXPECT_EQ(par.snap.cycles, serial.snap.cycles) << "workers=" << w;
    EXPECT_EQ(par.snap.counters, serial.snap.counters) << "workers=" << w;
    EXPECT_EQ(par.snap.cpu_time, serial.snap.cpu_time) << "workers=" << w;
    // Byte-for-byte: the windowed loop taps the recorder in merge order on
    // the coordinator, so the file cannot depend on the worker count.
    EXPECT_EQ(par.trace, serial.trace) << "workers=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, GoldenAcrossWorkers,
    ::testing::Values(Wl::kSci, Wl::kWeb, Wl::kTpcc, Wl::kTpccPreempt,
                      Wl::kWebFaulted, Wl::kSciNuma, Wl::kWebNuma,
                      Wl::kTpccNuma, Wl::kWebFaultedNuma, Wl::kTpccSnoop16),
    [](const auto& info) {
      switch (info.param) {
        case Wl::kSci: return "sci";
        case Wl::kWeb: return "web";
        case Wl::kTpcc: return "tpcc";
        case Wl::kTpccPreempt: return "tpcc_preemptive";
        case Wl::kWebFaulted: return "web_faulted";
        case Wl::kSciNuma: return "sci_numa";
        case Wl::kWebNuma: return "web_numa";
        case Wl::kTpccNuma: return "tpcc_numa";
        case Wl::kWebFaultedNuma: return "web_faulted_numa";
        case Wl::kTpccSnoop16: return "tpcc_snoop16";
      }
      return "unknown";
    });

// ------------------------------------- direct Backend, sharded lane B

/// Drive a raw Backend over a SimpleMachine with a hit-heavy looped
/// workload: after the first lap every reference is an own-L1 hit, so the
/// classify pass proves whole windows clean and the lane-B parallel tier
/// must actually engage — not just fall back to the serial tier.
DirectRun direct_laneb_run(int workers) {
  SimConfig cfg;
  cfg.num_cpus = 4;
  cfg.context_switch_cycles = 100;
  cfg.backend_workers = workers;
  Communicator comm(cfg.num_cpus);
  stats::StatsRegistry reg;
  mem::Vm vm({.num_nodes = 1});
  mem::SimpleMachine memsys({}, cfg.num_cpus, vm, &reg);
  Backend::Hooks hooks;
  hooks.memsys = &memsys;
  Backend backend(cfg, comm, hooks, &reg);

  std::vector<std::unique_ptr<Frontend>> procs;
  core::SimContext::Options opts;
  opts.batch_size = 8;
  constexpr int kProcs = 4;  // == CPUs: all procs stay running, windows form
  for (int p = 0; p < kProcs; ++p)
    procs.push_back(
        std::make_unique<Frontend>(backend, "lb" + std::to_string(p), opts));
  for (int p = 0; p < kProcs; ++p) {
    const Addr base = 0x10000 + static_cast<Addr>(p) * 0x100000;
    procs[static_cast<std::size_t>(p)]->start([base, p](core::SimContext& ctx) {
      for (int lap = 0; lap < 50; ++lap) {
        for (int i = 0; i < 64; ++i) {
          ctx.compute(static_cast<Cycles>(11 + (p % 3) * 5));
          ctx.load(base + static_cast<Addr>(i) * 64, 8);
          ctx.store(base + static_cast<Addr>(i) * 64, 8);
        }
      }
    });
  }
  backend.run();
  for (auto& f : procs) f->join();
  memsys.flush_stats();

  DirectRun out;
  out.cycles = backend.now();
  out.windows = backend.laneb_windows();
  out.snap = stats::make_snapshot(backend.now(), reg, backend.time_breakdown());
  return out;
}

TEST(ParallelBackend, LaneBEngagesAndMatchesSerial) {
  const DirectRun serial = direct_laneb_run(1);
  EXPECT_EQ(serial.windows, 0u);  // workers=1 never enters the windowed loop
  for (const int w : worker_counts()) {
    const DirectRun par = direct_laneb_run(w);
    EXPECT_EQ(par.cycles, serial.cycles) << "workers=" << w;
    EXPECT_EQ(par.snap.counters, serial.snap.counters) << "workers=" << w;
    EXPECT_EQ(par.snap.cpu_time, serial.snap.cpu_time) << "workers=" << w;
    // The plan must prove clean windows on this workload (in Debug lockstep
    // the same plan runs with the literal model cross-checking verdicts).
    EXPECT_GT(par.windows, 0u) << "workers=" << w;
  }
}

// ----------------------------------- L1 filter on-vs-off golden identity

/// Processes whose memory phases are disjoint in simulated time (each one
/// prefixed by a long compute), so the global reference order — and hence
/// every coherence action and bus wait — is independent of batch
/// granularity. The only thing the filter changes is granularity, so at
/// matched order filter-on must be bit-identical to filter-off.
stats::StatsSnapshot time_separated_run(bool filter) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  cfg.core.l1_filter = filter;
  sim::Simulation sim(cfg);
  constexpr Cycles kSep = 8'000'000;  // far longer than one phase's work
  constexpr Addr kShared = 1 << 16;
  constexpr Addr kPriv = 1 << 14;
  for (int p = 0; p < 4; ++p) {
    sim.spawn("tsep" + std::to_string(p), [p](sim::Proc& proc) {
      core::SimContext& ctx = proc.ctx();
      ctx.compute(static_cast<Cycles>(p) * kSep);
      const std::int64_t seg = proc.shmget(0x5eed, kShared);
      const Addr base = static_cast<Addr>(proc.shmat(seg));
      const Addr priv = proc.alloc(kPriv);
      for (int round = 0; round < 4; ++round) {
        // Shared walk: reads lines the previous phase dirtied, then
        // dirties them for the next phase (interventions + invalidations).
        for (Addr off = 0; off < kShared; off += 64)
          proc.write<std::uint64_t>(
              base + off, proc.read<std::uint64_t>(base + off) + 1);
        // Private walk: the absorbable E/M hit stream.
        for (Addr off = 0; off < kPriv; off += 8)
          proc.write<std::uint64_t>(priv + off, off);
      }
    });
  }
  sim.run();
  workloads::ScenarioStats st;
  workloads::collect_stats(sim, st);
  return st.snapshot;
}

TEST(L1FilterGolden, TimeSeparatedRunsBitIdentical) {
  const stats::StatsSnapshot off = time_separated_run(false);
  const stats::StatsSnapshot on = time_separated_run(true);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.cpu_time, off.cpu_time);
  // backend.batches and frontend.absorbed are host-side tallies — the port
  // crossings the filter exists to shrink and the references it absorbed to
  // do so. Every simulated counter must be identical.
  auto on_counters = on.counters;
  auto off_counters = off.counters;
  EXPECT_LT(on_counters["backend.batches"], off_counters["backend.batches"] / 2)
      << "filter-on did not absorb: port crossings were not reduced";
  EXPECT_GT(on_counters["frontend.absorbed"], 0u);
  for (const char* host_side : {"backend.batches", "frontend.absorbed"}) {
    on_counters.erase(host_side);
    off_counters.erase(host_side);
  }
  EXPECT_EQ(on_counters, off_counters);
}

TEST(L1FilterGolden, SciReferenceStreamInvariant) {
  const auto run = [](bool filter) {
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = 4;
    cfg.core.l1_filter = filter;
    workloads::SciScenario sc;
    sc.matmul.n = 10;
    sc.matmul.nprocs = 3;
    return workloads::run_sci(cfg, sc);
  };
  const workloads::ScenarioStats off = run(false);
  const workloads::ScenarioStats on = run(true);
  // A contended workload: cross-CPU interleaving may legitimately coarsen,
  // but the filter must not add, drop or reorder any process's *own*
  // references — the workload completes and verifies its result, and the
  // per-stream totals (references, page faults) are invariant.
  EXPECT_EQ(on.work_units, off.work_units);
  EXPECT_EQ(on.mem_refs, off.mem_refs);
  for (const char* c : {"vm.page_faults", "machine.page_faults"}) {
    const auto find = [c](const stats::StatsSnapshot& s) {
      const auto it = s.counters.find(c);
      return it == s.counters.end() ? std::uint64_t{0} : it->second;
    };
    EXPECT_EQ(find(on.snapshot), find(off.snapshot)) << c;
  }
}

// -------------------------------------------------- config plumbing

TEST(BackendWorkersConfig, ValidatesAndResolvesAuto) {
  core::SimConfig cfg;
  cfg.num_cpus = 1;
  cfg.backend_workers = -1;
  EXPECT_THROW(cfg.validate(), util::SimError);
  cfg.backend_workers = 257;
  EXPECT_THROW(cfg.validate(), util::SimError);
  cfg.backend_workers = 0;  // auto
  cfg.validate();
  const int eff = cfg.effective_backend_workers();
  EXPECT_GE(eff, 1);
  EXPECT_LE(eff, 8);
  cfg.backend_workers = 3;
  EXPECT_EQ(cfg.effective_backend_workers(), 3);
}

}  // namespace
}  // namespace compass
