// Cross-module integration tests: raw (direct) I/O, buffer-pool fill
// concurrency, kernel daemons, full-workload determinism, and backend
// diagnostics. These exercise the paths the experiment harnesses rely on.
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "os/fs.h"
#include "sim/simulation.h"
#include "workloads/db/tpcc.h"
#include "workloads/runner.h"

namespace compass {
namespace {

using sim::Proc;
using sim::Simulation;
using sim::SimulationConfig;

SimulationConfig cfg2() {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  return cfg;
}

// ------------------------------------------------------------- direct I/O

TEST(DirectIo, ReadMatchesBufferedRead) {
  Simulation sim(cfg2());
  std::vector<std::uint8_t> content(4 * 4096);
  for (std::size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<std::uint8_t>(i * 13);
  sim.kernel().fs().populate("/raw", content);
  bool equal = false;
  sim.spawn("app", [&](Proc& p) {
    const auto dfd = p.open("/raw", os::kOpenDirect);
    const auto bfd = p.open("/raw");
    ASSERT_GE(dfd, 0);
    ASSERT_GE(bfd, 0);
    const Addr a = p.alloc(4 * 4096, 4096);
    const Addr b = p.alloc(4 * 4096, 4096);
    EXPECT_EQ(p.read_fd(dfd, a, 4 * 4096), 4 * 4096);
    EXPECT_EQ(p.read_fd(bfd, b, 4 * 4096), 4 * 4096);
    equal = p.get_bytes(a, 4 * 4096) == p.get_bytes(b, 4 * 4096) &&
            p.get_bytes(a, 4 * 4096) == content;
    p.close(dfd);
    p.close(bfd);
  });
  sim.run();
  EXPECT_TRUE(equal);
}

TEST(DirectIo, OneRequestPerContiguousRange) {
  Simulation sim(cfg2());
  sim.kernel().fs().populate("/raw2", std::vector<std::uint8_t>(8 * 4096, 7));
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.open("/raw2", os::kOpenDirect);
    const Addr buf = p.alloc(8 * 4096, 4096);
    EXPECT_EQ(p.read_fd(fd, buf, 8 * 4096), 8 * 4096);
    p.close(fd);
  });
  sim.run();
  // One raw request covering 8 blocks, not 8 requests.
  EXPECT_EQ(sim.stats().counter_value("disk0.reads"), 1u);
  // And no buffer-cache involvement.
  EXPECT_EQ(sim.stats().counter_value("fs.cache_misses"), 0u);
}

TEST(DirectIo, WriteReachesThePlatter) {
  Simulation sim(cfg2());
  sim.kernel().fs().populate("/raw3", std::vector<std::uint8_t>(4096, 0));
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.open("/raw3", os::kOpenDirect);
    const Addr buf = p.alloc(4096, 4096);
    std::vector<std::uint8_t> data(4096, 0xEE);
    p.put_bytes(buf, data);
    EXPECT_EQ(p.write_fd(fd, buf, 4096), 4096);
    p.close(fd);
  });
  sim.run();
  EXPECT_EQ(sim.stats().counter_value("disk0.writes"), 1u);
  os::Inode* inode = sim.kernel().fs().inode_by_id(1);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->page_data(0, 4096)[100], 0xEE);
}

TEST(DirectIo, UnalignedFallsBackToBufferedPath) {
  Simulation sim(cfg2());
  sim.kernel().fs().populate("/raw4", std::vector<std::uint8_t>(8192, 3));
  std::int64_t n = 0;
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.open("/raw4", os::kOpenDirect);
    p.lseek(fd, 100, 0);  // unaligned
    const Addr buf = p.alloc(4096);
    n = p.read_fd(fd, buf, 512);
    p.close(fd);
  });
  sim.run();
  EXPECT_EQ(n, 512);
  EXPECT_GT(sim.stats().counter_value("fs.cache_misses"), 0u);
}

// ------------------------------------------- buffer pool fill concurrency

TEST(BufferPoolConcurrency, ManyWorkersSamePages) {
  // 4 workers hammer the same 12 pages through a 4-frame pool; the filling
  // protocol must keep every read coherent (each page has a distinct
  // stamp, and no worker may ever observe a torn/wrong page).
  SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  Simulation sim(cfg);
  workloads::db::DbConfig dbc;
  dbc.pool_pages = 4;
  auto pool = std::make_shared<workloads::db::BufferPool>(dbc);
  pool->register_file(1, "/pool/data");
  std::atomic<int> bad{0};
  sim.spawn("init", [&](Proc& p) {
    pool->init(p);
    for (std::uint32_t pg = 1; pg <= 12; ++pg) {
      const Addr f = pool->pin(p, {1, pg});
      p.write<std::uint64_t>(f + 8, pg * 7777);
      pool->unpin(p, {1, pg}, true);
    }
    p.sem_init(11, 0);
    for (int i = 0; i < 4; ++i) p.sem_v(11);
  });
  for (int w = 0; w < 4; ++w) {
    sim.spawn(std::string("w").append(std::to_string(w)), [&, w](Proc& p) {
      p.sem_init(11, 0);
      p.sem_p(11);
      pool->attach(p);
      util::Rng rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < 40; ++i) {
        const auto pg = static_cast<std::uint32_t>(1 + rng.next_below(12));
        const Addr f = pool->pin(p, {1, pg});
        if (p.read<std::uint64_t>(f + 8) != pg * 7777) ++bad;
        pool->unpin(p, {1, pg}, false);
      }
    });
  }
  sim.run();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(pool->misses(), 12u);  // eviction churn occurred
}

// ----------------------------------------------------------- determinism

TEST(Determinism, FullTpccRunBitIdentical) {
  auto run_once = [] {
    SimulationConfig cfg;
    cfg.core.num_cpus = 2;
    workloads::TpccScenario sc;
    sc.tpcc.warehouses = 2;
    sc.tpcc.items = 100;
    sc.tpcc.txns_per_worker = 8;
    sc.workers = 2;
    const auto s = workloads::run_tpcc(cfg, sc);
    return std::tuple{s.cycles, s.mem_refs, s.syscalls, s.interrupts,
                      s.context_switches, s.disk_reads, s.disk_writes};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Determinism, WebRunBitIdentical) {
  auto run_once = [] {
    SimulationConfig cfg;
    cfg.core.num_cpus = 2;
    workloads::WebScenario sc;
    sc.fileset.dirs = 1;
    sc.fileset.files_per_class = 1;
    sc.fileset.size_scale = 0.05;
    sc.requests = 8;
    sc.servers = 2;
    sc.concurrency = 2;
    const auto s = workloads::run_web(cfg, sc);
    return std::tuple{s.cycles, s.mem_refs, s.net_frames_in,
                      s.net_frames_out, s.work_units};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Determinism, HostThrottleDoesNotChangeSimulatedResults) {
  auto run_with = [](int host_cpus) {
    SimulationConfig cfg;
    cfg.core.num_cpus = 2;
    cfg.core.host_cpus = host_cpus;
    workloads::TpcdScenario sc;
    sc.tpcd.lineitems = 300;
    sc.workers = 2;
    const auto s = workloads::run_tpcd(cfg, sc);
    return std::tuple{s.cycles, s.mem_refs, s.disk_reads};
  };
  EXPECT_EQ(run_with(0), run_with(1));
}

// ---------------------------------------------------------------- daemons

TEST(Daemons, SimulationEndsWhileDaemonBlocked) {
  // netd is registered by the OS server and spends this whole run blocked
  // on the netisr channel; the simulation must still terminate when the
  // app exits, and the daemon thread must unwind cleanly.
  Simulation sim(cfg2());
  sim.spawn("app", [](Proc& p) { p.ctx().compute(1000); });
  sim.run();
  SUCCEED();
}

// ---------------------------------------------------------------- caches

TEST(CacheApi, SetStateIfPresentTolerant) {
  mem::Cache c("t", mem::CacheConfig{256, 2, 64});
  c.set_state_if_present(0x40, mem::Mesi::kShared);  // absent: no-op
  c.insert(0x40, mem::Mesi::kExclusive);
  c.set_state_if_present(0x40, mem::Mesi::kShared);
  EXPECT_EQ(c.probe(0x40), mem::Mesi::kShared);
}

// ------------------------------------------------------ backend services

TEST(BackendServices, ResetBreakdownClearsCharges) {
  Simulation sim(cfg2());
  sim.spawn("app", [&](Proc& p) {
    p.ctx().compute(50'000);
    p.ctx().load(0x100, 8);
    p.ctx().backend_call(
        static_cast<std::uint64_t>(os::BackendCall::kResetBreakdown));
    p.ctx().compute(10'000);
    p.ctx().load(0x200, 8);
  });
  sim.run();
  // Only the post-reset charges remain (10k + small overheads).
  EXPECT_LT(sim.breakdown().total()[ExecMode::kUser], 20'000u);
  EXPECT_GE(sim.breakdown().total()[ExecMode::kUser], 10'000u);
}

TEST(BackendServices, TimerArmWakesAfterDelay) {
  Simulation sim(cfg2());
  Cycles woke_at = 0;
  sim.spawn("app", [&](Proc& p) {
    p.usleep(2'000'000);
    woke_at = p.ctx().time();
  });
  sim.run();
  EXPECT_GE(woke_at, 2'000'000u);
  EXPECT_LT(woke_at, 4'000'000u);
}

// ----------------------------------------------------------- scenario API

TEST(Runner, SciScenarioIsUserDominated) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  workloads::SciScenario sc;
  sc.matmul.n = 32;  // large enough to amortize setup syscalls
  sc.matmul.nprocs = 2;
  const auto s = workloads::run_sci(cfg, sc);
  EXPECT_GT(s.shares.user, 80.0);
  EXPECT_GT(s.mem_refs, 1000u);
}

TEST(Runner, TpccScenarioCountsWork) {
  SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  workloads::TpccScenario sc;
  sc.tpcc.warehouses = 1;
  sc.tpcc.items = 50;
  sc.tpcc.txns_per_worker = 5;
  sc.workers = 2;
  const auto s = workloads::run_tpcc(cfg, sc);
  EXPECT_EQ(s.work_units, 10u);
  EXPECT_GT(s.syscalls, 0u);
}

}  // namespace
}  // namespace compass
