// Edge-case unit tests for smaller pieces: HTTP codec, fileset sizing, WAL
// group commit, kernel wait-queue channel registration, simulated-memory
// helpers, and API misuse detection.
#include <gtest/gtest.h>

#include "core/frontend.h"
#include "mem/machine.h"
#include "os/ksync.h"
#include "sim/simulation.h"
#include "workloads/db/tpcc.h"
#include "workloads/web/http.h"
#include "workloads/web/trace.h"

namespace compass {
namespace {

// -------------------------------------------------------------------- http

TEST(Http, RequestRoundTrip) {
  const std::string req = workloads::web::make_request("/dir0/class1_2");
  const auto path = workloads::web::parse_request_path(req);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/dir0/class1_2");
}

TEST(Http, GarbageRequestRejected) {
  EXPECT_FALSE(workloads::web::parse_request_path("POST /x HTTP/1.0").has_value());
  EXPECT_FALSE(workloads::web::parse_request_path("GET").has_value());
  EXPECT_FALSE(workloads::web::parse_request_path("").has_value());
  EXPECT_FALSE(workloads::web::parse_request_path("GET /nospace").has_value());
}

TEST(Http, ResponseHeaderCarriesLengthAndStatus) {
  const std::string ok = workloads::web::make_response_header(12345);
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 12345"), std::string::npos);
  const std::string nf = workloads::web::make_response_header(0, 404);
  EXPECT_NE(nf.find("404"), std::string::npos);
}

// ----------------------------------------------------------------- fileset

TEST(Fileset, SizesFollowClassBasesAndScale) {
  workloads::web::FilesetConfig fc;
  fc.size_scale = 1.0;
  workloads::web::Fileset fs(fc);
  // Class bases: ~102 B, 1 KB, 10 KB, 100 KB; idx 0 = 1x multiplier.
  EXPECT_EQ(fs.size_of(0, 0), 102u);
  EXPECT_EQ(fs.size_of(1, 0), 1024u);
  EXPECT_EQ(fs.size_of(2, 0), 10240u);
  EXPECT_EQ(fs.size_of(3, 0), 102400u);
  EXPECT_EQ(fs.size_of(1, 1), 2 * 1024u);  // idx steps the multiplier
  // Scaling clamps at a 64-byte floor.
  workloads::web::FilesetConfig tiny = fc;
  tiny.size_scale = 0.0001;
  workloads::web::Fileset fs2(tiny);
  EXPECT_EQ(fs2.size_of(0, 0), 64u);
}

TEST(Fileset, TotalBytesConsistent) {
  workloads::web::FilesetConfig fc;
  fc.dirs = 2;
  fc.files_per_class = 3;
  workloads::web::Fileset fs(fc);
  std::uint64_t sum = 0;
  for (int d = 0; d < 2; ++d)
    for (int c = 0; c < 4; ++c)
      for (int f = 0; f < 3; ++f) sum += fs.size_of(c, f);
  EXPECT_EQ(fs.total_bytes(), sum);
}

TEST(TraceGen, StartsAreMonotonic) {
  workloads::web::Fileset fs(workloads::web::FilesetConfig{});
  const auto t = workloads::web::Trace::generate(fs, 50, 10'000, 3);
  for (std::size_t i = 1; i < t.entries.size(); ++i)
    EXPECT_GT(t.entries[i].start, t.entries[i - 1].start);
}

TEST(TraceGen, ParseRejectsGarbage) {
  EXPECT_THROW(workloads::web::Trace::parse("notanumber /x\n"),
               util::SimError);
}

// --------------------------------------------------------------------- wal

TEST(Wal, GroupCommitFsyncCadence) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  workloads::db::DbConfig dbc;
  dbc.wal_group_commit = 4;
  auto pool = std::make_shared<workloads::db::BufferPool>(dbc);
  auto wal = std::make_shared<workloads::db::Wal>(*pool, "/wal/log");
  sim.spawn("app", [&](sim::Proc& p) {
    pool->init(p);
    wal->create(p);
    std::uint8_t rec[32] = {1, 2, 3};
    for (int i = 0; i < 10; ++i) wal->log_commit(p, rec);
  });
  sim.run();
  EXPECT_EQ(wal->commits(), 10u);
  EXPECT_EQ(wal->fsyncs(), 2u);  // at commits 4 and 8
}

// ------------------------------------------------------------- wait queues

TEST(KWaitQueue, RegisterAndRemoveChannels) {
  os::KWaitQueue q;
  q.register_channel(100);
  q.register_channel(200);
  q.register_channel(100);
  EXPECT_EQ(q.size(), 3u);
  q.remove_channel(100);  // removes both entries for 100
  EXPECT_EQ(q.size(), 1u);
  q.remove_channel(999);  // absent: no-op
  EXPECT_EQ(q.size(), 1u);
}

// ------------------------------------------------------- simulated memory

TEST(SimMemHelpers, ScanAndMemsetDetached) {
  mem::AddressMap map;
  mem::Arena a("t", 0x1000, 4096);
  map.add(a);
  core::SimContext detached;
  mem::sim_memset(detached, map, 0x1100, 0xAB, 100);
  EXPECT_EQ(static_cast<unsigned char>(*a.host(0x1100)), 0xABu);
  EXPECT_EQ(static_cast<unsigned char>(*a.host(0x1100 + 99)), 0xABu);
  mem::sim_scan(detached, map, 0x1100, 100);  // must not crash or write
  EXPECT_EQ(static_cast<unsigned char>(*a.host(0x1100)), 0xABu);
}

TEST(SimMemHelpers, MemcpyEmitsOneEventPairPerChunk) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  sim.spawn("app", [&](sim::Proc& p) {
    const Addr src = p.alloc(1024, 64);
    const Addr dst = p.alloc(1024, 64);
    mem::sim_memcpy(p.ctx(), p.mem(), dst, src, 1024, 64);
  });
  sim.run();
  // 16 chunks -> 16 loads + 16 stores.
  EXPECT_EQ(sim.stats().counter_value("backend.mem_refs"), 32u);
}

// ------------------------------------------------------------- API misuse

TEST(ApiMisuse, FrontendDoubleStartThrows) {
  core::SimConfig cfg;
  cfg.num_cpus = 1;
  core::Communicator comm(1);
  mem::FlatMemory mem(5);
  core::Backend::Hooks hooks;
  hooks.memsys = &mem;
  core::Backend backend(cfg, comm, hooks);
  core::Frontend f(backend, "x");
  f.start([](core::SimContext&) {});
  EXPECT_THROW(f.start([](core::SimContext&) {}), util::SimError);
  backend.run();
  f.join();
}

TEST(ApiMisuse, SetTimeWithBufferedRefsThrows) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  cfg.os_server.ctx_opts.batch_size = 8;  // so refs stay buffered
  sim::Simulation sim(cfg);
  bool threw = false;
  sim.spawn("app", [&](sim::Proc& p) {
    p.ctx().load(0x100, 8);  // buffered (batch of 8)
    try {
      p.ctx().set_time(999);
    } catch (const util::SimError&) {
      threw = true;
    }
    p.ctx().flush();
  });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(ApiMisuse, SimulationRunTwiceThrows) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  sim.spawn("app", [](sim::Proc&) {});
  sim.run();
  EXPECT_THROW(sim.run(), util::SimError);
}

TEST(ApiMisuse, BadWhenceReturnsEinval) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  std::int64_t rv = 0;
  sim.spawn("app", [&](sim::Proc& p) {
    const auto fd = p.creat("/f");
    rv = p.lseek(fd, 0, 9);
    p.close(fd);
  });
  sim.run();
  EXPECT_EQ(rv, -os::kEINVAL);
}

TEST(ApiMisuse, OperationsOnBadFdReturnEbadf) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  std::int64_t r1 = 0, r2 = 0, r3 = 0;
  sim.spawn("app", [&](sim::Proc& p) {
    const Addr buf = p.alloc(64);
    r1 = p.read_fd(77, buf, 64);
    r2 = p.fsync(77);
    r3 = p.naccept(77);
  });
  sim.run();
  EXPECT_EQ(r1, -os::kEBADF);
  EXPECT_EQ(r2, -os::kEBADF);
  EXPECT_EQ(r3, -os::kEBADF);
}

// ------------------------------------------------------------ numa extras

TEST(NumaMachine, SyncReferenceCostsExtra) {
  mem::Vm vm({.num_nodes = 2});
  mem::NumaMachine machine({}, 4, 2, vm);
  const auto mk = [](RefType t, Cycles time) {
    return core::Event::mem_ref(ExecMode::kUser, t, 0x5000, 8, time);
  };
  machine.access(0, 0, mk(RefType::kStore, 0));  // warm (M state)
  const Cycles store_hit = machine.access(0, 0, mk(RefType::kStore, 100));
  const Cycles sync_hit = machine.access(0, 0, mk(RefType::kSync, 200));
  EXPECT_EQ(sync_hit, store_hit + mem::NumaMachineConfig{}.sync_overhead);
}

}  // namespace
}  // namespace compass
