// Tests for the synthetic ISA: instrumentation pass, interpreter semantics,
// event generation, and the assembler.
#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/frontend.h"
#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "mem/machine.h"

namespace compass::isa {
namespace {

// A detached-context harness for pure-semantics tests.
struct Machine {
  Machine() : arena("data", 0x1000, 64 * 1024) { map.add(arena); }
  core::SimContext ctx;  // detached
  mem::AddressMap map;
  mem::Arena arena;
};

TEST(Program, InstrumentComputesBlockMetadata) {
  Program p;
  ProgramBuilder b;
  b.li(1, 5).ld(2, 1, 0).add(3, 1, 2).end_block(p, Op::kHalt);
  p.instrument();
  const BasicBlock& bb = p.block(0);
  EXPECT_EQ(bb.est_cycles, op_cycles(Op::kLi) + op_cycles(Op::kLd) +
                               op_cycles(Op::kAdd) + op_cycles(Op::kHalt));
  ASSERT_EQ(bb.mem_refs.size(), 1u);
  EXPECT_EQ(bb.mem_refs[0], 1u);
}

TEST(Program, TerminatorMustBeLast) {
  Program p;
  std::vector<Insn> insns{
      {Op::kHalt, 0, 0, 0, 0},
      {Op::kAdd, 1, 2, 3, 0},
  };
  p.add_block(std::move(insns));
  EXPECT_THROW(p.instrument(), util::SimError);
}

TEST(Program, BranchTargetValidated) {
  Program p;
  ProgramBuilder b;
  b.li(1, 0).end_block(p, Op::kB, 0, 0, 99);
  EXPECT_THROW(p.instrument(), util::SimError);
}

TEST(Interpreter, ArithmeticAndControlFlow) {
  // sum = 0; for (i = 10; i != 0; --i) sum += i;  => 55
  Machine m;
  Program p;
  ProgramBuilder b;
  b.li(1, 10).li(2, 0).li(3, 0).li(4, 1).end_block(p, Op::kB, 0, 0, 1);
  b.add(2, 2, 1).op(Op::kSub, 1, 1, 4).end_block(p, Op::kBne, 1, 3, 1);
  b.end_block(p, Op::kHalt);
  p.instrument();
  Interpreter interp(p, m.ctx, m.map);
  const RunResult r = interp.run();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(interp.reg(2), 55);
}

TEST(Interpreter, LoadStoreRoundTrip) {
  Machine m;
  Program p;
  ProgramBuilder b;
  b.li(1, 0x1100).li(2, 0xBEEF).st(2, 1, 8).ld(3, 1, 8).end_block(p, Op::kHalt);
  p.instrument();
  Interpreter interp(p, m.ctx, m.map);
  interp.run();
  EXPECT_EQ(interp.reg(3), 0xBEEF);
}

TEST(Interpreter, SyncIsFetchAdd) {
  Machine m;
  Program p;
  ProgramBuilder b;
  b.li(1, 0x1200).li(2, 7).op(Op::kSync, 3, 1, 2).op(Op::kSync, 4, 1, 2)
      .end_block(p, Op::kHalt);
  p.instrument();
  Interpreter interp(p, m.ctx, m.map);
  interp.run();
  EXPECT_EQ(interp.reg(3), 0);  // old value
  EXPECT_EQ(interp.reg(4), 7);
}

TEST(Interpreter, MaxInsnsStopsEarly) {
  Machine m;
  Program p;
  ProgramBuilder b;
  b.li(1, 0).end_block(p, Op::kB, 0, 0, 1);
  b.addi(1, 1, 1).end_block(p, Op::kB, 0, 0, 1);  // infinite loop
  p.instrument();
  Interpreter interp(p, m.ctx, m.map);
  const RunResult r = interp.run(0, 1000);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.insns, 1000u);
}

TEST(Interpreter, DivByZeroThrows) {
  Machine m;
  Program p;
  ProgramBuilder b;
  b.li(1, 5).li(2, 0).op(Op::kDiv, 3, 1, 2).end_block(p, Op::kHalt);
  p.instrument();
  Interpreter interp(p, m.ctx, m.map);
  EXPECT_THROW(interp.run(), util::SimError);
}

// Event generation against a live backend: every memory op becomes a timed
// event; times reflect the per-instruction issue costs.
TEST(Interpreter, GeneratesTimedEventsUnderBackend) {
  core::SimConfig cfg;
  cfg.num_cpus = 1;
  core::Communicator comm(1);
  mem::Vm vm({.num_nodes = 1});
  stats::StatsRegistry reg;
  mem::FlatMemory flat(10, &vm, &reg);
  core::Backend::Hooks hooks;
  hooks.memsys = &flat;
  core::Backend backend(cfg, comm, hooks);

  mem::AddressMap map;
  mem::Arena arena("data", 0x1000, 4096);
  map.add(arena);

  Program p;
  ProgramBuilder b;
  // 4 loads in a loop of 8 iterations = 32 refs.
  b.li(1, 0x1000).li(2, 8).li(3, 0).li(4, 1).end_block(p, Op::kB, 0, 0, 1);
  b.ld(5, 1, 0).ld(5, 1, 64).ld(5, 1, 128).ld(5, 1, 192)
      .op(Op::kSub, 2, 2, 4)
      .end_block(p, Op::kBne, 2, 3, 1);
  b.end_block(p, Op::kHalt);
  p.instrument();

  core::Frontend fe(backend, "isa");
  std::uint64_t refs = 0;
  fe.start([&](core::SimContext& ctx) {
    Interpreter interp(p, ctx, map);
    const RunResult r = interp.run();
    refs = r.mem_refs;
  });
  backend.run();
  fe.join();
  EXPECT_EQ(refs, 32u);
  EXPECT_EQ(backend.stats().counter_value("backend.mem_refs"), 32u);
  EXPECT_GT(backend.now(), 0u);
}

TEST(Assembler, AssemblesAndRuns) {
  Machine m;
  const Program p = assemble(R"(
      ; r2 = fib-ish accumulation
        li   r1, 6
        li   r2, 1
        li   r3, 0
        li   r4, 1
      loop:
        add  r2, r2, r2
        sub  r1, r1, r4
        bne  r1, r3, loop
        st   r2, r5, 0x1000
        halt
  )");
  Interpreter interp(p, m.ctx, m.map);
  const RunResult r = interp.run();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(interp.reg(2), 64);
  std::int64_t stored = 0;
  std::memcpy(&stored, m.arena.host(0x1000), 8);
  EXPECT_EQ(stored, 64);
}

TEST(Assembler, FallThroughBetweenLabeledBlocks) {
  Machine m;
  const Program p = assemble(R"(
        li r1, 1
      next:
        addi r1, r1, 10
        halt
  )");
  Interpreter interp(p, m.ctx, m.map);
  interp.run();
  EXPECT_EQ(interp.reg(1), 11);
}

TEST(Assembler, SyntaxErrorsCarryLineNumbers) {
  try {
    assemble("li r1, 1\nbogus r1, r2\n");
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, UndefinedLabelThrows) {
  EXPECT_THROW(assemble("b nowhere\n"), util::ConfigError);
}

TEST(Assembler, DuplicateLabelThrows) {
  EXPECT_THROW(assemble("x:\n li r1, 1\nx:\n halt\n"), util::ConfigError);
}

TEST(Assembler, RegisterOutOfRangeThrows) {
  EXPECT_THROW(assemble("li r99, 1\n"), util::ConfigError);
}

}  // namespace
}  // namespace compass::isa
