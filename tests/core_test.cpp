// Tests for the COMPASS core: event ports, communicator pick-min
// synchronization, the backend main loop, process scheduling, blocking,
// interrupts and abort handling.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/frontend.h"
#include "core/scheduler.h"
#include "core/sim_context.h"

namespace compass::core {
namespace {

/// Fixed-latency memory model that records the access stream.
class FakeMem : public MemorySystem {
 public:
  explicit FakeMem(Cycles latency = 10) : latency_(latency) {}

  Cycles access(CpuId cpu, ProcId proc, const Event& ev) override {
    Access a;
    a.cpu = cpu;
    a.proc = proc;
    a.addr = ev.addr;
    a.type = ev.ref_type;
    a.time = ev.time;
    a.mode = ev.mode;
    accesses.push_back(a);
    return latency_;
  }

  struct Access {
    CpuId cpu;
    ProcId proc;
    Addr addr;
    RefType type;
    Cycles time;
    ExecMode mode;
  };
  std::vector<Access> accesses;

 private:
  Cycles latency_;
};

struct Sim {
  explicit Sim(SimConfig cfg, Cycles latency = 10)
      : cfg(cfg), comm(cfg.num_cpus, cfg.host_cpus), mem(latency) {
    Backend::Hooks hooks;
    hooks.memsys = &mem;
    backend = std::make_unique<Backend>(cfg, comm, hooks);
  }

  Frontend& add(const std::string& name, SimContext::Options opts = {}) {
    frontends.push_back(std::make_unique<Frontend>(*backend, name, opts));
    return *frontends.back();
  }

  void run() {
    backend->run();
    for (auto& f : frontends) f->join();
  }

  SimConfig cfg;
  Communicator comm;
  FakeMem mem;
  std::unique_ptr<Backend> backend;
  std::vector<std::unique_ptr<Frontend>> frontends;
};

SimConfig base_config(int cpus = 2) {
  SimConfig cfg;
  cfg.num_cpus = cpus;
  cfg.context_switch_cycles = 100;
  cfg.syscall_entry_cycles = 20;
  cfg.syscall_exit_cycles = 10;
  cfg.irq_entry_cycles = 15;
  cfg.irq_exit_cycles = 8;
  return cfg;
}

// ---------------------------------------------------------------- scheduler

TEST(GlobalScheduler, OrdersByTimeThenInsertion) {
  GlobalScheduler s;
  std::vector<int> order;
  s.schedule_at(20, [&] { order.push_back(2); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(3); });
  while (!s.empty()) s.pop_next().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(GlobalScheduler, NextTimeAndEmpty) {
  GlobalScheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), kNeverCycles);
  s.schedule_at(5, [] {});
  EXPECT_EQ(s.next_time(), 5u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(GlobalScheduler, TasksCanScheduleTasks) {
  GlobalScheduler s;
  int fired = 0;
  s.schedule_at(1, [&] { s.schedule_at(2, [&] { ++fired; }); });
  while (!s.empty()) s.pop_next().second();
  EXPECT_EQ(fired, 1);
}

// ------------------------------------------------------------- proc sched

TEST(ProcessScheduler, FcfsAssignsFirstFreeCpu) {
  SimConfig cfg = base_config(2);
  ProcessScheduler ps(cfg);
  ps.add_ready(10);
  ps.add_ready(11);
  ps.add_ready(12);
  const auto a = ps.schedule();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], (std::pair<ProcId, CpuId>{10, 0}));
  EXPECT_EQ(a[1], (std::pair<ProcId, CpuId>{11, 1}));
  EXPECT_TRUE(ps.has_ready());
  ps.release_cpu(10);
  const auto b = ps.schedule();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], (std::pair<ProcId, CpuId>{12, 0}));
}

TEST(ProcessScheduler, AffinityPrefersLastCpu) {
  SimConfig cfg = base_config(2);
  cfg.sched_policy = SchedPolicy::kAffinity;
  ProcessScheduler ps(cfg);
  ps.add_ready(1);
  ps.add_ready(2);
  ps.schedule();  // 1->0, 2->1
  ps.release_cpu(1);
  ps.release_cpu(2);
  ps.add_ready(2);  // 2 asks first, but its last CPU was 1
  ps.add_ready(1);
  const auto a = ps.schedule();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], (std::pair<ProcId, CpuId>{2, 1}));
  EXPECT_EQ(a[1], (std::pair<ProcId, CpuId>{1, 0}));
}

TEST(ProcessScheduler, AffinityFallsBackToSameNode) {
  SimConfig cfg = base_config(4);
  cfg.num_nodes = 2;  // node0: cpu 0,1; node1: cpu 2,3
  cfg.sched_policy = SchedPolicy::kAffinity;
  ProcessScheduler ps(cfg);
  ps.add_ready(1);
  ps.schedule();  // 1 -> cpu0 (node0)
  ps.release_cpu(1);
  // Occupy cpu0 with another proc; proc 1 should land on cpu1 (same node),
  // not cpu2.
  ps.add_ready(2);
  ps.schedule();  // 2 -> cpu0
  ps.add_ready(1);
  const auto a = ps.schedule();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].second, 1);
}

TEST(ProcessScheduler, ReserveBlocksAssignment) {
  SimConfig cfg = base_config(1);
  ProcessScheduler ps(cfg);
  ps.reserve_cpu(0);
  ps.add_ready(1);
  EXPECT_TRUE(ps.schedule().empty());
  ps.unreserve_cpu(0);
  EXPECT_EQ(ps.schedule().size(), 1u);
}

TEST(ProcessScheduler, RemoveClearsState) {
  SimConfig cfg = base_config(1);
  ProcessScheduler ps(cfg);
  ps.add_ready(1);
  ps.schedule();
  ps.remove(1);
  EXPECT_EQ(ps.cpu_of(1), kNoCpu);
  EXPECT_EQ(ps.proc_on(0), kNoProc);
  EXPECT_TRUE(ps.history(1).empty());
}

// ----------------------------------------------------------- end to end

TEST(BackendRun, SingleProcessRefsAreSimulated) {
  Sim sim(base_config(1));
  auto& f = sim.add("app");
  f.start([](SimContext& ctx) {
    ctx.compute(100);
    ctx.load(0x1000, 8);
    ctx.compute(50);
    ctx.store(0x2000, 4);
  });
  sim.run();
  ASSERT_EQ(sim.mem.accesses.size(), 2u);
  EXPECT_EQ(sim.mem.accesses[0].addr, 0x1000u);
  EXPECT_EQ(sim.mem.accesses[0].type, RefType::kLoad);
  EXPECT_EQ(sim.mem.accesses[1].addr, 0x2000u);
  EXPECT_EQ(sim.mem.accesses[1].type, RefType::kStore);
  // First ref issues 100 cycles after the process got its CPU; second is 50
  // compute + 10 stall later.
  EXPECT_EQ(sim.mem.accesses[1].time - sim.mem.accesses[0].time, 60u);
  EXPECT_EQ(sim.backend->stats().counter_value("backend.mem_refs"), 2u);
}

TEST(BackendRun, UserComputeChargedToUserMode) {
  Sim sim(base_config(1));
  auto& f = sim.add("app");
  f.start([](SimContext& ctx) {
    ctx.compute(1000);
    ctx.load(0x10, 8);
  });
  sim.run();
  const auto& tb = sim.backend->time_breakdown();
  EXPECT_EQ(tb.cpu(0)[ExecMode::kUser], 1000u + 10u);  // compute + stall
}

TEST(BackendRun, DeterministicInterleavingByExecTime) {
  // Two processes on two CPUs; the one that computes less between refs must
  // always be picked first. Verify the access stream is fully deterministic
  // across runs.
  auto run_once = [] {
    Sim sim(base_config(2));
    auto& fast = sim.add("fast");
    auto& slow = sim.add("slow");
    fast.start([](SimContext& ctx) {
      for (int i = 0; i < 50; ++i) {
        ctx.compute(10);
        ctx.load(0x1000 + static_cast<Addr>(i) * 8, 8);
      }
    });
    slow.start([](SimContext& ctx) {
      for (int i = 0; i < 50; ++i) {
        ctx.compute(30);
        ctx.load(0x9000 + static_cast<Addr>(i) * 8, 8);
      }
    });
    sim.run();
    std::vector<std::pair<ProcId, Addr>> stream;
    for (const auto& a : sim.mem.accesses) stream.emplace_back(a.proc, a.addr);
    return stream;
  };
  const auto s1 = run_once();
  const auto s2 = run_once();
  const auto s3 = run_once();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s3);
  ASSERT_EQ(s1.size(), 100u);
}

TEST(BackendRun, PickMinOrdersCrossProcessRefsByIssueTime) {
  Sim sim(base_config(2));
  auto& a = sim.add("a");
  auto& b = sim.add("b");
  a.start([](SimContext& ctx) {
    ctx.compute(5);
    ctx.load(0xA0, 8);  // issues early
  });
  b.start([](SimContext& ctx) {
    ctx.compute(500);
    ctx.load(0xB0, 8);  // issues late
  });
  sim.run();
  ASSERT_EQ(sim.mem.accesses.size(), 2u);
  EXPECT_EQ(sim.mem.accesses[0].addr, 0xA0u);
  EXPECT_EQ(sim.mem.accesses[1].addr, 0xB0u);
  EXPECT_LE(sim.mem.accesses[0].time, sim.mem.accesses[1].time);
}

TEST(BackendRun, MoreProcessesThanCpusAllComplete) {
  Sim sim(base_config(2));
  std::atomic<int> done{0};
  for (int i = 0; i < 6; ++i) {
    auto& f = sim.add(std::string("p").append(std::to_string(i)));
    f.start([&done](SimContext& ctx) {
      for (int j = 0; j < 20; ++j) {
        ctx.compute(10);
        ctx.load(0x100, 8);
      }
      // Block briefly so the CPU is handed to a waiting process.
      ctx.wakeup(0xC0FFEE);  // leave a permit
      ctx.block_on(0xC0FFEE);
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done.load(), 6);
}

TEST(BackendRun, BatchingCoarsensButCompletes) {
  SimConfig cfg = base_config(1);
  Sim sim(cfg);
  SimContext::Options opts;
  opts.batch_size = 16;
  auto& f = sim.add("batched", opts);
  f.start([](SimContext& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.compute(5);
      ctx.load(static_cast<Addr>(i) * 64, 8);
    }
  });
  sim.run();
  EXPECT_EQ(sim.mem.accesses.size(), 100u);
  // 100 refs in batches of 16 → ceil(100/16)=7 posts (plus control events).
  EXPECT_EQ(sim.backend->stats().counter_value("backend.batches"), 7u);
}

TEST(BackendRun, YieldThresholdBreaksLongCompute) {
  SimConfig cfg = base_config(1);
  cfg.yield_threshold = 1000;
  Sim sim(cfg);
  SimContext::Options opts;
  opts.yield_threshold = 1000;
  auto& f = sim.add("cpuhog", opts);
  f.start([](SimContext& ctx) {
    for (int i = 0; i < 10; ++i) ctx.compute(600);
  });
  sim.run();
  // 6000 cycles of compute with a 1000-cycle yield threshold → ≥5 yields,
  // and all compute charged.
  EXPECT_EQ(sim.backend->time_breakdown().cpu(0)[ExecMode::kUser], 6000u);
}

// ------------------------------------------------------------ OS entry/exit

TEST(BackendRun, OsEnterExitSwitchesAccountingMode) {
  Sim sim(base_config(1));
  auto& f = sim.add("app");
  f.start([](SimContext& ctx) {
    ctx.compute(100);             // user
    ctx.os_enter(42);
    ctx.set_mode(ExecMode::kKernel);
    ctx.compute(300);             // kernel
    ctx.load(0xFFFF0000, 8);      // kernel ref
    ctx.set_mode(ExecMode::kUser);
    ctx.os_exit();
    ctx.compute(50);              // user
    ctx.load(0x50, 4);
  });
  sim.run();
  const auto& tb = sim.backend->time_breakdown();
  const SimConfig& cfg = sim.cfg;
  EXPECT_EQ(tb.cpu(0)[ExecMode::kUser], 100u + 50u + 10u);
  EXPECT_EQ(tb.cpu(0)[ExecMode::kKernel],
            cfg.syscall_entry_cycles + 300u + 10u + cfg.syscall_exit_cycles +
                cfg.context_switch_cycles);
  EXPECT_EQ(sim.backend->stats().counter_value("os.syscalls"), 1u);
}

// wrong-mode events: kOsExit must restore user mode even with nothing between
TEST(BackendRun, EmptySyscallBody) {
  Sim sim(base_config(1));
  auto& f = sim.add("app");
  f.start([](SimContext& ctx) {
    ctx.os_enter(1);
    ctx.os_exit();
    ctx.load(0x10, 8);
  });
  sim.run();
  EXPECT_EQ(sim.mem.accesses.size(), 1u);
  EXPECT_EQ(sim.mem.accesses[0].mode, ExecMode::kUser);
}

// -------------------------------------------------------------- block/wakeup

TEST(BackendRun, BlockThenWakeupByPeer) {
  Sim sim(base_config(2));
  std::vector<int> order;
  std::mutex order_mu;
  auto& sleeper = sim.add("sleeper");
  auto& waker = sim.add("waker");
  sleeper.start([&](SimContext& ctx) {
    ctx.compute(10);
    ctx.block_on(0xBEEF);
    std::lock_guard l(order_mu);
    order.push_back(1);
  });
  waker.start([&](SimContext& ctx) {
    ctx.compute(5000);  // make sure the sleeper blocks first
    {
      std::lock_guard l(order_mu);
      order.push_back(0);
    }
    ctx.wakeup(0xBEEF);
  });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(BackendRun, WakeupBeforeBlockLeavesPermit) {
  Sim sim(base_config(2));
  std::atomic<bool> done{false};
  auto& waker = sim.add("waker");
  auto& sleeper = sim.add("sleeper");
  waker.start([](SimContext& ctx) {
    ctx.compute(1);
    ctx.wakeup(0x1234);  // posted long before the block
  });
  sleeper.start([&](SimContext& ctx) {
    ctx.compute(100000);
    ctx.block_on(0x1234);  // must consume the stored permit, not hang
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done.load());
}

TEST(BackendRun, WakeupCountWakesFifo) {
  // One CPU: woken processes are scheduled (and hence record themselves)
  // strictly in wake order.
  Sim sim(base_config(1));
  std::vector<int> woken;
  std::mutex mu;
  for (int i = 0; i < 3; ++i) {
    auto& f = sim.add("sleeper" + std::to_string(i));
    f.start([&, i](SimContext& ctx) {
      ctx.compute(static_cast<Cycles>(10 * (i + 1)));
      ctx.block_on(0x77);
      std::lock_guard l(mu);
      woken.push_back(i);
    });
  }
  auto& waker = sim.add("waker");
  waker.start([](SimContext& ctx) {
    ctx.compute(1000000);
    ctx.wakeup(0x77, 3);
  });
  sim.run();
  // Sleepers blocked in compute-time order (10, 20, 30) and are woken FIFO.
  EXPECT_EQ(woken, (std::vector<int>{0, 1, 2}));
}

// ------------------------------------------------------------- preemption

TEST(BackendRun, PreemptiveSchedulerSharesTheCpu) {
  SimConfig cfg = base_config(1);
  cfg.preemptive = true;
  cfg.quantum = 2'000;
  Sim sim(cfg);
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    auto& f = sim.add(std::string("p").append(std::to_string(i)));
    f.start([&](SimContext& ctx) {
      for (int j = 0; j < 200; ++j) {
        ctx.compute(100);
        ctx.load(0x100, 8);
      }
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done.load(), 3);
  EXPECT_GT(sim.backend->stats().counter_value("backend.preemptions"), 0u);
}

TEST(BackendRun, NonPreemptiveNeverPreempts) {
  SimConfig cfg = base_config(1);
  cfg.preemptive = false;
  Sim sim(cfg);
  for (int i = 0; i < 2; ++i) {
    auto& f = sim.add(std::string("p").append(std::to_string(i)));
    f.start([](SimContext& ctx) {
      for (int j = 0; j < 50; ++j) {
        ctx.compute(1000);
        ctx.load(0x100, 8);
      }
    });
  }
  sim.run();
  EXPECT_EQ(sim.backend->stats().counter_value("backend.preemptions"), 0u);
}

// --------------------------------------------------------------- interrupts

TEST(BackendRun, InterruptDeliveredToRunningProcess) {
  SimConfig cfg = base_config(1);
  Sim sim(cfg);
  std::atomic<int> handled{0};
  auto& f = sim.add("app");
  CpuState* cs0 = &sim.comm.cpu_state(0);
  f.context().set_interrupt_hook([&, cs0](SimContext& ctx) {
    ctx.irq_enter(0);
    while (cs0->pop()) ++handled;
    ctx.irq_exit();
  });
  // Schedule an interrupt shortly after the run starts.
  sim.backend->scheduler().schedule_at(500, [&] {
    sim.backend->raise_irq(0, IrqDesc{Irq::kTimer, 0, 0});
  });
  f.start([](SimContext& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.compute(100);
      ctx.load(0x100, 8);
    }
  });
  sim.run();
  EXPECT_GE(handled.load(), 1);
  EXPECT_EQ(sim.backend->stats().counter_value("backend.irqs_raised"), 1u);
}

TEST(BackendRun, InterruptHookDrainsCpuStateQueue) {
  SimConfig cfg = base_config(1);
  Sim sim(cfg);
  std::vector<std::uint64_t> payloads;
  auto& f = sim.add("app");
  CpuState* cpu0 = &sim.comm.cpu_state(0);
  f.context().set_interrupt_hook([&, cpu0](SimContext& ctx) {
    ctx.irq_enter(0);
    while (auto d = cpu0->pop()) payloads.push_back(d->payload);
    ctx.irq_exit();
  });
  sim.backend->scheduler().schedule_at(100, [&] {
    sim.backend->raise_irq(0, IrqDesc{Irq::kDisk, 11, 0});
    sim.backend->raise_irq(0, IrqDesc{Irq::kDisk, 22, 0});
  });
  f.start([](SimContext& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.compute(50);
      ctx.load(0x40, 8);
    }
  });
  sim.run();
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], 11u);
  EXPECT_EQ(payloads[1], 22u);
  EXPECT_FALSE(cpu0->interrupt_requested());
}

TEST(BackendRun, InterruptDisableDefersDelivery) {
  SimConfig cfg = base_config(1);
  Sim sim(cfg);
  std::atomic<int> handled{0};
  auto& f = sim.add("app");
  CpuState* cpu0 = &sim.comm.cpu_state(0);
  f.context().set_interrupt_hook([&, cpu0](SimContext& ctx) {
    ctx.irq_enter(0);
    while (cpu0->pop()) ++handled;
    ctx.irq_exit();
  });
  sim.backend->scheduler().schedule_at(10, [&] {
    sim.backend->raise_irq(0, IrqDesc{Irq::kTimer, 0, 0});
  });
  f.start([&, cpu0](SimContext& ctx) {
    cpu0->set_interrupts_enabled(false);
    for (int i = 0; i < 20; ++i) {
      ctx.compute(100);
      ctx.load(0x10, 8);
    }
    EXPECT_EQ(handled.load(), 0);  // masked
    cpu0->set_interrupts_enabled(true);
    for (int i = 0; i < 5; ++i) {
      ctx.compute(100);
      ctx.load(0x10, 8);
    }
  });
  sim.run();
  EXPECT_EQ(handled.load(), 1);
}

// ------------------------------------------------------------ device hooks

class FakeDevices : public DeviceManager {
 public:
  void bind(Backend& b) { backend_ = &b; }
  std::int64_t device_request(ProcId, CpuId cpu, Cycles now,
                              std::span<const std::uint64_t, 4> args) override {
    // args[0]: latency; completion raises a disk irq with tag args[1].
    const std::uint64_t tag = args[1];
    backend_->scheduler().schedule_at(now + args[0], [this, cpu, tag] {
      backend_->raise_irq(cpu, IrqDesc{Irq::kDisk, tag, 0});
    });
    return static_cast<std::int64_t>(tag);
  }

 private:
  Backend* backend_ = nullptr;
};

TEST(BackendRun, DeviceRequestCompletionWakesBlockedProcess) {
  SimConfig cfg = base_config(1);
  Communicator comm(cfg.num_cpus);
  FakeMem mem;
  FakeDevices devices;
  Backend::Hooks hooks;
  hooks.memsys = &mem;
  hooks.devices = &devices;
  Backend backend(cfg, comm, hooks);
  devices.bind(backend);

  // With one CPU and no bottom-half dispatcher, the interrupt raised while
  // "io" is blocked must be picked up by whichever process runs on the CPU
  // next — here, a spinner.
  Frontend f(backend, "io");
  Frontend spinner(backend, "spinner");
  std::atomic<bool> woke{false};
  CpuState* cpu0 = &comm.cpu_state(0);
  auto drain_hook = [cpu0](SimContext& ctx) {
    ctx.irq_enter(1);
    while (auto d = cpu0->pop()) ctx.wakeup(d->payload);
    ctx.irq_exit();
  };
  f.context().set_interrupt_hook(drain_hook);
  spinner.context().set_interrupt_hook(drain_hook);
  f.start([&](SimContext& ctx) {
    ctx.compute(10);
    const std::int64_t tag = ctx.dev_request(5'000, 0xD00D);
    EXPECT_EQ(tag, 0xD00D);
    ctx.block_on(0xD00D);
    woke = true;
  });
  spinner.start([](SimContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      ctx.compute(50);
      ctx.load(0x8, 8);
    }
  });
  backend.run();
  f.join();
  spinner.join();
  EXPECT_TRUE(woke.load());
}

// A minimal bottom-half runner: one parked pseudo-process per dispatcher,
// driven by a host thread, mirroring what the OS layer provides.
class FakeBhRunner : public IdleIrqDispatcher {
 public:
  explicit FakeBhRunner(Backend& backend)
      : backend_(backend), bh_proc_(backend.add_bottom_half("bh")) {
    ctx_ = std::make_unique<SimContext>(backend.communicator().port(bh_proc_),
                                        ExecMode::kInterrupt);
    thread_ = std::thread([this] { loop(); });
  }
  ~FakeBhRunner() {
    {
      std::lock_guard l(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  void dispatch_idle_irq(CpuId cpu, ProcId bh, Cycles when) override {
    EXPECT_EQ(bh, bh_proc_);
    {
      std::lock_guard l(mu_);
      work_.push_back({cpu, when});
    }
    cv_.notify_one();
  }

  int handled() const { return handled_.load(); }

 private:
  struct Item {
    CpuId cpu;
    Cycles when;
  };

  void loop() {
    for (;;) {
      Item item;
      {
        std::unique_lock l(mu_);
        cv_.wait(l, [this] { return stop_ || !work_.empty(); });
        if (stop_ && work_.empty()) return;
        item = work_.front();
        work_.erase(work_.begin());
      }
      HostThrottle::Hold hold(backend_.communicator().throttle());
      ctx_->set_time(item.when);
      ctx_->irq_enter(0);
      while (auto d = backend_.communicator().cpu_state(item.cpu).pop()) {
        ctx_->compute(200);  // handler body
        if (d->payload != 0) ctx_->wakeup(d->payload);
        ++handled_;
      }
      ctx_->irq_exit();
    }
  }

  Backend& backend_;
  ProcId bh_proc_;
  std::unique_ptr<SimContext> ctx_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Item> work_;
  bool stop_ = false;
  std::atomic<int> handled_{0};
};

TEST(BackendRun, BottomHalfServicesIrqOnIdleCpu) {
  SimConfig cfg = base_config(1);
  Communicator comm(cfg.num_cpus);
  FakeMem mem;
  FakeDevices devices;
  Backend::Hooks hooks;
  hooks.memsys = &mem;
  hooks.devices = &devices;
  // The dispatcher must be set in hooks before Backend construction; use a
  // two-phase binder like the OS layer does.
  struct Binder : IdleIrqDispatcher {
    FakeBhRunner* runner = nullptr;
    void dispatch_idle_irq(CpuId cpu, ProcId bh, Cycles when) override {
      ASSERT_NE(runner, nullptr);
      runner->dispatch_idle_irq(cpu, bh, when);
    }
  } binder;
  hooks.idle_irq = &binder;
  Backend backend(cfg, comm, hooks);
  devices.bind(backend);
  FakeBhRunner runner(backend);
  binder.runner = &runner;

  // Single process blocks on a device op; CPU goes idle; the completion
  // interrupt must be serviced by the bottom half, which wakes the process.
  Frontend f(backend, "io");
  std::atomic<bool> woke{false};
  f.start([&](SimContext& ctx) {
    ctx.compute(10);
    ctx.dev_request(5'000, 0xFEED);
    ctx.block_on(0xFEED);
    woke = true;
  });
  backend.run();
  f.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(runner.handled(), 1);
  EXPECT_EQ(backend.stats().counter_value("os.bottom_half_dispatches"), 1u);
}

// ----------------------------------------------------------- abort handling

TEST(BackendRun, DeadlockDetectedAndFrontendsUnwind) {
  SimConfig cfg = base_config(1);
  Sim sim(cfg);
  auto& f = sim.add("stuck");
  f.start([](SimContext& ctx) {
    ctx.compute(10);
    ctx.block_on(0xDEAD);  // nobody will ever wake this
  });
  EXPECT_THROW(sim.backend->run(), util::SimError);
  for (auto& fe : sim.frontends) fe->join();
  EXPECT_TRUE(f.aborted());
}

TEST(BackendRun, DumpStatesNamesProcesses) {
  SimConfig cfg = base_config(1);
  Sim sim(cfg);
  auto& f = sim.add("myproc");
  f.start([](SimContext& ctx) {
    ctx.compute(10);
    ctx.block_on(0xDEAD);
  });
  try {
    sim.backend->run();
    FAIL() << "expected deadlock";
  } catch (const util::SimError& e) {
    EXPECT_NE(std::string(e.what()).find("myproc"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("blocked"), std::string::npos);
  }
  for (auto& fe : sim.frontends) fe->join();
}

TEST(BackendRun, WorkloadExceptionPropagatesViaJoin) {
  Sim sim(base_config(1));
  auto& ok = sim.add("ok");
  auto& bad = sim.add("bad");
  ok.start([](SimContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.compute(10);
      ctx.load(0x1, 8);
    }
  });
  bad.start([](SimContext& ctx) {
    ctx.compute(10);
    ctx.load(0x2, 8);
    throw std::runtime_error("workload bug");
  });
  sim.backend->run();
  ok.join();
  EXPECT_THROW(bad.join(), std::runtime_error);
}

// ------------------------------------------------------- host throttling

TEST(BackendRun, SerializedHostProducesSameSimulatedTime) {
  auto run_with_host = [](int host_cpus) {
    SimConfig cfg = base_config(2);
    cfg.host_cpus = host_cpus;
    Sim sim(cfg);
    for (int i = 0; i < 3; ++i) {
      auto& f = sim.add(std::string("p").append(std::to_string(i)));
      f.start([](SimContext& ctx) {
        for (int j = 0; j < 100; ++j) {
          ctx.compute(17);
          ctx.load(0x100 + static_cast<Addr>(j % 7) * 64, 8);
        }
      });
    }
    sim.run();
    return sim.backend->now();
  };
  const Cycles free_run = run_with_host(0);
  const Cycles uni_run = run_with_host(1);
  const Cycles smp_run = run_with_host(4);
  EXPECT_EQ(free_run, uni_run);
  EXPECT_EQ(free_run, smp_run);
}

TEST(HostThrottle, PermitsBoundConcurrency) {
  HostThrottle t(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 200; ++j) {
        t.acquire();
        const int now = ++inside;
        int expect = max_inside.load();
        while (now > expect && !max_inside.compare_exchange_weak(expect, now)) {
        }
        --inside;
        t.release();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(max_inside.load(), 2);
}

TEST(HostThrottle, DisabledIsNoop) {
  HostThrottle t(0);
  EXPECT_FALSE(t.enabled());
  t.acquire();  // must not block or throw
  t.release();
}

// ------------------------------------------------------------ event port

TEST(EventPort, RejectsEmptyBatch) {
  Communicator comm(1);
  EventPort& port = comm.create_port(0);
  EXPECT_THROW(port.post_and_wait({}), util::SimError);
}

TEST(EventPort, RejectsDecreasingTimes) {
  Communicator comm(1);
  EventPort& port = comm.create_port(0);
  std::vector<Event> batch{
      Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x1, 8, 100),
      Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x2, 8, 50),
  };
  EXPECT_THROW(port.post_and_wait(batch), util::SimError);
}

TEST(EventPort, ClosedPortReturnsAborted) {
  Communicator comm(1);
  EventPort& port = comm.create_port(0);
  port.close();
  std::vector<Event> batch{Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x1, 8, 1)};
  const Reply r = port.post_and_wait(batch);
  EXPECT_TRUE(r.aborted);
}

TEST(EventPort, RoundTrip) {
  Communicator comm(1);
  EventPort& port = comm.create_port(7);
  std::thread backend([&] {
    while (!port.has_pending()) std::this_thread::yield();
    EXPECT_EQ(port.pending_time(), 42u);
    const auto batch = port.take_batch();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].addr, 0xABCu);
    Reply r;
    r.resume_time = 99;
    port.reply(r);
  });
  std::vector<Event> batch{Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0xABC, 8, 42)};
  const Reply r = port.post_and_wait(batch);
  EXPECT_EQ(r.resume_time, 99u);
  backend.join();
}

TEST(EventPort, RebaseShiftsAllEventTimes) {
  Communicator comm(1);
  EventPort& port = comm.create_port(0);
  std::thread backend([&] {
    while (!port.has_pending()) std::this_thread::yield();
    port.rebase_pending(150);
    EXPECT_EQ(port.pending_time(), 150u);
    const auto batch = port.take_batch();
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].time, 150u);
    EXPECT_EQ(batch[1].time, 160u);
    Reply r;
    r.resume_time = 200;
    port.reply(r);
  });
  std::vector<Event> batch{
      Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x1, 8, 100),
      Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x2, 8, 110),
  };
  const Reply r = port.post_and_wait(batch);
  EXPECT_EQ(r.resume_time, 200u);
  backend.join();
}

/// Frontend thread helper: posts one single-event batch at `time` and
/// parks in post_and_wait until the test replies or closes the port.
std::thread post_one(EventPort& port, Cycles time, Reply* out) {
  return std::thread([&port, time, out] {
    std::vector<Event> batch{Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x1, 8, time)};
    *out = port.post_and_wait(batch);
  });
}

/// Backend-side drain: take the pending batch and reply so the frontend
/// thread in post_one can unwind.
void drain(EventPort& port, Cycles resume) {
  (void)port.take_batch();
  Reply r;
  r.resume_time = resume;
  port.reply(r);
}

TEST(EventPort, CloseUnblocksWaitingFrontend) {
  Communicator comm(1);
  EventPort& port = comm.create_port(0);
  Reply r;
  std::thread frontend = post_one(port, 1, &r);
  while (!port.has_pending()) std::this_thread::yield();
  // The frontend is now spinning or blocked in post_and_wait; close() must
  // hand it an aborted reply through either path.
  port.close();
  frontend.join();
  EXPECT_TRUE(r.aborted);
}

TEST(Communicator, PickMinIgnoresInactivePendingPorts) {
  Communicator comm(4);
  EventPort& p0 = comm.create_port(0);
  EventPort& p1 = comm.create_port(1);
  EventPort& p2 = comm.create_port(2);
  Reply r0, r1, r2;
  std::thread t0 = post_one(p0, 10, &r0);
  std::thread t1 = post_one(p1, 5, &r1);
  std::thread t2 = post_one(p2, 20, &r2);
  // Process 1 has the globally smallest time but is not running (e.g. it
  // was preempted with its batch still pending); pick-min must skip it.
  while (!p1.has_pending()) std::this_thread::yield();
  const std::vector<ProcId> running{0, 2};
  comm.wait_all_pending(running);
  EXPECT_EQ(comm.pick_min(running), 0);
  drain(p0, 100);
  drain(p1, 100);
  drain(p2, 100);
  t0.join();
  t1.join();
  t2.join();
}

TEST(Communicator, RebasePendingReordersPickMin) {
  Communicator comm(2);
  EventPort& p0 = comm.create_port(0);
  EventPort& p1 = comm.create_port(1);
  Reply r0, r1;
  std::thread t0 = post_one(p0, 10, &r0);
  std::thread t1 = post_one(p1, 20, &r1);
  const std::vector<ProcId> running{0, 1};
  comm.wait_all_pending(running);
  EXPECT_EQ(comm.pick_min(running), 0);
  // A preempted-then-rescheduled process gets its batch rebased past the
  // other pending time; the index must reflect the new ordering.
  p0.rebase_pending(30);
  EXPECT_EQ(comm.pick_min(running), 1);
  drain(p0, 100);
  drain(p1, 100);
  t0.join();
  t1.join();
}

TEST(Communicator, PickMinTieBreaksBySmallestProcId) {
  Communicator comm(3);
  EventPort& p0 = comm.create_port(0);
  EventPort& p1 = comm.create_port(1);
  EventPort& p2 = comm.create_port(2);
  Reply r0, r1, r2;
  // Post in reverse id order so insertion order cannot mask the tie-break.
  std::thread t2 = post_one(p2, 7, &r2);
  while (!p2.has_pending()) std::this_thread::yield();
  std::thread t1 = post_one(p1, 7, &r1);
  while (!p1.has_pending()) std::this_thread::yield();
  std::thread t0 = post_one(p0, 7, &r0);
  const std::vector<ProcId> running{0, 1, 2};
  comm.wait_all_pending(running);
  EXPECT_EQ(comm.pick_min(running), 0);
  drain(p0, 100);
  drain(p1, 100);
  drain(p2, 100);
  t0.join();
  t1.join();
  t2.join();
}

TEST(Communicator, WaitAllPendingTracksShrinkingRunningSet) {
  Communicator comm(2);
  EventPort& p0 = comm.create_port(0);
  EventPort& p1 = comm.create_port(1);
  Reply r0, r1;
  std::thread t0 = post_one(p0, 10, &r0);
  std::thread t1 = post_one(p1, 20, &r1);
  const std::vector<ProcId> both{0, 1};
  comm.wait_all_pending(both);
  drain(p0, 50);
  t0.join();
  // Process 0's batch is consumed; a running set of just {1} must not wait
  // on it, and pick-min must find process 1.
  const std::vector<ProcId> only1{1};
  comm.wait_all_pending(only1);
  EXPECT_EQ(comm.pick_min(only1), 1);
  drain(p1, 60);
  t1.join();
  EXPECT_EQ(r0.resume_time, 50u);
  EXPECT_EQ(r1.resume_time, 60u);
}

// ------------------------------------------------------------- sim context

TEST(SimContext, DetachedIsNoop) {
  SimContext ctx;
  EXPECT_FALSE(ctx.attached());
  ctx.compute(100);
  ctx.load(0x1, 8);
  ctx.store(0x2, 8);
  ctx.flush();
  EXPECT_EQ(ctx.time(), 0u);
  EXPECT_EQ(ctx.control(EventKind::kWakeup, 1), 0);  // no-op detached
}

TEST(SimContext, SimOffSuppressesEvents) {
  Sim sim(base_config(1));
  auto& f = sim.add("app");
  f.start([](SimContext& ctx) {
    ctx.compute(10);
    ctx.load(0x1, 8);
    {
      SimContext::SimOff off(ctx);
      ctx.compute(10);
      ctx.load(0x2, 8);  // must not be simulated
    }
    ctx.load(0x3, 8);
  });
  sim.run();
  ASSERT_EQ(sim.mem.accesses.size(), 2u);
  EXPECT_EQ(sim.mem.accesses[0].addr, 0x1u);
  EXPECT_EQ(sim.mem.accesses[1].addr, 0x3u);
}

TEST(SimContext, OscallRouterInvoked) {
  SimContext ctx;
  std::uint32_t seen_sysno = 0;
  ctx.set_oscall_router([&](SimContext&, std::uint32_t no,
                            std::span<const std::int64_t> args) -> std::int64_t {
    seen_sysno = no;
    return args.empty() ? -1 : args[0] * 2;
  });
  EXPECT_EQ(ctx.oscall(7, {21}), 42);
  EXPECT_EQ(seen_sysno, 7u);
}

TEST(SimContext, MissingRouterThrows) {
  SimContext ctx;
  EXPECT_THROW(ctx.oscall(1, {}), util::SimError);
}

}  // namespace
}  // namespace compass::core
