// Tests for the event-trace record & replay subsystem (src/trace/):
// format round-trips, reader robustness against malformed input, recorder
// determinism, golden record->replay equivalence for two workloads, and
// trace-driven config sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "stats/json.h"
#include "trace/config_codec.h"
#include "trace/golden.h"
#include "trace/trace_reader.h"
#include "trace/trace_recorder.h"
#include "trace/trace_replayer.h"
#include "trace/trace_writer.h"
#include "workloads/runner.h"

namespace compass {
namespace {

using trace::ByteReader;
using trace::TraceData;
using trace::TraceError;
using trace::TraceReader;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "compass_trace_test." + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
  std::fclose(f);
  return bytes;
}

// ---- varint / zigzag primitives -------------------------------------------

TEST(TraceFormat, VarintRoundTrip) {
  const std::uint64_t values[] = {0,      1,        127,        128,
                                  16383,  16384,    0xDEADBEEF, 1ull << 62,
                                  ~0ull,  0x80,     0x3FFF,     42};
  std::vector<std::uint8_t> buf;
  for (const std::uint64_t v : values) trace::put_varint(buf, v);
  ByteReader r(buf);
  for (const std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(TraceFormat, ZigzagRoundTrip) {
  const std::int64_t values[] = {0, 1, -1, 63, -64, 1ll << 40, -(1ll << 40),
                                 INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values)
    EXPECT_EQ(trace::unzigzag(trace::zigzag(v)), v);
}

TEST(TraceFormat, VarintRejectsTruncation) {
  std::vector<std::uint8_t> buf;
  trace::put_varint(buf, 1ull << 40);
  buf.pop_back();  // drop the terminating byte
  ByteReader r(buf);
  EXPECT_THROW(r.varint(), TraceError);
}

TEST(TraceFormat, VarintRejectsOverlongEncoding) {
  // Eleven continuation bytes can never terminate within 64 bits.
  std::vector<std::uint8_t> buf(11, 0x80);
  ByteReader r1(buf);
  EXPECT_THROW(r1.varint(), TraceError);
  // Ten bytes whose last contributes more than one bit overflows u64.
  std::vector<std::uint8_t> buf2(9, 0x80);
  buf2.push_back(0x02);
  ByteReader r2(buf2);
  EXPECT_THROW(r2.varint(), TraceError);
}

// ---- writer/reader event round-trip ---------------------------------------

core::Event random_event(std::mt19937_64& rng, Cycles& t) {
  std::uniform_int_distribution<int> kind_dist(
      0, static_cast<int>(core::EventKind::kExit));
  std::uniform_int_distribution<std::uint64_t> u64;
  std::uniform_int_distribution<Cycles> dt(0, 100'000);
  core::Event ev;
  ev.kind = static_cast<core::EventKind>(kind_dist(rng));
  ev.mode = static_cast<ExecMode>(u64(rng) % 4);
  ev.ref_type = static_cast<RefType>(u64(rng) % 3);
  t += dt(rng);
  ev.time = t;
  if (ev.kind == core::EventKind::kMemRef) {
    ev.addr = u64(rng);
    ev.size = static_cast<std::uint32_t>(1u << (u64(rng) % 8));
  } else if (ev.kind != core::EventKind::kYield) {
    for (auto& a : ev.arg) a = (u64(rng) % 3 == 0) ? 0 : u64(rng);
  }
  return ev;
}

void expect_events_equal(const core::Event& want, const core::Event& got) {
  EXPECT_EQ(want.kind, got.kind);
  EXPECT_EQ(want.mode, got.mode);
  if (want.kind == core::EventKind::kMemRef) {
    EXPECT_EQ(want.ref_type, got.ref_type);
    EXPECT_EQ(want.addr, got.addr);
    EXPECT_EQ(want.size, got.size);
  } else if (want.kind != core::EventKind::kYield) {
    EXPECT_EQ(want.arg, got.arg);
  }
}

TEST(TraceRoundTrip, RandomizedEventStreams) {
  const std::string path = temp_path("roundtrip.trace");
  std::mt19937_64 rng(20260806);

  const trace::ConfigPairs config = {{1, 4}, {2, 1}, {32, 7}};
  const std::vector<trace::ProcEntry> procs = {
      {"alpha", core::TraceSink::ProcKind::kProcess},
      {"bh0", core::TraceSink::ProcKind::kBottomHalf},
      {"netd", core::TraceSink::ProcKind::kDaemon}};

  // Generate per-proc batches with absolute times; remember (base, events).
  struct Recorded {
    ProcId proc;
    Cycles base;
    std::vector<core::Event> events;
  };
  std::vector<Recorded> batches;
  std::vector<Cycles> clock(procs.size(), 0);
  {
    trace::TraceWriter writer(path);
    writer.write_header(config, procs);
    writer.channel_seed(0xF00, 1);
    std::uniform_int_distribution<std::size_t> proc_dist(0, procs.size() - 1);
    std::uniform_int_distribution<int> len_dist(1, 6);
    for (int b = 0; b < 200; ++b) {
      const auto p = proc_dist(rng);
      Recorded rec;
      rec.proc = static_cast<ProcId>(p);
      rec.base = clock[p];
      const int len = len_dist(rng);
      for (int i = 0; i < len; ++i)
        rec.events.push_back(random_event(rng, clock[p]));
      writer.batch(rec.proc, rec.events.front().time - rec.base, rec.events);
      batches.push_back(std::move(rec));
      if (b % 17 == 0) writer.irq_pop(static_cast<ProcId>(p), 2);
      if (b % 23 == 0) writer.tx_frame(static_cast<ProcId>(p), 1234);
      if (b % 31 == 0) writer.rx_stimulus(clock[p], 99);
    }
    writer.finish();
  }

  const TraceData data = TraceReader::read_file(path);
  ASSERT_EQ(data.procs.size(), procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    EXPECT_EQ(data.procs[i].name, procs[i].name);
    EXPECT_EQ(data.procs[i].kind, procs[i].kind);
  }
  EXPECT_EQ(data.config, config);
  ASSERT_EQ(data.channel_seeds.size(), 1u);
  EXPECT_EQ(data.channel_seeds[0].first, 0xF00u);

  // Rebuild absolute times per proc and compare against the originals.
  std::vector<std::size_t> cursor(procs.size(), 0);
  for (const Recorded& rec : batches) {
    const auto p = static_cast<std::size_t>(rec.proc);
    const auto& stream = data.streams[p];
    // Skip interleaved non-batch ops.
    while (cursor[p] < stream.size() &&
           stream[cursor[p]].kind != TraceData::Op::Kind::kBatch)
      ++cursor[p];
    ASSERT_LT(cursor[p], stream.size());
    const TraceData::Op& op = stream[cursor[p]++];
    ASSERT_EQ(op.events.size(), rec.events.size());
    Cycles t = rec.base;
    for (std::size_t i = 0; i < op.events.size(); ++i) {
      t += op.events[i].time;
      EXPECT_EQ(t, rec.events[i].time);
      expect_events_equal(rec.events[i], op.events[i]);
    }
  }
  std::remove(path.c_str());
}

// ---- reader robustness -----------------------------------------------------

class TraceReaderRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("robust.trace");
    trace::TraceWriter writer(path_);
    writer.write_header({{1, 2}, {32, 1}},
                        std::vector<trace::ProcEntry>{
                            {"p0", core::TraceSink::ProcKind::kProcess}});
    core::Event ev = core::Event::mem_ref(ExecMode::kUser, RefType::kLoad,
                                          0x1000, 8, 100);
    writer.batch(0, 100, std::span<const core::Event>(&ev, 1));
    writer.irq_pop(0, 1);
    writer.finish();
    bytes_ = slurp(path_);
    std::remove(path_.c_str());
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(TraceReaderRobustness, AcceptsIntactTrace) {
  const TraceData data = TraceReader::read_bytes(bytes_);
  EXPECT_EQ(data.total_records, 2u);
  EXPECT_EQ(data.total_events, 1u);
}

TEST_F(TraceReaderRobustness, RejectsBadMagic) {
  auto bad = bytes_;
  bad[0] = 'X';
  EXPECT_THROW(
      try { TraceReader::read_bytes(bad); } catch (const TraceError& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
        throw;
      },
      TraceError);
}

TEST_F(TraceReaderRobustness, RejectsVersionMismatch) {
  auto bad = bytes_;
  bad[8] = 0x7F;  // version is the u32le right after the magic
  EXPECT_THROW(
      try { TraceReader::read_bytes(bad); } catch (const TraceError& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
        throw;
      },
      TraceError);
}

TEST_F(TraceReaderRobustness, RejectsConfigCorruption) {
  auto bad = bytes_;
  bad[21] ^= 0x01;  // inside the config block -> fingerprint mismatch
  EXPECT_THROW(TraceReader::read_bytes(bad), TraceError);
}

TEST_F(TraceReaderRobustness, RejectsEveryTruncation) {
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes_.begin(),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(TraceReader::read_bytes(cut), TraceError) << "len=" << len;
  }
}

TEST_F(TraceReaderRobustness, RejectsTrailingGarbage) {
  auto bad = bytes_;
  bad.push_back(0x00);
  EXPECT_THROW(TraceReader::read_bytes(bad), TraceError);
}

TEST_F(TraceReaderRobustness, RejectsUnknownRecordTag) {
  auto bad = bytes_;
  // The final record is kEnd + two varints; overwrite its tag.
  bad[bad.size() - 3] = 0x7E;
  EXPECT_THROW(TraceReader::read_bytes(bad), TraceError);
}

TEST(TraceReaderFiles, MissingFile) {
  EXPECT_THROW(TraceReader::read_file(temp_path("does-not-exist")), TraceError);
}

// ---- config codec ----------------------------------------------------------

TEST(ConfigCodec, RoundTripPreservesEveryEncodedField) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 6;
  cfg.core.num_nodes = 3;
  cfg.core.preemptive = true;
  cfg.core.quantum = 123'456;
  cfg.core.cpu_mhz = 200.5;
  cfg.model = sim::BackendModel::kNuma;
  cfg.placement = mem::PlacementPolicy::kRoundRobin;
  cfg.simple.mem_latency = 77;
  cfg.numa.net_bytes_per_cycle = 4.25;
  cfg.devices.num_disks = 2;
  cfg.devices.disk.seek_per_block = 0.125;
  cfg.devices.eth.bytes_per_cycle = 0.5;

  const trace::ConfigPairs pairs = trace::encode_config(cfg);
  const sim::SimulationConfig back = trace::decode_config(pairs);
  EXPECT_EQ(trace::encode_config(back), pairs);
  EXPECT_EQ(back.core.num_cpus, 6);
  EXPECT_EQ(back.core.cpu_mhz, 200.5);
  EXPECT_EQ(back.model, sim::BackendModel::kNuma);
  EXPECT_EQ(back.numa.net_bytes_per_cycle, 4.25);
  EXPECT_EQ(back.devices.disk.seek_per_block, 0.125);
}

TEST(ConfigCodec, UnknownKeyRaises) {
  trace::ConfigPairs pairs = {{9999, 1}};
  EXPECT_THROW(trace::decode_config(pairs), TraceError);
}

// ---- stats json ------------------------------------------------------------

TEST(StatsJson, RoundTrip) {
  stats::StatsSnapshot snap;
  snap.cycles = 123456789;
  snap.counters["backend.mem_refs"] = 42;
  snap.counters["weird \"name\"\n"] = 7;
  snap.cpu_time = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  snap.histograms["disk0.latency"] = {10, 2000, 5, 900};

  const stats::StatsSnapshot back = stats::parse_stats_json(to_json(snap));
  EXPECT_EQ(back.cycles, snap.cycles);
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.cpu_time, snap.cpu_time);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms.at("disk0.latency").sum, 2000u);
}

TEST(StatsJson, RejectsMalformed) {
  EXPECT_THROW(stats::parse_stats_json("{\"cycles\": }"), util::SimError);
  EXPECT_THROW(stats::parse_stats_json("{\"bogus\": 1}"), util::SimError);
  EXPECT_THROW(stats::parse_stats_json(""), util::SimError);
}

// ---- live workload determinism + golden replay ----------------------------

sim::SimulationConfig small_sci_config() {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  cfg.core.num_nodes = 2;
  cfg.model = sim::BackendModel::kSimple;
  return cfg;
}

workloads::SciScenario small_sci_scenario() {
  workloads::SciScenario sc;
  sc.matmul.n = 16;
  sc.matmul.block = 4;
  sc.matmul.nprocs = 2;
  return sc;
}

TEST(TraceDeterminism, SameSeededWorkloadTwiceIsByteIdentical) {
  const workloads::ScenarioStats a =
      workloads::run_sci(small_sci_config(), small_sci_scenario());
  const workloads::ScenarioStats b =
      workloads::run_sci(small_sci_config(), small_sci_scenario());
  EXPECT_EQ(a.snapshot.cycles, b.snapshot.cycles);
  EXPECT_EQ(a.snapshot.counters, b.snapshot.counters);   // every counter
  EXPECT_EQ(a.snapshot.cpu_time, b.snapshot.cpu_time);   // every cpu, mode
  EXPECT_EQ(stats::to_json(a.snapshot), stats::to_json(b.snapshot));
}

TEST(TraceGolden, SciReplayReproducesLiveRunBitIdentically) {
  const std::string path = temp_path("sci.trace");
  sim::SimulationConfig cfg = small_sci_config();
  trace::TraceRecorder recorder(cfg, path);
  cfg.trace_sink = &recorder;
  const workloads::ScenarioStats live =
      workloads::run_sci(cfg, small_sci_scenario());
  recorder.finalize();

  const TraceData data = TraceReader::read_file(path);
  EXPECT_GT(data.total_events, 1000u);
  trace::TraceReplayer replayer(data, trace::decode_config(data.config));
  replayer.run();

  const stats::StatsSnapshot replay = stats::make_snapshot(
      replayer.now(), replayer.stats(), replayer.breakdown());
  const std::vector<std::string> diffs =
      trace::golden_diff(live.snapshot, replay);
  for (const std::string& d : diffs) ADD_FAILURE() << d;
  EXPECT_EQ(live.snapshot.cycles, replay.cycles);
  std::remove(path.c_str());
}

TEST(TraceGolden, WebReplayReproducesLiveRunBitIdentically) {
  const std::string path = temp_path("web.trace");
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.model = sim::BackendModel::kSimple;
  trace::TraceRecorder recorder(cfg, path);
  cfg.trace_sink = &recorder;
  workloads::WebScenario sc;
  sc.requests = 10;
  sc.servers = 1;
  sc.concurrency = 2;
  const workloads::ScenarioStats live = workloads::run_web(cfg, sc);
  recorder.finalize();

  const TraceData data = TraceReader::read_file(path);
  EXPECT_FALSE(data.rx_stimuli.empty());  // web traffic arrives by wire
  trace::TraceReplayer replayer(data, trace::decode_config(data.config));
  replayer.run();

  const stats::StatsSnapshot replay = stats::make_snapshot(
      replayer.now(), replayer.stats(), replayer.breakdown());
  const std::vector<std::string> diffs =
      trace::golden_diff(live.snapshot, replay);
  for (const std::string& d : diffs) ADD_FAILURE() << d;
  std::remove(path.c_str());
}

TEST(TraceSweep, ReplayAgainstModifiedConfigsCompletesWithPlausibleStats) {
  const std::string path = temp_path("sweep.trace");
  sim::SimulationConfig cfg = small_sci_config();
  trace::TraceRecorder recorder(cfg, path);
  cfg.trace_sink = &recorder;
  const workloads::ScenarioStats live =
      workloads::run_sci(cfg, small_sci_scenario());
  recorder.finalize();

  const TraceData data = TraceReader::read_file(path);

  // Sweep 1: slower memory on the same model — must finish, same work,
  // more cycles.
  sim::SimulationConfig slow = trace::decode_config(data.config);
  slow.simple.mem_latency = 400;
  slow.simple.bus_occupancy = 32;
  {
    trace::TraceReplayer replayer(data, slow);
    replayer.run();
    EXPECT_EQ(replayer.stats().counter_value("backend.mem_refs"),
              live.snapshot.counters.at("backend.mem_refs"));
    EXPECT_GT(static_cast<Cycles>(replayer.now()), live.snapshot.cycles);
  }

  // Sweep 2: a different machine model entirely (CC-NUMA).
  sim::SimulationConfig numa = trace::decode_config(data.config);
  numa.model = sim::BackendModel::kNuma;
  {
    trace::TraceReplayer replayer(data, numa);
    replayer.run();
    EXPECT_EQ(replayer.stats().counter_value("backend.mem_refs"),
              live.snapshot.counters.at("backend.mem_refs"));
    EXPECT_NE(static_cast<Cycles>(replayer.now()), live.snapshot.cycles);
  }
  std::remove(path.c_str());
}

TEST(TraceReplayerChecks, RejectsCpuCountOverride) {
  const std::string path = temp_path("cpus.trace");
  sim::SimulationConfig cfg = small_sci_config();
  trace::TraceRecorder recorder(cfg, path);
  cfg.trace_sink = &recorder;
  (void)workloads::run_sci(cfg, small_sci_scenario());
  recorder.finalize();

  const TraceData data = TraceReader::read_file(path);
  sim::SimulationConfig other = trace::decode_config(data.config);
  other.core.num_cpus = 8;
  EXPECT_THROW(trace::TraceReplayer(data, other), util::SimError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace compass
