// Property-based and parameterized tests: randomized operation sequences
// checked against simple reference models, swept across configuration
// space with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>
#include <unordered_map>

#include "core/proc_sched.h"
#include "dev/disk.h"
#include "mem/arena.h"
#include "mem/cache.h"
#include "mem/line_map.h"
#include "mem/machine.h"
#include "mem/vm.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "workloads/db/btree.h"

namespace compass {
namespace {

// ===================================================================== cache

struct CacheGeom {
  std::uint32_t size;
  std::uint32_t assoc;
  std::uint32_t line;
};

class CacheProperty : public ::testing::TestWithParam<CacheGeom> {};

/// Reference model: per-set LRU lists over (tag, state).
class RefCache {
 public:
  explicit RefCache(const CacheGeom& g)
      : sets_(g.size / (g.assoc * g.line)), assoc_(g.assoc), line_(g.line) {
    lists_.resize(sets_);
  }

  mem::Mesi probe(std::uint64_t addr) const {
    const auto [set, tag] = split(addr);
    for (const auto& [t, s] : lists_[set])
      if (t == tag) return s;
    return mem::Mesi::kInvalid;
  }

  void touch(std::uint64_t addr) {
    const auto [set, tag] = split(addr);
    auto& l = lists_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (it->first == tag) {
        auto entry = *it;
        l.erase(it);
        l.push_front(entry);
        return;
      }
    }
  }

  void insert(std::uint64_t addr, mem::Mesi state) {
    const auto [set, tag] = split(addr);
    auto& l = lists_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (it->first == tag) {
        it->second = state;
        auto entry = *it;
        l.erase(it);
        l.push_front(entry);
        return;
      }
    }
    if (l.size() == assoc_) l.pop_back();
    l.push_front({tag, state});
  }

 private:
  std::pair<std::size_t, std::uint64_t> split(std::uint64_t addr) const {
    const std::uint64_t tag = addr / line_;
    return {static_cast<std::size_t>(tag % sets_), tag};
  }

  std::size_t sets_;
  std::size_t assoc_;
  std::uint64_t line_;
  std::vector<std::list<std::pair<std::uint64_t, mem::Mesi>>> lists_;
};

TEST_P(CacheProperty, MatchesReferenceLruModel) {
  const CacheGeom g = GetParam();
  mem::Cache cache("p", mem::CacheConfig{g.size, g.assoc, g.line});
  RefCache ref(g);
  util::Rng rng(g.size ^ g.assoc ^ g.line);
  // Address pool ~4x the cache size to force plenty of evictions.
  const std::uint64_t pool = 4ull * g.size;
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t addr = rng.next_below(pool);
    switch (rng.next_below(3)) {
      case 0: {  // lookup (touches LRU on hit)
        const auto got = cache.lookup(addr);
        ASSERT_EQ(got, ref.probe(addr)) << "op " << op;
        if (got != mem::Mesi::kInvalid) ref.touch(addr);
        break;
      }
      case 1: {  // insert
        const auto st = rng.next_bool(0.5) ? mem::Mesi::kModified
                                           : mem::Mesi::kShared;
        cache.insert(addr, st);
        ref.insert(addr, st);
        break;
      }
      default: {  // probe (no side effects)
        ASSERT_EQ(cache.probe(addr), ref.probe(addr)) << "op " << op;
        break;
      }
    }
  }
  // Residency never exceeds capacity.
  EXPECT_LE(cache.resident_lines(), g.size / g.line);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheProperty,
                         ::testing::Values(CacheGeom{1024, 1, 64},
                                           CacheGeom{1024, 2, 64},
                                           CacheGeom{4096, 4, 64},
                                           CacheGeom{4096, 4, 32},
                                           CacheGeom{8192, 8, 128},
                                           CacheGeom{2048, 2, 32}));

// ===================================================================== arena

class ArenaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaProperty, RandomAllocFreeNeverOverlaps) {
  util::Rng rng(GetParam());
  constexpr std::size_t kCap = 1 << 16;
  mem::Arena arena("p", 0x4000, kCap);
  struct Block {
    Addr addr;
    std::size_t size;
  };
  std::vector<Block> live;
  std::set<std::pair<Addr, Addr>> ranges;  // [start, end)
  for (int op = 0; op < 5'000; ++op) {
    if (live.empty() || rng.next_bool(0.55)) {
      const std::size_t size = 1 + rng.next_below(512);
      const std::size_t align = 1ull << rng.next_below(7);
      Addr a;
      try {
        a = arena.alloc(size, align);
      } catch (const util::SimError&) {
        continue;  // exhausted: acceptable
      }
      ASSERT_EQ(a % align, 0u);
      ASSERT_GE(a, arena.base());
      ASSERT_LE(a + size, arena.limit());
      // No overlap with any live block.
      for (const auto& [s, e] : ranges) {
        ASSERT_TRUE(a + size <= s || a >= e)
            << "overlap at op " << op;
      }
      live.push_back({a, size});
      ranges.emplace(a, a + size);
    } else {
      const std::size_t i = rng.next_below(live.size());
      arena.free(live[i].addr, live[i].size);
      ranges.erase({live[i].addr, live[i].addr + live[i].size});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  // Free everything: full coalescing must restore one max-size allocation.
  for (const auto& b : live) arena.free(b.addr, b.size);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.alloc(kCap, 1), arena.base());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

// ======================================================================== vm

struct VmParam {
  int nodes;
  mem::PlacementPolicy placement;
};

class VmProperty : public ::testing::TestWithParam<VmParam> {};

TEST_P(VmProperty, TranslationInvariants) {
  const VmParam param = GetParam();
  mem::Vm vm({.num_nodes = param.nodes, .placement = param.placement});
  util::Rng rng(99);
  std::map<std::pair<ProcId, std::uint64_t>, mem::PhysAddr> seen;
  std::set<std::uint64_t> ppages;
  for (int op = 0; op < 5'000; ++op) {
    const ProcId proc = static_cast<ProcId>(rng.next_below(4));
    const Addr va = rng.next_below(1 << 22);
    const NodeId node = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(param.nodes)));
    const auto t = vm.translate(proc, va, node);
    // Offset preserved; home in range; stable mapping per (proc, vpage).
    ASSERT_EQ(t.paddr & (mem::kPageSize - 1), va & (mem::kPageSize - 1));
    ASSERT_GE(t.home, 0);
    ASSERT_LT(t.home, param.nodes);
    const auto key = std::make_pair(proc, va >> mem::kPageShift);
    const mem::PhysAddr ppage_base = t.paddr & ~(mem::kPageSize - 1);
    if (const auto it = seen.find(key); it != seen.end()) {
      ASSERT_EQ(it->second, ppage_base);
      ASSERT_FALSE(t.fault);
    } else {
      ASSERT_TRUE(t.fault);
      seen.emplace(key, ppage_base);
      // Private pages are never shared between processes.
      ASSERT_TRUE(ppages.insert(ppage_base >> mem::kPageShift).second);
    }
    ASSERT_EQ(vm.home_of(t.paddr), t.home);
  }
  // Every allocated page is homed; totals add up.
  std::size_t total = 0;
  for (const auto n : vm.pages_per_node()) total += n;
  EXPECT_EQ(total, vm.allocated_pages());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, VmProperty,
    ::testing::Values(VmParam{1, mem::PlacementPolicy::kFirstTouch},
                      VmParam{2, mem::PlacementPolicy::kRoundRobin},
                      VmParam{4, mem::PlacementPolicy::kRoundRobin},
                      VmParam{4, mem::PlacementPolicy::kFirstTouch},
                      VmParam{2, mem::PlacementPolicy::kBlock}));

// ================================================================== line map

class LineMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LineMapProperty, MatchesUnorderedMapReference) {
  mem::LineMap m(16);  // tiny initial capacity: force many grows
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  util::Rng rng(GetParam());
  // Line-address-shaped keys (low 6 bits zero) from a small pool so
  // set/clear collide often and erase churns probe chains.
  for (int op = 0; op < 30'000; ++op) {
    const std::uint64_t key = (rng.next_below(512) + 1) << 6;
    const std::uint64_t bits = 1ull << rng.next_below(64);
    switch (rng.next_below(4)) {
      case 0: {
        const std::uint64_t prev = m.fetch_or(key, bits);
        ASSERT_EQ(prev, ref.contains(key) ? ref[key] : 0u) << "op " << op;
        ref[key] |= bits;
        break;
      }
      case 1:
        m.set_bits(key, bits);
        ref[key] |= bits;
        break;
      case 2:
        m.clear_bits(key, bits);
        if (const auto it = ref.find(key); it != ref.end()) {
          it->second &= ~bits;
          if (it->second == 0) ref.erase(it);
        }
        break;
      default:
        ASSERT_EQ(m.get(key), ref.contains(key) ? ref[key] : 0u)
            << "op " << op;
        break;
    }
    ASSERT_EQ(m.size(), ref.size()) << "op " << op;
  }
  for (const auto& [k, v] : ref) ASSERT_EQ(m.get(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineMapProperty,
                         ::testing::Values(101u, 202u, 303u));

// ============================================================ simple machine

struct SimpleMachineParam {
  int cpus;
  std::uint64_t seed;
};

class SimpleMachineProperty
    : public ::testing::TestWithParam<SimpleMachineParam> {};

/// Randomized load/store/sync streams with shared-memory segment churn,
/// run in lockstep on two machines: one with the snoop filter forced on,
/// one on the literal probe sweep. Every per-access latency must match
/// (the filter and the software TLB are host-side accelerations only), and
/// MESI single-writer invariants must hold on the touched line. Debug
/// builds additionally cross-check the filter and TLB against their slow
/// paths inside the models themselves.
TEST_P(SimpleMachineProperty, FilterMatchesSweepUnderRandomStreams) {
  const auto param = GetParam();
  const auto num_cpus = static_cast<std::uint64_t>(param.cpus);
  auto make_cfg = [](int min_cpus) {
    mem::SimpleMachineConfig cfg;
    cfg.l1 = mem::CacheConfig{1024, 2, 64};  // small: constant evictions
    cfg.snoop_filter_min_cpus = min_cpus;
    return cfg;
  };
  mem::Vm vm_a({.num_nodes = 1});
  mem::Vm vm_b({.num_nodes = 1});
  mem::SimpleMachine filtered(make_cfg(2), param.cpus, vm_a);
  mem::SimpleMachine swept(make_cfg(1000), param.cpus, vm_b);

  // One shared segment, attached by every "process" up front; proc 0
  // periodically detaches and re-attaches to exercise TLB shootdown.
  const auto seg_a = vm_a.shmget(1, 4 * mem::kPageSize);
  const auto seg_b = vm_b.shmget(1, 4 * mem::kPageSize);
  for (int p = 0; p < param.cpus; ++p) {
    vm_a.shmat(p, seg_a);
    vm_b.shmat(p, seg_b);
  }
  const Addr shm_base = vm_a.segment_base(seg_a);
  ASSERT_EQ(shm_base, vm_b.segment_base(seg_b));
  bool proc0_attached = true;

  util::Rng rng(param.seed);
  Cycles t = 0;
  for (int op = 0; op < 6'000; ++op) {
    if (rng.next_below(200) == 0) {
      // Segment churn (identically on both VMs).
      if (proc0_attached) {
        ASSERT_EQ(vm_a.shmdt(0, seg_a), 0);
        ASSERT_EQ(vm_b.shmdt(0, seg_b), 0);
      } else {
        vm_a.shmat(0, seg_a);
        vm_b.shmat(0, seg_b);
      }
      proc0_attached = !proc0_attached;
    }
    const auto cpu = static_cast<CpuId>(rng.next_below(num_cpus));
    const auto proc = static_cast<ProcId>(cpu);
    Addr a;
    switch (rng.next_below(3)) {
      case 0:  // kernel page shared by all CPUs: coherence traffic
        a = mem::kKernelBase + rng.next_below(2 * mem::kPageSize);
        break;
      case 1:  // shared segment (skip while proc 0 is detached)
        a = (proc == 0 && !proc0_attached)
                ? 0x2000 + static_cast<Addr>(proc) * 0x10000
                : shm_base + rng.next_below(4 * mem::kPageSize);
        break;
      default:  // private per-process pages
        a = 0x2000 + static_cast<Addr>(proc) * 0x10000 +
            rng.next_below(mem::kPageSize);
        break;
    }
    const auto kind = rng.next_below(10);
    const RefType rt = kind < 5   ? RefType::kLoad
                       : kind < 9 ? RefType::kStore
                                  : RefType::kSync;
    const auto ev = core::Event::mem_ref(ExecMode::kUser, rt, a, 8, t);
    const Cycles la = filtered.access(cpu, proc, ev);
    const Cycles lb = swept.access(cpu, proc, ev);
    ASSERT_EQ(la, lb) << "latency diverged at op " << op << " addr 0x"
                      << std::hex << a;
    // MESI single-writer invariant on the touched line.
    const mem::PhysAddr line =
        filtered.cache(cpu).line_addr(vm_a.translate(proc, a, 0).paddr);
    int modified = 0, present = 0;
    for (int c = 0; c < param.cpus; ++c) {
      const auto s = filtered.cache(c).probe(line);
      if (s != mem::Mesi::kInvalid) ++present;
      if (s == mem::Mesi::kModified) ++modified;
    }
    ASSERT_LE(modified, 1) << "two dirty copies at op " << op;
    if (modified == 1) {
      ASSERT_EQ(present, 1) << "dirty copy coexists with sharers at op " << op;
    }
    t += 1 + rng.next_below(20);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, SimpleMachineProperty,
    ::testing::Values(SimpleMachineParam{2, 11}, SimpleMachineParam{4, 22},
                      SimpleMachineParam{8, 33}, SimpleMachineParam{8, 44}));

// ===================================================================== btree

class BTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BTreeProperty, MatchesStdMapUnderRandomWorkload) {
  const int pattern = GetParam();
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  bool ok = true;
  std::string why;
  sim.spawn("db", [&](sim::Proc& p) {
    workloads::db::DbConfig dbc;
    dbc.pool_pages = 64;
    workloads::db::BufferPool pool(dbc);
    pool.register_file(1, "/prop/idx");
    pool.init(p);
    workloads::db::BTree tree(pool, 1);
    tree.create(p);
    std::map<std::int64_t, std::uint64_t> ref;
    util::Rng rng(static_cast<std::uint64_t>(pattern) * 31 + 7);
    for (int op = 0; op < 1'200; ++op) {
      std::int64_t key;
      switch (pattern) {
        case 0: key = op; break;                       // ascending
        case 1: key = 1'200 - op; break;               // descending
        case 2: key = rng.next_in(0, 500); break;      // dense random (dups)
        default: key = rng.next_in(0, 1'000'000); break;  // sparse random
      }
      const auto val = static_cast<std::uint64_t>(op) + 1;
      tree.insert(p, key, val);
      ref[key] = val;
      if (op % 100 == 0) {
        // Point queries agree.
        for (int q = 0; q < 10; ++q) {
          const std::int64_t probe = rng.next_in(0, 1'000'000);
          const auto got = tree.lookup(p, probe);
          const auto it = ref.find(probe);
          const bool match = it == ref.end() ? !got.has_value()
                                             : got == it->second;
          if (!match) {
            ok = false;
            why = "lookup mismatch at op " + std::to_string(op);
            return;
          }
        }
      }
    }
    // Full scan equals the reference, in order.
    std::vector<std::pair<std::int64_t, std::uint64_t>> scanned;
    tree.scan(p, std::numeric_limits<std::int64_t>::min() / 2,
              std::numeric_limits<std::int64_t>::max() / 2,
              [&](std::int64_t k, std::uint64_t v) { scanned.emplace_back(k, v); });
    if (scanned.size() != ref.size()) {
      ok = false;
      why = "scan size " + std::to_string(scanned.size()) + " vs " +
            std::to_string(ref.size());
      return;
    }
    std::size_t i = 0;
    for (const auto& [k, v] : ref) {
      if (scanned[i] != std::make_pair(k, v)) {
        ok = false;
        why = "scan order mismatch at " + std::to_string(i);
        return;
      }
      ++i;
    }
    if (tree.size(p) != ref.size()) {
      ok = false;
      why = "size mismatch";
    }
  });
  sim.run();
  EXPECT_TRUE(ok) << why;
}

INSTANTIATE_TEST_SUITE_P(Patterns, BTreeProperty, ::testing::Values(0, 1, 2, 3));

// ================================================================ proc sched

struct SchedParam {
  int cpus;
  core::SchedPolicy policy;
};

class SchedProperty : public ::testing::TestWithParam<SchedParam> {};

TEST_P(SchedProperty, InvariantsUnderRandomChurn) {
  const SchedParam param = GetParam();
  core::SimConfig cfg;
  cfg.num_cpus = param.cpus;
  cfg.sched_policy = param.policy;
  core::ProcessScheduler ps(cfg);
  util::Rng rng(static_cast<std::uint64_t>(param.cpus) * 17 +
                static_cast<std::uint64_t>(param.policy));
  std::set<ProcId> on_cpu, ready;
  for (int op = 0; op < 10'000; ++op) {
    const auto choice = rng.next_below(3);
    if (choice == 0 && on_cpu.size() + ready.size() < 12) {
      const auto proc = static_cast<ProcId>(100 + rng.next_below(12));
      if (!on_cpu.contains(proc) && !ready.contains(proc)) {
        ps.add_ready(proc);
        ready.insert(proc);
      }
    } else if (choice == 1 && !on_cpu.empty()) {
      const auto it = std::next(on_cpu.begin(),
                                static_cast<std::ptrdiff_t>(
                                    rng.next_below(on_cpu.size())));
      ps.release_cpu(*it);
      on_cpu.erase(it);
    } else {
      for (const auto& [proc, cpu] : ps.schedule()) {
        // Assignment invariants: proc was ready, CPU in range, mapping
        // consistent.
        ASSERT_TRUE(ready.contains(proc));
        ASSERT_GE(cpu, 0);
        ASSERT_LT(cpu, param.cpus);
        ASSERT_EQ(ps.cpu_of(proc), cpu);
        ASSERT_EQ(ps.proc_on(cpu), proc);
        ready.erase(proc);
        on_cpu.insert(proc);
      }
      // No CPU left free while processes are ready.
      if (ps.has_ready()) {
        for (CpuId c = 0; c < param.cpus; ++c)
          ASSERT_FALSE(ps.cpu_free(c));
      }
    }
    ASSERT_LE(on_cpu.size(), static_cast<std::size_t>(param.cpus));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SchedProperty,
    ::testing::Values(SchedParam{1, core::SchedPolicy::kFcfs},
                      SchedParam{2, core::SchedPolicy::kFcfs},
                      SchedParam{4, core::SchedPolicy::kAffinity},
                      SchedParam{8, core::SchedPolicy::kAffinity}));

// ====================================================================== disk

class DiskProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskProperty, CompletionsMonotoneAndAfterSubmission) {
  dev::Disk disk(0, dev::DiskConfig{});
  util::Rng rng(GetParam());
  Cycles now = 0;
  Cycles last_done = 0;
  for (int op = 0; op < 2'000; ++op) {
    now += rng.next_below(100'000);
    const Cycles done =
        disk.submit(rng.next_below(1 << 24),
                    1 + static_cast<std::uint32_t>(rng.next_below(16)),
                    rng.next_bool(0.4), now);
    // FIFO service: completions never reorder, and never precede submission.
    ASSERT_GE(done, now);
    ASSERT_GE(done, last_done);
    last_done = done;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskProperty, ::testing::Values(5u, 6u, 7u));

}  // namespace
}  // namespace compass
