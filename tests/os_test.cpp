// Integration tests for the OS layer: kernel synchronization, arenas, the
// OS server protocol, file system + buffer cache + disk interrupts, TCP/IP
// + netd, shared segments, semaphores, and native (raw) execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "os/fs.h"
#include "sim/native_env.h"
#include "sim/simulation.h"

namespace compass {
namespace {

using os::Sys;
using sim::BackendModel;
using sim::Proc;
using sim::Simulation;
using sim::SimulationConfig;

SimulationConfig small_config(int cpus = 2) {
  SimulationConfig cfg;
  cfg.core.num_cpus = cpus;
  cfg.model = BackendModel::kSimple;
  cfg.kernel.buffer_cache_buffers = 64;
  cfg.user_heap_bytes = 8ull << 20;
  return cfg;
}

// ------------------------------------------------------------------ arena

TEST(Arena, AllocFreeCoalesce) {
  mem::Arena a("t", 0x1000, 4096);
  const Addr x = a.alloc(100, 8);
  const Addr y = a.alloc(100, 8);
  const Addr z = a.alloc(100, 8);
  EXPECT_EQ(a.bytes_in_use(), 300u + (x - 0x1000));
  a.free(y, 100);
  a.free(x, 100);
  a.free(z, 100);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  // After full coalescing a capacity-sized allocation succeeds.
  const Addr big = a.alloc(4096, 1);
  EXPECT_EQ(big, 0x1000u);
}

TEST(Arena, AlignmentRespected) {
  mem::Arena a("t", 0, 4096);
  a.alloc(3, 1);
  const Addr aligned = a.alloc(64, 64);
  EXPECT_EQ(aligned % 64, 0u);
}

TEST(Arena, ExhaustionThrows) {
  mem::Arena a("t", 0, 128);
  a.alloc(100, 1);
  EXPECT_THROW(a.alloc(100, 1), util::SimError);
}

TEST(Arena, DoubleFreeThrows) {
  mem::Arena a("t", 0, 1024);
  const Addr x = a.alloc(64, 8);
  a.free(x, 64);
  EXPECT_THROW(a.free(x, 64), util::SimError);
}

TEST(AddressMap, ResolvesAcrossArenas) {
  mem::AddressMap map;
  mem::Arena a("a", 0x1000, 4096), b("b", 0x10000, 4096);
  map.add(a);
  map.add(b);
  EXPECT_EQ(map.host(0x1000), a.host(0x1000));
  EXPECT_EQ(map.host(0x10080), b.host(0x10080));
  EXPECT_THROW(map.host(0x9000), util::SimError);
  map.remove(a);
  EXPECT_THROW(map.host(0x1000), util::SimError);
}

TEST(AddressMap, OverlapRejected) {
  mem::AddressMap map;
  mem::Arena a("a", 0x1000, 4096);
  mem::Arena overlap("b", 0x1800, 4096);
  map.add(a);
  EXPECT_THROW(map.add(overlap), util::SimError);
}

TEST(AddressMap, SimMemcpyCopiesAcrossArenas) {
  mem::AddressMap map;
  mem::Arena a("a", 0x1000, 4096), b("b", 0x10000, 4096);
  map.add(a);
  map.add(b);
  core::SimContext detached;
  std::memcpy(a.host(0x1100), "hello world", 11);
  mem::sim_memcpy(detached, map, 0x10020, 0x1100, 11);
  EXPECT_EQ(std::memcmp(b.host(0x10020), "hello world", 11), 0);
}

// ----------------------------------------------------------- frame format

TEST(Frames, RoundTrip) {
  os::FrameHeader h;
  h.conn = 0x12345;
  h.port = 80;
  h.flags = os::kFrameData;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const auto frame = os::make_frame(h, payload);
  const auto parsed = os::parse_frame(frame);
  EXPECT_EQ(parsed.conn, 0x12345u);
  EXPECT_EQ(parsed.port, 80);
  EXPECT_EQ(parsed.flags, os::kFrameData);
  EXPECT_EQ(parsed.len, 5u);
}

TEST(Frames, RuntThrows) {
  const std::vector<std::uint8_t> runt{1, 2};
  EXPECT_THROW(os::parse_frame(runt), util::SimError);
}

// ----------------------------------------------------- file system (sim)

TEST(OsSim, CreateWriteReadFile) {
  Simulation sim(small_config());
  std::string readback;
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.creat("/data/test.txt");
    ASSERT_GE(fd, 0);
    const Addr buf = p.alloc(4096);
    const std::string msg = "the quick brown fox jumps over the lazy dog";
    p.put_bytes(buf, {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
    EXPECT_EQ(p.write_fd(fd, buf, msg.size()), static_cast<std::int64_t>(msg.size()));
    EXPECT_EQ(p.close(fd), 0);

    const auto fd2 = p.open("/data/test.txt");
    ASSERT_GE(fd2, 0);
    const Addr buf2 = p.alloc(4096);
    const auto n = p.read_fd(fd2, buf2, 4096);
    EXPECT_EQ(n, static_cast<std::int64_t>(msg.size()));
    const auto bytes = p.get_bytes(buf2, static_cast<std::size_t>(n));
    readback.assign(bytes.begin(), bytes.end());
    p.close(fd2);
  });
  sim.run();
  EXPECT_EQ(readback, "the quick brown fox jumps over the lazy dog");
  // Kernel time and at least one syscall were recorded.
  EXPECT_GT(sim.breakdown().total()[ExecMode::kKernel], 0u);
  EXPECT_GT(sim.stats().counter_value("os.syscalls"), 0u);
}

TEST(OsSim, ReadMissGoesToDiskAndRaisesInterrupt) {
  auto cfg = small_config();
  Simulation sim(cfg);
  // Pre-populate a file larger than one block.
  std::vector<std::uint8_t> content(3 * 4096);
  for (std::size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<std::uint8_t>(i * 7);
  sim.kernel().fs().populate("/db/file0", content);

  bool ok = false;
  sim.spawn("reader", [&](Proc& p) {
    const auto fd = p.open("/db/file0");
    ASSERT_GE(fd, 0);
    const Addr buf = p.alloc(3 * 4096);
    const auto n = p.read_fd(fd, buf, 3 * 4096);
    ASSERT_EQ(n, 3 * 4096);
    const auto bytes = p.get_bytes(buf, 3 * 4096);
    ok = std::equal(bytes.begin(), bytes.end(), content.begin());
    p.close(fd);
  });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(sim.stats().counter_value("disk0.reads"), 3u);
  EXPECT_GT(sim.stats().counter_value("backend.irqs_raised"), 0u);
  // Interrupt time was accounted (Table 1's interrupt column).
  EXPECT_GT(sim.breakdown().total()[ExecMode::kInterrupt], 0u);
}

TEST(OsSim, BufferCacheHitsAvoidSecondDiskRead) {
  Simulation sim(small_config());
  std::vector<std::uint8_t> content(4096, 0xAB);
  sim.kernel().fs().populate("/f", content);
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.open("/f");
    const Addr buf = p.alloc(4096);
    p.read_fd(fd, buf, 4096);
    p.lseek(fd, 0, 0);
    p.read_fd(fd, buf, 4096);  // cache hit
    p.close(fd);
  });
  sim.run();
  EXPECT_EQ(sim.stats().counter_value("disk0.reads"), 1u);
  EXPECT_GE(sim.stats().counter_value("fs.cache_hits"), 1u);
}

TEST(OsSim, StatxAndUnlink) {
  Simulation sim(small_config());
  sim.kernel().fs().populate("/x", std::vector<std::uint8_t>(1000, 1));
  std::int64_t size = -1, after = 0;
  sim.spawn("app", [&](Proc& p) {
    size = p.statx("/x");
    EXPECT_EQ(p.unlink("/x"), 0);
    after = p.statx("/x");
  });
  sim.run();
  EXPECT_EQ(size, 1000);
  EXPECT_EQ(after, -os::kENOENT);
}

TEST(OsSim, WritevReadvVectors) {
  Simulation sim(small_config());
  bool ok = false;
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.creat("/v");
    const Addr a = p.alloc(100), b = p.alloc(100);
    std::vector<std::uint8_t> da(100, 0x11), db(100, 0x22);
    p.put_bytes(a, da);
    p.put_bytes(b, db);
    const os::KIovec iov[2] = {{a, 100}, {b, 100}};
    EXPECT_EQ(p.writev(fd, iov), 200);
    p.lseek(fd, 0, 0);
    const Addr c = p.alloc(200);
    const os::KIovec riov[1] = {{c, 200}};
    EXPECT_EQ(p.readv(fd, riov), 200);
    const auto bytes = p.get_bytes(c, 200);
    ok = bytes[0] == 0x11 && bytes[99] == 0x11 && bytes[100] == 0x22 &&
         bytes[199] == 0x22;
    p.close(fd);
  });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(OsSim, MmapMsyncRoundTrip) {
  Simulation sim(small_config());
  sim.kernel().fs().populate("/m", std::vector<std::uint8_t>(8192, 0x5A));
  bool read_ok = false;
  sim.spawn("app", [&](Proc& p) {
    const auto fd = p.open("/m");
    const auto base = p.mmap(fd, 0, 8192);
    ASSERT_GT(base, 0);
    // Read mapped data with plain user references.
    read_ok = p.read<std::uint8_t>(static_cast<Addr>(base) + 5000) == 0x5A;
    // Modify and write back.
    p.write<std::uint8_t>(static_cast<Addr>(base) + 100, 0x77);
    EXPECT_EQ(p.msync(static_cast<Addr>(base)), 0);
    EXPECT_EQ(p.munmap(static_cast<Addr>(base)), 0);
    p.close(fd);
  });
  sim.run();
  EXPECT_TRUE(read_ok);
  // The modification reached the platter.
  os::Inode* inode = nullptr;
  for (std::uint64_t id = 1; id < 10; ++id)
    if ((inode = sim.kernel().fs().inode_by_id(id)) != nullptr) break;
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->page_data(0, 4096)[100], 0x77);
}

// ----------------------------------------------------------- shm + sems

TEST(OsSim, SharedSegmentVisibleAcrossProcesses) {
  Simulation sim(small_config(2));
  std::atomic<std::int64_t> seen{-1};
  sim.spawn("writer", [&](Proc& p) {
    const auto segid = p.shmget(0x42, 1 << 16);
    ASSERT_GE(segid, 0);
    const auto base = p.shmat(segid);
    ASSERT_GT(base, 0);
    p.write<std::int64_t>(static_cast<Addr>(base) + 128, 987654321);
    p.sem_init(1, 0);
    p.sem_v(1);  // signal the reader
  });
  sim.spawn("reader", [&](Proc& p) {
    p.ctx().compute(50'000);  // let the writer go first
    p.sem_init(1, 0);
    p.sem_p(1);
    const auto segid = p.shmget(0x42, 1 << 16);
    const auto base = p.shmat(segid);
    seen = p.read<std::int64_t>(static_cast<Addr>(base) + 128);
  });
  sim.run();
  EXPECT_EQ(seen.load(), 987654321);
}

TEST(OsSim, SemaphoreBlocksUntilV) {
  Simulation sim(small_config(2));
  std::vector<int> order;
  std::mutex mu;
  sim.spawn("waiter", [&](Proc& p) {
    p.sem_init(7, 0);
    p.sem_p(7);
    std::lock_guard l(mu);
    order.push_back(2);
  });
  sim.spawn("poster", [&](Proc& p) {
    p.sem_init(7, 0);
    p.ctx().compute(200'000);
    {
      std::lock_guard l(mu);
      order.push_back(1);
    }
    p.sem_v(7);
  });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(OsSim, UsleepAdvancesSimulatedTime) {
  Simulation sim(small_config(1));
  sim.spawn("sleeper", [&](Proc& p) {
    p.usleep(5'000'000);
  });
  sim.run();
  EXPECT_GE(sim.now(), 5'000'000u);
}

// -------------------------------------------------------------- sockets

/// A wire-side client: sends SYN + one request, records the responses.
class OneShotClient : public dev::Wire {
 public:
  OneShotClient(Simulation& sim, std::uint32_t conn, std::uint16_t port,
                std::string request)
      : sim_(sim), conn_(conn), port_(port), request_(std::move(request)) {}

  /// Schedule the connection attempt at simulated cycle `when`.
  void start(Cycles when) {
    sim_.backend().scheduler().schedule_at(when, [this] {
      os::FrameHeader syn;
      syn.conn = conn_;
      syn.port = port_;
      syn.flags = os::kFrameSyn;
      syn.seq = 0;
      sim_.devices().deliver_rx_frame(os::make_frame(syn, {}));
      os::FrameHeader data;
      data.conn = conn_;
      data.flags = os::kFrameData;
      data.seq = 1;
      sim_.devices().deliver_rx_frame(os::make_frame(
          data, {reinterpret_cast<const std::uint8_t*>(request_.data()),
                 request_.size()}));
    });
  }

  void on_tx(std::vector<std::uint8_t> frame, Cycles) override {
    const os::FrameHeader h = os::parse_frame(frame);
    if (h.conn != conn_) return;
    if (h.flags & os::kFrameData)
      response_.append(reinterpret_cast<const char*>(frame.data() + sizeof(h)),
                       h.len);
    if (h.flags & os::kFrameFin) fin_ = true;
  }

  const std::string& response() const { return response_; }
  bool got_fin() const { return fin_; }

 private:
  Simulation& sim_;
  std::uint32_t conn_;
  std::uint16_t port_;
  std::string request_;
  std::string response_;
  bool fin_ = false;
};

TEST(OsSim, AcceptRecvSendOverEthernet) {
  Simulation sim(small_config(2));
  OneShotClient client(sim, 0x10001, 80, "GET /hello");
  sim.devices().ethernet().set_wire(&client);
  client.start(50'000);

  std::string got_request;
  sim.spawn("server", [&](Proc& p) {
    const auto lsock = p.socket();
    ASSERT_GE(lsock, 0);
    ASSERT_EQ(p.bind(lsock, 80), 0);
    ASSERT_EQ(p.listen(lsock), 0);
    const auto conn = p.naccept(lsock);
    ASSERT_GE(conn, 0);
    const Addr buf = p.alloc(4096);
    const auto n = p.recv(conn, buf, 4096);
    ASSERT_GT(n, 0);
    const auto bytes = p.get_bytes(buf, static_cast<std::size_t>(n));
    got_request.assign(bytes.begin(), bytes.end());
    const std::string reply = "HTTP/1.0 200 OK\r\n\r\nhello!";
    p.put_bytes(buf, {reinterpret_cast<const std::uint8_t*>(reply.data()),
                      reply.size()});
    EXPECT_EQ(p.send(conn, buf, reply.size()),
              static_cast<std::int64_t>(reply.size()));
    p.close(conn);
    p.close(lsock);
  });
  sim.run();
  EXPECT_EQ(got_request, "GET /hello");
  EXPECT_EQ(client.response(), "HTTP/1.0 200 OK\r\n\r\nhello!");
  EXPECT_TRUE(client.got_fin());
  EXPECT_GT(sim.stats().counter_value("net.frames_in"), 0u);
  EXPECT_GT(sim.stats().counter_value("eth.tx_frames"), 0u);
}

TEST(OsSim, SelectFindsReadySocket) {
  Simulation sim(small_config(2));
  OneShotClient client(sim, 0x10002, 8080, "ping");
  sim.devices().ethernet().set_wire(&client);
  client.start(100'000);
  std::int64_t ready_fd = -1;
  std::int64_t lsock_fd = -1;
  sim.spawn("server", [&](Proc& p) {
    const auto lsock = p.socket();
    lsock_fd = lsock;
    p.bind(lsock, 8080);
    p.listen(lsock);
    const std::int32_t fds[1] = {static_cast<std::int32_t>(lsock)};
    ready_fd = p.select(fds);  // blocks until the SYN arrives
    const auto conn = p.naccept(lsock);
    const Addr buf = p.alloc(256);
    p.recv(conn, buf, 256);
    p.close(conn);
    p.close(lsock);
  });
  sim.run();
  EXPECT_EQ(ready_fd, lsock_fd);
}

TEST(OsSim, RecvReturnsZeroAfterFin) {
  Simulation sim(small_config(2));
  // Client that sends SYN, one byte, then FIN.
  struct FinClient : dev::Wire {
    Simulation& sim;
    explicit FinClient(Simulation& s) : sim(s) {}
    void start(Cycles when) {
      sim.backend().scheduler().schedule_at(when, [this] {
        os::FrameHeader syn{0x10003, 9, os::kFrameSyn, 0, 0, 0, 0};
        sim.devices().deliver_rx_frame(os::make_frame(syn, {}));
        const std::uint8_t byte = 'x';
        os::FrameHeader data{0x10003, 0, os::kFrameData, 0, 0, 1, 0};
        sim.devices().deliver_rx_frame(os::make_frame(data, {&byte, 1}));
        os::FrameHeader fin{0x10003, 0, os::kFrameFin, 0, 0, 2, 0};
        sim.devices().deliver_rx_frame(os::make_frame(fin, {}));
      });
    }
    void on_tx(std::vector<std::uint8_t>, Cycles) override {}
  } client(sim);
  client.start(10'000);
  std::int64_t n1 = -1, n2 = -1;
  sim.spawn("server", [&](Proc& p) {
    const auto lsock = p.socket();
    p.bind(lsock, 9);
    p.listen(lsock);
    const auto conn = p.naccept(lsock);
    const Addr buf = p.alloc(64);
    n1 = p.recv(conn, buf, 64);
    n2 = p.recv(conn, buf, 64);  // FIN → 0
    p.close(conn);
    p.close(lsock);
  });
  sim.run();
  EXPECT_EQ(n1, 1);
  EXPECT_EQ(n2, 0);
}

// -------------------------------------------------------------- native

TEST(OsNative, FileRoundTripAtHostSpeed) {
  sim::NativeEnv env;
  Proc& p = env.add_process("raw");
  const auto fd = p.creat("/raw/file");
  ASSERT_GE(fd, 0);
  const Addr buf = p.alloc(4096);
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  p.put_bytes(buf, data);
  EXPECT_EQ(p.write_fd(fd, buf, 4096), 4096);
  p.lseek(fd, 0, 0);
  const Addr out = p.alloc(4096);
  EXPECT_EQ(p.read_fd(fd, out, 4096), 4096);
  EXPECT_EQ(p.get_bytes(out, 4096), data);
  p.close(fd);
}

TEST(OsNative, ShmSharedBetweenNativeProcs) {
  sim::NativeEnv env;
  Proc& a = env.add_process("a");
  Proc& b = env.add_process("b");
  const auto segid = a.shmget(9, 4096);
  const auto base_a = a.shmat(segid);
  const auto base_b = b.shmat(b.shmget(9, 4096));
  EXPECT_EQ(base_a, base_b);
  a.write<std::int32_t>(static_cast<Addr>(base_a), 42);
  EXPECT_EQ(b.read<std::int32_t>(static_cast<Addr>(base_b)), 42);
}

TEST(OsNative, SemaphoresWorkAcrossHostThreads) {
  sim::NativeEnv env;
  Proc& a = env.add_process("a");
  Proc& b = env.add_process("b");
  a.sem_init(3, 0);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    b.sem_p(3);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  a.sem_v(3);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

// ------------------------------------------------------------ determinism

TEST(OsSim, FullStackDeterminism) {
  auto run_once = [] {
    Simulation sim(small_config(2));
    sim.kernel().fs().populate("/d", std::vector<std::uint8_t>(16 * 4096, 3));
    sim.spawn("a", [&](Proc& p) {
      const auto fd = p.open("/d");
      const Addr buf = p.alloc(4096);
      for (int i = 0; i < 8; ++i) p.read_fd(fd, buf, 4096);
      p.close(fd);
    });
    sim.spawn("b", [&](Proc& p) {
      const auto fd = p.open("/d");
      const Addr buf = p.alloc(4096);
      p.lseek(fd, 8 * 4096, 0);
      for (int i = 0; i < 8; ++i) p.read_fd(fd, buf, 4096);
      p.close(fd);
    });
    sim.run();
    return std::tuple{sim.now(),
                      sim.stats().counter_value("backend.mem_refs"),
                      sim.breakdown().total()[ExecMode::kKernel],
                      sim.breakdown().total()[ExecMode::kInterrupt]};
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  const auto r3 = run_once();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r3);
}

}  // namespace
}  // namespace compass
