// Tests for the memory-system models: cache arrays, VM / page placement,
// the MESI snooping bus (simple backend) and the directory CC-NUMA
// protocol (complex backend).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "mem/cache.h"
#include "mem/l1_filter.h"
#include "mem/machine.h"
#include "mem/vm.h"

namespace compass::mem {
namespace {

core::Event load_at(Addr a, Cycles t = 0) {
  return core::Event::mem_ref(ExecMode::kUser, RefType::kLoad, a, 8, t);
}
core::Event store_at(Addr a, Cycles t = 0) {
  return core::Event::mem_ref(ExecMode::kUser, RefType::kStore, a, 8, t);
}
core::Event sync_at(Addr a, Cycles t = 0) {
  return core::Event::mem_ref(ExecMode::kUser, RefType::kSync, a, 8, t);
}

// ------------------------------------------------------------------ cache

TEST(Cache, MissThenHit) {
  Cache c("t", CacheConfig{1024, 2, 64});
  EXPECT_EQ(c.lookup(0x100), Mesi::kInvalid);
  c.insert(0x100, Mesi::kExclusive);
  EXPECT_EQ(c.lookup(0x100), Mesi::kExclusive);
  EXPECT_EQ(c.lookup(0x108), Mesi::kExclusive);  // same line
  EXPECT_EQ(c.lookup(0x140), Mesi::kInvalid);    // next line
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 2-way, 64B lines, 2 sets (256B total).
  Cache c("t", CacheConfig{256, 2, 64});
  // All in set 0: line addresses with bit 6 clear (stride 128).
  c.insert(0x000, Mesi::kExclusive);
  c.insert(0x100, Mesi::kExclusive);
  c.lookup(0x000);  // make 0x100 the LRU way
  const auto victim = c.insert(0x200, Mesi::kExclusive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->addr, 0x100u);
  EXPECT_EQ(c.probe(0x000), Mesi::kExclusive);
  EXPECT_EQ(c.probe(0x100), Mesi::kInvalid);
}

TEST(Cache, VictimReportsDirtyState) {
  Cache c("t", CacheConfig{128, 1, 64});  // direct-mapped, 2 sets
  c.insert(0x000, Mesi::kModified);
  const auto victim = c.insert(0x200, Mesi::kShared);  // same set 0
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->state, Mesi::kModified);
}

TEST(Cache, ProbeHasNoLruSideEffect) {
  Cache c("t", CacheConfig{256, 2, 64});
  c.insert(0x000, Mesi::kExclusive);
  c.insert(0x100, Mesi::kExclusive);
  c.probe(0x000);  // must NOT refresh 0x000
  const auto victim = c.insert(0x200, Mesi::kExclusive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->addr, 0x000u);
}

TEST(Cache, SetStateOnAbsentLineOnlyInvalidate) {
  Cache c("t", CacheConfig{256, 2, 64});
  c.set_state(0x40, Mesi::kInvalid);  // idempotent, fine
  EXPECT_THROW(c.set_state(0x40, Mesi::kModified), util::SimError);
}

TEST(Cache, InvalidateAllAndResidency) {
  Cache c("t", CacheConfig{1024, 4, 64});
  for (Addr a = 0; a < 512; a += 64) c.insert(a, Mesi::kShared);
  EXPECT_EQ(c.resident_lines(), 8u);
  c.invalidate_all();
  EXPECT_EQ(c.resident_lines(), 0u);
}

TEST(Cache, StatsCounted) {
  stats::StatsRegistry reg;
  Cache c("l1", CacheConfig{256, 2, 64}, &reg);
  c.lookup(0x0);
  c.insert(0x0, Mesi::kExclusive);
  c.lookup(0x0);
  EXPECT_EQ(reg.counter_value("l1.misses"), 1u);
  EXPECT_EQ(reg.counter_value("l1.hits"), 1u);
}

TEST(Cache, BadGeometryThrows) {
  EXPECT_THROW(Cache("t", CacheConfig{100, 3, 48}), util::SimError);
  EXPECT_THROW(Cache("t", CacheConfig{0, 1, 64}), util::SimError);
}

// -------------------------------------------------------------------- vm

TEST(Vm, PrivatePagesDifferAcrossProcesses) {
  Vm vm({.num_nodes = 1});
  const auto a = vm.translate(0, 0x1000, 0);
  const auto b = vm.translate(1, 0x1000, 0);
  EXPECT_TRUE(a.fault);
  EXPECT_TRUE(b.fault);
  EXPECT_NE(a.paddr, b.paddr);
  // Second access: no fault, same mapping.
  const auto a2 = vm.translate(0, 0x1008, 0);
  EXPECT_FALSE(a2.fault);
  EXPECT_EQ(a2.paddr, a.paddr + 8);
}

TEST(Vm, KernelAddressesSharedAcrossProcesses) {
  Vm vm({.num_nodes = 1});
  const auto a = vm.translate(0, kKernelBase + 0x5000, 0);
  const auto b = vm.translate(1, kKernelBase + 0x5000, 0);
  EXPECT_EQ(a.paddr, b.paddr);
  EXPECT_FALSE(b.fault);
}

TEST(Vm, SharedSegmentsMapToCommonPages) {
  Vm vm({.num_nodes = 1});
  const auto segid = vm.shmget(0xABC, 3 * kPageSize);
  const auto base0 = vm.shmat(0, segid);
  const auto base1 = vm.shmat(1, segid);
  EXPECT_EQ(base0, base1);  // segment-fixed virtual base
  const Addr va = static_cast<Addr>(base0) + kPageSize + 16;
  const auto a = vm.translate(0, va, 0);
  const auto b = vm.translate(1, va, 0);
  EXPECT_EQ(a.paddr, b.paddr);
}

TEST(Vm, ShmgetSameKeyReturnsSameSegment) {
  Vm vm({.num_nodes = 1});
  EXPECT_EQ(vm.shmget(1, kPageSize), vm.shmget(1, kPageSize));
  EXPECT_NE(vm.shmget(1, kPageSize), vm.shmget(2, kPageSize));
}

TEST(Vm, ShmdtUnmapsForOneProcessOnly) {
  Vm vm({.num_nodes = 1});
  const auto segid = vm.shmget(5, kPageSize);
  const auto base = vm.shmat(0, segid);
  vm.shmat(1, segid);
  const auto before = vm.translate(0, static_cast<Addr>(base), 0);
  EXPECT_EQ(vm.shmdt(0, segid), 0);
  // Proc 1 still maps it to the same page.
  const auto p1 = vm.translate(1, static_cast<Addr>(base), 0);
  EXPECT_EQ(p1.paddr, before.paddr);
  EXPECT_EQ(vm.shmdt(9, 999), -1);
}

TEST(Vm, ShmdtShootsDownTlb) {
  Vm vm({.num_nodes = 1});
  const auto segid = vm.shmget(7, 2 * kPageSize);
  const Addr base = static_cast<Addr>(vm.shmat(0, segid));
  vm.shmat(1, segid);
  // Warm proc 0's TLB for both segment pages, and proc 1's for the first.
  const auto t0 = vm.translate(0, base, 0);
  const auto t1 = vm.translate(0, base + kPageSize, 0);
  EXPECT_FALSE(vm.translate(0, base + 8, 0).fault);  // TLB hit
  vm.translate(1, base, 0);
  ASSERT_EQ(vm.shmdt(0, segid), 0);
  // The mapping is gone: re-touching must fault again (a stale TLB entry
  // would report a hit). The segment still exists, so the fault re-maps the
  // same common physical pages.
  const auto r0 = vm.translate(0, base, 0);
  const auto r1 = vm.translate(0, base + kPageSize, 0);
  EXPECT_TRUE(r0.fault);
  EXPECT_TRUE(r1.fault);
  EXPECT_EQ(r0.paddr, t0.paddr);
  EXPECT_EQ(r1.paddr, t1.paddr);
  // Proc 1's cached translations are untouched by proc 0's shootdown.
  EXPECT_FALSE(vm.translate(1, base, 0).fault);
}

TEST(Vm, SegmentReuseAfterDetachKeepsCommonPages) {
  Vm vm({.num_nodes = 1});
  const auto segid = vm.shmget(8, kPageSize);
  const Addr base = static_cast<Addr>(vm.shmat(0, segid));
  const auto first = vm.translate(0, base, 0);
  ASSERT_EQ(vm.shmdt(0, segid), 0);
  // Re-attach: already-allocated common pages are pre-populated, so the
  // first touch after reuse is a plain page-table hit on the same page.
  EXPECT_EQ(static_cast<Addr>(vm.shmat(0, segid)), base);
  const auto again = vm.translate(0, base, 0);
  EXPECT_FALSE(again.fault);
  EXPECT_EQ(again.paddr, first.paddr);
}

TEST(Vm, TlbFlushAllIsTransparent) {
  Vm vm({.num_nodes = 2, .placement = PlacementPolicy::kRoundRobin});
  std::vector<std::pair<Addr, PhysAddr>> warm;
  for (Addr a : {Addr{0x1000}, Addr{0x5008}, kKernelBase + 0x40})
    warm.emplace_back(a, vm.translate(0, a, 1).paddr);
  vm.tlb_flush_all();
  // Flushing loses no mappings: every translation refills from the page
  // table with the same result and no fault.
  for (const auto& [a, paddr] : warm) {
    const auto t = vm.translate(0, a, 1);
    EXPECT_FALSE(t.fault);
    EXPECT_EQ(t.paddr, paddr);
  }
}

TEST(Vm, FirstTouchHomesPageOnTouchingNode) {
  Vm vm({.num_nodes = 4, .placement = PlacementPolicy::kFirstTouch});
  const auto t = vm.translate(0, 0x1000, 2);
  EXPECT_EQ(t.home, 2);
  EXPECT_EQ(vm.home_of(t.paddr), 2);
  // Another process touching the same shared page keeps the original home.
  const auto segid = vm.shmget(1, kPageSize);
  const auto base = static_cast<Addr>(vm.shmat(0, segid));
  vm.shmat(1, segid);
  const auto first = vm.translate(0, base, 3);
  const auto second = vm.translate(1, base, 1);
  EXPECT_EQ(first.home, 3);
  EXPECT_EQ(second.home, 3);
}

TEST(Vm, RoundRobinSpreadsPages) {
  Vm vm({.num_nodes = 4, .placement = PlacementPolicy::kRoundRobin});
  for (int i = 0; i < 16; ++i)
    vm.translate(0, static_cast<Addr>(i) * kPageSize, 0);
  const auto per_node = vm.pages_per_node();
  for (const auto n : per_node) EXPECT_EQ(n, 4u);
}

TEST(Vm, BlockPlacementSplitsSegmentContiguously) {
  Vm vm({.num_nodes = 2, .placement = PlacementPolicy::kBlock});
  const auto segid = vm.shmget(1, 8 * kPageSize);
  const auto base = static_cast<Addr>(vm.shmat(0, segid));
  std::vector<NodeId> homes;
  for (int i = 0; i < 8; ++i)
    homes.push_back(vm.translate(0, base + static_cast<Addr>(i) * kPageSize, 0).home);
  EXPECT_EQ(homes, (std::vector<NodeId>{0, 0, 0, 0, 1, 1, 1, 1}));
}

TEST(Vm, PageFaultCounted) {
  stats::StatsRegistry reg;
  Vm vm({.num_nodes = 1}, &reg);
  vm.translate(0, 0x0, 0);
  vm.translate(0, 0x8, 0);
  vm.translate(0, kPageSize, 0);
  EXPECT_EQ(reg.counter_value("vm.page_faults"), 2u);
}

// ---------------------------------------------------------- simple machine

struct SimpleFixture {
  SimpleFixture(int cpus = 2, SimpleMachineConfig cfg = {})
      : vm({.num_nodes = 1}), machine(cfg, cpus, vm, &reg) {}
  stats::StatsRegistry reg;
  Vm vm;
  SimpleMachine machine;
};

TEST(SimpleMachine, HitAfterMiss) {
  SimpleFixture f;
  const Cycles miss = f.machine.access(0, 0, load_at(0x1000));
  const Cycles hit = f.machine.access(0, 0, load_at(0x1008, 100));
  EXPECT_GT(miss, hit);
  EXPECT_EQ(hit, SimpleMachineConfig{}.l1_hit);
}

TEST(SimpleMachine, FirstAccessChargesPageFault) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  const Cycles first = f.machine.access(0, 0, load_at(0x1000));
  EXPECT_GE(first, cfg.page_fault);
  EXPECT_EQ(f.reg.counter_value("machine.page_faults"), 1u);
}

TEST(SimpleMachine, StoreToSharedLineInvalidatesOthers) {
  SimpleFixture f;
  // Both CPUs read the same kernel line (shared across procs).
  const Addr a = kKernelBase;
  f.machine.access(0, 0, load_at(a));
  f.machine.access(1, 1, load_at(a, 100));
  f.machine.access(0, 0, store_at(a, 200));
  EXPECT_EQ(f.reg.counter_value("bus.invalidations"), 1u);
  // CPU1's next read misses again.
  const Cycles relook = f.machine.access(1, 1, load_at(a, 300));
  EXPECT_GT(relook, SimpleMachineConfig{}.l1_hit);
}

TEST(SimpleMachine, DirtyInterventionSuppliesLine) {
  SimpleFixture f;
  const Addr a = kKernelBase;
  f.machine.access(0, 0, store_at(a));       // cpu0 M
  f.machine.access(1, 1, load_at(a, 100));   // cpu1 reads: intervention
  EXPECT_EQ(f.reg.counter_value("bus.interventions"), 1u);
  // Both now shared.
  const Cycles h0 = f.machine.access(0, 0, load_at(a, 200));
  const Cycles h1 = f.machine.access(1, 1, load_at(a, 300));
  EXPECT_EQ(h0, SimpleMachineConfig{}.l1_hit);
  EXPECT_EQ(h1, SimpleMachineConfig{}.l1_hit);
}

TEST(SimpleMachine, ExclusiveUpgradesSilently) {
  SimpleFixture f;
  const Addr a = 0x4000;  // private page of proc 0
  f.machine.access(0, 0, load_at(a));  // E
  const std::uint64_t bus_before = f.reg.counter_value("bus.transactions");
  const Cycles w = f.machine.access(0, 0, store_at(a, 100));
  EXPECT_EQ(w, SimpleMachineConfig{}.l1_hit);  // no bus traffic
  EXPECT_EQ(f.reg.counter_value("bus.transactions"), bus_before);
}

TEST(SimpleMachine, SharedWriteUsesUpgradeTransaction) {
  SimpleFixture f;
  const Addr a = kKernelBase;
  f.machine.access(0, 0, load_at(a));
  f.machine.access(1, 1, load_at(a, 50));  // line now S in both
  const std::uint64_t bus_before = f.reg.counter_value("bus.transactions");
  f.machine.access(0, 0, store_at(a, 100));
  EXPECT_EQ(f.reg.counter_value("bus.transactions"), bus_before + 1);
}

TEST(SimpleMachine, SyncCostsExtra) {
  SimpleFixture f;
  f.machine.access(0, 0, load_at(0x100));
  const Cycles plain = f.machine.access(0, 0, store_at(0x100, 10));
  // Re-warm: line now M, so sync hits too.
  const Cycles sync = f.machine.access(0, 0, sync_at(0x100, 20));
  EXPECT_EQ(sync, plain + SimpleMachineConfig{}.sync_overhead);
}

TEST(SimpleMachine, BusContentionDelaysBackToBackMisses) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  // Warm the pages to exclude fault costs.
  f.machine.access(0, 0, load_at(kKernelBase));
  f.machine.access(1, 1, load_at(kKernelBase + 4096, 1));
  // Two simultaneous misses to distinct lines: the second waits for the bus.
  const Cycles l0 = f.machine.access(0, 0, load_at(kKernelBase + 64, 1000));
  const Cycles l1 = f.machine.access(1, 1, load_at(kKernelBase + 4096 + 64, 1000));
  EXPECT_GT(l1, l0);
}

TEST(SimpleMachine, SnoopFilterConsistentAfterEvictionAndReinsert) {
  SimpleMachineConfig cfg;
  cfg.l1 = CacheConfig{256, 1, 64};  // direct-mapped, 4 sets
  cfg.snoop_filter_min_cpus = 2;     // force the filter on at 2 CPUs
  SimpleFixture f(2, cfg);
  const Addr a = kKernelBase;        // set 0
  const Addr b = kKernelBase + 256;  // same set: inserting b evicts a
  f.machine.access(0, 0, load_at(a));
  f.machine.access(0, 0, load_at(b, 100));  // a evicted from cpu0
  // No cache holds `a` now, so cpu1's store must see zero sharers: a stale
  // presence bit for cpu0 would charge a phantom invalidation.
  const auto inv0 = f.reg.counter_value("bus.invalidations");
  f.machine.access(1, 1, store_at(a, 200));
  EXPECT_EQ(f.reg.counter_value("bus.invalidations"), inv0);
  // Re-insert in cpu0 via a dirty intervention, then a shared-write upgrade
  // from cpu1 must invalidate exactly the one re-inserted copy.
  f.machine.access(0, 0, load_at(a, 300));
  EXPECT_EQ(f.reg.counter_value("bus.interventions"), 1u);
  f.machine.access(1, 1, store_at(a, 400));
  EXPECT_EQ(f.reg.counter_value("bus.invalidations"), inv0 + 1);
  // And cpu0 really lost the line.
  EXPECT_EQ(f.machine.cache(0).probe(a), Mesi::kInvalid);
}

TEST(SimpleMachine, SnoopFilterMatchesLiteralSweep) {
  // The filter must be simulation-invisible: the same reference stream on a
  // filtered and an unfiltered machine yields identical latencies and
  // counters.
  SimpleMachineConfig with_filter;
  with_filter.l1 = CacheConfig{512, 2, 64};  // small: heavy eviction traffic
  with_filter.snoop_filter_min_cpus = 2;
  SimpleMachineConfig without_filter = with_filter;
  without_filter.snoop_filter_min_cpus = 100;  // 4 CPUs < 100: literal sweep
  SimpleFixture fa(4, with_filter);
  SimpleFixture fb(4, without_filter);
  std::uint64_t x = 12345;
  for (int i = 0; i < 4'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const Addr a = kKernelBase + (x >> 33) % 4096;
    const CpuId cpu = static_cast<CpuId>(i % 4);
    const auto t = static_cast<Cycles>(10 * i);
    const auto ev = (x >> 13) % 3 == 0   ? store_at(a, t)
                    : (x >> 13) % 3 == 1 ? load_at(a, t)
                                         : sync_at(a, t);
    ASSERT_EQ(fa.machine.access(cpu, cpu, ev), fb.machine.access(cpu, cpu, ev))
        << "latency diverged at op " << i;
  }
  for (const char* ctr : {"bus.transactions", "bus.invalidations",
                          "bus.interventions", "machine.page_faults"})
    EXPECT_EQ(fa.reg.counter_value(ctr), fb.reg.counter_value(ctr)) << ctr;
}

// ------------------------------------------------------------ numa machine

struct NumaFixture {
  NumaFixture(int cpus = 4, int nodes = 2, NumaMachineConfig cfg = {})
      : vm({.num_nodes = nodes, .placement = PlacementPolicy::kFirstTouch}),
        machine(cfg, cpus, nodes, vm, &reg) {}
  stats::StatsRegistry reg;
  Vm vm;
  NumaMachine machine;
};

TEST(NumaMachine, L1AndL2HitLatencies) {
  NumaMachineConfig cfg;
  NumaFixture f(4, 2, cfg);
  f.machine.access(0, 0, load_at(0x1000));            // cold miss
  const Cycles l1hit = f.machine.access(0, 0, load_at(0x1008, 500));
  EXPECT_EQ(l1hit, cfg.l1_hit);
}

TEST(NumaMachine, LocalVsRemoteLatency) {
  NumaMachineConfig cfg;
  NumaFixture f(4, 2, cfg);
  // A kernel page first-touched by cpu0 homes on node0.
  const Addr ka = kKernelBase + 0x2000;
  f.machine.access(0, 0, load_at(ka, 0));
  // Long after warm-up queueing has drained: cpu2 (node1) misses on a fresh
  // line of that node0-homed page (remote), then cpu0 misses on another
  // fresh line of the same page (local).
  const Cycles remote = f.machine.access(2, 2, load_at(ka + 128, 100'000));
  const Cycles local = f.machine.access(0, 0, load_at(ka + 256, 200'000));
  EXPECT_GT(remote, local);
  EXPECT_GT(f.reg.counter_value("numa.remote_accesses"), 0u);
  EXPECT_GT(f.reg.counter_value("numa.local_accesses"), 0u);
}

TEST(NumaMachine, DirtyForwardingAcrossNodes) {
  NumaFixture f;
  const Addr ka = kKernelBase;
  f.machine.access(0, 0, store_at(ka));         // cpu0 owns dirty
  f.machine.access(2, 2, load_at(ka, 1000));    // cpu2 (node1) reads
  EXPECT_EQ(f.reg.counter_value("numa.dir_forwards"), 1u);
  // Now shared: cpu0 writing again must invalidate cpu2.
  f.machine.access(0, 0, store_at(ka, 2000));
  EXPECT_GE(f.reg.counter_value("numa.dir_invalidations"), 1u);
}

TEST(NumaMachine, WriteInvalidatesAllSharers) {
  NumaFixture f;
  const Addr ka = kKernelBase + 0x100;
  for (CpuId c = 0; c < 4; ++c)
    f.machine.access(c, c, load_at(ka, static_cast<Cycles>(100 * (c + 1))));
  f.machine.access(0, 0, store_at(ka, 1000));
  EXPECT_GE(f.reg.counter_value("numa.dir_invalidations"), 3u);
  // Each other CPU must re-miss.
  const Cycles re = f.machine.access(3, 3, load_at(ka, 2000));
  EXPECT_GT(re, NumaMachineConfig{}.l1_hit + NumaMachineConfig{}.l2_hit);
}

TEST(NumaMachine, L2HitAfterL1Eviction) {
  NumaMachineConfig cfg;
  cfg.l1 = CacheConfig{256, 1, 64};  // tiny L1: 4 sets
  NumaFixture f(4, 2, cfg);
  const Addr base = 0x100000;
  f.machine.access(0, 0, load_at(base));  // fill line A
  // Evict A from L1 by filling the same set (stride = 4 sets * 64 = 256).
  f.machine.access(0, 0, load_at(base + 256, 100));
  const Cycles l2hit = f.machine.access(0, 0, load_at(base, 200));
  EXPECT_EQ(l2hit, cfg.l1_hit + cfg.l2_hit);
}

TEST(NumaMachine, DeterministicLatencySequence) {
  auto run = [] {
    NumaFixture f;
    std::vector<Cycles> seq;
    for (int i = 0; i < 200; ++i) {
      const CpuId c = i % 4;
      const Addr a = kKernelBase + static_cast<Addr>((i * 37) % 1024) * 64;
      seq.push_back(f.machine.access(c, c, (i % 3 == 0 ? store_at(a, 10 * i)
                                                       : load_at(a, 10 * i))));
    }
    return seq;
  };
  EXPECT_EQ(run(), run());
}

TEST(NumaMachine, EvictionNotifiesDirectoryAllowingCleanRefetch) {
  NumaMachineConfig cfg;
  cfg.l1 = CacheConfig{128, 1, 64};
  cfg.l2 = CacheConfig{256, 1, 64};  // tiny L2 to force evictions
  NumaFixture f(2, 2, cfg);
  const Addr base = 0x200000;
  // Touch many lines mapping to the same L2 set to churn evictions.
  for (int i = 0; i < 16; ++i)
    f.machine.access(0, 0, store_at(base + static_cast<Addr>(i) * 256,
                                    static_cast<Cycles>(100 * i)));
  // After evictions, another CPU reading one of those lines must get it
  // from memory without a stale-owner forward hanging things.
  const Cycles lat = f.machine.access(1, 1, load_at(base, 10000));
  EXPECT_GT(lat, 0u);
  EXPECT_GT(f.reg.counter_value("l2.cpu0.evictions"), 0u);
}

TEST(NumaMachine, SharerBitmaskLimit) {
  NumaMachineConfig cfg;
  Vm vm({.num_nodes = 1});
  stats::StatsRegistry reg;
  EXPECT_THROW(NumaMachine(cfg, 128, 1, vm, &reg), util::SimError);
}

// ---------------------------------------------------- L1 reference filter

/// Build the reply the backend would send after `cpu`'s latest access:
/// current coherence generation plus the (reset-on-read) teach slot.
core::Reply teach_reply(core::MemorySystem& m, CpuId cpu) {
  core::Reply r;
  r.cpu = cpu;
  r.l1_gen = m.l1_filter_gen(cpu);
  r.teach = m.take_l1_teach(cpu);
  return r;
}

TEST(L1Filter, TeachRecordedOnlyWhenEnabledAndDeliveredOnce) {
  SimpleFixture f;
  f.machine.access(0, 0, load_at(0x1000));
  // Disabled (default): no teach is ever recorded.
  EXPECT_EQ(f.machine.take_l1_teach(0).line, core::L1Teach::kNone);
  f.machine.set_l1_filter(true);
  f.machine.access(0, 0, load_at(0x1040, 100));
  const core::L1Teach t = f.machine.take_l1_teach(0);
  EXPECT_NE(t.line, core::L1Teach::kNone);
  EXPECT_NE(t.state, 0);
  // The slot resets on read: a teach is delivered at most once, so a stale
  // copy can never ride a later (yield-only) reply.
  EXPECT_EQ(f.machine.take_l1_teach(0).line, core::L1Teach::kNone);
}

TEST(L1Filter, AbsorbRulesOnTaughtStates) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  f.machine.set_l1_filter(true);
  L1Filter filt(cfg.l1_hit, cfg.l1.line_size);
  const Addr priv = 0x4000;  // private page of proc 0 -> E on first load
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, priv), core::RefFilter::kNoAbsorb);
  f.machine.access(0, 0, load_at(priv));
  filt.on_reply(teach_reply(f.machine, 0));
  EXPECT_EQ(filt.mirror_cpu(), 0);
  EXPECT_EQ(filt.resident_lines(), 1u);
  // Load hits E; store absorbs with the silent E->M upgrade the literal
  // model performs when the reference replays.
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, priv), cfg.l1_hit);
  EXPECT_EQ(filt.try_absorb(RefType::kStore, priv), cfg.l1_hit);
  EXPECT_EQ(f.machine.access(0, 0, store_at(priv, 100)), cfg.l1_hit);
  filt.on_reply(teach_reply(f.machine, 0));
  // Now M: both absorb; sync never does.
  EXPECT_EQ(filt.try_absorb(RefType::kStore, priv), cfg.l1_hit);
  EXPECT_EQ(filt.try_absorb(RefType::kSync, priv), core::RefFilter::kNoAbsorb);
  // Unknown page: never absorbed.
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, 0x999000),
            core::RefFilter::kNoAbsorb);
}

TEST(L1Filter, StoreOnSharedNeverAbsorbed) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  f.machine.set_l1_filter(true);
  L1Filter filt(cfg.l1_hit, cfg.l1.line_size);
  const Addr a = kKernelBase;
  f.machine.access(0, 0, load_at(a));           // cpu0 E
  f.machine.access(1, 1, load_at(a, 100));      // downgrade: both S, gen0 bumps
  f.machine.access(0, 0, load_at(a, 200));      // cpu0 hits S
  filt.on_reply(teach_reply(f.machine, 0));     // teaches the line as S
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, a), cfg.l1_hit);
  // A store on S needs a bus upgrade transaction: must cross the port.
  EXPECT_EQ(filt.try_absorb(RefType::kStore, a), core::RefFilter::kNoAbsorb);
}

TEST(L1Filter, RemoteInvalidationDropsMirror) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  f.machine.set_l1_filter(true);
  L1Filter filt(cfg.l1_hit, cfg.l1.line_size);
  const Addr a = kKernelBase;
  f.machine.access(0, 0, load_at(a));
  filt.on_reply(teach_reply(f.machine, 0));
  ASSERT_EQ(filt.try_absorb(RefType::kLoad, a), cfg.l1_hit);
  // cpu1 writes the line: cpu0's copy is invalidated and its generation
  // bumps, so the very next reply (teach or not) voids every proof.
  f.machine.access(1, 1, store_at(a, 100));
  filt.on_reply(teach_reply(f.machine, 0));
  EXPECT_EQ(filt.resident_lines(), 0u);
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, a), core::RefFilter::kNoAbsorb);
}

TEST(L1Filter, TlbShootdownVoidsProofs) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  f.machine.set_l1_filter(true);
  L1Filter filt(cfg.l1_hit, cfg.l1.line_size);
  f.machine.access(0, 0, load_at(0x4000));
  filt.on_reply(teach_reply(f.machine, 0));
  ASSERT_EQ(filt.try_absorb(RefType::kLoad, 0x4000), cfg.l1_hit);
  // The shootdown epoch folds into every CPU's generation: a mapping the
  // mirror proved may be gone, so all proofs drop.
  f.vm.tlb_flush_all();
  filt.on_reply(teach_reply(f.machine, 0));
  EXPECT_EQ(filt.resident_lines(), 0u);
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, 0x4000),
            core::RefFilter::kNoAbsorb);
}

TEST(L1Filter, ContextSwitchDropsMirror) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  f.machine.set_l1_filter(true);
  L1Filter filt(cfg.l1_hit, cfg.l1.line_size);
  f.machine.access(0, 0, load_at(0x4000));
  filt.on_reply(teach_reply(f.machine, 0));
  ASSERT_EQ(filt.resident_lines(), 1u);
  // The CPU switches to another process: even if our process later comes
  // back to the same CPU, the generation moved and the mirror must drop.
  f.machine.on_context_switch(0, 0, 1);
  filt.on_reply(teach_reply(f.machine, 0));
  EXPECT_EQ(filt.resident_lines(), 0u);
}

TEST(L1Filter, StaleTeachFromDeferredReplyIsRejected) {
  SimpleMachineConfig cfg;
  SimpleFixture f(2, cfg);
  f.machine.set_l1_filter(true);
  L1Filter filt(cfg.l1_hit, cfg.l1.line_size);
  const Addr a = kKernelBase;
  f.machine.access(0, 0, load_at(a));
  // The teach is recorded, but before the (deferred) reply reaches the
  // frontend cpu1 steals the line. The reply carries the *current* gen with
  // the stale teach; applying it would poison the mirror.
  core::Reply r;
  r.cpu = 0;
  r.teach = f.machine.take_l1_teach(0);
  f.machine.access(1, 1, store_at(a, 50));  // bumps gen0, invalidates cpu0
  r.l1_gen = f.machine.l1_filter_gen(0);
  filt.on_reply(r);
  EXPECT_EQ(filt.resident_lines(), 0u);
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, a), core::RefFilter::kNoAbsorb);
}

TEST(FlatFilter, AbsorbsEverythingAtFixedLatency) {
  FlatFilter filt(25);
  EXPECT_EQ(filt.try_absorb(RefType::kLoad, 0x1000), 25u);
  EXPECT_EQ(filt.try_absorb(RefType::kStore, 0xdeadbeef), 25u);
  EXPECT_EQ(filt.try_absorb(RefType::kSync, 0x0), 25u);
}

/// Lockstep property harness: one L1Filter per process with one-reference
/// batches — every reference replays through the literal machine exactly as
/// absorbed references do in production, and the reply carries the CPU's
/// generation plus the teach for that reference. While the CPU's generation
/// matches the filter's (no remote action since our last reply), an absorb
/// prediction must equal the literal latency exactly; a stale proof may
/// only ever *under*-predict. A missed gen bump or an over-taught mirror
/// anywhere in the protocol shows up as an exact-mode divergence here.
template <typename Machine>
std::uint64_t lockstep_fuzz(Machine& machine, Vm& vm, int cpus, Cycles hit,
                            std::uint32_t line_size, int iters) {
  machine.set_l1_filter(true);
  std::vector<std::unique_ptr<L1Filter>> filt;
  std::vector<CpuId> cpu_of;
  for (int p = 0; p < cpus; ++p) {
    filt.push_back(std::make_unique<L1Filter>(hit, line_size));
    cpu_of.push_back(static_cast<CpuId>(p));
  }
  std::uint64_t absorbed = 0;
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  const auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 23;
  };
  for (int i = 0; i < iters; ++i) {
    const auto p = static_cast<ProcId>(rnd() % static_cast<std::uint64_t>(cpus));
    // Occasionally swap two processes across CPUs. A migrated process
    // always receives a (gen-only, teach-less) reschedule reply before it
    // resumes — the CPU/generation change in that reply drops its mirror.
    if (rnd() % 97 == 0) {
      const auto q =
          static_cast<ProcId>(rnd() % static_cast<std::uint64_t>(cpus));
      if (q != p) {
        std::swap(cpu_of[static_cast<std::size_t>(p)],
                  cpu_of[static_cast<std::size_t>(q)]);
        machine.on_context_switch(cpu_of[static_cast<std::size_t>(p)], q, p);
        machine.on_context_switch(cpu_of[static_cast<std::size_t>(q)], p, q);
        for (const ProcId pr : {p, q}) {
          core::Reply resched;
          resched.cpu = cpu_of[static_cast<std::size_t>(pr)];
          resched.l1_gen = machine.l1_filter_gen(resched.cpu);
          filt[static_cast<std::size_t>(pr)]->on_reply(resched);
        }
        continue;
      }
    }
    // Occasionally shoot down every TLB: the epoch folds into each gen.
    if (rnd() % 499 == 0) vm.tlb_flush_all();
    const CpuId c = cpu_of[static_cast<std::size_t>(p)];
    const std::uint64_t r = rnd();
    // Hot shared kernel lines (coherence churn) vs a private page per proc
    // (absorbable E/M hits), with a sprinkle of syncs.
    const Addr a = (r % 3 == 0)
                       ? kKernelBase + (r >> 8) % 2048
                       : 0x10000 * static_cast<Addr>(p + 1) + (r >> 8) % 1024;
    const RefType ty = (r % 11 == 0)  ? RefType::kSync
                       : (r % 2 == 0) ? RefType::kLoad
                                      : RefType::kStore;
    const auto t = static_cast<Cycles>(10 * i);
    const core::Event ev = core::Event::mem_ref(ExecMode::kUser, ty, a, 8, t);
    // Generation before the access: if it still matches the filter's, every
    // proof in the mirror is current and the prediction must be exact.
    const std::uint64_t gen_pre = machine.l1_filter_gen(c);
    const Cycles predicted = filt[static_cast<std::size_t>(p)]->try_absorb(ty, a);
    const Cycles literal = machine.access(c, p, ev);
    if (ty == RefType::kSync) {
      EXPECT_EQ(predicted, core::RefFilter::kNoAbsorb) << "sync absorbed";
    }
    if (predicted != core::RefFilter::kNoAbsorb) {
      EXPECT_EQ(predicted, hit);
      // A stale proof (another CPU invalidated since our last reply; the
      // bump reaches us with the very next reply) may under-predict — the
      // flush reply's resume_time corrects the clock — but a prediction
      // must never exceed the literal charge.
      EXPECT_GE(literal, predicted)
          << "op " << i << " proc " << p << " cpu " << c << " addr "
          << std::hex << a;
      if (gen_pre == filt[static_cast<std::size_t>(p)]->generation()) {
        EXPECT_EQ(predicted, literal)
            << "op " << i << " proc " << p << " cpu " << c << " addr "
            << std::hex << a;
        ++absorbed;
      }
    }
    filt[static_cast<std::size_t>(p)]->on_reply(teach_reply(machine, c));
  }
  return absorbed;
}

TEST(L1Filter, LockstepMatchesSimpleMachineWithSnoopFilter) {
  SimpleMachineConfig cfg;
  cfg.l1 = CacheConfig{1024, 2, 64};  // small: steady eviction traffic
  cfg.snoop_filter_min_cpus = 8;      // engaged at 8 CPUs
  SimpleFixture f(8, cfg);
  const std::uint64_t absorbed =
      lockstep_fuzz(f.machine, f.vm, 8, cfg.l1_hit, cfg.l1.line_size, 20'000);
  // The suite must actually exercise the exact absorb path, not just
  // reject (stale-window absorbs are exercised on top of these).
  EXPECT_GT(absorbed, 1'000u);
}

TEST(L1Filter, LockstepMatchesSimpleMachineLiteralSweep) {
  SimpleMachineConfig cfg;
  cfg.l1 = CacheConfig{1024, 2, 64};
  cfg.snoop_filter_min_cpus = 100;  // 4 CPUs < 100: literal snoop sweep
  SimpleFixture f(4, cfg);
  const std::uint64_t absorbed =
      lockstep_fuzz(f.machine, f.vm, 4, cfg.l1_hit, cfg.l1.line_size, 20'000);
  EXPECT_GT(absorbed, 1'000u);
}

TEST(L1Filter, LockstepMatchesNumaMachine) {
  NumaMachineConfig cfg;
  cfg.l1 = CacheConfig{512, 1, 64};   // tiny L1: victim churn
  cfg.l2 = CacheConfig{2048, 2, 64};  // small L2: inclusive-eviction drops
  NumaFixture f(4, 2, cfg);
  // The NUMA machine indexes both cache levels by the L2 line address, so
  // the mirror must mask with the L2 line size.
  const std::uint64_t absorbed =
      lockstep_fuzz(f.machine, f.vm, 4, cfg.l1_hit, cfg.l2.line_size, 20'000);
  EXPECT_GT(absorbed, 500u);
}

TEST(FlatMemory, FixedLatencyAndCount) {
  stats::StatsRegistry reg;
  FlatMemory flat(25, nullptr, &reg);
  EXPECT_EQ(flat.access(0, 0, load_at(0x1)), 25u);
  EXPECT_EQ(flat.access(1, 3, store_at(0x2)), 25u);
  // The tally is buffered for concurrent access; flush publishes it.
  flat.flush_stats();
  EXPECT_EQ(reg.counter_value("flat.refs"), 2u);
  // A vm-less flat model is safe to call from shard workers; with a Vm
  // (shared page tables, fault ordering) it is not.
  EXPECT_TRUE(flat.concurrent_access_safe());
  Vm vm({.num_nodes = 1});
  FlatMemory flat_vm(25, &vm, &reg);
  EXPECT_FALSE(flat_vm.concurrent_access_safe());
}

}  // namespace
}  // namespace compass::mem
