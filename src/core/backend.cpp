#include "core/backend.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>

#include "core/ckpt_hook.h"
#include "util/check.h"
#include "util/state_io.h"

namespace compass::core {

Backend::Backend(const SimConfig& cfg, Communicator& comm, Hooks hooks,
                 stats::StatsRegistry* registry)
    : cfg_(cfg),
      comm_(comm),
      hooks_(hooks),
      proc_sched_(cfg),
      breakdown_(cfg.num_cpus),
      stats_(registry != nullptr ? registry : &own_stats_),
      cpus_(static_cast<std::size_t>(cfg.num_cpus)) {
  cfg_.validate();
  COMPASS_CHECK_MSG(hooks_.memsys != nullptr, "Backend requires a MemorySystem");
  COMPASS_CHECK_MSG(comm.num_cpus() == cfg.num_cpus,
                    "Communicator/SimConfig CPU count mismatch");
  ctr_mem_refs_ = &stats_->counter("backend.mem_refs");
  ctr_batches_ = &stats_->counter("backend.batches");
  // Install the configured spin thresholds before any port exists (ports are
  // created by add_process, which always runs after this constructor).
  comm_.set_spin_policies(cfg_.frontend_spin_policy(), cfg_.backend_spin_policy());
#ifndef NDEBUG
  laneb_lockstep_ = true;
#endif
  if (const char* env = std::getenv("COMPASS_LANE_B_LOCKSTEP"); env != nullptr)
    laneb_lockstep_ = env[0] != '0';
  comm_.set_stall_handler([this](std::span<const ProcId> missing) {
    std::ostringstream os;
    os << "COMPASS backend stalled waiting for frontends to post:";
    for (const ProcId p : missing) os << ' ' << p << " (" << info(p).name << ")";
    os << '\n' << dump_states();
    std::fputs(os.str().c_str(), stderr);
  });
}

ProcId Backend::register_proc(const std::string& name, TraceSink::ProcKind kind) {
  const auto id = static_cast<ProcId>(procs_.size());
  procs_.push_back(ProcInfo{.name = name});
  comm_.create_port(id);
  running_dirty_ = true;
  if (hooks_.trace != nullptr) hooks_.trace->on_add_proc(id, name, kind);
  return id;
}

ProcId Backend::add_process(const std::string& name) {
  return register_proc(name, TraceSink::ProcKind::kProcess);
}

ProcId Backend::add_bottom_half(const std::string& name) {
  const ProcId id = register_proc(name, TraceSink::ProcKind::kBottomHalf);
  procs_.back().is_bottom_half = true;
  procs_.back().state = RunState::kParked;
  return id;
}

ProcId Backend::add_daemon(const std::string& name) {
  const ProcId id = register_proc(name, TraceSink::ProcKind::kDaemon);
  procs_.back().is_daemon = true;
  return id;
}

void Backend::init_channel_permits(WaitChannel channel, std::uint64_t permits) {
  if (permits > 0) {
    permits_[channel] += permits;
    if (hooks_.trace != nullptr) hooks_.trace->on_channel_seed(channel, permits);
  }
}

Backend::ProcInfo& Backend::info(ProcId proc) {
  COMPASS_CHECK_MSG(proc >= 0 && static_cast<std::size_t>(proc) < procs_.size(),
                    "bad proc id " << proc);
  return procs_[static_cast<std::size_t>(proc)];
}

const Backend::ProcInfo& Backend::info(ProcId proc) const {
  COMPASS_CHECK_MSG(proc >= 0 && static_cast<std::size_t>(proc) < procs_.size(),
                    "bad proc id " << proc);
  return procs_[static_cast<std::size_t>(proc)];
}

RunState Backend::state_of(ProcId proc) const { return info(proc).state; }
ExecMode Backend::mode_of(ProcId proc) const { return info(proc).mode; }

void Backend::charge(CpuId cpu, ExecMode mode, Cycles cycles) {
  if (cycles == 0) return;
  breakdown_.charge(cpu, mode, cycles);
}

void Backend::account_idle_until(CpuId cpu, Cycles when) {
  CpuInfo& ci = cpus_[static_cast<std::size_t>(cpu)];
  if (when > ci.busy_until) {
    charge(cpu, ExecMode::kIdle, when - ci.busy_until);
    ci.busy_until = when;
  }
}

bool Backend::all_apps_exited() const {
  // Kernel daemons (netd) and bottom halves never exit; the simulation ends
  // when every ordinary application process has.
  return std::all_of(procs_.begin(), procs_.end(), [](const ProcInfo& p) {
    return p.is_bottom_half || p.is_daemon || p.state == RunState::kExited;
  });
}

bool Backend::interrupt_pending_for(ProcId proc) const {
  const ProcInfo& pi = info(proc);
  if (pi.cpu == kNoCpu) return false;
  if (pi.mode == ExecMode::kInterrupt) return false;  // handler loop drains
  // Self-serve warp: the frontends' pops replay from their shards without
  // draining the live queue, so the hook reconstructs the create run's view.
  if (hooks_.ckpt != nullptr && hooks_.ckpt->self_serve())
    return hooks_.ckpt->warp_interrupt_pending(pi.cpu);
  return comm_.cpu_state(pi.cpu).deliverable();
}

void Backend::rebuild_running() {
  running_.clear();
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const RunState s = procs_[i].state;
    // kStarting processes are awaited too: the simulation begins only once
    // every registered frontend has announced itself, which keeps startup
    // interleaving deterministic.
    if (s == RunState::kRunning || s == RunState::kStarting)
      running_.push_back(static_cast<ProcId>(i));
  }
  // Re-declare the active set to the pending-min index so wait_all_pending
  // and pick_min answer from the index instead of scanning ports.
  comm_.set_running(running_);
  running_dirty_ = false;
}

void Backend::schedule_ready_procs() {
  for (const auto& [proc, cpu] : proc_sched_.schedule()) {
    ProcInfo& pi = info(proc);
    CpuInfo& ci = cpus_[static_cast<std::size_t>(cpu)];
    EventPort& port = comm_.port(proc);

    const Cycles switch_begin = std::max(now_, ci.busy_until);
    account_idle_until(cpu, switch_begin);
    charge(cpu, ExecMode::kKernel, cfg_.context_switch_cycles);
    const Cycles start = switch_begin + cfg_.context_switch_cycles;
    ci.busy_until = start;
    ci.slice_start = start;
    // Effective quantum for this slice; the perturbation hook (fault plane)
    // may jitter it. Drawn here, on the backend thread, in dispatch order —
    // so a seeded perturber is deterministic and replay-identical.
    ci.quantum = hooks_.sched_perturb != nullptr
                     ? hooks_.sched_perturb->slice_quantum(proc, cpu, start,
                                                           cfg_.quantum)
                     : cfg_.quantum;

    hooks_.memsys->on_context_switch(cpu, kNoProc, proc);
    stats_->counter("backend.context_switches").inc();

    pi.cpu = cpu;
    pi.state = RunState::kRunning;
    if (pi.reply_deferred) {
      pi.reply_deferred = false;
      pi.last_time = start;
      Reply r;
      r.resume_time = start;
      r.retval = pi.wake_retval;
      r.cpu = cpu;
      r.interrupt_pending = interrupt_pending_for(proc);
      // Deferred replies carry the generation only (no teach): the slot may
      // describe an access from a batch processed long before this wakeup.
      if (cfg_.l1_filter) r.l1_gen = hooks_.memsys->l1_filter_gen(cpu);
      if (hooks_.ckpt != nullptr) {
        if (hooks_.ckpt->warping())
          hooks_.ckpt->warp_deferred_reply(proc, r);
        else
          hooks_.ckpt->on_deferred_reply(proc, r);
      }
      pi.wake_retval = 0;
      port.reply(r);
    } else if (hooks_.ckpt != nullptr && hooks_.ckpt->self_serve()) {
      // Self-serve warp: the preempted batch may never be posted (data
      // batches are answered frontend-locally), so the recorded spine
      // supplies the base the create run computed here. It is applied to
      // the real port at the batch's pick — or folded into the traced
      // copy when the batch never crosses.
      const Cycles base = hooks_.ckpt->warp_rebase(proc);
      COMPASS_CHECK_MSG(base >= start, "recorded rebase base " << base
                                           << " precedes slice start " << start);
      warp_rebase_stash_[proc] = base;
      pi.last_time = base;
    } else {
      // Preempted with its batch still pending: rebase it to the new start.
      COMPASS_CHECK_MSG(port.has_pending(),
                        "scheduled proc " << proc
                                          << " has neither deferred reply nor batch");
      const Cycles base = std::max(start, port.pending_time());
      port.rebase_pending(base);
      pi.last_time = base;
      if (hooks_.ckpt != nullptr) hooks_.ckpt->on_rebase(proc, base);
    }
    running_dirty_ = true;
  }
}

void Backend::run_one_task() {
  auto [when, task] = sched_queue_.pop_next();
  now_ = std::max(now_, when);
  stats_->counter("backend.tasks").inc();
  task();
}

bool Backend::maybe_preempt(ProcId proc, Cycles event_time) {
  if (!cfg_.preemptive) return false;
  ProcInfo& pi = info(proc);
  if (pi.cpu == kNoCpu || pi.is_bottom_half) return false;
  if (pi.mode != ExecMode::kUser) return false;  // never preempt kernel paths
  if (!proc_sched_.has_ready()) return false;
  CpuInfo& ci = cpus_[static_cast<std::size_t>(pi.cpu)];
  const Cycles quantum = ci.quantum != 0 ? ci.quantum : cfg_.quantum;
  if (event_time < ci.slice_start || event_time - ci.slice_start < quantum)
    return false;

  // Record the preemption before any mutation: pi.last_time is still the
  // time base the frontend stamped the pending batch against, which the
  // trace needs to reconstruct the original post.
  if (hooks_.trace != nullptr)
    hooks_.trace->on_preempt(proc, pi.last_time, event_time);

  // Charge the compute the process did up to its (unprocessed) event, then
  // hand the CPU over; the pending batch is rebased when it is rescheduled.
  now_ = std::max(now_, event_time);
  if (event_time > pi.last_time) {
    charge(pi.cpu, pi.mode, event_time - pi.last_time);
    pi.last_time = event_time;
  }
  ci.busy_until = std::max(ci.busy_until, event_time);
  const CpuId cpu = pi.cpu;
  proc_sched_.release_cpu(proc);
  pi.cpu = kNoCpu;
  pi.state = RunState::kReady;
  proc_sched_.add_ready(proc);
  stats_->counter("backend.preemptions").inc();
  running_dirty_ = true;
  maybe_dispatch_idle_irq(cpu);
  return true;
}

void Backend::run() {
  const int workers = cfg_.effective_backend_workers();
  try {
    // W lanes = coordinator + (W-1) shard workers, so W=1 is the plain
    // serial loop with zero new machinery on the hot path.
    if (workers > 1)
      run_loop_windowed(workers - 1);
    else
      run_loop();
  } catch (...) {
    // Unwind every frontend thread before propagating so callers can join.
    // (The windowed loop's shard pool already joined during unwinding —
    // workers must never race the port-closing aborts below.)
    comm_.close_all_ports();
    throw;
  }
  // Publish model-internal tallies for every worker count, keeping counter
  // values bit-identical between serial and sharded runs.
  hooks_.memsys->flush_stats();
  // Normal completion: a daemon or bottom half may have a posted batch the
  // loop never consumed. Record it before closing: without it, a replayed
  // daemon would run out of script while the backend still counts it as
  // running-and-pending, and wait_all_pending would hang.
  if (hooks_.trace != nullptr) {
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      const auto proc = static_cast<ProcId>(i);
      EventPort& port = comm_.port(proc);
      if (!port.has_pending()) continue;
      hooks_.trace->on_batch(proc, info(proc).last_time, port.take_batch());
    }
  }
  // Daemons and bottom halves may still be blocked on their ports; closing
  // lets their host threads unwind cleanly.
  comm_.close_all_ports();
}

void Backend::run_loop() {
  HostThrottle::Hold hold(comm_.throttle());
  while (true) {
    schedule_ready_procs();
    if (all_apps_exited()) break;
    if (running_dirty_) rebuild_running();
    if (running_.empty()) {
      if (sched_queue_.empty()) {
        throw util::SimError("COMPASS deadlock: no runnable process and no "
                             "scheduled task\n" +
                             dump_states());
      }
      run_one_task();
      continue;
    }
    ProcId proc = kNoProc;
    Cycles t = 0;
    bool is_data = false;
    const bool from_spine = next_dispatch(proc, t, is_data);
    // Quiescent dispatch point: every running frontend is parked in a port
    // wait with its batch posted, no window is in flight. The checkpoint
    // hook snapshots (create) or installs (restore) here; true means stop.
    if (hooks_.ckpt != nullptr && hooks_.ckpt->at_dispatch_point(*this, t))
      break;
    // Spine tap AFTER the dispatch-point trigger: the quiescent pick itself
    // is never part of its own snapshot's spine (the restore walk stops
    // exactly there), but re-observations after tasks are recorded — the
    // walk replays the same loop and consumes one record per observation.
    if (hooks_.ckpt != nullptr) hooks_.ckpt->on_pick(proc, t, is_data);
    if (sched_queue_.next_time() <= t) {
      // Device completions and timer ticks scheduled before the earliest
      // frontend event run first; they may change run states, so loop.
      run_one_task();
      continue;
    }
    if (from_spine) {
      if (is_data) {
        warp_self_serve_data(proc, t);
        continue;
      }
      warp_await_control(proc);
    }
    dispatch(proc);
  }
  // Close out idle accounting so per-CPU totals cover the same interval.
  for (CpuId c = 0; c < cfg_.num_cpus; ++c) account_idle_until(c, now_);
}

void Backend::dispatch(ProcId proc) {
  EventPort& port = comm_.port(proc);
  if (maybe_preempt(proc, port.pending_time())) return;

  const std::span<const Event> batch = port.take_batch();
  COMPASS_CHECK(!batch.empty());
  // Record at the dispatch point: the trace file is then the exact total
  // order the backend consumed (including OS-server kernel-mode events),
  // not the racy per-thread post order.
  if (hooks_.trace != nullptr)
    hooks_.trace->on_batch(proc, info(proc).last_time, batch);
  const bool is_control = batch.front().kind != EventKind::kMemRef &&
                          batch.front().kind != EventKind::kYield;
  if (is_control) {
    COMPASS_CHECK_MSG(batch.size() == 1,
                      "control events must be posted alone (proc " << proc << ")");
    // Assign the post its slot in the warp sequence space (shared with data
    // replies): a self-serve restore paces the reposting frontend against
    // this very consumption order.
    if (hooks_.ckpt != nullptr) hooks_.ckpt->on_control_taken(proc);
    handle_control(proc, batch.front(), port);
    return;
  }

  if (hooks_.ckpt != nullptr) {
    if (hooks_.ckpt->warping()) {
      // Restore warp: skip the memory model and feed the model-dependent
      // reply fields (resume_time, l1 teach/gen) plus the post-dispatch
      // clock from the recorded log. Everything else — proc bookkeeping,
      // CPU busy horizon, interrupt visibility — is rebuilt live, exactly
      // as process_data would have.
      ProcInfo& pi = info(proc);
      COMPASS_CHECK_MSG(pi.cpu != kNoCpu,
                        "data batch from proc " << proc << " with no CPU");
      Reply r;
      Cycles now_after = now_;
      hooks_.ckpt->warp_data_reply(proc, now_after, r);
      COMPASS_CHECK_MSG(now_after >= now_, "warp log clock went backwards");
      now_ = now_after;
      pi.last_time = r.resume_time;
      CpuInfo& ci = cpus_[static_cast<std::size_t>(pi.cpu)];
      ci.busy_until = std::max(ci.busy_until, pi.last_time);
      r.cpu = pi.cpu;
      r.interrupt_pending = interrupt_pending_for(proc);
      port.reply(r);
      return;
    }
    Reply r = process_data(proc, batch, nullptr);
    hooks_.ckpt->on_data_reply(proc, now_, r);
    port.reply(r);
    return;
  }

  port.reply(process_data(proc, batch, nullptr));
}

Reply Backend::process_data(ProcId proc, std::span<const Event> batch,
                            WindowItem* acc) {
  // May run on a shard worker when `acc != nullptr` (lane A, see
  // execute_window): everything touched is then private to this window
  // item — the proc record, its CPU's breakdown row and CpuInfo, the port —
  // except global time and the two counters, which tally into `acc` for an
  // order-insensitive merge at the window barrier.
  ProcInfo& pi = info(proc);
  COMPASS_CHECK_MSG(pi.cpu != kNoCpu,
                    "data batch from proc " << proc << " with no CPU");
  const CpuId cpu = pi.cpu;
  Cycles local_now = 0;
  std::uint64_t refs = 0;
  bool first = true;
  for (const Event& ev : batch) {
    COMPASS_CHECK_MSG(ev.kind == EventKind::kMemRef || ev.kind == EventKind::kYield,
                      "mixed control/data batch (proc " << proc << ")");
    COMPASS_CHECK_MSG(!first || ev.time >= pi.last_time,
                      "time went backwards for proc " << proc << ": " << ev.time
                                                      << " < " << pi.last_time);
    first = false;
    // Within a batch, later references were stamped before earlier stall
    // latencies were known; they issue no earlier than the previous
    // completion (stalls serialize).
    const Cycles issue = std::max(ev.time, pi.last_time);
    if (acc != nullptr)
      local_now = std::max(local_now, issue);
    else
      now_ = std::max(now_, issue);
    charge(cpu, ev.mode, issue - pi.last_time);
    Cycles latency = 0;
    if (ev.kind == EventKind::kMemRef) {
      Event issued = ev;
      issued.time = issue;
      if (acc != nullptr && acc->cls != nullptr) {
        // Lane-B planned-parallel item: consume the classify verdict. In
        // lockstep the literal model runs instead (coordinator, merge order)
        // and must agree — any disagreement means the classify kernels'
        // clean-hit proof is wrong for this model.
        COMPASS_CHECK_MSG(refs < acc->cls->verdicts.size(),
                          "lane-B verdict underrun for proc " << proc);
        const LaneBVerdict& v = acc->cls->verdicts[refs];
        if (laneb_lockstep_) {
          latency = hooks_.memsys->access(cpu, proc, issued);
          COMPASS_CHECK_MSG(
              latency == v.lat,
              "lane-B lockstep mismatch: proc " << proc << " cpu " << cpu
                  << " addr 0x" << std::hex << ev.addr << std::dec
                  << " literal latency " << latency << " != verdict " << v.lat);
        } else {
          latency = hooks_.memsys->lane_b_apply(cpu, issued, v);
        }
      } else {
        latency = hooks_.memsys->access(cpu, proc, issued);
      }
      ++refs;
    }
    charge(cpu, ev.mode, latency);
    pi.last_time = issue + latency;
  }
  cpus_[static_cast<std::size_t>(cpu)].busy_until =
      std::max(cpus_[static_cast<std::size_t>(cpu)].busy_until, pi.last_time);
  if (acc != nullptr) {
    acc->local_now = local_now;
    acc->local_refs = refs;
  } else {
    ctr_mem_refs_->inc(refs);
    ctr_batches_->inc();
  }

  Reply r;
  r.resume_time = pi.last_time;
  r.cpu = cpu;
  r.interrupt_pending = interrupt_pending_for(proc);
  if (cfg_.l1_filter) {
    // Data-batch replies teach the frontend mirror: the line the batch's
    // last reference left resident, plus the CPU's coherence generation.
    // Thread-safe under lane A: only concurrent-safe models run there, and
    // those leave the MemorySystem defaults (constant gen, no teaches).
    r.l1_gen = hooks_.memsys->l1_filter_gen(cpu);
    r.teach = hooks_.memsys->take_l1_teach(cpu);
  }
  return r;
}

bool Backend::would_preempt(ProcId proc, Cycles event_time) const {
  // Must mirror maybe_preempt's trigger condition exactly: window formation
  // uses it to prove the serial loop would NOT preempt this dispatch. All
  // inputs (mode, cpu binding, ready set, slice bookkeeping) are frozen
  // during a data-only window, so evaluating at formation time equals the
  // serial evaluation at dispatch time.
  if (!cfg_.preemptive) return false;
  const ProcInfo& pi = info(proc);
  if (pi.cpu == kNoCpu || pi.is_bottom_half) return false;
  if (pi.mode != ExecMode::kUser) return false;
  if (!proc_sched_.has_ready()) return false;
  const CpuInfo& ci = cpus_[static_cast<std::size_t>(pi.cpu)];
  const Cycles quantum = ci.quantum != 0 ? ci.quantum : cfg_.quantum;
  return event_time >= ci.slice_start && event_time - ci.slice_start >= quantum;
}

std::size_t Backend::form_window(ProcId first) {
  // Candidates in (pending_time, proc) order — exactly the order repeated
  // serial pick-min calls would consume them in, as long as no candidate's
  // dispatch can change scheduling state or let an earlier repost overtake.
  window_cand_.clear();
  for (const ProcId p : running_)
    window_cand_.emplace_back(comm_.port(p).pending_time(), p);
  std::sort(window_cand_.begin(), window_cand_.end());
  COMPASS_CHECK(window_cand_.front().second == first);

  window_.clear();
  const Cycles task_bound = sched_queue_.next_time();
  // A dispatched proc reposts no earlier than its batch's last event time
  // (enforced: within a batch times are nondecreasing, issue times only move
  // forward, and the next post begins at/after the reply's resume_time). A
  // later candidate is safe only strictly below every earlier repost bound:
  // at equal times the repost of a lower-id proc would win the tie-break.
  Cycles chain_bound = std::numeric_limits<Cycles>::max();
  // The checkpoint hook needs its trigger to fire at a serial pick-min
  // observation; a window must never swallow a batch at or past its
  // boundary. Applied to the first candidate too: an empty window falls
  // back to serial dispatch.
  const Cycles ckpt_bound = hooks_.ckpt != nullptr
                                ? hooks_.ckpt->window_boundary()
                                : std::numeric_limits<Cycles>::max();
  for (const auto& [t, p] : window_cand_) {
    if (t >= ckpt_bound) break;
    if (!window_.empty() && (t >= task_bound || t >= chain_bound)) break;
    EventPort& port = comm_.port(p);
    const EventPort::PendingPeek peek = port.peek_pending();
    const bool is_data = peek.kind == EventKind::kMemRef ||
                         peek.kind == EventKind::kYield;
    // Control events mutate run/scheduler state; a preempting dispatch
    // re-enters the scheduler. Both end the window (prefix, not filter:
    // everything after them would execute against changed state).
    if (!is_data || would_preempt(p, t)) break;
    WindowItem item;
    item.proc = p;
    item.port = &port;
    window_.push_back(item);
    chain_bound = std::min(chain_bound, peek.last_time);
  }
  return window_.size();
}

void Backend::run_window_item(WindowItem& item) {
  switch (item.op) {
    case WindowOp::kClassify:
      // Strictly read-only: the plan decides afterwards what executes where,
      // so no reply leaves here.
      item.cls->reset();
      hooks_.memsys->lane_b_classify(info(item.proc).cpu, item.proc,
                                     item.batch, *item.cls);
      return;
    case WindowOp::kExecute:
    case WindowOp::kApply:
      item.reply = process_data(item.proc, item.batch, &item);
      break;
    case WindowOp::kDeliver:
      break;
  }
  item.port->reply(item.reply);
}

void Backend::execute_window(ShardPool& pool, bool concurrent_model) {
  ++windows_executed_;
  // Take + trace every batch first, in merge order: the recorder observes
  // the identical total order the serial backend consumes, so trace bytes
  // do not depend on the worker count.
  for (WindowItem& it : window_) {
    // Per-item spine tap in merge order: the serial loop would observe each
    // of these picks at its own loop top (window formation proves nothing
    // can reorder them), so the recorded spine is worker-count independent.
    if (hooks_.ckpt != nullptr)
      hooks_.ckpt->on_pick(it.proc, it.port->pending_time(), /*is_data=*/true);
    it.batch = it.port->take_batch();
    COMPASS_CHECK(!it.batch.empty());
    if (hooks_.trace != nullptr)
      hooks_.trace->on_batch(it.proc, info(it.proc).last_time, it.batch);
  }
  const int lanes = pool.workers() + 1;  // lane 0 is the coordinator
  int delegated = 0;
  for (const WindowItem& it : window_)
    if (it.proc % lanes != 0) ++delegated;

  if (concurrent_model) {
    // Lane A: full parallel execution. Safe because window items touch
    // disjoint per-proc/per-CPU/per-port state and the model accepts
    // concurrent access() for distinct CPUs.
    pool.begin_window(delegated);
    for (WindowItem& it : window_) {
      it.op = WindowOp::kExecute;
      if (it.proc % lanes != 0) pool.push(it.proc % lanes - 1, &it);
    }
    for (WindowItem& it : window_)
      if (it.proc % lanes == 0) run_window_item(it);
    pool.wait_window();
    // Merge order-insensitive tallies (max / sums), then counters. The
    // checkpoint tap runs in merge order with the clock folded up to each
    // item — the running max is identical to the serial loop's now_ after
    // the same dispatch, so lane A records the same warp log bytes.
    std::uint64_t refs = 0;
    for (const WindowItem& it : window_) {
      now_ = std::max(now_, it.local_now);
      if (hooks_.ckpt != nullptr)
        hooks_.ckpt->on_data_reply(it.proc, now_, it.reply);
      refs += it.local_refs;
    }
    ctr_mem_refs_->inc(refs);
    ctr_batches_->inc(window_.size());
  } else {
    // Lane B: the model has shared zero-lookahead state (coherence bus,
    // directory, page tables). The sharded tier first tries to PROVE part
    // of the window independent of that state (lane_b_window); when the
    // proof fails, the coordinator runs every computation itself in exact
    // merge order and workers only deliver the replies, offloading the
    // wakeup cost — the dominant per-dispatch expense of the serial loop.
    if (lane_b_window(pool)) return;
    pool.begin_window(delegated);
    for (WindowItem& it : window_) {
      // A failed lane-B attempt may have left op/cls set by its plan; the
      // serial tier computes here and delegates bare delivery only.
      it.op = WindowOp::kDeliver;
      it.cls = nullptr;
      it.reply = process_data(it.proc, it.batch, nullptr);
      if (hooks_.ckpt != nullptr)
        hooks_.ckpt->on_data_reply(it.proc, now_, it.reply);
      if (it.proc % lanes != 0)
        pool.push(it.proc % lanes - 1, &it);
      else
        it.port->reply(it.reply);
    }
    pool.wait_window();
  }
}

bool Backend::lane_b_window(ShardPool& pool) {
  // Sharded lane B (complex models). Three phases over an already
  // taken-and-traced window:
  //
  //   1. CLASSIFY (parallel, read-only): every item's batch is resolved
  //      against the frozen pre-window model state into per-reference
  //      clean-hit verdicts plus a 64-slice line-hash footprint.
  //   2. PLAN (coordinator): items that are all-clean AND whose slices are
  //      disjoint from every non-clean item's footprint go to the parallel
  //      APPLY tier; the rest execute literally on the coordinator in merge
  //      order. Disjointness is what keeps the tiers from aliasing: a
  //      serial reference's cross-CPU mutations only ever target lines it
  //      accesses, and a literal execution can deviate from its classified
  //      footprint only on lines an earlier serial reference already
  //      mutated — both stay inside the serial slices by induction.
  //   3. APPLY/EXECUTE: workers replay parallel items' verdicts (own-L1
  //      LRU/state writes at pre-resolved ways, no tag scans) while the
  //      coordinator runs the serial remainder; then a lane-A-style merge.
  //
  // In Debug lockstep the plan still runs, but planned-parallel items
  // execute literally on the coordinator and process_data asserts each
  // latency equals its verdict — the full serial ground truth.
  if (!hooks_.memsys->lane_b_shardable()) return false;
  if (!laneb_lockstep_ && laneb_backoff_ > 0) {
    --laneb_backoff_;
    return false;
  }
  const int lanes = pool.workers() + 1;

  // Phase 1: classify. Fan out like lane A (proc % lanes); read-only, so a
  // failed attempt below leaves the model untouched.
  if (laneb_cls_.size() < window_.size()) laneb_cls_.resize(window_.size());
  int delegated = 0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    window_[i].op = WindowOp::kClassify;
    window_[i].cls = &laneb_cls_[i];
    if (window_[i].proc % lanes != 0) ++delegated;
  }
  pool.begin_window(delegated);
  for (WindowItem& it : window_)
    if (it.proc % lanes != 0) pool.push(it.proc % lanes - 1, &it);
  for (WindowItem& it : window_)
    if (it.proc % lanes == 0) run_window_item(it);
  pool.wait_window();

  // Phase 2: plan. An unresolvable translation anywhere poisons the whole
  // window (the missing footprint could alias anything).
  std::uint64_t serial_mask = 0;
  bool unknown = false;
  for (const WindowItem& it : window_) {
    if (!it.cls->lines_known) unknown = true;
    if (!it.cls->all_clean) serial_mask |= it.cls->slice_mask;
  }
  std::size_t n_parallel = 0;
  for (WindowItem& it : window_) {
    const bool parallel = !unknown && it.cls->all_clean &&
                          (it.cls->slice_mask & serial_mask) == 0;
    if (parallel) {
      it.op = WindowOp::kApply;
      ++n_parallel;
    } else {
      it.op = WindowOp::kExecute;
      it.cls = nullptr;
    }
  }
  if (n_parallel == 0) {
    // Nothing provable: pace future attempts down so classify overhead on
    // hostile (write-shared) phases stays bounded, recovering quickly once
    // windows turn clean again. Lockstep keeps classifying for coverage.
    if (!laneb_lockstep_) {
      laneb_penalty_ = std::min<std::uint32_t>(laneb_penalty_ * 2 + 1, 64);
      laneb_backoff_ = laneb_penalty_;
    }
    return false;
  }
  laneb_penalty_ = 0;
  ++laneb_windows_;
  laneb_parallel_items_ += n_parallel;

  // Phase 3: execute.
  if (laneb_lockstep_) {
    // Serial ground truth, in exact merge order; process_data cross-checks
    // every planned-parallel reference against the literal model.
    std::uint64_t refs = 0;
    for (WindowItem& it : window_) {
      it.reply = process_data(it.proc, it.batch, &it);
      now_ = std::max(now_, it.local_now);
      if (hooks_.ckpt != nullptr)
        hooks_.ckpt->on_data_reply(it.proc, now_, it.reply);
      it.port->reply(it.reply);
      refs += it.local_refs;
    }
    ctr_mem_refs_->inc(refs);
    ctr_batches_->inc(window_.size());
    return true;
  }
  if (n_parallel == window_.size()) {
    // All clean: the whole window is its own parallel tier — distribute
    // like lane A, coordinator included.
    pool.begin_window(delegated);
    for (WindowItem& it : window_)
      if (it.proc % lanes != 0) pool.push(it.proc % lanes - 1, &it);
    for (WindowItem& it : window_)
      if (it.proc % lanes == 0) run_window_item(it);
    pool.wait_window();
  } else {
    // Mixed: every apply goes to a worker (round-robin — the coordinator's
    // serial remainder is the critical path, so it delegates all of them),
    // and the serial items run here in merge order, overlapped.
    pool.begin_window(static_cast<int>(n_parallel));
    int wi = 0;
    for (WindowItem& it : window_)
      if (it.op == WindowOp::kApply) pool.push(wi++ % pool.workers(), &it);
    for (WindowItem& it : window_)
      if (it.op == WindowOp::kExecute) run_window_item(it);
    pool.wait_window();
  }
  // Lane-A-style merge: order-insensitive tallies folded in merge order so
  // the checkpoint tap observes the serial loop's exact clock values.
  std::uint64_t refs = 0;
  for (const WindowItem& it : window_) {
    now_ = std::max(now_, it.local_now);
    if (hooks_.ckpt != nullptr)
      hooks_.ckpt->on_data_reply(it.proc, now_, it.reply);
    refs += it.local_refs;
  }
  ctr_mem_refs_->inc(refs);
  ctr_batches_->inc(window_.size());
  return true;
}

void Backend::run_loop_windowed(int workers) {
  HostThrottle::Hold hold(comm_.throttle());
  // Pool local to the loop: stack unwinding joins the workers before run()'s
  // catch block closes the ports, on success and failure alike.
  ShardPool pool(workers, procs_.size(),
                 [this](WindowItem& item) { run_window_item(item); },
                 cfg_.backend_spin_policy());
  while (true) {
    schedule_ready_procs();
    if (all_apps_exited()) break;
    if (running_dirty_) rebuild_running();
    if (running_.empty()) {
      if (sched_queue_.empty()) {
        throw util::SimError("COMPASS deadlock: no runnable process and no "
                             "scheduled task\n" +
                             dump_states());
      }
      run_one_task();
      continue;
    }
    ProcId proc = kNoProc;
    Cycles t = 0;
    bool is_data = false;
    const bool from_spine = next_dispatch(proc, t, is_data);
    // Same quiescent-point hook as the serial loop: the trigger fires at a
    // pick-min observation, never inside a window (form_window refuses to
    // cross the hook's boundary), so create/restore points are identical
    // for every worker count.
    if (hooks_.ckpt != nullptr && hooks_.ckpt->at_dispatch_point(*this, t))
      break;
    if (sched_queue_.next_time() <= t) {
      // Spine tap here and in the serial-dispatch branch below, NOT at the
      // loop top: window items record their own picks in execute_window, so
      // an unconditional tap would double-record the window's first item.
      if (hooks_.ckpt != nullptr) hooks_.ckpt->on_pick(proc, t, is_data);
      run_one_task();
      continue;
    }
    if (from_spine) {
      if (is_data) {
        warp_self_serve_data(proc, t);
        continue;
      }
      warp_await_control(proc);
      dispatch(proc);
      continue;
    }
    // Windows of one fall through to the serial dispatch path — identical
    // behavior, none of the fan-out overhead. A restore warp also forces
    // serial dispatch: its reply log is consumed one batch at a time.
    if (running_.size() < 2 ||
        (hooks_.ckpt != nullptr && hooks_.ckpt->warping()) ||
        form_window(proc) <= 1) {
      if (hooks_.ckpt != nullptr) hooks_.ckpt->on_pick(proc, t, is_data);
      dispatch(proc);
      continue;
    }
    execute_window(pool, hooks_.memsys->concurrent_access_safe());
  }
  for (CpuId c = 0; c < cfg_.num_cpus; ++c) account_idle_until(c, now_);
}

bool Backend::next_dispatch(ProcId& proc, Cycles& t, bool& is_data) {
  // Self-serve warp: replay the recorded pick-min observation instead of
  // synchronizing with the frontends — they serve their own data replies
  // from the shard log and only touch the ports for control events. The
  // pending-min index is deliberately bypassed too: most ports are never
  // pending during the walk, which would trip pick_min's invariants.
  if (hooks_.ckpt != nullptr && hooks_.ckpt->self_serve() &&
      hooks_.ckpt->next_pick(proc, t, is_data))
    return true;
  comm_.wait_all_pending(running_);
  if (!warp_rebase_stash_.empty() && hooks_.ckpt != nullptr &&
      hooks_.ckpt->self_serve()) {
    // Warp horizon: the spine is exhausted and every running frontend just
    // posted its final batch live (no shard records left). Apply the
    // trailing recorded rebases so pending times — and the snapshot's
    // per-port peeks verified at install — match the create run.
    for (const auto& [p, base] : warp_rebase_stash_)
      comm_.port(p).rebase_pending(base);
    warp_rebase_stash_.clear();
  }
  proc = comm_.pick_min(running_);
  EventPort& port = comm_.port(proc);
  t = port.pending_time();
  if (hooks_.ckpt != nullptr) {
    const EventPort::PendingPeek peek = port.peek_pending();
    is_data = peek.kind == EventKind::kMemRef || peek.kind == EventKind::kYield;
  }
  return false;
}

void Backend::warp_self_serve_data(ProcId proc, Cycles t) {
  // The frontend already served itself this batch's reply from its shard;
  // the walk only replays the backend-side effects of the dispatch. The
  // preemption check must still run against the recorded pick time — a
  // preempted pick consumes nothing (the stash stays for the re-pick).
  if (maybe_preempt(proc, t)) return;
  ProcInfo& pi = info(proc);
  COMPASS_CHECK_MSG(pi.cpu != kNoCpu,
                    "data batch from proc " << proc << " with no CPU");
  const auto stash = warp_rebase_stash_.find(proc);
  if (hooks_.trace != nullptr) {
    // The serving frontend queued a copy of the batch; record it here, at
    // the dispatch point, so the trace keeps the backend's total order.
    // Fold the stashed rebase exactly as take_batch would have.
    std::vector<Event> batch = hooks_.ckpt->warp_take_trace_batch(proc);
    COMPASS_CHECK(!batch.empty());
    if (stash != warp_rebase_stash_.end()) {
      COMPASS_CHECK_MSG(stash->second >= batch.front().time,
                        "recorded rebase moved a batch backwards");
      const Cycles delta = stash->second - batch.front().time;
      for (Event& e : batch) e.time += delta;
    }
    hooks_.trace->on_batch(proc, pi.last_time, batch);
  }
  if (stash != warp_rebase_stash_.end()) warp_rebase_stash_.erase(stash);
  Reply r;
  Cycles now_after = now_;
  hooks_.ckpt->warp_data_reply(proc, now_after, r);
  COMPASS_CHECK_MSG(now_after >= now_, "warp log clock went backwards");
  now_ = now_after;
  pi.last_time = r.resume_time;
  CpuInfo& ci = cpus_[static_cast<std::size_t>(pi.cpu)];
  ci.busy_until = std::max(ci.busy_until, pi.last_time);
}

void Backend::warp_await_control(ProcId proc) {
  EventPort& port = comm_.port(proc);
  // The walk runs decoupled from the frontends; a control batch crosses the
  // real port (its handler mutates backend state), so wait for the post.
  // The sequence ticket guarantees it is the recorded one.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!port.has_pending()) {
    if (hooks_.ckpt->warp_failed())
      throw util::StateError("self-serve warp aborted while waiting for the "
                             "control post of proc " +
                             std::to_string(proc));
    if (std::chrono::steady_clock::now() > deadline)
      throw util::StateError(
          "self-serve warp stalled: proc " + std::to_string(proc) +
          " never posted its recorded control batch (divergent replay?)");
    std::this_thread::yield();
  }
  if (const auto it = warp_rebase_stash_.find(proc);
      it != warp_rebase_stash_.end()) {
    // Apply the recorded rebase before dispatch: handle_control charges the
    // lead-in against pi.last_time, which schedule_ready_procs already
    // advanced to this base.
    port.rebase_pending(it->second);
    warp_rebase_stash_.erase(it);
  }
}

void Backend::handle_control(ProcId proc, const Event& ev, EventPort& port) {
  ProcInfo& pi = info(proc);
  now_ = std::max(now_, ev.time);
  stats_->counter("backend.control_events").inc();

  // Compute interval since the previous event, charged to the mode the
  // frontend was executing in (carried on the event).
  auto charge_lead_in = [&] {
    COMPASS_CHECK_MSG(pi.cpu != kNoCpu,
                      "control event " << to_string(ev.kind) << " from proc "
                                       << proc << " with no CPU");
    COMPASS_CHECK(ev.time >= pi.last_time);
    charge(pi.cpu, ev.mode, ev.time - pi.last_time);
    pi.last_time = ev.time;
    cpus_[static_cast<std::size_t>(pi.cpu)].busy_until =
        std::max(cpus_[static_cast<std::size_t>(pi.cpu)].busy_until, ev.time);
  };
  auto reply_at = [&](Cycles resume, std::int64_t retval = 0) {
    Reply r;
    r.resume_time = resume;
    r.retval = retval;
    r.cpu = pi.cpu;
    r.interrupt_pending = interrupt_pending_for(proc);
    // Control replies carry the generation only; a teach from the previous
    // data batch stays in its slot until the next data reply stamps it
    // (where a stale one is rejected by its recorded generation).
    if (cfg_.l1_filter && pi.cpu != kNoCpu)
      r.l1_gen = hooks_.memsys->l1_filter_gen(pi.cpu);
    // Control handling is fully live during a restore warp (no memory-model
    // calls); only the l1 generation must come from the log, because the
    // model's generation counters diverge while access() is skipped.
    if (hooks_.ckpt != nullptr) {
      if (hooks_.ckpt->warping())
        hooks_.ckpt->warp_control_reply(proc, r);
      else
        hooks_.ckpt->on_control_reply(proc, r);
    }
    port.reply(r);
  };

  switch (ev.kind) {
    case EventKind::kStart: {
      COMPASS_CHECK_MSG(pi.state == RunState::kStarting,
                        "kStart from proc " << proc << " in wrong state");
      pi.state = RunState::kReady;
      pi.reply_deferred = true;
      proc_sched_.add_ready(proc);
      running_dirty_ = true;
      break;
    }
    case EventKind::kExit: {
      charge_lead_in();
      const CpuId cpu = pi.cpu;
      proc_sched_.release_cpu(proc);
      proc_sched_.remove(proc);
      pi.cpu = kNoCpu;
      pi.state = RunState::kExited;
      running_dirty_ = true;
      reply_at(ev.time);
      maybe_dispatch_idle_irq(cpu);
      break;
    }
    case EventKind::kOsEnter: {
      charge_lead_in();
      charge(pi.cpu, ExecMode::kKernel, cfg_.syscall_entry_cycles);
      pi.mode = ExecMode::kKernel;
      pi.last_time = ev.time + cfg_.syscall_entry_cycles;
      cpus_[static_cast<std::size_t>(pi.cpu)].busy_until = pi.last_time;
      stats_->counter("os.syscalls").inc();
      // Mode handoff: the OS-server context adopts this port/CPU, so the two
      // frontend mirrors sharing the L1 must both void their proofs.
      if (cfg_.l1_filter) hooks_.memsys->l1_filter_bump(pi.cpu);
      reply_at(pi.last_time);
      break;
    }
    case EventKind::kOsExit: {
      charge_lead_in();
      charge(pi.cpu, ExecMode::kKernel, cfg_.syscall_exit_cycles);
      pi.mode = ExecMode::kUser;
      pi.last_time = ev.time + cfg_.syscall_exit_cycles;
      cpus_[static_cast<std::size_t>(pi.cpu)].busy_until = pi.last_time;
      if (cfg_.l1_filter) hooks_.memsys->l1_filter_bump(pi.cpu);
      reply_at(pi.last_time);
      break;
    }
    case EventKind::kIrqEnter: {
      charge_lead_in();
      charge(pi.cpu, ExecMode::kInterrupt, cfg_.irq_entry_cycles);
      pi.saved_mode = pi.mode;
      pi.mode = ExecMode::kInterrupt;
      pi.last_time = ev.time + cfg_.irq_entry_cycles;
      cpus_[static_cast<std::size_t>(pi.cpu)].busy_until = pi.last_time;
      stats_->counter("os.interrupts").inc();
      if (cfg_.l1_filter) hooks_.memsys->l1_filter_bump(pi.cpu);
      reply_at(pi.last_time);
      break;
    }
    case EventKind::kIrqExit: {
      charge_lead_in();
      charge(pi.cpu, ExecMode::kInterrupt, cfg_.irq_exit_cycles);
      if (cfg_.l1_filter) hooks_.memsys->l1_filter_bump(pi.cpu);
      pi.mode = pi.saved_mode;
      pi.last_time = ev.time + cfg_.irq_exit_cycles;
      cpus_[static_cast<std::size_t>(pi.cpu)].busy_until = pi.last_time;
      if (pi.is_bottom_half) {
        const CpuId cpu = pi.cpu;
        reply_at(pi.last_time);
        pi.cpu = kNoCpu;
        pi.state = RunState::kParked;
        pi.mode = ExecMode::kUser;
        proc_sched_.unreserve_cpu(cpu);
        running_dirty_ = true;
        // A bottom half just became available: service pending interrupts
        // on ANY idle CPU (they may have been skipped while every bottom
        // half was busy).
        for (CpuId c = 0; c < cfg_.num_cpus; ++c) maybe_dispatch_idle_irq(c);
      } else {
        reply_at(pi.last_time);
      }
      break;
    }
    case EventKind::kBlock: {
      charge_lead_in();
      const WaitChannel ch = ev.arg[0];
      // Semaphore semantics: consume a stored permit instead of blocking if
      // a wakeup already arrived (lost-wakeup avoidance).
      if (const auto it = permits_.find(ch); it != permits_.end() && it->second > 0) {
        if (--it->second == 0) permits_.erase(it);
        reply_at(ev.time);
        break;
      }
      const CpuId cpu = pi.cpu;
      proc_sched_.release_cpu(proc);
      pi.cpu = kNoCpu;
      pi.state = RunState::kBlocked;
      pi.channel = ch;
      pi.reply_deferred = true;
      blocked_.emplace(ch, proc);
      running_dirty_ = true;
      stats_->counter("os.blocks").inc();
      maybe_dispatch_idle_irq(cpu);
      break;
    }
    case EventKind::kWakeup: {
      charge_lead_in();
      const std::uint64_t count = ev.arg[1] == 0 ? 1 : ev.arg[1];
      handle_wakeup(ev.arg[0], count);
      reply_at(ev.time);
      break;
    }
    case EventKind::kDevRequest: {
      charge_lead_in();
      COMPASS_CHECK_MSG(hooks_.devices != nullptr,
                        "kDevRequest with no DeviceManager configured");
      const std::int64_t tag =
          hooks_.devices->device_request(proc, pi.cpu, now_, ev.arg);
      reply_at(ev.time, tag);
      break;
    }
    case EventKind::kBackendCall: {
      charge_lead_in();
      COMPASS_CHECK_MSG(hooks_.backend_calls != nullptr,
                        "kBackendCall with no handler configured");
      const std::int64_t rv =
          hooks_.backend_calls->backend_call(proc, pi.cpu, now_, ev.arg);
      reply_at(ev.time, rv);
      break;
    }
    default:
      COMPASS_CHECK_MSG(false, "unexpected control event "
                                   << to_string(ev.kind) << " from proc " << proc);
  }
}

void Backend::handle_wakeup(WaitChannel channel, std::uint64_t count) {
  // Wake up to `count` blocked processes in FIFO order; leftover wakeups are
  // stored as permits for future kBlocks on this channel.
  auto [first, last] = blocked_.equal_range(channel);
  while (count > 0 && first != last) {
    ProcInfo& pi = info(first->second);
    COMPASS_CHECK(pi.state == RunState::kBlocked);
    pi.state = RunState::kReady;
    proc_sched_.add_ready(first->second);
    stats_->counter("os.wakeups").inc();
    first = blocked_.erase(first);
    --count;
    running_dirty_ = true;
  }
  if (count > 0) permits_[channel] += count;
}

void Backend::wakeup_channel(WaitChannel channel, std::uint64_t count) {
  handle_wakeup(channel, count);
}

void Backend::raise_irq(CpuId cpu, IrqDesc desc) {
  COMPASS_CHECK(cpu >= 0 && cpu < cfg_.num_cpus);
  desc.raised_at = now_;
  comm_.cpu_state(cpu).raise(desc);
  stats_->counter("backend.irqs_raised").inc();
  maybe_dispatch_idle_irq(cpu);
}

CpuId Backend::pick_irq_cpu() {
  for (CpuId c = 0; c < cfg_.num_cpus; ++c)
    if (proc_sched_.proc_on(c) == kNoProc && proc_sched_.cpu_free(c)) return c;
  irq_rr_ = (irq_rr_ + 1) % cfg_.num_cpus;
  return irq_rr_;
}

void Backend::maybe_dispatch_idle_irq(CpuId cpu) {
  if (cpu == kNoCpu) return;
  if (hooks_.idle_irq == nullptr) return;
  const std::uint64_t call = idle_irq_calls_++;
  if (hooks_.ckpt != nullptr && hooks_.ckpt->self_serve()) {
    // Self-serve warp: the interrupt-request flag is cleared by frontend
    // pops on their own host clock, so the live guards below are racy
    // against the decoupled walk. Replay the recorded decision instead.
    ProcId proc = kNoProc;
    if (!hooks_.ckpt->warp_idle_pick(call, proc)) return;
    COMPASS_CHECK_MSG(proc >= 0 && static_cast<std::size_t>(proc) < procs_.size(),
                      "recorded idle-irq dispatch to unknown proc " << proc);
    ProcInfo& pi = info(proc);
    COMPASS_CHECK_MSG(pi.is_bottom_half && pi.state == RunState::kParked,
                      "recorded idle-irq dispatch to proc "
                          << proc << ", which is not a parked bottom half");
    COMPASS_CHECK_MSG(proc_sched_.cpu_free(cpu),
                      "recorded idle-irq dispatch to busy cpu " << cpu);
    dispatch_idle_irq_to(cpu, proc);
    return;
  }
  if (!comm_.cpu_state(cpu).interrupt_requested()) return;
  if (!comm_.cpu_state(cpu).interrupts_enabled()) return;
  if (!proc_sched_.cpu_free(cpu)) return;  // someone will see the flag
  // Find a parked bottom-half pseudo-process to run the handler.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    ProcInfo& pi = procs_[i];
    if (!pi.is_bottom_half || pi.state != RunState::kParked) continue;
    if (hooks_.ckpt != nullptr)
      hooks_.ckpt->on_idle_dispatch(call, static_cast<ProcId>(i));
    dispatch_idle_irq_to(cpu, static_cast<ProcId>(i));
    return;
  }
  // No parked bottom half: retried when one parks (kIrqExit) or when the
  // flag is seen by whichever process next runs on this CPU.
}

void Backend::dispatch_idle_irq_to(CpuId cpu, ProcId proc) {
  ProcInfo& pi = info(proc);
  proc_sched_.reserve_cpu(cpu);
  CpuInfo& ci = cpus_[static_cast<std::size_t>(cpu)];
  const Cycles when = std::max(now_, ci.busy_until);
  account_idle_until(cpu, when);
  pi.state = RunState::kRunning;
  pi.cpu = cpu;
  pi.saved_mode = ExecMode::kUser;
  pi.last_time = when;
  ci.slice_start = when;
  running_dirty_ = true;
  stats_->counter("os.bottom_half_dispatches").inc();
  hooks_.idle_irq->dispatch_idle_irq(cpu, proc, when);
}

std::string Backend::dump_states() const {
  std::ostringstream os;
  os << "simulated cycle " << now_ << '\n';
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const ProcInfo& p = procs_[i];
    const char* state = "?";
    switch (p.state) {
      case RunState::kStarting: state = "starting"; break;
      case RunState::kRunning: state = "running"; break;
      case RunState::kReady: state = "ready"; break;
      case RunState::kBlocked: state = "blocked"; break;
      case RunState::kParked: state = "parked"; break;
      case RunState::kExited: state = "exited"; break;
    }
    os << "  proc " << i << " (" << p.name << "): " << state << " mode "
       << to_string(p.mode) << " cpu " << p.cpu << " last_time " << p.last_time;
    if (p.state == RunState::kBlocked) os << " channel 0x" << std::hex << p.channel << std::dec;
    os << '\n';
  }
  os << "  scheduler tasks: " << sched_queue_.size()
     << ", ready procs: " << proc_sched_.ready_count() << '\n';
  return os.str();
}

void Backend::ckpt_dump_state(util::StateSink& sink) const {
  sink.varint(now_);
  sink.svarint(irq_rr_);
  sink.varint(procs_.size());
  for (const ProcInfo& p : procs_) {
    sink.str(p.name);
    sink.u8(static_cast<std::uint8_t>(p.state));
    sink.u8(static_cast<std::uint8_t>(p.mode));
    sink.u8(static_cast<std::uint8_t>(p.saved_mode));
    sink.svarint(p.cpu);
    sink.varint(p.last_time);
    sink.u8(p.reply_deferred ? 1 : 0);
    sink.u8(p.is_bottom_half ? 1 : 0);
    sink.u8(p.is_daemon ? 1 : 0);
    sink.varint(p.channel);
    sink.svarint(p.wake_retval);
  }
  sink.varint(cpus_.size());
  for (const CpuInfo& c : cpus_) {
    sink.varint(c.busy_until);
    sink.varint(c.slice_start);
    sink.varint(c.quantum);
  }
  sink.varint(blocked_.size());
  for (const auto& [ch, p] : blocked_) {
    sink.varint(ch);
    sink.svarint(p);
  }
  sink.varint(permits_.size());
  for (const auto& [ch, n] : permits_) {
    sink.varint(ch);
    sink.varint(n);
  }
  proc_sched_.ckpt_dump(sink);
  // The global scheduler holds host closures — never serialized; the warp
  // rebuilds them by re-execution. Shape only, as a divergence tripwire.
  sink.varint(sched_queue_.size());
  sink.varint(sched_queue_.empty() ? 0 : sched_queue_.next_time());
  // Per-port pending peeks: at a quiescent point these fully describe what
  // each parked frontend has posted (batch payloads are host-side and get
  // re-posted identically by the warped frontends).
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    EventPort& port = comm_.port(static_cast<ProcId>(i));
    if (!port.has_pending()) {
      sink.u8(0);
      continue;
    }
    sink.u8(1);
    const EventPort::PendingPeek peek = port.peek_pending();
    sink.varint(peek.first_time);
    sink.varint(peek.last_time);
    sink.u8(static_cast<std::uint8_t>(peek.kind));
  }
  for (CpuId c = 0; c < cfg_.num_cpus; ++c) comm_.cpu_state(c).ckpt_dump(sink);
}

}  // namespace compass::core
