// SimContext: the frontend-side instrumentation interface.
//
// In COMPASS the instrumentor inserts assembly after each basic block and
// memory reference that (a) accumulates the process's execution-time value
// and (b) fills an event record and passes it to the backend via the event
// port. SimContext is that inserted code as an API: workload code (and the
// instrumented kernel code in the OS server) calls compute()/load()/store()
// instead of being binary-rewritten. The synthetic-ISA interpreter in
// src/isa drives the same API from basic-block programs.
//
// A SimContext is either *attached* to an event port (simulating) or
// *detached* (the paper's "raw" run / simulation-OFF binary): detached
// contexts make every primitive a no-op so workloads run at native speed.
//
// The simulation ON/OFF switch (paper §5) is set_sim_enabled(): with
// instrumentation off, references and compute generate no events and no
// time, matching the paper's selective instrumentation of "interesting"
// code regions. The per-process event-generation control flag used for
// signal handlers and static constructors (paper §4.1) is the same switch.
#pragma once

#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/event.h"
#include "core/event_port.h"
#include "core/ref_filter.h"
#include "core/types.h"
#include "util/check.h"

namespace compass::core {

/// Thrown (once) inside frontend/kernel code when the backend aborted; the
/// thread unwinds through its RAII guards and the Frontend swallows it.
class SimAbortedError : public util::SimError {
 public:
  SimAbortedError() : util::SimError("simulation aborted") {}
};

struct SimContextOptions {
  /// Memory references per event-port post. 1 = the paper's
  /// reference-granularity synchronization.
  int batch_size = 1;
  /// Post a kYield when this much compute accumulates without any memory
  /// reference, so global time advances and interrupts get delivered.
  Cycles yield_threshold = 20'000;
  /// When set (SimConfig::l1_filter), each context owns a RefFilter and
  /// absorbs proven L1 hits without a synchronous port crossing; only
  /// misses, upgrades, yields and control events cross. Absorbed references
  /// still ship with the next crossing and replay through the literal
  /// model, so simulation state stays exact. Supersedes batch_size.
  RefFilterFactory filter_factory;
};

class SimContext {
 public:
  using Options = SimContextOptions;

  /// Routes an OS call either to the OS server (category 1, via the OS
  /// port) or to the backend (category 2) — installed by the OS layer.
  using OscallRouter = std::function<std::int64_t(
      SimContext&, std::uint32_t sysno, std::span<const std::int64_t> args)>;

  /// Invoked when a reply carries interrupt_pending: user-mode contexts
  /// forward a pseudo interrupt request to their OS thread, kernel-mode
  /// contexts run the handler inline (paper §3.2).
  using InterruptHook = std::function<void(SimContext&)>;

  /// Attached context bound to an event port.
  SimContext(EventPort& port, ExecMode mode, Options opts = {});
  /// Detached context: all primitives are no-ops (raw runs).
  SimContext();

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  bool attached() const { return port_ != nullptr; }
  ProcId proc() const { return port_ != nullptr ? port_->proc() : kNoProc; }
  /// The simulated CPU this process was on at its last reply.
  CpuId cpu() const { return cpu_; }

  // ---- instrumentation primitives --------------------------------------

  /// Advance the execution-time value by `c` cycles of computation.
  void compute(Cycles c);
  /// Record a data load of `size` bytes at virtual address `a`.
  void load(Addr a, std::uint32_t size);
  /// Record a data store.
  void store(Addr a, std::uint32_t size);
  /// Record a synchronizing access (atomic RMW); flushes immediately so
  /// lock interleavings are simulated at full fidelity.
  void sync_ref(Addr a, std::uint32_t size);
  /// Post any buffered references now.
  void flush();

  // ---- control events ---------------------------------------------------

  /// Flush, then post one control event and return its reply value.
  std::int64_t control(EventKind kind, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                       std::uint64_t a2 = 0, std::uint64_t a3 = 0);

  void os_enter(std::uint32_t sysno) { control(EventKind::kOsEnter, sysno); }
  void os_exit() { control(EventKind::kOsExit); }
  void irq_enter(std::uint32_t irq) { control(EventKind::kIrqEnter, irq); }
  void irq_exit() { control(EventKind::kIrqExit); }
  /// Sleep on a wait channel until a wakeup arrives (or consume a stored
  /// permit). Returns immediately in detached contexts.
  void block_on(WaitChannel ch) { control(EventKind::kBlock, ch); }
  /// Post `count` wakeups to a channel.
  void wakeup(WaitChannel ch, std::uint64_t count = 1) {
    control(EventKind::kWakeup, ch, count);
  }
  std::int64_t dev_request(std::uint64_t a0, std::uint64_t a1 = 0,
                           std::uint64_t a2 = 0, std::uint64_t a3 = 0) {
    return control(EventKind::kDevRequest, a0, a1, a2, a3);
  }
  std::int64_t backend_call(std::uint64_t a0, std::uint64_t a1 = 0,
                            std::uint64_t a2 = 0, std::uint64_t a3 = 0) {
    return control(EventKind::kBackendCall, a0, a1, a2, a3);
  }

  // ---- OS calls ----------------------------------------------------------

  /// Invoke an OS call through the installed router (the COMPASS OS stub).
  std::int64_t oscall(std::uint32_t sysno, std::span<const std::int64_t> args);
  std::int64_t oscall(std::uint32_t sysno, std::initializer_list<std::int64_t> args) {
    return oscall(sysno, std::span<const std::int64_t>(args.begin(), args.size()));
  }
  void set_oscall_router(OscallRouter router) { router_ = std::move(router); }

  // ---- execution-time / mode management ----------------------------------

  Cycles time() const { return time_; }
  /// Rebase the execution-time value; used when the OS thread picks up this
  /// process's CPU (OS-call handoff) and when handlers start.
  void set_time(Cycles t);
  ExecMode mode() const { return mode_; }
  void set_mode(ExecMode m) { mode_ = m; }

  // ---- simulation ON/OFF switch -------------------------------------------

  bool sim_enabled() const { return attached() && sim_enabled_; }
  void set_sim_enabled(bool on) { sim_enabled_ = on; }

  /// RAII region with instrumentation disabled (signal handlers, static
  /// constructors, uninteresting code).
  class SimOff {
   public:
    explicit SimOff(SimContext& ctx) : ctx_(ctx), prev_(ctx.sim_enabled_) {
      ctx_.sim_enabled_ = false;
    }
    ~SimOff() { ctx_.sim_enabled_ = prev_; }
    SimOff(const SimOff&) = delete;
    SimOff& operator=(const SimOff&) = delete;

   private:
    SimContext& ctx_;
    bool prev_;
  };

  // ---- interrupt delivery --------------------------------------------------

  void set_interrupt_hook(InterruptHook hook) { int_hook_ = std::move(hook); }

  /// RAII region during which the interrupt hook is not invoked (e.g. while
  /// the OS-call stub owns the OS port); a deferred interrupt fires on exit.
  class InterruptDeferral {
   public:
    explicit InterruptDeferral(SimContext& ctx) : ctx_(ctx) { ++ctx_.defer_depth_; }
    ~InterruptDeferral();
    InterruptDeferral(const InterruptDeferral&) = delete;
    InterruptDeferral& operator=(const InterruptDeferral&) = delete;

   private:
    SimContext& ctx_;
  };

  /// True once the backend aborted; all primitives become no-ops.
  bool aborted() const { return aborted_; }

  /// References absorbed by the L1 filter (0 without a filter). Host-side
  /// observability only — deliberately NOT a stats counter, so snapshots
  /// stay bit-identical between filtered live runs and replays.
  std::uint64_t filter_absorbed() const { return absorbed_; }
  /// The context's reference filter, or nullptr (tests/bench observability).
  const RefFilter* filter() const { return filter_.get(); }

 private:
  /// Cap on a purely absorbed batch: bounds buffer growth and how long the
  /// backend (and everyone blocked on it) waits between crossings.
  static constexpr std::size_t kMaxAbsorbedBatch = 4096;

  /// Filtered load/store path: absorb a proven hit locally or cross
  /// immediately. Always consumes the reference.
  void filtered_ref(RefType type, Addr a, std::uint32_t size);
  void append(Event ev);
  Reply post_batch();
  void handle_reply(const Reply& r);
  void maybe_run_interrupt_hook();

  EventPort* port_ = nullptr;
  ExecMode mode_ = ExecMode::kUser;
  Options opts_;
  OscallRouter router_;
  InterruptHook int_hook_;

  Cycles time_ = 0;
  CpuId cpu_ = kNoCpu;
  Cycles compute_since_event_ = 0;
  std::vector<Event> batch_;
  std::unique_ptr<RefFilter> filter_;
  std::uint64_t absorbed_ = 0;
  bool sim_enabled_ = true;
  bool aborted_ = false;
  bool in_int_hook_ = false;
  int defer_depth_ = 0;
  bool deferred_interrupt_ = false;
};

}  // namespace compass::core
