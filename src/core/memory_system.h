// Interfaces the backend simulation loop is parameterized over.
//
// The paper: "The backend simulation process simulates the target shared
// memory multiprocessor architecture including several levels of caches,
// memory buses, memory controllers, coherence controllers, network, and
// physical devices... The simplest backend consists of only a one-level
// cache per processor and the most complex backend models all the other
// system components along with a two-level cache per processor."
//
// core depends only on these interfaces; concrete models live in mem/, os/
// and dev/.
#pragma once

#include <cstdint>
#include <span>

#include "core/event.h"
#include "core/types.h"
#include "util/state_io.h"

namespace compass::core {

/// Target memory-system model: maps a timed reference to a stall latency.
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Simulate one memory reference issued by `proc` on `cpu` at cycle
  /// `ev.time`; returns the stall latency in cycles.
  ///
  /// This is the simulator's per-reference hot path: the backend calls it
  /// once per dispatched memory event, so implementations keep the
  /// steady-state path allocation-free and index-based (software TLBs,
  /// packed cache metadata, sharer bitmasks — see src/mem/). Results must
  /// be deterministic for a given reference stream: the simulated latency
  /// may depend only on prior access() calls, never on host state.
  virtual Cycles access(CpuId cpu, ProcId proc, const Event& ev) = 0;

  /// Notification that the process scheduler switched `cpu` from `from` to
  /// `to` (either may be kNoProc). Cache contents persist — this is what
  /// makes the affinity scheduler matter — but models may account switches.
  virtual void on_context_switch(CpuId cpu, ProcId from, ProcId to) {
    (void)cpu;
    (void)from;
    (void)to;
  }

  /// True when access() calls for DISTINCT CPUs may run concurrently on
  /// different host threads with results identical to any serial order.
  /// Models with shared, order-sensitive state (coherence buses,
  /// directories, LRU stacks, page tables) must return false: they have
  /// zero lookahead — each access may probe or mutate every other CPU's
  /// state — so the sharded backend keeps them on the coordinator lane.
  /// Implementations returning true must make any internal statistics
  /// tallies thread-safe and order-insensitive (sums), published by
  /// flush_stats().
  virtual bool concurrent_access_safe() const { return false; }

  /// Publish any internally buffered statistics into their counters. Called
  /// once by the backend when the run completes (for every worker count, so
  /// counter values stay bit-identical across serial and sharded runs).
  virtual void flush_stats() {}

  // ---- frontend L1 reference filter support (SimConfig::l1_filter) ------
  //
  // The filter protocol is advisory: a model that leaves these defaults in
  // place simply never lets a frontend absorb anything (generation 0, no
  // teaches), which is always correct.

  /// Enable per-access teach recording (called once at setup when the
  /// simulation enables the filter).
  virtual void set_l1_filter(bool enabled) { (void)enabled; }

  /// Monotone coherence generation of `cpu`'s L1: bumped by any remote
  /// invalidate/downgrade/eviction touching that CPU, by context switches
  /// and by TLB shootdowns. A frontend whose mirror generation trails this
  /// value drops the mirror and resyncs lazily from teaches.
  virtual std::uint64_t l1_filter_gen(CpuId cpu) const {
    (void)cpu;
    return 0;
  }

  /// Consume the teach recorded by the most recent access() on `cpu`
  /// (resets the slot so a later batch with no references teaches nothing).
  virtual L1Teach take_l1_teach(CpuId cpu) {
    (void)cpu;
    return {};
  }

  /// Externally force a generation bump (backend mode handoffs: OS/IRQ
  /// entry and exit share the CPU's L1 between two frontend contexts).
  virtual void l1_filter_bump(CpuId cpu) { (void)cpu; }

  // ---- checkpoint/restore (src/ckpt/) -----------------------------------

  /// Serialize the model's complete timing/coherence state (cache tags,
  /// sharer bitmasks, bus/directory horizons, filter generations, buffered
  /// tallies). Must round-trip exactly through ckpt_load: a restored model
  /// must answer every future access() identically to the uninterrupted one.
  virtual void ckpt_save(util::StateSink& sink) const { (void)sink; }

  /// Install state previously produced by ckpt_save on an identically
  /// configured model. Throws util::StateError on shape mismatch.
  virtual void ckpt_load(util::StateSource& src) { (void)src; }
};

/// Handler for kBackendCall events: category-2 OS services modeled inside
/// the backend (shared-memory segment management, page placement, scheduler
/// controls...). Call numbers are defined by the OS layer.
class BackendCallHandler {
 public:
  virtual ~BackendCallHandler() = default;
  virtual std::int64_t backend_call(ProcId proc, CpuId cpu, Cycles now,
                                    std::span<const std::uint64_t, 4> args) = 0;
};

/// Handler for kDevRequest events: starts an asynchronous physical-device
/// operation; returns a request tag. Completion is delivered later as an
/// interrupt via Backend::raise_irq.
class DeviceManager {
 public:
  virtual ~DeviceManager() = default;
  virtual std::int64_t device_request(ProcId proc, CpuId cpu, Cycles now,
                                      std::span<const std::uint64_t, 4> args) = 0;
};

/// Dispatches an interrupt raised on a CPU with no process running to a
/// bottom-half runner thread (paper §3.1: "dedicated threads can be
/// scheduled to simulate bottom half kernel activities").
class IdleIrqDispatcher {
 public:
  virtual ~IdleIrqDispatcher() = default;
  /// Backend has bound bottom-half pseudo-process `bh_proc` to `cpu` and
  /// expects it to start posting (kIrqEnter ... kIrqExit) from cycle `when`.
  virtual void dispatch_idle_irq(CpuId cpu, ProcId bh_proc, Cycles when) = 0;
};

}  // namespace compass::core
