// Interfaces the backend simulation loop is parameterized over.
//
// The paper: "The backend simulation process simulates the target shared
// memory multiprocessor architecture including several levels of caches,
// memory buses, memory controllers, coherence controllers, network, and
// physical devices... The simplest backend consists of only a one-level
// cache per processor and the most complex backend models all the other
// system components along with a two-level cache per processor."
//
// core depends only on these interfaces; concrete models live in mem/, os/
// and dev/.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/event.h"
#include "core/types.h"
#include "util/state_io.h"

namespace compass::core {

// ---- sharded lane B (complex models, see backend.cpp execute_window) -------
//
// Models with shared coherence state (concurrent_access_safe() == false) can
// still fan a window out across workers when the coordinator PROVES, before
// anything mutates, that every delegated reference is a pure own-L1 hit whose
// cache lines are disjoint from every line any serially-executed reference
// could touch. The proof is a read-only CLASSIFY pass producing per-item
// verdicts plus a 64-slice line-hash footprint; the plan then excludes from
// the parallel tier any item whose slices intersect a non-clean item's
// footprint, so a verdict can never be invalidated by the serial remainder.

/// What a proven-clean reference does to its own L1 (and, for the NUMA
/// model, the matching L2 line) when applied. All ops charge the L1-hit
/// latency; none touches the bus, directory, snoop filter or any other
/// CPU's state.
enum class LaneBOp : std::uint8_t {
  kTouch,      ///< LRU-touch the hit way (read hit, or write hit in M)
  kTouchToM,   ///< touch + set the L1 way to Modified (write hit in E)
  kTouchToML2, ///< NUMA: kTouchToM on L1 plus Modified on the L2 way
};

/// One classified reference: the exact latency access() would return and the
/// cache way indices lane_b_apply() needs so it never re-probes tags.
struct LaneBVerdict {
  Cycles lat = 0;
  std::uint32_t way = 0;    ///< flat way index into the CPU's L1 arrays
  std::uint32_t way2 = 0;   ///< NUMA: flat way index into the CPU's L2
  LaneBOp op = LaneBOp::kTouch;
};

/// Classification of one window item's batch (all kMemRef events, in order).
struct LaneBClass {
  /// Every memory reference in the batch is a proven-clean L1 hit.
  bool all_clean = false;
  /// Every referenced line could be resolved without faulting. When false
  /// the footprint is incomplete and the whole window must run serially
  /// (a fault can map an existing shared page, aliasing any line).
  bool lines_known = true;
  /// OR of the 64-slice line-hash bits of every line the batch touches
  /// (complete only when lines_known).
  std::uint64_t slice_mask = 0;
  /// One verdict per leading clean kMemRef; empty unless all_clean.
  std::vector<LaneBVerdict> verdicts;

  void reset() {
    all_clean = false;
    lines_known = true;
    slice_mask = 0;
    verdicts.clear();
  }
};

/// Target memory-system model: maps a timed reference to a stall latency.
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Simulate one memory reference issued by `proc` on `cpu` at cycle
  /// `ev.time`; returns the stall latency in cycles.
  ///
  /// This is the simulator's per-reference hot path: the backend calls it
  /// once per dispatched memory event, so implementations keep the
  /// steady-state path allocation-free and index-based (software TLBs,
  /// packed cache metadata, sharer bitmasks — see src/mem/). Results must
  /// be deterministic for a given reference stream: the simulated latency
  /// may depend only on prior access() calls, never on host state.
  virtual Cycles access(CpuId cpu, ProcId proc, const Event& ev) = 0;

  /// Notification that the process scheduler switched `cpu` from `from` to
  /// `to` (either may be kNoProc). Cache contents persist — this is what
  /// makes the affinity scheduler matter — but models may account switches.
  virtual void on_context_switch(CpuId cpu, ProcId from, ProcId to) {
    (void)cpu;
    (void)from;
    (void)to;
  }

  /// True when access() calls for DISTINCT CPUs may run concurrently on
  /// different host threads with results identical to any serial order.
  /// Models with shared, order-sensitive state (coherence buses,
  /// directories, LRU stacks, page tables) must return false: they have
  /// zero lookahead — each access may probe or mutate every other CPU's
  /// state — so the sharded backend keeps them on the coordinator lane.
  /// Implementations returning true must make any internal statistics
  /// tallies thread-safe and order-insensitive (sums), published by
  /// flush_stats().
  virtual bool concurrent_access_safe() const { return false; }

  /// Publish any internally buffered statistics into their counters. Called
  /// once by the backend when the run completes (for every worker count, so
  /// counter values stay bit-identical across serial and sharded runs).
  virtual void flush_stats() {}

  // ---- sharded lane B (complex models) ----------------------------------
  //
  // Advisory like the filter protocol: a model that keeps the defaults
  // simply never gets a parallel lane-B tier and the backend falls back to
  // the serial loop, which is always correct.

  /// True when lane_b_classify / lane_b_apply implement the clean-hit
  /// protocol above for the model's CURRENT configuration. May vary at
  /// runtime (e.g. the L1 filter's teach recording is serial-order coupled,
  /// so enabling it turns this off).
  virtual bool lane_b_shardable() const { return false; }

  /// Read-only: classify `batch`'s memory references for `cpu`/`proc`
  /// into `out`. MUST NOT mutate any model state (several classify calls
  /// run concurrently on distinct host threads). `out` is reset by the
  /// caller.
  virtual void lane_b_classify(CpuId cpu, ProcId proc,
                               std::span<const Event> batch,
                               LaneBClass& out) const {
    (void)cpu;
    (void)proc;
    (void)batch;
    out.all_clean = false;
    out.lines_known = false;
  }

  /// Apply one previously classified clean reference on `cpu` and return
  /// its latency (== verdict.lat). Touches only the CPU's own cache arrays
  /// at the verdict's way indices plus that CPU's hit counters.
  virtual Cycles lane_b_apply(CpuId cpu, const Event& ev,
                              const LaneBVerdict& v) {
    (void)cpu;
    (void)ev;
    return v.lat;
  }

  // ---- frontend L1 reference filter support (SimConfig::l1_filter) ------
  //
  // The filter protocol is advisory: a model that leaves these defaults in
  // place simply never lets a frontend absorb anything (generation 0, no
  // teaches), which is always correct.

  /// Enable per-access teach recording (called once at setup when the
  /// simulation enables the filter).
  virtual void set_l1_filter(bool enabled) { (void)enabled; }

  /// Monotone coherence generation of `cpu`'s L1: bumped by any remote
  /// invalidate/downgrade/eviction touching that CPU, by context switches
  /// and by TLB shootdowns. A frontend whose mirror generation trails this
  /// value drops the mirror and resyncs lazily from teaches.
  virtual std::uint64_t l1_filter_gen(CpuId cpu) const {
    (void)cpu;
    return 0;
  }

  /// Consume the teach recorded by the most recent access() on `cpu`
  /// (resets the slot so a later batch with no references teaches nothing).
  virtual L1Teach take_l1_teach(CpuId cpu) {
    (void)cpu;
    return {};
  }

  /// Externally force a generation bump (backend mode handoffs: OS/IRQ
  /// entry and exit share the CPU's L1 between two frontend contexts).
  virtual void l1_filter_bump(CpuId cpu) { (void)cpu; }

  // ---- checkpoint/restore (src/ckpt/) -----------------------------------

  /// Serialize the model's complete timing/coherence state (cache tags,
  /// sharer bitmasks, bus/directory horizons, filter generations, buffered
  /// tallies). Must round-trip exactly through ckpt_load: a restored model
  /// must answer every future access() identically to the uninterrupted one.
  virtual void ckpt_save(util::StateSink& sink) const { (void)sink; }

  /// Install state previously produced by ckpt_save on an identically
  /// configured model. Throws util::StateError on shape mismatch.
  virtual void ckpt_load(util::StateSource& src) { (void)src; }
};

/// Handler for kBackendCall events: category-2 OS services modeled inside
/// the backend (shared-memory segment management, page placement, scheduler
/// controls...). Call numbers are defined by the OS layer.
class BackendCallHandler {
 public:
  virtual ~BackendCallHandler() = default;
  virtual std::int64_t backend_call(ProcId proc, CpuId cpu, Cycles now,
                                    std::span<const std::uint64_t, 4> args) = 0;
};

/// Handler for kDevRequest events: starts an asynchronous physical-device
/// operation; returns a request tag. Completion is delivered later as an
/// interrupt via Backend::raise_irq.
class DeviceManager {
 public:
  virtual ~DeviceManager() = default;
  virtual std::int64_t device_request(ProcId proc, CpuId cpu, Cycles now,
                                      std::span<const std::uint64_t, 4> args) = 0;
};

/// Dispatches an interrupt raised on a CPU with no process running to a
/// bottom-half runner thread (paper §3.1: "dedicated threads can be
/// scheduled to simulate bottom half kernel activities").
class IdleIrqDispatcher {
 public:
  virtual ~IdleIrqDispatcher() = default;
  /// Backend has bound bottom-half pseudo-process `bh_proc` to `cpu` and
  /// expects it to start posting (kIrqEnter ... kIrqExit) from cycle `when`.
  virtual void dispatch_idle_irq(CpuId cpu, ProcId bh_proc, Cycles when) = 0;
};

}  // namespace compass::core
