// Fundamental simulator-wide types.
//
// Header-only and dependency-free: every COMPASS library includes this.
#pragma once

#include <cstdint>
#include <string_view>

namespace compass {

/// Simulated time in target-processor clock cycles.
using Cycles = std::uint64_t;

/// Simulated (virtual or physical) memory address.
using Addr = std::uint64_t;

/// Identifier of a simulated application process (frontend).
using ProcId = std::int32_t;

/// Identifier of a simulated (virtual) processor.
using CpuId = std::int32_t;

/// Identifier of a NUMA node in the complex backend.
using NodeId = std::int32_t;

inline constexpr ProcId kNoProc = -1;
inline constexpr CpuId kNoCpu = -1;
inline constexpr Cycles kNeverCycles = ~Cycles{0};

/// The kind of a memory reference, as recorded by the instrumentation code
/// the paper inserts after each memory-reference instruction.
enum class RefType : std::uint8_t {
  kLoad,   ///< data load
  kStore,  ///< data store
  kSync,   ///< synchronizing access (atomic RMW / lock primitive)
};

/// Which execution mode generated a memory reference / burned cycles.
/// Mirrors the paper's Table 1 columns: user, kernel, interrupt handlers.
enum class ExecMode : std::uint8_t {
  kUser,       ///< application process code
  kKernel,     ///< OS-server kernel service code (category 1 OS calls)
  kInterrupt,  ///< interrupt handler / bottom-half code
  kIdle,       ///< no process scheduled on the CPU
};

inline constexpr std::string_view to_string(ExecMode m) {
  switch (m) {
    case ExecMode::kUser: return "user";
    case ExecMode::kKernel: return "kernel";
    case ExecMode::kInterrupt: return "interrupt";
    case ExecMode::kIdle: return "idle";
  }
  return "?";
}

inline constexpr std::string_view to_string(RefType t) {
  switch (t) {
    case RefType::kLoad: return "load";
    case RefType::kStore: return "store";
    case RefType::kSync: return "sync";
  }
  return "?";
}

}  // namespace compass
