// The backend simulation process (paper §2).
//
// The backend owns global simulated time, the global event scheduler, the
// process-to-CPU mapping, blocking/wakeup channels, interrupt delivery and
// the per-mode time accounting. Its main loop:
//
//   1. assign free CPUs to ready processes (category-2 process scheduler);
//   2. wait until every running frontend has a pending batch;
//   3. run device/internal tasks scheduled before the earliest pending
//      event;
//   4. take the batch of the frontend with the smallest execution time,
//      simulate each reference through the MemorySystem, and reply with the
//      cycle at which the frontend may resume.
//
// Control events (OS entry/exit, blocking, wakeups, device requests,
// interrupts, lifecycle) are dispatched to the configured hooks.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/backend_shard.h"
#include "core/communicator.h"
#include "core/config.h"
#include "core/event.h"
#include "core/memory_system.h"
#include "core/proc_sched.h"
#include "core/sched_perturb.h"
#include "core/scheduler.h"
#include "core/trace_sink.h"
#include "stats/counters.h"
#include "stats/time_breakdown.h"

namespace compass::util {
class StateSink;
}  // namespace compass::util

namespace compass::core {

class CkptHook;

/// Lifecycle state of a simulated process as seen by the backend.
enum class RunState : std::uint8_t {
  kStarting,  ///< registered; its kStart event is awaited
  kRunning,   ///< on a CPU, generating events
  kReady,     ///< wants a CPU, none assigned
  kBlocked,   ///< waiting on a channel; reply withheld
  kParked,    ///< bottom-half pseudo-process waiting for interrupt work
  kExited,
};

class Backend {
 public:
  struct Hooks {
    MemorySystem* memsys = nullptr;           ///< required
    BackendCallHandler* backend_calls = nullptr;
    DeviceManager* devices = nullptr;
    IdleIrqDispatcher* idle_irq = nullptr;
    /// Optional event-trace recorder tap (src/trace/). Observes process
    /// registration, channel seeds, every dispatched batch and preemption.
    TraceSink* trace = nullptr;
    /// Optional scheduler perturbation (src/fault/): consulted at every
    /// slice grant for the effective preemption quantum.
    SchedPerturber* sched_perturb = nullptr;
    /// Optional checkpoint/restore hook (src/ckpt/): consulted at every
    /// pick-min dispatch point; drives snapshot creation and restore warp.
    CkptHook* ckpt = nullptr;
  };

  /// `registry` lets the embedder share one stats registry across all
  /// models; the backend owns one internally when null.
  Backend(const SimConfig& cfg, Communicator& comm, Hooks hooks,
          stats::StatsRegistry* registry = nullptr);

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  // ---- setup (before run) ---------------------------------------------

  /// Register a simulated application process; creates its event port.
  ProcId add_process(const std::string& name);

  /// Register a bottom-half pseudo-process (one per CPU is typical). It is
  /// parked until an interrupt is dispatched to it.
  ProcId add_bottom_half(const std::string& name);

  /// Register a kernel daemon process (e.g. the network-input daemon): it
  /// behaves like an application process but is excluded from the
  /// simulation-termination condition; its port is closed at shutdown.
  ProcId add_daemon(const std::string& name);

  /// Seed a wait channel with permits before the run starts. Used to create
  /// kernel mutexes/semaphores: a mutex is a channel with one permit, lock
  /// is kBlock (granted in deterministic event order), unlock is kWakeup.
  void init_channel_permits(WaitChannel channel, std::uint64_t permits);

  // ---- main loop --------------------------------------------------------

  /// Run the simulation until every application process has exited.
  /// Throws SimError on deadlock (non-exited processes but no possible
  /// progress).
  void run();

  // ---- services for tasks/handlers (backend thread only) ---------------

  /// Raise an interrupt on `cpu`: queues the descriptor, sets the request
  /// flag and, if the CPU is idle, dispatches a bottom-half runner.
  void raise_irq(CpuId cpu, IrqDesc desc);

  /// Post wakeups to a channel from backend context (scheduler tasks,
  /// category-2 handlers) — e.g. timer expirations.
  void wakeup_channel(WaitChannel channel, std::uint64_t count = 1);

  /// Pick the CPU that should service a device interrupt: the first idle
  /// CPU if any (cheap to steal), else round-robin over all CPUs.
  CpuId pick_irq_cpu();

  GlobalScheduler& scheduler() { return sched_queue_; }
  Communicator& communicator() { return comm_; }
  const SimConfig& config() const { return cfg_; }
  Cycles now() const { return now_; }
  /// The configured taps, for code outside the run loop (the kernel's
  /// interrupt handler loop records its pops through the checkpoint hook).
  CkptHook* ckpt_hook() const { return hooks_.ckpt; }
  TraceSink* trace_sink() const { return hooks_.trace; }

  stats::TimeBreakdown& time_breakdown() { return breakdown_; }
  const stats::TimeBreakdown& time_breakdown() const { return breakdown_; }
  stats::StatsRegistry& stats() { return *stats_; }

  /// Multi-item windows executed by the sharded loop (0 under workers=1).
  /// Host-side observability only — deliberately NOT a stats counter, so
  /// snapshots stay bit-identical across worker counts.
  std::uint64_t windows_executed() const { return windows_executed_; }
  /// Windows where the sharded lane-B plan engaged (complex models: the
  /// classify pass proved at least one item parallel-applicable), and the
  /// total items applied in the parallel tier. Host-side only, like
  /// windows_executed().
  std::uint64_t laneb_windows() const { return laneb_windows_; }
  std::uint64_t laneb_parallel_items() const { return laneb_parallel_items_; }
  ProcessScheduler& proc_sched() { return proc_sched_; }

  RunState state_of(ProcId proc) const;
  ExecMode mode_of(ProcId proc) const;
  /// Human-readable dump of all process states (deadlock diagnostics).
  std::string dump_states() const;

  std::size_t num_procs() const { return procs_.size(); }
  /// Serialize the backend's own dispatch state (proc records, CPU slices,
  /// block/permit tables, clock, per-port pending peeks, per-CPU interrupt
  /// queues) for checkpoint verification. Only callable at a quiescent
  /// dispatch point — every running frontend parked with its batch posted.
  void ckpt_dump_state(util::StateSink& sink) const;

 private:
  struct ProcInfo {
    std::string name;
    RunState state = RunState::kStarting;
    ExecMode mode = ExecMode::kUser;
    ExecMode saved_mode = ExecMode::kUser;  ///< mode to restore at kIrqExit
    CpuId cpu = kNoCpu;
    Cycles last_time = 0;       ///< completion cycle of its latest event
    bool reply_deferred = false;///< a taken batch awaits a deferred reply
    bool is_bottom_half = false;
    bool is_daemon = false;
    WaitChannel channel = 0;    ///< channel it is blocked on (kBlocked)
    std::int64_t wake_retval = 0;
  };

  struct CpuInfo {
    Cycles busy_until = 0;      ///< last cycle this CPU was doing work
    Cycles slice_start = 0;     ///< when the current proc got the CPU
    Cycles quantum = 0;         ///< effective quantum of the current slice
  };

  ProcId register_proc(const std::string& name, TraceSink::ProcKind kind);
  void run_loop();
  void rebuild_running();
  void schedule_ready_procs();
  void run_one_task();
  void dispatch(ProcId proc);
  void handle_control(ProcId proc, const Event& ev, EventPort& port);
  void handle_wakeup(WaitChannel channel, std::uint64_t count);
  void maybe_dispatch_idle_irq(CpuId cpu);
  void dispatch_idle_irq_to(CpuId cpu, ProcId proc);
  bool maybe_preempt(ProcId proc, Cycles event_time);
  // ---- self-serve warp walk (sharded restore; see DESIGN.md) ------------
  /// One spine-driven loop-top step shared by both run loops. Fills
  /// (proc, t, is_data) either from the recorded spine or, once the spine
  /// is exhausted (or no self-serve restore is active), from a live
  /// wait_all_pending + pick_min. Returns true when the pick came from the
  /// spine.
  bool next_dispatch(ProcId& proc, Cycles& t, bool& is_data);
  /// Consume one self-served data pick: preemption check, trace recording
  /// from the hub's batch copy, clock/proc bookkeeping from the warp log.
  /// The reply itself never touches the port — the frontend served it.
  void warp_self_serve_data(ProcId proc, Cycles t);
  /// Spin until `proc`'s control batch lands on its port (the frontends
  /// run decoupled from the walk), applying any stashed rebase before the
  /// caller dispatches it. Throws on a poisoned or stalled warp.
  void warp_await_control(ProcId proc);
  // ---- sharded (windowed) dispatch; see DESIGN.md -----------------------
  void run_loop_windowed(int workers);
  /// Maximal safe prefix of the pending batches in pick-min order; fills
  /// window_. `first` is the pick-min process (cross-checked in Debug).
  std::size_t form_window(ProcId first);
  /// Side-effect-free replica of maybe_preempt's trigger predicate.
  bool would_preempt(ProcId proc, Cycles event_time) const;
  void execute_window(ShardPool& pool, bool concurrent_model);
  /// Sharded lane B (complex models): classify the window read-only in
  /// parallel, plan the parallel/serial split by line-slice footprints, then
  /// apply proven-clean items on workers concurrently with the coordinator's
  /// serial remainder. Returns false (window untouched beyond the read-only
  /// classify) when the window must take the serial lane-B tier instead.
  bool lane_b_window(ShardPool& pool);
  /// Worker/coordinator entry, dispatched on item.op: classify (no reply),
  /// full execution or verdict apply (+ reply), or bare reply delivery.
  void run_window_item(WindowItem& item);
  /// The data-batch computation shared by the serial path and both window
  /// lanes. With `acc == nullptr` it updates global time and counters
  /// directly (exact serial behavior); with an item it tallies into the
  /// item for an order-insensitive merge at the window barrier.
  Reply process_data(ProcId proc, std::span<const Event> batch,
                     WindowItem* acc);
  void charge(CpuId cpu, ExecMode mode, Cycles cycles);
  void account_idle_until(CpuId cpu, Cycles when);
  bool all_apps_exited() const;
  ProcInfo& info(ProcId proc);
  const ProcInfo& info(ProcId proc) const;
  bool interrupt_pending_for(ProcId proc) const;

  const SimConfig cfg_;
  Communicator& comm_;
  Hooks hooks_;

  GlobalScheduler sched_queue_;
  ProcessScheduler proc_sched_;
  stats::TimeBreakdown breakdown_;
  stats::StatsRegistry own_stats_;
  stats::StatsRegistry* stats_;

  Cycles now_ = 0;
  std::vector<ProcInfo> procs_;
  std::vector<CpuInfo> cpus_;
  std::multimap<WaitChannel, ProcId> blocked_;
  std::map<WaitChannel, std::uint64_t> permits_;
  std::vector<ProcId> running_;  // cache of procs to wait on / pick among
  bool running_dirty_ = true;
  CpuId irq_rr_ = 0;

  // Hot-path counters resolved once (the registry lookup is a map walk).
  stats::Counter* ctr_mem_refs_ = nullptr;
  stats::Counter* ctr_batches_ = nullptr;

  // Windowed-dispatch scratch, reused across iterations (coordinator only).
  std::vector<WindowItem> window_;
  std::uint64_t windows_executed_ = 0;
  std::vector<std::pair<Cycles, ProcId>> window_cand_;

  // Sharded lane-B state (coordinator only). laneb_cls_ is per-window-slot
  // classification scratch; the penalty/backoff pair paces the classify
  // attempts down when windows keep planning zero parallel items.
  std::vector<LaneBClass> laneb_cls_;
  /// Debug lockstep: execute planned-parallel items with the literal model
  /// on the coordinator and assert each latency equals its verdict. Default
  /// on in Debug builds; COMPASS_LANE_B_LOCKSTEP=0/1 overrides.
  bool laneb_lockstep_ = false;
  std::uint32_t laneb_penalty_ = 0;
  std::uint32_t laneb_backoff_ = 0;
  std::uint64_t laneb_windows_ = 0;
  std::uint64_t laneb_parallel_items_ = 0;

  // Self-serve warp walk: rebases recorded for picks not yet reached. A
  // data pick folds its stash into the traced batch copy; a control pick
  // (and the final live picks at the warp horizon) applies it to the real
  // port so pending times and charge_lead_in match the create run.
  std::map<ProcId, Cycles> warp_rebase_stash_;
  // Invocation count of maybe_dispatch_idle_irq. Identical across a create
  // run and its restore walk (same deterministic call sequence), so it keys
  // the recorded idle-irq dispatch decisions during a self-serve warp.
  std::uint64_t idle_irq_calls_ = 0;
};

}  // namespace compass::core
