// Scheduler-perturbation hook.
//
// The backend consults this interface (when installed via Backend::Hooks)
// every time a process is granted a fresh time slice, letting a fault /
// fuzzing plane jitter the effective preemption quantum to explore
// interleavings. Like the other backend hooks the call happens on the
// backend thread, in deterministic dispatch order, so implementations that
// draw from a seeded RNG stream stay bit-reproducible — and replayable,
// because a trace replayer drives the backend through the identical grant
// sequence.
#pragma once

#include "core/types.h"

namespace compass::core {

class SchedPerturber {
 public:
  virtual ~SchedPerturber() = default;

  /// Called when `proc` is granted a time slice on `cpu` starting at
  /// `start`; returns the quantum to enforce for this slice (usually
  /// `base_quantum`, possibly jittered). Must return a nonzero value.
  virtual Cycles slice_quantum(ProcId proc, CpuId cpu, Cycles start,
                               Cycles base_quantum) = 0;
};

}  // namespace compass::core
