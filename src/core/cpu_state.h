// The "CPU-states" data structure of the paper (§3.2).
//
// One record per simulated processor, held in shared memory (here: process
// memory shared between the backend thread, frontend threads and OS-server
// threads). Each CPU has an "interrupt request" flag and an "interrupt
// enable" bit; the backend sets the request flag when a device model raises
// an interrupt, and frontends check it on return from the event-port IPC.
// A small descriptor queue carries *which* interrupts are pending so the
// handler dispatch loop knows what to service.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "core/types.h"
#include "util/state_io.h"

namespace compass::core {

/// Interrupt source numbers. Kernel code registers a handler per Irq.
enum class Irq : std::uint32_t {
  kTimer = 0,     ///< interval timer tick
  kDisk = 1,      ///< disk request completion
  kEthernetRx = 2,///< ethernet frame received
  kEthernetTx = 3,///< ethernet transmit complete
  kIpi = 4,       ///< inter-processor interrupt (resched)
  kCount,
};

inline constexpr std::size_t kNumIrqs = static_cast<std::size_t>(Irq::kCount);

/// Descriptor of one pending interrupt: which source, plus a device-chosen
/// payload (typically the tag of the completed request).
struct IrqDesc {
  Irq irq = Irq::kTimer;
  std::uint64_t payload = 0;
  Cycles raised_at = 0;
};

/// Per-CPU shared state. The request flag is an atomic so frontends can poll
/// it cheaply without taking the descriptor-queue mutex.
class CpuState {
 public:
  /// Backend: queue a descriptor and set the request flag.
  void raise(const IrqDesc& d) {
    {
      std::lock_guard lock(mu_);
      pending_.push_back(d);
    }
    int_request_.store(true, std::memory_order_release);
  }

  /// Handler dispatch loop: pop the next pending interrupt. Clears the
  /// request flag when the queue drains.
  std::optional<IrqDesc> pop() {
    std::lock_guard lock(mu_);
    if (pending_.empty()) {
      int_request_.store(false, std::memory_order_release);
      return std::nullopt;
    }
    IrqDesc d = pending_.front();
    pending_.pop_front();
    if (pending_.empty()) int_request_.store(false, std::memory_order_release);
    return d;
  }

  bool interrupt_requested() const {
    return int_request_.load(std::memory_order_acquire);
  }

  /// Kernel critical sections disable interrupt delivery (AIX spl-style).
  void set_interrupts_enabled(bool on) {
    int_enable_.store(on, std::memory_order_release);
  }
  bool interrupts_enabled() const {
    return int_enable_.load(std::memory_order_acquire);
  }

  /// True when an interrupt should be delivered right now.
  bool deliverable() const {
    return interrupt_requested() && interrupts_enabled();
  }

  std::size_t pending_count() const {
    std::lock_guard lock(mu_);
    return pending_.size();
  }

  /// Serialize flags + pending descriptors for checkpoint verification.
  void ckpt_dump(util::StateSink& sink) const {
    std::lock_guard lock(mu_);
    sink.u8(int_request_.load(std::memory_order_acquire) ? 1 : 0);
    sink.u8(int_enable_.load(std::memory_order_acquire) ? 1 : 0);
    sink.varint(pending_.size());
    for (const IrqDesc& d : pending_) {
      sink.varint(static_cast<std::uint64_t>(d.irq));
      sink.varint(d.payload);
      sink.varint(d.raised_at);
    }
  }

 private:
  mutable std::mutex mu_;
  std::deque<IrqDesc> pending_;
  std::atomic<bool> int_request_{false};
  std::atomic<bool> int_enable_{true};
};

}  // namespace compass::core
