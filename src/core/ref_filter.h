// Frontend-side reference-filter interface (SimConfig::l1_filter).
//
// A RefFilter lets SimContext absorb memory references whose latency it can
// prove locally — the overwhelming majority are L1 hits — so that only
// misses, upgrades, yields and control events pay a synchronous event-port
// crossing. Absorbed references are still appended to the outgoing batch
// and replayed through the literal memory model when the batch eventually
// crosses, so every model counter, LRU stamp and coherence action stays
// exactly as in the unfiltered run; the filter only *predicts* the latency
// so the frontend can run ahead instead of blocking per batch_size events.
//
// Exactness contract: try_absorb may return a latency only when the literal
// model is guaranteed to charge exactly that latency for the reference when
// it is replayed. Implementations maintain the guarantee with a mirror of
// proven-resident lines grown one line per reply ("teach") and dropped
// whenever the reply's coherence generation moves (see mem/l1_filter.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/event.h"
#include "core/types.h"

namespace compass::core {

class RefFilter {
 public:
  /// Sentinel: the reference cannot be absorbed and must cross the port.
  static constexpr Cycles kNoAbsorb = kNeverCycles;

  virtual ~RefFilter() = default;

  /// Exact latency of this reference if provable locally, else kNoAbsorb.
  virtual Cycles try_absorb(RefType type, Addr addr) = 0;

  /// Observe a reply (every reply the owning SimContext receives): adopt
  /// the new CPU/generation, drop the mirror when either moved, and apply
  /// the piggybacked teach when still current.
  virtual void on_reply(const Reply& r) = 0;

  /// Mirror generation at this instant — stamped into absorbed events so
  /// Debug builds can cross-check predictions against the literal model
  /// without tripping on granularity-induced divergence.
  virtual std::uint64_t generation() const = 0;
};

/// Factory installed through SimContext::Options; each context owns one
/// filter instance (mirrors are private per frontend).
using RefFilterFactory = std::function<std::unique_ptr<RefFilter>()>;

}  // namespace compass::core
