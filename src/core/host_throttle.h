// Host-parallelism throttle for the slowdown experiments (paper §5).
//
// Table 2 measures COMPASS on a uniprocessor host where frontends, the OS
// server and the backend time-share one CPU; Table 3 measures the same run
// on a 4-way SMP where they overlap. HostThrottle emulates an N-way host on
// any machine: every simulation thread must hold one of N permits while
// executing and releases it whenever it blocks. With permits == 0 the
// throttle is disabled (use all host CPUs).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/check.h"

namespace compass::core {

class HostThrottle {
 public:
  /// permits == 0 disables throttling entirely.
  explicit HostThrottle(int permits = 0) : permits_(permits), free_(permits) {
    COMPASS_CHECK(permits >= 0);
  }

  bool enabled() const { return permits_ > 0; }

  void acquire() {
    if (!enabled()) return;
    std::unique_lock lock(mu_);
    ++waiters_;
    cv_.wait(lock, [this] { return free_ > 0; });
    --waiters_;
    --free_;
  }

  void release() {
    if (!enabled()) return;
    bool wake;
    {
      std::lock_guard lock(mu_);
      ++free_;
      COMPASS_CHECK(free_ <= permits_);
      // Skip the notify syscall when no thread is waiting for a permit —
      // release/acquire brackets every event-port round trip, so this is a
      // hot path in the throttled slowdown experiments.
      wake = waiters_ > 0;
    }
    if (wake) cv_.notify_one();
  }

  /// RAII: hold a permit for a scope (thread entry points).
  class Hold {
   public:
    explicit Hold(HostThrottle& t) : t_(t) { t_.acquire(); }
    ~Hold() { t_.release(); }
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;

   private:
    HostThrottle& t_;
  };

  /// RAII: give up the permit across a blocking wait, reacquire after.
  class Yield {
   public:
    explicit Yield(HostThrottle& t) : t_(t) { t_.release(); }
    ~Yield() { t_.acquire(); }
    Yield(const Yield&) = delete;
    Yield& operator=(const Yield&) = delete;

   private:
    HostThrottle& t_;
  };

 private:
  const int permits_;
  std::mutex mu_;
  std::condition_variable cv_;
  int free_;
  int waiters_ = 0;
};

}  // namespace compass::core
