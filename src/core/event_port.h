// The event port: the shared-memory mailbox through which a frontend
// process sends memory-reference events to the backend (paper Figure 2).
//
// Protocol (one batch in flight per port, frontend blocks until replied):
//
//   frontend: post_and_wait(batch)  ──►  [Pending]
//   backend:  pick-min sees pending_time(); take_batch()        ──► [Taken]
//   backend:  ... simulate ... reply(r)                         ──► [Replied]
//   frontend: wakes, returns r                                  ──► [Empty]
//
// The backend may *defer* the reply after take_batch() (blocking OS calls,
// processes waiting for a CPU): the frontend simply stays blocked — exactly
// the paper's "which prevents the frontend process from proceeding".
//
// A batch is either (a) any number of kMemRef/kYield events — the
// interleaving-granularity knob; the paper's basic-block granularity
// corresponds to flushing at every reference — or (b) exactly one control
// event. SimContext enforces this; the backend checks it.
//
// Hot-path design (this is the per-batch cost of the whole simulator):
//
//  * Zero-copy posting: the port stores a span over the frontend's batch
//    buffer. The frontend is blocked for the entire time the span is live,
//    so the memory is stable; no per-post allocation or copy happens. Only
//    the rebase path copies, into a buffer reused across rebases.
//  * Spin-then-block reply wait: at high event rates the backend replies
//    within the frontend's adaptive spin window, and reply() is then a pair
//    of plain stores — no mutex, no condvar, no syscalls on either side.
//    The frontend publishes `frontend_blocked_` (Dekker-style, seq_cst on
//    both sides) before sleeping so reply() can never miss a blocked waiter.
//  * The pending-min index (Communicator::PendingIndex) is updated on every
//    state transition, so the backend never scans ports to find this one.
//  * Reply payload (core::Reply): besides the resume time, data replies carry
//    the L1-filter protocol fields when SimConfig::l1_filter is on — the
//    per-CPU coherence generation `l1_gen` and an `L1Teach` describing what
//    the batch's final reference did to this CPU's L1. The frontend's
//    RefFilter consumes both to keep its private mirror exact, letting it
//    absorb proven L1 hits locally instead of crossing this port for them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <span>
#include <vector>

#include "core/adaptive_spin.h"
#include "core/event.h"
#include "core/host_throttle.h"
#include "core/types.h"
#include "util/check.h"

namespace compass::core {

class Communicator;

class EventPort {
 public:
  EventPort(ProcId proc, Communicator& comm);

  EventPort(const EventPort&) = delete;
  EventPort& operator=(const EventPort&) = delete;

  ProcId proc() const { return proc_; }

  // ---- frontend side -------------------------------------------------

  /// Post a batch and block until the backend replies. The batch must be
  /// nonempty and events must be in nondecreasing time order. The batch
  /// memory must stay valid until this call returns (it always does: the
  /// caller owns the buffer and is blocked here meanwhile).
  Reply post_and_wait(std::span<const Event> batch);

  // ---- backend side --------------------------------------------------

  /// True when a batch is posted and not yet taken. Lock-free; pairs with
  /// the release store in post_and_wait.
  bool has_pending() const {
    return state_.load(std::memory_order_acquire) == State::kPending;
  }

  /// Issue time of the first event of the pending batch, including any
  /// preemption rebase applied by the backend. Only meaningful when
  /// has_pending().
  Cycles pending_time() const {
    return pending_time_.load(std::memory_order_acquire);
  }

  /// Lightweight summary of a pending batch, used by the sharded backend's
  /// window formation without claiming the batch.
  struct PendingPeek {
    Cycles first_time = 0;  ///< == pending_time()
    Cycles last_time = 0;   ///< issue time of the last event (rebase folded)
    EventKind kind = EventKind::kMemRef;  ///< kind of the first event
  };

  /// Backend: inspect the pending batch without taking it. Safe without the
  /// port mutex: the frontend published the batch before the kPending
  /// release store and stays blocked while it is in flight, and
  /// rebase_delta_ is backend-thread-private. Precondition: has_pending().
  PendingPeek peek_pending() const;

  /// Backend: claim the pending batch for processing. Returns the events
  /// with the preemption rebase delta already folded into their times.
  std::span<const Event> take_batch();

  /// Backend: rebase the pending batch so its first event issues at
  /// `new_base` (>= original time). Used when a preempted process is
  /// rescheduled later: its already-posted references issue after the
  /// context switch, not at their original cycle.
  void rebase_pending(Cycles new_base);

  /// Backend: complete the in-flight batch (taken or still pending —
  /// replying to a pending batch is a protocol error).
  void reply(const Reply& r);

  /// Backend shutdown path: any in-flight batch is answered with an aborted
  /// reply and all future posts return aborted immediately, letting frontend
  /// threads unwind after a backend failure instead of hanging.
  void close();

 private:
  enum class State { kEmpty, kPending, kTaken, kReplied };

  /// Consume the published reply and reset the port. Requires the frontend
  /// to have observed state_ == kReplied (acquire).
  Reply consume_reply();

  const ProcId proc_;
  Communicator& comm_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::atomic<State> state_{State::kEmpty};
  std::atomic<Cycles> pending_time_{0};
  /// Dekker flag: true while the frontend is (about to be) asleep on cv_.
  std::atomic<bool> frontend_blocked_{false};

  std::span<const Event> posted_;  // frontend's buffer; valid while in flight
  std::vector<Event> rebased_;     // reused scratch for the rebase path
  Cycles rebase_delta_ = 0;        // backend-only; applied in take_batch
  Reply reply_{};
  AdaptiveSpin spin_;  // frontend-thread-private; policy from the Communicator
};

}  // namespace compass::core
