// The global event scheduler of the backend simulation process (paper §2):
// a time-ordered queue of tasks. "When the event information is received by
// the backend, the backend creates a task and inserts it in the global event
// scheduler with a time stamp indicating at which global simulation cycle
// the task is to be dispatched. ... Functions may cause additional tasks to
// be generated and placed in the global event queue."
//
// Only the backend thread touches the scheduler; no locking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"
#include "util/check.h"

namespace compass::core {

class GlobalScheduler {
 public:
  using Task = std::function<void()>;

  /// Insert a task to run at absolute simulated cycle `when`. Tasks with
  /// equal timestamps run in insertion order.
  void schedule_at(Cycles when, Task task) {
    COMPASS_CHECK(task != nullptr);
    queue_.push(Entry{when, seq_++, std::move(task)});
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Timestamp of the earliest task; kNeverCycles when empty.
  Cycles next_time() const {
    return queue_.empty() ? kNeverCycles : queue_.top().when;
  }

  /// Pop and return the earliest task. Precondition: !empty().
  std::pair<Cycles, Task> pop_next() {
    COMPASS_CHECK(!queue_.empty());
    // priority_queue::top() is const; the task is moved out via const_cast,
    // which is safe because the entry is popped immediately after.
    auto& top = const_cast<Entry&>(queue_.top());
    std::pair<Cycles, Task> result{top.when, std::move(top.task)};
    queue_.pop();
    return result;
  }

 private:
  struct Entry {
    Cycles when;
    std::uint64_t seq;
    Task task;
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace compass::core
