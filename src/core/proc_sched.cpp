#include "core/proc_sched.h"

#include <algorithm>

#include "util/check.h"

namespace compass::core {

namespace {
const std::set<CpuId> kEmptyHistory;
}

ProcessScheduler::ProcessScheduler(const SimConfig& cfg)
    : cfg_(cfg),
      on_cpu_(static_cast<std::size_t>(cfg.num_cpus), kNoProc),
      reserved_(static_cast<std::size_t>(cfg.num_cpus), false) {}

void ProcessScheduler::add_ready(ProcId proc) {
  COMPASS_CHECK_MSG(!cpu_of_.contains(proc),
                    "proc " << proc << " is already on a CPU");
  COMPASS_CHECK_MSG(std::find(ready_.begin(), ready_.end(), proc) == ready_.end(),
                    "proc " << proc << " is already ready");
  ready_.push_back(proc);
}

void ProcessScheduler::release_cpu(ProcId proc) {
  const auto it = cpu_of_.find(proc);
  COMPASS_CHECK_MSG(it != cpu_of_.end(), "proc " << proc << " holds no CPU");
  on_cpu_[static_cast<std::size_t>(it->second)] = kNoProc;
  cpu_of_.erase(it);
}

void ProcessScheduler::reserve_cpu(CpuId cpu) {
  COMPASS_CHECK(cpu >= 0 && cpu < cfg_.num_cpus);
  COMPASS_CHECK_MSG(!reserved_[static_cast<std::size_t>(cpu)],
                    "cpu " << cpu << " already reserved");
  COMPASS_CHECK_MSG(on_cpu_[static_cast<std::size_t>(cpu)] == kNoProc,
                    "cpu " << cpu << " is not idle");
  reserved_[static_cast<std::size_t>(cpu)] = true;
}

void ProcessScheduler::unreserve_cpu(CpuId cpu) {
  COMPASS_CHECK(cpu >= 0 && cpu < cfg_.num_cpus);
  COMPASS_CHECK(reserved_[static_cast<std::size_t>(cpu)]);
  reserved_[static_cast<std::size_t>(cpu)] = false;
}

void ProcessScheduler::remove(ProcId proc) {
  if (cpu_of_.contains(proc)) release_cpu(proc);
  const auto it = std::find(ready_.begin(), ready_.end(), proc);
  if (it != ready_.end()) ready_.erase(it);
  last_cpu_.erase(proc);
  history_.erase(proc);
}

bool ProcessScheduler::cpu_free(CpuId cpu) const {
  const auto i = static_cast<std::size_t>(cpu);
  return on_cpu_[i] == kNoProc && !reserved_[i];
}

CpuId ProcessScheduler::pick_cpu_fcfs() const {
  for (CpuId c = 0; c < cfg_.num_cpus; ++c)
    if (cpu_free(c)) return c;
  return kNoCpu;
}

CpuId ProcessScheduler::pick_cpu_affinity(ProcId proc) const {
  // 1. The CPU it was using before it blocked.
  if (const auto it = last_cpu_.find(proc); it != last_cpu_.end())
    if (cpu_free(it->second)) return it->second;
  // 2. Any CPU it has used before.
  const auto hist = history_.find(proc);
  if (hist != history_.end()) {
    for (const CpuId c : hist->second)
      if (cpu_free(c)) return c;
    // 3. A CPU on the same node as a CPU it used before.
    for (const CpuId used : hist->second) {
      const NodeId node = cfg_.node_of_cpu(used);
      for (CpuId c = 0; c < cfg_.num_cpus; ++c)
        if (cfg_.node_of_cpu(c) == node && cpu_free(c)) return c;
    }
  }
  // 4. Fall back to the first free CPU.
  return pick_cpu_fcfs();
}

std::vector<std::pair<ProcId, CpuId>> ProcessScheduler::schedule() {
  std::vector<std::pair<ProcId, CpuId>> out;
  while (!ready_.empty()) {
    const ProcId proc = ready_.front();
    const CpuId cpu = cfg_.sched_policy == SchedPolicy::kAffinity
                          ? pick_cpu_affinity(proc)
                          : pick_cpu_fcfs();
    if (cpu == kNoCpu) break;
    ready_.pop_front();
    on_cpu_[static_cast<std::size_t>(cpu)] = proc;
    cpu_of_[proc] = cpu;
    last_cpu_[proc] = cpu;
    history_[proc].insert(cpu);
    out.emplace_back(proc, cpu);
  }
  return out;
}

CpuId ProcessScheduler::cpu_of(ProcId proc) const {
  const auto it = cpu_of_.find(proc);
  return it == cpu_of_.end() ? kNoCpu : it->second;
}

ProcId ProcessScheduler::proc_on(CpuId cpu) const {
  COMPASS_CHECK(cpu >= 0 && cpu < cfg_.num_cpus);
  return on_cpu_[static_cast<std::size_t>(cpu)];
}

const std::set<CpuId>& ProcessScheduler::history(ProcId proc) const {
  const auto it = history_.find(proc);
  return it == history_.end() ? kEmptyHistory : it->second;
}

}  // namespace compass::core
