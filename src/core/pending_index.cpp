#include "core/pending_index.h"

#include <bit>

#include "util/check.h"

namespace compass::core {

PendingIndex::Slot& PendingIndex::slot_of(ProcId proc) {
  COMPASS_CHECK_MSG(proc >= 0 && static_cast<std::size_t>(proc) < slots_.size(),
                    "pending index: no slot for proc " << proc);
  return slots_[static_cast<std::size_t>(proc)];
}

std::int32_t PendingIndex::better(std::int32_t a, std::int32_t b) const {
  if (!contends(a)) return contends(b) ? b : kNone;
  if (!contends(b)) return a;
  const Slot& sa = slots_[static_cast<std::size_t>(a)];
  const Slot& sb = slots_[static_cast<std::size_t>(b)];
  if (sa.time != sb.time) return sa.time < sb.time ? a : b;
  return a < b ? a : b;  // deterministic tie-break by ProcId
}

void PendingIndex::update_path(std::size_t slot) {
  for (std::size_t n = (cap_ + slot) >> 1; n >= 1; n >>= 1)
    win_[n] = better(win_[2 * n], win_[2 * n + 1]);
}

void PendingIndex::rebuild() {
  win_.assign(2 * cap_, kNone);
  for (std::size_t i = 0; i < slots_.size(); ++i)
    win_[cap_ + i] = static_cast<std::int32_t>(i);
  for (std::size_t n = cap_ - 1; n >= 1; --n)
    win_[n] = better(win_[2 * n], win_[2 * n + 1]);
}

void PendingIndex::add_slot(ProcId proc) {
  COMPASS_CHECK_MSG(proc >= 0, "pending index: bad proc id " << proc);
  std::lock_guard lock(mu_);
  const auto idx = static_cast<std::size_t>(proc);
  if (idx < slots_.size()) return;
  const std::size_t old_size = slots_.size();
  slots_.resize(idx + 1);
  if (slots_.size() > cap_) {
    cap_ = std::bit_ceil(slots_.size());
    rebuild();
  } else {
    // Fresh slots are inactive, so installing their leaves cannot change any
    // interior winner; no path update needed.
    for (std::size_t i = old_size; i <= idx; ++i)
      win_[cap_ + i] = static_cast<std::int32_t>(i);
  }
}

void PendingIndex::set_active(std::span<const ProcId> procs) {
  std::lock_guard lock(mu_);
  for (Slot& s : slots_) s.active = false;
  std::int64_t pending = 0;
  for (const ProcId p : procs) {
    Slot& s = slot_of(p);
    COMPASS_CHECK_MSG(!s.active, "duplicate proc " << p << " in running set");
    s.active = true;
    if (s.pending) ++pending;
  }
  // The only reader of these counters outside mu_ is the backend thread,
  // which is also the sole caller of set_active — so the two stores need no
  // ordering between themselves, only mu_ against concurrent posters.
  active_count_.store(static_cast<std::int64_t>(procs.size()),
                      std::memory_order_seq_cst);
  pending_active_.store(pending, std::memory_order_seq_cst);
  if (cap_ > 0) rebuild();
}

void PendingIndex::on_post(ProcId proc, Cycles time) {
  std::lock_guard lock(mu_);
  Slot& s = slot_of(proc);
  COMPASS_CHECK_MSG(!s.pending, "double post in pending index for proc " << proc);
  s.pending = true;
  s.time = time;
  if (s.active) pending_active_.fetch_add(1, std::memory_order_seq_cst);
  update_path(static_cast<std::size_t>(proc));
}

void PendingIndex::on_rebase(ProcId proc, Cycles time) {
  std::lock_guard lock(mu_);
  Slot& s = slot_of(proc);
  COMPASS_CHECK_MSG(s.pending, "rebase in pending index with no pending batch");
  s.time = time;
  update_path(static_cast<std::size_t>(proc));
}

void PendingIndex::on_clear(ProcId proc) {
  std::lock_guard lock(mu_);
  Slot& s = slot_of(proc);
  if (!s.pending) return;
  s.pending = false;
  if (s.active) pending_active_.fetch_sub(1, std::memory_order_seq_cst);
  update_path(static_cast<std::size_t>(proc));
}

ProcId PendingIndex::min_proc() const {
  std::lock_guard lock(mu_);
  if (cap_ == 0) return kNoProc;
  const std::int32_t w = win_[1];
  return contends(w) ? static_cast<ProcId>(w) : kNoProc;
}

}  // namespace compass::core
