// WarpHub: the frontend-side interception point for self-serve warp restore.
//
// During a port-paced restore warp every logged event still crosses the
// event port, so restore speed tracks live speed on control-heavy
// workloads. A WarpHub installed on the Communicator short-circuits that:
// EventPort::post_and_wait offers every batch to the hub first, and the hub
// either serves the reply locally from the frontend's warp-log shard (data
// batches — no port crossing at all) or orders the post against the shared
// sequence ticket and lets it fall through to the port (control batches,
// which carry live arguments the backend must see).
//
// The hub is owned by the checkpoint restorer (src/ckpt/warp_shard.h); core
// sees only this interface so EventPort stays free of checkpoint headers.
#pragma once

#include <optional>
#include <span>

#include "core/cpu_state.h"
#include "core/event.h"
#include "core/types.h"

namespace compass::core {

class WarpHub {
 public:
  virtual ~WarpHub() = default;

  /// Offer a batch about to be posted by `proc`. Returns true when the hub
  /// served the reply itself (filled `out`; the caller must NOT post).
  /// Returns false when the batch must cross the port normally — either it
  /// is a control batch (the hub has already sequenced the post) or the
  /// proc's shard is exhausted (warp horizon: live dispatch resumes).
  /// On an aborted warp the hub returns true with `out.aborted` set.
  virtual bool warp_post(ProcId proc, std::span<const Event> batch,
                         Reply& out) = 0;

  /// Intercept an interrupt-queue pop by `proc`'s handler loop on `cpu`.
  /// During the warp the live CpuState queues are fed by the decoupled
  /// backend walk, so pops replay from the proc's shard instead: returns
  /// true with `out` holding the recorded descriptor, or true with an empty
  /// `out` when the create run's pop at this point came up dry (handler
  /// loop exit). Returns false only for procs the hub does not manage —
  /// the caller then pops the live queue as usual.
  virtual bool warp_pop(ProcId proc, CpuId cpu,
                        std::optional<IrqDesc>& out) = 0;

  /// Poison the sequence ticket: every current and future warp_post waiter
  /// returns an aborted reply instead of blocking. Called on the backend
  /// shutdown path (Communicator::close_all_ports).
  virtual void abort_waiters() = 0;
};

}  // namespace compass::core
