// Simulation-kernel configuration.
#pragma once

#include <string>

#include "core/types.h"
#include "util/check.h"

namespace compass::core {

/// Which process-scheduling policy the backend uses (paper §3.3.2).
enum class SchedPolicy {
  kFcfs,      ///< default: first available processor
  kAffinity,  ///< optimized: prefer a processor (or node) used before
};

struct SimConfig {
  /// Number of simulated processors.
  int num_cpus = 4;
  /// Number of NUMA nodes (CPUs are split evenly across nodes); the
  /// affinity scheduler uses the node mapping, and the complex backend
  /// assigns memory homes per node.
  int num_nodes = 1;
  /// Host-parallelism limit for slowdown experiments; 0 = unlimited.
  int host_cpus = 0;

  /// Events per event-port post. 1 reproduces the paper's reference-level
  /// synchronization; larger values coarsen interleaving granularity (the
  /// interleave ablation knob).
  int batch_size = 1;
  /// Post a kYield after this much uninterrupted compute so the backend can
  /// advance global time and deliver interrupts during long CPU bursts.
  Cycles yield_threshold = 20'000;

  // Fixed-cost model for mode transitions (cycles).
  Cycles syscall_entry_cycles = 200;
  Cycles syscall_exit_cycles = 100;
  Cycles irq_entry_cycles = 150;
  Cycles irq_exit_cycles = 80;
  Cycles context_switch_cycles = 800;

  // Process scheduling (paper §3.3.2).
  SchedPolicy sched_policy = SchedPolicy::kFcfs;
  /// Preemptive scheduling: a process is preempted when it has held its CPU
  /// for `quantum` cycles and another process is ready. "The pre-emptive
  /// scheduler can be used with the default or optimized scheduler."
  bool preemptive = false;
  Cycles quantum = 1'000'000;

  /// Target-processor clock, used to convert cycles to seconds in reports.
  double cpu_mhz = 133.0;  // the paper's 133 MHz PowerPC

  void validate() const {
    COMPASS_CHECK_MSG(num_cpus > 0, "num_cpus must be positive");
    COMPASS_CHECK_MSG(num_nodes > 0 && num_cpus % num_nodes == 0,
                      "num_cpus must divide evenly across num_nodes");
    COMPASS_CHECK_MSG(batch_size >= 1, "batch_size must be >= 1");
    COMPASS_CHECK_MSG(!preemptive || quantum > 0, "preemptive needs a quantum");
  }

  NodeId node_of_cpu(CpuId cpu) const {
    return static_cast<NodeId>(cpu / (num_cpus / num_nodes));
  }

  double cycles_to_seconds(Cycles c) const {
    return static_cast<double>(c) / (cpu_mhz * 1e6);
  }
};

}  // namespace compass::core
