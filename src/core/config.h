// Simulation-kernel configuration.
#pragma once

#include <algorithm>
#include <string>
#include <thread>

#include "core/adaptive_spin.h"
#include "core/types.h"
#include "util/check.h"

namespace compass::core {

/// Which process-scheduling policy the backend uses (paper §3.3.2).
enum class SchedPolicy {
  kFcfs,      ///< default: first available processor
  kAffinity,  ///< optimized: prefer a processor (or node) used before
};

struct SimConfig {
  /// Number of simulated processors.
  int num_cpus = 4;
  /// Number of NUMA nodes (CPUs are split evenly across nodes); the
  /// affinity scheduler uses the node mapping, and the complex backend
  /// assigns memory homes per node.
  int num_nodes = 1;
  /// Host-parallelism limit for slowdown experiments; 0 = unlimited.
  int host_cpus = 0;
  /// Host worker threads for the backend dispatch loop. 1 (default) is the
  /// fully serial loop; W > 1 shards provably independent batch windows
  /// across W lanes (coordinator + W-1 workers) with bit-identical results
  /// for any W; 0 picks a conservative value from the host core count.
  /// Deliberately NOT part of the trace-config fingerprint: it is a host
  /// execution strategy, not a simulated-machine parameter.
  int backend_workers = 1;

  /// Events per event-port post. 1 reproduces the paper's reference-level
  /// synchronization; larger values coarsen interleaving granularity (the
  /// interleave ablation knob).
  int batch_size = 1;
  /// Frontend-resident L1 reference filter: each frontend keeps a private
  /// mirror of proven-resident L1 lines and absorbs proven hits locally,
  /// crossing the event port only on misses, upgrades, yields and control
  /// events (the absorbed run is shipped with the next crossing and replayed
  /// through the literal model, so all model state and counters stay exact).
  /// Coarsens interleaving granularity the same way batch_size does.
  bool l1_filter = false;
  /// Post a kYield after this much uninterrupted compute so the backend can
  /// advance global time and deliver interrupts during long CPU bursts.
  Cycles yield_threshold = 20'000;

  // Fixed-cost model for mode transitions (cycles).
  Cycles syscall_entry_cycles = 200;
  Cycles syscall_exit_cycles = 100;
  Cycles irq_entry_cycles = 150;
  Cycles irq_exit_cycles = 80;
  Cycles context_switch_cycles = 800;

  // Process scheduling (paper §3.3.2).
  SchedPolicy sched_policy = SchedPolicy::kFcfs;
  /// Preemptive scheduling: a process is preempted when it has held its CPU
  /// for `quantum` cycles and another process is ready. "The pre-emptive
  /// scheduler can be used with the default or optimized scheduler."
  bool preemptive = false;
  Cycles quantum = 1'000'000;

  /// Target-processor clock, used to convert cycles to seconds in reports.
  double cpu_mhz = 133.0;  // the paper's 133 MHz PowerPC

  // Adaptive spin-then-block thresholds (core/adaptive_spin.h). Host
  // execution strategy like backend_workers: deliberately NOT part of the
  // trace-config fingerprint, so tuning them on a multi-core runner never
  // invalidates recorded traces or checkpoints. The frontend budget floor
  // is pinned at 1 (probe 0 is always free).
  int spin_frontend_max_probes = 512;
  int spin_frontend_pause_probes = 512;
  int spin_backend_min_probes = 4;
  int spin_backend_max_probes = 64;
  int spin_backend_pause_probes = 16;

  void validate() const {
    COMPASS_CHECK_MSG(num_cpus > 0, "num_cpus must be positive");
    COMPASS_CHECK_MSG(num_nodes > 0 && num_cpus % num_nodes == 0,
                      "num_cpus must divide evenly across num_nodes");
    COMPASS_CHECK_MSG(batch_size >= 1, "batch_size must be >= 1");
    COMPASS_CHECK_MSG(!preemptive || quantum > 0, "preemptive needs a quantum");
    COMPASS_CHECK_MSG(backend_workers >= 0 && backend_workers <= 256,
                      "backend_workers must be in [0, 256]");
    COMPASS_CHECK_MSG(spin_frontend_max_probes >= 1 &&
                          spin_frontend_pause_probes >= 0,
                      "frontend spin thresholds out of range");
    COMPASS_CHECK_MSG(spin_backend_min_probes >= 1 &&
                          spin_backend_max_probes >= spin_backend_min_probes &&
                          spin_backend_pause_probes >= 0,
                      "backend spin thresholds out of range");
  }

  /// Spin policy for frontend reply waits (EventPort).
  AdaptiveSpin::Policy frontend_spin_policy() const {
    return AdaptiveSpin::Policy{1, spin_frontend_max_probes,
                                spin_frontend_pause_probes, false};
  }

  /// Spin policy for backend waits (Communicator all-pending, ShardPool
  /// rings and window barrier).
  AdaptiveSpin::Policy backend_spin_policy() const {
    return AdaptiveSpin::Policy{spin_backend_min_probes,
                                spin_backend_max_probes,
                                spin_backend_pause_probes, true};
  }

  /// Resolved worker count: `backend_workers`, or an automatic pick when 0
  /// (half the host cores, clamped to [1, 8] — the window protocol rarely
  /// exposes more parallelism than that).
  int effective_backend_workers() const {
    if (backend_workers != 0) return backend_workers;
    const int hc = static_cast<int>(std::thread::hardware_concurrency());
    return std::clamp(hc / 2, 1, 8);
  }

  NodeId node_of_cpu(CpuId cpu) const {
    return static_cast<NodeId>(cpu / (num_cpus / num_nodes));
  }

  double cycles_to_seconds(Cycles c) const {
    return static_cast<double>(c) / (cpu_mhz * 1e6);
  }
};

}  // namespace compass::core
