// TraceSink: observation interface for the event-trace record subsystem.
//
// The backend (and the device/kernel layers it drives) announce every input
// that determines a simulation run: registered processes, channel permit
// seeds, every dispatched event batch (in backend consumption order, i.e.
// the exact total order pick_min produced), preemption rebases, interrupt
// descriptor pops performed by frontend-hosted kernel code, staged ethernet
// tx frame sizes, and wire rx stimuli. A sink that persists these can
// re-drive the backend later without any live frontend processes
// (src/trace/).
//
// Threading: on_batch/on_preempt/on_channel_seed/on_add_proc fire on the
// backend (or setup) thread; on_irq_pop fires on whichever host thread runs
// the popping kernel code; on_tx_frame/on_rx_stimulus fire on the backend
// thread (device hooks). Implementations must be internally synchronized.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/cpu_state.h"
#include "core/event.h"
#include "core/types.h"

namespace compass::core {

class TraceSink {
 public:
  /// How a process was registered with the backend; replay must re-register
  /// identically so ProcIds and the termination condition match.
  enum class ProcKind : std::uint8_t {
    kProcess = 0,
    kBottomHalf = 1,
    kDaemon = 2,
  };

  virtual ~TraceSink() = default;

  /// A process was registered (setup phase, before Backend::run()).
  virtual void on_add_proc(ProcId, const std::string&, ProcKind) {}

  /// A wait channel was seeded with permits (kernel mutex creation).
  virtual void on_channel_seed(WaitChannel, std::uint64_t) {}

  /// The backend took `batch` from `proc`'s port for processing. `base` is
  /// the process's time base at this moment (its last event-completion
  /// cycle, which equals the resume_time of the reply the frontend last
  /// rebased to) — so `batch[0].time - base` is the frontend-side time
  /// advance and every event time is reconstructible from reply times.
  virtual void on_batch(ProcId, Cycles /*base*/, std::span<const Event>) {}

  /// The backend preempted `proc` before consuming its pending batch whose
  /// first event was stamped `event_time`; the batch will be rebased and
  /// re-dispatched later. Fired before any state mutation, so `base` is
  /// still the time base the frontend stamped the batch against.
  virtual void on_preempt(ProcId, Cycles /*base*/, Cycles /*event_time*/) {}

  /// Frontend-hosted kernel code popped one interrupt descriptor from
  /// `cpu`'s queue (between two of `proc`'s posts).
  virtual void on_irq_pop(ProcId, CpuId) {}

  /// `proc`'s pending kDevRequest/kEthTx references a staged tx frame of
  /// `bytes` bytes (staged-frame ids are host-side handles; the size is the
  /// simulation-relevant payload).
  virtual void on_tx_frame(ProcId, std::uint64_t /*bytes*/) {}

  /// The wire scheduled an rx frame of `bytes` bytes to be injected and
  /// raise kEthernetRx at absolute cycle `when`.
  virtual void on_rx_stimulus(Cycles /*when*/, std::uint64_t /*bytes*/) {}
};

}  // namespace compass::core
