#include "core/event_port.h"

#include "core/communicator.h"

namespace compass::core {

EventPort::EventPort(ProcId proc, Communicator& comm)
    : proc_(proc), comm_(comm) {}

Reply EventPort::post_and_wait(std::span<const Event> batch) {
  COMPASS_CHECK_MSG(!batch.empty(), "empty batch posted by proc " << proc_);
  for (std::size_t i = 1; i < batch.size(); ++i)
    COMPASS_CHECK_MSG(batch[i].time >= batch[i - 1].time,
                      "event times must be nondecreasing (proc " << proc_ << ")");
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      Reply r;
      r.aborted = true;
      return r;
    }
    COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kEmpty,
                      "double post on event port of proc " << proc_);
    batch_.assign(batch.begin(), batch.end());
    rebase_delta_ = 0;
    pending_time_.store(batch_.front().time, std::memory_order_release);
    state_.store(State::kPending, std::memory_order_release);
  }
  comm_.notify_backend();

  // Give up the host-CPU permit while blocked waiting for the reply; this is
  // the point where, on the paper's SMP host, the backend runs in parallel.
  comm_.throttle().release();
  Reply r;
  {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] {
      return state_.load(std::memory_order_relaxed) == State::kReplied;
    });
    r = reply_;
    state_.store(State::kEmpty, std::memory_order_release);
  }
  comm_.throttle().acquire();
  return r;
}

std::span<const Event> EventPort::take_batch() {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kPending,
                    "take_batch with no pending batch (proc " << proc_ << ")");
  std::span<const Event> result;
  if (rebase_delta_ != 0) {
    rebased_.assign(batch_.begin(), batch_.end());
    for (auto& e : rebased_) e.time += rebase_delta_;
    result = rebased_;
  } else {
    result = batch_;
  }
  state_.store(State::kTaken, std::memory_order_release);
  return result;
}

void EventPort::rebase_pending(Cycles new_base) {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kPending,
                    "rebase with no pending batch (proc " << proc_ << ")");
  const Cycles orig = batch_.front().time;
  COMPASS_CHECK_MSG(new_base >= orig + rebase_delta_,
                    "rebase must move the batch forward in time");
  rebase_delta_ = new_base - orig;
  pending_time_.store(new_base, std::memory_order_release);
}

void EventPort::reply(const Reply& r) {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kTaken,
                    "reply to a batch that was not taken (proc " << proc_ << ")");
  {
    std::lock_guard lock(mu_);
    reply_ = r;
    state_.store(State::kReplied, std::memory_order_release);
  }
  cv_.notify_one();
}

void EventPort::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    const State s = state_.load(std::memory_order_acquire);
    if (s == State::kPending || s == State::kTaken) {
      reply_ = Reply{};
      reply_.aborted = true;
      state_.store(State::kReplied, std::memory_order_release);
    }
  }
  cv_.notify_one();
}

}  // namespace compass::core
