#include "core/event_port.h"

#include "core/communicator.h"

namespace compass::core {

EventPort::EventPort(ProcId proc, Communicator& comm)
    : proc_(proc), comm_(comm), spin_(comm.frontend_spin_policy()) {}

Reply EventPort::consume_reply() {
  // reply_ was written before the kReplied release store; the caller's
  // acquire load of state_ makes it visible here. After the kEmpty store the
  // backend will not touch the port again until the next post publishes.
  const Reply r = reply_;
  state_.store(State::kEmpty, std::memory_order_release);
  return r;
}

Reply EventPort::post_and_wait(std::span<const Event> batch) {
  COMPASS_CHECK_MSG(!batch.empty(), "empty batch posted by proc " << proc_);
  for (std::size_t i = 1; i < batch.size(); ++i)
    COMPASS_CHECK_MSG(batch[i].time >= batch[i - 1].time,
                      "event times must be nondecreasing (proc " << proc_ << ")");
  // Self-serve warp restore: while a hub is installed, data batches are
  // answered straight from this proc's warp-log shard (no port crossing)
  // and control posts are sequenced against the shared ticket before
  // falling through to the normal path below.
  if (WarpHub* hub = comm_.warp_hub()) {
    Reply r;
    if (hub->warp_post(proc_, batch, r)) return r;
  }
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      Reply r;
      r.aborted = true;
      return r;
    }
    COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kEmpty,
                      "double post on event port of proc " << proc_);
    posted_ = batch;  // zero-copy: we stay blocked while the backend reads it
    rebase_delta_ = 0;
    pending_time_.store(batch.front().time, std::memory_order_release);
    state_.store(State::kPending, std::memory_order_release);
    // Publish to the pending-min index while still holding mu_, so a
    // concurrent close() can never interleave between the state store and
    // the index update and leave the two views inconsistent.
    comm_.on_port_post(proc_, batch.front().time);
  }

  // Fast path: at high event rates the backend replies within the spin
  // window and no thread pays a sleep/wake round trip. Never spin when the
  // host throttle is on: spinning would hold a host-CPU permit that the
  // backend needs to produce the very reply we are waiting for.
  if (!comm_.throttle().enabled()) {
    if (spin_.wait([this] {
          return state_.load(std::memory_order_acquire) == State::kReplied;
        }))
      return consume_reply();
  }

  // Slow path: give up the host-CPU permit while blocked waiting for the
  // reply; this is the point where, on the paper's SMP host, the backend
  // runs in parallel.
  comm_.throttle().release();
  Reply r;
  {
    std::unique_lock lock(mu_);
    frontend_blocked_.store(true, std::memory_order_seq_cst);
    cv_.wait(lock, [this] {
      // Acquire pairs with reply()'s kReplied store: reply() writes reply_
      // without holding mu_, so the mutex alone does not order that write
      // against consume_reply()'s read below.
      return state_.load(std::memory_order_acquire) == State::kReplied;
    });
    frontend_blocked_.store(false, std::memory_order_relaxed);
    r = consume_reply();
  }
  comm_.throttle().acquire();
  return r;
}

EventPort::PendingPeek EventPort::peek_pending() const {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kPending,
                    "peek with no pending batch (proc " << proc_ << ")");
  return PendingPeek{pending_time_.load(std::memory_order_acquire),
                     posted_.back().time + rebase_delta_,
                     posted_.front().kind};
}

std::span<const Event> EventPort::take_batch() {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kPending,
                    "take_batch with no pending batch (proc " << proc_ << ")");
  std::span<const Event> result;
  if (rebase_delta_ != 0) {
    rebased_.assign(posted_.begin(), posted_.end());
    for (auto& e : rebased_) e.time += rebase_delta_;
    result = rebased_;
  } else {
    result = posted_;
  }
  state_.store(State::kTaken, std::memory_order_release);
  comm_.on_port_clear(proc_);
  return result;
}

void EventPort::rebase_pending(Cycles new_base) {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kPending,
                    "rebase with no pending batch (proc " << proc_ << ")");
  const Cycles orig = posted_.front().time;
  COMPASS_CHECK_MSG(new_base >= orig + rebase_delta_,
                    "rebase must move the batch forward in time");
  rebase_delta_ = new_base - orig;
  pending_time_.store(new_base, std::memory_order_release);
  comm_.on_port_rebase(proc_, new_base);
}

void EventPort::reply(const Reply& r) {
  COMPASS_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kTaken,
                    "reply to a batch that was not taken (proc " << proc_ << ")");
  reply_ = r;
  state_.store(State::kReplied, std::memory_order_seq_cst);
  // Dekker handshake with post_and_wait's slow path: the frontend stores
  // frontend_blocked_ (seq_cst) before re-checking state_ under mu_; we
  // store state_ (seq_cst) before loading frontend_blocked_. At least one
  // side therefore observes the other — a spinning frontend sees kReplied,
  // and a blocked frontend is woken below. Locking mu_ (empty critical
  // section) before notifying closes the check-then-sleep window.
  if (frontend_blocked_.load(std::memory_order_seq_cst)) {
    { std::lock_guard lock(mu_); }
    cv_.notify_one();
  }
}

void EventPort::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    const State s = state_.load(std::memory_order_acquire);
    if (s == State::kPending || s == State::kTaken) {
      if (s == State::kPending) comm_.on_port_clear(proc_);
      reply_ = Reply{};
      reply_.aborted = true;
      state_.store(State::kReplied, std::memory_order_seq_cst);
    }
  }
  // A spinning frontend observes kReplied directly; a blocked one needs the
  // notify. The mu_ critical section above already ordered us against any
  // frontend between its blocked-flag store and its sleep.
  cv_.notify_one();
}

}  // namespace compass::core
