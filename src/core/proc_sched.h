// The backend process scheduler (paper §3.3.2) — a category-2 OS function.
//
// "This process scheduler keeps a mapping of processes and their associated
// processors. If there are more processes than processors in the system,
// then certain processes will not be assigned a processor, and that process
// will be blocked. ... Processors become available as the processes assigned
// to them execute blocking OS calls."
//
// Two placement policies:
//  * FCFS ("default"): a process is assigned the first available processor.
//  * Affinity ("optimized"): prefer the processor the process was using
//    before it blocked, then any processor it has used before, then a
//    processor on the same node as one it used before, then any free one.
// Preemption is driven by the backend (quantum expiry) and composes with
// either policy, as in the paper.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "core/config.h"
#include "core/types.h"
#include "util/state_io.h"

namespace compass::core {

class ProcessScheduler {
 public:
  ProcessScheduler(const SimConfig& cfg);

  /// A process wants a CPU (new, unblocked, or preempted). FIFO order is
  /// preserved across schedule() calls.
  void add_ready(ProcId proc);

  /// Free the CPU held by `proc` (blocking call, preemption, or exit).
  void release_cpu(ProcId proc);

  /// Reserve `cpu` for bottom-half interrupt processing; it will not be
  /// handed to ready processes until released.
  void reserve_cpu(CpuId cpu);
  void unreserve_cpu(CpuId cpu);

  /// Remove an exited process from all bookkeeping.
  void remove(ProcId proc);

  /// Assign free CPUs to ready processes according to the policy. Returns
  /// the new (proc, cpu) pairs in assignment order.
  std::vector<std::pair<ProcId, CpuId>> schedule();

  CpuId cpu_of(ProcId proc) const;
  ProcId proc_on(CpuId cpu) const;
  bool has_ready() const { return !ready_.empty(); }
  std::size_t ready_count() const { return ready_.size(); }
  bool cpu_free(CpuId cpu) const;

  /// CPUs `proc` has ever run on (affinity history).
  const std::set<CpuId>& history(ProcId proc) const;

  /// Serialize the full mapping state for checkpoint verification.
  void ckpt_dump(util::StateSink& sink) const {
    sink.varint(on_cpu_.size());
    for (const ProcId p : on_cpu_) sink.svarint(p);
    for (const bool r : reserved_) sink.u8(r ? 1 : 0);
    sink.varint(ready_.size());
    for (const ProcId p : ready_) sink.svarint(p);
    sink.varint(cpu_of_.size());
    for (const auto& [p, c] : cpu_of_) {
      sink.svarint(p);
      sink.svarint(c);
    }
    sink.varint(last_cpu_.size());
    for (const auto& [p, c] : last_cpu_) {
      sink.svarint(p);
      sink.svarint(c);
    }
    sink.varint(history_.size());
    for (const auto& [p, cpus] : history_) {
      sink.svarint(p);
      sink.varint(cpus.size());
      for (const CpuId c : cpus) sink.svarint(c);
    }
  }

 private:
  CpuId pick_cpu_fcfs() const;
  CpuId pick_cpu_affinity(ProcId proc) const;

  const SimConfig cfg_;
  std::vector<ProcId> on_cpu_;       // per-CPU: running proc or kNoProc
  std::vector<bool> reserved_;       // per-CPU: held by bottom half
  std::deque<ProcId> ready_;
  std::map<ProcId, CpuId> cpu_of_;   // only procs currently on a CPU
  std::map<ProcId, CpuId> last_cpu_; // most recent CPU of each proc
  std::map<ProcId, std::set<CpuId>> history_;
};

}  // namespace compass::core
