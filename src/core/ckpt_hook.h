// Checkpoint/restore hook consulted by the Backend at its deterministic
// pick-min dispatch point.
//
// The hook sees every (pending_time, proc) pick before the batch is
// consumed — a quiescent point: all running frontends are parked in port
// waits with their batches fully posted, no window is in flight, and the
// backend's own state is between dispatches. Create-mode implementations
// snapshot there; restore-mode implementations fast-forward ("warp") to the
// snapshot cycle by running all host code live while skipping the memory
// model, feeding the model-dependent reply fields from a recorded log.
// src/ckpt/ provides the implementation; core sees only this interface.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cpu_state.h"
#include "core/event.h"
#include "core/types.h"
#include "util/check.h"

namespace compass::core {

class Backend;

class CkptHook {
 public:
  virtual ~CkptHook() = default;

  /// True while a restorer is fast-forwarding to the snapshot cycle. The
  /// backend then dispatches serially (no windows) and routes data batches
  /// through warp_data_reply() instead of the memory model.
  virtual bool warping() const = 0;

  /// Windowed backends must not form a window containing a batch at or past
  /// this cycle; the hook needs the pick-min trigger to fire serially there.
  /// Returns kNoCycle-like max() when no boundary is pending.
  virtual Cycles window_boundary() const = 0;

  /// Called at every pick-min point, before the batch at cycle `t` is
  /// consumed. Create mode snapshots here (and lets the run continue);
  /// restore mode installs state when the warp reaches the snapshot cycle.
  /// Returns true when the backend should stop the run loop (run_for end).
  virtual bool at_dispatch_point(Backend& backend, Cycles t) = 0;

  /// Record taps, invoked on every reply while not warping. `now_after` is
  /// the backend's global clock after the dispatch folded in (a running max,
  /// identical across serial and windowed execution orders).
  virtual void on_data_reply(ProcId proc, Cycles now_after, const Reply& r) = 0;
  virtual void on_control_reply(ProcId proc, const Reply& r) = 0;
  virtual void on_deferred_reply(ProcId proc, const Reply& r) = 0;

  /// Warp feeds: fill the model-dependent reply fields from the log. Any
  /// divergence from the recorded stream (wrong proc, wrong record kind)
  /// throws — restored host code must replay the create run exactly.
  virtual void warp_data_reply(ProcId proc, Cycles& now_after, Reply& r) = 0;
  virtual void warp_control_reply(ProcId proc, Reply& r) = 0;
  virtual void warp_deferred_reply(ProcId proc, Reply& r) = 0;

  // ---- self-serve warp (sharded restore) ----------------------------------
  //
  // Defaulted: only the sharded CheckpointWriter/CheckpointRestorer pair
  // implements these; other hook implementations (bench stop hooks, the
  // port-paced restore path) keep working unchanged.

  /// Create-mode spine taps, fired on the backend thread in loop order:
  /// every pick-min observation that survived the dispatch-point trigger
  /// (including ones that lose to a scheduler task and are re-observed),
  /// and every pending-batch rebase performed when a preempted process is
  /// rescheduled. Together they let a restore walk replay the run loop's
  /// decisions without any port input.
  virtual void on_pick(ProcId /*proc*/, Cycles /*t*/, bool /*is_data*/) {}
  virtual void on_rebase(ProcId /*proc*/, Cycles /*base*/) {}
  /// A control batch was taken from `proc`'s port (assigns the post its
  /// slot in the warp sequence space, shared with data replies).
  virtual void on_control_taken(ProcId /*proc*/) {}
  /// `proc`'s interrupt handler loop popped `d` from `cpu`'s queue. Fires on
  /// the popping host thread, between two of the proc's event posts — the
  /// only create-mode tap not on the backend thread.
  virtual void on_irq_pop(ProcId /*proc*/, CpuId /*cpu*/,
                          const IrqDesc& /*d*/) {}
  /// The backend dispatched an idle-CPU interrupt to parked bottom half
  /// `proc`. `call` is the index of this maybe_dispatch_idle_irq invocation
  /// since the run started: both the create run and a restore walk see the
  /// identical invocation sequence, so the index pins the recorded decision
  /// to its exact call site.
  virtual void on_idle_dispatch(std::uint64_t /*call*/, ProcId /*proc*/) {}

  /// True while a restore warp should be driven from the recorded spine
  /// instead of wait_all_pending + pick_min (implies warping()).
  virtual bool self_serve() const { return false; }
  /// Next recorded pick-min observation; false once the spine is exhausted
  /// (the loop then falls back to live picks for the final, posted batches).
  virtual bool next_pick(ProcId& /*proc*/, Cycles& /*t*/, bool& /*is_data*/) {
    return false;
  }
  /// Consume the recorded rebase for `proc` (self-serve counterpart of the
  /// live rebase in schedule_ready_procs) and return the new base cycle.
  virtual Cycles warp_rebase(ProcId /*proc*/);
  /// Self-serve counterpart of the live idle-irq dispatch decision: the
  /// interrupt-request flags are cleared by frontend pops on their own host
  /// clock during the warp, so the live guards are racy — the walk replays
  /// the create run's decision instead. True (with `proc` set to the chosen
  /// bottom half) when invocation `call` dispatched at create time.
  virtual bool warp_idle_pick(std::uint64_t /*call*/, ProcId& /*proc*/);
  /// Self-serve counterpart of CpuState::deliverable() for reply
  /// construction: the live queue never drains during the warp (pops replay
  /// from the shards), so the walk reconstructs the create run's view — the
  /// raises so far minus the pops already drained from the spine.
  virtual bool warp_interrupt_pending(CpuId /*cpu*/);
  /// True once the warp was poisoned (a frontend diverged or aborted); the
  /// backend's port spins consult this to fail instead of hanging.
  virtual bool warp_failed() const { return false; }
  /// Blocking: the batch copy the self-serving frontend recorded for
  /// `proc`'s next data pick, for trace recording in dispatch order. Only
  /// called when a trace sink is attached.
  virtual std::vector<Event> warp_take_trace_batch(ProcId /*proc*/);
};

inline Cycles CkptHook::warp_rebase(ProcId) {
  COMPASS_CHECK_MSG(false, "this checkpoint hook cannot drive a self-serve warp");
  return 0;
}

inline bool CkptHook::warp_idle_pick(std::uint64_t, ProcId&) {
  COMPASS_CHECK_MSG(false, "this checkpoint hook cannot drive a self-serve warp");
  return false;
}

inline bool CkptHook::warp_interrupt_pending(CpuId) {
  COMPASS_CHECK_MSG(false, "this checkpoint hook cannot drive a self-serve warp");
  return false;
}

inline std::vector<Event> CkptHook::warp_take_trace_batch(ProcId) {
  COMPASS_CHECK_MSG(false, "this checkpoint hook cannot drive a self-serve warp");
  return {};
}

}  // namespace compass::core
