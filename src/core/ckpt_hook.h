// Checkpoint/restore hook consulted by the Backend at its deterministic
// pick-min dispatch point.
//
// The hook sees every (pending_time, proc) pick before the batch is
// consumed — a quiescent point: all running frontends are parked in port
// waits with their batches fully posted, no window is in flight, and the
// backend's own state is between dispatches. Create-mode implementations
// snapshot there; restore-mode implementations fast-forward ("warp") to the
// snapshot cycle by running all host code live while skipping the memory
// model, feeding the model-dependent reply fields from a recorded log.
// src/ckpt/ provides the implementation; core sees only this interface.
#pragma once

#include "core/types.h"

namespace compass::core {

class Backend;
struct Reply;

class CkptHook {
 public:
  virtual ~CkptHook() = default;

  /// True while a restorer is fast-forwarding to the snapshot cycle. The
  /// backend then dispatches serially (no windows) and routes data batches
  /// through warp_data_reply() instead of the memory model.
  virtual bool warping() const = 0;

  /// Windowed backends must not form a window containing a batch at or past
  /// this cycle; the hook needs the pick-min trigger to fire serially there.
  /// Returns kNoCycle-like max() when no boundary is pending.
  virtual Cycles window_boundary() const = 0;

  /// Called at every pick-min point, before the batch at cycle `t` is
  /// consumed. Create mode snapshots here (and lets the run continue);
  /// restore mode installs state when the warp reaches the snapshot cycle.
  /// Returns true when the backend should stop the run loop (run_for end).
  virtual bool at_dispatch_point(Backend& backend, Cycles t) = 0;

  /// Record taps, invoked on every reply while not warping. `now_after` is
  /// the backend's global clock after the dispatch folded in (a running max,
  /// identical across serial and windowed execution orders).
  virtual void on_data_reply(ProcId proc, Cycles now_after, const Reply& r) = 0;
  virtual void on_control_reply(ProcId proc, const Reply& r) = 0;
  virtual void on_deferred_reply(ProcId proc, const Reply& r) = 0;

  /// Warp feeds: fill the model-dependent reply fields from the log. Any
  /// divergence from the recorded stream (wrong proc, wrong record kind)
  /// throws — restored host code must replay the create run exactly.
  virtual void warp_data_reply(ProcId proc, Cycles& now_after, Reply& r) = 0;
  virtual void warp_control_reply(ProcId proc, Reply& r) = 0;
  virtual void warp_deferred_reply(ProcId proc, Reply& r) = 0;
};

}  // namespace compass::core
