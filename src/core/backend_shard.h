// Shard worker pool for the windowed parallel backend (see backend.cpp and
// DESIGN.md "Sharded parallel backend").
//
// The coordinator (the backend thread) forms a *window*: a prefix of the
// pending batches, in (time, ProcId) pick-min order, that provably dispatch
// consecutively under the serial protocol. Window items are then fanned out
// to W-1 worker threads (shard of proc = proc % W; shard 0 stays on the
// coordinator). Delegation modes per item, chosen by the backend:
//
//  * execute: the worker runs the full data-batch computation (issue-time
//    serialization, per-CPU time charges, memory-model access, reply).
//    Only used when the memory model is concurrent_access_safe(); all
//    touched state is per-proc/per-CPU/per-port and hence disjoint across
//    the window, plus order-insensitive local tallies the coordinator
//    merges at the barrier.
//  * deliver: the coordinator already computed the reply in exact serial
//    order (models with shared zero-lookahead state: coherence buses,
//    directories, page tables); the worker only performs port.reply(),
//    offloading the reply/wakeup cost — the dominant per-dispatch cost of
//    the serial loop.
//  * classify / apply: the sharded lane-B protocol for complex models
//    (MemorySystem::lane_b_*, see backend.cpp lane_b_window). classify is a
//    strictly read-only pass producing per-item verdicts and line-slice
//    footprints; apply replays proven-clean own-L1 hits from those verdicts
//    concurrently with the coordinator's serial remainder.
//
// Handoff is one SPSC ring per worker (coordinator is the single producer)
// with Dekker-gated futex wakeups in both directions, mirroring the
// event-port idiom: steady-state windows complete with plain atomic
// stores, no syscalls. The end-of-window barrier is an atomic countdown;
// its release/acquire pairing publishes every worker-side write back to
// the coordinator before the next window (or any task) runs.
//
// Lifetime: construct after process registration, destroy (stop + join)
// BEFORE Communicator::close_all_ports() — close() answers in-flight
// batches itself, and a worker reply racing that would trip the port state
// machine. The Backend keeps the pool local to its windowed loop so stack
// unwinding enforces this on every exit path.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/adaptive_spin.h"
#include "core/event.h"
#include "core/memory_system.h"
#include "core/types.h"

namespace compass::core {

class EventPort;

/// What run_window_item does with a WindowItem (see the header comment).
enum class WindowOp : std::uint8_t {
  kDeliver,   ///< port->reply(reply) only; reply precomputed serially
  kExecute,   ///< full process_data + reply (lane A, or lane-B serial tier)
  kClassify,  ///< read-only lane-B classification into *cls; no reply
  kApply,     ///< process_data consuming cls verdicts + reply
};

/// One dispatchable batch inside a window. Filled by the coordinator,
/// optionally executed on a worker, results merged at the window barrier.
struct WindowItem {
  ProcId proc = kNoProc;
  EventPort* port = nullptr;
  std::span<const Event> batch;
  /// deliver mode: reply precomputed by the coordinator in serial order.
  Reply reply{};
  WindowOp op = WindowOp::kDeliver;
  /// Lane-B classification slot (backend-owned scratch): written by the
  /// kClassify pass, consumed by process_data when the plan kept the item
  /// in the parallel tier; null otherwise.
  LaneBClass* cls = nullptr;
  /// execute/apply outputs, merged by the coordinator at the barrier:
  Cycles local_now = 0;          ///< max issue cycle observed in the batch
  std::uint64_t local_refs = 0;  ///< kMemRef count (order-insensitive sum)
};

class ShardPool {
 public:
  /// Spawns `workers` (>= 1) threads. `capacity` bounds the number of items
  /// that may be in flight per window (the backend passes its process
  /// count). `run` is invoked on worker threads for each delegated item;
  /// exceptions it throws are captured and rethrown from wait_window().
  /// `spin` tunes the ring/barrier spin-then-block waits (SimConfig::spin_*).
  ShardPool(int workers, std::size_t capacity,
            std::function<void(WindowItem&)> run,
            AdaptiveSpin::Policy spin = AdaptiveSpin::backend_policy());
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int workers() const { return static_cast<int>(workers_.size()); }

  // ---- coordinator API (backend thread only) --------------------------

  /// Open a window that will delegate exactly `delegated` items.
  void begin_window(int delegated);
  /// Hand `item` to worker `w` (0-based). The item must stay valid until
  /// wait_window() returns.
  void push(int w, WindowItem* item);
  /// Barrier: block until every delegated item of the current window has
  /// been processed. Rethrows the first worker exception, if any.
  void wait_window();

 private:
  struct Worker {
    explicit Worker(std::size_t capacity) : slots(capacity) {}
    std::vector<WindowItem*> slots;     // SPSC ring, coordinator -> worker
    std::atomic<std::uint32_t> head{0};  // coordinator publishes (release)
    std::atomic<std::uint32_t> tail{0};  // worker-private cursor
    /// Dekker flag: worker is (about to be) asleep in head.wait().
    std::atomic<bool> idle{false};
    std::thread thread;
  };

  void worker_main(Worker& w);

  const std::size_t capacity_;
  std::function<void(WindowItem&)> run_;
  const AdaptiveSpin::Policy spin_policy_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Items of the current window not yet completed by workers.
  std::atomic<int> outstanding_{0};
  /// Dekker flag: coordinator is (about to be) asleep in outstanding_.wait().
  std::atomic<bool> coordinator_waiting_{false};
  std::atomic<bool> stop_{false};

  AdaptiveSpin barrier_spin_;  // coordinator-private; policy from ctor

  std::mutex err_mu_;
  std::exception_ptr first_error_;  // guarded by err_mu_
};

}  // namespace compass::core
