// Adaptive spin-then-block waiting for the event-port fast path.
//
// At high event rates the frontend↔backend round trip is bounded by condvar
// sleep/wake syscalls (two futex waits + two wakes per batch). When the host
// has spare parallelism the other side's state change lands within a few
// hundred nanoseconds, so a short spin avoids the sleep entirely; when it
// does not, spinning only steals cycles from the thread we are waiting on.
// AdaptiveSpin resizes its budget from observed outcomes: every wait that is
// satisfied while spinning grows the budget, every wait that would have had
// to block shrinks it, so sustained fast traffic converges to spinning and
// idle or slow phases converge to immediate blocking.
//
// Two probe flavors, chosen per waiter via Policy:
//
//  * pause probes (cpu_relax) only make sense when another host CPU can
//    make progress in parallel; on a single-CPU host nothing can change
//    between consecutive probes, so the wait degenerates to one free probe
//    followed by an immediate block.
//  * yield probes (sched_yield) let the peer thread run even on a single
//    CPU. They are reserved for the backend, whose awaited post is one
//    scheduling hop away (the just-replied frontend posts right after it
//    wakes). Frontends must NOT yield-probe: their reply is many dispatch
//    rounds away under load, and a yielding waiter next to a busy peer
//    forfeits the wakeup-preemption boost a condvar sleeper gets, turning
//    microseconds into scheduling quanta.
//
// Single-owner: each instance is private to the one thread that waits on it
// (the frontend thread for a port, the backend thread for the communicator).
#pragma once

#include <thread>

namespace compass::core {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class AdaptiveSpin {
 public:
  struct Policy {
    int min_probes;    ///< budget floor (>= 1; probe 0 is always free)
    int max_probes;    ///< budget ceiling
    int pause_probes;  ///< first N probes cpu_relax (host-parallel only)
    bool yield;        ///< later probes may sched_yield; else stop early
  };

  /// Frontend reply wait: pure pause-spinning, collapses to a single probe
  /// on a single-CPU host.
  static constexpr Policy frontend_policy() {
    return Policy{1, 512, 512, false};
  }
  /// Backend all-pending wait: short pause phase, then bounded yielding.
  static constexpr Policy backend_policy() {
    return Policy{4, 64, 16, true};
  }

  explicit AdaptiveSpin(Policy policy) : policy_(policy), budget_(policy.min_probes) {}

  /// True when the host has more than one CPU, i.e. pause-probing can
  /// overlap with the peer thread actually running.
  static bool host_parallel() {
    static const bool parallel = std::thread::hardware_concurrency() > 1;
    return parallel;
  }

  /// Probe `pred` up to the current budget. Returns true if `pred` held
  /// before the budget ran out (the caller skips blocking); false means the
  /// caller should block on its condvar. The budget adapts on each outcome.
  template <typename Pred>
  bool wait(Pred&& pred) {
    const int pauses = host_parallel() ? policy_.pause_probes : 0;
    for (int i = 0; i < budget_; ++i) {
      if (pred()) {
        budget_ = budget_ < policy_.max_probes ? budget_ * 2 : policy_.max_probes;
        return true;
      }
      if (i < pauses) {
        cpu_relax();
      } else if (policy_.yield) {
        std::this_thread::yield();
      } else {
        break;  // nothing can change without parallelism or a yield
      }
    }
    budget_ = budget_ > policy_.min_probes ? budget_ / 2 : policy_.min_probes;
    return false;
  }

 private:
  Policy policy_;
  int budget_;
};

}  // namespace compass::core
