// Frontend: a simulated application process running on its own host thread.
//
// In the paper each simulated application process is a real UNIX process;
// here it is a host thread executing arbitrary C++ workload code against a
// SimContext. The lifecycle protocol:
//
//   thread start ──► post kStart, blocked until the backend's process
//                    scheduler assigns a simulated CPU
//   body(ctx)    ──► generates events; OS calls go through the router
//   body returns ──► post kExit; backend frees the CPU
//
// A body exception is captured and rethrown from join(); backend aborts
// (port closed) unwind silently.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/backend.h"
#include "core/sim_context.h"

namespace compass::core {

class Frontend {
 public:
  using Body = std::function<void(SimContext&)>;

  enum class Kind { kApp, kDaemon };

  /// Registers a new process with the backend and creates its context.
  /// Daemons (kernel service processes like netd) never terminate the
  /// simulation; their bodies unwind via the port-close abort at shutdown.
  Frontend(Backend& backend, const std::string& name,
           SimContext::Options opts = {}, Kind kind = Kind::kApp);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  ProcId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Context accessor for installing the OS-call router / interrupt hook
  /// before start(). Not thread-safe once the thread runs.
  SimContext& context() { return *ctx_; }

  /// Spawn the host thread running `body`.
  void start(Body body);

  /// Wait for the thread; rethrows any workload exception (except
  /// backend-abort unwinds, which are reported by aborted()).
  void join();

  bool aborted() const { return ctx_->aborted(); }

 private:
  Backend& backend_;
  std::string name_;
  ProcId id_;
  std::unique_ptr<SimContext> ctx_;
  std::thread thread_;
  std::exception_ptr error_;
};

}  // namespace compass::core
