#include "core/backend_shard.h"

#include <utility>

#include "util/check.h"

namespace compass::core {

ShardPool::ShardPool(int workers, std::size_t capacity,
                     std::function<void(WindowItem&)> run,
                     AdaptiveSpin::Policy spin)
    : capacity_(capacity == 0 ? 1 : capacity),
      run_(std::move(run)),
      spin_policy_(spin),
      barrier_spin_(spin) {
  COMPASS_CHECK_MSG(workers >= 1, "ShardPool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<Worker>(capacity_));
  // Spawn after the vector is final so worker_main's reference is stable.
  for (auto& w : workers_) w->thread = std::thread([this, &w] { worker_main(*w); });
}

ShardPool::~ShardPool() {
  // Workers drain their rings before honoring stop, so any items pushed by
  // a coordinator that then threw are still completed (their ports reach a
  // replied state; close_all_ports aborts whatever is left either way).
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& w : workers_) {
    // Wake by advancing the futex word itself: a bare notify can land in
    // the gap between a sleeper's pre-sleep re-checks and its head.wait()
    // call, and that wait only re-examines `head` — never stop_. Pushing a
    // nullptr sentinel changes `head`, so the racing wait refuses to sleep.
    const std::uint32_t h = w->head.load(std::memory_order_relaxed);
    w->slots[h % capacity_] = nullptr;
    w->head.store(h + 1, std::memory_order_seq_cst);
    w->head.notify_all();
    if (w->thread.joinable()) w->thread.join();
  }
}

void ShardPool::begin_window(int delegated) {
  COMPASS_CHECK(outstanding_.load(std::memory_order_relaxed) == 0);
  outstanding_.store(delegated, std::memory_order_release);
}

void ShardPool::push(int w, WindowItem* item) {
  Worker& worker = *workers_[static_cast<std::size_t>(w)];
  const std::uint32_t h = worker.head.load(std::memory_order_relaxed);
  // Never overruns: a window delegates at most one item per process and
  // the ring holds `capacity_` (= process count) items.
  COMPASS_CHECK_MSG(h - worker.tail.load(std::memory_order_acquire) < capacity_,
                    "shard ring overflow");
  worker.slots[h % capacity_] = item;
  // seq_cst store + Dekker load below pairs with the worker's idle store +
  // head re-check before sleeping (same handshake as EventPort::reply).
  worker.head.store(h + 1, std::memory_order_seq_cst);
  if (worker.idle.load(std::memory_order_seq_cst)) worker.head.notify_all();
}

void ShardPool::wait_window() {
  if (!barrier_spin_.wait([this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      })) {
    while (true) {
      coordinator_waiting_.store(true, std::memory_order_seq_cst);
      const int v = outstanding_.load(std::memory_order_seq_cst);
      if (v == 0) break;
      outstanding_.wait(v, std::memory_order_seq_cst);
    }
    coordinator_waiting_.store(false, std::memory_order_relaxed);
    // Re-load with acquire so every worker write made before its final
    // release decrement is visible to the coordinator from here on.
    (void)outstanding_.load(std::memory_order_acquire);
  }
  std::exception_ptr err;
  {
    std::lock_guard lock(err_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ShardPool::worker_main(Worker& w) {
  AdaptiveSpin spin(spin_policy_);
  while (true) {
    const std::uint32_t t = w.tail.load(std::memory_order_relaxed);
    if (w.head.load(std::memory_order_acquire) == t) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (!spin.wait([&] {
            return w.head.load(std::memory_order_acquire) != t ||
                   stop_.load(std::memory_order_acquire);
          })) {
        w.idle.store(true, std::memory_order_seq_cst);
        if (w.head.load(std::memory_order_seq_cst) == t &&
            !stop_.load(std::memory_order_seq_cst))
          w.head.wait(t, std::memory_order_seq_cst);
        w.idle.store(false, std::memory_order_relaxed);
      }
      continue;
    }
    WindowItem* item = w.slots[t % capacity_];
    w.tail.store(t + 1, std::memory_order_release);
    if (item == nullptr) continue;  // shutdown sentinel: no work, no decrement
    try {
      run_(*item);
    } catch (...) {
      std::lock_guard lock(err_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Final decrement publishes this item's writes to the coordinator's
    // acquire load in wait_window; seq_cst keeps the Dekker handshake with
    // coordinator_waiting_ in one total order.
    if (outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        coordinator_waiting_.load(std::memory_order_seq_cst))
      outstanding_.notify_all();
  }
}

}  // namespace compass::core
