#include "core/communicator.h"

#include <limits>

#include "util/check.h"

namespace compass::core {

Communicator::Communicator(int num_cpus, int host_cpus)
    : throttle_(host_cpus), cpu_states_(static_cast<std::size_t>(num_cpus)) {
  COMPASS_CHECK_MSG(num_cpus > 0, "need at least one simulated CPU");
}

CpuState& Communicator::cpu_state(CpuId cpu) {
  COMPASS_CHECK_MSG(cpu >= 0 && cpu < num_cpus(), "bad cpu id " << cpu);
  return cpu_states_[static_cast<std::size_t>(cpu)];
}

const CpuState& Communicator::cpu_state(CpuId cpu) const {
  COMPASS_CHECK_MSG(cpu >= 0 && cpu < num_cpus(), "bad cpu id " << cpu);
  return cpu_states_[static_cast<std::size_t>(cpu)];
}

EventPort& Communicator::create_port(ProcId proc) {
  std::lock_guard lock(ports_mu_);
  auto [it, inserted] =
      ports_.emplace(proc, std::make_unique<EventPort>(proc, *this));
  COMPASS_CHECK_MSG(inserted, "event port for proc " << proc << " already exists");
  return *it->second;
}

EventPort& Communicator::port(ProcId proc) {
  std::lock_guard lock(ports_mu_);
  const auto it = ports_.find(proc);
  COMPASS_CHECK_MSG(it != ports_.end(), "no event port for proc " << proc);
  return *it->second;
}

bool Communicator::has_port(ProcId proc) const {
  std::lock_guard lock(ports_mu_);
  return ports_.contains(proc);
}

void Communicator::wait_all_pending(std::span<const ProcId> running) {
  if (running.empty()) return;
  auto all_pending = [&] {
    for (const ProcId p : running)
      if (!port(p).has_pending()) return false;
    return true;
  };
  if (all_pending()) return;
  // Release the host permit while the backend sleeps: on a 1-way host this
  // is what lets frontends make progress at all.
  throttle_.release();
  {
    std::unique_lock lock(backend_mu_);
    bool reported = false;
    while (!backend_cv_.wait_for(lock, std::chrono::seconds(10), all_pending)) {
      if (reported || !stall_handler_) continue;
      reported = true;
      std::vector<ProcId> missing;
      for (const ProcId p : running)
        if (!port(p).has_pending()) missing.push_back(p);
      stall_handler_(missing);
    }
  }
  throttle_.acquire();
}

ProcId Communicator::pick_min(std::span<const ProcId> running) const {
  COMPASS_CHECK(!running.empty());
  std::lock_guard lock(ports_mu_);
  ProcId best = kNoProc;
  Cycles best_time = std::numeric_limits<Cycles>::max();
  for (const ProcId p : running) {
    const auto it = ports_.find(p);
    COMPASS_CHECK_MSG(it != ports_.end(), "pick_min: no port for proc " << p);
    const EventPort& port = *it->second;
    COMPASS_CHECK_MSG(port.has_pending(),
                      "pick_min: proc " << p << " has no pending batch");
    const Cycles t = port.pending_time();
    if (best == kNoProc || t < best_time || (t == best_time && p < best)) {
      best_time = t;
      best = p;
    }
  }
  return best;
}

void Communicator::close_all_ports() {
  std::lock_guard lock(ports_mu_);
  for (auto& [_, port] : ports_) port->close();
}

void Communicator::notify_backend() {
  // Taking the mutex orders this notification after the predicate data
  // written by the caller, so the backend cannot miss the wakeup.
  std::lock_guard lock(backend_mu_);
  backend_cv_.notify_one();
}

}  // namespace compass::core
