#include "core/communicator.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/check.h"

namespace compass::core {

Communicator::Communicator(int num_cpus, int host_cpus)
    : throttle_(host_cpus), cpu_states_(static_cast<std::size_t>(num_cpus)) {
  COMPASS_CHECK_MSG(num_cpus > 0, "need at least one simulated CPU");
}

CpuState& Communicator::cpu_state(CpuId cpu) {
  COMPASS_CHECK_MSG(cpu >= 0 && cpu < num_cpus(), "bad cpu id " << cpu);
  return cpu_states_[static_cast<std::size_t>(cpu)];
}

const CpuState& Communicator::cpu_state(CpuId cpu) const {
  COMPASS_CHECK_MSG(cpu >= 0 && cpu < num_cpus(), "bad cpu id " << cpu);
  return cpu_states_[static_cast<std::size_t>(cpu)];
}

EventPort& Communicator::create_port(ProcId proc) {
  COMPASS_CHECK_MSG(proc >= 0, "bad proc id " << proc);
  std::lock_guard lock(ports_mu_);
  const auto idx = static_cast<std::size_t>(proc);
  if (idx >= ports_.size()) ports_.resize(idx + 1);
  COMPASS_CHECK_MSG(ports_[idx] == nullptr,
                    "event port for proc " << proc << " already exists");
  ports_[idx] = std::make_unique<EventPort>(proc, *this);
  index_.add_slot(proc);
  return *ports_[idx];
}

EventPort& Communicator::port(ProcId proc) {
  std::lock_guard lock(ports_mu_);
  const auto idx = static_cast<std::size_t>(proc);
  COMPASS_CHECK_MSG(proc >= 0 && idx < ports_.size() && ports_[idx] != nullptr,
                    "no event port for proc " << proc);
  return *ports_[idx];
}

bool Communicator::has_port(ProcId proc) const {
  std::lock_guard lock(ports_mu_);
  const auto idx = static_cast<std::size_t>(proc);
  return proc >= 0 && idx < ports_.size() && ports_[idx] != nullptr;
}

void Communicator::set_running(std::span<const ProcId> running) {
  active_.assign(running.begin(), running.end());
  index_.set_active(running);
}

void Communicator::sync_running(std::span<const ProcId> running) {
  if (active_.size() == running.size() &&
      std::equal(active_.begin(), active_.end(), running.begin()))
    return;
  set_running(running);
}

void Communicator::wait_all_pending(std::span<const ProcId> running) {
  if (running.empty()) return;
  sync_running(running);
  if (index_.all_active_pending()) return;

  // Spin-then-block: with the throttle off, briefly probe the lock-free
  // counters before paying a condvar sleep — at high event rates the missing
  // post lands within the spin window. With the throttle on, spinning would
  // hold a host-CPU permit the frontends need, so block immediately.
  if (!throttle_.enabled() &&
      backend_spin_.wait([this] { return index_.all_active_pending(); }))
    return;

  // Release the host permit while the backend sleeps: on a 1-way host this
  // is what lets frontends make progress at all.
  throttle_.release();
  {
    std::unique_lock lock(backend_mu_);
    backend_waiting_.store(true, std::memory_order_seq_cst);
    bool reported = false;
    while (!backend_cv_.wait_for(lock, std::chrono::seconds(10), [this] {
      return index_.all_active_pending();
    })) {
      if (reported || !stall_handler_) continue;
      reported = true;
      std::vector<ProcId> missing;
      for (const ProcId p : running)
        if (!port(p).has_pending()) missing.push_back(p);
      stall_handler_(missing);
    }
    backend_waiting_.store(false, std::memory_order_relaxed);
  }
  throttle_.acquire();
}

ProcId Communicator::pick_min(std::span<const ProcId> running) const {
  COMPASS_CHECK(!running.empty());
  const ProcId best = index_.min_proc();
  COMPASS_CHECK_MSG(best != kNoProc,
                    "pick_min: no running process has a pending batch");
#ifndef NDEBUG
  // Debug builds cross-check the index against the paper's literal scan.
  {
    ProcId scan_best = kNoProc;
    Cycles scan_time = std::numeric_limits<Cycles>::max();
    for (const ProcId p : running) {
      const EventPort& prt = const_cast<Communicator*>(this)->port(p);
      COMPASS_CHECK_MSG(prt.has_pending(),
                        "pick_min: proc " << p << " has no pending batch");
      const Cycles t = prt.pending_time();
      if (scan_best == kNoProc || t < scan_time ||
          (t == scan_time && p < scan_best)) {
        scan_time = t;
        scan_best = p;
      }
    }
    COMPASS_CHECK_MSG(best == scan_best,
                      "pending-min index disagrees with linear scan: index "
                          << best << " scan " << scan_best);
  }
#endif
  return best;
}

void Communicator::close_all_ports() {
  // Poison before closing: a frontend parked on the warp hub's sequence
  // ticket never reaches its port, so the port close alone cannot wake it.
  if (WarpHub* hub = warp_hub()) hub->abort_waiters();
  std::lock_guard lock(ports_mu_);
  for (auto& port : ports_)
    if (port != nullptr) port->close();
}

void Communicator::notify_backend() {
  // Dekker handshake with wait_all_pending: the backend stores
  // backend_waiting_ (seq_cst) before evaluating the wait predicate under
  // backend_mu_; posters update the index counters (seq_cst) before loading
  // backend_waiting_ here. At least one side observes the other, so a
  // sleeping backend is always woken and an awake backend costs posters two
  // atomic ops and no mutex. Taking backend_mu_ before notifying closes the
  // predicate-check-then-sleep window.
  if (!backend_waiting_.load(std::memory_order_seq_cst)) return;
  { std::lock_guard lock(backend_mu_); }
  backend_cv_.notify_one();
}

void Communicator::on_port_post(ProcId proc, Cycles time) {
  index_.on_post(proc, time);
  notify_backend();
}

void Communicator::on_port_rebase(ProcId proc, Cycles time) {
  index_.on_rebase(proc, time);
}

void Communicator::on_port_clear(ProcId proc) { index_.on_clear(proc); }

}  // namespace compass::core
