#include "core/sim_context.h"

#include <exception>

namespace compass::core {

SimContext::SimContext(EventPort& port, ExecMode mode, Options opts)
    : port_(&port), mode_(mode), opts_(opts) {
  COMPASS_CHECK(opts_.batch_size >= 1);
  if (opts_.filter_factory) filter_ = opts_.filter_factory();
  batch_.reserve(filter_ != nullptr
                     ? kMaxAbsorbedBatch
                     : static_cast<std::size_t>(opts_.batch_size));
}

SimContext::SimContext() = default;

void SimContext::compute(Cycles c) {
  if (!sim_enabled() || aborted_) return;
  time_ += c;
  compute_since_event_ += c;
  if (compute_since_event_ >= opts_.yield_threshold) {
    // Let the backend advance global time / deliver interrupts during long
    // CPU bursts with no memory traffic.
    Event e;
    e.kind = EventKind::kYield;
    e.mode = mode_;
    e.time = time_;
    append(e);
    flush();
  }
}

void SimContext::load(Addr a, std::uint32_t size) {
  if (!sim_enabled() || aborted_) return;
  if (filter_ != nullptr) {
    filtered_ref(RefType::kLoad, a, size);
    return;
  }
  append(Event::mem_ref(mode_, RefType::kLoad, a, size, time_));
}

void SimContext::store(Addr a, std::uint32_t size) {
  if (!sim_enabled() || aborted_) return;
  if (filter_ != nullptr) {
    filtered_ref(RefType::kStore, a, size);
    return;
  }
  append(Event::mem_ref(mode_, RefType::kStore, a, size, time_));
}

void SimContext::filtered_ref(RefType type, Addr a, std::uint32_t size) {
  const Cycles lat = filter_->try_absorb(type, a);
  if (lat == RefFilter::kNoAbsorb) {
    // Miss/upgrade: with the filter on, the crossing itself is the
    // granularity boundary — post the buffered run plus this reference now
    // so the reply's teach covers it.
    batch_.push_back(Event::mem_ref(mode_, type, a, size, time_));
    flush();
    return;
  }
  // Proven hit: charge the exact latency locally and keep running. The
  // event still rides in the batch and replays through the literal model at
  // the next crossing, so model state, counters and LRU stay exact.
  Event ev = Event::mem_ref(mode_, type, a, size, time_);
#ifndef NDEBUG
  // Absorbed-hit hint: Debug models cross-check that the replayed latency
  // is exactly the hit latency, gated on the (cpu, generation) proof still
  // holding at replay time (a granularity-induced remote invalidation or a
  // migration legitimately turns the replay into a miss). Never serialized
  // into traces (memref args are not encoded), so record/replay bytes are
  // unaffected.
  ev.arg[0] = 1;
  ev.arg[1] = filter_->generation();
  ev.arg[2] = static_cast<std::uint64_t>(cpu_);
#endif
  batch_.push_back(ev);
  time_ += lat;
  compute_since_event_ += lat;
  ++absorbed_;
  if (batch_.size() >= kMaxAbsorbedBatch ||
      compute_since_event_ >= opts_.yield_threshold)
    flush();
}

void SimContext::sync_ref(Addr a, std::uint32_t size) {
  if (!sim_enabled() || aborted_) return;
  append(Event::mem_ref(mode_, RefType::kSync, a, size, time_));
  flush();
}

void SimContext::append(Event ev) {
  batch_.push_back(ev);
  if (batch_.size() >= static_cast<std::size_t>(opts_.batch_size)) flush();
}

void SimContext::flush() {
  if (batch_.empty() || aborted_) return;
  const Reply r = post_batch();
  handle_reply(r);
}

Reply SimContext::post_batch() {
  COMPASS_CHECK(attached());
  const Reply r = port_->post_and_wait(batch_);
  batch_.clear();
  compute_since_event_ = 0;
  return r;
}

void SimContext::handle_reply(const Reply& r) {
  if (r.aborted) {
    // Throw at the moment the abort is first observed: this unwinds
    // kernel/workload code through its RAII guards. Afterwards the context
    // is inert (every primitive no-ops). Never throw while another
    // exception is unwinding (cleanup paths post events too).
    aborted_ = true;
    if (std::uncaught_exceptions() == 0) throw SimAbortedError();
    return;
  }
  if (r.resume_time > time_) time_ = r.resume_time;
  if (r.cpu != kNoCpu) cpu_ = r.cpu;
  if (filter_ != nullptr) filter_->on_reply(r);
  if (r.interrupt_pending) {
    if (defer_depth_ > 0)
      deferred_interrupt_ = true;
    else
      maybe_run_interrupt_hook();
  }
}

void SimContext::maybe_run_interrupt_hook() {
  if (!int_hook_ || in_int_hook_ || aborted_) return;
  in_int_hook_ = true;
  try {
    int_hook_(*this);
  } catch (...) {
    in_int_hook_ = false;
    throw;
  }
  in_int_hook_ = false;
}

SimContext::InterruptDeferral::~InterruptDeferral() {
  if (--ctx_.defer_depth_ == 0 && ctx_.deferred_interrupt_) {
    ctx_.deferred_interrupt_ = false;
    ctx_.maybe_run_interrupt_hook();
  }
}

std::int64_t SimContext::control(EventKind kind, std::uint64_t a0,
                                 std::uint64_t a1, std::uint64_t a2,
                                 std::uint64_t a3) {
  if (!attached() || aborted_) return 0;
  flush();
  if (aborted_) return 0;
  const Event ev = Event::control(kind, mode_, time_, a0, a1, a2, a3);
  batch_.push_back(ev);
  const Reply r = post_batch();
  handle_reply(r);
  return r.retval;
}

std::int64_t SimContext::oscall(std::uint32_t sysno,
                                std::span<const std::int64_t> args) {
  COMPASS_CHECK_MSG(router_ != nullptr,
                    "oscall " << sysno << " with no OS-call router installed");
  return router_(*this, sysno, args);
}

void SimContext::set_time(Cycles t) {
  COMPASS_CHECK_MSG(batch_.empty(),
                    "set_time with buffered references would corrupt timing");
  time_ = t;
  compute_since_event_ = 0;
}

}  // namespace compass::core
