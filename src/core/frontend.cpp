#include "core/frontend.h"

namespace compass::core {

Frontend::Frontend(Backend& backend, const std::string& name,
                   SimContext::Options opts, Kind kind)
    : backend_(backend),
      name_(name),
      id_(kind == Kind::kDaemon ? backend.add_daemon(name)
                                : backend.add_process(name)) {
  ctx_ = std::make_unique<SimContext>(backend_.communicator().port(id_),
                                      ExecMode::kUser, opts);
}

Frontend::~Frontend() {
  if (thread_.joinable()) thread_.join();
}

void Frontend::start(Body body) {
  COMPASS_CHECK_MSG(!thread_.joinable(), "frontend " << name_ << " already started");
  COMPASS_CHECK(body != nullptr);
  thread_ = std::thread([this, body = std::move(body)] {
    HostThrottle::Hold hold(backend_.communicator().throttle());
    try {
      ctx_->control(EventKind::kStart);
      if (!ctx_->aborted()) body(*ctx_);
    } catch (const SimAbortedError&) {
      // Backend shutdown; not a workload failure.
    } catch (...) {
      error_ = std::current_exception();
    }
    try {
      ctx_->control(EventKind::kExit);
    } catch (const SimAbortedError&) {
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
  });
}

void Frontend::join() {
  if (thread_.joinable()) thread_.join();
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace compass::core
