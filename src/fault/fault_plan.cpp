#include "fault/fault_plan.h"

#include "util/check.h"

namespace compass::fault {

namespace {
void check_prob(const char* name, double p) {
  if (p < 0.0 || p > 1.0)
    throw util::ConfigError(std::string("fault plan: ") + name +
                            " must be in [0,1]");
}
}  // namespace

void FaultPlan::validate() const {
  check_prob("disk_error_prob", disk_error_prob);
  check_prob("disk_timeout_prob", disk_timeout_prob);
  check_prob("net_drop_prob", net_drop_prob);
  check_prob("net_dup_prob", net_dup_prob);
  check_prob("net_corrupt_prob", net_corrupt_prob);
  check_prob("oscall_eintr_prob", oscall_eintr_prob);
  check_prob("oscall_enomem_prob", oscall_enomem_prob);
  check_prob("oscall_eio_prob", oscall_eio_prob);
  check_prob("sched_jitter_prob", sched_jitter_prob);
  if (disk_error_prob + disk_timeout_prob > 1.0)
    throw util::ConfigError(
        "fault plan: disk_error_prob + disk_timeout_prob must be <= 1");
  if (net_dup_prob + net_corrupt_prob > 1.0)
    throw util::ConfigError(
        "fault plan: net_dup_prob + net_corrupt_prob must be <= 1");
  if (oscall_eintr_prob + oscall_enomem_prob + oscall_eio_prob > 1.0)
    throw util::ConfigError("fault plan: oscall fault probabilities sum > 1");
  if (disk_max_retries < 1 || disk_max_retries > 64)
    throw util::ConfigError("fault plan: disk_max_retries must be in [1,64]");
  if (net_max_retries < 1 || net_max_retries > 64)
    throw util::ConfigError("fault plan: net_max_retries must be in [1,64]");
  if (oscall_max_consecutive < 1 || oscall_max_consecutive > 64)
    throw util::ConfigError(
        "fault plan: oscall_max_consecutive must be in [1,64]");
}

}  // namespace compass::fault
