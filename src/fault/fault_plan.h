// FaultPlan: the declarative description of a deterministic fault-injection
// run.
//
// A plan is a plain value: a seed plus per-choke-point rates and bounds.
// (plan, workload config) fully determines every injected fault — the
// injector derives one splitmix-separated util::Rng stream per draw site, so
// a recorded run replays with identical injections (the plan travels through
// the trace config codec, see trace/trace_format.h ConfigKey::kFault*).
//
// An all-default plan is inert: `enabled()` is false, no hooks are wired,
// no config keys are emitted, and the simulation is bit-identical to a
// build without the fault plane.
#pragma once

#include <cstdint>

#include "core/types.h"

namespace compass::fault {

struct FaultPlan {
  /// Root seed for every injector stream. The seed alone does not enable
  /// anything: a plan with all rates zero is inert regardless of seed.
  std::uint64_t seed = 0;

  // ---- dev/disk: I/O errors and timeouts (retry-then-succeed) -------------
  double disk_error_prob = 0.0;    ///< P(request fails fast with an error)
  double disk_timeout_prob = 0.0;  ///< P(request times out, then fails)
  Cycles disk_timeout_cycles = 300'000;  ///< extra delay a timeout costs
  int disk_max_retries = 3;  ///< injector forces success on the last retry

  // ---- dev/ethernet + os/tcpip: wire faults -------------------------------
  double net_drop_prob = 0.0;     ///< P(outbound frame lost before the wire)
  double net_dup_prob = 0.0;      ///< P(inbound frame delivered twice)
  double net_corrupt_prob = 0.0;  ///< P(inbound frame delivered corrupted
                                  ///  first, good copy right behind it)
  Cycles net_backoff_cycles = 20'000;  ///< base retransmit backoff (doubles)
  int net_max_retries = 4;  ///< injector forces delivery on the last retry

  // ---- os/kernel: transient oscall failures -------------------------------
  double oscall_eintr_prob = 0.0;
  double oscall_enomem_prob = 0.0;
  double oscall_eio_prob = 0.0;
  int oscall_max_consecutive = 2;  ///< per-process cap on back-to-back faults

  // ---- core scheduler: preemption-quantum jitter --------------------------
  double sched_jitter_prob = 0.0;   ///< P(a granted slice gets jitter)
  Cycles sched_jitter_cycles = 0;   ///< max |delta| applied to the quantum

  // ---- db/wal: crash-point injection --------------------------------------
  std::uint64_t wal_crash_at = 0;  ///< crash on the Nth commit (0 = off)

  /// True if any fault can actually fire. Keyed off rates/bounds, not the
  /// seed, so that a zero plan is provably a no-op.
  bool enabled() const {
    return disk_error_prob > 0 || disk_timeout_prob > 0 || net_drop_prob > 0 ||
           net_dup_prob > 0 || net_corrupt_prob > 0 || oscall_eintr_prob > 0 ||
           oscall_enomem_prob > 0 || oscall_eio_prob > 0 ||
           (sched_jitter_prob > 0 && sched_jitter_cycles > 0) ||
           wal_crash_at > 0;
  }

  /// Throws util::ConfigError on out-of-range rates or bounds.
  void validate() const;
};

}  // namespace compass::fault
