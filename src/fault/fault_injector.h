// FaultInjector: the runtime half of the fault plane.
//
// One injector serves a whole simulation. Each draw site consumes from its
// own splitmix-separated util::Rng stream, chosen so that every stream is
// consumed in an order the simulation itself makes deterministic:
//
//  * disk faults — drawn by the file system on the OS thread of the
//    requesting process (per-process streams; a process's oscalls are
//    serial) and carried to the device in the kDevRequest argument word,
//    so a recorded trace replays them with zero replay-side draws;
//  * net drop — drawn by the TCP/IP output path under the net mutex
//    (KMutex grants are backend-ordered, hence deterministic);
//  * rx dup/corrupt — drawn on the backend thread as frames are delivered
//    from the wire; every delivered copy records its own rx stimulus, so
//    replay again needs no draws;
//  * oscall faults — per-process streams, drawn at syscall dispatch;
//  * scheduler jitter — drawn on the backend thread at slice grant (the
//    injector is the core::SchedPerturber hook); a trace replayer drives
//    the backend through the identical grant sequence, so it re-derives
//    the identical jitter from the decoded plan.
//
// Counters are std::atomic because draw sites span OS-server threads and
// the backend thread; they are published into the (single-threaded)
// StatsRegistry after the simulation quiesces.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/sched_perturb.h"
#include "core/types.h"
#include "fault/fault_plan.h"
#include "stats/counters.h"
#include "util/rng.h"
#include "util/state_io.h"

namespace compass::fault {

/// Every injectable fault kind, for counter accounting.
enum class FaultKind : std::uint8_t {
  kDiskError = 0,
  kDiskTimeout,
  kNetDrop,
  kNetDup,
  kNetCorrupt,
  kOscallEintr,
  kOscallEnomem,
  kOscallEio,
  kSchedJitter,
  kWalCrash,
  kCount,
};

const char* to_string(FaultKind k);

/// Disk-request fault decision, encoded into bits 8.. of the kDevRequest op
/// word (see dev::DeviceHub): the decision travels with the event, so the
/// device — live or replayed — applies identical timing.
enum class DiskFault : std::uint8_t { kNone = 0, kError = 1, kTimeout = 2 };

/// Inbound-frame fault decision made at wire delivery.
enum class RxFault : std::uint8_t { kNone = 0, kDup = 1, kCorrupt = 2 };

/// Transient oscall failure decision.
enum class OscallFault : std::uint8_t {
  kNone = 0,
  kEintr = 1,
  kEnomem = 2,
  kEio = 3,
};

class FaultInjector final : public core::SchedPerturber {
 public:
  /// `plan` is validated and copied.
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  // ---- draw sites ---------------------------------------------------------

  /// Disk fault for the next request issued by `proc`; `attempt` is the
  /// zero-based retry count — the draw is forced to kNone once `attempt`
  /// reaches the plan's retry bound, so retry loops always terminate.
  DiskFault draw_disk(ProcId proc, int attempt);

  /// Outbound-frame drop; `attempt` as above (forced delivery at the bound).
  bool draw_net_drop(int attempt);

  /// Inbound-frame dup/corrupt decision (backend thread only).
  RxFault draw_rx();

  /// Transient failure for the next oscall of `proc`. At most
  /// `oscall_max_consecutive` back-to-back faults per process; the draw
  /// after a faulted one that comes up clean is counted as the recovery.
  OscallFault draw_oscall(ProcId proc);

  // ---- core::SchedPerturber -----------------------------------------------

  /// Jitters the granted quantum by up to ±sched_jitter_cycles (clamped to
  /// stay positive). Backend thread only.
  Cycles slice_quantum(ProcId proc, CpuId cpu, Cycles start,
                       Cycles base_quantum) override;

  // ---- accounting ---------------------------------------------------------

  void count_injected(FaultKind k) {
    injected_[static_cast<std::size_t>(k)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void count_recovered(FaultKind k) {
    recovered_[static_cast<std::size_t>(k)].fetch_add(
        1, std::memory_order_relaxed);
  }
  std::uint64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t recovered(FaultKind k) const {
    return recovered_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_injected() const;

  /// Writes fault.injected.<kind> / fault.recovered.<kind> counters.
  /// Call after the simulation has quiesced (single-threaded).
  void publish(stats::StatsRegistry& reg) const;

  /// Serialize every stream position and the fault tallies in canonical
  /// order. Quiescent-point only (no draw site is active).
  void ckpt_dump(util::StateSink& sink);

 private:
  /// Per-process draw state (disk + oscall streams).
  struct ProcStreams {
    util::Rng disk;
    util::Rng oscall;
    int consecutive_oscall_faults = 0;
    OscallFault last_oscall = OscallFault::kNone;
  };

  ProcStreams& streams(ProcId proc);

  FaultPlan plan_;
  // Per-proc streams are created lazily; the map is guarded because
  // different processes draw from different OS-server host threads. Draws
  // by one process are serialized by that process's execution, so the lock
  // protects only the container, never an ordering.
  std::mutex mu_;
  std::unordered_map<ProcId, ProcStreams> per_proc_;
  util::Rng net_;    ///< outbound drop (serialized by the net mutex)
  util::Rng rx_;     ///< inbound dup/corrupt (backend thread)
  util::Rng sched_;  ///< slice jitter (backend thread)
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(
                                             FaultKind::kCount)>
      injected_{};
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(
                                             FaultKind::kCount)>
      recovered_{};
};

}  // namespace compass::fault
