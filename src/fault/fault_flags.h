// Command-line surface for FaultPlan: a canonical set of --fault-* flags
// shared by the tools (trace_record, fault_fuzz) so every driver spells the
// knobs the same way. All default to the inert plan.
#pragma once

#include <map>
#include <string>

#include "fault/fault_plan.h"
#include "util/flags.h"

namespace compass::fault {

/// Merge the --fault-* flag defaults and help strings into a tool's maps
/// (call before constructing util::Flags).
void add_fault_flags(std::map<std::string, std::string>& defaults,
                     std::map<std::string, std::string>& help);

/// Build (and validate) a FaultPlan from parsed flags.
FaultPlan fault_plan_from_flags(const util::Flags& flags);

}  // namespace compass::fault
