#include "fault/fault_injector.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace compass::fault {

namespace {

// Stream tags mixed into the root seed so each draw site gets an
// uncorrelated stream (util::Rng::reseed runs the result through
// splitmix64, so nearby tags are fine).
constexpr std::uint64_t kDiskTag = 0xD15C'0000'0001ull;
constexpr std::uint64_t kOscallTag = 0x05CA'1100'0002ull;
constexpr std::uint64_t kNetTag = 0x0E70'0000'0003ull;
constexpr std::uint64_t kRxTag = 0x0E70'0000'0004ull;
constexpr std::uint64_t kSchedTag = 0x5CED'0000'0005ull;

std::uint64_t mix(std::uint64_t seed, std::uint64_t tag, std::uint64_t sub) {
  return seed ^ (tag * 0x9E3779B97F4A7C15ull) ^ (sub * 0xBF58476D1CE4E5B9ull);
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDiskError: return "disk_error";
    case FaultKind::kDiskTimeout: return "disk_timeout";
    case FaultKind::kNetDrop: return "net_drop";
    case FaultKind::kNetDup: return "net_dup";
    case FaultKind::kNetCorrupt: return "net_corrupt";
    case FaultKind::kOscallEintr: return "oscall_eintr";
    case FaultKind::kOscallEnomem: return "oscall_enomem";
    case FaultKind::kOscallEio: return "oscall_eio";
    case FaultKind::kSchedJitter: return "sched_jitter";
    case FaultKind::kWalCrash: return "wal_crash";
    case FaultKind::kCount: break;
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      net_(mix(plan.seed, kNetTag, 0)),
      rx_(mix(plan.seed, kRxTag, 0)),
      sched_(mix(plan.seed, kSchedTag, 0)) {
  plan_.validate();
}

FaultInjector::ProcStreams& FaultInjector::streams(ProcId proc) {
  const auto it = per_proc_.find(proc);
  if (it != per_proc_.end()) return it->second;
  ProcStreams s{util::Rng(mix(plan_.seed, kDiskTag, static_cast<std::uint64_t>(
                                                        proc + 1))),
                util::Rng(mix(plan_.seed, kOscallTag,
                              static_cast<std::uint64_t>(proc + 1)))};
  return per_proc_.emplace(proc, std::move(s)).first->second;
}

DiskFault FaultInjector::draw_disk(ProcId proc, int attempt) {
  if (plan_.disk_error_prob <= 0 && plan_.disk_timeout_prob <= 0)
    return DiskFault::kNone;
  // The final permitted attempt always succeeds: retry loops terminate.
  if (attempt >= plan_.disk_max_retries) return DiskFault::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  const double x = streams(proc).disk.next_double();
  if (x < plan_.disk_error_prob) {
    count_injected(FaultKind::kDiskError);
    return DiskFault::kError;
  }
  if (x < plan_.disk_error_prob + plan_.disk_timeout_prob) {
    count_injected(FaultKind::kDiskTimeout);
    return DiskFault::kTimeout;
  }
  return DiskFault::kNone;
}

bool FaultInjector::draw_net_drop(int attempt) {
  if (plan_.net_drop_prob <= 0) return false;
  if (attempt >= plan_.net_max_retries) return false;
  // Serialized by the caller (TCP/IP net mutex); no lock needed for order,
  // but the stream itself is only ever touched under that mutex.
  if (!net_.next_bool(plan_.net_drop_prob)) return false;
  count_injected(FaultKind::kNetDrop);
  return true;
}

RxFault FaultInjector::draw_rx() {
  if (plan_.net_dup_prob <= 0 && plan_.net_corrupt_prob <= 0)
    return RxFault::kNone;
  const double x = rx_.next_double();
  if (x < plan_.net_dup_prob) {
    count_injected(FaultKind::kNetDup);
    return RxFault::kDup;
  }
  if (x < plan_.net_dup_prob + plan_.net_corrupt_prob) {
    count_injected(FaultKind::kNetCorrupt);
    return RxFault::kCorrupt;
  }
  return RxFault::kNone;
}

OscallFault FaultInjector::draw_oscall(ProcId proc) {
  if (plan_.oscall_eintr_prob <= 0 && plan_.oscall_enomem_prob <= 0 &&
      plan_.oscall_eio_prob <= 0)
    return OscallFault::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  ProcStreams& s = streams(proc);
  auto recovered_kind = [](OscallFault f) {
    switch (f) {
      case OscallFault::kEintr: return FaultKind::kOscallEintr;
      case OscallFault::kEnomem: return FaultKind::kOscallEnomem;
      case OscallFault::kEio: return FaultKind::kOscallEio;
      case OscallFault::kNone: break;
    }
    return FaultKind::kCount;
  };
  // Cap consecutive faults so bounded caller retries always succeed.
  if (s.consecutive_oscall_faults >= plan_.oscall_max_consecutive) {
    count_recovered(recovered_kind(s.last_oscall));
    s.consecutive_oscall_faults = 0;
    s.last_oscall = OscallFault::kNone;
    return OscallFault::kNone;
  }
  const double x = s.oscall.next_double();
  OscallFault f = OscallFault::kNone;
  if (x < plan_.oscall_eintr_prob) {
    f = OscallFault::kEintr;
    count_injected(FaultKind::kOscallEintr);
  } else if (x < plan_.oscall_eintr_prob + plan_.oscall_enomem_prob) {
    f = OscallFault::kEnomem;
    count_injected(FaultKind::kOscallEnomem);
  } else if (x < plan_.oscall_eintr_prob + plan_.oscall_enomem_prob +
                     plan_.oscall_eio_prob) {
    f = OscallFault::kEio;
    count_injected(FaultKind::kOscallEio);
  }
  if (f == OscallFault::kNone) {
    // A clean draw right after a faulted one is the retry that succeeded.
    if (s.consecutive_oscall_faults > 0)
      count_recovered(recovered_kind(s.last_oscall));
    s.consecutive_oscall_faults = 0;
    s.last_oscall = OscallFault::kNone;
  } else {
    ++s.consecutive_oscall_faults;
    s.last_oscall = f;
  }
  return f;
}

Cycles FaultInjector::slice_quantum(ProcId proc, CpuId cpu, Cycles start,
                                    Cycles base_quantum) {
  (void)proc;
  (void)cpu;
  (void)start;
  if (plan_.sched_jitter_prob <= 0 || plan_.sched_jitter_cycles == 0)
    return base_quantum;
  if (!sched_.next_bool(plan_.sched_jitter_prob)) return base_quantum;
  const auto j = static_cast<std::int64_t>(plan_.sched_jitter_cycles);
  const std::int64_t delta = sched_.next_in(-j, j);
  if (delta == 0) return base_quantum;
  count_injected(FaultKind::kSchedJitter);
  const auto base = static_cast<std::int64_t>(base_quantum);
  // Keep the quantum positive: never shrink below 1/4 of the base (or 1).
  const std::int64_t floor = std::max<std::int64_t>(1, base / 4);
  return static_cast<Cycles>(std::max(floor, base + delta));
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

void FaultInjector::publish(stats::StatsRegistry& reg) const {
  for (std::size_t i = 0; i < static_cast<std::size_t>(FaultKind::kCount);
       ++i) {
    const auto k = static_cast<FaultKind>(i);
    reg.counter(std::string("fault.injected.") + to_string(k))
        .inc(injected(k));
    reg.counter(std::string("fault.recovered.") + to_string(k))
        .inc(recovered(k));
  }
}

namespace {

void dump_rng(util::StateSink& sink, const util::Rng& rng) {
  for (const std::uint64_t w : rng.state()) sink.u64le(w);
}

}  // namespace

void FaultInjector::ckpt_dump(util::StateSink& sink) {
  std::vector<std::pair<ProcId, const ProcStreams*>> procs;
  {
    std::lock_guard lock(mu_);
    procs.reserve(per_proc_.size());
    for (const auto& [proc, streams] : per_proc_)
      procs.emplace_back(proc, &streams);
  }
  std::sort(procs.begin(), procs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  sink.varint(procs.size());
  for (const auto& [proc, streams] : procs) {
    sink.varint(static_cast<std::uint64_t>(proc));
    dump_rng(sink, streams->disk);
    dump_rng(sink, streams->oscall);
    sink.svarint(streams->consecutive_oscall_faults);
    sink.u8(static_cast<std::uint8_t>(streams->last_oscall));
  }
  dump_rng(sink, net_);
  dump_rng(sink, rx_);
  dump_rng(sink, sched_);
  for (const auto& c : injected_)
    sink.varint(c.load(std::memory_order_relaxed));
  for (const auto& c : recovered_)
    sink.varint(c.load(std::memory_order_relaxed));
}

}  // namespace compass::fault
