#include "fault/fault_flags.h"

namespace compass::fault {

void add_fault_flags(std::map<std::string, std::string>& defaults,
                     std::map<std::string, std::string>& help) {
  const FaultPlan d;  // spell defaults once, in FaultPlan itself
  defaults.insert({
      {"fault-seed", std::to_string(d.seed)},
      {"fault-disk-error", "0"},
      {"fault-disk-timeout", "0"},
      {"fault-disk-timeout-cycles", std::to_string(d.disk_timeout_cycles)},
      {"fault-net-drop", "0"},
      {"fault-net-dup", "0"},
      {"fault-net-corrupt", "0"},
      {"fault-eintr", "0"},
      {"fault-enomem", "0"},
      {"fault-eio", "0"},
      {"fault-sched-jitter", "0"},
      {"fault-sched-jitter-cycles", std::to_string(d.sched_jitter_cycles)},
      {"fault-wal-crash-at", "0"},
  });
  help.insert({
      {"fault-seed", "fault plan: root RNG seed"},
      {"fault-disk-error", "fault plan: P(disk request errors)"},
      {"fault-disk-timeout", "fault plan: P(disk request times out)"},
      {"fault-disk-timeout-cycles", "fault plan: extra cycles a timeout costs"},
      {"fault-net-drop", "fault plan: P(outbound frame dropped)"},
      {"fault-net-dup", "fault plan: P(inbound frame duplicated)"},
      {"fault-net-corrupt", "fault plan: P(inbound frame corrupted)"},
      {"fault-eintr", "fault plan: P(restartable oscall returns EINTR)"},
      {"fault-enomem", "fault plan: P(restartable oscall returns ENOMEM)"},
      {"fault-eio", "fault plan: P(restartable oscall returns EIO)"},
      {"fault-sched-jitter", "fault plan: P(a granted slice gets jitter)"},
      {"fault-sched-jitter-cycles", "fault plan: max |quantum jitter|"},
      {"fault-wal-crash-at", "fault plan: crash the WAL on the Nth commit"},
  });
}

FaultPlan fault_plan_from_flags(const util::Flags& flags) {
  FaultPlan p;
  p.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  p.disk_error_prob = flags.get_double("fault-disk-error");
  p.disk_timeout_prob = flags.get_double("fault-disk-timeout");
  p.disk_timeout_cycles =
      static_cast<Cycles>(flags.get_int("fault-disk-timeout-cycles"));
  p.net_drop_prob = flags.get_double("fault-net-drop");
  p.net_dup_prob = flags.get_double("fault-net-dup");
  p.net_corrupt_prob = flags.get_double("fault-net-corrupt");
  p.oscall_eintr_prob = flags.get_double("fault-eintr");
  p.oscall_enomem_prob = flags.get_double("fault-enomem");
  p.oscall_eio_prob = flags.get_double("fault-eio");
  p.sched_jitter_prob = flags.get_double("fault-sched-jitter");
  p.sched_jitter_cycles =
      static_cast<Cycles>(flags.get_int("fault-sched-jitter-cycles"));
  p.wal_crash_at = static_cast<std::uint64_t>(flags.get_int("fault-wal-crash-at"));
  p.validate();
  return p;
}

}  // namespace compass::fault
