// Interpreter for instrumented basic-block programs.
//
// Executes a Program against a SimContext exactly as the paper's inserted
// assembly would behave at run time: the execution-time value advances by
// the estimated issue cycles, and each memory-reference instruction fills
// an event (type, effective address, size, cycle) and passes it to the
// backend through the event port. Register and memory state are real, so
// program results are exact.
#pragma once

#include <array>
#include <cstdint>

#include "core/sim_context.h"
#include "isa/program.h"
#include "mem/arena.h"

namespace compass::isa {

struct RunResult {
  std::uint64_t insns = 0;
  std::uint64_t blocks = 0;
  std::uint64_t mem_refs = 0;
  bool halted = false;  ///< false = stopped at max_insns
};

class Interpreter {
 public:
  /// `mem` resolves effective addresses to host storage; programs address
  /// whatever arenas the embedder registered (user heap, shared segments).
  Interpreter(const Program& program, core::SimContext& ctx,
              mem::AddressMap& mem);

  void set_reg(int r, std::int64_t v);
  std::int64_t reg(int r) const;

  /// Run from `entry_block` until kHalt or `max_insns`.
  RunResult run(std::uint32_t entry_block = 0,
                std::uint64_t max_insns = ~std::uint64_t{0});

 private:
  Addr effective(const Insn& i, bool indexed) const;

  const Program& program_;
  core::SimContext& ctx_;
  mem::AddressMap& mem_;
  std::array<std::int64_t, kNumRegs> regs_{};
};

}  // namespace compass::isa
