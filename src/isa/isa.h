// A synthetic PowerPC-like instruction set with a static timing table.
//
// COMPASS builds its frontends by compiling the application to assembly and
// running it through an instrumentation program that inserts code after
// each basic block and memory reference; the inserted code "calculates the
// timing information of the process by using the estimated execution time
// of each instruction based on the specifications of the microprocessor
// instruction set, assuming 100% instruction cache hits" (paper §2).
//
// We cannot rewrite host binaries, so this module provides the equivalent
// substrate: a small register ISA, an assembler-level program
// representation organized into basic blocks, an instrumentation pass that
// attaches the per-block timing and event-generation metadata the paper's
// tool would insert, and an interpreter that executes instrumented programs
// against a SimContext. The backend sees exactly what it would see from the
// paper's pipeline: timed memory-reference events at basic-block
// interleaving granularity.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "core/types.h"

namespace compass::isa {

/// Opcodes, PowerPC-604-flavoured.
enum class Op : std::uint8_t {
  // arithmetic / logic (register-register)
  kAdd, kSub, kMul, kDiv, kAnd, kOr, kXor, kShl, kShr, kCmp,
  // immediates
  kLi,   ///< load immediate: rD = imm
  kAddi, ///< rD = rA + imm
  // memory
  kLd,   ///< rD = mem[rA + imm]   (8 bytes)
  kLw,   ///< rD = mem32[rA + imm] (4 bytes, zero-extended)
  kSt,   ///< mem[rA + imm] = rS   (8 bytes)
  kStw,  ///< mem32[rA + imm] = rS (4 bytes)
  kLdx,  ///< rD = mem[rA + rB]
  kStx,  ///< mem[rA + rB] = rS
  kSync, ///< atomic fetch&add on mem[rA + imm] (lwarx/stwcx pair)
  // control flow (basic-block terminators)
  kBeq,  ///< branch to block `target` when rA == rB
  kBne,
  kBlt,  ///< signed rA < rB
  kB,    ///< unconditional branch
  kHalt, ///< stop the program
  kCount,
};

inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kCount);
inline constexpr int kNumRegs = 32;

/// Estimated execution cycles per instruction (100% i-cache hits); the
/// memory-access stall of loads/stores comes from the backend, so their
/// entry here is the issue cost only.
constexpr std::array<Cycles, kNumOps> kOpCycles = {
    /*kAdd*/ 1, /*kSub*/ 1, /*kMul*/ 4, /*kDiv*/ 20, /*kAnd*/ 1,
    /*kOr*/ 1,  /*kXor*/ 1, /*kShl*/ 1, /*kShr*/ 1,  /*kCmp*/ 1,
    /*kLi*/ 1,  /*kAddi*/ 1,
    /*kLd*/ 1,  /*kLw*/ 1,  /*kSt*/ 1,  /*kStw*/ 1,
    /*kLdx*/ 1, /*kStx*/ 1, /*kSync*/ 3,
    /*kBeq*/ 1, /*kBne*/ 1, /*kBlt*/ 1, /*kB*/ 1, /*kHalt*/ 1,
};

inline constexpr Cycles op_cycles(Op op) {
  return kOpCycles[static_cast<std::size_t>(op)];
}

inline constexpr bool is_memory_op(Op op) {
  switch (op) {
    case Op::kLd: case Op::kLw: case Op::kSt: case Op::kStw:
    case Op::kLdx: case Op::kStx: case Op::kSync:
      return true;
    default:
      return false;
  }
}

inline constexpr bool is_terminator(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kB: case Op::kHalt:
      return true;
    default:
      return false;
  }
}

inline constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kCmp: return "cmp";
    case Op::kLi: return "li";
    case Op::kAddi: return "addi";
    case Op::kLd: return "ld";
    case Op::kLw: return "lw";
    case Op::kSt: return "st";
    case Op::kStw: return "stw";
    case Op::kLdx: return "ldx";
    case Op::kStx: return "stx";
    case Op::kSync: return "sync";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kB: return "b";
    case Op::kHalt: return "halt";
    case Op::kCount: break;
  }
  return "?";
}

/// One instruction. Fields are interpreted per opcode (see Op docs).
struct Insn {
  Op op = Op::kHalt;
  std::uint8_t rd = 0;  ///< destination / source (stores) register
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int64_t imm = 0; ///< immediate / displacement / branch target block
};

}  // namespace compass::isa
