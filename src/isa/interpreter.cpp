#include "isa/interpreter.h"

#include <cstring>

namespace compass::isa {

Interpreter::Interpreter(const Program& program, core::SimContext& ctx,
                         mem::AddressMap& mem)
    : program_(program), ctx_(ctx), mem_(mem) {
  COMPASS_CHECK_MSG(program_.instrumented(),
                    "program must be instrumented before execution");
}

void Interpreter::set_reg(int r, std::int64_t v) {
  COMPASS_CHECK(r >= 0 && r < kNumRegs);
  regs_[static_cast<std::size_t>(r)] = v;
}

std::int64_t Interpreter::reg(int r) const {
  COMPASS_CHECK(r >= 0 && r < kNumRegs);
  return regs_[static_cast<std::size_t>(r)];
}

Addr Interpreter::effective(const Insn& i, bool indexed) const {
  const auto base = static_cast<Addr>(regs_[i.ra]);
  return indexed ? base + static_cast<Addr>(regs_[i.rb])
                 : base + static_cast<Addr>(i.imm);
}

RunResult Interpreter::run(std::uint32_t entry_block, std::uint64_t max_insns) {
  RunResult res;
  std::uint32_t pc = entry_block;
  for (;;) {
    const BasicBlock& bb = program_.block(pc);
    ++res.blocks;
    std::uint32_t next = pc + 1;
    bool halted = false;
    Cycles pending = 0;  // issue cycles since the last event

    for (const Insn& i : bb.insns) {
      if (res.insns >= max_insns) {
        ctx_.compute(pending);
        return res;
      }
      ++res.insns;
      pending += op_cycles(i.op);
      auto& rd = regs_[i.rd];
      const std::int64_t ra = regs_[i.ra];
      const std::int64_t rb = regs_[i.rb];
      switch (i.op) {
        case Op::kAdd: rd = ra + rb; break;
        case Op::kSub: rd = ra - rb; break;
        case Op::kMul: rd = ra * rb; break;
        case Op::kDiv:
          COMPASS_CHECK_MSG(rb != 0, "division by zero");
          rd = ra / rb;
          break;
        case Op::kAnd: rd = ra & rb; break;
        case Op::kOr: rd = ra | rb; break;
        case Op::kXor: rd = ra ^ rb; break;
        case Op::kShl: rd = ra << (rb & 63); break;
        case Op::kShr:
          rd = static_cast<std::int64_t>(static_cast<std::uint64_t>(ra) >>
                                         (rb & 63));
          break;
        case Op::kCmp: rd = ra < rb ? -1 : (ra > rb ? 1 : 0); break;
        case Op::kLi: rd = i.imm; break;
        case Op::kAddi: rd = ra + i.imm; break;

        case Op::kLd:
        case Op::kLw:
        case Op::kLdx: {
          const Addr ea = effective(i, i.op == Op::kLdx);
          const std::uint32_t size = i.op == Op::kLw ? 4 : 8;
          ctx_.compute(pending);
          pending = 0;
          ctx_.load(ea, size);
          ++res.mem_refs;
          if (size == 8) {
            std::memcpy(&rd, mem_.host(ea), 8);
          } else {
            std::uint32_t v = 0;
            std::memcpy(&v, mem_.host(ea), 4);
            rd = v;
          }
          break;
        }
        case Op::kSt:
        case Op::kStw:
        case Op::kStx: {
          const Addr ea = effective(i, i.op == Op::kStx);
          const std::uint32_t size = i.op == Op::kStw ? 4 : 8;
          ctx_.compute(pending);
          pending = 0;
          ctx_.store(ea, size);
          ++res.mem_refs;
          const std::int64_t v = regs_[i.rd];
          std::memcpy(mem_.host(ea), &v, size);
          break;
        }
        case Op::kSync: {
          // lwarx/stwcx-style atomic fetch&add of rb into mem[ra+imm].
          const Addr ea = effective(i, false);
          ctx_.compute(pending);
          pending = 0;
          ctx_.sync_ref(ea, 8);
          ++res.mem_refs;
          std::int64_t old = 0;
          std::memcpy(&old, mem_.host(ea), 8);
          const std::int64_t updated = old + rb;
          std::memcpy(mem_.host(ea), &updated, 8);
          rd = old;
          break;
        }

        case Op::kBeq:
          if (ra == rb) next = static_cast<std::uint32_t>(i.imm);
          break;
        case Op::kBne:
          if (ra != rb) next = static_cast<std::uint32_t>(i.imm);
          break;
        case Op::kBlt:
          if (ra < rb) next = static_cast<std::uint32_t>(i.imm);
          break;
        case Op::kB:
          next = static_cast<std::uint32_t>(i.imm);
          break;
        case Op::kHalt:
          halted = true;
          break;
        case Op::kCount:
          COMPASS_CHECK(false);
      }
    }
    // Inserted code at the end of each basic block: flush the remaining
    // issue cycles into the execution-time value.
    ctx_.compute(pending);
    if (halted) {
      res.halted = true;
      return res;
    }
    pc = next;
  }
}

}  // namespace compass::isa
