// Basic-block program representation and the instrumentation pass.
//
// A Program is a list of basic blocks (straight-line instruction runs
// ending in a terminator). The instrumentation pass computes, per block,
// the metadata the paper's tool inserts as assembly: the block's estimated
// execution time and the positions of its memory references. The
// interpreter uses it to update the frontend's execution-time value per
// block and emit an event per reference.
#pragma once

#include <string>
#include <vector>

#include "isa/isa.h"
#include "util/check.h"

namespace compass::isa {

struct BasicBlock {
  std::vector<Insn> insns;

  // ---- filled in by Program::instrument() --------------------------------
  /// Total issue cycles of the block (100% i-cache hit assumption).
  Cycles est_cycles = 0;
  /// Indices of memory-reference instructions within `insns`.
  std::vector<std::uint32_t> mem_refs;
  bool instrumented = false;
};

class Program {
 public:
  /// Append a block; returns its index (branch targets refer to these).
  std::uint32_t add_block(std::vector<Insn> insns);

  const BasicBlock& block(std::uint32_t i) const {
    COMPASS_CHECK_MSG(i < blocks_.size(), "no basic block " << i);
    return blocks_[i];
  }
  std::size_t num_blocks() const { return blocks_.size(); }

  /// The instrumentation pass: validates block structure (exactly one
  /// terminator, at the end; branch targets in range) and attaches timing
  /// and reference metadata.
  void instrument();
  bool instrumented() const { return instrumented_; }

  std::size_t total_insns() const;
  std::string to_string() const;

 private:
  std::vector<BasicBlock> blocks_;
  bool instrumented_ = false;
};

/// Builder utility: assembles blocks with a fluent interface.
class ProgramBuilder {
 public:
  ProgramBuilder& op(Op o, int rd = 0, int ra = 0, int rb = 0,
                     std::int64_t imm = 0) {
    Insn i;
    i.op = o;
    i.rd = static_cast<std::uint8_t>(rd);
    i.ra = static_cast<std::uint8_t>(ra);
    i.rb = static_cast<std::uint8_t>(rb);
    i.imm = imm;
    current_.push_back(i);
    return *this;
  }
  ProgramBuilder& li(int rd, std::int64_t v) { return op(Op::kLi, rd, 0, 0, v); }
  ProgramBuilder& addi(int rd, int ra, std::int64_t v) {
    return op(Op::kAddi, rd, ra, 0, v);
  }
  ProgramBuilder& add(int rd, int ra, int rb) { return op(Op::kAdd, rd, ra, rb); }
  ProgramBuilder& ld(int rd, int ra, std::int64_t d = 0) {
    return op(Op::kLd, rd, ra, 0, d);
  }
  ProgramBuilder& st(int rs, int ra, std::int64_t d = 0) {
    return op(Op::kSt, rs, ra, 0, d);
  }
  /// End the block with a terminator; returns the finished block's index.
  std::uint32_t end_block(Program& p, Op term, int ra = 0, int rb = 0,
                          std::int64_t target = 0) {
    op(term, 0, ra, rb, target);
    const auto idx = p.add_block(std::move(current_));
    current_.clear();
    return idx;
  }

 private:
  std::vector<Insn> current_;
};

}  // namespace compass::isa
