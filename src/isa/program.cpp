#include "isa/program.h"

#include <sstream>

namespace compass::isa {

std::uint32_t Program::add_block(std::vector<Insn> insns) {
  COMPASS_CHECK_MSG(!insns.empty(), "empty basic block");
  instrumented_ = false;
  BasicBlock bb;
  bb.insns = std::move(insns);
  blocks_.push_back(std::move(bb));
  return static_cast<std::uint32_t>(blocks_.size() - 1);
}

void Program::instrument() {
  COMPASS_CHECK_MSG(!blocks_.empty(), "instrumenting an empty program");
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    BasicBlock& bb = blocks_[b];
    bb.est_cycles = 0;
    bb.mem_refs.clear();
    for (std::size_t i = 0; i < bb.insns.size(); ++i) {
      const Insn& insn = bb.insns[i];
      COMPASS_CHECK_MSG(
          is_terminator(insn.op) == (i == bb.insns.size() - 1),
          "block " << b << ": terminator must be exactly the last instruction");
      bb.est_cycles += op_cycles(insn.op);
      if (is_memory_op(insn.op))
        bb.mem_refs.push_back(static_cast<std::uint32_t>(i));
      if (insn.op == Op::kBeq || insn.op == Op::kBne || insn.op == Op::kBlt ||
          insn.op == Op::kB) {
        COMPASS_CHECK_MSG(static_cast<std::size_t>(insn.imm) < blocks_.size(),
                          "block " << b << ": branch target " << insn.imm
                                   << " out of range");
      }
    }
    bb.instrumented = true;
  }
  instrumented_ = true;
}

std::size_t Program::total_insns() const {
  std::size_t n = 0;
  for (const auto& bb : blocks_) n += bb.insns.size();
  return n;
}

std::string Program::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    os << "B" << b << ":";
    if (blocks_[b].instrumented)
      os << "  ; est " << blocks_[b].est_cycles << " cyc, "
         << blocks_[b].mem_refs.size() << " refs";
    os << '\n';
    for (const auto& insn : blocks_[b].insns) {
      os << "  " << isa::to_string(insn.op) << " r" << int{insn.rd} << ", r"
         << int{insn.ra} << ", r" << int{insn.rb} << ", " << insn.imm << '\n';
    }
  }
  return os.str();
}

}  // namespace compass::isa
