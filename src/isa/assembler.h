// A tiny two-pass text assembler for writing test/example programs.
//
// Syntax (one statement per line; ';' or '#' starts a comment):
//
//   loop:                     ; label — starts a new basic block
//     li   r1, 100
//     addi r2, r2, 8
//     ld   r3, r2, 0          ; rd, ra, displacement
//     st   r3, r4, 16
//     sync r5, r6, r7         ; rd = fetch&add(mem[ra], rb)
//     bne  r1, r0, loop       ; terminator; label operand
//     halt
//
// Every label starts a basic block; fall-through between blocks is made
// explicit by the assembler (an unconditional branch is appended when a
// block does not end in a terminator).
#pragma once

#include <string>
#include <string_view>

#include "isa/program.h"

namespace compass::isa {

/// Assemble `source` into an instrumented Program. Throws ConfigError with
/// a line number on syntax errors.
Program assemble(std::string_view source);

}  // namespace compass::isa
