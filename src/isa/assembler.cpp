#include "isa/assembler.h"

#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace compass::isa {

namespace {

struct Stmt {
  Insn insn;
  std::string label_operand;  // branch target to resolve in pass 2
  int line = 0;
};

std::optional<Op> parse_op(std::string_view name) {
  static const std::map<std::string_view, Op> kOps = {
      {"add", Op::kAdd},   {"sub", Op::kSub}, {"mul", Op::kMul},
      {"div", Op::kDiv},   {"and", Op::kAnd}, {"or", Op::kOr},
      {"xor", Op::kXor},   {"shl", Op::kShl}, {"shr", Op::kShr},
      {"cmp", Op::kCmp},   {"li", Op::kLi},   {"addi", Op::kAddi},
      {"ld", Op::kLd},     {"lw", Op::kLw},   {"st", Op::kSt},
      {"stw", Op::kStw},   {"ldx", Op::kLdx}, {"stx", Op::kStx},
      {"sync", Op::kSync}, {"beq", Op::kBeq}, {"bne", Op::kBne},
      {"blt", Op::kBlt},   {"b", Op::kB},     {"halt", Op::kHalt},
  };
  const auto it = kOps.find(name);
  return it == kOps.end() ? std::nullopt : std::optional{it->second};
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw util::ConfigError("asm line " + std::to_string(line) + ": " + what);
}

int parse_reg(std::string_view tok, int line) {
  if (tok.size() < 2 || tok[0] != 'r') fail(line, "expected register, got '" + std::string(tok) + "'");
  int r = 0;
  for (const char c : tok.substr(1)) {
    if (c < '0' || c > '9') fail(line, "bad register '" + std::string(tok) + "'");
    r = r * 10 + (c - '0');
  }
  if (r >= kNumRegs) fail(line, "register out of range");
  return r;
}

std::int64_t parse_imm(std::string_view tok, int line) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(std::string(tok), &pos, 0);
    if (pos != tok.size()) throw std::invalid_argument("trail");
    return v;
  } catch (const std::exception&) {
    fail(line, "bad immediate '" + std::string(tok) + "'");
  }
}

std::vector<std::string> split_operands(std::string_view rest) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : rest) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

Program assemble(std::string_view source) {
  // Pass 1: tokenize into blocks, collecting label -> block index.
  std::map<std::string, std::uint32_t> labels;
  std::vector<std::vector<Stmt>> blocks;
  std::vector<Stmt> current;
  int line_no = 0;

  auto close_block = [&](bool add_fallthrough) {
    if (current.empty()) return;
    if (add_fallthrough && !is_terminator(current.back().insn.op)) {
      // Explicit fall-through to the next block.
      Stmt s;
      s.insn.op = Op::kB;
      s.insn.imm = static_cast<std::int64_t>(blocks.size() + 1);
      s.line = line_no;
      current.push_back(s);
    }
    blocks.push_back(std::move(current));
    current.clear();
  };

  std::istringstream in{std::string(source)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments and whitespace.
    if (const auto c = raw.find_first_of(";#"); c != std::string::npos)
      raw.erase(c);
    const auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = raw.find_last_not_of(" \t\r");
    std::string text = raw.substr(first, last - first + 1);

    if (text.back() == ':') {
      const std::string label = text.substr(0, text.size() - 1);
      if (labels.contains(label)) fail(line_no, "duplicate label '" + label + "'");
      close_block(true);
      labels[label] = static_cast<std::uint32_t>(blocks.size());
      continue;
    }

    const auto sp = text.find_first_of(" \t");
    const std::string mnemonic = text.substr(0, sp);
    const auto op = parse_op(mnemonic);
    if (!op.has_value()) fail(line_no, "unknown mnemonic '" + mnemonic + "'");
    const auto ops = sp == std::string::npos
                         ? std::vector<std::string>{}
                         : split_operands(std::string_view(text).substr(sp));

    Stmt s;
    s.insn.op = *op;
    s.line = line_no;
    switch (*op) {
      case Op::kHalt:
        break;
      case Op::kB:
        if (ops.size() != 1) fail(line_no, "b needs 1 operand");
        s.label_operand = ops[0];
        break;
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
        if (ops.size() != 3) fail(line_no, "branch needs ra, rb, label");
        s.insn.ra = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        s.insn.rb = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        s.label_operand = ops[2];
        break;
      case Op::kLi:
        if (ops.size() != 2) fail(line_no, "li needs rd, imm");
        s.insn.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        s.insn.imm = parse_imm(ops[1], line_no);
        break;
      case Op::kAddi:
      case Op::kLd:
      case Op::kLw:
      case Op::kSt:
      case Op::kStw:
      case Op::kSync:
        if (ops.size() != 3) fail(line_no, std::string(to_string(*op)) + " needs rd, ra, imm");
        s.insn.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        s.insn.ra = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        if (*op == Op::kSync) {
          s.insn.rb = static_cast<std::uint8_t>(parse_reg(ops[2], line_no));
        } else {
          s.insn.imm = parse_imm(ops[2], line_no);
        }
        break;
      default:  // three-register ALU ops / indexed memory ops
        if (ops.size() != 3) fail(line_no, std::string(to_string(*op)) + " needs rd, ra, rb");
        s.insn.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        s.insn.ra = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        s.insn.rb = static_cast<std::uint8_t>(parse_reg(ops[2], line_no));
        break;
    }
    current.push_back(std::move(s));
    if (is_terminator(current.back().insn.op)) close_block(false);
  }
  close_block(false);
  if (!blocks.empty() && !blocks.back().empty() &&
      !is_terminator(blocks.back().back().insn.op)) {
    Stmt s;
    s.insn.op = Op::kHalt;
    blocks.back().push_back(s);
  }

  // Pass 2: resolve labels and build the program.
  Program program;
  for (auto& stmts : blocks) {
    std::vector<Insn> insns;
    insns.reserve(stmts.size());
    for (auto& s : stmts) {
      if (!s.label_operand.empty()) {
        const auto it = labels.find(s.label_operand);
        if (it == labels.end()) fail(s.line, "undefined label '" + s.label_operand + "'");
        s.insn.imm = it->second;
      }
      insns.push_back(s.insn);
    }
    program.add_block(std::move(insns));
  }
  program.instrument();
  return program;
}

}  // namespace compass::isa
