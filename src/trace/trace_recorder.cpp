#include "trace/trace_recorder.h"

#include "dev/device_hub.h"
#include "trace/config_codec.h"

namespace compass::trace {

TraceRecorder::TraceRecorder(const sim::SimulationConfig& cfg,
                             const std::string& path)
    : writer_(path), config_(encode_config(cfg)) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::ensure_header() {
  if (header_written_) return;
  header_written_ = true;
  writer_.write_header(config_, procs_);
  for (const auto& [channel, permits] : early_seeds_)
    writer_.channel_seed(channel, permits);
  early_seeds_.clear();
}

void TraceRecorder::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  finalized_ = true;
  ensure_header();  // even an empty run yields a valid trace
  COMPASS_CHECK_MSG(!pending_tx_.active, "unflushed tx batch at finalize");
  writer_.finish();
}

void TraceRecorder::on_add_proc(ProcId id, const std::string& name,
                                ProcKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  COMPASS_CHECK_MSG(!header_written_, "proc registered after recording began");
  COMPASS_CHECK(static_cast<std::size_t>(id) == procs_.size());
  procs_.push_back(ProcEntry{name, kind});
}

void TraceRecorder::on_channel_seed(core::WaitChannel channel,
                                    std::uint64_t permits) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!header_written_) {
    early_seeds_.emplace_back(channel, permits);
    return;
  }
  writer_.channel_seed(channel, permits);
}

void TraceRecorder::on_batch(ProcId proc, Cycles base,
                             std::span<const core::Event> events) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_header();
  Cycles delta0 = events.front().time - base;
  if (const auto it = preempt_delta0_.find(proc); it != preempt_delta0_.end()) {
    delta0 = it->second;
    preempt_delta0_.erase(it);
  }
  // A kEthTx batch is deferred until its on_tx_frame sibling arrives so the
  // reader sees the staged size before the request that consumes it.
  if (events.size() == 1 && events[0].kind == core::EventKind::kDevRequest &&
      static_cast<dev::DevOp>(events[0].arg[0]) == dev::DevOp::kEthTx) {
    COMPASS_CHECK_MSG(!pending_tx_.active, "overlapping kEthTx batches");
    pending_tx_.active = true;
    pending_tx_.proc = proc;
    pending_tx_.delta0 = delta0;
    pending_tx_.events.assign(events.begin(), events.end());
    return;
  }
  writer_.batch(proc, delta0, events);
}

void TraceRecorder::on_preempt(ProcId proc, Cycles base, Cycles event_time) {
  std::lock_guard<std::mutex> lock(mu_);
  // Only the first preemption of a still-pending batch sees the original
  // frontend-stamped time; later rebases are backend bookkeeping.
  preempt_delta0_.try_emplace(proc, event_time - base);
}

void TraceRecorder::on_irq_pop(ProcId proc, CpuId cpu) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_header();
  writer_.irq_pop(proc, cpu);
}

void TraceRecorder::on_tx_frame(ProcId proc, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_header();
  writer_.tx_frame(proc, bytes);
  COMPASS_CHECK_MSG(pending_tx_.active && pending_tx_.proc == proc,
                    "tx frame without its kEthTx batch");
  writer_.batch(pending_tx_.proc, pending_tx_.delta0, pending_tx_.events);
  pending_tx_.active = false;
  pending_tx_.events.clear();
}

void TraceRecorder::on_rx_stimulus(Cycles when, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_header();
  writer_.rx_stimulus(when, bytes);
}

}  // namespace compass::trace
