#include "trace/trace_replayer.h"

#include <algorithm>

#include "trace/config_codec.h"

namespace compass::trace {

using core::TraceSink;

TraceReplayer::TraceReplayer(const TraceData& data, sim::SimulationConfig cfg)
    : data_(data), cfg_(std::move(cfg)) {
  cfg_.core.validate();
  std::uint64_t recorded_cpus = 0;
  if (config_lookup(data_.config, ConfigKey::kNumCpus, recorded_cpus)) {
    COMPASS_CHECK_MSG(
        static_cast<std::uint64_t>(cfg_.core.num_cpus) == recorded_cpus,
        "replay num_cpus (" << cfg_.core.num_cpus << ") must match recording ("
                            << recorded_cpus
                            << "): the proc table has one bottom half per CPU");
  }

  comm_ = std::make_unique<core::Communicator>(cfg_.core.num_cpus,
                                               cfg_.core.host_cpus);
  mem::VmConfig vm_cfg;
  vm_cfg.num_nodes = cfg_.core.num_nodes;
  vm_cfg.placement = cfg_.placement;
  vm_ = std::make_unique<mem::Vm>(vm_cfg, &registry_);

  // No trampoline needed here: the replayer owns the registry outright, so
  // the machine can be built before the backend.
  switch (cfg_.model) {
    case sim::BackendModel::kFlat:
      machine_ = std::make_unique<mem::FlatMemory>(cfg_.flat_latency, vm_.get(),
                                                   &registry_);
      break;
    case sim::BackendModel::kSimple:
      machine_ = std::make_unique<mem::SimpleMachine>(
          cfg_.simple, cfg_.core.num_cpus, *vm_, &registry_);
      break;
    case sim::BackendModel::kNuma: {
      mem::NumaMachineConfig numa = cfg_.numa;
      numa.placement = cfg_.placement;
      machine_ = std::make_unique<mem::NumaMachine>(
          numa, cfg_.core.num_cpus, cfg_.core.num_nodes, *vm_, &registry_);
      break;
    }
  }

  devices_ = std::make_unique<dev::DeviceHub>(cfg_.devices, &registry_);
  backend_os_ = std::make_unique<os::BackendOs>(*vm_);

  // A recorded fault plan must perturb the replayed backend identically:
  // the scheduler-jitter stream is re-derived from the plan's seed, while
  // disk fault decisions arrive inside recorded kDevRequest args and rx
  // dup/corrupt copies were each recorded as their own stimulus (so the
  // hub gets the plan for timing but no injector to draw from).
  if (cfg_.fault.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(cfg_.fault);
    devices_->set_fault(&cfg_.fault, nullptr);
  }

  core::Backend::Hooks hooks;
  hooks.memsys = machine_.get();
  hooks.backend_calls = backend_os_.get();
  hooks.devices = devices_.get();
  hooks.idle_irq = this;
  if (injector_ != nullptr) hooks.sched_perturb = injector_.get();
  backend_ = std::make_unique<core::Backend>(cfg_.core, *comm_, hooks,
                                             &registry_);
  devices_->bind(*backend_);
  backend_os_->bind(*backend_);

  // Re-register the recorded processes in order: registration order defines
  // the ProcId, so ids in the streams resolve to the same ports.
  for (std::size_t i = 0; i < data_.procs.size(); ++i) {
    const ProcEntry& p = data_.procs[i];
    ProcId id = kNoProc;
    switch (p.kind) {
      case TraceSink::ProcKind::kProcess: id = backend_->add_process(p.name); break;
      case TraceSink::ProcKind::kBottomHalf: id = backend_->add_bottom_half(p.name); break;
      case TraceSink::ProcKind::kDaemon: id = backend_->add_daemon(p.name); break;
    }
    COMPASS_CHECK(static_cast<std::size_t>(id) == i);
    auto s = std::make_unique<Stream>();
    s->ops = &data_.streams[i];
    s->kind = p.kind;
    streams_.push_back(std::move(s));
  }

  // Channel seeds use fresh host-generated channel ids, so replaying them
  // all up front (instead of at their recorded stream position) is safe:
  // nothing can block on a channel before the seed's recording point.
  for (const auto& [channel, permits] : data_.channel_seeds)
    backend_->init_channel_permits(channel, permits);
}

TraceReplayer::~TraceReplayer() {
  // run() joins everything; an unrun replayer has no threads.
}

void TraceReplayer::run() {
  COMPASS_CHECK_MSG(!ran_, "TraceReplayer::run() called twice");
  ran_ = true;

  // Re-inject the recorded wire stimuli at their recorded absolute cycles.
  // The global scheduler breaks equal-time ties by insertion order, so
  // same-cycle stimuli keep their recorded relative order.
  for (const TraceData::RxStimulus& st : data_.rx_stimuli) {
    backend_->scheduler().schedule_at(st.when, [this, st] {
      const std::uint64_t id =
          devices_->ethernet().inject_rx(std::vector<std::uint8_t>(st.bytes, 0));
      backend_->raise_irq(backend_->pick_irq_cpu(),
                          core::IrqDesc{core::Irq::kEthernetRx, id, 0});
    });
  }

  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = *streams_[i];
    const ProcId proc = static_cast<ProcId>(i);
    if (s.kind == TraceSink::ProcKind::kBottomHalf)
      s.thread = std::thread([this, &s, proc] { bottom_half_main(s, proc); });
    else
      s.thread = std::thread([this, &s, proc] { play_whole_stream(s, proc); });
  }

  std::exception_ptr err;
  try {
    backend_->run();
  } catch (...) {
    // Backend::run() closed all ports on its way out, so replay threads
    // stuck in a post see aborted replies and unwind.
    err = std::current_exception();
  }
  for (auto& sp : streams_) {
    if (sp->kind != TraceSink::ProcKind::kBottomHalf) continue;
    {
      std::lock_guard<std::mutex> lock(sp->mu);
      sp->stop = true;
    }
    sp->cv.notify_one();
  }
  for (auto& sp : streams_)
    if (sp->thread.joinable()) sp->thread.join();
  if (err) std::rethrow_exception(err);
}

void TraceReplayer::dispatch_idle_irq(CpuId cpu, ProcId bh_proc, Cycles when) {
  Stream& s = *streams_.at(static_cast<std::size_t>(bh_proc));
  COMPASS_CHECK(s.kind == TraceSink::ProcKind::kBottomHalf);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.work.emplace_back(cpu, when);
  }
  s.cv.notify_one();
}

void TraceReplayer::play_whole_stream(Stream& s, ProcId proc) {
  core::HostThrottle::Hold hold(comm_->throttle());
  (void)play_ops(s, proc, /*bh_group=*/false);
  // kExhausted: the stream ends with kExit (application) or with the batch
  // live recording drained at shutdown (daemon) — either way the backend
  // needs nothing further from this process. kAborted: shutdown unwind.
}

void TraceReplayer::bottom_half_main(Stream& s, ProcId proc) {
  core::HostThrottle::Hold hold(comm_->throttle());
  for (;;) {
    std::pair<CpuId, Cycles> item;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait(lock, [&s] { return s.stop || !s.work.empty(); });
      if (s.work.empty()) return;  // stop requested and drained
      item = s.work.front();
      s.work.pop_front();
    }
    // The backend set our time base when it bound us to the CPU
    // (maybe_dispatch_idle_irq sets last_time = when before dispatching).
    s.base = item.second;
    s.cur_cpu = item.first;
    if (s.next >= s.ops->size()) {
      if (!synthesize_drain(proc, item.first, item.second)) return;
      continue;
    }
    if (play_ops(s, proc, /*bh_group=*/true) == PlayStatus::kAborted) return;
  }
}

TraceReplayer::PlayStatus TraceReplayer::play_ops(Stream& s, ProcId proc,
                                                  bool bh_group) {
  core::EventPort& port = comm_->port(proc);
  std::vector<core::Event> batch;
  while (s.next < s.ops->size()) {
    const TraceData::Op& op = (*s.ops)[s.next];
    switch (op.kind) {
      case TraceData::Op::Kind::kIrqPop: {
        // Pop against the cpu this thread currently runs on (tracked from
        // replies), not the recorded one: under a modified configuration
        // the scheduler may have placed us elsewhere, and the handler must
        // drain the queue of the cpu that took the interrupt.
        COMPASS_CHECK_MSG(s.cur_cpu != kNoCpu, "irq pop before first reply");
        (void)comm_->cpu_state(s.cur_cpu).pop();
        ++s.next;
        break;
      }
      case TraceData::Op::Kind::kTxFrame: {
        // Stage a frame of the recorded size; payload bytes are irrelevant
        // to timing. The fresh id replaces the recorded (host-handle) id in
        // the kEthTx request that follows in this stream.
        s.staged_ids.push_back(devices_->ethernet().stage_tx(
            std::vector<std::uint8_t>(op.bytes, 0)));
        ++s.next;
        break;
      }
      case TraceData::Op::Kind::kBatch: {
        batch = op.events;  // copy: times are rewritten below
        Cycles t = s.base;
        for (core::Event& ev : batch) {
          t += ev.time;  // stored as delta
          ev.time = t;
        }
        if (batch.size() == 1 &&
            batch[0].kind == core::EventKind::kDevRequest &&
            static_cast<dev::DevOp>(batch[0].arg[0]) == dev::DevOp::kEthTx) {
          COMPASS_CHECK_MSG(!s.staged_ids.empty(),
                            "kEthTx with no staged frame in stream");
          batch[0].arg[1] = s.staged_ids.front();
          s.staged_ids.pop_front();
        }
        const core::Reply r = port.post_and_wait(batch);
        ++s.next;
        if (r.aborted) return PlayStatus::kAborted;
        // Mirror SimContext::handle_reply: the frontend rebases to the
        // reply's resume time and learns its current cpu.
        s.base = std::max(batch.back().time, r.resume_time);
        if (r.cpu != kNoCpu) s.cur_cpu = r.cpu;
        if (bh_group && batch.size() == 1 &&
            batch[0].kind == core::EventKind::kIrqExit)
          return PlayStatus::kIrqExit;
        break;
      }
    }
  }
  return PlayStatus::kExhausted;
}

bool TraceReplayer::synthesize_drain(ProcId proc, CpuId cpu, Cycles when) {
  // Only reachable under a modified configuration: the new machine raised
  // an idle-cpu interrupt the recorded run never serviced. Minimal handler:
  // enter, drain the descriptor queue, exit.
  core::EventPort& port = comm_->port(proc);
  const core::Event enter =
      core::Event::control(core::EventKind::kIrqEnter, ExecMode::kKernel, when);
  const core::Reply r1 = port.post_and_wait(std::span(&enter, 1));
  if (r1.aborted) return false;
  while (comm_->cpu_state(cpu).pop().has_value()) {
  }
  const core::Event exit = core::Event::control(
      core::EventKind::kIrqExit, ExecMode::kKernel, std::max(when, r1.resume_time));
  const core::Reply r2 = port.post_and_wait(std::span(&exit, 1));
  return !r2.aborted;
}

}  // namespace compass::trace
