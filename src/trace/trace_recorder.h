// TraceRecorder: the live TraceSink. Plug one into
// SimulationConfig::trace_sink and it captures the entire backend input
// stream into a trace file as the simulation runs.
//
// The header (config block + proc table) is written lazily at the first
// streamed record: channel seeds fire from the Kernel constructor before
// application processes register, so seeds are buffered in memory and
// flushed once the proc table is final (process registration strictly
// precedes Backend::run(), which produces the first batch).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/trace_sink.h"
#include "sim/simulation.h"
#include "trace/trace_writer.h"

namespace compass::trace {

class TraceRecorder : public core::TraceSink {
 public:
  /// Opens `path`; `cfg` is fingerprinted and serialized into the header.
  TraceRecorder(const sim::SimulationConfig& cfg, const std::string& path);
  ~TraceRecorder() override;

  /// Writes the end record and closes the file. Call after Simulation::run()
  /// returns successfully; a recorder destroyed without finalize() leaves a
  /// deliberately invalid (endless) trace.
  void finalize();

  std::uint64_t records_written() const { return writer_.records_written(); }
  std::uint64_t events_written() const { return writer_.events_written(); }

  void on_add_proc(ProcId id, const std::string& name, ProcKind kind) override;
  void on_channel_seed(core::WaitChannel channel, std::uint64_t permits) override;
  void on_batch(ProcId proc, Cycles base, std::span<const core::Event> events) override;
  void on_preempt(ProcId proc, Cycles base, Cycles event_time) override;
  void on_irq_pop(ProcId proc, CpuId cpu) override;
  void on_tx_frame(ProcId proc, std::uint64_t bytes) override;
  void on_rx_stimulus(Cycles when, std::uint64_t bytes) override;

 private:
  void ensure_header();  // requires mu_

  std::mutex mu_;
  TraceWriter writer_;
  ConfigPairs config_;
  std::vector<ProcEntry> procs_;
  std::vector<std::pair<core::WaitChannel, std::uint64_t>> early_seeds_;
  /// Time-base correction pending from a preemption rebase: the next batch
  /// dispatched for the proc carries the original (pre-rebase) delta, which
  /// this override folds back in so replayed posts advance time exactly as
  /// the live frontend did.
  std::map<ProcId, Cycles> preempt_delta0_;
  /// A kEthTx control batch held back until its on_tx_frame record (the
  /// frame size) is written; both fire back-to-back on the backend thread.
  struct PendingTx {
    bool active = false;
    ProcId proc = 0;
    Cycles delta0 = 0;
    std::vector<core::Event> events;
  };
  PendingTx pending_tx_;
  bool header_written_ = false;
  bool finalized_ = false;
};

}  // namespace compass::trace
