// TraceReplayer: re-drives the backend from a recorded event trace, with no
// live frontend processes, no OS server and no host kernel code.
//
// Replay rebuilds the frontend side of the event contract from the per-proc
// op streams: each recorded process becomes a lightweight host thread that
// posts its recorded batches through a real EventPort, rebasing event times
// against the replies the *replayed* backend produces — exactly the
// SimContext::handle_reply discipline. Against the recorded machine
// configuration the backend therefore sees bit-identical inputs and
// reproduces bit-identical cycles and counters; against a modified
// configuration the same workload event stream is re-timed by the new
// machine (trace-driven what-if simulation).
//
// Divergence handling under modified configurations:
//  - interrupt-descriptor pops execute against the thread's *current* cpu
//    (tracked from replies), not the recorded one, so handler streams drain
//    the queue they actually run on;
//  - a bottom-half whose recorded stream is exhausted but which is
//    re-dispatched synthesizes a minimal kIrqEnter/drain/kIrqExit group to
//    keep the backend live;
//  - rx stimuli are re-injected at their recorded absolute cycles.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/communicator.h"
#include "dev/device_hub.h"
#include "mem/machine.h"
#include "os/backend_os.h"
#include "sim/simulation.h"
#include "trace/trace_reader.h"

namespace compass::trace {

class TraceReplayer : public core::IdleIrqDispatcher {
 public:
  /// Builds the backend complex for `cfg` and binds `data`'s streams to it.
  /// `cfg.core.num_cpus` must match the recorded CPU count (the proc table
  /// bakes in one bottom half per CPU); everything else may differ from the
  /// recording. `data` must outlive the replayer.
  TraceReplayer(const TraceData& data, sim::SimulationConfig cfg);
  ~TraceReplayer() override;

  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  /// Replays to completion: starts one host thread per recorded process,
  /// runs the backend main loop on the calling thread, joins everything.
  void run();

  core::Backend& backend() { return *backend_; }
  stats::StatsRegistry& stats() { return registry_; }
  const stats::TimeBreakdown& breakdown() const {
    return backend_->time_breakdown();
  }
  Cycles now() const { return backend_->now(); }
  const sim::SimulationConfig& config() const { return cfg_; }

  void dispatch_idle_irq(CpuId cpu, ProcId bh_proc, Cycles when) override;

 private:
  enum class PlayStatus { kAborted, kExhausted, kIrqExit };

  struct Stream {
    const std::vector<TraceData::Op>* ops = nullptr;
    std::size_t next = 0;
    Cycles base = 0;                       ///< reply-rebased time base
    CpuId cur_cpu = kNoCpu;                ///< tracked from replies
    std::deque<std::uint64_t> staged_ids;  ///< fresh tx ids awaiting kEthTx
    core::TraceSink::ProcKind kind = core::TraceSink::ProcKind::kProcess;
    // Bottom-half dispatch mailbox (backend thread -> bh thread).
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<CpuId, Cycles>> work;
    bool stop = false;
    std::thread thread;
  };

  void play_whole_stream(Stream& s, ProcId proc);
  void bottom_half_main(Stream& s, ProcId proc);
  PlayStatus play_ops(Stream& s, ProcId proc, bool bh_group);
  /// Post a synthetic enter/drain/exit group for a re-dispatched bottom
  /// half whose recorded stream ran out (diverged configuration only).
  bool synthesize_drain(ProcId proc, CpuId cpu, Cycles when);

  const TraceData& data_;
  sim::SimulationConfig cfg_;
  stats::StatsRegistry registry_;
  // Rebuilt from the decoded plan so the backend re-derives the recorded
  // scheduler jitter; disk/rx faults need no replay draws (they ride in
  // recorded events / stimuli), so the hub gets the plan but no injector.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<core::Communicator> comm_;
  std::unique_ptr<mem::Vm> vm_;
  std::unique_ptr<core::MemorySystem> machine_;
  std::unique_ptr<dev::DeviceHub> devices_;
  std::unique_ptr<os::BackendOs> backend_os_;
  std::unique_ptr<core::Backend> backend_;
  std::vector<std::unique_ptr<Stream>> streams_;  ///< indexed by ProcId
  bool ran_ = false;
};

}  // namespace compass::trace
