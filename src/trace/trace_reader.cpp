#include "trace/trace_reader.h"

#include <cstdio>
#include <memory>

namespace compass::trace {

namespace {

std::uint32_t get_u32le(ByteReader& r) {
  std::array<std::uint8_t, 4> b;
  r.raw(b);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

std::uint64_t get_u64le(ByteReader& r) {
  std::array<std::uint8_t, 8> b;
  r.raw(b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

ProcId read_proc_id(ByteReader& r, const TraceData& data) {
  const std::uint64_t raw = r.varint();
  if (raw >= data.procs.size())
    throw TraceError("record references unknown proc " + std::to_string(raw));
  return static_cast<ProcId>(raw);
}

core::Event decode_event(ByteReader& r, Addr& last_addr) {
  const std::uint8_t packed = r.u8();
  const auto kind_raw = packed & 0x0Fu;
  if (kind_raw > static_cast<unsigned>(core::EventKind::kExit))
    throw TraceError("invalid event kind " + std::to_string(kind_raw) +
                     " at byte " + std::to_string(r.pos()));
  core::Event ev;
  ev.kind = static_cast<core::EventKind>(kind_raw);
  ev.mode = static_cast<ExecMode>((packed >> 4) & 0x03u);
  ev.ref_type = static_cast<RefType>((packed >> 6) & 0x03u);
  if (ev.ref_type > RefType::kSync)
    throw TraceError("invalid ref type at byte " + std::to_string(r.pos()));
  ev.time = static_cast<Cycles>(r.varint());  // delta, rebased at replay
  if (ev.kind == core::EventKind::kMemRef) {
    ev.size = static_cast<std::uint32_t>(r.varint());
    const std::int64_t delta = unzigzag(r.varint());
    ev.addr = static_cast<Addr>(static_cast<std::int64_t>(last_addr) + delta);
    last_addr = ev.addr;
  } else if (ev.kind != core::EventKind::kYield) {
    const std::uint8_t mask = r.u8();
    if ((mask & ~0x0Fu) != 0)
      throw TraceError("invalid arg mask at byte " + std::to_string(r.pos()));
    for (int i = 0; i < 4; ++i)
      if ((mask & (1u << i)) != 0) ev.arg[static_cast<std::size_t>(i)] = r.varint();
  }
  return ev;
}

}  // namespace

TraceData TraceReader::read_bytes(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  TraceData data;

  std::array<std::uint8_t, 8> magic;
  r.raw(magic);
  if (magic != kMagic) throw TraceError("bad magic: not a COMPASS trace file");

  const std::uint32_t version = get_u32le(r);
  if (version != kVersion)
    throw TraceError("unsupported trace version " + std::to_string(version) +
                     " (expected " + std::to_string(kVersion) + ")");

  data.config_hash = get_u64le(r);
  const std::size_t config_start = r.pos();
  const std::uint64_t num_pairs = r.varint();
  data.config.reserve(num_pairs);
  for (std::uint64_t i = 0; i < num_pairs; ++i) {
    const std::uint64_t key = r.varint();
    const std::uint64_t value = r.varint();
    data.config.emplace_back(static_cast<std::uint32_t>(key), value);
  }
  const std::uint64_t computed = fnv1a(bytes.subspan(config_start, r.pos() - config_start));
  if (computed != data.config_hash)
    throw TraceError("config fingerprint mismatch: header says " +
                     std::to_string(data.config_hash) + ", block hashes to " +
                     std::to_string(computed));

  const std::uint64_t num_procs = r.varint();
  for (std::uint64_t i = 0; i < num_procs; ++i) {
    ProcEntry p;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(core::TraceSink::ProcKind::kDaemon))
      throw TraceError("invalid proc kind " + std::to_string(kind));
    p.kind = static_cast<core::TraceSink::ProcKind>(kind);
    const std::uint64_t len = r.varint();
    p.name.resize(len);
    r.raw(std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(p.name.data()), len));
    data.procs.push_back(std::move(p));
  }
  data.streams.resize(data.procs.size());
  std::vector<Addr> last_addr(data.procs.size(), 0);

  bool saw_end = false;
  while (!saw_end) {
    const std::uint8_t tag = r.u8();
    switch (static_cast<RecordTag>(tag)) {
      case RecordTag::kBatch: {
        const ProcId proc = read_proc_id(r, data);
        const std::uint64_t count = r.varint();
        if (count == 0) throw TraceError("empty batch record");
        TraceData::Op op;
        op.kind = TraceData::Op::Kind::kBatch;
        op.events.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i)
          op.events.push_back(
              decode_event(r, last_addr[static_cast<std::size_t>(proc)]));
        data.total_events += count;
        data.streams[static_cast<std::size_t>(proc)].push_back(std::move(op));
        break;
      }
      case RecordTag::kIrqPop: {
        const ProcId proc = read_proc_id(r, data);
        TraceData::Op op;
        op.kind = TraceData::Op::Kind::kIrqPop;
        op.cpu = static_cast<CpuId>(r.varint());
        data.streams[static_cast<std::size_t>(proc)].push_back(std::move(op));
        break;
      }
      case RecordTag::kChannelSeed: {
        const core::WaitChannel channel = r.varint();
        const std::uint64_t permits = r.varint();
        data.channel_seeds.emplace_back(channel, permits);
        break;
      }
      case RecordTag::kTxFrame: {
        const ProcId proc = read_proc_id(r, data);
        TraceData::Op op;
        op.kind = TraceData::Op::Kind::kTxFrame;
        op.bytes = r.varint();
        data.streams[static_cast<std::size_t>(proc)].push_back(std::move(op));
        break;
      }
      case RecordTag::kRxStimulus: {
        TraceData::RxStimulus st;
        st.when = static_cast<Cycles>(r.varint());
        st.bytes = r.varint();
        data.rx_stimuli.push_back(st);
        break;
      }
      case RecordTag::kEnd: {
        const std::uint64_t records = r.varint();
        const std::uint64_t events = r.varint();
        if (records != data.total_records || events != data.total_events)
          throw TraceError(
              "end-record count mismatch (trace truncated or corrupt): file "
              "says " + std::to_string(records) + " records / " +
              std::to_string(events) + " events, decoded " +
              std::to_string(data.total_records) + " / " +
              std::to_string(data.total_events));
        saw_end = true;
        continue;  // don't count kEnd itself
      }
      default:
        throw TraceError("unknown record tag " + std::to_string(tag) +
                         " at byte " + std::to_string(r.pos() - 1));
    }
    ++data.total_records;
  }
  if (!r.at_end())
    throw TraceError("trailing garbage after end record at byte " +
                     std::to_string(r.pos()));
  return data;
}

TraceData TraceReader::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw TraceError("cannot open trace file: " + path);
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 64 * 1024> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(n));
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw TraceError("read error on trace file: " + path);
  return read_bytes(bytes);
}

}  // namespace compass::trace
