#include "trace/trace_writer.h"

namespace compass::trace {

namespace {
constexpr std::size_t kFlushThreshold = 256 * 1024;

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    throw TraceError("cannot open trace file for writing: " + path);
  buf_.reserve(kFlushThreshold + 4096);
}

TraceWriter::~TraceWriter() {
  // An unfinished writer leaves a trace without the kEnd record; the reader
  // rejects it, which is the right outcome for an aborted recording. Write
  // errors cannot be reported from a destructor, so ignore them here.
  if (file_ != nullptr) {
    if (!buf_.empty()) (void)std::fwrite(buf_.data(), 1, buf_.size(), file_);
    std::fclose(file_);
  }
}

void TraceWriter::write_header(const ConfigPairs& config,
                               std::span<const ProcEntry> procs) {
  COMPASS_CHECK_MSG(!header_written_, "trace header written twice");
  header_written_ = true;

  std::vector<std::uint8_t> config_block;
  put_varint(config_block, config.size());
  for (const auto& [key, value] : config) {
    put_varint(config_block, key);
    put_varint(config_block, value);
  }

  buf_.insert(buf_.end(), kMagic.begin(), kMagic.end());
  put_u32le(buf_, kVersion);
  put_u64le(buf_, fnv1a(config_block));
  buf_.insert(buf_.end(), config_block.begin(), config_block.end());

  put_varint(buf_, procs.size());
  for (const ProcEntry& p : procs) {
    buf_.push_back(static_cast<std::uint8_t>(p.kind));
    put_varint(buf_, p.name.size());
    buf_.insert(buf_.end(), p.name.begin(), p.name.end());
  }
  last_addr_.assign(procs.size(), 0);
}

void TraceWriter::tag(RecordTag t) {
  COMPASS_CHECK_MSG(header_written_, "trace record before header");
  COMPASS_CHECK_MSG(!finished_, "trace record after finish()");
  buf_.push_back(static_cast<std::uint8_t>(t));
  ++records_;
}

void TraceWriter::batch(ProcId proc, Cycles delta0,
                        std::span<const core::Event> events) {
  tag(RecordTag::kBatch);
  COMPASS_CHECK(proc >= 0 &&
                static_cast<std::size_t>(proc) < last_addr_.size());
  COMPASS_CHECK(!events.empty());
  put_varint(buf_, static_cast<std::uint64_t>(proc));
  put_varint(buf_, events.size());
  Cycles prev = 0;
  bool first = true;
  for (const core::Event& ev : events) {
    COMPASS_CHECK_MSG(first || ev.time >= prev,
                      "non-monotonic event time in batch");
    const Cycles dt = first ? delta0 : ev.time - prev;
    prev = ev.time;
    first = false;
    buf_.push_back(pack_event_byte(ev));
    put_varint(buf_, static_cast<std::uint64_t>(dt));
    if (ev.kind == core::EventKind::kMemRef) {
      auto& last = last_addr_[static_cast<std::size_t>(proc)];
      put_varint(buf_, ev.size);
      put_varint(buf_, zigzag(static_cast<std::int64_t>(ev.addr) -
                              static_cast<std::int64_t>(last)));
      last = ev.addr;
    } else if (ev.kind != core::EventKind::kYield) {
      std::uint8_t mask = 0;
      for (int i = 0; i < 4; ++i)
        if (ev.arg[static_cast<std::size_t>(i)] != 0)
          mask |= static_cast<std::uint8_t>(1u << i);
      buf_.push_back(mask);
      for (int i = 0; i < 4; ++i)
        if ((mask & (1u << i)) != 0)
          put_varint(buf_, ev.arg[static_cast<std::size_t>(i)]);
    }
    ++events_;
  }
  if (buf_.size() >= kFlushThreshold) flush_buffer();
}

void TraceWriter::irq_pop(ProcId proc, CpuId cpu) {
  tag(RecordTag::kIrqPop);
  put_varint(buf_, static_cast<std::uint64_t>(proc));
  put_varint(buf_, static_cast<std::uint64_t>(cpu));
}

void TraceWriter::channel_seed(core::WaitChannel channel,
                               std::uint64_t permits) {
  tag(RecordTag::kChannelSeed);
  put_varint(buf_, channel);
  put_varint(buf_, permits);
}

void TraceWriter::tx_frame(ProcId proc, std::uint64_t bytes) {
  tag(RecordTag::kTxFrame);
  put_varint(buf_, static_cast<std::uint64_t>(proc));
  put_varint(buf_, bytes);
}

void TraceWriter::rx_stimulus(Cycles when, std::uint64_t bytes) {
  tag(RecordTag::kRxStimulus);
  put_varint(buf_, static_cast<std::uint64_t>(when));
  put_varint(buf_, bytes);
}

void TraceWriter::finish() {
  COMPASS_CHECK_MSG(header_written_, "finish() before header");
  COMPASS_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;
  buf_.push_back(static_cast<std::uint8_t>(RecordTag::kEnd));
  put_varint(buf_, records_);
  put_varint(buf_, events_);
  flush_buffer();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw TraceError("failed to close trace file");
}

void TraceWriter::flush_buffer() {
  if (buf_.empty()) return;
  const std::size_t n = std::fwrite(buf_.data(), 1, buf_.size(), file_);
  if (n != buf_.size()) throw TraceError("short write to trace file");
  buf_.clear();
}

}  // namespace compass::trace
