// Golden comparison between a live run's stats snapshot and a replay's.
//
// Replay reproduces the backend bit-for-bit, but not the *host-side* kernel
// code, so counters maintained by frontend-hosted kernel subsystems never
// appear in a replay: the filesystem ("fs.") and network-stack ("net.")
// counters are bumped while building requests, not while the backend
// consumes them. "backend.tasks" differs structurally: the live run
// schedules rx-frame injection from the wire model's on_tx callback while
// replay pre-schedules every stimulus as its own task. Everything else —
// total cycles, per-CPU per-mode time, cache/memory-system counters, OS and
// device counters, dispatch statistics — must match exactly.
#pragma once

#include <string>
#include <vector>

#include "stats/json.h"

namespace compass::trace {

/// True when `counter` is legitimately absent/different under replay.
bool golden_excluded(const std::string& counter);

/// Human-readable list of mismatches between the live and replay snapshots
/// (empty = golden match). Histograms are not compared: their sums include
/// host-side-only samples.
std::vector<std::string> golden_diff(const stats::StatsSnapshot& live,
                                     const stats::StatsSnapshot& replay);

}  // namespace compass::trace
