#include "trace/golden.h"

#include <set>

namespace compass::trace {

bool golden_excluded(const std::string& counter) {
  if (counter == "backend.tasks") return true;
  // frontend.absorbed is a host-side tally of references the live frontends'
  // L1 filters absorbed locally; the replayer re-drives the recorded batches
  // through the model directly, so it exists only in the live snapshot.
  if (counter == "frontend.absorbed") return true;
  // fault.* counters tally OS-side draws, which the replayer never repeats
  // (recorded events already carry their effects) — so they exist only in
  // the live snapshot and cannot be compared.
  return counter.rfind("fs.", 0) == 0 || counter.rfind("net.", 0) == 0 ||
         counter.rfind("fault.", 0) == 0;
}

std::vector<std::string> golden_diff(const stats::StatsSnapshot& live,
                                     const stats::StatsSnapshot& replay) {
  std::vector<std::string> diffs;
  if (live.cycles != replay.cycles)
    diffs.push_back("cycles: live=" + std::to_string(live.cycles) +
                    " replay=" + std::to_string(replay.cycles));

  std::set<std::string> names;
  for (const auto& [name, value] : live.counters) names.insert(name);
  for (const auto& [name, value] : replay.counters) names.insert(name);
  for (const std::string& name : names) {
    if (golden_excluded(name)) continue;
    const auto lit = live.counters.find(name);
    const auto rit = replay.counters.find(name);
    const std::uint64_t lv = lit == live.counters.end() ? 0 : lit->second;
    const std::uint64_t rv = rit == replay.counters.end() ? 0 : rit->second;
    if (lv != rv)
      diffs.push_back("counter " + name + ": live=" + std::to_string(lv) +
                      " replay=" + std::to_string(rv));
  }

  if (live.cpu_time.size() != replay.cpu_time.size()) {
    diffs.push_back("cpu_time: live has " +
                    std::to_string(live.cpu_time.size()) + " cpus, replay " +
                    std::to_string(replay.cpu_time.size()));
  } else {
    static constexpr const char* kModes[4] = {"user", "kernel", "interrupt",
                                              "idle"};
    for (std::size_t c = 0; c < live.cpu_time.size(); ++c)
      for (std::size_t m = 0; m < 4; ++m)
        if (live.cpu_time[c][m] != replay.cpu_time[c][m])
          diffs.push_back("cpu" + std::to_string(c) + "." + kModes[m] +
                          ": live=" + std::to_string(live.cpu_time[c][m]) +
                          " replay=" + std::to_string(replay.cpu_time[c][m]));
  }
  return diffs;
}

}  // namespace compass::trace
