// On-disk event-trace format shared by TraceWriter and TraceReader.
//
// Layout (all multi-byte scalars are LEB128 varints unless noted):
//
//   magic            8 bytes  "COMPASTR"
//   version          4 bytes  little-endian u32
//   config_hash      8 bytes  little-endian u64, FNV-1a over the config block
//   config block     varint pair-count, then per pair: varint key, varint
//                    value (doubles are bit-cast to u64)
//   proc table       varint proc-count, then per proc: u8 kind,
//                    varint name-length, name bytes
//   records          tagged stream, terminated by a kEnd record carrying
//                    the record and event counts (integrity check)
//
// Record payloads:
//
//   kBatch       varint proc, varint event-count, then per event:
//                  u8 packed  (kind | mode << 4 | ref_type << 6)
//                  varint dt  (time delta vs previous event; the first
//                             event's dt is relative to the process's time
//                             base at dispatch — its last reply time)
//                  kMemRef: varint size, zigzag-varint addr delta vs the
//                           process's previous kMemRef address
//                  others:  u8 arg mask, then a varint per set bit
//   kIrqPop      varint proc, varint cpu
//   kChannelSeed varint channel, varint permits
//   kTxFrame     varint proc, varint bytes
//   kRxStimulus  varint when (absolute cycle), varint bytes
//   kEnd         varint record-count (excluding kEnd), varint event-count
//
// Event times are stored as deltas against the *reply-rebased* time base,
// so a trace replays against any backend configuration: the replayer
// re-derives absolute times from the replies the new backend produces.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/types.h"
#include "util/check.h"

namespace compass::trace {

/// Any malformed-trace condition: bad magic, version mismatch, truncation,
/// corrupt varint, inconsistent counts.
class TraceError : public util::SimError {
 public:
  explicit TraceError(const std::string& what) : util::SimError(what) {}
};

inline constexpr std::array<std::uint8_t, 8> kMagic = {'C', 'O', 'M', 'P',
                                                       'A', 'S', 'T', 'R'};
inline constexpr std::uint32_t kVersion = 1;

enum class RecordTag : std::uint8_t {
  kBatch = 1,
  kIrqPop = 2,
  kChannelSeed = 3,
  kTxFrame = 4,
  kRxStimulus = 5,
  kEnd = 6,
};

/// Keys of the serialized configuration block (SimulationConfig fields that
/// affect backend behaviour). Values are u64; doubles are bit-cast.
enum class ConfigKey : std::uint32_t {
  kNumCpus = 1,
  kNumNodes,
  kHostCpus,
  kBatchSize,
  kYieldThreshold,
  kSyscallEntryCycles,
  kSyscallExitCycles,
  kIrqEntryCycles,
  kIrqExitCycles,
  kContextSwitchCycles,
  kSchedPolicy,
  kPreemptive,
  kQuantum,
  kCpuMhz,
  /// Frontend L1 reference filter (SimConfig::l1_filter). Emitted only when
  /// enabled, so filter-off traces stay byte-identical to older builds.
  kL1Filter,

  kModel = 32,
  kFlatLatency,
  kPlacement,

  kSimpleL1Size = 48,
  kSimpleL1Assoc,
  kSimpleL1Line,
  kSimpleL1Hit,
  kSimpleMemLatency,
  kSimpleBusOccupancy,
  kSimpleCacheToCache,
  kSimpleUpgrade,
  kSimplePageFault,
  kSimpleSyncOverhead,
  kSimpleSnoopMinCpus,

  kNumaL1Size = 64,
  kNumaL1Assoc,
  kNumaL1Line,
  kNumaL2Size,
  kNumaL2Assoc,
  kNumaL2Line,
  kNumaL1Hit,
  kNumaL2Hit,
  kNumaDirLookup,
  kNumaMemAccess,
  kNumaNetBase,
  kNumaNetPerHop,
  kNumaNetBytesPerCycle,
  kNumaPageFault,
  kNumaSyncOverhead,

  kDevNumDisks = 96,
  kDevTimerInterval,
  kDevTimerPerCpu,
  kDevRxWireDelay,
  kDiskBlockSize,
  kDiskFixedOverhead,
  kDiskSeekPerBlock,
  kDiskSeekMax,
  kDiskRotationalAvg,
  kDiskPerBlockTransfer,
  kEthBytesPerCycle,
  kEthTxOverhead,
  kEthMtu,

  // Fault plane (src/fault/). Emitted only when the recorded run's plan was
  // enabled, so fault-free traces are byte-identical to pre-fault-plane
  // ones and their hashes still match.
  kFaultSeed = 160,
  kFaultDiskErrorProb,
  kFaultDiskTimeoutProb,
  kFaultDiskTimeoutCycles,
  kFaultDiskMaxRetries,
  kFaultNetDropProb,
  kFaultNetDupProb,
  kFaultNetCorruptProb,
  kFaultNetBackoffCycles,
  kFaultNetMaxRetries,
  kFaultOscallEintrProb,
  kFaultOscallEnomemProb,
  kFaultOscallEioProb,
  kFaultOscallMaxConsecutive,
  kFaultSchedJitterProb,
  kFaultSchedJitterCycles,
  kFaultWalCrashAt,
};

using ConfigPairs = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

/// FNV-1a over a byte span (the config fingerprint).
inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append a LEB128 varint.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Zigzag-encode a signed delta so small magnitudes stay small.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Pack kind/mode/ref_type into the per-event descriptor byte.
inline std::uint8_t pack_event_byte(const core::Event& ev) {
  return static_cast<std::uint8_t>(
      (static_cast<unsigned>(ev.kind) & 0x0Fu) |
      ((static_cast<unsigned>(ev.mode) & 0x03u) << 4) |
      ((static_cast<unsigned>(ev.ref_type) & 0x03u) << 6));
}

/// Bounds-checked cursor over a loaded trace; every overrun or malformed
/// varint throws TraceError instead of reading past the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t pos() const { return pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

  std::uint8_t u8() {
    if (pos_ >= bytes_.size())
      throw TraceError("trace truncated at byte " + std::to_string(pos_));
    return bytes_[pos_++];
  }

  void raw(std::span<std::uint8_t> out) {
    if (bytes_.size() - pos_ < out.size())
      throw TraceError("trace truncated at byte " + std::to_string(pos_));
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = bytes_[pos_ + i];
    pos_ += out.size();
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        // Reject non-canonical 10-byte encodings overflowing 64 bits.
        if (shift == 63 && b > 1)
          throw TraceError("corrupt varint at byte " + std::to_string(pos_));
        return v;
      }
    }
    throw TraceError("corrupt varint at byte " + std::to_string(pos_));
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace compass::trace
