// TraceReader: loads and validates a binary event trace into an in-memory
// TraceData ready for replay or inspection. Every structural defect —
// bad magic, unsupported version, truncation, corrupt varints, config-hash
// mismatch, inconsistent end counts — raises TraceError.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/trace_sink.h"
#include "core/types.h"
#include "trace/trace_format.h"
#include "trace/trace_writer.h"

namespace compass::trace {

/// A fully decoded trace. Per-proc streams preserve the order the backend
/// consumed inputs from that process; cross-proc interleaving is
/// re-established at replay time by the backend's smallest-time-first rule.
struct TraceData {
  struct Op {
    enum class Kind : std::uint8_t {
      kBatch,    ///< one posted event batch
      kIrqPop,   ///< kernel code popped one interrupt descriptor
      kTxFrame,  ///< next kEthTx references a staged frame of `bytes`
    };
    Kind kind = Kind::kBatch;
    /// kBatch payload. Event.time holds the *delta* against the previous
    /// event (the first event's delta is against the process's reply time
    /// base); addresses and all other fields are absolute.
    std::vector<core::Event> events;
    CpuId cpu = 0;             ///< kIrqPop: cpu recorded live (informational)
    std::uint64_t bytes = 0;   ///< kTxFrame payload size
  };

  struct RxStimulus {
    Cycles when = 0;  ///< absolute injection cycle recorded live
    std::uint64_t bytes = 0;
  };

  ConfigPairs config;
  std::uint64_t config_hash = 0;
  std::vector<ProcEntry> procs;
  std::vector<std::vector<Op>> streams;  ///< indexed by ProcId
  std::vector<std::pair<core::WaitChannel, std::uint64_t>> channel_seeds;
  std::vector<RxStimulus> rx_stimuli;
  std::uint64_t total_records = 0;
  std::uint64_t total_events = 0;
};

class TraceReader {
 public:
  static TraceData read_file(const std::string& path);
  static TraceData read_bytes(std::span<const std::uint8_t> bytes);
};

}  // namespace compass::trace
