// TraceWriter: buffered serializer for the compact binary trace format
// (see trace_format.h for the layout). Not thread-safe; the recorder
// serializes calls.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/trace_sink.h"
#include "core/types.h"
#include "trace/trace_format.h"

namespace compass::trace {

/// Proc-table entry: registration order defines the ProcId.
struct ProcEntry {
  std::string name;
  core::TraceSink::ProcKind kind = core::TraceSink::ProcKind::kProcess;
};

class TraceWriter {
 public:
  /// Opens `path` for writing; throws TraceError on failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Writes magic, version, config fingerprint + block, and the proc table.
  /// Must be called exactly once, before any record.
  void write_header(const ConfigPairs& config, std::span<const ProcEntry> procs);

  /// Serializes one dispatched batch. `delta0` is the first event's time
  /// delta against the process's time base (already folded with any
  /// preemption rebase); later events are delta-encoded against their
  /// predecessor. Event times in `events` are absolute.
  void batch(ProcId proc, Cycles delta0, std::span<const core::Event> events);

  void irq_pop(ProcId proc, CpuId cpu);
  void channel_seed(core::WaitChannel channel, std::uint64_t permits);
  void tx_frame(ProcId proc, std::uint64_t bytes);
  void rx_stimulus(Cycles when, std::uint64_t bytes);

  /// Writes the kEnd integrity record and flushes/closes the file.
  void finish();

  std::uint64_t records_written() const { return records_; }
  std::uint64_t events_written() const { return events_; }

 private:
  void tag(RecordTag t);
  void flush_buffer();

  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buf_;
  std::vector<Addr> last_addr_;  ///< per-proc previous kMemRef address
  std::uint64_t records_ = 0;
  std::uint64_t events_ = 0;
  bool header_written_ = false;
  bool finished_ = false;
};

}  // namespace compass::trace
