#include "trace/config_codec.h"

#include <bit>

namespace compass::trace {

namespace {

std::uint64_t from_double(double d) { return std::bit_cast<std::uint64_t>(d); }
double to_double(std::uint64_t v) { return std::bit_cast<double>(v); }

void put(ConfigPairs& out, ConfigKey key, std::uint64_t value) {
  out.emplace_back(static_cast<std::uint32_t>(key), value);
}

}  // namespace

ConfigPairs encode_config(const sim::SimulationConfig& cfg) {
  ConfigPairs out;
  const core::SimConfig& c = cfg.core;
  put(out, ConfigKey::kNumCpus, static_cast<std::uint64_t>(c.num_cpus));
  put(out, ConfigKey::kNumNodes, static_cast<std::uint64_t>(c.num_nodes));
  put(out, ConfigKey::kHostCpus, static_cast<std::uint64_t>(c.host_cpus));
  put(out, ConfigKey::kBatchSize, static_cast<std::uint64_t>(c.batch_size));
  put(out, ConfigKey::kYieldThreshold, static_cast<std::uint64_t>(c.yield_threshold));
  put(out, ConfigKey::kSyscallEntryCycles, static_cast<std::uint64_t>(c.syscall_entry_cycles));
  put(out, ConfigKey::kSyscallExitCycles, static_cast<std::uint64_t>(c.syscall_exit_cycles));
  put(out, ConfigKey::kIrqEntryCycles, static_cast<std::uint64_t>(c.irq_entry_cycles));
  put(out, ConfigKey::kIrqExitCycles, static_cast<std::uint64_t>(c.irq_exit_cycles));
  put(out, ConfigKey::kContextSwitchCycles, static_cast<std::uint64_t>(c.context_switch_cycles));
  put(out, ConfigKey::kSchedPolicy, static_cast<std::uint64_t>(c.sched_policy));
  put(out, ConfigKey::kPreemptive, c.preemptive ? 1 : 0);
  put(out, ConfigKey::kQuantum, static_cast<std::uint64_t>(c.quantum));
  put(out, ConfigKey::kCpuMhz, from_double(c.cpu_mhz));
  // Emitted only when on: filter-off traces stay byte-identical to traces
  // from builds that predate the key.
  if (c.l1_filter) put(out, ConfigKey::kL1Filter, 1);

  put(out, ConfigKey::kModel, static_cast<std::uint64_t>(cfg.model));
  put(out, ConfigKey::kFlatLatency, static_cast<std::uint64_t>(cfg.flat_latency));
  put(out, ConfigKey::kPlacement, static_cast<std::uint64_t>(cfg.placement));

  const mem::SimpleMachineConfig& s = cfg.simple;
  put(out, ConfigKey::kSimpleL1Size, s.l1.size_bytes);
  put(out, ConfigKey::kSimpleL1Assoc, s.l1.assoc);
  put(out, ConfigKey::kSimpleL1Line, s.l1.line_size);
  put(out, ConfigKey::kSimpleL1Hit, static_cast<std::uint64_t>(s.l1_hit));
  put(out, ConfigKey::kSimpleMemLatency, static_cast<std::uint64_t>(s.mem_latency));
  put(out, ConfigKey::kSimpleBusOccupancy, static_cast<std::uint64_t>(s.bus_occupancy));
  put(out, ConfigKey::kSimpleCacheToCache, static_cast<std::uint64_t>(s.cache_to_cache));
  put(out, ConfigKey::kSimpleUpgrade, static_cast<std::uint64_t>(s.upgrade_latency));
  put(out, ConfigKey::kSimplePageFault, static_cast<std::uint64_t>(s.page_fault));
  put(out, ConfigKey::kSimpleSyncOverhead, static_cast<std::uint64_t>(s.sync_overhead));
  put(out, ConfigKey::kSimpleSnoopMinCpus, static_cast<std::uint64_t>(s.snoop_filter_min_cpus));

  const mem::NumaMachineConfig& n = cfg.numa;
  put(out, ConfigKey::kNumaL1Size, n.l1.size_bytes);
  put(out, ConfigKey::kNumaL1Assoc, n.l1.assoc);
  put(out, ConfigKey::kNumaL1Line, n.l1.line_size);
  put(out, ConfigKey::kNumaL2Size, n.l2.size_bytes);
  put(out, ConfigKey::kNumaL2Assoc, n.l2.assoc);
  put(out, ConfigKey::kNumaL2Line, n.l2.line_size);
  put(out, ConfigKey::kNumaL1Hit, static_cast<std::uint64_t>(n.l1_hit));
  put(out, ConfigKey::kNumaL2Hit, static_cast<std::uint64_t>(n.l2_hit));
  put(out, ConfigKey::kNumaDirLookup, static_cast<std::uint64_t>(n.dir_lookup));
  put(out, ConfigKey::kNumaMemAccess, static_cast<std::uint64_t>(n.mem_access));
  put(out, ConfigKey::kNumaNetBase, static_cast<std::uint64_t>(n.net_base));
  put(out, ConfigKey::kNumaNetPerHop, static_cast<std::uint64_t>(n.net_per_hop));
  put(out, ConfigKey::kNumaNetBytesPerCycle, from_double(n.net_bytes_per_cycle));
  put(out, ConfigKey::kNumaPageFault, static_cast<std::uint64_t>(n.page_fault));
  put(out, ConfigKey::kNumaSyncOverhead, static_cast<std::uint64_t>(n.sync_overhead));

  const dev::DeviceHubConfig& d = cfg.devices;
  put(out, ConfigKey::kDevNumDisks, static_cast<std::uint64_t>(d.num_disks));
  put(out, ConfigKey::kDevTimerInterval, static_cast<std::uint64_t>(d.timer_interval));
  put(out, ConfigKey::kDevTimerPerCpu, d.timer_per_cpu ? 1 : 0);
  put(out, ConfigKey::kDevRxWireDelay, static_cast<std::uint64_t>(d.rx_wire_delay));
  put(out, ConfigKey::kDiskBlockSize, d.disk.block_size);
  put(out, ConfigKey::kDiskFixedOverhead, static_cast<std::uint64_t>(d.disk.fixed_overhead));
  put(out, ConfigKey::kDiskSeekPerBlock, from_double(d.disk.seek_per_block));
  put(out, ConfigKey::kDiskSeekMax, static_cast<std::uint64_t>(d.disk.seek_max));
  put(out, ConfigKey::kDiskRotationalAvg, static_cast<std::uint64_t>(d.disk.rotational_avg));
  put(out, ConfigKey::kDiskPerBlockTransfer, static_cast<std::uint64_t>(d.disk.per_block_transfer));
  put(out, ConfigKey::kEthBytesPerCycle, from_double(d.eth.bytes_per_cycle));
  put(out, ConfigKey::kEthTxOverhead, static_cast<std::uint64_t>(d.eth.tx_overhead));
  put(out, ConfigKey::kEthMtu, d.eth.mtu);

  // Only an enabled plan reaches the trace: a disabled fault plane leaves
  // the config block (and its hash) identical to a build without one.
  const fault::FaultPlan& f = cfg.fault;
  if (f.enabled()) {
    put(out, ConfigKey::kFaultSeed, f.seed);
    put(out, ConfigKey::kFaultDiskErrorProb, from_double(f.disk_error_prob));
    put(out, ConfigKey::kFaultDiskTimeoutProb, from_double(f.disk_timeout_prob));
    put(out, ConfigKey::kFaultDiskTimeoutCycles, static_cast<std::uint64_t>(f.disk_timeout_cycles));
    put(out, ConfigKey::kFaultDiskMaxRetries, static_cast<std::uint64_t>(f.disk_max_retries));
    put(out, ConfigKey::kFaultNetDropProb, from_double(f.net_drop_prob));
    put(out, ConfigKey::kFaultNetDupProb, from_double(f.net_dup_prob));
    put(out, ConfigKey::kFaultNetCorruptProb, from_double(f.net_corrupt_prob));
    put(out, ConfigKey::kFaultNetBackoffCycles, static_cast<std::uint64_t>(f.net_backoff_cycles));
    put(out, ConfigKey::kFaultNetMaxRetries, static_cast<std::uint64_t>(f.net_max_retries));
    put(out, ConfigKey::kFaultOscallEintrProb, from_double(f.oscall_eintr_prob));
    put(out, ConfigKey::kFaultOscallEnomemProb, from_double(f.oscall_enomem_prob));
    put(out, ConfigKey::kFaultOscallEioProb, from_double(f.oscall_eio_prob));
    put(out, ConfigKey::kFaultOscallMaxConsecutive, static_cast<std::uint64_t>(f.oscall_max_consecutive));
    put(out, ConfigKey::kFaultSchedJitterProb, from_double(f.sched_jitter_prob));
    put(out, ConfigKey::kFaultSchedJitterCycles, static_cast<std::uint64_t>(f.sched_jitter_cycles));
    put(out, ConfigKey::kFaultWalCrashAt, f.wal_crash_at);
  }
  return out;
}

sim::SimulationConfig decode_config(const ConfigPairs& pairs) {
  sim::SimulationConfig cfg;
  for (const auto& [raw_key, v] : pairs) {
    switch (static_cast<ConfigKey>(raw_key)) {
      case ConfigKey::kNumCpus: cfg.core.num_cpus = static_cast<int>(v); break;
      case ConfigKey::kNumNodes: cfg.core.num_nodes = static_cast<int>(v); break;
      case ConfigKey::kHostCpus: cfg.core.host_cpus = static_cast<int>(v); break;
      case ConfigKey::kBatchSize: cfg.core.batch_size = static_cast<int>(v); break;
      case ConfigKey::kYieldThreshold: cfg.core.yield_threshold = static_cast<Cycles>(v); break;
      case ConfigKey::kSyscallEntryCycles: cfg.core.syscall_entry_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kSyscallExitCycles: cfg.core.syscall_exit_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kIrqEntryCycles: cfg.core.irq_entry_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kIrqExitCycles: cfg.core.irq_exit_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kContextSwitchCycles: cfg.core.context_switch_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kSchedPolicy: cfg.core.sched_policy = static_cast<core::SchedPolicy>(v); break;
      case ConfigKey::kPreemptive: cfg.core.preemptive = v != 0; break;
      case ConfigKey::kQuantum: cfg.core.quantum = static_cast<Cycles>(v); break;
      case ConfigKey::kCpuMhz: cfg.core.cpu_mhz = to_double(v); break;
      case ConfigKey::kL1Filter: cfg.core.l1_filter = v != 0; break;

      case ConfigKey::kModel: cfg.model = static_cast<sim::BackendModel>(v); break;
      case ConfigKey::kFlatLatency: cfg.flat_latency = static_cast<Cycles>(v); break;
      case ConfigKey::kPlacement: cfg.placement = static_cast<mem::PlacementPolicy>(v); break;

      case ConfigKey::kSimpleL1Size: cfg.simple.l1.size_bytes = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kSimpleL1Assoc: cfg.simple.l1.assoc = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kSimpleL1Line: cfg.simple.l1.line_size = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kSimpleL1Hit: cfg.simple.l1_hit = static_cast<Cycles>(v); break;
      case ConfigKey::kSimpleMemLatency: cfg.simple.mem_latency = static_cast<Cycles>(v); break;
      case ConfigKey::kSimpleBusOccupancy: cfg.simple.bus_occupancy = static_cast<Cycles>(v); break;
      case ConfigKey::kSimpleCacheToCache: cfg.simple.cache_to_cache = static_cast<Cycles>(v); break;
      case ConfigKey::kSimpleUpgrade: cfg.simple.upgrade_latency = static_cast<Cycles>(v); break;
      case ConfigKey::kSimplePageFault: cfg.simple.page_fault = static_cast<Cycles>(v); break;
      case ConfigKey::kSimpleSyncOverhead: cfg.simple.sync_overhead = static_cast<Cycles>(v); break;
      case ConfigKey::kSimpleSnoopMinCpus: cfg.simple.snoop_filter_min_cpus = static_cast<int>(v); break;

      case ConfigKey::kNumaL1Size: cfg.numa.l1.size_bytes = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kNumaL1Assoc: cfg.numa.l1.assoc = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kNumaL1Line: cfg.numa.l1.line_size = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kNumaL2Size: cfg.numa.l2.size_bytes = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kNumaL2Assoc: cfg.numa.l2.assoc = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kNumaL2Line: cfg.numa.l2.line_size = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kNumaL1Hit: cfg.numa.l1_hit = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaL2Hit: cfg.numa.l2_hit = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaDirLookup: cfg.numa.dir_lookup = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaMemAccess: cfg.numa.mem_access = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaNetBase: cfg.numa.net_base = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaNetPerHop: cfg.numa.net_per_hop = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaNetBytesPerCycle: cfg.numa.net_bytes_per_cycle = to_double(v); break;
      case ConfigKey::kNumaPageFault: cfg.numa.page_fault = static_cast<Cycles>(v); break;
      case ConfigKey::kNumaSyncOverhead: cfg.numa.sync_overhead = static_cast<Cycles>(v); break;

      case ConfigKey::kDevNumDisks: cfg.devices.num_disks = static_cast<int>(v); break;
      case ConfigKey::kDevTimerInterval: cfg.devices.timer_interval = static_cast<Cycles>(v); break;
      case ConfigKey::kDevTimerPerCpu: cfg.devices.timer_per_cpu = v != 0; break;
      case ConfigKey::kDevRxWireDelay: cfg.devices.rx_wire_delay = static_cast<Cycles>(v); break;
      case ConfigKey::kDiskBlockSize: cfg.devices.disk.block_size = static_cast<std::uint32_t>(v); break;
      case ConfigKey::kDiskFixedOverhead: cfg.devices.disk.fixed_overhead = static_cast<Cycles>(v); break;
      case ConfigKey::kDiskSeekPerBlock: cfg.devices.disk.seek_per_block = to_double(v); break;
      case ConfigKey::kDiskSeekMax: cfg.devices.disk.seek_max = static_cast<Cycles>(v); break;
      case ConfigKey::kDiskRotationalAvg: cfg.devices.disk.rotational_avg = static_cast<Cycles>(v); break;
      case ConfigKey::kDiskPerBlockTransfer: cfg.devices.disk.per_block_transfer = static_cast<Cycles>(v); break;
      case ConfigKey::kEthBytesPerCycle: cfg.devices.eth.bytes_per_cycle = to_double(v); break;
      case ConfigKey::kEthTxOverhead: cfg.devices.eth.tx_overhead = static_cast<Cycles>(v); break;
      case ConfigKey::kEthMtu: cfg.devices.eth.mtu = static_cast<std::uint32_t>(v); break;

      case ConfigKey::kFaultSeed: cfg.fault.seed = v; break;
      case ConfigKey::kFaultDiskErrorProb: cfg.fault.disk_error_prob = to_double(v); break;
      case ConfigKey::kFaultDiskTimeoutProb: cfg.fault.disk_timeout_prob = to_double(v); break;
      case ConfigKey::kFaultDiskTimeoutCycles: cfg.fault.disk_timeout_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kFaultDiskMaxRetries: cfg.fault.disk_max_retries = static_cast<int>(v); break;
      case ConfigKey::kFaultNetDropProb: cfg.fault.net_drop_prob = to_double(v); break;
      case ConfigKey::kFaultNetDupProb: cfg.fault.net_dup_prob = to_double(v); break;
      case ConfigKey::kFaultNetCorruptProb: cfg.fault.net_corrupt_prob = to_double(v); break;
      case ConfigKey::kFaultNetBackoffCycles: cfg.fault.net_backoff_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kFaultNetMaxRetries: cfg.fault.net_max_retries = static_cast<int>(v); break;
      case ConfigKey::kFaultOscallEintrProb: cfg.fault.oscall_eintr_prob = to_double(v); break;
      case ConfigKey::kFaultOscallEnomemProb: cfg.fault.oscall_enomem_prob = to_double(v); break;
      case ConfigKey::kFaultOscallEioProb: cfg.fault.oscall_eio_prob = to_double(v); break;
      case ConfigKey::kFaultOscallMaxConsecutive: cfg.fault.oscall_max_consecutive = static_cast<int>(v); break;
      case ConfigKey::kFaultSchedJitterProb: cfg.fault.sched_jitter_prob = to_double(v); break;
      case ConfigKey::kFaultSchedJitterCycles: cfg.fault.sched_jitter_cycles = static_cast<Cycles>(v); break;
      case ConfigKey::kFaultWalCrashAt: cfg.fault.wal_crash_at = v; break;

      default:
        throw TraceError("unknown config key " + std::to_string(raw_key) +
                         " (trace written by a newer build?)");
    }
  }
  return cfg;
}

bool config_lookup(const ConfigPairs& pairs, ConfigKey key,
                   std::uint64_t& out) {
  for (const auto& [k, v] : pairs) {
    if (k == static_cast<std::uint32_t>(key)) {
      out = v;
      return true;
    }
  }
  return false;
}

}  // namespace compass::trace
