// Serialization of the backend-relevant SimulationConfig fields into the
// trace's key/value config block. Frontend-only knobs (kernel parameters,
// OS-server context options, user heap size) are deliberately excluded:
// replay runs without frontends, and a trace must be re-drivable against a
// modified machine configuration.
#pragma once

#include "sim/simulation.h"
#include "trace/trace_format.h"

namespace compass::trace {

/// Encode the backend-relevant fields of `cfg` (doubles are bit-cast).
ConfigPairs encode_config(const sim::SimulationConfig& cfg);

/// Rebuild a SimulationConfig (defaults plus the recorded pairs). Unknown
/// keys raise TraceError — they imply a newer writer whose semantics this
/// build does not understand.
sim::SimulationConfig decode_config(const ConfigPairs& pairs);

/// Lookup helper; returns true and sets `out` when `key` is present.
bool config_lookup(const ConfigPairs& pairs, ConfigKey key,
                   std::uint64_t& out);

}  // namespace compass::trace
