// A TPC-D-like decision-support workload (the paper's "TPCD/DB2").
//
// One LINEITEM fact table; Q1-style grouped aggregation and Q6-style
// filtered sum, runnable partitioned across worker processes. Scans go
// through the shared buffer pool (kreadv paths, ~19% OS time in the
// paper's profile) or through mmap (the mmap/munmap/msync calls Table 1
// lists for TPCD).
#pragma once

#include <array>

#include "util/rng.h"
#include "workloads/db/table.h"

namespace compass::workloads::db {

struct TpcdConfig {
  std::uint64_t lineitems = 4000;
  std::uint64_t seed = 777;
  DbConfig db;
};

struct LineItemRec {
  std::int64_t orderkey;
  std::int64_t partkey;
  std::int64_t quantity;
  std::int64_t extendedprice;  // cents
  std::int64_t discount_pct;   // 0..10
  std::int64_t tax_pct;        // 0..8
  std::int32_t shipdate;       // days since epoch, 0..2555
  std::uint8_t returnflag;     // 0/1
  std::uint8_t linestatus;     // 0/1
  char pad[2];
};
static_assert(sizeof(LineItemRec) == 56);

class Tpcd {
 public:
  explicit Tpcd(const TpcdConfig& cfg);

  const TpcdConfig& config() const { return cfg_; }
  BufferPool& pool() { return pool_; }
  Table& lineitem() { return lineitem_; }

  /// Coordinator: load LINEITEM and flush it to the data file.
  void setup(sim::Proc& p);

  /// Q1-style: grouped aggregation by (returnflag, linestatus).
  struct Q1Group {
    std::uint64_t count = 0;
    std::int64_t sum_qty = 0;
    std::int64_t sum_price = 0;
    std::int64_t sum_disc_price = 0;
  };
  using Q1Result = std::array<Q1Group, 4>;
  Q1Result q1(sim::Proc& p, int worker = 0, int nworkers = 1);

  /// Q6-style: revenue = sum(extendedprice * discount) over a
  /// shipdate/discount/quantity selection.
  std::int64_t q6(sim::Proc& p, int worker = 0, int nworkers = 1);

  /// Q1 over an mmap'ed LINEITEM file (no buffer pool), exercising the
  /// paging path instead of kreadv.
  Q1Result q1_mmap(sim::Proc& p);

  static void merge(Q1Result& into, const Q1Result& from);

 private:
  static int group_of(std::uint8_t rf, std::uint8_t ls) {
    return rf * 2 + ls;
  }
  void aggregate(sim::Proc& p, Addr rec, Q1Result& out);

  TpcdConfig cfg_;
  BufferPool pool_;
  Table lineitem_;
  std::string lineitem_path_;
};

}  // namespace compass::workloads::db
