#include "workloads/db/buffer_pool.h"

#include <algorithm>

namespace compass::workloads::db {

BufferPool::BufferPool(const DbConfig& cfg) : cfg_(cfg) {
  COMPASS_CHECK(cfg_.pool_pages >= 2);
  frames_.resize(cfg_.pool_pages);
}

void BufferPool::register_file(std::uint32_t file_id, std::string path) {
  COMPASS_CHECK_MSG(!initialized_, "register_file after init");
  files_[file_id] = std::move(path);
}

void BufferPool::init(sim::Proc& p) {
  COMPASS_CHECK_MSG(!initialized_, "BufferPool::init called twice");
  attach(p);
  // The pool latch word lives at the end of the segment (64 reserved
  // bytes past the frames).
  pool_latch_.init(p, seg_base_ + static_cast<Addr>(cfg_.pool_pages) * cfg_.page_size);
  for (std::size_t i = 0; i < shard_latches_.size(); ++i)
    shard_latches_[i].init(
        p, seg_base_ + static_cast<Addr>(cfg_.pool_pages) * cfg_.page_size + 64 +
               static_cast<Addr>(i) * 8);
  // Create the database files.
  for (const auto& [id, path] : files_) {
    const auto fd = p.creat(path);
    COMPASS_CHECK_MSG(fd >= 0, "cannot create db file " << path);
    p.close(fd);
  }
  initialized_ = true;
}

void BufferPool::attach(sim::Proc& p) {
  const std::uint64_t seg_bytes =
      static_cast<std::uint64_t>(cfg_.pool_pages) * cfg_.page_size + 4096;
  const auto segid = p.shmget(cfg_.shm_key, seg_bytes);
  COMPASS_CHECK_MSG(segid >= 0, "shmget failed for the buffer pool");
  const auto base = p.shmat(segid);
  COMPASS_CHECK_MSG(base > 0, "shmat failed for the buffer pool");
  if (seg_base_ == 0) seg_base_ = static_cast<Addr>(base);
  COMPASS_CHECK_MSG(seg_base_ == static_cast<Addr>(base),
                    "buffer pool attached at different addresses");
}

std::int64_t BufferPool::fd_for(sim::Proc& p, std::uint32_t file) {
  // Called with the pool latch held.
  const auto key = std::make_pair(static_cast<const sim::Proc*>(&p), file);
  if (const auto it = fds_.find(key); it != fds_.end()) return it->second;
  const auto pit = files_.find(file);
  COMPASS_CHECK_MSG(pit != files_.end(), "unregistered db file " << file);
  const auto fd =
      p.open(pit->second, cfg_.direct_io ? os::kOpenDirect : 0);
  COMPASS_CHECK_MSG(fd >= 0, "cannot open db file " << pit->second);
  fds_.emplace(key, fd);
  return fd;
}

std::int64_t BufferPool::fd_for_locked(sim::Proc& p, std::uint32_t file,
                                       bool latch_dropped) {
  if (!latch_dropped) return fd_for(p, file);
  pool_latch_.lock(p);
  const auto fd = fd_for(p, file);
  pool_latch_.unlock(p);
  return fd;
}

void BufferPool::write_back(sim::Proc& p, std::size_t i) {
  Frame& f = frames_[i];
  const auto fd = fd_for(p, f.pid.file);
  p.lseek(fd, static_cast<std::int64_t>(f.pid.page) * cfg_.page_size, 0);
  const os::KIovec iov[1] = {{frame_addr(i), cfg_.page_size}};
  const auto n = p.writev(fd, iov);
  COMPASS_CHECK_MSG(n == static_cast<std::int64_t>(cfg_.page_size),
                    "short page write: " << n);
  f.dirty = false;
}

Addr BufferPool::pin(sim::Proc& p, PageId pid) {
  // In simulating mode the pool latch is dropped across fill/write-back
  // I/O (a "filling" frame parks other interested processes), so misses
  // overlap at the disk queue instead of serializing the whole pool. In
  // native mode I/O is a host memcpy, so the latch is simply held.
  const bool drop_latch = p.ctx().attached();
  pool_latch_.lock(p);
  for (;;) {
    p.ctx().compute(60);  // hash lookup
    if (const auto it = page_table_.find(pid); it != page_table_.end()) {
      Frame& f = frames_[it->second];
      if (f.filling) {
        // Another process is bringing this page in; wait and re-check.
        pool_latch_.unlock(p);
        p.ctx().block_on(fill_channel(it->second));
        pool_latch_.lock(p);
        continue;
      }
      ++f.pins;
      f.lru = ++lru_clock_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      pool_latch_.unlock(p);
      return frame_addr(it->second);
    }
    break;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Victim selection: LRU among unpinned, non-filling frames, preferring
  // invalid ones.
  std::size_t victim = frames_.size();
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.pins != 0 || f.filling) continue;
    if (!f.valid) {
      victim = i;
      break;
    }
    if (victim == frames_.size() || f.lru < frames_[victim].lru) victim = i;
  }
  COMPASS_CHECK_MSG(victim != frames_.size(),
                    "buffer pool exhausted: every frame pinned");
  Frame& f = frames_[victim];
  const bool was_dirty = f.valid && f.dirty;
  const PageId old_pid = f.pid;
  if (f.valid) page_table_.erase(f.pid);
  // Claim the frame for the new page before releasing the latch: lookups
  // for `pid` now find it filling and wait.
  f.pid = pid;
  f.pins = 1;
  f.valid = true;
  f.dirty = false;
  f.filling = true;
  f.lru = ++lru_clock_;
  page_table_[pid] = victim;
  if (drop_latch) pool_latch_.unlock(p);

  if (was_dirty) {
    // Write the victim's old contents back (its bytes are still in the
    // frame; content latches guarantee no one mutates an unpinned page).
    const auto wfd = fd_for_locked(p, old_pid.file, drop_latch);
    p.lseek(wfd, static_cast<std::int64_t>(old_pid.page) * cfg_.page_size, 0);
    const os::KIovec wiov[1] = {{frame_addr(victim), cfg_.page_size}};
    const auto wn = p.writev(wfd, wiov);
    COMPASS_CHECK_MSG(wn == static_cast<std::int64_t>(cfg_.page_size),
                      "short page write: " << wn);
  }
  // Fill from the file (a short read past EOF leaves a fresh page; the
  // caller formats it).
  const auto fd = fd_for_locked(p, pid.file, drop_latch);
  p.lseek(fd, static_cast<std::int64_t>(pid.page) * cfg_.page_size, 0);
  const os::KIovec iov[1] = {{frame_addr(victim), cfg_.page_size}};
  const auto n = p.readv(fd, iov);
  COMPASS_CHECK_MSG(n >= 0, "page read failed: " << n);
  if (n < static_cast<std::int64_t>(cfg_.page_size)) {
    // Fresh page: zero the frame (user-mode stores).
    const std::vector<std::uint8_t> zeros(
        cfg_.page_size - static_cast<std::uint64_t>(n), 0);
    p.put_bytes(frame_addr(victim) + static_cast<Addr>(n), zeros);
  }
  if (drop_latch) pool_latch_.lock(p);
  f.filling = false;
  if (drop_latch) p.ctx().wakeup(fill_channel(victim), 16);
  pool_latch_.unlock(p);
  return frame_addr(victim);
}

void BufferPool::unpin(sim::Proc& p, PageId pid, bool dirty) {
  ULatch::Guard g(pool_latch_, p);
  const auto it = page_table_.find(pid);
  COMPASS_CHECK_MSG(it != page_table_.end(), "unpin of unmapped page");
  Frame& f = frames_[it->second];
  COMPASS_CHECK_MSG(f.pins > 0, "unpin of unpinned page");
  --f.pins;
  f.dirty = f.dirty || dirty;
}

void BufferPool::flush_all(sim::Proc& p) {
  ULatch::Guard g(pool_latch_, p);
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.valid && f.dirty && f.pins == 0) write_back(p, i);
  }
}

}  // namespace compass::workloads::db
