#include "workloads/db/btree.h"

namespace compass::workloads::db {

BTree::BTree(BufferPool& pool, std::uint32_t file_id)
    : pool_(pool), file_(file_id) {
  // Keys and fanout+1 values must fit after the 16-byte header.
  fanout_ = (pool_.config().page_size - 16 - 8) / 16;
  COMPASS_CHECK(fanout_ >= 4);
}

void BTree::create(sim::Proc& p) {
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  p.write<std::uint64_t>(meta + 0, 1);   // root = page 1
  p.write<std::uint64_t>(meta + 8, 2);   // next free page
  p.write<std::uint64_t>(meta + 16, 0);  // count
  pool_.unpin(p, meta_pid, true);

  const PageId root_pid{file_, 1};
  const Addr root = pool_.pin(p, root_pid);
  p.write<std::uint32_t>(root + 0, 1);  // leaf
  p.write<std::uint32_t>(root + 4, 0);  // nkeys
  p.write<std::uint64_t>(root + 8, 0);  // next_leaf
  pool_.unpin(p, root_pid, true);

  tree_latch_.init(p, pool_.segment_base() +
                          static_cast<Addr>(pool_.config().pool_pages) *
                              pool_.config().page_size +
                          1024 + file_ * 8);
  latch_ready_ = true;
}

std::uint32_t BTree::alloc_page(sim::Proc& p, Addr meta_base) {
  const auto next = p.read<std::uint64_t>(meta_base + 8);
  p.write<std::uint64_t>(meta_base + 8, next + 1);
  return static_cast<std::uint32_t>(next);
}

std::uint32_t BTree::search(sim::Proc& p, Addr base, std::uint32_t nkeys,
                            std::int64_t key) {
  // Binary search over the key array (each probe is a real reference).
  std::uint32_t lo = 0, hi = nkeys;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    p.ctx().compute(4);
    if (p.read<std::int64_t>(key_addr(base, mid)) < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

BTree::SplitResult BTree::insert_rec(sim::Proc& p, std::uint32_t page,
                                     std::int64_t key, std::uint64_t value,
                                     Addr meta_base) {
  const PageId pid{file_, page};
  const Addr base = pool_.pin(p, pid);
  const bool leaf = p.read<std::uint32_t>(base + 0) != 0;
  std::uint32_t nkeys = p.read<std::uint32_t>(base + 4);
  SplitResult out;

  if (!leaf) {
    const std::uint32_t pos = search(p, base, nkeys, key);
    // Child pointer i covers keys < keys[i]; the last pointer covers the
    // tail. For an interior node, descend right of equal keys.
    std::uint32_t slot = pos;
    if (pos < nkeys && p.read<std::int64_t>(key_addr(base, pos)) == key)
      slot = pos + 1;
    const auto child =
        static_cast<std::uint32_t>(p.read<std::uint64_t>(val_addr(base, slot)));
    const SplitResult child_split = insert_rec(p, child, key, value, meta_base);
    if (!child_split.split) {
      pool_.unpin(p, pid, false);
      return out;
    }
    // Insert (sep_key, right_page) into this node at `slot`.
    for (std::uint32_t i = nkeys; i > slot; --i) {
      p.write<std::int64_t>(key_addr(base, i),
                            p.read<std::int64_t>(key_addr(base, i - 1)));
      p.write<std::uint64_t>(val_addr(base, i + 1),
                             p.read<std::uint64_t>(val_addr(base, i)));
    }
    p.write<std::int64_t>(key_addr(base, slot), child_split.sep_key);
    p.write<std::uint64_t>(val_addr(base, slot + 1), child_split.right_page);
    ++nkeys;
    p.write<std::uint32_t>(base + 4, nkeys);
    if (nkeys < fanout_) {
      pool_.unpin(p, pid, true);
      return out;
    }
    // Split the interior node: move the upper half to a new node; the
    // middle key moves up.
    const std::uint32_t mid = nkeys / 2;
    const std::uint32_t right_page = alloc_page(p, meta_base);
    const PageId rpid{file_, right_page};
    const Addr right = pool_.pin(p, rpid);
    p.write<std::uint32_t>(right + 0, 0);
    const std::uint32_t rkeys = nkeys - mid - 1;
    p.write<std::uint32_t>(right + 4, rkeys);
    p.write<std::uint64_t>(right + 8, 0);
    for (std::uint32_t i = 0; i < rkeys; ++i)
      p.write<std::int64_t>(key_addr(right, i),
                            p.read<std::int64_t>(key_addr(base, mid + 1 + i)));
    for (std::uint32_t i = 0; i <= rkeys; ++i)
      p.write<std::uint64_t>(val_addr(right, i),
                             p.read<std::uint64_t>(val_addr(base, mid + 1 + i)));
    out.split = true;
    out.sep_key = p.read<std::int64_t>(key_addr(base, mid));
    out.right_page = right_page;
    p.write<std::uint32_t>(base + 4, mid);
    pool_.unpin(p, rpid, true);
    pool_.unpin(p, pid, true);
    return out;
  }

  // Leaf insert (duplicate keys overwrite).
  const std::uint32_t pos = search(p, base, nkeys, key);
  if (pos < nkeys && p.read<std::int64_t>(key_addr(base, pos)) == key) {
    p.write<std::uint64_t>(val_addr(base, pos), value);
    pool_.unpin(p, pid, true);
    return out;
  }
  for (std::uint32_t i = nkeys; i > pos; --i) {
    p.write<std::int64_t>(key_addr(base, i),
                          p.read<std::int64_t>(key_addr(base, i - 1)));
    p.write<std::uint64_t>(val_addr(base, i),
                           p.read<std::uint64_t>(val_addr(base, i - 1)));
  }
  p.write<std::int64_t>(key_addr(base, pos), key);
  p.write<std::uint64_t>(val_addr(base, pos), value);
  ++nkeys;
  p.write<std::uint32_t>(base + 4, nkeys);
  p.write<std::uint64_t>(meta_base + 16,
                         p.read<std::uint64_t>(meta_base + 16) + 1);
  if (nkeys < fanout_) {
    pool_.unpin(p, pid, true);
    return out;
  }
  // Split the leaf: upper half moves right; separator = first right key.
  const std::uint32_t mid = nkeys / 2;
  const std::uint32_t right_page = alloc_page(p, meta_base);
  const PageId rpid{file_, right_page};
  const Addr right = pool_.pin(p, rpid);
  p.write<std::uint32_t>(right + 0, 1);
  const std::uint32_t rkeys = nkeys - mid;
  p.write<std::uint32_t>(right + 4, rkeys);
  p.write<std::uint64_t>(right + 8, p.read<std::uint64_t>(base + 8));
  for (std::uint32_t i = 0; i < rkeys; ++i) {
    p.write<std::int64_t>(key_addr(right, i),
                          p.read<std::int64_t>(key_addr(base, mid + i)));
    p.write<std::uint64_t>(val_addr(right, i),
                           p.read<std::uint64_t>(val_addr(base, mid + i)));
  }
  p.write<std::uint32_t>(base + 4, mid);
  p.write<std::uint64_t>(base + 8, right_page);
  out.split = true;
  out.sep_key = p.read<std::int64_t>(key_addr(right, 0));
  out.right_page = right_page;
  pool_.unpin(p, rpid, true);
  pool_.unpin(p, pid, true);
  return out;
}

void BTree::insert(sim::Proc& p, std::int64_t key, std::uint64_t value) {
  COMPASS_CHECK_MSG(latch_ready_, "BTree::create must run first");
  ULatch::Guard g(tree_latch_, p);
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  const auto root = static_cast<std::uint32_t>(p.read<std::uint64_t>(meta + 0));
  const SplitResult split = insert_rec(p, root, key, value, meta);
  if (split.split) {
    // Grow a new root.
    const std::uint32_t new_root = alloc_page(p, meta);
    const PageId rpid{file_, new_root};
    const Addr base = pool_.pin(p, rpid);
    p.write<std::uint32_t>(base + 0, 0);
    p.write<std::uint32_t>(base + 4, 1);
    p.write<std::uint64_t>(base + 8, 0);
    p.write<std::int64_t>(key_addr(base, 0), split.sep_key);
    p.write<std::uint64_t>(val_addr(base, 0), root);
    p.write<std::uint64_t>(val_addr(base, 1), split.right_page);
    p.write<std::uint64_t>(meta + 0, new_root);
    pool_.unpin(p, rpid, true);
  }
  pool_.unpin(p, meta_pid, true);
}

std::optional<std::uint64_t> BTree::lookup(sim::Proc& p, std::int64_t key) {
  COMPASS_CHECK_MSG(latch_ready_, "BTree::create must run first");
  ULatch::Guard g(tree_latch_, p);
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  auto page = static_cast<std::uint32_t>(p.read<std::uint64_t>(meta + 0));
  pool_.unpin(p, meta_pid, false);
  for (;;) {
    const PageId pid{file_, page};
    const Addr base = pool_.pin(p, pid);
    const bool leaf = p.read<std::uint32_t>(base + 0) != 0;
    const std::uint32_t nkeys = p.read<std::uint32_t>(base + 4);
    const std::uint32_t pos = search(p, base, nkeys, key);
    if (leaf) {
      std::optional<std::uint64_t> out;
      if (pos < nkeys && p.read<std::int64_t>(key_addr(base, pos)) == key)
        out = p.read<std::uint64_t>(val_addr(base, pos));
      pool_.unpin(p, pid, false);
      return out;
    }
    std::uint32_t slot = pos;
    if (pos < nkeys && p.read<std::int64_t>(key_addr(base, pos)) == key)
      slot = pos + 1;
    const auto child =
        static_cast<std::uint32_t>(p.read<std::uint64_t>(val_addr(base, slot)));
    pool_.unpin(p, pid, false);
    page = child;
  }
}

std::uint64_t BTree::scan(
    sim::Proc& p, std::int64_t lo, std::int64_t hi,
    const std::function<void(std::int64_t, std::uint64_t)>& fn) {
  COMPASS_CHECK_MSG(latch_ready_, "BTree::create must run first");
  ULatch::Guard g(tree_latch_, p);
  // Descend to the leaf containing lo.
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  auto page = static_cast<std::uint32_t>(p.read<std::uint64_t>(meta + 0));
  pool_.unpin(p, meta_pid, false);
  for (;;) {
    const PageId pid{file_, page};
    const Addr base = pool_.pin(p, pid);
    if (p.read<std::uint32_t>(base + 0) != 0) {
      pool_.unpin(p, pid, false);
      break;
    }
    const std::uint32_t nkeys = p.read<std::uint32_t>(base + 4);
    const std::uint32_t pos = search(p, base, nkeys, lo);
    std::uint32_t slot = pos;
    if (pos < nkeys && p.read<std::int64_t>(key_addr(base, pos)) == lo)
      slot = pos + 1;
    const auto child =
        static_cast<std::uint32_t>(p.read<std::uint64_t>(val_addr(base, slot)));
    pool_.unpin(p, pid, false);
    page = child;
  }
  // Walk the leaf chain.
  std::uint64_t count = 0;
  while (page != 0) {
    const PageId pid{file_, page};
    const Addr base = pool_.pin(p, pid);
    const std::uint32_t nkeys = p.read<std::uint32_t>(base + 4);
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      const auto k = p.read<std::int64_t>(key_addr(base, i));
      if (k < lo) continue;
      if (k > hi) {
        pool_.unpin(p, pid, false);
        return count;
      }
      fn(k, p.read<std::uint64_t>(val_addr(base, i)));
      ++count;
    }
    const auto next = static_cast<std::uint32_t>(p.read<std::uint64_t>(base + 8));
    pool_.unpin(p, pid, false);
    page = next;
  }
  return count;
}

std::uint64_t BTree::size(sim::Proc& p) {
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  const auto n = p.read<std::uint64_t>(meta + 16);
  pool_.unpin(p, meta_pid, false);
  return n;
}

}  // namespace compass::workloads::db
