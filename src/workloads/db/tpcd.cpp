#include "workloads/db/tpcd.h"

#include <cstring>

namespace compass::workloads::db {

namespace {
constexpr std::uint32_t kLineItemFile = 1;
}

Tpcd::Tpcd(const TpcdConfig& cfg)
    : cfg_(cfg),
      pool_(cfg.db),
      lineitem_(pool_, kLineItemFile, sizeof(LineItemRec)),
      lineitem_path_(cfg.db.data_dir + "/lineitem.dat") {
  pool_.register_file(kLineItemFile, lineitem_path_);
}

void Tpcd::setup(sim::Proc& p) {
  pool_.init(p);
  lineitem_.create(p);
  util::Rng rng(cfg_.seed);
  for (std::uint64_t i = 0; i < cfg_.lineitems; ++i) {
    LineItemRec rec{};
    rec.orderkey = static_cast<std::int64_t>(i / 4);
    rec.partkey = rng.next_in(0, 9999);
    rec.quantity = rng.next_in(1, 50);
    rec.extendedprice = rng.next_in(100, 100'000);
    rec.discount_pct = rng.next_in(0, 10);
    rec.tax_pct = rng.next_in(0, 8);
    rec.shipdate = static_cast<std::int32_t>(rng.next_in(0, 2555));
    rec.returnflag = static_cast<std::uint8_t>(rng.next_in(0, 1));
    rec.linestatus = static_cast<std::uint8_t>(rng.next_in(0, 1));
    lineitem_.append(
        p, {reinterpret_cast<const std::uint8_t*>(&rec), sizeof(rec)});
  }
  pool_.flush_all(p);
}

void Tpcd::aggregate(sim::Proc& p, Addr rec, Q1Result& out) {
  const auto qty = p.read<std::int64_t>(rec + offsetof(LineItemRec, quantity));
  const auto price =
      p.read<std::int64_t>(rec + offsetof(LineItemRec, extendedprice));
  const auto disc =
      p.read<std::int64_t>(rec + offsetof(LineItemRec, discount_pct));
  const auto rf = p.read<std::uint8_t>(rec + offsetof(LineItemRec, returnflag));
  const auto ls = p.read<std::uint8_t>(rec + offsetof(LineItemRec, linestatus));
  p.ctx().compute(90);  // aggregation expressions / group hashing
  Q1Group& g = out[static_cast<std::size_t>(group_of(rf, ls))];
  ++g.count;
  g.sum_qty += qty;
  g.sum_price += price;
  g.sum_disc_price += price * (100 - disc) / 100;
}

Tpcd::Q1Result Tpcd::q1(sim::Proc& p, int worker, int nworkers) {
  pool_.attach(p);
  Q1Result out{};
  lineitem_.for_each_partition(p, worker, nworkers,
                               [&](Rid, Addr rec) { aggregate(p, rec, out); });
  return out;
}

std::int64_t Tpcd::q6(sim::Proc& p, int worker, int nworkers) {
  pool_.attach(p);
  std::int64_t revenue = 0;
  lineitem_.for_each_partition(p, worker, nworkers, [&](Rid, Addr rec) {
    const auto ship = p.read<std::int32_t>(rec + offsetof(LineItemRec, shipdate));
    p.ctx().compute(30);  // predicate evaluation
    if (ship < 365 || ship >= 730) return;
    const auto disc =
        p.read<std::int64_t>(rec + offsetof(LineItemRec, discount_pct));
    if (disc < 5 || disc > 7) return;
    const auto qty = p.read<std::int64_t>(rec + offsetof(LineItemRec, quantity));
    if (qty >= 24) return;
    const auto price =
        p.read<std::int64_t>(rec + offsetof(LineItemRec, extendedprice));
    revenue += price * disc / 100;
  });
  return revenue;
}

Tpcd::Q1Result Tpcd::q1_mmap(sim::Proc& p) {
  pool_.attach(p);
  // Make sure the file reflects every loaded page, then map it.
  pool_.flush_all(p);
  const auto fd = p.open(lineitem_path_);
  COMPASS_CHECK_MSG(fd >= 0, "cannot open " << lineitem_path_);
  const auto size = p.statx(lineitem_path_);
  COMPASS_CHECK(size > 0);
  const auto base = p.mmap(fd, 0, static_cast<std::uint64_t>(size));
  COMPASS_CHECK_MSG(base > 0, "mmap failed: " << base);

  Q1Result out{};
  const std::uint32_t page_size = pool_.config().page_size;
  const std::uint32_t spp = lineitem_.slots_per_page();
  for (std::uint64_t i = 0; i < cfg_.lineitems; ++i) {
    const Rid rid = lineitem_.rid_of(i);
    const Addr rec = static_cast<Addr>(base) +
                     static_cast<Addr>(rid.page) * page_size + 16 +
                     static_cast<Addr>(rid.slot) * sizeof(LineItemRec);
    aggregate(p, rec, out);
    (void)spp;
  }
  p.msync(static_cast<Addr>(base));
  p.munmap(static_cast<Addr>(base));
  p.close(fd);
  return out;
}

void Tpcd::merge(Q1Result& into, const Q1Result& from) {
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i].count += from[i].count;
    into[i].sum_qty += from[i].sum_qty;
    into[i].sum_price += from[i].sum_price;
    into[i].sum_disc_price += from[i].sum_disc_price;
  }
}

}  // namespace compass::workloads::db
