// Common types for the miniature database engine (the DB2 substitute).
//
// The engine is a process-model database: worker processes share a buffer
// pool living in a SysV-style shared segment (shmget/shmat), synchronize
// with user-space latches, and reach the database files through kreadv /
// kwritev / fsync OS calls — the access pattern the paper profiles for
// TPCC/TPCD on DB2 (Table 1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "core/types.h"

namespace compass::workloads::db {

/// A page address: (file id, page number within the file).
struct PageId {
  std::uint32_t file = ~0u;
  std::uint32_t page = ~0u;

  auto operator<=>(const PageId&) const = default;
  bool valid() const { return file != ~0u; }
};

/// Record id: (page number, slot within the page) of a heap table.
struct Rid {
  std::uint32_t page = 0;
  std::uint32_t slot = 0;

  std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(page) << 32) | slot;
  }
  static Rid decode(std::uint64_t v) {
    return Rid{static_cast<std::uint32_t>(v >> 32),
               static_cast<std::uint32_t>(v)};
  }
  auto operator<=>(const Rid&) const = default;
};

struct DbConfig {
  std::uint32_t page_size = 4096;
  std::uint32_t pool_pages = 128;       ///< buffer-pool frames
  std::uint64_t shm_key = 0xDB2;
  std::string data_dir = "/db";
  int wal_group_commit = 8;             ///< fsync the WAL every N commits
  /// Raw (O_DIRECT-style) I/O for the data files: DMA straight into the
  /// pool, most I/O cost in interrupt handlers (DB2-on-raw-devices, the
  /// OLTP configuration). Buffered I/O goes through the kernel buffer
  /// cache with copy loops (kernel-time heavy, the DSS configuration).
  bool direct_io = true;
};

}  // namespace compass::workloads::db
