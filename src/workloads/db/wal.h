// Write-ahead log with group commit.
//
// Commit records are staged into a shared log buffer under the log latch
// and written to the WAL file with kwritev; every Nth commit fsyncs (group
// commit), which is where the OLTP disk-write I/O of the paper's TPCC
// profile comes from.
#pragma once

#include <atomic>
#include <span>

#include "workloads/db/buffer_pool.h"

namespace compass::workloads::db {

class Wal {
 public:
  Wal(BufferPool& pool, std::string path);

  /// Coordinator, once (after BufferPool::init).
  void create(sim::Proc& p);

  /// Append one commit record and flush it to the log file; fsyncs every
  /// `wal_group_commit`-th commit.
  void log_commit(sim::Proc& p, std::span<const std::uint8_t> record);

  std::uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  std::uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }

 private:
  std::int64_t fd_for(sim::Proc& p);

  BufferPool& pool_;
  std::string path_;
  ULatch latch_;
  Addr staging_ = 0;  ///< shared-segment staging buffer
  std::uint64_t file_offset_ = 0;
  std::map<const sim::Proc*, std::int64_t> fds_;
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  bool ready_ = false;
};

}  // namespace compass::workloads::db
