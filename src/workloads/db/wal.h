// Write-ahead log with group commit.
//
// Commit records are staged into a shared log buffer under the log latch
// and written to the WAL file with kwritev; every Nth commit fsyncs (group
// commit), which is where the OLTP disk-write I/O of the paper's TPCC
// profile comes from.
//
// Records are framed on disk as {u32 len, u32 csum, payload} so recovery
// can tell a complete record from a torn tail. The fault plane's
// wal_crash_at knob "kills the database" mid-append at the Nth commit:
// only a torn prefix of that record reaches the platter, every later
// log_commit reports the crash, and recover() replays the valid prefix —
// the recovered state is exactly the committed one.
#pragma once

#include <atomic>
#include <functional>
#include <span>

#include "fault/fault_injector.h"
#include "workloads/db/buffer_pool.h"

namespace compass::workloads::db {

class Wal {
 public:
  Wal(BufferPool& pool, std::string path);

  /// Coordinator, once (after BufferPool::init).
  void create(sim::Proc& p);

  /// Crash the database mid-append at the `n`-th commit (1-based; 0 means
  /// never). Set before workers start.
  void set_crash_at(std::uint64_t n) { crash_at_ = n; }
  /// Attach the fault plane for kWalCrash accounting (may be null).
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Append one commit record and flush it to the log file; fsyncs every
  /// `wal_group_commit`-th commit. Returns false when the database has
  /// crashed (at the crash point or on any later call): the record did NOT
  /// commit and the caller must stop issuing transactions.
  bool log_commit(sim::Proc& p, std::span<const std::uint8_t> record);

  /// Replay the valid prefix of the log: calls `apply` for every complete,
  /// checksummed record and stops at the first torn or corrupt frame (the
  /// crash point). Returns the number of records recovered and resets the
  /// log head to the end of the valid prefix so logging can resume.
  using ApplyFn = std::function<void(std::span<const std::uint8_t>)>;
  std::uint64_t recover(sim::Proc& p, const ApplyFn& apply = {});

  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }
  std::uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  std::uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }

 private:
  std::int64_t fd_for(sim::Proc& p);

  BufferPool& pool_;
  std::string path_;
  ULatch latch_;
  Addr staging_ = 0;  ///< shared-segment staging buffer
  std::uint64_t file_offset_ = 0;
  std::map<const sim::Proc*, std::int64_t> fds_;
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::uint64_t crash_at_ = 0;
  std::atomic<bool> crashed_{false};
  fault::FaultInjector* injector_ = nullptr;
  bool ready_ = false;
};

}  // namespace compass::workloads::db
