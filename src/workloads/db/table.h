// Heap table: fixed-size records packed into buffer-pool pages.
//
// Page 0 is the table meta page (+0 u64 record count, +8 u64 num pages,
// +16 u32 record size). Data pages hold (page_size - 16) / record_size
// slots after a 16-byte header (+0 u32 nslots used).
#pragma once

#include <functional>
#include <span>

#include "workloads/db/buffer_pool.h"

namespace compass::workloads::db {

class Table {
 public:
  Table(BufferPool& pool, std::uint32_t file_id, std::uint32_t record_size);

  /// Coordinator, once.
  void create(sim::Proc& p);

  /// Append a record; returns its rid. Thread-safe (table latch).
  Rid append(sim::Proc& p, std::span<const std::uint8_t> record);

  /// Read a record by rid into `out` (user loads).
  void read(sim::Proc& p, Rid rid, std::span<std::uint8_t> out);

  /// Overwrite a record in place under the page content latch.
  void update(sim::Proc& p, Rid rid,
              const std::function<void(Addr record_base)>& mutate);

  /// Read-only access under the page latch.
  void with_record(sim::Proc& p, Rid rid,
                   const std::function<void(Addr record_base)>& fn);

  /// Scan every record in page order; `fn` gets (rid, record sim address)
  /// with the page pinned and content-latched.
  std::uint64_t for_each(sim::Proc& p,
                         const std::function<void(Rid, Addr)>& fn);

  /// Partitioned scan for parallel queries: only pages where
  /// page % nworkers == worker are visited.
  std::uint64_t for_each_partition(sim::Proc& p, int worker, int nworkers,
                                   const std::function<void(Rid, Addr)>& fn);

  std::uint64_t count(sim::Proc& p);
  std::uint32_t slots_per_page() const { return slots_per_page_; }
  std::uint32_t record_size() const { return record_size_; }
  std::uint32_t file_id() const { return file_; }

  /// Deterministic rid for the i-th appended record (bulk loads append in
  /// order, so loaders can compute rids without an index).
  Rid rid_of(std::uint64_t index) const {
    return Rid{static_cast<std::uint32_t>(1 + index / slots_per_page_),
               static_cast<std::uint32_t>(index % slots_per_page_)};
  }

 private:
  Addr slot_addr(Addr page_base, std::uint32_t slot) const {
    return page_base + 16 + static_cast<Addr>(slot) * record_size_;
  }

  BufferPool& pool_;
  std::uint32_t file_;
  std::uint32_t record_size_;
  std::uint32_t slots_per_page_;
  ULatch table_latch_;
  bool latch_ready_ = false;
};

}  // namespace compass::workloads::db
