// A TPC-C-like OLTP workload over the mini engine (the paper's "TPCC/DB2").
//
// Scaled-down schema: ITEM (B+-tree indexed), STOCK, CUSTOMER, WAREHOUSE
// (computed-rid heaps), ORDERS and ORDERLINE (append-only heaps), and a
// WAL with group commit. The transaction mix is NewOrder/Payment with
// NURand key skew, run by multiple worker processes sharing the buffer
// pool — the memory-reference and OS-call pattern Table 1 profiles: ~79%
// user time in index walks and tuple updates, ~21% OS time dominated by
// kreadv/kwritev and disk interrupt handling.
#pragma once

#include "util/rng.h"
#include "workloads/db/btree.h"
#include "workloads/db/table.h"
#include "workloads/db/wal.h"

namespace compass::workloads::db {

struct TpccConfig {
  int warehouses = 2;
  int items = 400;
  int customers_per_wh = 60;
  int txns_per_worker = 40;
  double payment_fraction = 0.45;
  std::uint64_t seed = 12345;
  DbConfig db;
};

struct ItemRec {
  std::int64_t id;
  std::int64_t price;  // cents
  char name[48];
};
static_assert(sizeof(ItemRec) == 64);

struct StockRec {
  std::int64_t item;
  std::int64_t wh;
  std::int64_t quantity;
  std::int64_t ytd;
  char dist_info[32];
};
static_assert(sizeof(StockRec) == 64);

struct CustomerRec {
  std::int64_t id;
  std::int64_t wh;
  std::int64_t balance;   // cents, may go negative
  std::int64_t payments;
  char data[96];
};
static_assert(sizeof(CustomerRec) == 128);

struct WarehouseRec {
  std::int64_t id;
  std::int64_t ytd;
  char name[48];
};
static_assert(sizeof(WarehouseRec) == 64);

struct OrderRec {
  std::int64_t id;
  std::int64_t wh;
  std::int64_t customer;
  std::int64_t ol_cnt;
};
static_assert(sizeof(OrderRec) == 32);

struct OrderLineRec {
  std::int64_t order;
  std::int64_t item;
  std::int64_t quantity;
  std::int64_t amount;  // cents
};
static_assert(sizeof(OrderLineRec) == 32);

class Tpcc {
 public:
  explicit Tpcc(const TpccConfig& cfg);

  const TpccConfig& config() const { return cfg_; }
  BufferPool& pool() { return pool_; }
  Wal& wal() { return wal_; }

  /// Coordinator: create and load every table, then flush.
  void setup(sim::Proc& p);

  struct WorkerResult {
    std::uint64_t new_orders = 0;
    std::uint64_t payments = 0;
    std::int64_t amount_total = 0;  ///< cents moved (determinism check)
  };

  /// Run the transaction mix; deterministic for (seed, worker_id).
  WorkerResult worker(sim::Proc& p, int worker_id);

  // ---- consistency checks (run after the simulation) ----------------------

  /// Sum of STOCK.ytd over all rows == sum of order-line amounts.
  std::int64_t total_stock_ytd(sim::Proc& p);
  std::int64_t total_orderline_amount(sim::Proc& p);
  /// Sum of WAREHOUSE.ytd == total payment amount.
  std::int64_t total_warehouse_ytd(sim::Proc& p);
  std::uint64_t order_count(sim::Proc& p) { return orders_.count(p); }

 private:
  // Both return false when the WAL reports a crash: the transaction's
  // updates are applied (they precede the commit record, so the table-level
  // invariants still hold) but it did not commit, and the worker must stop.
  bool new_order(sim::Proc& p, util::Rng& rng, WorkerResult& r);
  bool payment(sim::Proc& p, util::Rng& rng, WorkerResult& r);
  Rid stock_rid(std::int64_t item, std::int64_t wh) const {
    return stock_.rid_of(static_cast<std::uint64_t>(
        item * cfg_.warehouses + wh));
  }
  Rid customer_rid(std::int64_t wh, std::int64_t c) const {
    return customers_.rid_of(
        static_cast<std::uint64_t>(wh * cfg_.customers_per_wh + c));
  }

  TpccConfig cfg_;
  BufferPool pool_;
  BTree item_index_;
  Table items_, stock_, customers_, warehouses_, orders_, order_lines_;
  Wal wal_;
};

}  // namespace compass::workloads::db
