#include "workloads/db/tpcc.h"

#include <cstring>

namespace compass::workloads::db {

namespace {
enum FileIds : std::uint32_t {
  kItemIndexFile = 1,
  kItemsFile,
  kStockFile,
  kCustomersFile,
  kWarehousesFile,
  kOrdersFile,
  kOrderLinesFile,
};

template <class T>
std::span<const std::uint8_t> as_bytes(const T& rec) {
  return {reinterpret_cast<const std::uint8_t*>(&rec), sizeof(T)};
}
}  // namespace

Tpcc::Tpcc(const TpccConfig& cfg)
    : cfg_(cfg),
      pool_(cfg.db),
      item_index_(pool_, kItemIndexFile),
      items_(pool_, kItemsFile, sizeof(ItemRec)),
      stock_(pool_, kStockFile, sizeof(StockRec)),
      customers_(pool_, kCustomersFile, sizeof(CustomerRec)),
      warehouses_(pool_, kWarehousesFile, sizeof(WarehouseRec)),
      orders_(pool_, kOrdersFile, sizeof(OrderRec)),
      order_lines_(pool_, kOrderLinesFile, sizeof(OrderLineRec)),
      wal_(pool_, cfg.db.data_dir + "/tpcc.wal") {
  const std::string dir = cfg_.db.data_dir;
  pool_.register_file(kItemIndexFile, dir + "/item.idx");
  pool_.register_file(kItemsFile, dir + "/item.dat");
  pool_.register_file(kStockFile, dir + "/stock.dat");
  pool_.register_file(kCustomersFile, dir + "/customer.dat");
  pool_.register_file(kWarehousesFile, dir + "/warehouse.dat");
  pool_.register_file(kOrdersFile, dir + "/orders.dat");
  pool_.register_file(kOrderLinesFile, dir + "/orderline.dat");
}

void Tpcc::setup(sim::Proc& p) {
  pool_.init(p);
  wal_.create(p);
  item_index_.create(p);
  items_.create(p);
  stock_.create(p);
  customers_.create(p);
  warehouses_.create(p);
  orders_.create(p);
  order_lines_.create(p);

  util::Rng rng(cfg_.seed);
  for (std::int64_t i = 0; i < cfg_.items; ++i) {
    ItemRec rec{};
    rec.id = i;
    rec.price = rng.next_in(100, 10'000);
    std::snprintf(rec.name, sizeof(rec.name), "item-%lld",
                  static_cast<long long>(i));
    const Rid rid = items_.append(p, as_bytes(rec));
    item_index_.insert(p, i, rid.encode());
  }
  for (std::int64_t i = 0; i < cfg_.items; ++i) {
    for (std::int64_t w = 0; w < cfg_.warehouses; ++w) {
      StockRec rec{};
      rec.item = i;
      rec.wh = w;
      rec.quantity = rng.next_in(50, 100);
      rec.ytd = 0;
      stock_.append(p, as_bytes(rec));
    }
  }
  for (std::int64_t w = 0; w < cfg_.warehouses; ++w) {
    WarehouseRec wrec{};
    wrec.id = w;
    wrec.ytd = 0;
    warehouses_.append(p, as_bytes(wrec));
  }
  for (std::int64_t w = 0; w < cfg_.warehouses; ++w) {
    for (std::int64_t c = 0; c < cfg_.customers_per_wh; ++c) {
      CustomerRec rec{};
      rec.id = c;
      rec.wh = w;
      rec.balance = 0;
      rec.payments = 0;
      customers_.append(p, as_bytes(rec));
    }
  }
  pool_.flush_all(p);
}

bool Tpcc::new_order(sim::Proc& p, util::Rng& rng, WorkerResult& r) {
  // SQL parse / plan / authorization — user-mode DBMS work.
  p.ctx().compute(60'000);
  const std::int64_t wh = rng.next_in(0, cfg_.warehouses - 1);
  const std::int64_t cust = rng.next_in(0, cfg_.customers_per_wh - 1);
  const std::int64_t ol_cnt = rng.next_in(5, 15);
  std::int64_t total = 0;

  // Order id = current order count (the append's table latch makes ids
  // unique even across workers).
  OrderRec order{};
  order.wh = wh;
  order.customer = cust;
  order.ol_cnt = ol_cnt;
  const Rid order_rid = orders_.append(p, as_bytes(order));
  const std::int64_t order_id = static_cast<std::int64_t>(order_rid.encode());

  for (std::int64_t line = 0; line < ol_cnt; ++line) {
    const std::int64_t item = rng.nurand(255, 0, cfg_.items - 1);
    // Index walk to the item tuple.
    const auto rid_enc = item_index_.lookup(p, item);
    COMPASS_CHECK_MSG(rid_enc.has_value(), "item " << item << " missing");
    std::int64_t price = 0;
    items_.with_record(p, Rid::decode(*rid_enc), [&](Addr rec) {
      price = p.read<std::int64_t>(rec + offsetof(ItemRec, price));
    });
    const std::int64_t qty = rng.next_in(1, 10);
    const std::int64_t amount = price * qty;
    total += amount;
    // Stock update under the page content latch.
    stock_.update(p, stock_rid(item, wh), [&](Addr rec) {
      const auto q = p.read<std::int64_t>(rec + offsetof(StockRec, quantity));
      p.write<std::int64_t>(rec + offsetof(StockRec, quantity),
                            q >= qty ? q - qty : q - qty + 91);
      const auto ytd = p.read<std::int64_t>(rec + offsetof(StockRec, ytd));
      p.write<std::int64_t>(rec + offsetof(StockRec, ytd), ytd + amount);
    });
    OrderLineRec ol{};
    ol.order = order_id;
    ol.item = item;
    ol.quantity = qty;
    ol.amount = amount;
    order_lines_.append(p, as_bytes(ol));
    p.ctx().compute(6'000);  // per-line expression evaluation / bookkeeping
  }
  // Commit record: order id + total.
  std::uint8_t commit[64] = {};
  std::memcpy(commit, &order_id, 8);
  std::memcpy(commit + 8, &total, 8);
  if (!wal_.log_commit(p, commit)) return false;
  ++r.new_orders;
  r.amount_total += total;
  return true;
}

bool Tpcc::payment(sim::Proc& p, util::Rng& rng, WorkerResult& r) {
  p.ctx().compute(20'000);  // parse / plan
  const std::int64_t wh = rng.next_in(0, cfg_.warehouses - 1);
  const std::int64_t cust = rng.next_in(0, cfg_.customers_per_wh - 1);
  const std::int64_t amount = rng.next_in(100, 500'000);

  warehouses_.update(p, warehouses_.rid_of(static_cast<std::uint64_t>(wh)),
                     [&](Addr rec) {
                       const auto ytd =
                           p.read<std::int64_t>(rec + offsetof(WarehouseRec, ytd));
                       p.write<std::int64_t>(rec + offsetof(WarehouseRec, ytd),
                                             ytd + amount);
                     });
  customers_.update(p, customer_rid(wh, cust), [&](Addr rec) {
    const auto bal = p.read<std::int64_t>(rec + offsetof(CustomerRec, balance));
    p.write<std::int64_t>(rec + offsetof(CustomerRec, balance), bal - amount);
    const auto n = p.read<std::int64_t>(rec + offsetof(CustomerRec, payments));
    p.write<std::int64_t>(rec + offsetof(CustomerRec, payments), n + 1);
  });
  std::uint8_t commit[32] = {};
  std::memcpy(commit, &wh, 8);
  std::memcpy(commit + 8, &amount, 8);
  if (!wal_.log_commit(p, commit)) return false;
  ++r.payments;
  r.amount_total += amount;
  return true;
}

Tpcc::WorkerResult Tpcc::worker(sim::Proc& p, int worker_id) {
  pool_.attach(p);
  util::Rng rng(cfg_.seed * 7919 + static_cast<std::uint64_t>(worker_id));
  WorkerResult r;
  for (int t = 0; t < cfg_.txns_per_worker; ++t) {
    const bool committed = rng.next_bool(cfg_.payment_fraction)
                               ? payment(p, rng, r)
                               : new_order(p, rng, r);
    if (!committed) break;  // database crash: this process is dead
    p.ctx().compute(2'000);  // client think/parse time
  }
  return r;
}

std::int64_t Tpcc::total_stock_ytd(sim::Proc& p) {
  std::int64_t total = 0;
  stock_.for_each(p, [&](Rid, Addr rec) {
    total += p.read<std::int64_t>(rec + offsetof(StockRec, ytd));
  });
  return total;
}

std::int64_t Tpcc::total_orderline_amount(sim::Proc& p) {
  std::int64_t total = 0;
  order_lines_.for_each(p, [&](Rid, Addr rec) {
    total += p.read<std::int64_t>(rec + offsetof(OrderLineRec, amount));
  });
  return total;
}

std::int64_t Tpcc::total_warehouse_ytd(sim::Proc& p) {
  std::int64_t total = 0;
  warehouses_.for_each(p, [&](Rid, Addr rec) {
    total += p.read<std::int64_t>(rec + offsetof(WarehouseRec, ytd));
  });
  return total;
}

}  // namespace compass::workloads::db
