#include "workloads/db/table.h"

namespace compass::workloads::db {

Table::Table(BufferPool& pool, std::uint32_t file_id, std::uint32_t record_size)
    : pool_(pool), file_(file_id), record_size_(record_size) {
  COMPASS_CHECK(record_size_ >= 8 && record_size_ <= pool_.config().page_size - 16);
  slots_per_page_ = (pool_.config().page_size - 16) / record_size_;
}

void Table::create(sim::Proc& p) {
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  p.write<std::uint64_t>(meta + 0, 0);  // count
  p.write<std::uint64_t>(meta + 8, 1);  // pages (meta only)
  p.write<std::uint32_t>(meta + 16, record_size_);
  pool_.unpin(p, meta_pid, true);
  table_latch_.init(p, pool_.segment_base() +
                           static_cast<Addr>(pool_.config().pool_pages) *
                               pool_.config().page_size +
                           2048 + file_ * 8);
  latch_ready_ = true;
}

Rid Table::append(sim::Proc& p, std::span<const std::uint8_t> record) {
  COMPASS_CHECK(record.size() == record_size_);
  COMPASS_CHECK_MSG(latch_ready_, "Table::create must run first");
  ULatch::Guard g(table_latch_, p);
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  const auto count = p.read<std::uint64_t>(meta + 0);
  const Rid rid = rid_of(count);
  const PageId pid{file_, rid.page};
  const Addr base = pool_.pin(p, pid);
  if (rid.slot == 0) p.write<std::uint32_t>(base + 0, 0);  // fresh page
  p.put_bytes(slot_addr(base, rid.slot), record);
  p.write<std::uint32_t>(base + 0, rid.slot + 1);
  pool_.unpin(p, pid, true);
  p.write<std::uint64_t>(meta + 0, count + 1);
  if (rid.slot == 0)
    p.write<std::uint64_t>(meta + 8, p.read<std::uint64_t>(meta + 8) + 1);
  pool_.unpin(p, meta_pid, true);
  return rid;
}

void Table::read(sim::Proc& p, Rid rid, std::span<std::uint8_t> out) {
  COMPASS_CHECK(out.size() >= record_size_);
  const PageId pid{file_, rid.page};
  ULatch::Guard g(pool_.page_latch(pid), p);
  const Addr base = pool_.pin(p, pid);
  const auto bytes = p.get_bytes(slot_addr(base, rid.slot), record_size_);
  std::copy(bytes.begin(), bytes.end(), out.begin());
  pool_.unpin(p, pid, false);
}

void Table::update(sim::Proc& p, Rid rid,
                   const std::function<void(Addr)>& mutate) {
  const PageId pid{file_, rid.page};
  ULatch::Guard g(pool_.page_latch(pid), p);
  const Addr base = pool_.pin(p, pid);
  mutate(slot_addr(base, rid.slot));
  pool_.unpin(p, pid, true);
}

void Table::with_record(sim::Proc& p, Rid rid,
                        const std::function<void(Addr)>& fn) {
  const PageId pid{file_, rid.page};
  ULatch::Guard g(pool_.page_latch(pid), p);
  const Addr base = pool_.pin(p, pid);
  fn(slot_addr(base, rid.slot));
  pool_.unpin(p, pid, false);
}

std::uint64_t Table::for_each(sim::Proc& p,
                              const std::function<void(Rid, Addr)>& fn) {
  return for_each_partition(p, 0, 1, fn);
}

std::uint64_t Table::for_each_partition(
    sim::Proc& p, int worker, int nworkers,
    const std::function<void(Rid, Addr)>& fn) {
  const std::uint64_t total = count(p);
  const std::uint64_t npages = (total + slots_per_page_ - 1) / slots_per_page_;
  std::uint64_t visited = 0;
  for (std::uint64_t dpage = 0; dpage < npages; ++dpage) {
    if (static_cast<int>(dpage % static_cast<std::uint64_t>(nworkers)) != worker)
      continue;
    const auto page = static_cast<std::uint32_t>(1 + dpage);
    const PageId pid{file_, page};
    ULatch::Guard g(pool_.page_latch(pid), p);
    const Addr base = pool_.pin(p, pid);
    const std::uint64_t first = dpage * slots_per_page_;
    const std::uint64_t last =
        std::min<std::uint64_t>(first + slots_per_page_, total);
    for (std::uint64_t i = first; i < last; ++i) {
      const auto slot = static_cast<std::uint32_t>(i - first);
      fn(Rid{page, slot}, slot_addr(base, slot));
      ++visited;
    }
    pool_.unpin(p, pid, false);
  }
  return visited;
}

std::uint64_t Table::count(sim::Proc& p) {
  const PageId meta_pid{file_, 0};
  const Addr meta = pool_.pin(p, meta_pid);
  const auto n = p.read<std::uint64_t>(meta + 0);
  pool_.unpin(p, meta_pid, false);
  return n;
}

}  // namespace compass::workloads::db
