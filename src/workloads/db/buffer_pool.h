// The shared buffer pool: page frames in a shared-memory segment, a
// host-side page table guarded by a pool latch, and file I/O through the
// simulated OS (kreadv/kwritev on per-process descriptors).
//
// Concurrency discipline:
//  * the pool latch protects the page table, frame metadata and the fd
//    cache — and is held across the fill/writeback I/O of a miss, which
//    serializes misses (a deliberate, DB2-era-style coarse design; the
//    latch-contention ablation bench measures its cost);
//  * pinned frames are never evicted;
//  * page *content* is protected by sharded page latches the callers
//    acquire around record reads/updates.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <vector>

#include "workloads/db/db.h"
#include "workloads/usync.h"

namespace compass::workloads::db {

class BufferPool {
 public:
  explicit BufferPool(const DbConfig& cfg);

  const DbConfig& config() const { return cfg_; }

  /// Register a database file before the run. Files are created at init().
  void register_file(std::uint32_t file_id, std::string path);

  /// Coordinator, once: attach the segment, create the files, initialize
  /// the latches.
  void init(sim::Proc& p);

  /// Every process (including the coordinator) before first use.
  void attach(sim::Proc& p);

  /// Pin a page into the pool; returns the simulated address of its frame.
  Addr pin(sim::Proc& p, PageId pid);
  void unpin(sim::Proc& p, PageId pid, bool dirty);

  /// Write back every dirty unpinned frame.
  void flush_all(sim::Proc& p);

  /// Content latch shard for a page.
  ULatch& page_latch(PageId pid) {
    return shard_latches_[(pid.file * 2654435761u + pid.page) %
                          shard_latches_.size()];
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  Addr segment_base() const { return seg_base_; }

 private:
  struct Frame {
    PageId pid;
    std::uint32_t pins = 0;
    bool valid = false;
    bool dirty = false;
    bool filling = false;  ///< fill/write-back I/O in flight (latch dropped)
    std::uint64_t lru = 0;
  };

  core::WaitChannel fill_channel(std::size_t frame) const {
    return seg_base_ + static_cast<Addr>(cfg_.pool_pages) * cfg_.page_size +
           512 + static_cast<Addr>(frame) * 8;
  }

  Addr frame_addr(std::size_t i) const {
    return seg_base_ + static_cast<Addr>(i) * cfg_.page_size;
  }
  std::int64_t fd_for(sim::Proc& p, std::uint32_t file);
  std::int64_t fd_for_locked(sim::Proc& p, std::uint32_t file,
                             bool latch_dropped);
  void write_back(sim::Proc& p, std::size_t frame_index);

  DbConfig cfg_;
  std::map<std::uint32_t, std::string> files_;
  ULatch pool_latch_;
  std::array<ULatch, 64> shard_latches_;
  std::vector<Frame> frames_;
  std::map<PageId, std::size_t> page_table_;
  std::map<std::pair<const sim::Proc*, std::uint32_t>, std::int64_t> fds_;
  Addr seg_base_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  bool initialized_ = false;
};

}  // namespace compass::workloads::db
