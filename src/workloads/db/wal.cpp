#include "workloads/db/wal.h"

namespace compass::workloads::db {

Wal::Wal(BufferPool& pool, std::string path)
    : pool_(pool), path_(std::move(path)) {}

void Wal::create(sim::Proc& p) {
  const auto fd = p.creat(path_);
  COMPASS_CHECK_MSG(fd >= 0, "cannot create WAL " << path_);
  p.close(fd);
  // Latch word + staging buffer live past the table latch area of the
  // shared segment.
  const Addr ctl = pool_.segment_base() +
                   static_cast<Addr>(pool_.config().pool_pages) *
                       pool_.config().page_size +
                   3072;
  latch_.init(p, ctl);
  staging_ = ctl + 64;
  ready_ = true;
}

std::int64_t Wal::fd_for(sim::Proc& p) {
  if (const auto it = fds_.find(&p); it != fds_.end()) return it->second;
  const auto fd = p.open(path_);
  COMPASS_CHECK_MSG(fd >= 0, "cannot open WAL " << path_);
  fds_.emplace(&p, fd);
  return fd;
}

void Wal::log_commit(sim::Proc& p, std::span<const std::uint8_t> record) {
  COMPASS_CHECK_MSG(ready_, "Wal::create must run first");
  COMPASS_CHECK(record.size() <= 512);
  ULatch::Guard g(latch_, p);
  // Stage the record (user stores into the shared log buffer), then append
  // it to the log file.
  p.put_bytes(staging_, record);
  const auto fd = fd_for(p);
  p.lseek(fd, static_cast<std::int64_t>(file_offset_), 0);
  const os::KIovec iov[1] = {{staging_, record.size()}};
  const auto n = p.writev(fd, iov);
  COMPASS_CHECK(n == static_cast<std::int64_t>(record.size()));
  file_offset_ += record.size();
  const auto c = commits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (pool_.config().wal_group_commit > 0 &&
      c % static_cast<std::uint64_t>(pool_.config().wal_group_commit) == 0) {
    p.fsync(fd);
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace compass::workloads::db
