#include "workloads/db/wal.h"

#include <cstring>

#include "os/tcpip.h"  // frame_checksum

namespace compass::workloads::db {

namespace {
/// On-disk record frame. The checksum lets recovery reject a torn tail
/// whose length field happens to survive.
struct WalFrame {
  std::uint32_t len = 0;
  std::uint32_t csum = 0;
};
static_assert(sizeof(WalFrame) == 8);

constexpr std::uint32_t kMaxRecord = 512;
}  // namespace

Wal::Wal(BufferPool& pool, std::string path)
    : pool_(pool), path_(std::move(path)) {}

void Wal::create(sim::Proc& p) {
  const auto fd = p.creat(path_);
  COMPASS_CHECK_MSG(fd >= 0, "cannot create WAL " << path_);
  p.close(fd);
  // Latch word + staging buffer live past the table latch area of the
  // shared segment.
  const Addr ctl = pool_.segment_base() +
                   static_cast<Addr>(pool_.config().pool_pages) *
                       pool_.config().page_size +
                   3072;
  latch_.init(p, ctl);
  staging_ = ctl + 64;
  ready_ = true;
}

std::int64_t Wal::fd_for(sim::Proc& p) {
  if (const auto it = fds_.find(&p); it != fds_.end()) return it->second;
  const auto fd = p.open(path_);
  COMPASS_CHECK_MSG(fd >= 0, "cannot open WAL " << path_);
  fds_.emplace(&p, fd);
  return fd;
}

bool Wal::log_commit(sim::Proc& p, std::span<const std::uint8_t> record) {
  COMPASS_CHECK_MSG(ready_, "Wal::create must run first");
  COMPASS_CHECK(record.size() <= kMaxRecord);
  if (crashed_.load(std::memory_order_relaxed)) return false;
  ULatch::Guard g(latch_, p);
  if (crashed_.load(std::memory_order_relaxed)) return false;
  // Stage the framed record (user stores into the shared log buffer), then
  // append it to the log file.
  WalFrame frame;
  frame.len = static_cast<std::uint32_t>(record.size());
  frame.csum = os::frame_checksum(record);
  p.put_bytes(staging_,
              {reinterpret_cast<const std::uint8_t*>(&frame), sizeof(frame)});
  p.put_bytes(staging_ + sizeof(frame), record);
  const auto fd = fd_for(p);
  if (crash_at_ != 0 &&
      commits_.load(std::memory_order_relaxed) + 1 >= crash_at_) {
    // Crash point: the process dies mid-append — only the frame header and
    // the first half of the record reach the platter (a torn record that
    // recovery must discard).
    p.lseek(fd, static_cast<std::int64_t>(file_offset_), 0);
    const os::KIovec iov[1] = {{staging_, sizeof(frame) + record.size() / 2}};
    (void)p.writev(fd, iov);
    crashed_.store(true, std::memory_order_relaxed);
    if (injector_ != nullptr)
      injector_->count_injected(fault::FaultKind::kWalCrash);
    return false;
  }
  p.lseek(fd, static_cast<std::int64_t>(file_offset_), 0);
  const os::KIovec iov[1] = {{staging_, sizeof(frame) + record.size()}};
  const auto n = p.writev(fd, iov);
  COMPASS_CHECK(n == static_cast<std::int64_t>(sizeof(frame) + record.size()));
  file_offset_ += sizeof(frame) + record.size();
  const auto c = commits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (pool_.config().wal_group_commit > 0 &&
      c % static_cast<std::uint64_t>(pool_.config().wal_group_commit) == 0) {
    p.fsync(fd);
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::uint64_t Wal::recover(sim::Proc& p, const ApplyFn& apply) {
  COMPASS_CHECK_MSG(ready_, "Wal::create must run first");
  ULatch::Guard g(latch_, p);
  const auto fd = fd_for(p);
  const Addr buf = p.alloc(sizeof(WalFrame) + kMaxRecord, 8);
  std::uint64_t off = 0;
  std::uint64_t records = 0;
  for (;;) {
    p.lseek(fd, static_cast<std::int64_t>(off), 0);
    if (p.read_fd(fd, buf, sizeof(WalFrame)) !=
        static_cast<std::int64_t>(sizeof(WalFrame)))
      break;  // end of log (or torn frame header)
    const auto len = p.read<std::uint32_t>(buf);
    const auto csum = p.read<std::uint32_t>(buf + 4);
    if (len == 0 || len > kMaxRecord) break;  // garbage header: crash point
    p.lseek(fd, static_cast<std::int64_t>(off + sizeof(WalFrame)), 0);
    if (p.read_fd(fd, buf, len) != static_cast<std::int64_t>(len))
      break;  // torn payload: crash point
    const auto rec = p.get_bytes(buf, len);
    if (os::frame_checksum(rec) != csum) break;  // corrupt record
    if (apply) apply(rec);
    ++records;
    off += sizeof(WalFrame) + len;
  }
  p.free(buf, sizeof(WalFrame) + kMaxRecord);
  // The valid prefix is the recovered log head; logging can resume there.
  file_offset_ = off;
  if (injector_ != nullptr && crashed_.load(std::memory_order_relaxed))
    injector_->count_recovered(fault::FaultKind::kWalCrash);
  crashed_.store(false, std::memory_order_relaxed);
  return records;
}

}  // namespace compass::workloads::db
