// A B+-tree index over int64 keys and uint64 values, stored in buffer-pool
// pages. Node layout (page_size bytes):
//
//   +0   u32 is_leaf
//   +4   u32 nkeys
//   +8   u64 next_leaf (leaf chain, 0 = none)
//   +16  i64 keys[fanout]
//   +16+fanout*8  u64 vals_or_children[fanout+1]
//
// All node accesses go through Proc typed reads/writes, so index walks
// generate the pointer-chasing reference pattern a real index produces.
// A single tree latch serializes structural operations (coarse but
// correct; concurrent readers of distinct trees proceed in parallel).
#pragma once

#include <functional>
#include <optional>

#include "workloads/db/buffer_pool.h"

namespace compass::workloads::db {

class BTree {
 public:
  /// Page 0 of `file_id` is the tree's meta page:
  ///   +0 u64 root_page  +8 u64 next_free_page  +16 u64 count
  BTree(BufferPool& pool, std::uint32_t file_id);

  /// Coordinator, once: format the meta page and an empty root leaf.
  void create(sim::Proc& p);

  void insert(sim::Proc& p, std::int64_t key, std::uint64_t value);
  std::optional<std::uint64_t> lookup(sim::Proc& p, std::int64_t key);

  /// Visit entries with lo <= key <= hi in key order; returns the count.
  std::uint64_t scan(sim::Proc& p, std::int64_t lo, std::int64_t hi,
                     const std::function<void(std::int64_t, std::uint64_t)>& fn);

  std::uint64_t size(sim::Proc& p);
  std::uint32_t fanout() const { return fanout_; }

 private:
  struct Node {
    Addr base = 0;
    std::uint32_t page = 0;
  };
  struct SplitResult {
    std::int64_t sep_key = 0;
    std::uint32_t right_page = 0;
    bool split = false;
  };

  Addr key_addr(Addr base, std::uint32_t i) const {
    return base + 16 + static_cast<Addr>(i) * 8;
  }
  Addr val_addr(Addr base, std::uint32_t i) const {
    return base + 16 + static_cast<Addr>(fanout_) * 8 + static_cast<Addr>(i) * 8;
  }
  std::uint32_t alloc_page(sim::Proc& p, Addr meta_base);
  SplitResult insert_rec(sim::Proc& p, std::uint32_t page, std::int64_t key,
                         std::uint64_t value, Addr meta_base);
  /// Lower-bound position of `key` among the node's keys.
  std::uint32_t search(sim::Proc& p, Addr base, std::uint32_t nkeys,
                       std::int64_t key);

  BufferPool& pool_;
  std::uint32_t file_;
  std::uint32_t fanout_;
  ULatch tree_latch_;
  bool latch_ready_ = false;
};

}  // namespace compass::workloads::db
