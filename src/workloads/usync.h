// User-level synchronization for process-model workloads.
//
// DB2-era applications synchronize through user-space latches in shared
// memory. ULatch models one: the lock word lives at a simulated address in
// a shared segment; acquisition is an atomic test&set (a sync reference)
// followed by a backend-granted channel wait, which makes contention
// resolution deterministic in simulated-event order. One wakeup permit is
// posted at init() — the unlocked state.
//
// In native (detached) runs the latch degrades to a host mutex.
#pragma once

#include <mutex>

#include "sim/proc.h"

namespace compass::workloads {

class ULatch {
 public:
  ULatch() = default;
  ULatch(const ULatch&) = delete;
  ULatch& operator=(const ULatch&) = delete;

  /// One process initializes the latch word before any contention (posts
  /// the "unlocked" permit). `word` must be a mapped simulated address
  /// (conventionally inside the shared segment the latch protects).
  void init(sim::Proc& p, Addr word) {
    word_ = word;
    if (p.ctx().attached()) {
      p.write<std::uint64_t>(word_, 0);
      p.ctx().wakeup(word_);
    }
  }

  void lock(sim::Proc& p) {
    if (!p.ctx().attached()) {
      native_.lock();
      return;
    }
    p.ctx().sync_ref(word_, 8);   // atomic test&set
    p.ctx().block_on(word_);      // granted in event order
  }

  void unlock(sim::Proc& p) {
    if (!p.ctx().attached()) {
      native_.unlock();
      return;
    }
    p.ctx().sync_ref(word_, 8);
    p.ctx().wakeup(word_);
  }

  Addr word() const { return word_; }

  class Guard {
   public:
    Guard(ULatch& l, sim::Proc& p) : l_(l), p_(p) { l_.lock(p_); }
    ~Guard() { l_.unlock(p_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ULatch& l_;
    sim::Proc& p_;
  };

 private:
  Addr word_ = 0;
  std::mutex native_;
};

/// Centralized sense-reversing barrier over shared counter/generation
/// words. Wakeups for generation g go to an alternating per-generation
/// channel so leftover permits of round g cannot release an early arriver
/// of round g+2 (by then every round-g permit has been consumed).
class UBarrier {
 public:
  /// Initialize for `parties` processes; `count_word` is the base of a
  /// 32-byte shared-segment region this barrier owns.
  void init(sim::Proc& p, int parties, Addr count_word) {
    parties_ = parties;
    count_word_ = count_word;
    gen_word_ = count_word + 8;
    latch_.init(p, count_word + 24);
    p.write<std::uint64_t>(count_word_, 0);
    p.write<std::uint64_t>(gen_word_, 0);
  }

  void arrive(sim::Proc& p) {
    if (!p.ctx().attached()) {
      // Native: classic mutex+condvar barrier.
      std::unique_lock lock(native_mu_);
      if (++native_count_ == static_cast<std::uint64_t>(parties_)) {
        native_count_ = 0;
        ++native_gen_;
        native_cv_.notify_all();
      } else {
        const std::uint64_t gen = native_gen_;
        native_cv_.wait(lock, [&] { return native_gen_ != gen; });
      }
      return;
    }
    latch_.lock(p);
    const auto gen = p.read<std::uint64_t>(gen_word_);
    const auto n = p.read<std::uint64_t>(count_word_) + 1;
    if (n == static_cast<std::uint64_t>(parties_)) {
      p.write<std::uint64_t>(count_word_, 0);
      p.write<std::uint64_t>(gen_word_, gen + 1);
      if (parties_ > 1)
        p.ctx().wakeup(gen_channel(gen), static_cast<std::uint64_t>(parties_ - 1));
      latch_.unlock(p);
    } else {
      p.write<std::uint64_t>(count_word_, n);
      latch_.unlock(p);
      p.ctx().block_on(gen_channel(gen));
    }
  }

 private:
  core::WaitChannel gen_channel(std::uint64_t gen) const {
    return count_word_ + 16 + (gen & 1) * 4;
  }

  int parties_ = 0;
  Addr count_word_ = 0;
  Addr gen_word_ = 0;
  ULatch latch_;
  std::mutex native_mu_;
  std::condition_variable native_cv_;
  std::uint64_t native_count_ = 0;
  std::uint64_t native_gen_ = 0;
};

}  // namespace compass::workloads
