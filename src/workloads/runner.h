// Canned scenario runners shared by the examples and the bench harnesses.
//
// Each runner assembles a Simulation, spawns the coordinator/worker
// processes with their semaphore choreography, runs to completion and
// returns a uniform statistics record. The native variants run the same
// workload code detached (the paper's "raw" runs) and return host seconds.
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "sim/simulation.h"
#include "stats/json.h"
#include "stats/time_breakdown.h"
#include "workloads/db/tpcc.h"
#include "workloads/db/tpcd.h"
#include "workloads/sci/kernels.h"
#include "workloads/web/trace.h"

namespace compass::workloads {

struct ScenarioStats {
  Cycles cycles = 0;               ///< simulated run length
  double simulated_seconds = 0;    ///< cycles at the configured clock
  double host_seconds = 0;         ///< wall-clock of the simulation
  stats::TimeShares shares;        ///< Table-1 user/OS split
  std::uint64_t mem_refs = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t net_frames_in = 0;
  std::uint64_t net_frames_out = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t numa_local = 0;
  std::uint64_t numa_remote = 0;
  std::uint64_t work_units = 0;    ///< txns / requests / checksum marker
  stats::Histogram latency;        ///< web request latency (cycles)
  /// Full end-of-run capture (every counter + per-CPU time breakdown) for
  /// machine-readable dumps and trace golden comparisons.
  stats::StatsSnapshot snapshot;
};

/// Fill the common counters from a finished simulation.
void collect_stats(sim::Simulation& sim, ScenarioStats& out);

// ---- TPCC (OLTP) -----------------------------------------------------------

struct TpccScenario {
  db::TpccConfig tpcc;
  int workers = 2;
};
ScenarioStats run_tpcc(sim::SimulationConfig cfg, const TpccScenario& sc);
double run_tpcc_native_seconds(const TpccScenario& sc);

// ---- TPCD (decision support) ----------------------------------------------

struct TpcdScenario {
  db::TpcdConfig tpcd;
  int workers = 1;
  bool use_mmap = false;  ///< Q1 through mmap instead of the buffer pool
  int repeats = 1;        ///< query executions per worker
};
ScenarioStats run_tpcd(sim::SimulationConfig cfg, const TpcdScenario& sc);
double run_tpcd_native_seconds(const TpcdScenario& sc);

// ---- SPECWeb-like web serving ----------------------------------------------

struct WebScenario {
  web::FilesetConfig fileset;
  std::uint64_t requests = 30;
  int servers = 1;
  int concurrency = 4;
  Cycles mean_gap = 50'000;
  Cycles think = 30'000;
  std::uint64_t seed = 99;
};
ScenarioStats run_web(sim::SimulationConfig cfg, const WebScenario& sc);

// ---- scientific kernel -----------------------------------------------------

struct SciScenario {
  sci::MatmulConfig matmul;
};
ScenarioStats run_sci(sim::SimulationConfig cfg, const SciScenario& sc);

// ---- generic dispatch ------------------------------------------------------

/// A workload selection in portable string form — what checkpoint files and
/// tools pass around. `kv` holds the per-workload knobs under the same names
/// trace_record uses (sci: n, nprocs; web: requests, servers, seed;
/// tpcc/tpcd: workers; tpcc: txns, items, warehouses, pool; tpcd: repeats,
/// use_mmap, lineitems); missing keys take the trace_record defaults.
/// Unknown keys are rejected.
struct ScenarioParams {
  std::string workload;  ///< "sci" | "web" | "tpcc" | "tpcd"
  std::map<std::string, std::string> kv;
};

/// Run the named scenario: the single entry point the checkpoint tools use
/// so that a restore re-executes exactly the workload the original run did.
ScenarioStats run_scenario(sim::SimulationConfig cfg,
                           const ScenarioParams& params);

}  // namespace compass::workloads
