#include "workloads/sci/kernels.h"

namespace compass::workloads::sci {

ParallelMatmul::ParallelMatmul(const MatmulConfig& cfg) : cfg_(cfg) {
  COMPASS_CHECK(cfg_.n > 0 && cfg_.block > 0 && cfg_.nprocs > 0);
}

Addr ParallelMatmul::a_at(int i, int j) const {
  return base_ + 256 +
         static_cast<Addr>(i * cfg_.n + j) * 8;
}
Addr ParallelMatmul::b_at(int i, int j) const {
  return a_at(cfg_.n - 1, cfg_.n - 1) + 8 + static_cast<Addr>(i * cfg_.n + j) * 8;
}
Addr ParallelMatmul::c_at(int i, int j) const {
  return b_at(cfg_.n - 1, cfg_.n - 1) + 8 + static_cast<Addr>(i * cfg_.n + j) * 8;
}

void ParallelMatmul::setup(sim::Proc& p) {
  const std::uint64_t bytes =
      256 + 3ull * static_cast<std::uint64_t>(cfg_.n) * cfg_.n * 8 + 4096;
  const auto segid = p.shmget(cfg_.shm_key, bytes);
  const auto base = p.shmat(segid);
  COMPASS_CHECK(base > 0);
  base_ = static_cast<Addr>(base);
  barrier_.init(p, cfg_.nprocs, base_);

  util::Rng rng(cfg_.seed);
  for (int i = 0; i < cfg_.n; ++i) {
    for (int j = 0; j < cfg_.n; ++j) {
      p.write<std::int64_t>(a_at(i, j), rng.next_in(-9, 9));
      p.write<std::int64_t>(b_at(i, j), rng.next_in(-9, 9));
      p.write<std::int64_t>(c_at(i, j), 0);
    }
  }
}

void ParallelMatmul::worker(sim::Proc& p, int id) {
  // Attach (idempotent address) and wait for setup via the barrier.
  const auto segid = p.shmget(cfg_.shm_key, 1);
  const auto base = p.shmat(segid);
  COMPASS_CHECK(static_cast<Addr>(base) == base_ || base_ == 0);
  barrier_.arrive(p);

  const int rows_per = (cfg_.n + cfg_.nprocs - 1) / cfg_.nprocs;
  const int row_lo = id * rows_per;
  const int row_hi = std::min(cfg_.n, row_lo + rows_per);
  // Blocked i-k-j loop over the partition.
  for (int ii = row_lo; ii < row_hi; ii += cfg_.block) {
    for (int kk = 0; kk < cfg_.n; kk += cfg_.block) {
      for (int jj = 0; jj < cfg_.n; jj += cfg_.block) {
        const int i_max = std::min(ii + cfg_.block, row_hi);
        const int k_max = std::min(kk + cfg_.block, cfg_.n);
        const int j_max = std::min(jj + cfg_.block, cfg_.n);
        for (int i = ii; i < i_max; ++i) {
          for (int k = kk; k < k_max; ++k) {
            const auto a = p.read<std::int64_t>(a_at(i, k));
            for (int j = jj; j < j_max; ++j) {
              const auto b = p.read<std::int64_t>(b_at(k, j));
              const auto c = p.read<std::int64_t>(c_at(i, j));
              p.ctx().compute(2);  // multiply-add
              p.write<std::int64_t>(c_at(i, j), c + a * b);
            }
          }
        }
      }
    }
  }
  barrier_.arrive(p);
}

std::int64_t ParallelMatmul::checksum(sim::Proc& p) {
  std::int64_t sum = 0;
  for (int i = 0; i < cfg_.n; ++i)
    for (int j = 0; j < cfg_.n; ++j)
      sum += p.read<std::int64_t>(c_at(i, j)) * (i + 2 * j + 1);
  return sum;
}

std::int64_t ParallelMatmul::expected_checksum() const {
  // Recompute A, B host-side with the same RNG stream.
  util::Rng rng(cfg_.seed);
  const auto n = static_cast<std::size_t>(cfg_.n);
  std::vector<std::int64_t> a(n * n), b(n * n), c(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] = rng.next_in(-9, 9);
      b[i * n + j] = rng.next_in(-9, 9);
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] += a[i * n + k] * b[k * n + j];
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      sum += c[i * n + j] *
             static_cast<std::int64_t>(i + 2 * j + 1);
  return sum;
}

ParallelReduce::ParallelReduce(const ReduceConfig& cfg) : cfg_(cfg) {
  COMPASS_CHECK(cfg_.nprocs > 0 && cfg_.elements > 0);
}

void ParallelReduce::setup(sim::Proc& p) {
  const std::uint64_t bytes = 4096 + cfg_.elements * 8;
  const auto segid = p.shmget(cfg_.shm_key, bytes);
  const auto base = p.shmat(segid);
  COMPASS_CHECK(base > 0);
  base_ = static_cast<Addr>(base);
  barrier_.init(p, cfg_.nprocs, base_);
  acc_latch_.init(p, base_ + 64);
  p.write<std::int64_t>(base_ + 128, 0);  // accumulator
  util::Rng rng(cfg_.seed);
  expected_ = 0;
  for (std::uint64_t i = 0; i < cfg_.elements; ++i) {
    const auto v = rng.next_in(-1000, 1000);
    p.write<std::int64_t>(base_ + 4096 + i * 8, v);
    expected_ += v;
  }
}

void ParallelReduce::worker(sim::Proc& p, int id) {
  const auto segid = p.shmget(cfg_.shm_key, 1);
  (void)p.shmat(segid);
  barrier_.arrive(p);
  const std::uint64_t per =
      (cfg_.elements + static_cast<std::uint64_t>(cfg_.nprocs) - 1) /
      static_cast<std::uint64_t>(cfg_.nprocs);
  const std::uint64_t lo = static_cast<std::uint64_t>(id) * per;
  const std::uint64_t hi = std::min(cfg_.elements, lo + per);
  std::int64_t partial = 0;
  for (std::uint64_t i = lo; i < hi; ++i) {
    partial += p.read<std::int64_t>(base_ + 4096 + i * 8);
    p.ctx().compute(1);
  }
  acc_latch_.lock(p);
  const auto acc = p.read<std::int64_t>(base_ + 128);
  p.write<std::int64_t>(base_ + 128, acc + partial);
  acc_latch_.unlock(p);
  barrier_.arrive(p);
}

std::int64_t ParallelReduce::result(sim::Proc& p) {
  return p.read<std::int64_t>(base_ + 128);
}

}  // namespace compass::workloads::sci
