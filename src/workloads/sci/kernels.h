// SPLASH-2-style scientific kernels — the OS-light contrast the paper's
// introduction draws ("Scientific applications on shared memory machines
// usually spend very little time in the operating systems").
//
// Blocked matrix multiply over matrices in a shared segment, partitioned
// by row blocks across processes with barrier synchronization; and a
// parallel reduction with an atomic accumulator. Both spend essentially
// all their time in user mode.
#pragma once

#include "sim/proc.h"
#include "util/rng.h"
#include "workloads/usync.h"

namespace compass::workloads::sci {

struct MatmulConfig {
  int n = 48;            ///< square matrix dimension
  int block = 8;         ///< cache block size (elements)
  int nprocs = 2;
  std::uint64_t shm_key = 0x5C1;
  std::uint64_t seed = 31;
};

/// C = A * B over int64 with wraparound arithmetic (deterministic).
class ParallelMatmul {
 public:
  explicit ParallelMatmul(const MatmulConfig& cfg);

  /// Coordinator: attach the segment, fill A and B, init the barrier.
  void setup(sim::Proc& p);

  /// Worker `id` computes its row partition, then barriers.
  void worker(sim::Proc& p, int id);

  /// Checksum of C (after all workers completed).
  std::int64_t checksum(sim::Proc& p);

  /// Reference result computed host-side (for verification).
  std::int64_t expected_checksum() const;

 private:
  Addr a_at(int i, int j) const;
  Addr b_at(int i, int j) const;
  Addr c_at(int i, int j) const;

  MatmulConfig cfg_;
  Addr base_ = 0;
  UBarrier barrier_;
};

/// Parallel sum of a shared array with per-process partial sums combined
/// through an atomic (sync-reference) accumulator.
struct ReduceConfig {
  std::uint64_t elements = 4096;
  int nprocs = 2;
  std::uint64_t shm_key = 0x5C2;
  std::uint64_t seed = 77;
};

class ParallelReduce {
 public:
  explicit ParallelReduce(const ReduceConfig& cfg);
  void setup(sim::Proc& p);
  void worker(sim::Proc& p, int id);
  std::int64_t result(sim::Proc& p);
  std::int64_t expected() const { return expected_; }

 private:
  ReduceConfig cfg_;
  Addr base_ = 0;
  std::int64_t expected_ = 0;
  ULatch acc_latch_;
  UBarrier barrier_;
};

}  // namespace compass::workloads::sci
