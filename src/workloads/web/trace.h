// HTTP request trace files and the trace player (paper §4.2).
//
// "We solve this problem by generating an intermediate HTTP request trace
// file using the Apache web server driven by the SPECWeb96 benchmark. We
// then implement a trace player that reads the trace file and feeds the
// requests to a web server."
//
// Trace: a list of (start cycle, path) entries, generated from the fileset
// with the SPECWeb class mix, serializable to the text trace-file format.
//
// TracePlayer: the modeled client network. It lives on the wire side of
// the ethernet device: requests enter the simulated host as SYN/DATA
// frames, responses leave through Wire::on_tx. A fixed number of client
// slots replays the trace — the player never times out on the slow
// simulated server, which is the whole point of the trace methodology.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "stats/counters.h"
#include "util/rng.h"
#include "workloads/web/fileset.h"

namespace compass::workloads::web {

struct TraceEntry {
  Cycles start = 0;
  std::string path;
};

class Trace {
 public:
  static Trace generate(const Fileset& fileset, std::uint64_t n,
                        Cycles mean_gap, std::uint64_t seed);

  /// Text trace-file format: one "cycle path" line per request.
  std::string serialize() const;
  static Trace parse(std::string_view text);

  std::vector<TraceEntry> entries;
};

struct TracePlayerConfig {
  int concurrency = 4;       ///< simultaneous client connections
  Cycles think = 50'000;     ///< client think time between requests
  int num_servers = 1;       ///< quit requests to send when done
  std::uint16_t port = 80;
};

class TracePlayer : public dev::Wire {
 public:
  TracePlayer(sim::Simulation& sim, Trace trace, TracePlayerConfig cfg);

  /// Attach to the NIC and schedule the first requests. Call before run().
  void install();

  void on_tx(std::vector<std::uint8_t> frame, Cycles done) override;

  std::uint64_t completed() const { return completed_; }
  std::uint64_t response_bytes() const { return bytes_; }
  const stats::Histogram& latency() const { return latency_; }

 private:
  struct Conn {
    std::size_t entry = 0;
    Cycles issued = 0;
    std::uint64_t bytes = 0;
  };

  void issue(std::size_t entry_idx, Cycles when);
  void send_quits(Cycles when);

  sim::Simulation& sim_;
  Trace trace_;
  TracePlayerConfig cfg_;
  std::map<std::uint32_t, Conn> conns_;
  std::size_t next_entry_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t bytes_ = 0;
  stats::Histogram latency_;
  std::uint32_t next_conn_id_ = 0x20000;
  bool quits_sent_ = false;
};

}  // namespace compass::workloads::web
