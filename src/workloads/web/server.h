// The web server workload process (the paper's Apache substitute).
//
// A classic select-driven HTTP/1.0 server: select over the listening and
// connection sockets, naccept, recv the request, statx + open + kreadv the
// file, send the response in chunks, close. Run several instances for a
// prefork-style server — they share the listening port (round-robin SYN
// delivery) the way Apache children share the accept socket.
//
// The server exits when it serves a request for kQuitPath (the trace
// player sends one per server process after the trace drains).
#pragma once

#include <string>

#include "sim/proc.h"

namespace compass::workloads::web {

inline constexpr std::string_view kQuitPath = "/__quit";

struct WebServerConfig {
  std::uint16_t port = 80;
  std::uint32_t io_chunk = 8192;  ///< kreadv/send chunk size
  int max_conns = 16;
};

struct WebServerResult {
  std::uint64_t requests = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t not_found = 0;
  /// Application-level retries after a transient OS-call failure leaked
  /// through the libc restart layer (fault-injection runs only).
  std::uint64_t retries = 0;
};

class WebServer {
 public:
  explicit WebServer(const WebServerConfig& cfg) : cfg_(cfg) {}

  /// Process body; returns after the quit request.
  WebServerResult run(sim::Proc& p);

 private:
  /// Serve one request on `conn`; returns false when the connection closed
  /// or a quit was requested (sets *quit).
  bool serve(sim::Proc& p, std::int64_t conn, Addr buf, WebServerResult& r,
             bool* quit);

  WebServerConfig cfg_;
};

}  // namespace compass::workloads::web
