// Minimal HTTP/1.0 request/response codec for the web workload.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace compass::workloads::web {

inline std::string make_request(std::string_view path) {
  return "GET " + std::string(path) + " HTTP/1.0\r\n\r\n";
}

/// Extract the path from "GET <path> HTTP/1.0...". Nullopt on garbage.
inline std::optional<std::string> parse_request_path(std::string_view req) {
  if (req.rfind("GET ", 0) != 0) return std::nullopt;
  const auto sp = req.find(' ', 4);
  if (sp == std::string_view::npos) return std::nullopt;
  return std::string(req.substr(4, sp - 4));
}

inline std::string make_response_header(std::uint64_t content_length,
                                        int status = 200) {
  return "HTTP/1.0 " + std::to_string(status) +
         (status == 200 ? " OK" : " Not Found") +
         "\r\nContent-Length: " + std::to_string(content_length) + "\r\n\r\n";
}

}  // namespace compass::workloads::web
