#include "workloads/web/trace.h"

#include <sstream>

#include "workloads/web/http.h"
#include "workloads/web/server.h"

namespace compass::workloads::web {

Trace Trace::generate(const Fileset& fileset, std::uint64_t n, Cycles mean_gap,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  Trace t;
  Cycles at = 10'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    t.entries.push_back(TraceEntry{at, fileset.pick(rng)});
    // Exponential-ish inter-arrival via a geometric draw.
    at += mean_gap / 2 + rng.next_below(mean_gap);
  }
  return t;
}

std::string Trace::serialize() const {
  std::ostringstream os;
  for (const auto& e : entries) os << e.start << ' ' << e.path << '\n';
  return os.str();
}

Trace Trace::parse(std::string_view text) {
  Trace t;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceEntry e;
    ls >> e.start >> e.path;
    COMPASS_CHECK_MSG(!ls.fail() && !e.path.empty(),
                      "bad trace line: " << line);
    t.entries.push_back(std::move(e));
  }
  return t;
}

TracePlayer::TracePlayer(sim::Simulation& sim, Trace trace,
                         TracePlayerConfig cfg)
    : sim_(sim), trace_(std::move(trace)), cfg_(cfg) {
  COMPASS_CHECK(cfg_.concurrency >= 1);
}

void TracePlayer::install() {
  sim_.devices().ethernet().set_wire(this);
  const std::size_t initial =
      std::min<std::size_t>(static_cast<std::size_t>(cfg_.concurrency),
                            trace_.entries.size());
  if (initial == 0) {
    // Empty trace: quit immediately so servers exit.
    send_quits(1'000);
    return;
  }
  for (std::size_t i = 0; i < initial; ++i)
    issue(i, trace_.entries[i].start);
  next_entry_ = initial;
}

void TracePlayer::issue(std::size_t entry_idx, Cycles when) {
  const std::uint32_t conn = next_conn_id_++;
  sim_.backend().scheduler().schedule_at(when, [this, entry_idx, conn] {
    const Cycles now = sim_.backend().now();
    conns_[conn] = Conn{entry_idx, now, 0};
    os::FrameHeader syn;
    syn.conn = conn;
    syn.port = cfg_.port;
    syn.flags = os::kFrameSyn;
    syn.seq = 0;
    sim_.devices().deliver_rx_frame(os::make_frame(syn, {}));
    const std::string req = make_request(trace_.entries[entry_idx].path);
    os::FrameHeader data;
    data.conn = conn;
    data.flags = os::kFrameData;
    data.seq = 1;  // after the SYN; the stack dedups on stale sequences
    sim_.devices().deliver_rx_frame(os::make_frame(
        data, {reinterpret_cast<const std::uint8_t*>(req.data()), req.size()}));
  });
}

void TracePlayer::send_quits(Cycles when) {
  if (quits_sent_) return;
  quits_sent_ = true;
  // One quit connection per server process; consecutive SYNs round-robin
  // across the prefork listeners, reaching each one exactly once.
  for (int s = 0; s < cfg_.num_servers; ++s) {
    const std::uint32_t conn = next_conn_id_++;
    sim_.backend().scheduler().schedule_at(
        when + static_cast<Cycles>(s) * 2'000, [this, conn] {
          os::FrameHeader syn;
          syn.conn = conn;
          syn.port = cfg_.port;
          syn.flags = os::kFrameSyn;
          syn.seq = 0;
          sim_.devices().deliver_rx_frame(os::make_frame(syn, {}));
          const std::string req = make_request(kQuitPath);
          os::FrameHeader data;
          data.conn = conn;
          data.flags = os::kFrameData;
          data.seq = 1;
          sim_.devices().deliver_rx_frame(os::make_frame(
              data, {reinterpret_cast<const std::uint8_t*>(req.data()),
                     req.size()}));
        });
  }
}

void TracePlayer::on_tx(std::vector<std::uint8_t> frame, Cycles done) {
  const os::FrameHeader h = os::parse_frame(frame);
  const auto it = conns_.find(h.conn);
  if (it == conns_.end()) return;  // quit-connection responses etc.
  Conn& c = it->second;
  if (h.flags & os::kFrameData) {
    c.bytes += h.len;
    bytes_ += h.len;
  }
  if (h.flags & os::kFrameFin) {
    ++completed_;
    latency_.record(done - c.issued);
    conns_.erase(it);
    if (next_entry_ < trace_.entries.size()) {
      const std::size_t idx = next_entry_++;
      issue(idx, std::max(trace_.entries[idx].start, done + cfg_.think));
    } else if (completed_ == trace_.entries.size()) {
      send_quits(done + cfg_.think);
    }
  }
}

}  // namespace compass::workloads::web
