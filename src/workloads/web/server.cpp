#include "workloads/web/server.h"

#include <algorithm>
#include <vector>

#include "workloads/web/http.h"

namespace compass::workloads::web {

bool WebServer::serve(sim::Proc& p, std::int64_t conn, Addr buf,
                      WebServerResult& r, bool* quit) {
  const auto n = p.recv(conn, buf, 2048);
  if (n <= 0) return false;  // peer closed (FIN) or error
  const auto req_bytes = p.get_bytes(buf, static_cast<std::size_t>(n));
  const std::string req(req_bytes.begin(), req_bytes.end());
  const auto path = parse_request_path(req);
  // Request parsing, URI mapping, access-log formatting (user mode).
  p.ctx().compute(4'000);
  ++r.requests;
  if (!path.has_value()) {
    ++r.not_found;
    return false;
  }
  if (*path == kQuitPath) {
    *quit = true;
    const std::string resp = make_response_header(0);
    p.put_bytes(buf, {reinterpret_cast<const std::uint8_t*>(resp.data()),
                      resp.size()});
    p.send(conn, buf, resp.size());
    return false;
  }
  // statx for the length, then open + kreadv + send in chunks. A long
  // fault burst can leak a transient error through the libc restart layer;
  // retry with backoff (Apache keeps serving through EINTR storms) before
  // treating the file as missing.
  std::int64_t size = -1;
  for (int attempt = 0;; ++attempt) {
    size = p.statx(*path);
    if (!os::is_transient_err(size) || attempt >= 3) break;
    ++r.retries;
    p.usleep(Cycles{5'000} << attempt);
  }
  if (size < 0) {
    ++r.not_found;
    const std::string resp = make_response_header(0, 404);
    p.put_bytes(buf, {reinterpret_cast<const std::uint8_t*>(resp.data()),
                      resp.size()});
    p.send(conn, buf, resp.size());
    return false;
  }
  const std::string header = make_response_header(static_cast<std::uint64_t>(size));
  p.put_bytes(buf, {reinterpret_cast<const std::uint8_t*>(header.data()),
                    header.size()});
  p.send(conn, buf, header.size());
  r.bytes_sent += header.size();

  std::int64_t fd = -1;
  for (int attempt = 0;; ++attempt) {
    fd = p.open(*path);
    if (!os::is_transient_err(fd) || attempt >= 3) break;
    ++r.retries;
    p.usleep(Cycles{5'000} << attempt);
  }
  if (fd < 0) {
    ++r.not_found;
    return false;
  }
  std::uint64_t remaining = static_cast<std::uint64_t>(size);
  while (remaining > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(cfg_.io_chunk, remaining);
    const os::KIovec iov[1] = {{buf, chunk}};
    const auto got = p.readv(fd, iov);
    if (got <= 0) break;
    p.ctx().compute(600);  // user-mode chunk bookkeeping
    const auto sent = p.send(conn, buf, static_cast<std::uint64_t>(got));
    if (sent <= 0) break;
    r.bytes_sent += static_cast<std::uint64_t>(sent);
    remaining -= static_cast<std::uint64_t>(got);
  }
  p.close(fd);
  return false;  // HTTP/1.0: one request per connection
}

WebServerResult WebServer::run(sim::Proc& p) {
  WebServerResult r;
  const Addr buf = p.alloc(std::max<std::uint32_t>(cfg_.io_chunk, 4096), 64);
  const auto lsock = p.socket();
  COMPASS_CHECK_MSG(lsock >= 0, "web server: socket failed");
  COMPASS_CHECK_MSG(p.bind(lsock, cfg_.port) == 0, "web server: bind failed");
  COMPASS_CHECK_MSG(p.listen(lsock, cfg_.max_conns) == 0,
                    "web server: listen failed");

  std::vector<std::int32_t> watch{static_cast<std::int32_t>(lsock)};
  bool quit = false;
  while (!quit) {
    const auto ready = p.select(watch);
    if (ready < 0) break;  // shutdown
    if (ready == lsock) {
      const auto conn = p.naccept(lsock);
      if (conn >= 0) watch.push_back(static_cast<std::int32_t>(conn));
      continue;
    }
    // A connection is readable: serve it, then close (HTTP/1.0).
    const bool keep = serve(p, ready, buf, r, &quit);
    if (!keep) {
      p.close(ready);
      watch.erase(std::find(watch.begin(), watch.end(),
                            static_cast<std::int32_t>(ready)));
    }
  }
  p.close(lsock);
  return r;
}

}  // namespace compass::workloads::web
