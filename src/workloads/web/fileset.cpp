#include "workloads/web/fileset.h"

namespace compass::workloads::web {

namespace {
/// SPECWeb96 class access mix.
constexpr double kClassWeights[4] = {0.35, 0.50, 0.14, 0.01};
/// Base sizes per class (bytes) before per-file variation and scaling.
constexpr std::uint64_t kClassBase[4] = {102, 1024, 10240, 102400};
}  // namespace

Fileset::Fileset(const FilesetConfig& cfg) : cfg_(cfg) {
  COMPASS_CHECK(cfg_.dirs >= 1 && cfg_.files_per_class >= 1);
  COMPASS_CHECK(cfg_.size_scale > 0);
  for (int d = 0; d < cfg_.dirs; ++d) {
    for (int c = 0; c < 4; ++c) {
      for (int f = 0; f < cfg_.files_per_class; ++f) {
        all_paths_.push_back(path(d, c, f));
        const auto size = size_of(c, f);
        sizes_.push_back(size);
        total_bytes_ += size;
      }
    }
  }
}

std::string Fileset::path(int dir, int cls, int idx) const {
  return "/www/dir" + std::to_string(dir) + "/class" + std::to_string(cls) +
         "_" + std::to_string(idx);
}

std::uint64_t Fileset::size_of(int cls, int idx) const {
  // Files within a class step through 1x..9x of the class base, SPECWeb
  // style.
  const std::uint64_t mult = 1 + static_cast<std::uint64_t>(idx) % 9;
  const auto raw = static_cast<double>(kClassBase[cls] * mult) * cfg_.size_scale;
  return std::max<std::uint64_t>(64, static_cast<std::uint64_t>(raw));
}

void Fileset::populate(os::FileSystem& fs) const {
  util::Rng rng(cfg_.seed);
  for (std::size_t i = 0; i < all_paths_.size(); ++i) {
    std::vector<std::uint8_t> content(sizes_[i]);
    for (auto& b : content) b = static_cast<std::uint8_t>(rng.next_u64());
    fs.populate(all_paths_[i], content);
  }
}

const std::string& Fileset::pick(util::Rng& rng) const {
  const double u = rng.next_double();
  int cls = 3;
  double acc = 0;
  for (int c = 0; c < 4; ++c) {
    acc += kClassWeights[c];
    if (u < acc) {
      cls = c;
      break;
    }
  }
  const auto dir = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(cfg_.dirs)));
  const auto idx = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(cfg_.files_per_class)));
  const std::size_t flat =
      static_cast<std::size_t>(dir) * 4 * static_cast<std::size_t>(cfg_.files_per_class) +
      static_cast<std::size_t>(cls) * static_cast<std::size_t>(cfg_.files_per_class) +
      static_cast<std::size_t>(idx);
  return all_paths_[flat];
}

}  // namespace compass::workloads::web
