// SPECWeb96-like fileset generator.
//
// "Before testing a web server, the file set generator must be run in the
// server machine to populate a test file set consisting of many files of
// different sizes" (paper §4.2). SPECWeb96 organizes files into four size
// classes accessed with fixed probabilities (35% / 50% / 14% / 1%); within
// a class, files and directories are picked with a mild Zipf skew.
#pragma once

#include <string>
#include <vector>

#include "os/fs.h"
#include "util/rng.h"

namespace compass::workloads::web {

struct FilesetConfig {
  int dirs = 4;
  int files_per_class = 3;
  std::uint64_t seed = 4242;
  /// Scale factor on the SPECWeb96 file sizes (1.0 = classes of ~0.1-0.9KB,
  /// 1-9KB, 10-90KB, 100-900KB; benches scale down to fit simulated time).
  double size_scale = 0.1;
};

class Fileset {
 public:
  explicit Fileset(const FilesetConfig& cfg);

  /// Create every file in the simulated file system with deterministic
  /// content (host-side setup, as the paper's generator runs before the
  /// measurement).
  void populate(os::FileSystem& fs) const;

  std::string path(int dir, int cls, int idx) const;
  std::uint64_t size_of(int cls, int idx) const;

  /// Draw a path according to the SPECWeb class mix.
  const std::string& pick(util::Rng& rng) const;

  int num_files() const { return static_cast<int>(all_paths_.size()); }
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  FilesetConfig cfg_;
  std::vector<std::string> all_paths_;          // indexed dir*(4*fpc)+cls*fpc+idx
  std::vector<std::uint64_t> sizes_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace compass::workloads::web
