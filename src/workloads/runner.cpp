#include "workloads/runner.h"

#include <thread>

#include "os/backend_os.h"
#include "sim/native_env.h"
#include "workloads/web/server.h"

namespace compass::workloads {

namespace {

// Semaphore ids used by the runner choreography.
constexpr std::int64_t kStartSem = 9001;
constexpr std::int64_t kDoneSem = 9002;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void collect_stats(sim::Simulation& sim, ScenarioStats& out) {
  out.cycles = sim.now();
  out.simulated_seconds = sim.config().core.cycles_to_seconds(sim.now());
  out.shares = sim.breakdown().shares();
  auto& reg = sim.stats();
  out.mem_refs = reg.counter_value("backend.mem_refs");
  out.syscalls = reg.counter_value("os.syscalls");
  out.interrupts = reg.counter_value("os.interrupts");
  out.context_switches = reg.counter_value("backend.context_switches");
  out.preemptions = reg.counter_value("backend.preemptions");
  out.disk_reads = 0;
  out.disk_writes = 0;
  for (int d = 0; d < sim.devices().num_disks(); ++d) {
    out.disk_reads += reg.counter_value("disk" + std::to_string(d) + ".reads");
    out.disk_writes += reg.counter_value("disk" + std::to_string(d) + ".writes");
  }
  out.net_frames_in = reg.counter_value("net.frames_in");
  out.net_frames_out = reg.counter_value("net.frames_out");
  for (int c = 0; c < sim.config().core.num_cpus; ++c) {
    out.l1_hits += reg.counter_value("l1.cpu" + std::to_string(c) + ".hits");
    out.l1_misses += reg.counter_value("l1.cpu" + std::to_string(c) + ".misses");
  }
  out.numa_local = reg.counter_value("numa.local_accesses");
  out.numa_remote = reg.counter_value("numa.remote_accesses");
  out.snapshot = stats::make_snapshot(sim.now(), reg, sim.breakdown());
}

// ------------------------------------------------------------------- TPCC

ScenarioStats run_tpcc(sim::SimulationConfig cfg, const TpccScenario& sc) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::Simulation sim(cfg);
  auto tpcc = std::make_shared<db::Tpcc>(sc.tpcc);
  // Fault plane: arm the WAL crash point and the kWalCrash accounting.
  tpcc->wal().set_crash_at(cfg.fault.wal_crash_at);
  tpcc->wal().set_fault_injector(sim.fault_injector());
  std::vector<db::Tpcc::WorkerResult> results(
      static_cast<std::size_t>(sc.workers));
  sim.spawn("db2.coord", [&, workers = sc.workers](sim::Proc& p) {
    tpcc->setup(p);
    // Shares measure steady state, not the bulk load (paper methodology).
    p.ctx().backend_call(
        static_cast<std::uint64_t>(os::BackendCall::kResetBreakdown));
    p.sem_init(kStartSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_v(kStartSem);
    p.sem_init(kDoneSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_p(kDoneSem);
    // If the database crashed mid-run, restart it: replay the WAL's valid
    // prefix back to the committed state before the simulation ends.
    if (tpcc->wal().crashed()) (void)tpcc->wal().recover(p);
  });
  for (int w = 0; w < sc.workers; ++w) {
    sim.spawn("db2.agent" + std::to_string(w), [&, w](sim::Proc& p) {
      p.sem_init(kStartSem, 0);
      p.sem_p(kStartSem);
      results[static_cast<std::size_t>(w)] = tpcc->worker(p, w);
      p.sem_init(kDoneSem, 0);
      p.sem_v(kDoneSem);
    });
  }
  sim.run();
  ScenarioStats out;
  collect_stats(sim, out);
  for (const auto& r : results) out.work_units += r.new_orders + r.payments;
  out.host_seconds = wall_seconds(t0);
  return out;
}

double run_tpcc_native_seconds(const TpccScenario& sc) {
  // Time setup + transactions, matching what the simulated run measures.
  sim::NativeEnv env;
  db::Tpcc tpcc(sc.tpcc);
  sim::Proc& coord = env.add_process("coord");
  std::vector<sim::Proc*> procs;
  for (int w = 0; w < sc.workers; ++w)
    procs.push_back(&env.add_process("agent" + std::to_string(w)));
  const auto t0 = std::chrono::steady_clock::now();
  tpcc.setup(coord);
  std::vector<std::thread> threads;
  for (int w = 0; w < sc.workers; ++w)
    threads.emplace_back(
        [&tpcc, &procs, w] { tpcc.worker(*procs[static_cast<std::size_t>(w)], w); });
  for (auto& t : threads) t.join();
  return wall_seconds(t0);
}

// ------------------------------------------------------------------- TPCD

ScenarioStats run_tpcd(sim::SimulationConfig cfg, const TpcdScenario& sc) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::Simulation sim(cfg);
  auto tpcd = std::make_shared<db::Tpcd>(sc.tpcd);
  sim.spawn("db2.coord", [&, workers = sc.workers](sim::Proc& p) {
    tpcd->setup(p);
    p.ctx().backend_call(
        static_cast<std::uint64_t>(os::BackendCall::kResetBreakdown));
    p.sem_init(kStartSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_v(kStartSem);
  });
  for (int w = 0; w < sc.workers; ++w) {
    sim.spawn("db2.query" + std::to_string(w), [&, w](sim::Proc& p) {
      p.sem_init(kStartSem, 0);
      p.sem_p(kStartSem);
      for (int r = 0; r < sc.repeats; ++r) {
        if (sc.use_mmap && sc.workers == 1) {
          (void)tpcd->q1_mmap(p);
        } else {
          (void)tpcd->q1(p, w, sc.workers);
          (void)tpcd->q6(p, w, sc.workers);
        }
      }
    });
  }
  sim.run();
  ScenarioStats out;
  collect_stats(sim, out);
  out.work_units = static_cast<std::uint64_t>(sc.workers * sc.repeats);
  out.host_seconds = wall_seconds(t0);
  return out;
}

double run_tpcd_native_seconds(const TpcdScenario& sc) {
  // Time setup + queries, matching what the simulated run measures.
  sim::NativeEnv env;
  db::Tpcd tpcd(sc.tpcd);
  sim::Proc& coord = env.add_process("coord");
  std::vector<sim::Proc*> procs;
  for (int w = 0; w < sc.workers; ++w)
    procs.push_back(&env.add_process("query" + std::to_string(w)));
  const auto t0 = std::chrono::steady_clock::now();
  tpcd.setup(coord);
  std::vector<std::thread> threads;
  for (int w = 0; w < sc.workers; ++w) {
    threads.emplace_back([&tpcd, &procs, &sc, w] {
      sim::Proc& p = *procs[static_cast<std::size_t>(w)];
      for (int r = 0; r < sc.repeats; ++r) {
        if (sc.use_mmap && sc.workers == 1) {
          (void)tpcd.q1_mmap(p);
        } else {
          (void)tpcd.q1(p, w, sc.workers);
          (void)tpcd.q6(p, w, sc.workers);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return wall_seconds(t0);
}

// -------------------------------------------------------------------- web

ScenarioStats run_web(sim::SimulationConfig cfg, const WebScenario& sc) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::Simulation sim(cfg);
  web::Fileset fileset(sc.fileset);
  fileset.populate(sim.kernel().fs());
  const web::Trace trace =
      web::Trace::generate(fileset, sc.requests, sc.mean_gap, sc.seed);
  web::TracePlayerConfig pc;
  pc.concurrency = sc.concurrency;
  pc.num_servers = sc.servers;
  pc.think = sc.think;
  web::TracePlayer player(sim, trace, pc);
  player.install();
  for (int s = 0; s < sc.servers; ++s) {
    sim.spawn("httpd" + std::to_string(s), [](sim::Proc& p) {
      web::WebServer server(web::WebServerConfig{});
      server.run(p);
    });
  }
  sim.run();
  ScenarioStats out;
  collect_stats(sim, out);
  out.work_units = player.completed();
  out.latency = player.latency();
  out.host_seconds = wall_seconds(t0);
  return out;
}

// --------------------------------------------------------- generic dispatch

namespace {

/// Pull an integer knob from `kv`, consuming it (so leftovers are errors).
std::int64_t take_int(std::map<std::string, std::string>& kv,
                      const std::string& key, std::int64_t def) {
  const auto it = kv.find(key);
  if (it == kv.end()) return def;
  const std::int64_t v = std::stoll(it->second);
  kv.erase(it);
  return v;
}

}  // namespace

ScenarioStats run_scenario(sim::SimulationConfig cfg,
                           const ScenarioParams& params) {
  std::map<std::string, std::string> kv = params.kv;
  ScenarioStats st;
  if (params.workload == "sci") {
    SciScenario sc;
    sc.matmul.n = static_cast<int>(take_int(kv, "n", 32));
    sc.matmul.nprocs = static_cast<int>(take_int(kv, "nprocs", 2));
    st = run_sci(cfg, sc);
  } else if (params.workload == "web") {
    WebScenario sc;
    sc.requests = static_cast<std::uint64_t>(take_int(kv, "requests", 20));
    sc.servers = static_cast<int>(take_int(kv, "servers", 1));
    sc.seed = static_cast<std::uint64_t>(take_int(kv, "seed", 99));
    st = run_web(cfg, sc);
  } else if (params.workload == "tpcc") {
    TpccScenario sc;
    sc.workers = static_cast<int>(take_int(kv, "workers", 2));
    sc.tpcc.txns_per_worker = static_cast<int>(
        take_int(kv, "txns", sc.tpcc.txns_per_worker));
    sc.tpcc.items = static_cast<int>(take_int(kv, "items", sc.tpcc.items));
    sc.tpcc.warehouses =
        static_cast<int>(take_int(kv, "warehouses", sc.tpcc.warehouses));
    sc.tpcc.db.pool_pages = static_cast<std::uint32_t>(
        take_int(kv, "pool", sc.tpcc.db.pool_pages));
    st = run_tpcc(cfg, sc);
  } else if (params.workload == "tpcd") {
    TpcdScenario sc;
    sc.workers = static_cast<int>(take_int(kv, "workers", 2));
    sc.repeats = static_cast<int>(take_int(kv, "repeats", 1));
    sc.use_mmap = take_int(kv, "use_mmap", 0) != 0;
    sc.tpcd.lineitems =
        static_cast<int>(take_int(kv, "lineitems", sc.tpcd.lineitems));
    st = run_tpcd(cfg, sc);
  } else {
    throw util::ConfigError("unknown workload '" + params.workload +
                            "' (expected sci|web|tpcc|tpcd)");
  }
  COMPASS_CHECK_MSG(kv.empty(), "unknown workload parameter '"
                                    << kv.begin()->first << "' for "
                                    << params.workload);
  return st;
}

// -------------------------------------------------------------------- sci

ScenarioStats run_sci(sim::SimulationConfig cfg, const SciScenario& sc) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::Simulation sim(cfg);
  auto mm = std::make_shared<sci::ParallelMatmul>(sc.matmul);
  const int workers = sc.matmul.nprocs;
  sim.spawn("coord", [&, workers](sim::Proc& p) {
    mm->setup(p);
    p.sem_init(kStartSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_v(kStartSem);
  });
  for (int w = 0; w < workers; ++w) {
    sim.spawn("sci" + std::to_string(w), [&, w](sim::Proc& p) {
      p.sem_init(kStartSem, 0);
      p.sem_p(kStartSem);
      mm->worker(p, w);
    });
  }
  sim.run();
  ScenarioStats out;
  collect_stats(sim, out);
  out.work_units = 1;
  out.host_seconds = wall_seconds(t0);
  return out;
}

}  // namespace compass::workloads
