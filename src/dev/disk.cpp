#include "dev/disk.h"

#include <algorithm>
#include <cmath>

namespace compass::dev {

Disk::Disk(int id, const DiskConfig& cfg, stats::StatsRegistry* stats)
    : id_(id), cfg_(cfg) {
  if (stats != nullptr) {
    const std::string prefix = "disk" + std::to_string(id) + ".";
    reads_ = &stats->counter(prefix + "reads");
    writes_ = &stats->counter(prefix + "writes");
    blocks_ = &stats->counter(prefix + "blocks");
    errors_ = &stats->counter(prefix + "errors");
    timeouts_ = &stats->counter(prefix + "timeouts");
    latency_ = &stats->histogram(prefix + "latency");
  }
}

Cycles Disk::service_time(std::uint64_t block, std::uint32_t nblocks) const {
  const std::uint64_t distance =
      block > last_block_ ? block - last_block_ : last_block_ - block;
  const auto seek = std::min(
      cfg_.seek_max,
      static_cast<Cycles>(cfg_.seek_per_block * static_cast<double>(distance)));
  return cfg_.fixed_overhead + seek + cfg_.rotational_avg +
         static_cast<Cycles>(nblocks) * cfg_.per_block_transfer;
}

Cycles Disk::submit(std::uint64_t block, std::uint32_t nblocks, bool write,
                    Cycles now, fault::DiskFault f, Cycles timeout_extra) {
  COMPASS_CHECK_MSG(nblocks > 0, "disk request with zero blocks");
  const Cycles start = std::max(now, busy_until_);
  if (f == fault::DiskFault::kError) {
    // Command rejected after the controller overhead: the head never moves
    // and no block transfers, so the transfer counters must not tick (a
    // request that fails is not a read/write that happened).
    const Cycles done = start + cfg_.fixed_overhead;
    busy_until_ = done;
    if (errors_ != nullptr) errors_->inc();
    return done;
  }
  Cycles done = start + service_time(block, nblocks);
  if (f == fault::DiskFault::kTimeout) {
    done += timeout_extra;
    busy_until_ = done;
    last_block_ = block + nblocks;
    if (timeouts_ != nullptr) timeouts_->inc();
    return done;
  }
  busy_until_ = done;
  last_block_ = block + nblocks;
  if (reads_ != nullptr) {
    (write ? *writes_ : *reads_).inc();
    blocks_->inc(nblocks);
    latency_->record(done - now);
  }
  return done;
}

}  // namespace compass::dev
