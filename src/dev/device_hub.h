// DeviceHub: the backend's physical-device complex — disks, the Ethernet
// NIC and the real-time clock — implementing core::DeviceManager.
//
// Kernel code requests asynchronous operations with kDevRequest events; the
// hub models their timing and delivers completions as interrupts whose
// descriptor payload carries the requester-chosen tag (conventionally the
// wait channel of the sleeping process or the staged-frame id).
#pragma once

#include <memory>
#include <vector>

#include "core/backend.h"
#include "core/memory_system.h"
#include "dev/disk.h"
#include "dev/ethernet.h"
#include "dev/rtclock.h"

namespace compass::dev {

/// Operation selector in the low byte of kDevRequest arg[0]. For disk ops,
/// bits 8..15 may carry a pre-drawn fault::DiskFault decision (drawn by the
/// requesting process, so it rides inside the recorded event and replays
/// for free). kEthTx never carries fault bits.
enum class DevOp : std::uint64_t {
  /// arg[1]=block, arg[2]=(disk_id<<32)|nblocks, arg[3]=completion tag.
  kDiskRead = 1,
  kDiskWrite = 2,
  /// arg[1]=staged tx frame id, arg[3]=optional tx-complete tag (0 = none).
  kEthTx = 3,
};

/// Encode/decode the fault decision piggybacked on a disk DevOp word.
inline std::uint64_t dev_op_with_fault(DevOp op, fault::DiskFault f) {
  return static_cast<std::uint64_t>(op) |
         (static_cast<std::uint64_t>(f) << 8);
}
inline DevOp dev_op_of(std::uint64_t arg0) {
  return static_cast<DevOp>(arg0 & 0xffu);
}
inline fault::DiskFault dev_fault_of(std::uint64_t arg0) {
  return static_cast<fault::DiskFault>((arg0 >> 8) & 0xffu);
}

struct DeviceHubConfig {
  int num_disks = 1;
  DiskConfig disk;
  EthernetConfig eth;
  /// Interval-timer period in cycles (0 = off).
  Cycles timer_interval = 0;
  bool timer_per_cpu = false;
  /// Wire propagation delay for injected rx frames.
  Cycles rx_wire_delay = 1'000;
};

class DeviceHub : public core::DeviceManager {
 public:
  DeviceHub(const DeviceHubConfig& cfg, stats::StatsRegistry* stats = nullptr);

  /// Attach to the backend and start the clock. Call before Backend::run().
  void bind(core::Backend& backend);

  Disk& disk(int id);
  Ethernet& ethernet() { return eth_; }
  int num_disks() const { return static_cast<int>(disks_.size()); }

  /// Deliver a frame from the wire to the host NIC after the configured
  /// wire delay: stages it and raises kEthernetRx with the rx id as
  /// payload. Backend-thread only (call from scheduler tasks / on_tx).
  void deliver_rx_frame(std::vector<std::uint8_t> frame);

  std::int64_t device_request(ProcId proc, CpuId cpu, Cycles now,
                              std::span<const std::uint64_t, 4> args) override;

  /// Optional event-trace tap: records tx frame sizes and rx stimuli so
  /// replay can restage equivalent frames without the live wire model.
  void set_trace_sink(core::TraceSink* sink) { trace_ = sink; }

  /// Serialize every device's state (the clock's pending ticks live in the
  /// backend scheduler, which the restore warp rebuilds).
  void ckpt_dump(util::StateSink& sink) const {
    sink.varint(disks_.size());
    for (const auto& d : disks_) d->ckpt_dump(sink);
    eth_.ckpt_dump(sink);
  }

  /// Attach the fault plane. `plan` supplies fault timing (disk timeout
  /// cost) and must outlive the hub; `injector` (may be null) enables live
  /// inbound dup/corrupt draws — a trace replayer passes null because every
  /// delivered copy was recorded as its own rx stimulus.
  void set_fault(const fault::FaultPlan* plan,
                 fault::FaultInjector* injector) {
    fault_plan_ = plan;
    injector_ = injector;
  }

 private:
  /// Schedule one frame delivery (wire delay + rx inject + interrupt).
  void deliver_one(std::vector<std::uint8_t> frame);

  DeviceHubConfig cfg_;
  core::Backend* backend_ = nullptr;
  core::TraceSink* trace_ = nullptr;
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  std::vector<std::unique_ptr<Disk>> disks_;
  Ethernet eth_;
  RtClock clock_;
};

}  // namespace compass::dev
