// Ethernet NIC model (paper §3.4).
//
// TX: kernel code builds a frame (from mbufs), stages its bytes with the
// NIC, then posts a kDevRequest; the backend models wire time and hands the
// frame to the attached Wire (the modeled client network / trace player).
// RX: the Wire injects frames; each arrival raises an kEthernetRx interrupt
// whose payload identifies the staged frame, which the kernel's interrupt
// handler collects into mbufs.
//
// Staged payloads are keyed by id so that event-order (deterministic)
// drives processing, independent of host-thread interleaving.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "core/types.h"
#include "stats/counters.h"
#include "util/check.h"
#include "util/state_io.h"

namespace compass::dev {

struct EthernetConfig {
  double bytes_per_cycle = 0.1;   ///< ~10 Mbit/s at 100 MHz ≈ 0.0125; default faster
  Cycles tx_overhead = 4'000;     ///< driver + DMA setup per frame
  std::uint32_t mtu = 1500;
};

/// Consumer of transmitted frames (client model / trace player / loopback).
class Wire {
 public:
  virtual ~Wire() = default;
  /// A frame finished transmitting at simulated cycle `done`.
  virtual void on_tx(std::vector<std::uint8_t> frame, Cycles done) = 0;
};

class Ethernet {
 public:
  Ethernet(const EthernetConfig& cfg, stats::StatsRegistry* stats = nullptr);

  void set_wire(Wire* wire) { wire_ = wire; }
  const EthernetConfig& config() const { return cfg_; }

  // ---- kernel side (any thread) -----------------------------------------

  /// Stage an outgoing frame; returns the id to pass in the kDevRequest.
  std::uint64_t stage_tx(std::vector<std::uint8_t> frame);
  /// Byte size of a staged (not yet transmitted) tx frame.
  std::size_t staged_size(std::uint64_t id) const;
  /// Dequeue the oldest received frame (the rx ring is FIFO in injection
  /// order, which the backend fills deterministically; the network-input
  /// daemon consumes one frame per rx-interrupt wakeup).
  std::vector<std::uint8_t> take_next_rx();

  // ---- backend side -------------------------------------------------------

  /// Model the transmission of staged frame `id` starting at `now`; calls
  /// the wire at completion and returns the completion cycle.
  Cycles transmit(std::uint64_t id, Cycles now);

  /// Inject a frame from the wire into the rx ring; returns the rx
  /// sequence number carried in the interrupt payload (ring bookkeeping).
  std::uint64_t inject_rx(std::vector<std::uint8_t> frame);

  std::size_t pending_tx() const;
  std::size_t pending_rx() const;

  /// Serialize NIC state; staged/ring payloads as size + digest.
  void ckpt_dump(util::StateSink& sink) const {
    std::lock_guard lock(mu_);
    sink.varint(next_tx_id_);
    sink.varint(next_rx_seq_);
    sink.varint(busy_until_);
    sink.varint(tx_staged_.size());
    for (const auto& [id, frame] : tx_staged_) {
      sink.varint(id);
      sink.varint(frame.size());
      sink.varint(util::fnv1a64({frame.data(), frame.size()}));
    }
    sink.varint(rx_ring_.size());
    for (const auto& frame : rx_ring_) {
      sink.varint(frame.size());
      sink.varint(util::fnv1a64({frame.data(), frame.size()}));
    }
  }

 private:
  EthernetConfig cfg_;
  Wire* wire_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> tx_staged_;
  std::deque<std::vector<std::uint8_t>> rx_ring_;
  std::uint64_t next_tx_id_ = 1;
  std::uint64_t next_rx_seq_ = 1;
  Cycles busy_until_ = 0;
  stats::Counter* tx_frames_ = nullptr;
  stats::Counter* tx_bytes_ = nullptr;
  stats::Counter* rx_frames_ = nullptr;
  stats::Counter* rx_bytes_ = nullptr;
};

}  // namespace compass::dev
