#include "dev/device_hub.h"

namespace compass::dev {

DeviceHub::DeviceHub(const DeviceHubConfig& cfg, stats::StatsRegistry* stats)
    : cfg_(cfg),
      eth_(cfg.eth, stats),
      clock_(cfg.timer_interval, cfg.timer_per_cpu) {
  COMPASS_CHECK(cfg_.num_disks >= 1);
  for (int d = 0; d < cfg_.num_disks; ++d)
    disks_.push_back(std::make_unique<Disk>(d, cfg_.disk, stats));
}

void DeviceHub::bind(core::Backend& backend) {
  COMPASS_CHECK_MSG(backend_ == nullptr, "DeviceHub already bound");
  backend_ = &backend;
  clock_.start(backend);
}

Disk& DeviceHub::disk(int id) {
  COMPASS_CHECK_MSG(id >= 0 && id < num_disks(), "no disk " << id);
  return *disks_[static_cast<std::size_t>(id)];
}

void DeviceHub::deliver_rx_frame(std::vector<std::uint8_t> frame) {
  // Inbound fault draws happen here, on the backend thread, in delivery
  // order (deterministic). Each delivered copy records its own rx stimulus,
  // so a trace replay re-injects the exact same set without drawing.
  if (injector_ != nullptr) {
    switch (injector_->draw_rx()) {
      case fault::RxFault::kNone:
        break;
      case fault::RxFault::kDup: {
        std::vector<std::uint8_t> copy = frame;
        deliver_one(std::move(copy));
        break;  // original delivered below
      }
      case fault::RxFault::kCorrupt: {
        // Deliver a corrupted copy first, then the good frame right behind
        // it (same arrival cycle, later insertion order): the receiver
        // detects the bad checksum and discards, modeling a link-layer
        // retransmit already in flight — and never stranding a client that
        // cannot retransmit.
        std::vector<std::uint8_t> bad = frame;
        if (!bad.empty()) bad.back() ^= 0xFF;
        deliver_one(std::move(bad));
        break;
      }
    }
  }
  deliver_one(std::move(frame));
}

void DeviceHub::deliver_one(std::vector<std::uint8_t> frame) {
  COMPASS_CHECK(backend_ != nullptr);
  const Cycles when = backend_->now() + cfg_.rx_wire_delay;
  if (trace_ != nullptr) trace_->on_rx_stimulus(when, frame.size());
  backend_->scheduler().schedule_at(
      when, [this, frame = std::move(frame)]() mutable {
        const std::uint64_t id = eth_.inject_rx(std::move(frame));
        backend_->raise_irq(backend_->pick_irq_cpu(),
                            core::IrqDesc{core::Irq::kEthernetRx, id, 0});
      });
}

std::int64_t DeviceHub::device_request(ProcId proc, CpuId, Cycles now,
                                       std::span<const std::uint64_t, 4> args) {
  COMPASS_CHECK(backend_ != nullptr);
  switch (dev_op_of(args[0])) {
    case DevOp::kDiskRead:
    case DevOp::kDiskWrite: {
      const bool write = dev_op_of(args[0]) == DevOp::kDiskWrite;
      const fault::DiskFault f = dev_fault_of(args[0]);
      const std::uint64_t block = args[1];
      const int disk_id = static_cast<int>(args[2] >> 32);
      const auto nblocks = static_cast<std::uint32_t>(args[2]);
      const std::uint64_t tag = args[3];
      const Cycles timeout_extra =
          fault_plan_ != nullptr ? fault_plan_->disk_timeout_cycles
                                 : fault::FaultPlan{}.disk_timeout_cycles;
      const Cycles done =
          disk(disk_id).submit(block, nblocks, write, now, f, timeout_extra);
      backend_->scheduler().schedule_at(done, [this, tag] {
        backend_->raise_irq(backend_->pick_irq_cpu(),
                            core::IrqDesc{core::Irq::kDisk, tag, 0});
      });
      // The reply's retval is the request status the file system reads
      // before sleeping on the completion: >= 0 success (service latency),
      // -1 I/O error, -2 timeout. The completion interrupt fires either way.
      if (f == fault::DiskFault::kError) return -1;
      if (f == fault::DiskFault::kTimeout) return -2;
      return static_cast<std::int64_t>(done - now);
    }
    case DevOp::kEthTx: {
      const std::uint64_t id = args[1];
      const std::uint64_t tag = args[3];
      // Staged ids are host-side handles: replay stages its own frame and
      // substitutes the fresh id, so only the size is recorded.
      if (trace_ != nullptr) trace_->on_tx_frame(proc, eth_.staged_size(id));
      const Cycles done = eth_.transmit(id, now);
      // Every transmit completion interrupts (descriptor reclaim); the
      // handler additionally wakes `tag` when the sender asked for it.
      backend_->scheduler().schedule_at(done, [this, tag] {
        backend_->raise_irq(backend_->pick_irq_cpu(),
                            core::IrqDesc{core::Irq::kEthernetTx, tag, 0});
      });
      return static_cast<std::int64_t>(done - now);
    }
  }
  COMPASS_CHECK_MSG(false, "unknown device op " << args[0]);
  return -1;
}

}  // namespace compass::dev
