// Hard-disk-drive timing model (paper §3.4).
//
// The disk only models *timing* (seek + rotation + transfer + FIFO
// queueing); data content lives in the file-system model, which copies it
// during the completion interrupt handler so the memory traffic of the copy
// is simulated as kernel references.
#pragma once

#include <cstdint>

#include "core/types.h"
#include "fault/fault_injector.h"
#include "stats/counters.h"
#include "util/check.h"
#include "util/state_io.h"

namespace compass::dev {

struct DiskConfig {
  std::uint32_t block_size = 4096;
  /// Fixed controller/command overhead per request.
  Cycles fixed_overhead = 20'000;
  /// Seek cost per unit of block distance from the previous request.
  double seek_per_block = 0.02;
  Cycles seek_max = 1'500'000;     ///< full-stroke seek bound
  Cycles rotational_avg = 400'000; ///< half-rotation average latency
  Cycles per_block_transfer = 30'000;
};

class Disk {
 public:
  Disk(int id, const DiskConfig& cfg, stats::StatsRegistry* stats = nullptr);

  /// Submit a request at `now`; returns the absolute completion cycle.
  /// Requests are serviced FIFO: a busy disk queues the new request.
  ///
  /// `f` is the (deterministic, pre-drawn) fault decision for this request:
  ///  * kError — the command fails fast after the fixed overhead; nothing
  ///    transfers, so only diskN.errors is counted (not reads/blocks);
  ///  * kTimeout — the request occupies the disk for the full service time
  ///    plus `timeout_extra`, then completes unsuccessfully (diskN.timeouts).
  Cycles submit(std::uint64_t block, std::uint32_t nblocks, bool write,
                Cycles now, fault::DiskFault f = fault::DiskFault::kNone,
                Cycles timeout_extra = 0);

  int id() const { return id_; }
  const DiskConfig& config() const { return cfg_; }

  /// Serialize the timing state (queue head + seek position).
  void ckpt_dump(util::StateSink& sink) const {
    sink.varint(busy_until_);
    sink.varint(last_block_);
  }

 private:
  Cycles service_time(std::uint64_t block, std::uint32_t nblocks) const;

  int id_;
  DiskConfig cfg_;
  Cycles busy_until_ = 0;
  std::uint64_t last_block_ = 0;
  stats::Counter* reads_ = nullptr;
  stats::Counter* writes_ = nullptr;
  stats::Counter* blocks_ = nullptr;
  stats::Counter* errors_ = nullptr;
  stats::Counter* timeouts_ = nullptr;
  stats::Histogram* latency_ = nullptr;
};

}  // namespace compass::dev
