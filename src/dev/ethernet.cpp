#include "dev/ethernet.h"

#include <algorithm>

namespace compass::dev {

Ethernet::Ethernet(const EthernetConfig& cfg, stats::StatsRegistry* stats)
    : cfg_(cfg) {
  COMPASS_CHECK(cfg_.bytes_per_cycle > 0);
  if (stats != nullptr) {
    tx_frames_ = &stats->counter("eth.tx_frames");
    tx_bytes_ = &stats->counter("eth.tx_bytes");
    rx_frames_ = &stats->counter("eth.rx_frames");
    rx_bytes_ = &stats->counter("eth.rx_bytes");
  }
}

std::uint64_t Ethernet::stage_tx(std::vector<std::uint8_t> frame) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_tx_id_++;
  tx_staged_.emplace(id, std::move(frame));
  return id;
}

std::size_t Ethernet::staged_size(std::uint64_t id) const {
  std::lock_guard lock(mu_);
  const auto it = tx_staged_.find(id);
  COMPASS_CHECK_MSG(it != tx_staged_.end(), "no staged tx frame " << id);
  return it->second.size();
}

std::vector<std::uint8_t> Ethernet::take_next_rx() {
  std::lock_guard lock(mu_);
  COMPASS_CHECK_MSG(!rx_ring_.empty(), "rx ring empty");
  std::vector<std::uint8_t> frame = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  return frame;
}

Cycles Ethernet::transmit(std::uint64_t id, Cycles now) {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard lock(mu_);
    const auto it = tx_staged_.find(id);
    COMPASS_CHECK_MSG(it != tx_staged_.end(), "no staged tx frame " << id);
    frame = std::move(it->second);
    tx_staged_.erase(it);
  }
  const auto wire_time = static_cast<Cycles>(
      static_cast<double>(frame.size()) / cfg_.bytes_per_cycle);
  const Cycles start = std::max(now + cfg_.tx_overhead, busy_until_);
  const Cycles done = start + wire_time;
  busy_until_ = done;
  if (tx_frames_ != nullptr) {
    tx_frames_->inc();
    tx_bytes_->inc(frame.size());
  }
  if (wire_ != nullptr) wire_->on_tx(std::move(frame), done);
  return done;
}

std::uint64_t Ethernet::inject_rx(std::vector<std::uint8_t> frame) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_rx_seq_++;
  if (rx_frames_ != nullptr) {
    rx_frames_->inc();
    rx_bytes_->inc(frame.size());
  }
  rx_ring_.push_back(std::move(frame));
  return id;
}

std::size_t Ethernet::pending_tx() const {
  std::lock_guard lock(mu_);
  return tx_staged_.size();
}

std::size_t Ethernet::pending_rx() const {
  std::lock_guard lock(mu_);
  return rx_ring_.size();
}

}  // namespace compass::dev
