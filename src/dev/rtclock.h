// Real-time clock / interval timer (paper §3.4).
//
// Raises a periodic kTimer interrupt; the paper's TPCC/TPCD interrupt-time
// share is partly interval-timer handling, and the preemptive process
// scheduler is driven by it.
#pragma once

#include "core/backend.h"
#include "core/types.h"

namespace compass::dev {

class RtClock {
 public:
  /// `interval` in cycles; 0 disables the clock. With `per_cpu`, every
  /// simulated CPU receives its own decrementer-style tick; otherwise only
  /// CPU 0 takes timer interrupts.
  RtClock(Cycles interval, bool per_cpu) : interval_(interval), per_cpu_(per_cpu) {}

  Cycles interval() const { return interval_; }

  /// Schedule the first tick(s). Call once before Backend::run().
  void start(core::Backend& backend) {
    if (interval_ == 0) return;
    const int cpus = per_cpu_ ? backend.config().num_cpus : 1;
    for (CpuId c = 0; c < cpus; ++c) schedule_tick(backend, c, interval_);
  }

 private:
  void schedule_tick(core::Backend& backend, CpuId cpu, Cycles when) {
    backend.scheduler().schedule_at(when, [this, &backend, cpu, when] {
      backend.raise_irq(cpu, core::IrqDesc{core::Irq::kTimer, 0, 0});
      schedule_tick(backend, cpu, when + interval_);
    });
  }

  Cycles interval_;
  bool per_cpu_;
};

}  // namespace compass::dev
