// OS-call numbers and argument conventions.
//
// Category-1 calls (the profiled hot set of Table 1: kreadv/kwritev, select,
// statx, connect, open, close, naccept, send, mmap/munmap/msync, plus the
// rest of the file and socket API) are serviced by the OS server, whose
// instrumented kernel code generates memory events. Category-2 calls
// (shared-memory segments, scheduling hints) are handled inside the backend
// (kBackendCall) and only their *effect* on memory behaviour is modeled.
//
// Arguments are int64s. Strings and buffers are passed as simulated
// addresses in the caller's address space; kernel code reads them through
// the AddressMap exactly like copyin/copyout would.
#pragma once

#include <cstdint>
#include <string_view>

namespace compass::os {

/// kOpen flag: raw/direct I/O — reads and writes DMA straight between the
/// disk and the caller's buffer, bypassing the kernel buffer cache (DB2
/// raw-device style; most of the I/O cost becomes interrupt handling).
inline constexpr std::int64_t kOpenDirect = 1;

enum class Sys : std::uint32_t {
  // ---- file system (category 1) ----
  kOpen = 1,    ///< (path_addr, path_len, flags) -> fd
  kClose,       ///< (fd)
  kRead,        ///< (fd, buf_addr, len) -> bytes
  kWrite,       ///< (fd, buf_addr, len) -> bytes
  kReadv,       ///< (fd, iov_addr, iovcnt) -> bytes        [paper: kreadv]
  kWritev,      ///< (fd, iov_addr, iovcnt) -> bytes        [paper: kwritev]
  kLseek,       ///< (fd, offset, whence) -> new offset
  kStatx,       ///< (path_addr, path_len) -> size or -1    [paper: statx]
  kFsync,       ///< (fd)
  kCreat,       ///< (path_addr, path_len, size_hint) -> fd
  kUnlink,      ///< (path_addr, path_len)
  kMmap,        ///< (fd, offset, len) -> mapped sim address
  kMunmap,      ///< (map_addr)
  kMsync,       ///< (map_addr) write back dirty mapped pages

  // ---- sockets / TCP-IP (category 1) ----
  kSocket = 64, ///< () -> sockfd
  kBind,        ///< (sockfd, port)
  kListen,      ///< (sockfd, backlog)
  kNaccept,     ///< (sockfd) -> connfd (blocks)            [paper: naccept]
  kConnect,     ///< (sockfd, port) -> 0 (client side)
  kSend,        ///< (sockfd, buf_addr, len) -> bytes
  kRecv,        ///< (sockfd, buf_addr, len) -> bytes (blocks)
  kSelect,      ///< (fdset_addr, nfds) -> ready fd (blocks)
  kSockClose,   ///< (sockfd) send FIN and release

  // ---- semaphores / misc (category 1) ----
  kSemInit = 96,///< (sem_id, count)
  kSemP,        ///< (sem_id) down, may block
  kSemV,        ///< (sem_id) up
  kGetpid,      ///< () -> proc id
  kUsleep,      ///< (cycles) block for simulated time

  // ---- category 2: handled in the backend ----
  kShmget = 128,///< (key, size) -> segid
  kShmat,       ///< (segid) -> segment base address
  kShmdt,       ///< (segid)
  kSchedYield,  ///< () give up the CPU slice
};

inline constexpr bool is_backend_call(Sys s) {
  return static_cast<std::uint32_t>(s) >= 128;
}

inline constexpr std::string_view to_string(Sys s) {
  switch (s) {
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kRead: return "kread";
    case Sys::kWrite: return "kwrite";
    case Sys::kReadv: return "kreadv";
    case Sys::kWritev: return "kwritev";
    case Sys::kLseek: return "lseek";
    case Sys::kStatx: return "statx";
    case Sys::kFsync: return "fsync";
    case Sys::kCreat: return "creat";
    case Sys::kUnlink: return "unlink";
    case Sys::kMmap: return "mmap";
    case Sys::kMunmap: return "munmap";
    case Sys::kMsync: return "msync";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kNaccept: return "naccept";
    case Sys::kConnect: return "connect";
    case Sys::kSend: return "send";
    case Sys::kRecv: return "recv";
    case Sys::kSelect: return "select";
    case Sys::kSockClose: return "sockclose";
    case Sys::kSemInit: return "seminit";
    case Sys::kSemP: return "semp";
    case Sys::kSemV: return "semv";
    case Sys::kGetpid: return "getpid";
    case Sys::kUsleep: return "usleep";
    case Sys::kShmget: return "shmget";
    case Sys::kShmat: return "shmat";
    case Sys::kShmdt: return "shmdt";
    case Sys::kSchedYield: return "sched_yield";
  }
  return "?";
}

/// User-visible iovec layout for kReadv/kWritev (lives in user memory).
struct KIovec {
  std::uint64_t base;  ///< simulated address
  std::uint64_t len;
};

/// Simulated-OS error numbers (returned negated, Linux-style).
enum KErr : std::int64_t {
  kEBADF = 9,
  kENOENT = 2,
  kEINTR = 4,
  kEIO = 5,
  kENOMEM = 12,
  kEINVAL = 22,
  kEMFILE = 24,
  kENOTCONN = 107,
  kEADDRINUSE = 98,
};

/// Transient errors a caller should retry with bounded backoff (the fault
/// plane injects these; libc-style restartable failures).
inline constexpr bool is_transient_err(std::int64_t ret) {
  return ret == -kEINTR || ret == -kENOMEM || ret == -kEIO;
}

}  // namespace compass::os
