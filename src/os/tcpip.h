// The simulated TCP/IP stack: sockets, mbuf chains, and the network-input
// kernel daemon (netd, modeled after BSD/AIX netisr).
//
// The paper's SPECWeb profile is dominated by this code: "about 42% is
// spent in a handful of OS calls, such as kwritev, kreadv, select, statx,
// connect, open, close, naccept and send which are predominantly due to
// the TCP/IP stack", plus ethernet interrupt handling. All stack state is
// guarded by one netlock KMutex; the ethernet-rx interrupt handler is
// lock-free (ring bookkeeping plus a netd wakeup), and netd does the real
// tcp_input work — checksums, mbuf building, socket queue appends — in
// deterministic frame order (the rx ring is FIFO in backend injection
// order) under the netlock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/sim_context.h"
#include "os/ksync.h"
#include "os/syscall.h"
#include "util/state_io.h"

namespace compass::os {

class Kernel;

/// Wire format: every frame starts with this header. `seq` and `csum` give
/// the receiver enough to survive the link-layer faults the fault plane
/// injects: duplicated frames are detected by per-connection sequence
/// numbers, corrupted frames by the payload checksum.
struct FrameHeader {
  std::uint32_t conn = 0;   ///< connection id (chosen by the initiator)
  std::uint16_t port = 0;   ///< destination port (SYN only)
  std::uint8_t flags = 0;
  std::uint8_t pad = 0;
  std::uint32_t len = 0;    ///< payload bytes
  std::uint32_t seq = 0;    ///< per-connection, per-direction sequence number
  std::uint32_t csum = 0;   ///< FNV-1a over the payload (make_frame stamps it)
};
static_assert(sizeof(FrameHeader) == 20);

enum FrameFlags : std::uint8_t {
  kFrameSyn = 1,
  kFrameSynAck = 2,
  kFrameData = 4,
  kFrameFin = 8,
};

std::vector<std::uint8_t> make_frame(const FrameHeader& h,
                                     std::span<const std::uint8_t> payload);
FrameHeader parse_frame(std::span<const std::uint8_t> frame);

/// FNV-1a/32 over the payload bytes — the host-visible truth the simulated
/// in-place checksum scan stands in for.
std::uint32_t frame_checksum(std::span<const std::uint8_t> payload);

class TcpIp {
 public:
  explicit TcpIp(Kernel& kernel);
  ~TcpIp();

  // ---- socket OS calls (run on OS threads) --------------------------------

  std::int64_t sys_socket(core::SimContext& ctx, ProcId proc);
  std::int64_t sys_bind(core::SimContext& ctx, std::uint64_t sock, std::uint16_t port);
  std::int64_t sys_listen(core::SimContext& ctx, std::uint64_t sock, int backlog);
  std::int64_t sys_naccept(core::SimContext& ctx, ProcId proc, std::uint64_t sock);
  std::int64_t sys_connect(core::SimContext& ctx, std::uint64_t sock, std::uint16_t port);
  std::int64_t sys_send(core::SimContext& ctx, std::uint64_t sock, Addr buf,
                        std::uint64_t len);
  std::int64_t sys_recv(core::SimContext& ctx, ProcId proc, std::uint64_t sock,
                        Addr buf, std::uint64_t len);
  std::int64_t sys_select(core::SimContext& ctx, ProcId proc, Addr fdset,
                          std::uint64_t nfds);
  std::int64_t sys_sockclose(core::SimContext& ctx, std::uint64_t sock);

  // ---- interrupt handlers --------------------------------------------------

  /// Ethernet-rx handler: ring bookkeeping, sequence the frame, wake netd.
  void rx_intr(core::SimContext& ctx, std::uint64_t seq);
  /// Tx-complete handler (only when a sender asked for completion).
  void tx_intr(core::SimContext& ctx, std::uint64_t tag);

  // ---- the network-input daemon --------------------------------------------

  /// Body of the netd kernel daemon; loops until the simulation shuts down.
  void netd_body(core::SimContext& ctx);

  /// Channel netd sleeps on (one permit per pending frame).
  core::WaitChannel netisr_channel() const { return netisr_channel_; }

  /// Native-mode (detached) frame delivery: when not simulating there is no
  /// NIC; outbound frames go to this callback and inbound frames enter via
  /// native_rx().
  void set_native_wire(std::function<void(std::vector<std::uint8_t>)> fn);
  void native_rx(std::vector<std::uint8_t> frame);

  std::size_t open_sockets() const;

  /// Serialize sockets, listener tables, connection map, mbuf freelist and
  /// allocation cursors in canonical order. Quiescent-point only.
  void ckpt_dump(util::StateSink& sink) const;

 private:
  struct Socket {
    std::uint64_t id = 0;
    Addr ctrl_addr = 0;  ///< kernel socket record (protocol control block)
    enum class State : std::uint8_t {
      kClosed,
      kBound,
      kListening,
      kSynSent,
      kConnected,
    } state = State::kClosed;
    std::uint32_t conn = 0;
    std::uint16_t port = 0;
    bool peer_fin = false;
    std::uint32_t tx_seq = 0;       ///< next sequence number to send
    std::uint32_t rx_last_seq = 0;  ///< highest sequence number accepted
    bool rx_has_seq = false;        ///< rx_last_seq is valid
    struct MbufRef {
      Addr addr = 0;            ///< kernel mbuf (header + data)
      std::uint32_t len = 0;    ///< payload bytes in this mbuf
      std::uint32_t consumed = 0;
    };
    std::deque<MbufRef> rxq;
    std::uint64_t rx_avail = 0;
    std::deque<std::uint64_t> pending_accepts;  ///< socket ids awaiting accept
    KWaitQueue readers;
    KWaitQueue accepters;
    KWaitQueue connecters;
    KWaitQueue selectors;
  };

  Socket* sock(std::uint64_t id);
  Socket* conn_sock(std::uint32_t conn);
  Addr mbuf_alloc(core::SimContext& ctx);
  void mbuf_free(core::SimContext& ctx, Addr addr);
  /// Transmit one frame: checksum, NIC staging, kDevRequest (or the native
  /// wire when detached). netlock held.
  void output_frame(core::SimContext& ctx, const FrameHeader& h,
                    std::span<const std::uint8_t> payload);
  /// tcp_input for one frame; netlock held.
  void input_frame(core::SimContext& ctx, std::span<const std::uint8_t> frame);
  void wake_socket_watchers(core::SimContext& ctx, Socket& s);

  Kernel& kernel_;
  std::unique_ptr<KMutex> netlock_;
  core::WaitChannel netisr_channel_;

  std::map<std::uint64_t, std::unique_ptr<Socket>> sockets_;
  /// Several sockets may listen on one port (prefork servers); SYNs are
  /// delivered round-robin across them.
  std::map<std::uint16_t, std::vector<std::uint64_t>> listeners_;
  std::map<std::uint16_t, std::size_t> listener_rr_;
  std::map<std::uint32_t, std::uint64_t> conns_;      // conn id -> socket id
  std::uint64_t next_sock_ = 1;
  std::uint32_t next_conn_ = 1;  // outbound conn ids stay below 1<<16

  std::vector<Addr> mbuf_freelist_;
  Addr rx_staging_ = 0;  ///< kernel buffer the NIC DMAs frames into

  std::function<void(std::vector<std::uint8_t>)> native_wire_;

  stats::Counter* frames_in_ = nullptr;
  stats::Counter* frames_out_ = nullptr;
  stats::Counter* bytes_in_ = nullptr;
  stats::Counter* bytes_out_ = nullptr;
};

}  // namespace compass::os
