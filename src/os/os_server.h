// The OS server (paper §3.1): "a stand-alone, multi-threaded program that
// simulates category 1 OS functions".
//
// Upon start it spawns a pool of OS threads, each monitoring its OS port in
// the "single" state. An application's first OS call sends a connection
// request; the receiving thread binds itself to the process ("paired") and
// from then on services its OS calls, generating kernel memory events on
// the application's own event port. Pseudo interrupt requests (§3.2) from
// user-mode processes are serviced the same way, and per-CPU bottom-half
// runner threads handle interrupts raised on idle CPUs.
//
// The server also hosts the netd kernel daemon (network input processing).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/frontend.h"
#include "os/kernel.h"
#include "os/os_port.h"
#include "os/tcpip.h"

namespace compass::os {

struct OsServerConfig {
  core::SimContextOptions ctx_opts;
  /// Spawn the network-input daemon (needed whenever the ethernet is used).
  bool start_netd = true;
  /// Bottom-half runners; one per simulated CPU by default (-1).
  int num_bottom_halves = -1;
};

class OsServer : public core::IdleIrqDispatcher {
 public:
  /// Must be constructed before Backend::run(): it registers the
  /// bottom-half pseudo-processes and the netd daemon with the backend.
  OsServer(const OsServerConfig& cfg, core::Backend& backend, Kernel& kernel);
  ~OsServer();

  OsServer(const OsServer&) = delete;
  OsServer& operator=(const OsServer&) = delete;

  /// Install the COMPASS OS stub (OS-call router) and the pseudo-interrupt
  /// hook on an application frontend. Call before Frontend::start().
  void attach_client(core::Frontend& frontend);

  /// Spawn OS threads, bottom-half runners and netd. Call before
  /// Backend::run() (from any thread; the backend loop may already be
  /// waiting).
  void start();

  /// Join all server threads. Call after Backend::run() returns (it closes
  /// the event ports, which unwinds everything here).
  void stop();

  void dispatch_idle_irq(CpuId cpu, ProcId bh_proc, Cycles when) override;

  int num_os_threads() const { return static_cast<int>(threads_.size()); }
  /// How many OS threads are currently paired with a process.
  int paired_threads() const;

 private:
  struct OsThread {
    std::unique_ptr<OsPort> port;
    std::thread thread;
    ProcId paired = kNoProc;  ///< kNoProc = "single"
    std::unique_ptr<core::SimContext> ctx;
  };

  struct BhRunner {
    ProcId proc = kNoProc;
    std::unique_ptr<core::SimContext> ctx;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    struct Item {
      CpuId cpu;
      Cycles when;
    };
    std::vector<Item> work;
    bool stop = false;
  };

  void os_thread_main(OsThread& t);
  void bh_main(BhRunner& r);

  OsServerConfig cfg_;
  core::Backend& backend_;
  Kernel& kernel_;
  std::vector<std::unique_ptr<OsThread>> threads_;
  std::vector<std::unique_ptr<BhRunner>> bh_runners_;
  std::map<ProcId, BhRunner*> bh_by_proc_;
  std::unique_ptr<core::Frontend> netd_;
  mutable std::mutex pair_mu_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace compass::os
