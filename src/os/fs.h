// The simulated file system: flat namespace, per-inode extents on the
// disks, and a kernel buffer cache (hash + LRU) whose headers and data
// blocks live in kernel memory, so every lookup and copy emits kernel-mode
// memory events.
//
// I/O path: a read miss marks the buffer busy, issues a kDevRequest to the
// disk model and sleeps on the buffer's channel; the disk-completion
// interrupt handler does iodone bookkeeping and wakes the channel; the
// woken reader validates the buffer (DMA placed the data) and copies
// buffer → user with instrumented kernel references. Writes go to the
// buffer cache (dirty) and reach the disk at fsync or eviction.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/sim_context.h"
#include "mem/arena.h"
#include "os/ksync.h"
#include "os/syscall.h"

namespace compass::os {

class Kernel;

/// On-"disk" file. Data pages are stable host storage (the platter).
struct Inode {
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  int disk = 0;
  std::uint64_t first_block = 0;  ///< disk block of page 0 (seek model)
  Addr header_addr = 0;           ///< kernel-resident inode record
  std::map<std::uint64_t, std::unique_ptr<std::vector<std::uint8_t>>> pages;
  /// Host-level guard for `pages`/`size`: direct I/O runs outside the
  /// fslock, so concurrent raw readers/writers of one file synchronize
  /// their host-side platter access here (no simulated cost).
  std::mutex host_mu;

  std::uint8_t* page_data(std::uint64_t page, std::uint32_t block_size);
};

class FileSystem {
 public:
  FileSystem(Kernel& kernel);
  ~FileSystem();

  // All calls run on OS threads (or natively); `proc` is the calling
  // process for fd bookkeeping done by the Kernel.

  std::int64_t open(core::SimContext& ctx, ProcId proc, const std::string& path,
                    std::uint64_t flags = 0);
  std::int64_t creat(core::SimContext& ctx, ProcId proc, const std::string& path,
                     std::uint64_t size_hint);
  std::int64_t statx(core::SimContext& ctx, const std::string& path);
  std::int64_t unlink(core::SimContext& ctx, const std::string& path);

  /// `direct`: raw I/O — DMA between disk and the caller's buffer (no
  /// buffer-cache copy); requires block-aligned offset and length.
  std::int64_t read(core::SimContext& ctx, std::uint64_t inode_id,
                    std::uint64_t offset, Addr user_buf, std::uint64_t len,
                    bool direct = false);
  std::int64_t write(core::SimContext& ctx, std::uint64_t inode_id,
                     std::uint64_t offset, Addr user_buf, std::uint64_t len,
                     bool direct = false);
  std::int64_t fsync(core::SimContext& ctx, std::uint64_t inode_id);

  // mmap family (paper: mmap/munmap/msync dominate TPCD's kernel time).
  std::int64_t mmap(core::SimContext& ctx, ProcId proc, std::uint64_t inode_id,
                    std::uint64_t offset, std::uint64_t len);
  std::int64_t munmap(core::SimContext& ctx, Addr base);
  std::int64_t msync(core::SimContext& ctx, Addr base);

  /// Disk-completion interrupt handler (lock-free: bookkeeping + wakeup).
  void disk_intr(core::SimContext& ctx, std::uint64_t payload);

  /// Host-side helper for tests and workload setup: create a file with
  /// content without simulating (uses a detached context).
  void populate(const std::string& path, std::span<const std::uint8_t> data);
  std::uint64_t file_size(const std::string& path) const;
  bool exists(const std::string& path) const;

  Inode* inode_by_id(std::uint64_t id);

  /// Serialize the namespace, inodes (per-page content digests), buffer
  /// cache and mappings in canonical order. Quiescent-point only.
  void ckpt_dump(util::StateSink& sink) const;

 private:
  struct Buf {
    std::uint64_t key = 0;        ///< (inode_id << 20) | page
    std::uint64_t inode_id = 0;
    std::uint64_t page = 0;
    Addr header_addr = 0;         ///< kernel record; also the wait channel
    Addr data_addr = 0;           ///< block-sized kernel data area
    bool valid = false;
    bool dirty = false;
    bool busy = false;            ///< owned by an in-flight I/O
    std::uint64_t lru = 0;
    KWaitQueue waiters;           ///< procs waiting for !busy
  };

  Inode* lookup(const std::string& path);
  Inode* create_locked(core::SimContext& ctx, const std::string& path,
                       std::uint64_t size_hint);
  /// Get the buffer for (inode, page), filling it from disk if needed.
  /// Returns with the buffer valid and not busy; fslock held on entry and
  /// exit (dropped across I/O).
  Buf& bread(core::SimContext& ctx, Inode& inode, std::uint64_t page,
             bool fetch);
  Buf& bget_locked(core::SimContext& ctx, std::uint64_t key);
  std::int64_t read_direct(core::SimContext& ctx, Inode& inode,
                           std::uint64_t offset, Addr user_buf,
                           std::uint64_t len);
  std::int64_t write_direct(core::SimContext& ctx, Inode& inode,
                            std::uint64_t offset, Addr user_buf,
                            std::uint64_t len);
  void write_back(core::SimContext& ctx, Buf& buf);
  void dma_fill(Buf& buf);
  void dma_drain(Buf& buf);
  std::uint64_t disk_block(const Buf& buf) const;
  /// Issue one disk request and sleep until its completion interrupt,
  /// retrying (bounded, via the fault plane's forced-success cap) when the
  /// injected request status comes back as an error or timeout. Whatever
  /// locks the caller holds stay held across the retries (same discipline
  /// as holding them across a single blocking I/O). `op` is kDiskRead or
  /// kDiskWrite.
  void disk_io(core::SimContext& ctx, std::uint64_t op, std::uint64_t block,
               int disk, std::uint32_t nblocks, core::WaitChannel channel);

  Kernel& kernel_;
  std::unique_ptr<KMutex> fslock_;
  std::map<std::string, std::unique_ptr<Inode>> names_;
  std::map<std::uint64_t, Inode*> by_id_;
  std::uint64_t next_inode_ = 1;
  std::vector<std::unique_ptr<Buf>> bufs_;
  std::map<std::uint64_t, Buf*> buf_hash_;
  std::uint64_t lru_clock_ = 0;

  struct Mapping {
    std::unique_ptr<mem::Arena> arena;
    std::uint64_t inode_id = 0;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
  };
  std::map<Addr, Mapping> mappings_;
  Addr next_map_base_;

  stats::Counter* reads_ = nullptr;
  stats::Counter* writes_ = nullptr;
  stats::Counter* cache_hits_ = nullptr;
  stats::Counter* cache_misses_ = nullptr;
};

}  // namespace compass::os
