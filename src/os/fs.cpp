#include "os/fs.h"

#include <algorithm>
#include <cstring>

#include "mem/mem_config.h"
#include "os/kernel.h"

namespace compass::os {

namespace {
constexpr Addr kMmapBase = 0x9000'0000'0000ull;

std::uint64_t buf_key(std::uint64_t inode, std::uint64_t page) {
  return (inode << 20) | page;
}
}  // namespace

std::uint8_t* Inode::page_data(std::uint64_t page, std::uint32_t block_size) {
  auto& slot = pages[page];
  if (!slot) slot = std::make_unique<std::vector<std::uint8_t>>(block_size, 0);
  return slot->data();
}

FileSystem::FileSystem(Kernel& kernel)
    : kernel_(kernel), next_map_base_(kMmapBase) {
  fslock_ = std::make_unique<KMutex>(kernel_.backend(), kernel_.new_channel());
  // Buffer headers and data blocks live in kernel memory so cache lookups
  // and copies generate kernel-mode references.
  core::SimContext setup;  // detached: setup costs are not simulated
  const std::uint32_t bs = kernel_.config().fs_block_size;
  for (std::size_t i = 0; i < kernel_.config().buffer_cache_buffers; ++i) {
    auto buf = std::make_unique<Buf>();
    buf->header_addr = kernel_.kalloc(setup, 64, 64);
    buf->data_addr = kernel_.kalloc(setup, bs, 64);
    bufs_.push_back(std::move(buf));
  }
  if (kernel_.backend() != nullptr) {
    auto& stats = kernel_.backend()->stats();
    reads_ = &stats.counter("fs.reads");
    writes_ = &stats.counter("fs.writes");
    cache_hits_ = &stats.counter("fs.cache_hits");
    cache_misses_ = &stats.counter("fs.cache_misses");
  }
}

FileSystem::~FileSystem() {
  for (auto& [_, m] : mappings_) kernel_.mem().remove(*m.arena);
}

Inode* FileSystem::lookup(const std::string& path) {
  const auto it = names_.find(path);
  return it == names_.end() ? nullptr : it->second.get();
}

Inode* FileSystem::inode_by_id(std::uint64_t id) {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Inode* FileSystem::create_locked(core::SimContext& ctx, const std::string& path,
                                 std::uint64_t size_hint) {
  auto inode = std::make_unique<Inode>();
  inode->id = next_inode_++;
  inode->size = 0;
  inode->disk = kernel_.devices() != nullptr
                    ? static_cast<int>(inode->id % static_cast<std::uint64_t>(
                                                       kernel_.devices()->num_disks()))
                    : 0;
  // Spread files across the disk for the seek model; leave room for 16 MB
  // of contiguous growth per file.
  inode->first_block = inode->id * 4096;
  inode->header_addr = kernel_.kalloc(ctx, 64, 64);
  (void)size_hint;
  Inode* raw = inode.get();
  by_id_.emplace(inode->id, raw);
  names_.emplace(path, std::move(inode));
  return raw;
}

std::int64_t FileSystem::open(core::SimContext& ctx, ProcId proc,
                              const std::string& path, std::uint64_t flags) {
  KMutex::Guard g(*fslock_, ctx);
  ctx.compute(60);  // directory hash walk
  Inode* inode = lookup(path);
  if (inode == nullptr) return -kENOENT;
  mem::sim_read<std::uint64_t>(ctx, kernel_.mem(), inode->header_addr);
  return kernel_.fd_alloc(proc, FdEntry::Kind::kFile, inode->id, flags);
}

std::int64_t FileSystem::creat(core::SimContext& ctx, ProcId proc,
                               const std::string& path,
                               std::uint64_t size_hint) {
  KMutex::Guard g(*fslock_, ctx);
  ctx.compute(120);
  Inode* inode = lookup(path);
  if (inode == nullptr) inode = create_locked(ctx, path, size_hint);
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), inode->header_addr, inode->id);
  return kernel_.fd_alloc(proc, FdEntry::Kind::kFile, inode->id);
}

std::int64_t FileSystem::statx(core::SimContext& ctx, const std::string& path) {
  KMutex::Guard g(*fslock_, ctx);
  ctx.compute(60);
  Inode* inode = lookup(path);
  if (inode == nullptr) return -kENOENT;
  mem::sim_read<std::uint64_t>(ctx, kernel_.mem(), inode->header_addr);
  return static_cast<std::int64_t>(inode->size);
}

std::int64_t FileSystem::unlink(core::SimContext& ctx, const std::string& path) {
  KMutex::Guard g(*fslock_, ctx);
  ctx.compute(100);
  const auto it = names_.find(path);
  if (it == names_.end()) return -kENOENT;
  Inode* inode = it->second.get();
  // Drop any cached buffers of the dead file.
  for (auto& buf : bufs_) {
    if (buf->inode_id == inode->id && buf_hash_.contains(buf->key)) {
      COMPASS_CHECK_MSG(!buf->busy, "unlink of a file with I/O in flight");
      buf_hash_.erase(buf->key);
      buf->valid = buf->dirty = false;
      buf->key = 0;
      buf->inode_id = 0;
    }
  }
  by_id_.erase(inode->id);
  names_.erase(it);
  return 0;
}

std::uint64_t FileSystem::disk_block(const Buf& buf) const {
  Inode* inode = const_cast<FileSystem*>(this)->inode_by_id(buf.inode_id);
  COMPASS_CHECK(inode != nullptr);
  return inode->first_block + buf.page;
}

void FileSystem::dma_fill(Buf& buf) {
  Inode* inode = inode_by_id(buf.inode_id);
  COMPASS_CHECK(inode != nullptr);
  const std::uint32_t bs = kernel_.config().fs_block_size;
  std::memcpy(kernel_.kmem().host(buf.data_addr),
              inode->page_data(buf.page, bs), bs);
}

void FileSystem::dma_drain(Buf& buf) {
  Inode* inode = inode_by_id(buf.inode_id);
  COMPASS_CHECK(inode != nullptr);
  const std::uint32_t bs = kernel_.config().fs_block_size;
  std::memcpy(inode->page_data(buf.page, bs),
              kernel_.kmem().host(buf.data_addr), bs);
}

void FileSystem::disk_io(core::SimContext& ctx, std::uint64_t op,
                         std::uint64_t block, int disk, std::uint32_t nblocks,
                         core::WaitChannel channel) {
  fault::FaultInjector* inj = kernel_.fault_injector();
  fault::FaultKind failed = fault::FaultKind::kCount;  // last failure kind
  for (int attempt = 0;; ++attempt) {
    // The fault decision is drawn here, by the requesting process (whose
    // oscalls are serial → deterministic), and travels in the request word:
    // the device — live or trace-replayed — applies identical timing.
    const fault::DiskFault f =
        inj != nullptr ? inj->draw_disk(ctx.proc(), attempt)
                       : fault::DiskFault::kNone;
    const std::int64_t status = ctx.dev_request(
        op | (static_cast<std::uint64_t>(f) << 8), block,
        (static_cast<std::uint64_t>(disk) << 32) | nblocks, channel);
    ctx.block_on(channel);  // completion interrupt wakes us either way
    if (status >= 0) {
      if (inj != nullptr && failed != fault::FaultKind::kCount)
        inj->count_recovered(failed);
      return;
    }
    failed = status == -2 ? fault::FaultKind::kDiskTimeout
                          : fault::FaultKind::kDiskError;
    ctx.compute(800);  // driver error handling + request re-queue
  }
}

void FileSystem::write_back(core::SimContext& ctx, Buf& buf) {
  // fslock held on entry and exit; dropped across the device wait.
  COMPASS_CHECK(!buf.busy);
  buf.busy = true;
  buf.dirty = false;
  dma_drain(buf);
  fslock_->unlock(ctx);
  if (kernel_.simulating() && kernel_.devices() != nullptr) {
    Inode* inode = inode_by_id(buf.inode_id);
    disk_io(ctx, static_cast<std::uint64_t>(dev::DevOp::kDiskWrite),
            disk_block(buf), inode->disk, 1, buf.header_addr);
  }
  fslock_->lock(ctx);
  buf.busy = false;
  buf.waiters.wake_all(ctx);
}

FileSystem::Buf& FileSystem::bget_locked(core::SimContext& ctx,
                                         std::uint64_t key) {
  for (;;) {
    ctx.compute(20);  // hash bucket walk
    if (const auto it = buf_hash_.find(key); it != buf_hash_.end()) {
      Buf& b = *it->second;
      mem::sim_read<std::uint64_t>(ctx, kernel_.mem(), b.header_addr);
      b.lru = ++lru_clock_;
      if (cache_hits_ != nullptr) cache_hits_->inc();
      return b;
    }
    if (cache_misses_ != nullptr) cache_misses_->inc();
    // Choose the least-recently-used non-busy buffer as the victim.
    Buf* victim = nullptr;
    for (auto& buf : bufs_)
      if (!buf->busy && (victim == nullptr || buf->lru < victim->lru))
        victim = buf.get();
    COMPASS_CHECK_MSG(victim != nullptr,
                      "buffer cache exhausted: every buffer busy");
    if (victim->dirty) {
      write_back(ctx, *victim);
      continue;  // the world changed while unlocked; retry the lookup
    }
    if (buf_hash_.contains(victim->key)) buf_hash_.erase(victim->key);
    victim->key = key;
    victim->inode_id = key >> 20;
    victim->page = key & ((1u << 20) - 1);
    victim->valid = false;
    victim->dirty = false;
    victim->lru = ++lru_clock_;
    buf_hash_.emplace(key, victim);
    mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), victim->header_addr, key);
    return *victim;
  }
}

FileSystem::Buf& FileSystem::bread(core::SimContext& ctx, Inode& inode,
                                   std::uint64_t page, bool fetch) {
  for (;;) {
    Buf& b = bget_locked(ctx, buf_key(inode.id, page));
    if (b.busy) {
      b.waiters.sleep(ctx, *fslock_);
      continue;  // re-lookup: the buffer may have been recycled
    }
    if (b.valid) return b;
    if (!fetch) {
      // Full-block overwrite: no need to read the old contents.
      b.valid = true;
      return b;
    }
    b.busy = true;
    fslock_->unlock(ctx);
    if (kernel_.simulating() && kernel_.devices() != nullptr) {
      disk_io(ctx, static_cast<std::uint64_t>(dev::DevOp::kDiskRead),
              inode.first_block + page, inode.disk, 1, b.header_addr);
    }
    dma_fill(b);  // DMA: no CPU references
    fslock_->lock(ctx);
    b.valid = true;
    b.busy = false;
    b.waiters.wake_all(ctx);
    return b;
  }
}

std::int64_t FileSystem::read_direct(core::SimContext& ctx, Inode& inode,
                                     std::uint64_t offset, Addr user_buf,
                                     std::uint64_t len) {
  // Raw I/O: one disk request for the whole contiguous range; the DMA
  // engine places the data straight into the caller's buffer — the CPU
  // cost is request setup plus the completion interrupt, not a copy loop.
  const std::uint32_t bs = kernel_.config().fs_block_size;
  const std::uint64_t first_page = offset / bs;
  const std::uint64_t nblocks = (len + bs - 1) / bs;
  ctx.compute(500);  // build and queue the raw-I/O request
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), inode.header_addr + 16,
                                offset);
  if (kernel_.simulating() && kernel_.devices() != nullptr) {
    // The caller sleeps on its own per-request channel so concurrent raw
    // I/Os on the same file do not wake each other.
    const core::WaitChannel ch = proc_io_channel(ctx.proc());
    disk_io(ctx, static_cast<std::uint64_t>(dev::DevOp::kDiskRead),
            inode.first_block + first_page, inode.disk,
            static_cast<std::uint32_t>(nblocks), ch);
  }
  {
    std::lock_guard host_lock(inode.host_mu);
    for (std::uint64_t page = 0; page < nblocks; ++page) {
      const std::uint64_t n = std::min<std::uint64_t>(bs, len - page * bs);
      std::memcpy(kernel_.mem().host(user_buf + page * bs),
                  inode.page_data(first_page + page, bs), n);
    }
  }
  return static_cast<std::int64_t>(len);
}

std::int64_t FileSystem::write_direct(core::SimContext& ctx, Inode& inode,
                                      std::uint64_t offset, Addr user_buf,
                                      std::uint64_t len) {
  const std::uint32_t bs = kernel_.config().fs_block_size;
  const std::uint64_t first_page = offset / bs;
  const std::uint64_t nblocks = (len + bs - 1) / bs;
  ctx.compute(500);
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), inode.header_addr + 16,
                                offset);
  {
    std::lock_guard host_lock(inode.host_mu);
    for (std::uint64_t page = 0; page < nblocks; ++page) {
      const std::uint64_t n = std::min<std::uint64_t>(bs, len - page * bs);
      std::memcpy(inode.page_data(first_page + page, bs),
                  kernel_.mem().host(user_buf + page * bs), n);
    }
    inode.size = std::max(inode.size, offset + len);
  }
  if (kernel_.simulating() && kernel_.devices() != nullptr) {
    const core::WaitChannel ch = proc_io_channel(ctx.proc());
    disk_io(ctx, static_cast<std::uint64_t>(dev::DevOp::kDiskWrite),
            inode.first_block + first_page, inode.disk,
            static_cast<std::uint32_t>(nblocks), ch);
  }
  return static_cast<std::int64_t>(len);
}

std::int64_t FileSystem::read(core::SimContext& ctx, std::uint64_t inode_id,
                              std::uint64_t offset, Addr user_buf,
                              std::uint64_t len, bool direct) {
  if (reads_ != nullptr) reads_->inc();
  const std::uint32_t bs = kernel_.config().fs_block_size;
  if (direct && offset % bs == 0) {
    // Raw I/O runs outside the fslock (only the namespace lookup is
    // serialized), so concurrent raw reads overlap at the disk queue.
    Inode* inode = nullptr;
    {
      KMutex::Guard g(*fslock_, ctx);
      inode = inode_by_id(inode_id);
      if (inode == nullptr) return -kEBADF;
      if (offset >= inode->size) return 0;
      len = std::min(len, inode->size - offset);
    }
    return read_direct(ctx, *inode, offset, user_buf, len);
  }
  KMutex::Guard g(*fslock_, ctx);
  Inode* inode = inode_by_id(inode_id);
  if (inode == nullptr) return -kEBADF;
  if (offset >= inode->size) return 0;
  len = std::min(len, inode->size - offset);
  std::uint64_t copied = 0;
  while (copied < len) {
    const std::uint64_t pos = offset + copied;
    const std::uint64_t page = pos / bs;
    const std::uint64_t in_page = pos % bs;
    const std::uint64_t n = std::min<std::uint64_t>(bs - in_page, len - copied);
    Buf& b = bread(ctx, *inode, page, true);
    mem::sim_memcpy(ctx, kernel_.mem(), user_buf + copied,
                    b.data_addr + in_page, n);
    copied += n;
  }
  return static_cast<std::int64_t>(copied);
}

std::int64_t FileSystem::write(core::SimContext& ctx, std::uint64_t inode_id,
                               std::uint64_t offset, Addr user_buf,
                               std::uint64_t len, bool direct) {
  if (writes_ != nullptr) writes_->inc();
  const std::uint32_t bs = kernel_.config().fs_block_size;
  if (direct && offset % bs == 0 && len % bs == 0) {
    Inode* inode = nullptr;
    {
      KMutex::Guard g(*fslock_, ctx);
      inode = inode_by_id(inode_id);
      if (inode == nullptr) return -kEBADF;
    }
    return write_direct(ctx, *inode, offset, user_buf, len);
  }
  KMutex::Guard g(*fslock_, ctx);
  Inode* inode = inode_by_id(inode_id);
  if (inode == nullptr) return -kEBADF;
  std::uint64_t copied = 0;
  while (copied < len) {
    const std::uint64_t pos = offset + copied;
    const std::uint64_t page = pos / bs;
    const std::uint64_t in_page = pos % bs;
    const std::uint64_t n = std::min<std::uint64_t>(bs - in_page, len - copied);
    // Partial-block writes into existing data must fetch; whole-block
    // writes (or writes past EOF) allocate without a disk read.
    const bool fetch = (in_page != 0 || n != bs) && pos < inode->size;
    Buf& b = bread(ctx, *inode, page, fetch);
    mem::sim_memcpy(ctx, kernel_.mem(), b.data_addr + in_page,
                    user_buf + copied, n);
    b.dirty = true;
    copied += n;
  }
  inode->size = std::max(inode->size, offset + len);
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), inode->header_addr,
                                inode->size);
  return static_cast<std::int64_t>(copied);
}

std::int64_t FileSystem::fsync(core::SimContext& ctx, std::uint64_t inode_id) {
  KMutex::Guard g(*fslock_, ctx);
  Inode* inode = inode_by_id(inode_id);
  if (inode == nullptr) return -kEBADF;
  for (;;) {
    Buf* dirty = nullptr;
    for (auto& buf : bufs_)
      if (buf->dirty && !buf->busy && buf->inode_id == inode_id) {
        dirty = buf.get();
        break;
      }
    if (dirty == nullptr) break;
    write_back(ctx, *dirty);
  }
  return 0;
}

std::int64_t FileSystem::mmap(core::SimContext& ctx, ProcId proc,
                              std::uint64_t inode_id, std::uint64_t offset,
                              std::uint64_t len) {
  (void)proc;
  // mmap coherence: flush dirty buffers first, then map a copy of the file
  // contents; one bulk disk read models the paging traffic.
  fsync(ctx, inode_id);
  KMutex::Guard g(*fslock_, ctx);
  Inode* inode = inode_by_id(inode_id);
  if (inode == nullptr) return -kEBADF;
  if (len == 0) return -kEINVAL;
  const std::uint32_t bs = kernel_.config().fs_block_size;
  const std::uint64_t aligned = (len + bs - 1) / bs * bs;
  Mapping m;
  m.inode_id = inode_id;
  m.offset = offset;
  m.len = len;
  m.arena = std::make_unique<mem::Arena>("mmap." + std::to_string(inode_id),
                                         next_map_base_, aligned);
  next_map_base_ += aligned + mem::kPageSize;
  kernel_.mem().add(*m.arena);
  const Addr base = m.arena->base();
  // Populate from the platter (paging I/O, DMA semantics).
  for (std::uint64_t page = 0; page * bs < aligned; ++page) {
    const std::uint64_t fpage = (offset / bs) + page;
    std::memcpy(m.arena->host(base + page * bs), inode->page_data(fpage, bs),
                bs);
  }
  if (kernel_.simulating() && kernel_.devices() != nullptr) {
    disk_io(ctx, static_cast<std::uint64_t>(dev::DevOp::kDiskRead),
            inode->first_block + offset / bs, inode->disk,
            static_cast<std::uint32_t>(aligned / bs), inode->header_addr);
  }
  ctx.compute(200 + 30 * (aligned / bs));  // page-table population
  mappings_.emplace(base, std::move(m));
  return static_cast<std::int64_t>(base);
}

std::int64_t FileSystem::msync(core::SimContext& ctx, Addr base) {
  KMutex::Guard g(*fslock_, ctx);
  const auto it = mappings_.find(base);
  if (it == mappings_.end()) return -kEINVAL;
  Mapping& m = it->second;
  Inode* inode = inode_by_id(m.inode_id);
  COMPASS_CHECK(inode != nullptr);
  const std::uint32_t bs = kernel_.config().fs_block_size;
  const std::uint64_t aligned = m.arena->capacity();
  // Page-table dirty scan + copy back to the platter.
  ctx.compute(20 * (aligned / bs));
  for (std::uint64_t page = 0; page * bs < aligned; ++page) {
    const std::uint64_t fpage = (m.offset / bs) + page;
    std::memcpy(inode->page_data(fpage, bs), m.arena->host(base + page * bs),
                bs);
  }
  inode->size = std::max(inode->size, m.offset + m.len);
  if (kernel_.simulating() && kernel_.devices() != nullptr) {
    disk_io(ctx, static_cast<std::uint64_t>(dev::DevOp::kDiskWrite),
            inode->first_block + m.offset / bs, inode->disk,
            static_cast<std::uint32_t>(aligned / bs), inode->header_addr);
  }
  return 0;
}

std::int64_t FileSystem::munmap(core::SimContext& ctx, Addr base) {
  KMutex::Guard g(*fslock_, ctx);
  const auto it = mappings_.find(base);
  if (it == mappings_.end()) return -kEINVAL;
  ctx.compute(100);
  kernel_.mem().remove(*it->second.arena);
  mappings_.erase(it);
  return 0;
}

void FileSystem::disk_intr(core::SimContext& ctx, std::uint64_t payload) {
  // iodone bookkeeping: touch the request/buffer record, then wake the
  // sleeper. Lock-free by design — interrupt context must not block.
  ctx.compute(kernel_.config().intr_service_cycles);
  if (payload >= mem::kKernelBase) {
    ctx.load(payload, 8);
    ctx.store(payload + 8, 8);
  }
  ctx.wakeup(payload);
}

void FileSystem::populate(const std::string& path,
                          std::span<const std::uint8_t> data) {
  core::SimContext setup;  // detached
  KMutex::Guard g(*fslock_, setup);
  Inode* inode = lookup(path);
  if (inode == nullptr) inode = create_locked(setup, path, data.size());
  const std::uint32_t bs = kernel_.config().fs_block_size;
  for (std::uint64_t off = 0; off < data.size(); off += bs) {
    const std::uint64_t n = std::min<std::uint64_t>(bs, data.size() - off);
    std::memcpy(inode->page_data(off / bs, bs), data.data() + off, n);
  }
  inode->size = data.size();
}

std::uint64_t FileSystem::file_size(const std::string& path) const {
  const auto it = names_.find(path);
  COMPASS_CHECK_MSG(it != names_.end(), "no such file: " << path);
  return it->second->size;
}

bool FileSystem::exists(const std::string& path) const {
  return names_.contains(path);
}

void FileSystem::ckpt_dump(util::StateSink& sink) const {
  const std::uint32_t bs = kernel_.config().fs_block_size;
  sink.varint(names_.size());
  for (const auto& [path, inode] : names_) {
    sink.str(path);
    sink.varint(inode->id);
    sink.varint(inode->size);
    sink.svarint(inode->disk);
    sink.varint(inode->first_block);
    sink.varint(inode->header_addr);
    // Platter contents as per-page digests: enough to prove the restored
    // run rebuilt byte-identical file data without storing it twice (the
    // pages are host-side state the warp re-creates).
    sink.varint(inode->pages.size());
    for (const auto& [page, data] : inode->pages) {
      sink.varint(page);
      sink.varint(util::fnv1a64({data->data(), data->size()}));
    }
  }
  sink.varint(next_inode_);
  sink.varint(lru_clock_);
  sink.varint(bufs_.size());
  for (const auto& buf : bufs_) {
    sink.varint(buf->key);
    sink.varint(buf->inode_id);
    sink.varint(buf->page);
    sink.varint(buf->header_addr);
    sink.varint(buf->data_addr);
    sink.u8(buf->valid ? 1 : 0);
    sink.u8(buf->dirty ? 1 : 0);
    sink.u8(buf->busy ? 1 : 0);
    sink.varint(buf->lru);
    sink.varint(buf->waiters.size());
    if (buf->valid)
      sink.varint(util::fnv1a64(
          {reinterpret_cast<const std::uint8_t*>(kernel_.mem().host(buf->data_addr)),
           bs}));
  }
  sink.varint(mappings_.size());
  for (const auto& [base, m] : mappings_) {
    sink.varint(base);
    sink.varint(m.inode_id);
    sink.varint(m.offset);
    sink.varint(m.len);
  }
  sink.varint(next_map_base_);
}

}  // namespace compass::os
