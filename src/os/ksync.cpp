#include "os/ksync.h"

namespace compass::os {

KMutex::KMutex(core::Backend* backend, core::WaitChannel channel)
    : channel_(channel) {
  if (backend != nullptr) backend->init_channel_permits(channel_, 1);
}

void KMutex::lock(core::SimContext& ctx) {
  if (!ctx.attached()) {
    native_mu_.lock();
    return;
  }
  // The atomic test&set of the lock word, then the (possibly blocking)
  // acquisition granted by the backend in event order.
  ctx.sync_ref(channel_, 8);
  ctx.block_on(channel_);
}

void KMutex::unlock(core::SimContext& ctx) {
  if (!ctx.attached()) {
    native_mu_.unlock();
    return;
  }
  ctx.sync_ref(channel_, 8);
  ctx.wakeup(channel_);
}

void KWaitQueue::sleep(core::SimContext& ctx, KMutex& guard) {
  if (ctx.attached()) {
    Waiter w;
    w.channel = proc_channel(ctx.proc());
    waiters_.push_back(w);
    guard.unlock(ctx);
    ctx.block_on(w.channel);
    guard.lock(ctx);
  } else {
    NativeWaiter native;
    Waiter w;
    w.native = &native;
    waiters_.push_back(w);
    guard.unlock(ctx);
    {
      std::unique_lock l(native.m);
      native.cv.wait(l, [&] { return native.signaled; });
    }
    guard.lock(ctx);
  }
}

void KWaitQueue::wake_one(core::SimContext& ctx) {
  if (waiters_.empty()) return;
  const Waiter w = waiters_.front();
  waiters_.pop_front();
  if (w.native != nullptr) {
    std::lock_guard l(w.native->m);
    w.native->signaled = true;
    w.native->cv.notify_one();
  } else {
    ctx.wakeup(w.channel);
  }
}

void KWaitQueue::wake_all(core::SimContext& ctx) {
  while (!waiters_.empty()) wake_one(ctx);
}

void KWaitQueue::register_channel(core::WaitChannel ch) {
  Waiter w;
  w.channel = ch;
  waiters_.push_back(w);
}

void KWaitQueue::remove_channel(core::WaitChannel ch) {
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    if (it->native == nullptr && it->channel == ch)
      it = waiters_.erase(it);
    else
      ++it;
  }
}

}  // namespace compass::os
