#include "os/os_server.h"

#include "os/backend_os.h"
#include "os/syscall.h"

namespace compass::os {

namespace {

/// Category-2 routing: translate the syscall into a kBackendCall event.
std::int64_t route_backend_call(core::SimContext& ctx, Kernel& kernel, Sys sys,
                                std::span<const std::int64_t> args) {
  auto a = [&](std::size_t i) -> std::uint64_t {
    return i < args.size() ? static_cast<std::uint64_t>(args[i]) : 0;
  };
  switch (sys) {
    case Sys::kShmget: {
      const std::int64_t segid = ctx.backend_call(
          static_cast<std::uint64_t>(BackendCall::kShmget), a(0), a(1));
      if (segid >= 0) kernel.note_shm_size(segid, a(1));
      return segid;
    }
    case Sys::kShmat: {
      const std::int64_t base = ctx.backend_call(
          static_cast<std::uint64_t>(BackendCall::kShmat), a(0));
      if (base > 0)
        kernel.ensure_shm_host(static_cast<std::int64_t>(a(0)),
                               static_cast<Addr>(base));
      return base;
    }
    case Sys::kShmdt:
      return ctx.backend_call(static_cast<std::uint64_t>(BackendCall::kShmdt),
                              a(0));
    case Sys::kSchedYield:
      return ctx.backend_call(
          static_cast<std::uint64_t>(BackendCall::kSchedYield));
    default:
      COMPASS_CHECK_MSG(false, "not a category-2 call: " << to_string(sys));
  }
  return -1;
}

}  // namespace

OsServer::OsServer(const OsServerConfig& cfg, core::Backend& backend,
                   Kernel& kernel)
    : cfg_(cfg), backend_(backend), kernel_(kernel) {
  const int bhs = cfg_.num_bottom_halves < 0 ? backend.config().num_cpus
                                             : cfg_.num_bottom_halves;
  for (int i = 0; i < bhs; ++i) {
    auto runner = std::make_unique<BhRunner>();
    runner->proc = backend_.add_bottom_half("bh" + std::to_string(i));
    runner->ctx = std::make_unique<core::SimContext>(
        backend_.communicator().port(runner->proc), ExecMode::kKernel,
        cfg_.ctx_opts);
    bh_by_proc_[runner->proc] = runner.get();
    bh_runners_.push_back(std::move(runner));
  }
  if (cfg_.start_netd) {
    netd_ = std::make_unique<core::Frontend>(backend_, "netd", cfg_.ctx_opts,
                                             core::Frontend::Kind::kDaemon);
    netd_->context().set_interrupt_hook([this](core::SimContext& c) {
      kernel_.handle_irqs(c, c.cpu());
    });
  }
}

OsServer::~OsServer() { stop(); }

void OsServer::attach_client(core::Frontend& frontend) {
  COMPASS_CHECK_MSG(!started_, "attach_client must precede start()");
  auto t = std::make_unique<OsThread>();
  t->port = std::make_unique<OsPort>(backend_.communicator().throttle());
  OsPort* port = t->port.get();
  threads_.push_back(std::move(t));

  const ProcId proc = frontend.id();
  // Per-client connection state lives with the router closure (the stub
  // library's "companion OS thread" binding).
  auto connected = std::make_shared<bool>(false);

  frontend.context().set_oscall_router(
      [this, port, proc, connected](core::SimContext& ctx, std::uint32_t sysno,
                                    std::span<const std::int64_t> args)
          -> std::int64_t {
        const Sys sys = static_cast<Sys>(sysno);
        if (is_backend_call(sys))
          return route_backend_call(ctx, kernel_, sys, args);
        if (!*connected) {
          OsRequest c;
          c.kind = OsRequest::Kind::kConnect;
          c.proc = proc;
          c.time = ctx.time();
          const OsResponse resp = port->call(c);
          if (resp.aborted) throw core::SimAbortedError();
          *connected = true;
        }
        ctx.os_enter(sysno);
        OsRequest r;
        r.kind = OsRequest::Kind::kCall;
        r.proc = proc;
        r.cpu = ctx.cpu();
        r.sysno = sysno;
        r.time = ctx.time();
        r.nargs = static_cast<int>(std::min<std::size_t>(args.size(), 6));
        for (int i = 0; i < r.nargs; ++i) r.args[static_cast<std::size_t>(i)] = args[i];
        const OsResponse resp = port->call(r);
        if (resp.aborted) throw core::SimAbortedError();
        ctx.set_time(resp.time);
        ctx.os_exit();
        return resp.retval;
      });

  // User-mode pseudo interrupt forwarding (paper §3.2). An interrupt can
  // arrive before the process ever made an OS call, so the hook performs
  // the connection handshake too.
  frontend.context().set_interrupt_hook(
      [port, proc, connected](core::SimContext& ctx) {
        if (!*connected) {
          OsRequest c;
          c.kind = OsRequest::Kind::kConnect;
          c.proc = proc;
          c.time = ctx.time();
          const OsResponse conn = port->call(c);
          if (conn.aborted) throw core::SimAbortedError();
          *connected = true;
        }
        OsRequest r;
        r.kind = OsRequest::Kind::kPseudoIrq;
        r.proc = proc;
        r.cpu = ctx.cpu();
        r.time = ctx.time();
        const OsResponse resp = port->call(r);
        if (resp.aborted) throw core::SimAbortedError();
        ctx.set_time(resp.time);
      });
}

void OsServer::start() {
  COMPASS_CHECK_MSG(!started_, "OsServer already started");
  started_ = true;
  for (auto& t : threads_)
    t->thread = std::thread([this, raw = t.get()] { os_thread_main(*raw); });
  for (auto& r : bh_runners_)
    r->thread = std::thread([this, raw = r.get()] { bh_main(*raw); });
  if (netd_ != nullptr)
    netd_->start([this](core::SimContext& ctx) { kernel_.net().netd_body(ctx); });
}

void OsServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& t : threads_) t->port->close();
  for (auto& r : bh_runners_) {
    {
      std::lock_guard lock(r->mu);
      r->stop = true;
    }
    r->cv.notify_one();
  }
  for (auto& t : threads_)
    if (t->thread.joinable()) t->thread.join();
  for (auto& r : bh_runners_)
    if (r->thread.joinable()) r->thread.join();
  if (netd_ != nullptr) netd_->join();
}

int OsServer::paired_threads() const {
  std::lock_guard lock(pair_mu_);
  int n = 0;
  for (const auto& t : threads_)
    if (t->paired != kNoProc) ++n;
  return n;
}

void OsServer::os_thread_main(OsThread& t) {
  for (;;) {
    OsRequest req;
    if (!t.port->wait_request(&req)) return;  // server shutdown
    core::HostThrottle::Hold hold(backend_.communicator().throttle());
    switch (req.kind) {
      case OsRequest::Kind::kConnect: {
        {
          std::lock_guard lock(pair_mu_);
          t.paired = req.proc;
        }
        // The OS thread adopts the application's event port: its kernel
        // references are simulated on the same (virtual) CPU.
        t.ctx = std::make_unique<core::SimContext>(
            backend_.communicator().port(req.proc), ExecMode::kKernel,
            cfg_.ctx_opts);
        t.ctx->set_interrupt_hook([this](core::SimContext& c) {
          kernel_.handle_irqs(c, c.cpu());
        });
        t.port->respond(OsResponse{0, req.time, false});
        break;
      }
      case OsRequest::Kind::kCall: {
        COMPASS_CHECK_MSG(t.ctx != nullptr, "kCall before kConnect");
        OsResponse resp;
        try {
          t.ctx->set_time(req.time);
          resp.retval = kernel_.syscall(
              *t.ctx, req.proc, req.sysno,
              std::span<const std::int64_t>(req.args.data(),
                                            static_cast<std::size_t>(req.nargs)));
          t.ctx->flush();
          resp.time = t.ctx->time();
        } catch (const core::SimAbortedError&) {
          resp.aborted = true;
        }
        t.port->respond(resp);
        break;
      }
      case OsRequest::Kind::kPseudoIrq: {
        COMPASS_CHECK_MSG(t.ctx != nullptr, "kPseudoIrq before kConnect");
        OsResponse resp;
        try {
          t.ctx->set_time(req.time);
          kernel_.handle_irqs(*t.ctx, req.cpu);
          t.ctx->flush();
          resp.time = t.ctx->time();
        } catch (const core::SimAbortedError&) {
          resp.aborted = true;
        }
        t.port->respond(resp);
        break;
      }
      case OsRequest::Kind::kDisconnect: {
        {
          std::lock_guard lock(pair_mu_);
          t.paired = kNoProc;
        }
        t.ctx.reset();
        t.port->respond(OsResponse{});
        break;
      }
    }
  }
}

void OsServer::bh_main(BhRunner& r) {
  for (;;) {
    BhRunner::Item item{};
    {
      std::unique_lock lock(r.mu);
      r.cv.wait(lock, [&r] { return r.stop || !r.work.empty(); });
      if (r.stop && r.work.empty()) return;
      item = r.work.front();
      r.work.erase(r.work.begin());
    }
    core::HostThrottle::Hold hold(backend_.communicator().throttle());
    try {
      r.ctx->set_time(item.when);
      kernel_.handle_irqs(*r.ctx, item.cpu);
      r.ctx->flush();
    } catch (const core::SimAbortedError&) {
      // Shutdown while servicing; keep draining work items until stop.
    }
  }
}

void OsServer::dispatch_idle_irq(CpuId cpu, ProcId bh_proc, Cycles when) {
  const auto it = bh_by_proc_.find(bh_proc);
  COMPASS_CHECK_MSG(it != bh_by_proc_.end(),
                    "idle irq dispatched to unknown bottom half " << bh_proc);
  BhRunner& r = *it->second;
  {
    std::lock_guard lock(r.mu);
    r.work.push_back(BhRunner::Item{cpu, when});
  }
  r.cv.notify_one();
}

}  // namespace compass::os
