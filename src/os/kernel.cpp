#include "os/kernel.h"

#include <algorithm>
#include <optional>

#include "core/ckpt_hook.h"
#include "core/warp_hub.h"
#include "mem/mem_config.h"
#include "os/backend_os.h"
#include "os/fs.h"
#include "os/tcpip.h"

namespace compass::os {

namespace {
/// Kernel channel ids live in their own namespace below the per-proc range.
constexpr core::WaitChannel kKernelChannelBase = 0xD000'0000'0000'0000ull;
}  // namespace

Kernel::Kernel(const KernelConfig& cfg, core::Backend* backend,
               mem::AddressMap& mem, dev::DeviceHub* devices)
    : cfg_(cfg),
      backend_(backend),
      mem_(mem),
      devices_(devices),
      next_channel_(kKernelChannelBase) {
  kmem_ = std::make_unique<mem::Arena>("kmem", mem::kKernelBase, cfg_.kmem_bytes);
  mem_.add(*kmem_);
  semlock_ = std::make_unique<KMutex>(backend_, new_channel());
  fs_ = std::make_unique<FileSystem>(*this);
  net_ = std::make_unique<TcpIp>(*this);
}

Kernel::~Kernel() {
  // Subsystems unregister their arenas first (fs mmaps reference mem_).
  fs_.reset();
  net_.reset();
  for (auto& [_, arena] : shm_arenas_) mem_.remove(*arena);
  mem_.remove(*kmem_);
}

Addr Kernel::kalloc(core::SimContext& ctx, std::size_t size, std::size_t align) {
  ctx.compute(40);  // allocator freelist walk
  return kmem_->alloc(size, align);
}

void Kernel::kfree(core::SimContext& ctx, Addr addr, std::size_t size) {
  ctx.compute(25);
  kmem_->free(addr, size);
}

core::WaitChannel Kernel::new_channel() {
  return next_channel_.fetch_add(64, std::memory_order_relaxed);
}

std::string Kernel::copy_path(core::SimContext& ctx, Addr addr,
                              std::uint64_t len) {
  COMPASS_CHECK_MSG(len < 4096, "path too long");
  // copyinstr: the kernel reads the user buffer.
  mem::sim_scan(ctx, mem_, addr, len, 1, 64);
  const auto* host = reinterpret_cast<const char*>(mem_.host(addr));
  return std::string(host, len);
}

std::int64_t Kernel::fd_alloc(ProcId proc, FdEntry::Kind kind,
                              std::uint64_t obj, std::uint64_t flags) {
  std::lock_guard lock(fd_mu_);
  auto& table = fd_tables_[proc];
  if (table.empty()) table.resize(static_cast<std::size_t>(cfg_.max_fds));
  for (std::size_t fd = 3; fd < table.size(); ++fd) {  // 0-2 reserved
    if (table[fd].kind == FdEntry::Kind::kFree) {
      table[fd] = FdEntry{kind, obj, 0, flags};
      return static_cast<std::int64_t>(fd);
    }
  }
  return -kEMFILE;
}

FdEntry* Kernel::fd_get(ProcId proc, std::int64_t fd) {
  std::lock_guard lock(fd_mu_);
  const auto it = fd_tables_.find(proc);
  if (it == fd_tables_.end()) return nullptr;
  if (fd < 0 || static_cast<std::size_t>(fd) >= it->second.size()) return nullptr;
  FdEntry& e = it->second[static_cast<std::size_t>(fd)];
  return e.kind == FdEntry::Kind::kFree ? nullptr : &e;
}

void Kernel::fd_close(ProcId proc, std::int64_t fd) {
  std::lock_guard lock(fd_mu_);
  const auto it = fd_tables_.find(proc);
  if (it == fd_tables_.end()) return;
  if (fd < 0 || static_cast<std::size_t>(fd) >= it->second.size()) return;
  it->second[static_cast<std::size_t>(fd)] = FdEntry{};
}

void Kernel::note_shm_size(std::int64_t segid, std::uint64_t size) {
  std::lock_guard lock(shm_mu_);
  shm_sizes_.emplace(segid, size);
}

void Kernel::ensure_shm_host(std::int64_t segid, Addr base) {
  std::lock_guard lock(shm_mu_);
  if (shm_arenas_.contains(segid)) return;
  const auto it = shm_sizes_.find(segid);
  COMPASS_CHECK_MSG(it != shm_sizes_.end(),
                    "shmat of segment " << segid << " before shmget");
  auto arena = std::make_unique<mem::Arena>("shm" + std::to_string(segid),
                                            base, it->second);
  mem_.add(*arena);
  shm_arenas_.emplace(segid, std::move(arena));
}

void Kernel::handle_irqs(core::SimContext& ctx, CpuId cpu) {
  COMPASS_CHECK_MSG(backend_ != nullptr, "interrupts need a backend");
  core::CpuState& cs = backend_->communicator().cpu_state(cpu);
  core::CkptHook* ck = backend_->ckpt_hook();
  ctx.irq_enter(0);
  const ExecMode saved = ctx.mode();
  ctx.set_mode(ExecMode::kInterrupt);
  for (;;) {
    std::optional<core::IrqDesc> d;
    if (core::WarpHub* hub = backend_->communicator().warp_hub();
        hub == nullptr || !hub->warp_pop(ctx.proc(), cpu, d)) {
      // Each successful pop mutates the CPU's interrupt queue from this
      // host thread, exactly between two of its event posts; the trace
      // records the pop at that stream position so replay can redo it.
      // During a self-serve warp the hub serves the pop from the proc's
      // shard instead (the live queue is fed by the decoupled walk, which
      // also emits the matching trace records at their recorded positions).
      d = cs.pop();
      if (d.has_value() && trace_ != nullptr)
        trace_->on_irq_pop(ctx.proc(), cpu);
    }
    if (!d.has_value()) break;
    if (ck != nullptr) ck->on_irq_pop(ctx.proc(), cpu, *d);
    switch (d->irq) {
      case core::Irq::kTimer:
        // Timekeeping: bump the tick count, scan the callout list head.
        ctx.compute(cfg_.intr_service_cycles);
        ctx.load(mem::kKernelBase, 8);
        ctx.store(mem::kKernelBase, 8);
        break;
      case core::Irq::kDisk:
        fs_->disk_intr(ctx, d->payload);
        break;
      case core::Irq::kEthernetRx:
        net_->rx_intr(ctx, d->payload);
        break;
      case core::Irq::kEthernetTx:
        net_->tx_intr(ctx, d->payload);
        break;
      case core::Irq::kIpi:
      case core::Irq::kCount:
        break;
    }
  }
  ctx.set_mode(saved);
  ctx.irq_exit();
}

std::int64_t Kernel::sys_sem(core::SimContext& ctx, ProcId proc, Sys sys,
                             std::span<const std::int64_t> args) {
  (void)proc;
  KMutex::Guard g(*semlock_, ctx);
  const std::int64_t id = args[0];
  switch (sys) {
    case Sys::kSemInit: {
      // Create-if-absent (semget semantics): a second initializer must not
      // reset the count and lose posted V's.
      const auto [it, inserted] = sems_.try_emplace(id);
      if (inserted) it->second.count = args[1];
      return 0;
    }
    case Sys::kSemP: {
      auto it = sems_.find(id);
      if (it == sems_.end()) return -kEINVAL;
      while (it->second.count == 0) {
        it->second.waiters.sleep(ctx, *semlock_);
        if (ctx.aborted()) return -kEINVAL;
        it = sems_.find(id);
        if (it == sems_.end()) return -kEINVAL;
      }
      --it->second.count;
      return 0;
    }
    case Sys::kSemV: {
      const auto it = sems_.find(id);
      if (it == sems_.end()) return -kEINVAL;
      ++it->second.count;
      it->second.waiters.wake_one(ctx);
      return 0;
    }
    default:
      return -kEINVAL;
  }
}

std::int64_t Kernel::sys_usleep(core::SimContext& ctx, ProcId proc,
                                Cycles delay) {
  if (!ctx.attached()) return 0;  // native: sleeping wastes no simulated time
  const core::WaitChannel ch = proc_channel(proc);
  ctx.backend_call(static_cast<std::uint64_t>(BackendCall::kTimerArm), delay, ch);
  ctx.block_on(ch);
  return 0;
}

std::int64_t Kernel::syscall(core::SimContext& ctx, ProcId proc,
                             std::uint32_t sysno,
                             std::span<const std::int64_t> args) {
  const Sys sys = static_cast<Sys>(sysno);
  COMPASS_CHECK_MSG(!is_backend_call(sys),
                    "category-2 call " << to_string(sys)
                                       << " routed to the OS server");
  ctx.compute(cfg_.syscall_dispatch_cycles);
  auto arg = [&](std::size_t i) -> std::int64_t {
    return i < args.size() ? args[i] : 0;
  };
  auto uarg = [&](std::size_t i) { return static_cast<std::uint64_t>(arg(i)); };

  // Fault plane: transient failures at dispatch, restricted to the
  // restartable data-path calls (never the blocking rendezvous calls, whose
  // wakeup choreography must not be skipped, and never close). Drawn from
  // the caller's per-process stream — a process's oscalls are serial, so
  // the draw sequence is deterministic.
  if (injector_ != nullptr) {
    const bool restartable =
        sys == Sys::kOpen || sys == Sys::kCreat || sys == Sys::kStatx ||
        sys == Sys::kRead || sys == Sys::kWrite || sys == Sys::kReadv ||
        sys == Sys::kWritev || sys == Sys::kSend || sys == Sys::kRecv;
    if (restartable) {
      switch (injector_->draw_oscall(proc)) {
        case fault::OscallFault::kNone: break;
        case fault::OscallFault::kEintr: return -kEINTR;
        case fault::OscallFault::kEnomem: return -kENOMEM;
        case fault::OscallFault::kEio: return -kEIO;
      }
    }
  }

  switch (sys) {
    case Sys::kOpen:
      return fs_->open(ctx, proc, copy_path(ctx, uarg(0), uarg(1)), uarg(2));
    case Sys::kCreat:
      return fs_->creat(ctx, proc, copy_path(ctx, uarg(0), uarg(1)), uarg(2));
    case Sys::kStatx:
      return fs_->statx(ctx, copy_path(ctx, uarg(0), uarg(1)));
    case Sys::kUnlink:
      return fs_->unlink(ctx, copy_path(ctx, uarg(0), uarg(1)));
    case Sys::kClose: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr) return -kEBADF;
      std::int64_t rv = 0;
      if (e->kind == FdEntry::Kind::kSocket)
        rv = net_->sys_sockclose(ctx, e->obj);
      fd_close(proc, arg(0));
      return rv;
    }
    case Sys::kRead:
    case Sys::kWrite: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr) return -kEBADF;
      if (e->kind == FdEntry::Kind::kSocket) {
        return sys == Sys::kRead
                   ? net_->sys_recv(ctx, proc, e->obj, uarg(1), uarg(2))
                   : net_->sys_send(ctx, e->obj, uarg(1), uarg(2));
      }
      const bool direct = (e->flags & kOpenDirect) != 0;
      const std::int64_t n =
          sys == Sys::kRead
              ? fs_->read(ctx, e->obj, e->offset, uarg(1), uarg(2), direct)
              : fs_->write(ctx, e->obj, e->offset, uarg(1), uarg(2), direct);
      if (n > 0) e->offset += static_cast<std::uint64_t>(n);
      return n;
    }
    case Sys::kReadv:
    case Sys::kWritev: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr) return -kEBADF;
      const Addr iov_addr = uarg(1);
      const std::uint64_t iovcnt = uarg(2);
      std::int64_t total = 0;
      for (std::uint64_t i = 0; i < iovcnt; ++i) {
        const auto iov = mem::sim_read<KIovec>(ctx, mem_,
                                               iov_addr + i * sizeof(KIovec));
        std::int64_t n = 0;
        if (e->kind == FdEntry::Kind::kSocket) {
          n = sys == Sys::kReadv
                  ? net_->sys_recv(ctx, proc, e->obj, iov.base, iov.len)
                  : net_->sys_send(ctx, e->obj, iov.base, iov.len);
        } else {
          const bool direct = (e->flags & kOpenDirect) != 0;
          n = sys == Sys::kReadv
                  ? fs_->read(ctx, e->obj, e->offset, iov.base, iov.len, direct)
                  : fs_->write(ctx, e->obj, e->offset, iov.base, iov.len, direct);
          if (n > 0) e->offset += static_cast<std::uint64_t>(n);
        }
        if (n < 0) return total > 0 ? total : n;
        total += n;
        if (static_cast<std::uint64_t>(n) < iov.len) break;  // short transfer
      }
      return total;
    }
    case Sys::kLseek: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kFile) return -kEBADF;
      Inode* inode = fs_->inode_by_id(e->obj);
      if (inode == nullptr) return -kEBADF;
      switch (arg(2)) {
        case 0: e->offset = uarg(1); break;
        case 1: e->offset += uarg(1); break;
        case 2: e->offset = inode->size + uarg(1); break;
        default: return -kEINVAL;
      }
      return static_cast<std::int64_t>(e->offset);
    }
    case Sys::kFsync: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kFile) return -kEBADF;
      return fs_->fsync(ctx, e->obj);
    }
    case Sys::kMmap: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kFile) return -kEBADF;
      return fs_->mmap(ctx, proc, e->obj, uarg(1), uarg(2));
    }
    case Sys::kMunmap:
      return fs_->munmap(ctx, uarg(0));
    case Sys::kMsync:
      return fs_->msync(ctx, uarg(0));

    case Sys::kSocket:
      return net_->sys_socket(ctx, proc);
    case Sys::kBind: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      return net_->sys_bind(ctx, e->obj, static_cast<std::uint16_t>(uarg(1)));
    }
    case Sys::kListen: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      return net_->sys_listen(ctx, e->obj, static_cast<int>(arg(1)));
    }
    case Sys::kNaccept: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      return net_->sys_naccept(ctx, proc, e->obj);
    }
    case Sys::kConnect: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      return net_->sys_connect(ctx, e->obj, static_cast<std::uint16_t>(uarg(1)));
    }
    case Sys::kSend: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      return net_->sys_send(ctx, e->obj, uarg(1), uarg(2));
    }
    case Sys::kRecv: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      return net_->sys_recv(ctx, proc, e->obj, uarg(1), uarg(2));
    }
    case Sys::kSelect:
      return net_->sys_select(ctx, proc, uarg(0), uarg(1));
    case Sys::kSockClose: {
      FdEntry* e = fd_get(proc, arg(0));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      const std::int64_t rv = net_->sys_sockclose(ctx, e->obj);
      fd_close(proc, arg(0));
      return rv;
    }

    case Sys::kSemInit:
    case Sys::kSemP:
    case Sys::kSemV:
      return sys_sem(ctx, proc, sys, args);
    case Sys::kGetpid:
      return proc;
    case Sys::kUsleep:
      return sys_usleep(ctx, proc, uarg(0));

    default:
      COMPASS_CHECK_MSG(false, "unimplemented syscall " << sysno);
  }
  return -kEINVAL;
}

void Kernel::ckpt_dump(util::StateSink& sink) {
  {
    std::lock_guard lock(fd_mu_);
    sink.varint(fd_tables_.size());
    for (const auto& [proc, table] : fd_tables_) {
      sink.varint(static_cast<std::uint64_t>(proc));
      sink.varint(table.size());
      for (const FdEntry& e : table) {
        sink.u8(static_cast<std::uint8_t>(e.kind));
        sink.varint(e.obj);
        sink.varint(e.offset);
        sink.varint(e.flags);
      }
    }
  }
  sink.varint(next_channel_.load(std::memory_order_relaxed));
  // Semaphores: quiescence means no OS thread holds semlock_, so host
  // reads are race-free without taking it.
  sink.varint(sems_.size());
  for (const auto& [id, sem] : sems_) {
    sink.svarint(id);
    sink.svarint(sem.count);
    sink.varint(sem.waiters.size());
  }
  {
    std::lock_guard lock(shm_mu_);
    sink.varint(shm_sizes_.size());
    for (const auto& [segid, size] : shm_sizes_) {
      sink.svarint(segid);
      sink.varint(size);
    }
  }
  sink.varint(kmem_->bytes_in_use());
  fs_->ckpt_dump(sink);
  net_->ckpt_dump(sink);
}

}  // namespace compass::os
