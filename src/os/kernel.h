// The simulated AIX-like kernel serviced by the OS server.
//
// Category-1 OS functions are implemented here as real C++ code operating
// on kernel data structures allocated in a kernel-address-space arena; the
// code runs under an attached SimContext, so every touch of a buffer
// header, mbuf or inode emits kernel-mode memory events — the memory access
// behaviour of these OS functions is "captured and simulated" as §3 of the
// paper requires. The same code runs detached for native (raw) runs.
//
// The kernel is shared by all OS threads and bottom-half runners; all
// shared state is guarded by KMutexes (deterministic, backend-granted sleep
// locks) and interrupt handlers touch only lock-free structures.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/sim_context.h"
#include "dev/device_hub.h"
#include "fault/fault_injector.h"
#include "mem/arena.h"
#include "os/ksync.h"
#include "os/syscall.h"

namespace compass::os {

class FileSystem;
class TcpIp;

struct KernelConfig {
  std::size_t kmem_bytes = 64ull << 20;     ///< kernel heap arena size
  std::size_t buffer_cache_buffers = 256;   ///< buffer cache capacity
  std::uint32_t fs_block_size = 4096;
  std::size_t mbuf_count = 4096;
  std::uint32_t mbuf_data = 1024;           ///< payload bytes per mbuf
  int max_fds = 256;                        ///< per-process fd limit
  /// Fixed kernel path work per syscall dispatch (table lookup etc.).
  Cycles syscall_dispatch_cycles = 80;
  /// Per-64B checksum compute in the TCP/IP stack.
  Cycles checksum_per_chunk = 4;
  /// Interrupt-handler bookkeeping cycles (iodone / rx ring service /
  /// timer callout processing). AIX-era first-level handlers plus their
  /// off-level processing ran thousands of cycles.
  Cycles intr_service_cycles = 2'000;
};

/// One open-file-table entry.
struct FdEntry {
  enum class Kind : std::uint8_t { kFree, kFile, kSocket };
  Kind kind = Kind::kFree;
  std::uint64_t obj = 0;   ///< inode id or socket id
  std::uint64_t offset = 0;
  std::uint64_t flags = 0; ///< kOpenDirect etc.
};

class Kernel {
 public:
  /// `backend` may be null for native-only use (raw runs): no devices, no
  /// channels — all I/O completes synchronously and locks are host locks.
  Kernel(const KernelConfig& cfg, core::Backend* backend,
         mem::AddressMap& mem, dev::DeviceHub* devices);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- OS-call service (OS threads / native threads) ---------------------

  std::int64_t syscall(core::SimContext& ctx, ProcId proc, std::uint32_t sysno,
                       std::span<const std::int64_t> args);

  // ---- interrupt dispatch (OS threads, bottom halves) ---------------------

  /// Drain and service the pending interrupts of `cpu`: the handler
  /// dispatch loop of §3.2 (kIrqEnter … handlers … kIrqExit).
  void handle_irqs(core::SimContext& ctx, CpuId cpu);

  /// Optional event-trace tap: records each interrupt-descriptor pop the
  /// handler loop performs (host-side queue mutations replay must redo).
  void set_trace_sink(core::TraceSink* sink) { trace_ = sink; }

  // ---- infrastructure for kernel subsystems -------------------------------

  const KernelConfig& config() const { return cfg_; }
  core::Backend* backend() { return backend_; }
  dev::DeviceHub* devices() { return devices_; }
  mem::AddressMap& mem() { return mem_; }
  mem::Arena& kmem() { return *kmem_; }
  FileSystem& fs() { return *fs_; }
  TcpIp& net() { return *net_; }
  bool simulating() const { return backend_ != nullptr; }

  /// Attach the fault plane (null = no injection). Consulted at syscall
  /// dispatch for transient oscall failures and by the file system / TCP-IP
  /// for device and wire faults.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  fault::FaultInjector* fault_injector() { return injector_; }

  /// Allocate/free kernel memory, charging allocator path cycles.
  Addr kalloc(core::SimContext& ctx, std::size_t size, std::size_t align = 8);
  void kfree(core::SimContext& ctx, Addr addr, std::size_t size);

  /// Fresh unique wait-channel id inside the kernel channel namespace.
  core::WaitChannel new_channel();

  /// Copy a NUL-free path string out of user memory (copyinstr): emits
  /// kernel loads over the user buffer.
  std::string copy_path(core::SimContext& ctx, Addr addr, std::uint64_t len);

  // ---- fd tables -----------------------------------------------------------

  /// Allocate the lowest free fd for `proc`. Returns -EMFILE when full.
  std::int64_t fd_alloc(ProcId proc, FdEntry::Kind kind, std::uint64_t obj,
                        std::uint64_t flags = 0);
  FdEntry* fd_get(ProcId proc, std::int64_t fd);
  void fd_close(ProcId proc, std::int64_t fd);

  // ---- shared-segment host backing ----------------------------------------
  // The backend's Vm models the page tables; the host-side bytes of each
  // segment live in an arena created at first attach so workload code can
  // access them through the AddressMap.

  void note_shm_size(std::int64_t segid, std::uint64_t size);
  void ensure_shm_host(std::int64_t segid, Addr base);

  /// Serialize kernel bookkeeping (fd tables, semaphores, channel cursor,
  /// shm sizes) plus the file-system and TCP/IP dumps, in canonical order.
  /// Callable only at a quiescent dispatch point: no OS thread is inside a
  /// kernel critical section, so host-side reads need no KMutex.
  void ckpt_dump(util::StateSink& sink);

 private:
  std::int64_t sys_sem(core::SimContext& ctx, ProcId proc, Sys sys,
                       std::span<const std::int64_t> args);
  std::int64_t sys_usleep(core::SimContext& ctx, ProcId proc, Cycles delay);

  KernelConfig cfg_;
  core::Backend* backend_;
  core::TraceSink* trace_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  mem::AddressMap& mem_;
  dev::DeviceHub* devices_;
  std::unique_ptr<mem::Arena> kmem_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<TcpIp> net_;

  std::mutex fd_mu_;  // host-level guard; fd tables are per-proc serial
  std::map<ProcId, std::vector<FdEntry>> fd_tables_;

  std::atomic<std::uint64_t> next_channel_;

  struct Sem {
    std::int64_t count = 0;
    KWaitQueue waiters;
  };
  std::unique_ptr<KMutex> semlock_;
  std::map<std::int64_t, Sem> sems_;

  std::mutex shm_mu_;
  std::map<std::int64_t, std::uint64_t> shm_sizes_;
  std::map<std::int64_t, std::unique_ptr<mem::Arena>> shm_arenas_;
};

}  // namespace compass::os
