// Category-2 OS functions modeled inside the backend (paper §3.3).
//
// "We do not simulate these functions in detail... However, we attempt to
// model the resulting effect of these functions on the application's memory
// behavior fairly accurately." Shared-memory segment management updates the
// backend's page-table models (Vm); timer arming schedules wakeup tasks in
// the global event scheduler.
#pragma once

#include "core/backend.h"
#include "core/memory_system.h"
#include "mem/vm.h"

namespace compass::os {

/// Call selector in kBackendCall arg[0].
enum class BackendCall : std::uint64_t {
  kShmget = 1,   ///< (key, size) -> segid
  kShmat,        ///< (segid) -> base address
  kShmdt,        ///< (segid) -> 0
  kTimerArm,     ///< (delay_cycles, channel): wakeup(channel) after delay
  kSchedYield,   ///< () hint; modeled as a no-op
  /// Reset the per-CPU time breakdown: experiment harnesses call this after
  /// workload setup so Table-1-style shares measure steady state only.
  kResetBreakdown,
};

class BackendOs : public core::BackendCallHandler {
 public:
  BackendOs(mem::Vm& vm) : vm_(vm) {}

  void bind(core::Backend& backend) { backend_ = &backend; }

  std::int64_t backend_call(ProcId proc, CpuId cpu, Cycles now,
                            std::span<const std::uint64_t, 4> args) override;

 private:
  mem::Vm& vm_;
  core::Backend* backend_ = nullptr;
};

}  // namespace compass::os
