// The OS port (paper Figure 2): the IPC mailbox through which an
// application process sends OS-call requests (and pseudo interrupt
// requests, §3.2) to its paired OS thread.
//
// One request in flight: the application halts until the OS thread sends
// the result back, exactly as in the paper ("The application process then
// halts... The OS thread returns the OS call by sending the result and/or
// the error code back to the application process").
#pragma once

#include <array>
#include <condition_variable>
#include <mutex>

#include "core/host_throttle.h"
#include "core/types.h"
#include "util/check.h"

namespace compass::os {

struct OsRequest {
  enum class Kind : std::uint8_t {
    kConnect,    ///< bind this OS thread to the requesting process
    kCall,       ///< service an OS call
    kPseudoIrq,  ///< run the interrupt handlers for the process's CPU
    kDisconnect, ///< process exited; thread becomes "single" again
  };
  Kind kind = Kind::kCall;
  ProcId proc = kNoProc;
  CpuId cpu = kNoCpu;
  std::uint32_t sysno = 0;
  Cycles time = 0;  ///< execution-time handoff to the OS thread
  std::array<std::int64_t, 6> args{};
  int nargs = 0;
};

struct OsResponse {
  std::int64_t retval = 0;
  Cycles time = 0;  ///< execution-time handoff back to the process
  bool aborted = false;
};

class OsPort {
 public:
  explicit OsPort(core::HostThrottle& throttle) : throttle_(throttle) {}

  OsPort(const OsPort&) = delete;
  OsPort& operator=(const OsPort&) = delete;

  /// Application side: send a request and block for the response. Gives up
  /// the host permit while waiting (on the paper's SMP host the OS server
  /// runs on another processor meanwhile).
  OsResponse call(const OsRequest& req) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return aborted_response();
      COMPASS_CHECK_MSG(state_ == State::kIdle, "OS port busy (double call)");
      request_ = req;
      state_ = State::kRequested;
    }
    cv_.notify_all();
    throttle_.release();
    OsResponse out;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return state_ == State::kResponded || closed_; });
      if (state_ == State::kResponded) {
        out = response_;
        state_ = State::kIdle;
      } else {
        out = aborted_response();
      }
    }
    throttle_.acquire();
    return out;
  }

  /// OS-thread side: wait for the next request. Returns false when the
  /// port is closed (server shutdown). The OS thread holds no host permit
  /// while "single"/waiting.
  bool wait_request(OsRequest* out) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return state_ == State::kRequested || closed_; });
    if (state_ != State::kRequested) return false;
    *out = request_;
    state_ = State::kServing;
    return true;
  }

  /// OS-thread side: complete the in-flight request.
  void respond(const OsResponse& resp) {
    {
      std::lock_guard lock(mu_);
      COMPASS_CHECK_MSG(state_ == State::kServing, "respond with no request");
      response_ = resp;
      state_ = State::kResponded;
    }
    cv_.notify_all();
  }

  /// Shutdown: both sides unblock; future calls return aborted.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  enum class State { kIdle, kRequested, kServing, kResponded };

  static OsResponse aborted_response() {
    OsResponse r;
    r.aborted = true;
    return r;
  }

  core::HostThrottle& throttle_;
  std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kIdle;
  bool closed_ = false;
  OsRequest request_;
  OsResponse response_;
};

}  // namespace compass::os
