#include "os/backend_os.h"

namespace compass::os {

std::int64_t BackendOs::backend_call(ProcId proc, CpuId cpu, Cycles now,
                                     std::span<const std::uint64_t, 4> args) {
  (void)cpu;
  COMPASS_CHECK_MSG(backend_ != nullptr, "BackendOs not bound");
  switch (static_cast<BackendCall>(args[0])) {
    case BackendCall::kShmget:
      return vm_.shmget(args[1], args[2]);
    case BackendCall::kShmat:
      return vm_.shmat(proc, static_cast<std::int64_t>(args[1]));
    case BackendCall::kShmdt:
      return vm_.shmdt(proc, static_cast<std::int64_t>(args[1]));
    case BackendCall::kTimerArm: {
      const Cycles delay = args[1];
      const core::WaitChannel channel = args[2];
      backend_->scheduler().schedule_at(now + delay, [this, channel] {
        backend_->wakeup_channel(channel);
      });
      return 0;
    }
    case BackendCall::kSchedYield:
      return 0;
    case BackendCall::kResetBreakdown:
      backend_->time_breakdown().reset();
      return 0;
  }
  COMPASS_CHECK_MSG(false, "unknown backend call " << args[0]);
  return -1;
}

}  // namespace compass::os
