#include "os/tcpip.h"

#include <algorithm>
#include <cstring>

#include "os/kernel.h"

namespace compass::os {

std::uint32_t frame_checksum(std::span<const std::uint8_t> payload) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

std::vector<std::uint8_t> make_frame(const FrameHeader& h,
                                     std::span<const std::uint8_t> payload) {
  FrameHeader hdr = h;
  hdr.len = static_cast<std::uint32_t>(payload.size());
  hdr.csum = frame_checksum(payload);
  std::vector<std::uint8_t> frame(sizeof(FrameHeader) + payload.size());
  std::memcpy(frame.data(), &hdr, sizeof(hdr));
  if (!payload.empty())
    std::memcpy(frame.data() + sizeof(hdr), payload.data(), payload.size());
  return frame;
}

FrameHeader parse_frame(std::span<const std::uint8_t> frame) {
  COMPASS_CHECK_MSG(frame.size() >= sizeof(FrameHeader), "runt frame");
  FrameHeader h;
  std::memcpy(&h, frame.data(), sizeof(h));
  COMPASS_CHECK_MSG(sizeof(FrameHeader) + h.len <= frame.size(),
                    "frame length field exceeds frame");
  return h;
}

TcpIp::TcpIp(Kernel& kernel) : kernel_(kernel) {
  netlock_ = std::make_unique<KMutex>(kernel_.backend(), kernel_.new_channel());
  netisr_channel_ = kernel_.new_channel();
  core::SimContext setup;  // detached
  const auto& cfg = kernel_.config();
  for (std::size_t i = 0; i < cfg.mbuf_count; ++i)
    mbuf_freelist_.push_back(
        kernel_.kalloc(setup, 32 + cfg.mbuf_data, 64));
  rx_staging_ = kernel_.kalloc(setup, 64 * 1024, 64);
  if (kernel_.backend() != nullptr) {
    auto& stats = kernel_.backend()->stats();
    frames_in_ = &stats.counter("net.frames_in");
    frames_out_ = &stats.counter("net.frames_out");
    bytes_in_ = &stats.counter("net.bytes_in");
    bytes_out_ = &stats.counter("net.bytes_out");
  }
}

TcpIp::~TcpIp() = default;

TcpIp::Socket* TcpIp::sock(std::uint64_t id) {
  const auto it = sockets_.find(id);
  return it == sockets_.end() ? nullptr : it->second.get();
}

TcpIp::Socket* TcpIp::conn_sock(std::uint32_t conn) {
  const auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : sock(it->second);
}

Addr TcpIp::mbuf_alloc(core::SimContext& ctx) {
  COMPASS_CHECK_MSG(!mbuf_freelist_.empty(), "mbuf pool exhausted");
  const Addr addr = mbuf_freelist_.back();
  mbuf_freelist_.pop_back();
  // Touch the mbuf header (freelist unlink + init).
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), addr, 0);
  ctx.compute(15);
  return addr;
}

void TcpIp::mbuf_free(core::SimContext& ctx, Addr addr) {
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), addr, 0);
  ctx.compute(10);
  mbuf_freelist_.push_back(addr);
}

std::int64_t TcpIp::sys_socket(core::SimContext& ctx, ProcId proc) {
  KMutex::Guard g(*netlock_, ctx);
  auto s = std::make_unique<Socket>();
  s->id = next_sock_++;
  s->ctrl_addr = kernel_.kalloc(ctx, 128, 64);
  mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), s->ctrl_addr, s->id);
  ctx.compute(120);  // protocol control block setup
  const std::uint64_t id = s->id;
  sockets_.emplace(id, std::move(s));
  return kernel_.fd_alloc(proc, FdEntry::Kind::kSocket, id);
}

std::int64_t TcpIp::sys_bind(core::SimContext& ctx, std::uint64_t sockid,
                             std::uint16_t port) {
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  s->port = port;
  s->state = Socket::State::kBound;
  mem::sim_write<std::uint16_t>(ctx, kernel_.mem(), s->ctrl_addr + 16, port);
  return 0;
}

std::int64_t TcpIp::sys_listen(core::SimContext& ctx, std::uint64_t sockid,
                               int backlog) {
  (void)backlog;
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  if (s->state != Socket::State::kBound) return -kEINVAL;
  s->state = Socket::State::kListening;
  listeners_[s->port].push_back(s->id);
  mem::sim_write<std::uint8_t>(ctx, kernel_.mem(), s->ctrl_addr + 18, 1);
  return 0;
}

std::int64_t TcpIp::sys_naccept(core::SimContext& ctx, ProcId proc,
                                std::uint64_t sockid) {
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  if (s->state != Socket::State::kListening) return -kEINVAL;
  while (s->pending_accepts.empty()) {
    s->accepters.sleep(ctx, *netlock_);
    s = sock(sockid);
    if (s == nullptr || ctx.aborted()) return -kEBADF;
  }
  const std::uint64_t conn_sock_id = s->pending_accepts.front();
  s->pending_accepts.pop_front();
  ctx.compute(300);  // socket duplication, PCB insertion
  mem::sim_read<std::uint64_t>(ctx, kernel_.mem(), s->ctrl_addr);
  return kernel_.fd_alloc(proc, FdEntry::Kind::kSocket, conn_sock_id);
}

std::int64_t TcpIp::sys_connect(core::SimContext& ctx, std::uint64_t sockid,
                                std::uint16_t port) {
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  s->conn = next_conn_++;
  COMPASS_CHECK_MSG(s->conn < (1u << 16),
                    "outbound connection ids exhausted");
  s->state = Socket::State::kSynSent;
  conns_[s->conn] = s->id;
  FrameHeader h;
  h.conn = s->conn;
  h.port = port;
  h.flags = kFrameSyn;
  h.seq = s->tx_seq++;
  output_frame(ctx, h, {});
  while (s->state == Socket::State::kSynSent) {
    s->connecters.sleep(ctx, *netlock_);
    s = sock(sockid);
    if (s == nullptr || ctx.aborted()) return -kENOTCONN;
  }
  return s->state == Socket::State::kConnected ? 0 : -kENOTCONN;
}

void TcpIp::output_frame(core::SimContext& ctx, const FrameHeader& h,
                         std::span<const std::uint8_t> payload) {
  fault::FaultInjector* inj = kernel_.fault_injector();
  for (int attempt = 0;; ++attempt) {
    if (frames_out_ != nullptr) {
      frames_out_->inc();
      bytes_out_->inc(payload.size());
    }
    // IP/TCP header construction and checksum over the payload (already in
    // kernel mbufs at rx_staging_/mbuf addresses — modeled as a scan of the
    // staging area).
    ctx.compute(400);
    if (!payload.empty())
      mem::sim_scan(ctx, kernel_.mem(), rx_staging_, payload.size(),
                    kernel_.config().checksum_per_chunk);
    if (inj != nullptr && inj->draw_net_drop(attempt)) {
      // The NIC dropped the frame (tx ring overrun). The retransmit timer
      // fires after an exponentially growing backoff, then the whole
      // header-build + checksum path runs again. The drop happens before
      // the wire, so each frame still reaches the peer exactly once.
      ctx.compute(inj->plan().net_backoff_cycles << std::min(attempt, 8));
      continue;
    }
    std::vector<std::uint8_t> frame = make_frame(h, payload);
    if (kernel_.simulating() && kernel_.devices() != nullptr) {
      const std::uint64_t id =
          kernel_.devices()->ethernet().stage_tx(std::move(frame));
      ctx.dev_request(static_cast<std::uint64_t>(dev::DevOp::kEthTx), id, 0, 0);
    } else if (native_wire_) {
      native_wire_(std::move(frame));
    }
    if (inj != nullptr && attempt > 0)
      inj->count_recovered(fault::FaultKind::kNetDrop);
    return;
  }
}

std::int64_t TcpIp::sys_send(core::SimContext& ctx, std::uint64_t sockid,
                             Addr buf, std::uint64_t len) {
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  if (s->state != Socket::State::kConnected) return -kENOTCONN;
  const auto& cfg = kernel_.config();
  const std::uint64_t chunk_max = cfg.mbuf_data;
  std::uint64_t sent = 0;
  while (sent < len) {
    const std::uint64_t n = std::min(chunk_max, len - sent);
    // Copy user data into an mbuf (uiomove), then hand it to the NIC.
    const Addr mbuf = mbuf_alloc(ctx);
    mem::sim_memcpy(ctx, kernel_.mem(), mbuf + 32, buf + sent, n);
    FrameHeader h;
    h.conn = s->conn;
    h.flags = kFrameData;
    h.seq = s->tx_seq++;
    const std::uint8_t* host =
        reinterpret_cast<const std::uint8_t*>(kernel_.mem().host(mbuf + 32));
    output_frame(ctx, h, std::span<const std::uint8_t>(host, n));
    mbuf_free(ctx, mbuf);
    sent += n;
  }
  return static_cast<std::int64_t>(sent);
}

std::int64_t TcpIp::sys_recv(core::SimContext& ctx, ProcId proc,
                             std::uint64_t sockid, Addr buf,
                             std::uint64_t len) {
  (void)proc;
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  while (s->rx_avail == 0) {
    if (s->peer_fin) return 0;  // orderly shutdown
    s->readers.sleep(ctx, *netlock_);
    s = sock(sockid);
    if (s == nullptr || ctx.aborted()) return -kEBADF;
  }
  std::uint64_t copied = 0;
  while (copied < len && !s->rxq.empty()) {
    auto& m = s->rxq.front();
    const std::uint64_t n =
        std::min<std::uint64_t>(len - copied, m.len - m.consumed);
    mem::sim_memcpy(ctx, kernel_.mem(), buf + copied, m.addr + 32 + m.consumed,
                    n);
    m.consumed += static_cast<std::uint32_t>(n);
    copied += n;
    s->rx_avail -= n;
    if (m.consumed == m.len) {
      mbuf_free(ctx, m.addr);
      s->rxq.pop_front();
    }
  }
  return static_cast<std::int64_t>(copied);
}

std::int64_t TcpIp::sys_select(core::SimContext& ctx, ProcId proc, Addr fdset,
                               std::uint64_t nfds) {
  if (nfds == 0) return -kEINVAL;
  // Read the fd set out of user memory (copyin).
  std::vector<std::int32_t> fds(nfds);
  for (std::uint64_t i = 0; i < nfds; ++i)
    fds[i] = mem::sim_read<std::int32_t>(ctx, kernel_.mem(),
                                         fdset + i * sizeof(std::int32_t));
  KMutex::Guard g(*netlock_, ctx);
  const core::WaitChannel ch = proc_channel(proc);
  for (;;) {
    // Poll every watched socket (this scan is the select cost the paper's
    // profile shows).
    for (const std::int32_t fd : fds) {
      FdEntry* e = kernel_.fd_get(proc, fd);
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -kEBADF;
      Socket* s = sock(e->obj);
      if (s == nullptr) return -kEBADF;
      mem::sim_read<std::uint64_t>(ctx, kernel_.mem(), s->ctrl_addr);
      ctx.compute(40);
      if (s->rx_avail > 0 || !s->pending_accepts.empty() || s->peer_fin)
        return fd;
    }
    // Nothing ready: register on every socket's select queue and sleep.
    for (const std::int32_t fd : fds) {
      Socket* s = sock(kernel_.fd_get(proc, fd)->obj);
      s->selectors.register_channel(ch);
    }
    netlock_->unlock(ctx);
    ctx.block_on(ch);
    netlock_->lock(ctx);
    for (const std::int32_t fd : fds) {
      FdEntry* e = kernel_.fd_get(proc, fd);
      if (e == nullptr) continue;
      Socket* s = sock(e->obj);
      if (s != nullptr) s->selectors.remove_channel(ch);
    }
    if (ctx.aborted()) return -kEBADF;
  }
}

std::int64_t TcpIp::sys_sockclose(core::SimContext& ctx, std::uint64_t sockid) {
  KMutex::Guard g(*netlock_, ctx);
  Socket* s = sock(sockid);
  if (s == nullptr) return -kEBADF;
  ctx.compute(200);
  if (s->state == Socket::State::kConnected) {
    FrameHeader h;
    h.conn = s->conn;
    h.flags = kFrameFin;
    h.seq = s->tx_seq++;
    output_frame(ctx, h, {});
  }
  if (s->state == Socket::State::kListening) {
    auto& v = listeners_[s->port];
    std::erase(v, s->id);
    if (v.empty()) listeners_.erase(s->port);
    // Tear down connections the stack accepted but the server never did:
    // their PCBs, queued mbufs and conn-table entries would otherwise leak
    // when a listener closes with a non-empty backlog.
    for (const std::uint64_t cid : s->pending_accepts) {
      Socket* c = sock(cid);
      if (c == nullptr) continue;
      conns_.erase(c->conn);
      for (auto& m : c->rxq) mbuf_free(ctx, m.addr);
      kernel_.kfree(ctx, c->ctrl_addr, 128);
      sockets_.erase(cid);
    }
    s->pending_accepts.clear();
  }
  conns_.erase(s->conn);
  // Release queued mbufs.
  for (auto& m : s->rxq) mbuf_free(ctx, m.addr);
  // Wake every waiter before the socket goes away: a blocked naccept/recv
  // re-looks the socket up, finds it gone and returns -kEBADF instead of
  // sleeping forever on a queue that no longer exists.
  s->readers.wake_all(ctx);
  s->accepters.wake_all(ctx);
  s->connecters.wake_all(ctx);
  s->selectors.wake_all(ctx);
  kernel_.kfree(ctx, s->ctrl_addr, 128);
  sockets_.erase(sockid);
  return 0;
}

void TcpIp::wake_socket_watchers(core::SimContext& ctx, Socket& s) {
  s.readers.wake_all(ctx);
  s.accepters.wake_one(ctx);
  s.connecters.wake_all(ctx);
  s.selectors.wake_all(ctx);
}

void TcpIp::rx_intr(core::SimContext& ctx, std::uint64_t seq) {
  // Ring-descriptor service: bounded, lock-free work, then one netd wakeup
  // per frame (the ring itself is FIFO; `seq` is bookkeeping only).
  (void)seq;
  ctx.compute(kernel_.config().intr_service_cycles);
  ctx.load(rx_staging_, 64);
  ctx.store(rx_staging_ + 64, 8);
  ctx.wakeup(netisr_channel_);
}

void TcpIp::tx_intr(core::SimContext& ctx, std::uint64_t tag) {
  // Transmit-descriptor reclaim; wake the sender only when it asked for
  // completion notification.
  ctx.compute(kernel_.config().intr_service_cycles / 2);
  ctx.load(rx_staging_ + 128, 64);
  ctx.store(rx_staging_ + 128, 8);
  if (tag != 0) ctx.wakeup(tag);
}

void TcpIp::input_frame(core::SimContext& ctx,
                        std::span<const std::uint8_t> frame) {
  const FrameHeader h = parse_frame(frame);
  if (frames_in_ != nullptr) {
    frames_in_->inc();
    bytes_in_->inc(h.len);
  }
  // The NIC has DMA'd the frame into the kernel rx ring (no CPU
  // references); ip_input + tcp_input then validate headers and checksum
  // the payload in place.
  COMPASS_CHECK_MSG(h.len <= 64 * 1024 - 256, "frame exceeds rx ring buffer");
  if (h.len > 0)
    std::memcpy(kernel_.mem().host(rx_staging_),
                frame.data() + sizeof(FrameHeader), h.len);
  ctx.compute(500);
  ctx.load(rx_staging_, 64);
  if (h.len > 0)
    mem::sim_scan(ctx, kernel_.mem(), rx_staging_, h.len,
                  kernel_.config().checksum_per_chunk);
  // The in-place scan above models the checksum cost; the host-side FNV
  // compare is its verdict. A mismatch means the link layer corrupted the
  // frame — drop it; the sender's good copy arrives right behind it.
  if (h.csum != frame_checksum(frame.subspan(sizeof(FrameHeader), h.len))) {
    if (fault::FaultInjector* inj = kernel_.fault_injector(); inj != nullptr)
      inj->count_recovered(fault::FaultKind::kNetCorrupt);
    return;
  }

  if (h.flags & kFrameSyn) {
    if (conns_.contains(h.conn)) {
      // Duplicate SYN (link-layer dup): the connection already exists.
      if (fault::FaultInjector* inj = kernel_.fault_injector(); inj != nullptr)
        inj->count_recovered(fault::FaultKind::kNetDup);
      return;
    }
    const auto lit = listeners_.find(h.port);
    if (lit == listeners_.end() || lit->second.empty())
      return;  // connection refused: drop
    // Round-robin across prefork listeners sharing the port.
    const std::size_t pick = listener_rr_[h.port]++ % lit->second.size();
    Socket* listener = sock(lit->second[pick]);
    COMPASS_CHECK(listener != nullptr);
    auto conn = std::make_unique<Socket>();
    conn->id = next_sock_++;
    conn->ctrl_addr = kernel_.kalloc(ctx, 128, 64);
    conn->state = Socket::State::kConnected;
    conn->conn = h.conn;
    conn->port = h.port;
    conn->rx_last_seq = h.seq;
    conn->rx_has_seq = true;
    mem::sim_write<std::uint64_t>(ctx, kernel_.mem(), conn->ctrl_addr, conn->id);
    conns_[h.conn] = conn->id;
    listener->pending_accepts.push_back(conn->id);
    sockets_.emplace(conn->id, std::move(conn));
    wake_socket_watchers(ctx, *listener);
    return;
  }
  Socket* s = conn_sock(h.conn);
  if (s == nullptr) return;  // stale segment: drop
  if (h.flags & kFrameSynAck) {
    if (s->state == Socket::State::kSynSent) s->state = Socket::State::kConnected;
    wake_socket_watchers(ctx, *s);
    return;
  }
  if (h.flags & (kFrameData | kFrameFin)) {
    // Per-connection sequence check: the wire is FIFO, so a sequence number
    // at or below the last accepted one is a link-layer duplicate.
    if (s->rx_has_seq && h.seq <= s->rx_last_seq) {
      if (fault::FaultInjector* inj = kernel_.fault_injector(); inj != nullptr)
        inj->count_recovered(fault::FaultKind::kNetDup);
      return;
    }
    s->rx_last_seq = h.seq;
    s->rx_has_seq = true;
  }
  if (h.flags & kFrameData) {
    // Build the mbuf chain by copying out of the rx ring (the instrumented
    // driver copy).
    std::uint32_t off = 0;
    while (off < h.len) {
      const std::uint32_t n =
          std::min<std::uint32_t>(kernel_.config().mbuf_data, h.len - off);
      const Addr mbuf = mbuf_alloc(ctx);
      mem::sim_memcpy(ctx, kernel_.mem(), mbuf + 32, rx_staging_ + off, n);
      s->rxq.push_back(Socket::MbufRef{mbuf, n, 0});
      s->rx_avail += n;
      off += n;
    }
    wake_socket_watchers(ctx, *s);
  }
  if (h.flags & kFrameFin) {
    s->peer_fin = true;
    wake_socket_watchers(ctx, *s);
  }
}

void TcpIp::netd_body(core::SimContext& ctx) {
  ctx.set_mode(ExecMode::kKernel);
  for (;;) {
    ctx.block_on(netisr_channel_);
    if (ctx.aborted()) return;
    COMPASS_CHECK(kernel_.devices() != nullptr);
    // One permit per serviced rx interrupt; each interrupt corresponds to
    // one injected frame, so the ring cannot underflow here.
    std::vector<std::uint8_t> frame =
        kernel_.devices()->ethernet().take_next_rx();
    // Network input processing is interrupt-level work (AIX netisr).
    const ExecMode saved = ctx.mode();
    ctx.set_mode(ExecMode::kInterrupt);
    {
      KMutex::Guard g(*netlock_, ctx);
      input_frame(ctx, frame);
    }
    ctx.set_mode(saved);
    if (ctx.aborted()) return;
  }
}

void TcpIp::set_native_wire(std::function<void(std::vector<std::uint8_t>)> fn) {
  native_wire_ = std::move(fn);
}

void TcpIp::native_rx(std::vector<std::uint8_t> frame) {
  core::SimContext detached;
  KMutex::Guard g(*netlock_, detached);
  input_frame(detached, frame);
}

std::size_t TcpIp::open_sockets() const { return sockets_.size(); }

void TcpIp::ckpt_dump(util::StateSink& sink) const {
  sink.varint(sockets_.size());
  for (const auto& [id, s] : sockets_) {
    sink.varint(id);
    sink.varint(s->ctrl_addr);
    sink.u8(static_cast<std::uint8_t>(s->state));
    sink.varint(s->conn);
    sink.varint(s->port);
    sink.u8(s->peer_fin ? 1 : 0);
    sink.varint(s->tx_seq);
    sink.varint(s->rx_last_seq);
    sink.u8(s->rx_has_seq ? 1 : 0);
    sink.varint(s->rxq.size());
    for (const auto& m : s->rxq) {
      sink.varint(m.addr);
      sink.varint(m.len);
      sink.varint(m.consumed);
    }
    sink.varint(s->rx_avail);
    sink.varint(s->pending_accepts.size());
    for (const std::uint64_t a : s->pending_accepts) sink.varint(a);
    sink.varint(s->readers.size());
    sink.varint(s->accepters.size());
    sink.varint(s->connecters.size());
    sink.varint(s->selectors.size());
  }
  sink.varint(listeners_.size());
  for (const auto& [port, ids] : listeners_) {
    sink.varint(port);
    sink.varint(ids.size());
    for (const std::uint64_t id : ids) sink.varint(id);
  }
  sink.varint(listener_rr_.size());
  for (const auto& [port, rr] : listener_rr_) {
    sink.varint(port);
    sink.varint(rr);
  }
  sink.varint(conns_.size());
  for (const auto& [conn, sock_id] : conns_) {
    sink.varint(conn);
    sink.varint(sock_id);
  }
  sink.varint(next_sock_);
  sink.varint(next_conn_);
  // The freelist order is alloc/free history under the netlock, which the
  // backend grants deterministically — dump it verbatim.
  sink.varint(mbuf_freelist_.size());
  for (const Addr a : mbuf_freelist_) sink.varint(a);
  sink.varint(rx_staging_);
}

}  // namespace compass::os
