// Deterministic kernel synchronization primitives.
//
// KMutex is a sleep lock implemented as a backend-managed semaphore channel
// (one initial permit): lock posts kBlock — granted in simulated-event
// order, which makes lock acquisition deterministic regardless of host
// thread scheduling — and unlock posts kWakeup. The happens-before chain
// through the event port makes the protected host data race-free.
//
// KWaitQueue provides sleep/wakeup condition semantics over per-process
// channels (classic kernel sleep queues), guarded by a KMutex.
//
// Both degrade to plain host primitives for detached contexts (the "raw"
// native runs of Table 2).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "core/backend.h"
#include "core/sim_context.h"

namespace compass::os {

/// Base of the per-process wait-channel namespace used by KWaitQueue.
inline constexpr core::WaitChannel kProcChannelBase = 0xE000'0000'0000'0000ull;

inline core::WaitChannel proc_channel(ProcId proc) {
  return kProcChannelBase + static_cast<core::WaitChannel>(proc);
}

/// Separate per-process channel namespace for raw-I/O completions, so disk
/// wakeups can never interfere with sleep-queue wakeups on proc_channel.
inline core::WaitChannel proc_io_channel(ProcId proc) {
  return kProcChannelBase + (1ull << 56) + static_cast<core::WaitChannel>(proc);
}

class KMutex {
 public:
  /// Simulating mode: `channel` must be unique (conventionally the
  /// simulated address of the lock word); registers one permit with the
  /// backend. Pass backend == nullptr for native-only mutexes.
  KMutex(core::Backend* backend, core::WaitChannel channel);

  KMutex(const KMutex&) = delete;
  KMutex& operator=(const KMutex&) = delete;

  void lock(core::SimContext& ctx);
  void unlock(core::SimContext& ctx);

  core::WaitChannel channel() const { return channel_; }

  /// RAII guard.
  class Guard {
   public:
    Guard(KMutex& m, core::SimContext& ctx) : m_(m), ctx_(ctx) { m_.lock(ctx_); }
    ~Guard() { m_.unlock(ctx_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    KMutex& m_;
    core::SimContext& ctx_;
  };

 private:
  friend class KWaitQueue;
  core::WaitChannel channel_;
  std::mutex native_mu_;
};

/// A kernel sleep queue. All operations require the caller to hold the
/// guarding KMutex (passed so sleep can drop and retake it atomically with
/// respect to wakeups).
class KWaitQueue {
 public:
  KWaitQueue() = default;
  KWaitQueue(const KWaitQueue&) = delete;
  KWaitQueue& operator=(const KWaitQueue&) = delete;

  /// Sleep until woken. Caller holds `guard`; it is released while asleep
  /// and re-acquired before returning.
  void sleep(core::SimContext& ctx, KMutex& guard);

  /// Wake the oldest sleeper / all sleepers. Caller holds the guard.
  void wake_one(core::SimContext& ctx);
  void wake_all(core::SimContext& ctx);

  /// Register/deregister an externally-managed wait channel (select-style
  /// multi-queue waits: the waiter registers in several queues, blocks on
  /// its own channel, then removes itself from all of them). Caller holds
  /// the guard. Stale wakeups are possible when several queues fire
  /// concurrently, so such waits must re-check their condition in a loop.
  void register_channel(core::WaitChannel ch);
  void remove_channel(core::WaitChannel ch);

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  struct NativeWaiter {
    std::mutex m;
    std::condition_variable cv;
    bool signaled = false;
  };
  struct Waiter {
    core::WaitChannel channel = 0;   // simulating mode
    NativeWaiter* native = nullptr;  // detached mode
  };

  std::deque<Waiter> waiters_;
};

}  // namespace compass::os
