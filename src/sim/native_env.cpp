#include "sim/native_env.h"

#include "mem/mem_config.h"
#include "os/backend_os.h"

namespace compass::sim {

namespace {
constexpr Addr kUserHeapBase = 0x1000'0000'0000ull;
constexpr Addr kUserHeapStride = 0x10'0000'0000ull;
}  // namespace

NativeEnv::NativeEnv(os::KernelConfig kcfg, std::size_t user_heap_bytes)
    : user_heap_bytes_(user_heap_bytes), next_shm_base_(mem::kShmBase) {
  kernel_ = std::make_unique<os::Kernel>(kcfg, nullptr, mem_map_, nullptr);
}

NativeEnv::~NativeEnv() {
  for (auto& slot : slots_) mem_map_.remove(*slot->heap);
  for (auto& [_, seg] : shm_by_key_) mem_map_.remove(*seg.arena);
}

std::int64_t NativeEnv::native_backend_call(
    os::Sys sys, std::span<const std::int64_t> args) {
  auto a = [&](std::size_t i) -> std::uint64_t {
    return i < args.size() ? static_cast<std::uint64_t>(args[i]) : 0;
  };
  std::lock_guard lock(shm_mu_);
  switch (sys) {
    case os::Sys::kShmget: {
      const std::uint64_t key = a(0);
      const std::uint64_t size = a(1);
      if (const auto it = shm_by_key_.find(key); it != shm_by_key_.end())
        return it->second.id;
      NativeSeg seg;
      seg.id = next_segid_++;
      seg.arena = std::make_unique<mem::Arena>("nshm" + std::to_string(seg.id),
                                               next_shm_base_, size);
      next_shm_base_ += (size + mem::kPageSize) & ~(mem::kPageSize - 1);
      mem_map_.add(*seg.arena);
      shm_by_id_.emplace(seg.id, seg.arena.get());
      const std::int64_t id = seg.id;
      shm_by_key_.emplace(key, std::move(seg));
      return id;
    }
    case os::Sys::kShmat: {
      const auto it = shm_by_id_.find(static_cast<std::int64_t>(a(0)));
      if (it == shm_by_id_.end()) return -1;
      return static_cast<std::int64_t>(it->second->base());
    }
    case os::Sys::kShmdt:
      return 0;
    case os::Sys::kSchedYield:
      return 0;
    default:
      COMPASS_CHECK_MSG(false, "not a category-2 call");
  }
  return -1;
}

Proc& NativeEnv::add_process(const std::string& name) {
  auto slot = std::make_unique<Slot>();
  slot->ctx = std::make_unique<core::SimContext>();  // detached
  const auto index = static_cast<Addr>(slots_.size());
  slot->heap = std::make_unique<mem::Arena>(
      "uheap." + name, kUserHeapBase + index * kUserHeapStride,
      user_heap_bytes_);
  mem_map_.add(*slot->heap);
  const auto proc_id = static_cast<ProcId>(index);
  slot->ctx->set_oscall_router(
      [this, proc_id](core::SimContext& ctx, std::uint32_t sysno,
                      std::span<const std::int64_t> args) -> std::int64_t {
        const auto sys = static_cast<os::Sys>(sysno);
        if (os::is_backend_call(sys)) return native_backend_call(sys, args);
        return kernel_->syscall(ctx, proc_id, sysno, args);
      });
  slot->proc = std::make_unique<Proc>(*slot->ctx, mem_map_, *slot->heap);
  Proc& p = *slot->proc;
  slots_.push_back(std::move(slot));
  return p;
}

}  // namespace compass::sim
