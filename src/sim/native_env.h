// NativeEnv: the "raw" execution environment of the slowdown study
// (paper §5, Table 2's first column).
//
// The same workload code runs against detached SimContexts: no events, no
// backend, no timing — OS calls invoke the kernel service code directly on
// the calling thread (with host locking and synchronous I/O), so the
// application executes at native host speed. Comparing a NativeEnv wall
// clock against a Simulation wall clock gives the simulation slowdown.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "sim/proc.h"

namespace compass::sim {

class NativeEnv {
 public:
  explicit NativeEnv(os::KernelConfig kcfg = {},
                     std::size_t user_heap_bytes = 64ull << 20);
  ~NativeEnv();

  NativeEnv(const NativeEnv&) = delete;
  NativeEnv& operator=(const NativeEnv&) = delete;

  /// Create a native process: detached context + private heap, with OS
  /// calls routed straight into the kernel code.
  Proc& add_process(const std::string& name);

  os::Kernel& kernel() { return *kernel_; }
  mem::AddressMap& mem() { return mem_map_; }

 private:
  std::int64_t native_backend_call(os::Sys sys,
                                   std::span<const std::int64_t> args);

  struct Slot {
    std::unique_ptr<core::SimContext> ctx;
    std::unique_ptr<mem::Arena> heap;
    std::unique_ptr<Proc> proc;
  };

  mem::AddressMap mem_map_;
  std::unique_ptr<os::Kernel> kernel_;
  std::size_t user_heap_bytes_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex shm_mu_;
  struct NativeSeg {
    std::int64_t id;
    std::unique_ptr<mem::Arena> arena;
  };
  std::map<std::uint64_t, NativeSeg> shm_by_key_;
  std::map<std::int64_t, mem::Arena*> shm_by_id_;
  std::int64_t next_segid_ = 1;
  Addr next_shm_base_;
};

}  // namespace compass::sim
