// Proc: the user-space runtime of one simulated application process.
//
// Workload code is written against this facade and runs unchanged in two
// environments:
//  * simulating — the SimContext is attached to an event port and the
//    OS-call router goes through the OS server (Simulation);
//  * native ("raw", paper §5) — the SimContext is detached (all
//    instrumentation no-ops) and OS calls invoke the kernel code directly
//    (NativeEnv), so the workload runs at host speed.
//
// Heap allocations come from the process's private arena; shared-memory
// segments are attached with shmget/shmat like a real process-model
// application (paper §3.3.1).
#pragma once

#include <initializer_list>
#include <string_view>
#include <vector>

#include "core/sim_context.h"
#include "mem/arena.h"
#include "os/syscall.h"

namespace compass::sim {

class Proc {
 public:
  /// `heap` is the process-private user arena; `mem` resolves every
  /// simulated address (heap, attached segments, kernel — for the typed
  /// helpers).
  Proc(core::SimContext& ctx, mem::AddressMap& mem, mem::Arena& heap);

  core::SimContext& ctx() { return ctx_; }
  mem::AddressMap& mem() { return mem_; }
  mem::Arena& heap() { return heap_; }

  // ---- user-space memory ---------------------------------------------------

  Addr alloc(std::size_t size, std::size_t align = 8) {
    ctx_.compute(30);  // user allocator work
    return heap_.alloc(size, align);
  }
  void free(Addr addr, std::size_t size) {
    ctx_.compute(20);
    heap_.free(addr, size);
  }

  template <class T>
  T read(Addr addr) {
    return mem::sim_read<T>(ctx_, mem_, addr);
  }
  template <class T>
  void write(Addr addr, const T& v) {
    mem::sim_write<T>(ctx_, mem_, addr, v);
  }
  /// User code writing a byte buffer (emits stores).
  void put_bytes(Addr addr, std::span<const std::uint8_t> data);
  /// User code reading a byte buffer (emits loads); returns the bytes.
  std::vector<std::uint8_t> get_bytes(Addr addr, std::size_t n);

  // ---- OS calls ------------------------------------------------------------

  std::int64_t oscall(os::Sys sys, std::initializer_list<std::int64_t> args) {
    return ctx_.oscall(static_cast<std::uint32_t>(sys), args);
  }

  /// libc-style restartable OS call: retries transient failures (EINTR /
  /// ENOMEM / EIO, which the fault plane injects at dispatch) with
  /// exponential backoff. The injector caps consecutive faults per process,
  /// so the loop always terminates; the attempt bound is a backstop.
  std::int64_t restarting_oscall(os::Sys sys,
                                 std::initializer_list<std::int64_t> args);

  std::int64_t open(std::string_view path, std::int64_t flags = 0);
  std::int64_t creat(std::string_view path, std::uint64_t size_hint = 0);
  std::int64_t statx(std::string_view path);
  std::int64_t unlink(std::string_view path);
  std::int64_t close(std::int64_t fd);
  std::int64_t read_fd(std::int64_t fd, Addr buf, std::uint64_t len);
  std::int64_t write_fd(std::int64_t fd, Addr buf, std::uint64_t len);
  std::int64_t readv(std::int64_t fd, std::span<const os::KIovec> iov);
  std::int64_t writev(std::int64_t fd, std::span<const os::KIovec> iov);
  std::int64_t lseek(std::int64_t fd, std::int64_t off, int whence);
  std::int64_t fsync(std::int64_t fd);
  std::int64_t mmap(std::int64_t fd, std::uint64_t off, std::uint64_t len);
  std::int64_t munmap(Addr base);
  std::int64_t msync(Addr base);

  std::int64_t socket();
  std::int64_t bind(std::int64_t fd, std::uint16_t port);
  std::int64_t listen(std::int64_t fd, int backlog = 16);
  std::int64_t naccept(std::int64_t fd);
  std::int64_t connect(std::int64_t fd, std::uint16_t port);
  std::int64_t send(std::int64_t fd, Addr buf, std::uint64_t len);
  std::int64_t recv(std::int64_t fd, Addr buf, std::uint64_t len);
  /// Returns a ready fd from the set (blocking).
  std::int64_t select(std::span<const std::int32_t> fds);

  std::int64_t sem_init(std::int64_t id, std::int64_t count);
  std::int64_t sem_p(std::int64_t id);
  std::int64_t sem_v(std::int64_t id);
  std::int64_t getpid();
  std::int64_t usleep(Cycles cycles);

  std::int64_t shmget(std::uint64_t key, std::uint64_t size);
  std::int64_t shmat(std::int64_t segid);
  std::int64_t shmdt(std::int64_t segid);

 private:
  /// Marshal a path into the process's scratch buffer (user stores).
  Addr path_arg(std::string_view path);

  core::SimContext& ctx_;
  mem::AddressMap& mem_;
  mem::Arena& heap_;
  Addr scratch_;  ///< path/iovec marshalling buffer
};

}  // namespace compass::sim
