// Simulation: the assembled COMPASS environment (paper Figure 1).
//
// Wires together the communicator, the backend simulation process with its
// architecture model (flat / simple one-level-cache MESI bus / complex
// two-level-cache CC-NUMA), the VM and category-2 OS models, the physical
// devices, the OS server with its OS threads, bottom halves and netd, and
// the application frontends. One call to run() executes the simulation to
// completion.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/frontend.h"
#include "dev/device_hub.h"
#include "fault/fault_injector.h"
#include "mem/machine.h"
#include "os/backend_os.h"
#include "os/kernel.h"
#include "os/os_server.h"
#include "sim/proc.h"

namespace compass::sim {

class Simulation;

enum class BackendModel {
  kFlat,    ///< fixed-latency memory (no caches)
  kSimple,  ///< paper's "simplest backend": one-level cache + MESI bus
  kNuma,    ///< paper's "most complex backend": L1+L2 + directory CC-NUMA
};

struct SimulationConfig {
  core::SimConfig core;
  BackendModel model = BackendModel::kSimple;
  Cycles flat_latency = 10;
  mem::SimpleMachineConfig simple;
  mem::NumaMachineConfig numa;
  mem::PlacementPolicy placement = mem::PlacementPolicy::kFirstTouch;
  dev::DeviceHubConfig devices;
  os::KernelConfig kernel;
  os::OsServerConfig os_server;
  std::size_t user_heap_bytes = 64ull << 20;
  /// Fault-injection plan. The default (all rates zero) disables the fault
  /// plane entirely: no injector is constructed and no hooks are wired, so
  /// a fault-free run is bit-identical to one built without the plane.
  fault::FaultPlan fault;
  /// Optional event-trace recorder (src/trace/): receives every dispatched
  /// batch plus the device/kernel side-band records. Not owned; must
  /// outlive the Simulation.
  core::TraceSink* trace_sink = nullptr;
  /// Optional checkpoint coordinator (src/ckpt/): consulted at every
  /// dispatch point for snapshot/stop triggers and (on restore) supplies
  /// the warp fast-forward replies. Not owned; must outlive the Simulation.
  core::CkptHook* ckpt = nullptr;
  /// Called at the end of construction with the fully-wired Simulation —
  /// the hook point where a checkpoint coordinator binds to the subsystem
  /// objects it snapshots/restores.
  std::function<void(Simulation&)> post_build;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig cfg);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Spawn a simulated application process running `body`. Must be called
  /// before run().
  using Body = std::function<void(Proc&)>;
  core::Frontend& spawn(const std::string& name, Body body);

  /// Run the simulation to completion: starts the OS server, runs the
  /// backend main loop on the calling thread, joins every frontend and
  /// stops the server. Rethrows the first workload exception.
  void run();

  core::Backend& backend() { return *backend_; }
  core::Communicator& communicator() { return *comm_; }
  /// The real architecture model (behind the construction trampoline).
  core::MemorySystem& machine() { return *machine_; }
  os::Kernel& kernel() { return *kernel_; }
  os::OsServer& os_server() { return *os_server_; }
  dev::DeviceHub& devices() { return *devices_; }
  mem::Vm& vm() { return *vm_; }
  mem::AddressMap& mem() { return mem_map_; }
  const SimulationConfig& config() const { return cfg_; }

  /// Null when the fault plan is disabled.
  fault::FaultInjector* fault_injector() { return injector_.get(); }

  const stats::TimeBreakdown& breakdown() const {
    return backend_->time_breakdown();
  }
  stats::StatsRegistry& stats() { return backend_->stats(); }
  Cycles now() const { return backend_->now(); }

 private:
  struct IdleBinder : core::IdleIrqDispatcher {
    core::IdleIrqDispatcher* target = nullptr;
    void dispatch_idle_irq(CpuId cpu, ProcId bh, Cycles when) override {
      COMPASS_CHECK_MSG(target != nullptr, "idle irq before OS server exists");
      target->dispatch_idle_irq(cpu, bh, when);
    }
  };

  struct MemTrampoline : core::MemorySystem {
    core::MemorySystem* real = nullptr;
    Cycles access(CpuId c, ProcId p, const core::Event& e) override {
      return real->access(c, p, e);
    }
    void on_context_switch(CpuId c, ProcId f, ProcId t) override {
      real->on_context_switch(c, f, t);
    }
    bool concurrent_access_safe() const override {
      return real->concurrent_access_safe();
    }
    void flush_stats() override { real->flush_stats(); }
    bool lane_b_shardable() const override { return real->lane_b_shardable(); }
    void lane_b_classify(CpuId c, ProcId p, std::span<const core::Event> b,
                         core::LaneBClass& out) const override {
      real->lane_b_classify(c, p, b, out);
    }
    Cycles lane_b_apply(CpuId c, const core::Event& e,
                        const core::LaneBVerdict& v) override {
      return real->lane_b_apply(c, e, v);
    }
    void set_l1_filter(bool e) override { real->set_l1_filter(e); }
    std::uint64_t l1_filter_gen(CpuId c) const override {
      return real->l1_filter_gen(c);
    }
    core::L1Teach take_l1_teach(CpuId c) override {
      return real->take_l1_teach(c);
    }
    void l1_filter_bump(CpuId c) override { real->l1_filter_bump(c); }
    void ckpt_save(util::StateSink& sink) const override {
      real->ckpt_save(sink);
    }
    void ckpt_load(util::StateSource& src) override { real->ckpt_load(src); }
  };

  struct ProcSlot {
    std::unique_ptr<core::Frontend> frontend;
    std::unique_ptr<mem::Arena> heap;
    std::unique_ptr<Proc> proc;
  };

  SimulationConfig cfg_;
  stats::StatsRegistry registry_;  ///< shared by backend + all models
  mem::AddressMap mem_map_;
  std::unique_ptr<core::Communicator> comm_;
  std::unique_ptr<mem::Vm> vm_;
  std::unique_ptr<core::MemorySystem> machine_;
  std::unique_ptr<MemTrampoline> machine_trampoline_;
  std::unique_ptr<dev::DeviceHub> devices_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<os::BackendOs> backend_os_;
  IdleBinder idle_binder_;
  std::unique_ptr<core::Backend> backend_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<os::OsServer> os_server_;
  std::vector<ProcSlot> procs_;
  bool ran_ = false;
};

}  // namespace compass::sim
