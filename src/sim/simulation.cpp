#include "sim/simulation.h"

#include "mem/l1_filter.h"

namespace compass::sim {

namespace {
constexpr Addr kUserHeapBase = 0x1000'0000'0000ull;
constexpr Addr kUserHeapStride = 0x10'0000'0000ull;  // 64 GB per process
}  // namespace

Simulation::Simulation(SimulationConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.core.validate();
  // core.batch_size is the simulated-machine interleaving knob (and the one
  // the trace/checkpoint config fingerprint records); the frontend contexts
  // read SimContextOptions::batch_size. Install the former into the latter
  // unless a caller already set the context option directly.
  if (cfg_.os_server.ctx_opts.batch_size == 1)
    cfg_.os_server.ctx_opts.batch_size = cfg_.core.batch_size;
  comm_ = std::make_unique<core::Communicator>(cfg_.core.num_cpus,
                                               cfg_.core.host_cpus);

  // VM / page-table models (category 2).
  mem::VmConfig vm_cfg;
  vm_cfg.num_nodes = cfg_.core.num_nodes;
  vm_cfg.placement = cfg_.placement;

  // The Backend owns the canonical stats registry but requires its
  // MemorySystem hook at construction; a forwarding trampoline breaks the
  // cycle so the real machine can be built against Backend::stats().
  auto trampoline = std::make_unique<MemTrampoline>();

  vm_ = std::make_unique<mem::Vm>(vm_cfg, &registry_);

  devices_ = std::make_unique<dev::DeviceHub>(cfg_.devices, &registry_);
  backend_os_ = std::make_unique<os::BackendOs>(*vm_);

  // Fault plane: only constructed when the plan enables at least one fault
  // kind, so a disabled plan leaves every hook pointer null — the zero-cost,
  // bit-identical baseline path.
  if (cfg_.fault.enabled())
    injector_ = std::make_unique<fault::FaultInjector>(cfg_.fault);

  core::Backend::Hooks hooks;
  hooks.memsys = trampoline.get();
  hooks.backend_calls = backend_os_.get();
  hooks.devices = devices_.get();
  hooks.idle_irq = &idle_binder_;
  hooks.trace = cfg_.trace_sink;
  hooks.ckpt = cfg_.ckpt;
  if (injector_ != nullptr) hooks.sched_perturb = injector_.get();
  backend_ = std::make_unique<core::Backend>(cfg_.core, *comm_, hooks, &registry_);
  devices_->set_trace_sink(cfg_.trace_sink);

  stats::StatsRegistry* reg = &registry_;
  switch (cfg_.model) {
    case BackendModel::kFlat:
      machine_ = std::make_unique<mem::FlatMemory>(cfg_.flat_latency, vm_.get(), reg);
      break;
    case BackendModel::kSimple:
      machine_ = std::make_unique<mem::SimpleMachine>(cfg_.simple,
                                                      cfg_.core.num_cpus, *vm_, reg);
      break;
    case BackendModel::kNuma: {
      mem::NumaMachineConfig numa = cfg_.numa;
      numa.placement = cfg_.placement;
      machine_ = std::make_unique<mem::NumaMachine>(
          numa, cfg_.core.num_cpus, cfg_.core.num_nodes, *vm_, reg);
      break;
    }
  }
  trampoline->real = machine_.get();
  // Keep the trampoline alive alongside the machine.
  machine_trampoline_ = std::move(trampoline);

  if (cfg_.core.l1_filter) {
    machine_->set_l1_filter(true);
    // Per-context filter factory, matched to the model's hit latency and
    // coherence granularity. Installed into ctx_opts before the OS server is
    // built so app frontends, OS threads, bottom halves and netd all get
    // one. Note the NUMA machine indexes both cache levels by L2 line
    // address, so its mirror must use the L2 line size.
    switch (cfg_.model) {
      case BackendModel::kFlat: {
        const Cycles lat = cfg_.flat_latency;
        cfg_.os_server.ctx_opts.filter_factory = [lat] {
          return std::make_unique<mem::FlatFilter>(lat);
        };
        break;
      }
      case BackendModel::kSimple: {
        const Cycles hit = cfg_.simple.l1_hit;
        const std::uint32_t line = cfg_.simple.l1.line_size;
        cfg_.os_server.ctx_opts.filter_factory = [hit, line] {
          return std::make_unique<mem::L1Filter>(hit, line);
        };
        break;
      }
      case BackendModel::kNuma: {
        const Cycles hit = cfg_.numa.l1_hit;
        const std::uint32_t line = cfg_.numa.l2.line_size;
        cfg_.os_server.ctx_opts.filter_factory = [hit, line] {
          return std::make_unique<mem::L1Filter>(hit, line);
        };
        break;
      }
    }
  }

  devices_->bind(*backend_);
  backend_os_->bind(*backend_);

  kernel_ = std::make_unique<os::Kernel>(cfg_.kernel, backend_.get(), mem_map_,
                                         devices_.get());
  kernel_->set_trace_sink(cfg_.trace_sink);
  if (injector_ != nullptr) {
    kernel_->set_fault_injector(injector_.get());
    devices_->set_fault(&cfg_.fault, injector_.get());
  }
  os_server_ = std::make_unique<os::OsServer>(cfg_.os_server, *backend_, *kernel_);
  idle_binder_.target = os_server_.get();
  if (cfg_.post_build) cfg_.post_build(*this);
}

Simulation::~Simulation() {
  if (os_server_ != nullptr) os_server_->stop();
  for (auto& slot : procs_)
    if (slot.heap != nullptr) mem_map_.remove(*slot.heap);
}

core::Frontend& Simulation::spawn(const std::string& name, Body body) {
  COMPASS_CHECK_MSG(!ran_, "spawn after run()");
  COMPASS_CHECK(body != nullptr);
  ProcSlot slot;
  slot.frontend = std::make_unique<core::Frontend>(*backend_, name,
                                                   cfg_.os_server.ctx_opts);
  os_server_->attach_client(*slot.frontend);
  const auto index = static_cast<Addr>(procs_.size());
  slot.heap = std::make_unique<mem::Arena>(
      "uheap." + name, kUserHeapBase + index * kUserHeapStride,
      cfg_.user_heap_bytes);
  mem_map_.add(*slot.heap);
  slot.proc = std::make_unique<Proc>(slot.frontend->context(), mem_map_,
                                     *slot.heap);
  core::Frontend& fe = *slot.frontend;
  Proc* proc = slot.proc.get();
  procs_.push_back(std::move(slot));
  fe.start([proc, body = std::move(body)](core::SimContext&) { body(*proc); });
  return fe;
}

void Simulation::run() {
  COMPASS_CHECK_MSG(!ran_, "Simulation::run() called twice");
  ran_ = true;
  os_server_->start();
  std::exception_ptr backend_error;
  try {
    backend_->run();
  } catch (...) {
    backend_error = std::current_exception();
  }
  std::exception_ptr workload_error;
  for (auto& slot : procs_) {
    try {
      slot.frontend->join();
    } catch (...) {
      if (!workload_error) workload_error = std::current_exception();
    }
  }
  os_server_->stop();
  // The simulation has quiesced: fold the injector's atomic tallies into
  // the stats registry so fault.injected.* / fault.recovered.* ride along
  // with every stats consumer (--stats-json, golden checks exclude them).
  if (injector_ != nullptr) injector_->publish(registry_);
  // Likewise fold the frontends' locally-absorbed reference tallies into the
  // registry. Host-side observability only (golden checks exclude it): the
  // absorbed references still replay through the memory model, so every
  // simulated counter is already exact without this.
  if (cfg_.core.l1_filter) {
    std::uint64_t absorbed = 0;
    for (const auto& slot : procs_)
      absorbed += slot.frontend->context().filter_absorbed();
    registry_.counter("frontend.absorbed").inc(absorbed);
  }
  if (backend_error) std::rethrow_exception(backend_error);
  if (workload_error) std::rethrow_exception(workload_error);
}

}  // namespace compass::sim
