#include "sim/proc.h"

#include <cstring>

namespace compass::sim {

namespace {
constexpr std::size_t kScratchBytes = 8192;
}

Proc::Proc(core::SimContext& ctx, mem::AddressMap& mem, mem::Arena& heap)
    : ctx_(ctx), mem_(mem), heap_(heap) {
  scratch_ = heap_.alloc(kScratchBytes, 64);
}

void Proc::put_bytes(Addr addr, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto step = static_cast<std::uint32_t>(
        std::min<std::size_t>(64, data.size() - off));
    ctx_.store(addr + off, step);
    std::memcpy(mem_.host(addr + off), data.data() + off, step);
    off += step;
  }
}

std::vector<std::uint8_t> Proc::get_bytes(Addr addr, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t off = 0;
  while (off < n) {
    const auto step =
        static_cast<std::uint32_t>(std::min<std::size_t>(64, n - off));
    ctx_.load(addr + off, step);
    std::memcpy(out.data() + off, mem_.host(addr + off), step);
    off += step;
  }
  return out;
}

std::int64_t Proc::restarting_oscall(os::Sys sys,
                                     std::initializer_list<std::int64_t> args) {
  for (int attempt = 0;; ++attempt) {
    const std::int64_t ret = oscall(sys, args);
    if (!os::is_transient_err(ret) || attempt >= 15) return ret;
    ctx_.compute(Cycles{200} << std::min(attempt, 8));  // backoff, then retry
  }
}

Addr Proc::path_arg(std::string_view path) {
  COMPASS_CHECK_MSG(path.size() < 1024, "path too long");
  put_bytes(scratch_, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(path.data()),
                          path.size()));
  return scratch_;
}

std::int64_t Proc::open(std::string_view path, std::int64_t flags) {
  const Addr p = path_arg(path);
  return restarting_oscall(os::Sys::kOpen, {static_cast<std::int64_t>(p),
                                 static_cast<std::int64_t>(path.size()), flags});
}

std::int64_t Proc::creat(std::string_view path, std::uint64_t size_hint) {
  const Addr p = path_arg(path);
  return restarting_oscall(os::Sys::kCreat, {static_cast<std::int64_t>(p),
                                  static_cast<std::int64_t>(path.size()),
                                  static_cast<std::int64_t>(size_hint)});
}

std::int64_t Proc::statx(std::string_view path) {
  const Addr p = path_arg(path);
  return restarting_oscall(os::Sys::kStatx, {static_cast<std::int64_t>(p),
                                  static_cast<std::int64_t>(path.size())});
}

std::int64_t Proc::unlink(std::string_view path) {
  const Addr p = path_arg(path);
  return oscall(os::Sys::kUnlink, {static_cast<std::int64_t>(p),
                                   static_cast<std::int64_t>(path.size())});
}

std::int64_t Proc::close(std::int64_t fd) { return oscall(os::Sys::kClose, {fd}); }

std::int64_t Proc::read_fd(std::int64_t fd, Addr buf, std::uint64_t len) {
  return restarting_oscall(os::Sys::kRead, {fd, static_cast<std::int64_t>(buf),
                                 static_cast<std::int64_t>(len)});
}

std::int64_t Proc::write_fd(std::int64_t fd, Addr buf, std::uint64_t len) {
  return restarting_oscall(os::Sys::kWrite, {fd, static_cast<std::int64_t>(buf),
                                  static_cast<std::int64_t>(len)});
}

std::int64_t Proc::readv(std::int64_t fd, std::span<const os::KIovec> iov) {
  const Addr p = scratch_ + 2048;
  put_bytes(p, std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(iov.data()),
                   iov.size_bytes()));
  return restarting_oscall(os::Sys::kReadv, {fd, static_cast<std::int64_t>(p),
                                  static_cast<std::int64_t>(iov.size())});
}

std::int64_t Proc::writev(std::int64_t fd, std::span<const os::KIovec> iov) {
  const Addr p = scratch_ + 2048;
  put_bytes(p, std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(iov.data()),
                   iov.size_bytes()));
  return restarting_oscall(os::Sys::kWritev, {fd, static_cast<std::int64_t>(p),
                                   static_cast<std::int64_t>(iov.size())});
}

std::int64_t Proc::lseek(std::int64_t fd, std::int64_t off, int whence) {
  return oscall(os::Sys::kLseek, {fd, off, whence});
}

std::int64_t Proc::fsync(std::int64_t fd) { return oscall(os::Sys::kFsync, {fd}); }

std::int64_t Proc::mmap(std::int64_t fd, std::uint64_t off, std::uint64_t len) {
  return oscall(os::Sys::kMmap, {fd, static_cast<std::int64_t>(off),
                                 static_cast<std::int64_t>(len)});
}

std::int64_t Proc::munmap(Addr base) {
  return oscall(os::Sys::kMunmap, {static_cast<std::int64_t>(base)});
}

std::int64_t Proc::msync(Addr base) {
  return oscall(os::Sys::kMsync, {static_cast<std::int64_t>(base)});
}

std::int64_t Proc::socket() { return oscall(os::Sys::kSocket, {}); }

std::int64_t Proc::bind(std::int64_t fd, std::uint16_t port) {
  return oscall(os::Sys::kBind, {fd, port});
}

std::int64_t Proc::listen(std::int64_t fd, int backlog) {
  return oscall(os::Sys::kListen, {fd, backlog});
}

std::int64_t Proc::naccept(std::int64_t fd) {
  return oscall(os::Sys::kNaccept, {fd});
}

std::int64_t Proc::connect(std::int64_t fd, std::uint16_t port) {
  return oscall(os::Sys::kConnect, {fd, port});
}

std::int64_t Proc::send(std::int64_t fd, Addr buf, std::uint64_t len) {
  return restarting_oscall(os::Sys::kSend, {fd, static_cast<std::int64_t>(buf),
                                 static_cast<std::int64_t>(len)});
}

std::int64_t Proc::recv(std::int64_t fd, Addr buf, std::uint64_t len) {
  return restarting_oscall(os::Sys::kRecv, {fd, static_cast<std::int64_t>(buf),
                                 static_cast<std::int64_t>(len)});
}

std::int64_t Proc::select(std::span<const std::int32_t> fds) {
  const Addr p = scratch_ + 4096;
  put_bytes(p, std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(fds.data()),
                   fds.size_bytes()));
  return oscall(os::Sys::kSelect, {static_cast<std::int64_t>(p),
                                   static_cast<std::int64_t>(fds.size())});
}

std::int64_t Proc::sem_init(std::int64_t id, std::int64_t count) {
  return oscall(os::Sys::kSemInit, {id, count});
}
std::int64_t Proc::sem_p(std::int64_t id) { return oscall(os::Sys::kSemP, {id}); }
std::int64_t Proc::sem_v(std::int64_t id) { return oscall(os::Sys::kSemV, {id}); }
std::int64_t Proc::getpid() { return oscall(os::Sys::kGetpid, {}); }
std::int64_t Proc::usleep(Cycles cycles) {
  return oscall(os::Sys::kUsleep, {static_cast<std::int64_t>(cycles)});
}

std::int64_t Proc::shmget(std::uint64_t key, std::uint64_t size) {
  return oscall(os::Sys::kShmget, {static_cast<std::int64_t>(key),
                                   static_cast<std::int64_t>(size)});
}
std::int64_t Proc::shmat(std::int64_t segid) {
  return oscall(os::Sys::kShmat, {segid});
}
std::int64_t Proc::shmdt(std::int64_t segid) {
  return oscall(os::Sys::kShmdt, {segid});
}

}  // namespace compass::sim
