#include "mem/l1_filter.h"

#include "mem/cache.h"

namespace compass::mem {

L1Filter::L1Filter(Cycles hit_latency, std::uint32_t line_size)
    : hit_(hit_latency), line_mask_(~static_cast<Addr>(line_size - 1)) {
  COMPASS_CHECK(line_size >= 8 && (line_size & (line_size - 1)) == 0);
}

Cycles L1Filter::try_absorb(RefType type, Addr addr) {
  if (type == RefType::kSync || cpu_ == kNoCpu) return kNoAbsorb;
  const std::uint64_t pv = pages_.get(addr >> kPageShift);
  if (pv == 0) return kNoAbsorb;
  const PhysAddr paddr =
      ((pv - 1) << kPageShift) | (addr & (kPageSize - 1));
  const PhysAddr line = paddr & line_mask_;
  const std::uint64_t st = lines_.get(line);
  if (st == 0) return kNoAbsorb;
  if (type == RefType::kStore) {
    if (st == static_cast<std::uint64_t>(Mesi::kShared))
      return kNoAbsorb;  // needs a bus/directory upgrade transaction
    if (st == static_cast<std::uint64_t>(Mesi::kExclusive))
      lines_.set(line, static_cast<std::uint64_t>(Mesi::kModified));
  }
  return hit_;
}

void L1Filter::on_reply(const core::Reply& r) {
  if (r.cpu != cpu_ || r.l1_gen != gen_) {
    // The CPU moved or its coherence generation advanced: every cached
    // proof is void. Drop the mirror and resync lazily from teaches.
    lines_.clear();
    pages_.clear();
    cpu_ = r.cpu;
    gen_ = r.l1_gen;
  }
  const core::L1Teach& t = r.teach;
  // Apply the teach only when it is still current: a deferred reply can
  // carry a teach recorded before a later invalidation bumped the
  // generation, and adopting it would poison the freshly dropped mirror.
  if (cpu_ == kNoCpu || t.line == core::L1Teach::kNone || t.gen != gen_)
    return;
  if (t.victim != core::L1Teach::kNone) lines_.erase(t.victim & line_mask_);
  if (t.victim2 != core::L1Teach::kNone) lines_.erase(t.victim2 & line_mask_);
  if (t.state != 0) {
    pages_.set(t.vpage, t.ppage + 1);
    lines_.set(t.line & line_mask_, t.state);
  } else {
    lines_.erase(t.line & line_mask_);
  }
}

}  // namespace compass::mem
