#include "mem/cache.h"

#include <bit>

namespace compass::mem {

Cache::Cache(std::string name, const CacheConfig& cfg,
             stats::StatsRegistry* stats)
    : name_(std::move(name)), cfg_(cfg) {
  cfg_.validate();
  line_shift_ = static_cast<unsigned>(std::countr_zero(cfg_.line_size));
  line_mask_ = cfg_.line_size - 1;
  lines_.resize(static_cast<std::size_t>(cfg_.num_sets()) * cfg_.assoc);
  if (stats != nullptr) {
    hits_ = &stats->counter(name_ + ".hits");
    misses_ = &stats->counter(name_ + ".misses");
    evictions_ = &stats->counter(name_ + ".evictions");
    writebacks_ = &stats->counter(name_ + ".writebacks");
  }
}

Cache::Line* Cache::find(PhysAddr addr) {
  const std::uint64_t tag = tag_of(addr);
  Line* set = &lines_[set_index(addr) * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
    if (set[w].state != Mesi::kInvalid && set[w].tag == tag) return &set[w];
  return nullptr;
}

const Cache::Line* Cache::find(PhysAddr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

Mesi Cache::probe(PhysAddr addr) const {
  const Line* line = find(addr);
  return line == nullptr ? Mesi::kInvalid : line->state;
}

Mesi Cache::lookup(PhysAddr addr) {
  Line* line = find(addr);
  if (line == nullptr) {
    if (misses_ != nullptr) misses_->inc();
    return Mesi::kInvalid;
  }
  line->lru = ++lru_clock_;
  if (hits_ != nullptr) hits_->inc();
  return line->state;
}

void Cache::set_state(PhysAddr addr, Mesi state) {
  Line* line = find(addr);
  if (line == nullptr) {
    COMPASS_CHECK_MSG(state == Mesi::kInvalid,
                      name_ << ": set_state on absent line 0x" << std::hex
                            << addr);
    return;
  }
  line->state = state;
}

void Cache::set_state_if_present(PhysAddr addr, Mesi state) {
  Line* line = find(addr);
  if (line != nullptr) line->state = state;
}

std::optional<Cache::Victim> Cache::insert(PhysAddr addr, Mesi state) {
  COMPASS_CHECK(state != Mesi::kInvalid);
  Line* line = find(addr);
  if (line != nullptr) {
    // Re-insert of a resident line is a state change.
    line->state = state;
    line->lru = ++lru_clock_;
    return std::nullopt;
  }
  Line* set = &lines_[set_index(addr) * cfg_.assoc];
  Line* victim = &set[0];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (set[w].state == Mesi::kInvalid) {
      victim = &set[w];
      break;
    }
    if (set[w].lru < victim->lru) victim = &set[w];
  }
  std::optional<Victim> out;
  if (victim->state != Mesi::kInvalid) {
    out = Victim{victim->tag << line_shift_, victim->state};
    if (evictions_ != nullptr) evictions_->inc();
    if (victim->state == Mesi::kModified && writebacks_ != nullptr)
      writebacks_->inc();
  }
  victim->tag = tag_of(addr);
  victim->state = state;
  victim->lru = ++lru_clock_;
  return out;
}

void Cache::invalidate_all() {
  for (auto& line : lines_) line.state = Mesi::kInvalid;
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const auto& line : lines_)
    if (line.state != Mesi::kInvalid) ++n;
  return n;
}

}  // namespace compass::mem
