#include "mem/cache.h"

#include <algorithm>
#include <bit>

namespace compass::mem {

Cache::Cache(std::string name, const CacheConfig& cfg,
             stats::StatsRegistry* stats)
    : name_(std::move(name)), cfg_(cfg) {
  cfg_.validate();
  line_shift_ = static_cast<unsigned>(std::countr_zero(cfg_.line_size));
  line_mask_ = cfg_.line_size - 1;
  assoc_ = cfg_.assoc;
  num_sets_ = cfg_.num_sets();
  sets_pow2_ = std::has_single_bit(num_sets_);
  if (sets_pow2_) set_mask_ = num_sets_ - 1;
  const std::size_t ways = num_sets_ * assoc_;
  tags_.assign(ways, kNoTag);
  states_.assign(ways, Mesi::kInvalid);
  lru_.assign(ways, 0);
  if (stats != nullptr) {
    hits_ = &stats->counter(name_ + ".hits");
    misses_ = &stats->counter(name_ + ".misses");
    evictions_ = &stats->counter(name_ + ".evictions");
    writebacks_ = &stats->counter(name_ + ".writebacks");
  }
}

Mesi Cache::lookup(PhysAddr addr) {
  const std::size_t i = find(addr);
  if (i == kNotFound) {
    if (misses_ != nullptr) misses_->inc();
    return Mesi::kInvalid;
  }
  lru_[i] = ++lru_clock_;
  if (hits_ != nullptr) hits_->inc();
  return states_[i];
}

void Cache::set_state(PhysAddr addr, Mesi state) {
  const std::size_t i = find(addr);
  if (i == kNotFound) {
    COMPASS_CHECK_MSG(state == Mesi::kInvalid,
                      name_ << ": set_state on absent line 0x" << std::hex
                            << addr);
    return;
  }
  if (state == Mesi::kInvalid) {
    clear_way(i);
  } else {
    states_[i] = state;
  }
}

void Cache::set_state_if_present(PhysAddr addr, Mesi state) {
  const std::size_t i = find(addr);
  if (i == kNotFound) return;
  if (state == Mesi::kInvalid) {
    clear_way(i);
  } else {
    states_[i] = state;
  }
}

std::optional<Cache::Victim> Cache::insert(PhysAddr addr, Mesi state) {
  COMPASS_CHECK(state != Mesi::kInvalid);
  const std::size_t hit = find(addr);
  if (hit != kNotFound) {
    // Re-insert of a resident line is a state change.
    states_[hit] = state;
    lru_[hit] = ++lru_clock_;
    return std::nullopt;
  }
  const std::size_t base = set_base(addr);
  std::size_t victim = base;
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (tags_[base + w] == kNoTag) {
      victim = base + w;
      break;
    }
    if (lru_[base + w] < lru_[victim]) victim = base + w;
  }
  std::optional<Victim> out;
  if (tags_[victim] != kNoTag) {
    out = Victim{tags_[victim] << line_shift_, states_[victim]};
    if (evictions_ != nullptr) evictions_->inc();
    if (states_[victim] == Mesi::kModified && writebacks_ != nullptr)
      writebacks_->inc();
  }
  tags_[victim] = tag_of(addr);
  states_[victim] = state;
  lru_[victim] = ++lru_clock_;
  return out;
}

void Cache::invalidate_all() {
  std::fill(tags_.begin(), tags_.end(), kNoTag);
  std::fill(states_.begin(), states_.end(), Mesi::kInvalid);
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const auto tag : tags_)
    if (tag != kNoTag) ++n;
  return n;
}

}  // namespace compass::mem
