// Target architecture models implementing core::MemorySystem.
//
//  * FlatMemory     — fixed-latency memory, no caches (unit tests, micro
//                     benches, fastest backend).
//  * SimpleMachine  — "the simplest backend": a one-level cache per
//                     processor kept coherent with a MESI snooping bus over
//                     a shared memory (UMA).
//  * NumaMachine    — "the most complex backend": two-level caches per
//                     processor, per-node full-map directories, memory
//                     controllers and an interconnection network (CC-NUMA).
//
// All models translate virtual addresses through the Vm page-table model
// first (paper §3.3.1) and charge a soft-fault cost when a mapping is
// created. Contended resources (bus, memory controllers, network ports) are
// modeled with busy-until reservations, so queueing delay emerges from the
// reference stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/memory_system.h"
#include "mem/cache.h"
#include "mem/line_map.h"
#include "mem/mem_config.h"
#include "mem/vm.h"
#include "stats/counters.h"

namespace compass::mem {

/// Checkpoint codec for a teach slot. Address fields use kNone as an
/// absent-sentinel, encoded as 0 with present values shifted by one so
/// typical (small) line addresses stay short varints.
inline void ckpt_save_teach(util::StateSink& sink, const core::L1Teach& t) {
  const auto put_addr = [&sink](Addr a) {
    sink.varint(a == core::L1Teach::kNone ? 0 : a + 1);
  };
  put_addr(t.vpage);
  put_addr(t.ppage);
  put_addr(t.line);
  put_addr(t.victim);
  put_addr(t.victim2);
  sink.varint(t.gen);
  sink.u8(t.state);
}

inline core::L1Teach ckpt_load_teach(util::StateSource& src) {
  const auto get_addr = [&src]() {
    const std::uint64_t v = src.varint();
    return v == 0 ? core::L1Teach::kNone : static_cast<Addr>(v - 1);
  };
  core::L1Teach t;
  t.vpage = get_addr();
  t.ppage = get_addr();
  t.line = get_addr();
  t.victim = get_addr();
  t.victim2 = get_addr();
  t.gen = src.varint();
  t.state = src.u8();
  return t;
}

/// Fixed-latency memory with optional VM translation.
///
/// Without a Vm the model is stateless per access, so it advertises
/// concurrent_access_safe(): the sharded backend may then run access()
/// calls for distinct CPUs on different host threads. The reference tally
/// is a relaxed atomic for that mode and is published into the "flat.refs"
/// counter by flush_stats() (the backend calls it at end of run; call it
/// manually when using the model standalone).
class FlatMemory : public core::MemorySystem {
 public:
  explicit FlatMemory(Cycles latency = 10, Vm* vm = nullptr,
                      stats::StatsRegistry* stats = nullptr);
  Cycles access(CpuId cpu, ProcId proc, const core::Event& ev) override;
  bool concurrent_access_safe() const override { return vm_ == nullptr; }
  void flush_stats() override;
  void ckpt_save(util::StateSink& sink) const override;
  void ckpt_load(util::StateSource& src) override;

 private:
  Cycles latency_;
  Vm* vm_;
  stats::Counter* refs_ = nullptr;
  std::atomic<std::uint64_t> pending_refs_{0};
};

/// One-level cache per CPU + MESI snooping bus (UMA).
///
/// A machine-level snoop filter (per-line bitmask of the CPUs whose cache
/// holds the line, maintained on every insert / eviction / invalidation)
/// lets misses with no remote sharers skip the O(P) probe sweep entirely
/// and lets invalidations walk only the set bits — mirroring how the
/// CC-NUMA directory already knows its sharers. The filter is an exact
/// presence map, not an approximation, so simulated cycles and counters
/// are bit-identical to the literal sweep; Debug builds cross-check it
/// against probing every cache. The literal sweep remains in place for
/// machines below cfg.snoop_filter_min_cpus (where sweeping a handful of
/// packed tag arrays is cheaper than filter maintenance) and above 64
/// CPUs (where the bitmask does not fit).
class SimpleMachine : public core::MemorySystem {
 public:
  SimpleMachine(const SimpleMachineConfig& cfg, int num_cpus, Vm& vm,
                stats::StatsRegistry* stats = nullptr);

  Cycles access(CpuId cpu, ProcId proc, const core::Event& ev) override;
  void on_context_switch(CpuId cpu, ProcId from, ProcId to) override;

  // ---- sharded lane B (see core/memory_system.h, mem/line_shard.h) ------
  /// The L1 filter's teach recording is coupled to serial access order, so
  /// enabling it turns the classify/apply protocol off.
  bool lane_b_shardable() const override { return !filter_on_; }
  void lane_b_classify(CpuId cpu, ProcId proc,
                       std::span<const core::Event> batch,
                       core::LaneBClass& out) const override;
  Cycles lane_b_apply(CpuId cpu, const core::Event& ev,
                      const core::LaneBVerdict& v) override;

  // ---- frontend L1-filter protocol (SimConfig::l1_filter) ---------------
  void set_l1_filter(bool enabled) override { filter_on_ = enabled; }
  std::uint64_t l1_filter_gen(CpuId cpu) const override {
    return gens_[static_cast<std::size_t>(cpu)] + vm_.shootdown_epoch();
  }
  core::L1Teach take_l1_teach(CpuId cpu) override {
    const core::L1Teach t = teach_[static_cast<std::size_t>(cpu)];
    teach_[static_cast<std::size_t>(cpu)] = {};
    return t;
  }
  void l1_filter_bump(CpuId cpu) override {
    ++gens_[static_cast<std::size_t>(cpu)];
  }

  const Cache& cache(CpuId cpu) const {
    return caches_[static_cast<std::size_t>(cpu)];
  }

  void ckpt_save(util::StateSink& sink) const override;
  void ckpt_load(util::StateSource& src) override;

 private:
  /// Acquire the bus at `now`: returns queueing delay and holds the bus for
  /// `occupancy` cycles.
  Cycles bus_acquire(Cycles now, Cycles occupancy);
  void invalidate_others(CpuId cpu, PhysAddr line);
  /// A remote action invalidated or downgraded a line in `cpu`'s cache:
  /// every outstanding frontend-mirror proof for that CPU is now void.
  void gen_bump(CpuId cpu) { ++gens_[static_cast<std::size_t>(cpu)]; }

  // ---- snoop-filter maintenance (exact per-line presence bitmask) -------
  std::uint64_t sharers_of(PhysAddr line) const;
  void filter_clear(CpuId cpu, PhysAddr line);
  /// Debug-only: recompute the sharer mask by probing every cache and check
  /// it against the filter.
  void verify_filter(PhysAddr line) const;
  /// Probe the peers of `cpu` for `line` into scratch_peers_ — via the
  /// filter (set bits only) or the literal sweep when the filter is off.
  /// With the filter on this also pre-sets the requester's presence bit
  /// (the calling miss always fills the line) and leaves the peer bitmask
  /// in scratch_mask_ for a batched invalidate.
  void collect_peers(CpuId cpu, PhysAddr line);

  SimpleMachineConfig cfg_;
  Vm& vm_;
  std::vector<Cache> caches_;
  Cycles bus_free_ = 0;
  /// line -> bitmask of CPUs caching it; absent means no sharers. Exact
  /// (bits are maintained on every state transition), enabled when the
  /// machine has cfg.snoop_filter_min_cpus..64 CPUs — below that the
  /// literal sweep over packed tag arrays is cheaper on the host.
  bool snoop_filter_ = false;
  LineMap presence_;
  /// Reused per-miss scratch: (peer, state) of every peer holding the line,
  /// plus the same set as a bitmask (filter builds only).
  std::vector<std::pair<CpuId, Mesi>> scratch_peers_;
  std::uint64_t scratch_mask_ = 0;
  /// L1-filter bookkeeping: per-CPU coherence generations (always
  /// maintained — one increment per remote state change) and per-CPU teach
  /// slots (written per access only when the filter is on).
  bool filter_on_ = false;
  std::vector<std::uint64_t> gens_;
  std::vector<core::L1Teach> teach_;
  stats::Counter* bus_txns_ = nullptr;
  stats::Counter* invalidations_ = nullptr;
  stats::Counter* interventions_ = nullptr;
  stats::Counter* faults_charged_ = nullptr;
};

/// Two-level caches per CPU + directory-based CC-NUMA.
class NumaMachine : public core::MemorySystem {
 public:
  NumaMachine(const NumaMachineConfig& cfg, int num_cpus, int num_nodes,
              Vm& vm, stats::StatsRegistry* stats = nullptr);

  Cycles access(CpuId cpu, ProcId proc, const core::Event& ev) override;
  void on_context_switch(CpuId cpu, ProcId from, ProcId to) override;

  // ---- sharded lane B (see core/memory_system.h, mem/line_shard.h) ------
  bool lane_b_shardable() const override { return !filter_on_; }
  void lane_b_classify(CpuId cpu, ProcId proc,
                       std::span<const core::Event> batch,
                       core::LaneBClass& out) const override;
  Cycles lane_b_apply(CpuId cpu, const core::Event& ev,
                      const core::LaneBVerdict& v) override;

  // ---- frontend L1-filter protocol (SimConfig::l1_filter) ---------------
  void set_l1_filter(bool enabled) override { filter_on_ = enabled; }
  std::uint64_t l1_filter_gen(CpuId cpu) const override {
    return gens_[static_cast<std::size_t>(cpu)] + vm_.shootdown_epoch();
  }
  core::L1Teach take_l1_teach(CpuId cpu) override {
    const core::L1Teach t = teach_[static_cast<std::size_t>(cpu)];
    teach_[static_cast<std::size_t>(cpu)] = {};
    return t;
  }
  void l1_filter_bump(CpuId cpu) override {
    ++gens_[static_cast<std::size_t>(cpu)];
  }

  NodeId node_of_cpu(CpuId cpu) const {
    return static_cast<NodeId>(cpu / cpus_per_node_);
  }

  void ckpt_save(util::StateSink& sink) const override;
  void ckpt_load(util::StateSource& src) override;

 private:
  /// Directory entry for one cached line, held at the line's home node.
  struct DirEntry {
    enum class State : std::uint8_t { kShared, kOwned } state = State::kShared;
    std::uint64_t sharers = 0;  ///< bitmask of CPUs (kShared)
    CpuId owner = kNoCpu;       ///< exclusive/dirty owner (kOwned)
  };

  Cycles mem_service(NodeId node, Cycles now);
  /// One network message from `from` to `to` carrying `bytes` of payload.
  Cycles net_msg(NodeId from, NodeId to, std::uint32_t bytes, Cycles now);
  int ring_hops(NodeId a, NodeId b) const;
  /// Handle an L2 victim: notify the home directory, write back if dirty.
  void evict_l2(CpuId cpu, const Cache::Victim& victim, Cycles now);
  void fill(CpuId cpu, PhysAddr line, Mesi state, Cycles now);
  void drop_from_cpu(CpuId cpu, PhysAddr line);
  void gen_bump(CpuId cpu) { ++gens_[static_cast<std::size_t>(cpu)]; }
  /// Record the teach for a completed reference (filter on) and run the
  /// Debug absorbed-hint cross-check; returns `lat` unchanged.
  Cycles finish_ref(CpuId cpu, const core::Event& ev, PhysAddr ppage,
                    PhysAddr line, Cycles lat);

  NumaMachineConfig cfg_;
  Vm& vm_;
  int num_nodes_;
  int cpus_per_node_;
  std::vector<Cache> l1_, l2_;
  std::vector<std::unordered_map<PhysAddr, DirEntry>> dirs_;  // per node
  std::vector<Cycles> mem_free_;  // per-node memory controller
  std::vector<Cycles> net_free_;  // per-node network port
  /// L1-filter bookkeeping (see SimpleMachine).
  bool filter_on_ = false;
  std::vector<std::uint64_t> gens_;
  std::vector<core::L1Teach> teach_;
  stats::Counter* local_accesses_ = nullptr;
  stats::Counter* remote_accesses_ = nullptr;
  stats::Counter* dir_forwards_ = nullptr;
  stats::Counter* dir_invalidations_ = nullptr;
  stats::Counter* net_msgs_ = nullptr;
  stats::Counter* faults_charged_ = nullptr;
};

}  // namespace compass::mem
