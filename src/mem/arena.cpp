#include "mem/arena.h"

#include <algorithm>

namespace compass::mem {

Arena::Arena(std::string name, Addr base, std::size_t capacity)
    : name_(std::move(name)), base_(base), capacity_(capacity) {
  COMPASS_CHECK_MSG(capacity_ > 0, name_ << ": arena capacity must be > 0");
  data_ = std::make_unique<std::byte[]>(capacity_);
  std::memset(data_.get(), 0, capacity_);
  free_list_.emplace(base_, capacity_);
}

Addr Arena::alloc(std::size_t size, std::size_t align) {
  COMPASS_CHECK(size > 0);
  COMPASS_CHECK((align & (align - 1)) == 0 && align >= 1);
  std::lock_guard lock(mu_);
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    const Addr start = it->first;
    const std::size_t block = it->second;
    const Addr aligned = (start + align - 1) & ~(static_cast<Addr>(align) - 1);
    const std::size_t waste = aligned - start;
    if (block < waste + size) continue;
    // Carve [aligned, aligned+size) out of the block.
    free_list_.erase(it);
    if (waste > 0) free_list_.emplace(start, waste);
    const std::size_t tail = block - waste - size;
    if (tail > 0) free_list_.emplace(aligned + size, tail);
    return aligned;
  }
  throw util::SimError(name_ + ": arena exhausted allocating " +
                       std::to_string(size) + " bytes");
}

void Arena::free(Addr addr, std::size_t size) {
  COMPASS_CHECK_MSG(contains(addr) && addr + size <= limit(),
                    name_ << ": freeing range outside arena");
  std::lock_guard lock(mu_);
  auto [it, inserted] = free_list_.emplace(addr, size);
  COMPASS_CHECK_MSG(inserted, name_ << ": double free at 0x" << std::hex << addr);
  // Coalesce with successor.
  if (auto next = std::next(it); next != free_list_.end()) {
    COMPASS_CHECK_MSG(addr + size <= next->first,
                      name_ << ": free overlaps following block");
    if (addr + size == next->first) {
      it->second += next->second;
      free_list_.erase(next);
    }
  }
  // Coalesce with predecessor.
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    COMPASS_CHECK_MSG(prev->first + prev->second <= addr,
                      name_ << ": free overlaps preceding block");
    if (prev->first + prev->second == addr) {
      prev->second += it->second;
      free_list_.erase(it);
    }
  }
}

std::size_t Arena::bytes_in_use() const {
  std::lock_guard lock(mu_);
  std::size_t free_bytes = 0;
  for (const auto& [_, size] : free_list_) free_bytes += size;
  return capacity_ - free_bytes;
}

void Arena::ckpt_dump(util::StateSink& sink) const {
  constexpr std::size_t kDumpPage = 4096;
  std::lock_guard lock(mu_);
  sink.str(name_);
  sink.varint(base_);
  sink.varint(capacity_);
  sink.varint(free_list_.size());
  for (const auto& [start, size] : free_list_) {
    sink.varint(start);
    sink.varint(size);
  }
  // Pages with content, delta-compressed against the zero page (arenas are
  // zero-initialized, so untouched pages need no bytes at all).
  std::uint64_t nonzero = 0;
  const std::size_t pages = (capacity_ + kDumpPage - 1) / kDumpPage;
  std::vector<std::uint64_t> dirty;
  for (std::size_t p = 0; p < pages; ++p) {
    const std::size_t off = p * kDumpPage;
    const std::size_t len = std::min(kDumpPage, capacity_ - off);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(data_.get() + off);
    bool any = false;
    for (std::size_t i = 0; i < len; ++i)
      if (bytes[i] != 0) {
        any = true;
        break;
      }
    if (any) {
      dirty.push_back(p);
      ++nonzero;
    }
  }
  sink.varint(nonzero);
  for (const std::uint64_t p : dirty) {
    const std::size_t off = static_cast<std::size_t>(p) * kDumpPage;
    const std::size_t len = std::min(kDumpPage, capacity_ - off);
    sink.varint(p);
    sink.blob({reinterpret_cast<const std::uint8_t*>(data_.get() + off), len});
  }
}

void AddressMap::add(Arena& arena) {
  std::lock_guard lock(mu_);
  // Overlap check against neighbors.
  const auto next = by_base_.lower_bound(arena.base());
  if (next != by_base_.end())
    COMPASS_CHECK_MSG(arena.limit() <= next->first,
                      "arena " << arena.name() << " overlaps " << next->second->name());
  if (next != by_base_.begin()) {
    const auto prev = std::prev(next);
    COMPASS_CHECK_MSG(prev->second->limit() <= arena.base(),
                      "arena " << arena.name() << " overlaps " << prev->second->name());
  }
  by_base_.emplace(arena.base(), &arena);
}

void AddressMap::remove(const Arena& arena) {
  std::lock_guard lock(mu_);
  by_base_.erase(arena.base());
}

Arena& AddressMap::arena_of(Addr a) {
  std::lock_guard lock(mu_);
  auto it = by_base_.upper_bound(a);
  COMPASS_CHECK_MSG(it != by_base_.begin(),
                    "no arena maps simulated address 0x" << std::hex << a);
  --it;
  Arena* arena = it->second;
  COMPASS_CHECK_MSG(arena->contains(a),
                    "no arena maps simulated address 0x" << std::hex << a);
  return *arena;
}

void sim_memcpy(core::SimContext& ctx, AddressMap& mem, Addr dst, Addr src,
                std::size_t n, std::size_t chunk) {
  std::size_t off = 0;
  while (off < n) {
    const auto step = static_cast<std::uint32_t>(std::min(chunk, n - off));
    ctx.load(src + off, step);
    ctx.store(dst + off, step);
    ctx.compute(2);
    // Host copy resolves both sides independently (they may be in
    // different arenas, e.g. user buffer to kernel buffer).
    std::memcpy(mem.host(dst + off), mem.host(src + off), step);
    off += step;
  }
}

void sim_scan(core::SimContext& ctx, AddressMap& mem, Addr src, std::size_t n,
              Cycles per_chunk_compute, std::size_t chunk) {
  std::size_t off = 0;
  while (off < n) {
    const auto step = static_cast<std::uint32_t>(std::min(chunk, n - off));
    ctx.load(src + off, step);
    ctx.compute(per_chunk_compute);
    (void)mem;
    off += step;
  }
}

void sim_memset(core::SimContext& ctx, AddressMap& mem, Addr dst, int value,
                std::size_t n, std::size_t chunk) {
  std::size_t off = 0;
  while (off < n) {
    const auto step = static_cast<std::uint32_t>(std::min(chunk, n - off));
    ctx.store(dst + off, step);
    ctx.compute(1);
    std::memset(mem.host(dst + off), value, step);
    off += step;
  }
}

}  // namespace compass::mem
