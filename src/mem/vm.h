// Virtual-memory management in the backend (paper §3.3.1, category 2).
//
// Each process has its own page table model, with entries for private pages
// and for shared-segment pages (which map to common physical pages across
// processes). A separate hash table records the home node of every physical
// page; homes are assigned at page creation (round-robin / block placement)
// or at first reference (first-touch), exactly as the paper describes.
// Kernel addresses (>= kKernelBase) use one global page table shared by all
// processes, modeling the shared kernel address space.
//
// Fast path: a direct-mapped software TLB per process (plus one shared
// kernel TLB) caches (vpage -> ppage, home), so a steady-state translation
// is a single array index instead of two hash lookups. The home node is
// also stored in the page-table entry, so even a TLB miss that hits the
// page table resolves the home without consulting the per-page hash
// (home_of_ppage stays as the paper-visible API over that hash). TLB
// entries are shot down whenever a mapping is removed (shmdt, segment
// remapping) via tlb_flush; Debug builds cross-check every TLB hit against
// the literal page-table walk.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "mem/mem_config.h"
#include "stats/counters.h"
#include "util/state_io.h"

namespace compass::mem {

struct VmConfig {
  int num_nodes = 1;
  PlacementPolicy placement = PlacementPolicy::kFirstTouch;
};

class Vm {
 public:
  Vm(const VmConfig& cfg, stats::StatsRegistry* stats = nullptr);

  /// Result of a virtual-to-physical translation.
  struct Translation {
    PhysAddr paddr = 0;
    NodeId home = 0;
    bool fault = false;  ///< a mapping was created by this access
  };

  /// Translate `vaddr` for `proc`, creating the mapping on demand.
  /// `touching_node` is the node of the accessing CPU (first-touch homes).
  Translation translate(ProcId proc, Addr vaddr, NodeId touching_node);

  /// Strictly read-only translation: walks the page tables without filling
  /// any TLB slot and without creating mappings. Returns false when
  /// translate() would fault (out.fault is never set). Safe to call from
  /// several threads concurrently as long as nobody mutates the Vm — the
  /// sharded lane-B classify pass relies on exactly that.
  bool probe(ProcId proc, Addr vaddr, Translation& out) const;

  // ---- shared memory segments (shmget / shmat / shmdt) ------------------

  /// Create (or look up) the common shared-memory descriptor for `key`.
  /// Returns the segment id.
  std::int64_t shmget(std::uint64_t key, std::uint64_t size);
  /// Map the segment into `proc`'s page table; returns the (process-
  /// independent) virtual base address of the segment.
  std::int64_t shmat(ProcId proc, std::int64_t segid);
  /// Unmap the segment from `proc`'s page table. Returns 0, or -1 if the
  /// segment was not attached. Shoots down the process's TLB.
  std::int64_t shmdt(ProcId proc, std::int64_t segid);

  std::uint64_t segment_size(std::int64_t segid) const;
  Addr segment_base(std::int64_t segid) const;

  /// Home node of a physical page (the paper's hash table, keyed by
  /// physical address). The page must exist.
  NodeId home_of(PhysAddr paddr) const;
  NodeId home_of_ppage(std::uint64_t ppage) const;

  // ---- TLB shootdown ----------------------------------------------------

  /// Drop every cached user-space translation of `proc`. Must be called
  /// whenever a mapping of `proc` is removed or changed (shmdt does this
  /// itself); cheap (one small array clear) and rare.
  void tlb_flush(ProcId proc);
  /// Drop every cached translation of every process, including the shared
  /// kernel TLB (global shootdown; for kernel-space remapping).
  void tlb_flush_all();

  /// Monotone counter bumped by every shootdown (tlb_flush / tlb_flush_all).
  /// Folded into the per-CPU L1-filter generation so a frontend mirror
  /// built on a now-removed mapping can never absorb through it.
  std::uint64_t shootdown_epoch() const { return shootdown_epoch_; }

  /// Number of mapped pages for a process (diagnostics / tests).
  std::size_t mapped_pages(ProcId proc) const;
  std::size_t allocated_pages() const { return page_homes_.size(); }

  /// Pages homed on each node (placement diagnostics).
  std::vector<std::size_t> pages_per_node() const;

  /// Serialize the complete paging state: page tables, page homes, segments,
  /// allocation cursors. Software TLBs are a host-only fast path rebuilt
  /// lazily and are not saved; ckpt_load clears them.
  void ckpt_save(util::StateSink& sink) const;
  void ckpt_load(util::StateSource& src);

  /// Page-table entry: physical page plus its (immutable) home node, so a
  /// page-table hit never needs the page_homes_ hash. Public for the
  /// checkpoint codec's free helper functions.
  struct Pte {
    std::uint64_t ppage = 0;
    NodeId home = 0;
  };

 private:
  using PageTable = std::unordered_map<std::uint64_t, Pte>;

  /// Direct-mapped TLB entry. The tag is vpage + 1 so that zero-initialized
  /// entries (tag 0) can never match a real page.
  struct TlbEntry {
    std::uint64_t tag = 0;
    std::uint64_t ppage = 0;
    NodeId home = 0;
  };
  static constexpr std::size_t kTlbEntries = 4096;  // power of two
  static constexpr std::uint64_t kTlbIndexMask = kTlbEntries - 1;

  struct Segment {
    std::uint64_t key = 0;
    std::uint64_t size = 0;
    Addr base = 0;
    /// Lazily-allocated common physical pages, one per segment page.
    std::vector<std::optional<std::uint64_t>> ppages;
    int attach_count = 0;
  };

  /// Allocate a fresh physical page homed according to the placement
  /// policy. `block_index/block_total` position the page within its region
  /// for block placement; `touching_node` is used for first-touch.
  Pte alloc_ppage(NodeId touching_node, std::uint64_t block_index,
                  std::uint64_t block_total);

  PageTable& table_for(ProcId proc, Addr vaddr);
  /// TLB array for (`proc`, kernel?) — lazily allocated per process.
  std::vector<TlbEntry>& tlb_for(ProcId proc, bool kernel);
  const Segment* segment_containing(Addr vaddr) const;
  Segment* segment_containing(Addr vaddr);

  VmConfig cfg_;
  std::uint64_t shootdown_epoch_ = 0;
  std::uint64_t next_ppage_ = 1;  // ppage 0 reserved
  std::uint64_t rr_next_node_ = 0;
  Addr next_shm_base_ = kShmBase;
  std::unordered_map<std::uint64_t, NodeId> page_homes_;
  std::map<ProcId, PageTable> tables_;
  PageTable kernel_table_;
  /// Per-process software TLBs, indexed by ProcId; empty until the process
  /// first translates. Kernel mappings are identical in every process and
  /// never removed, so they share one TLB.
  std::vector<std::vector<TlbEntry>> tlbs_;
  std::vector<TlbEntry> kernel_tlb_;
  std::map<std::int64_t, Segment> segments_;
  std::map<std::uint64_t, std::int64_t> seg_by_key_;
  std::int64_t next_segid_ = 1;
  stats::Counter* faults_ = nullptr;
  stats::Counter* shm_attaches_ = nullptr;
};

}  // namespace compass::mem
