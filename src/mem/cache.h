// Set-associative cache array with MESI line states and true-LRU
// replacement. Used as the building block for both the simple (snooping)
// and complex (directory CC-NUMA) backend machines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/mem_config.h"
#include "stats/counters.h"

namespace compass::mem {

enum class Mesi : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

inline constexpr std::string_view to_string(Mesi s) {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
  }
  return "?";
}

class Cache {
 public:
  /// `stats` may be null (no counting); otherwise hit/miss/eviction counters
  /// are registered under "<name>.".
  Cache(std::string name, const CacheConfig& cfg,
        stats::StatsRegistry* stats = nullptr);

  const CacheConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  PhysAddr line_addr(PhysAddr addr) const { return addr & ~line_mask_; }

  /// State of the line containing `addr` (kInvalid when absent). No LRU
  /// side effects — usable for snooping.
  Mesi probe(PhysAddr addr) const;

  /// Lookup for an access: returns state and refreshes LRU on hit.
  Mesi lookup(PhysAddr addr);

  /// Set the state of a resident line (upgrade/downgrade). The line must be
  /// present unless `state` is kInvalid (idempotent invalidation).
  void set_state(PhysAddr addr, Mesi state);

  /// Downgrade/update the line if it is still resident (L1 lines may have
  /// been silently replaced while the outer level kept them).
  void set_state_if_present(PhysAddr addr, Mesi state);

  /// A line evicted to make room: address and whether it was dirty.
  struct Victim {
    PhysAddr addr = 0;
    Mesi state = Mesi::kInvalid;
  };

  /// Insert the line containing `addr` with `state`, evicting the LRU way
  /// if the set is full. Returns the victim if one was displaced.
  std::optional<Victim> insert(PhysAddr addr, Mesi state);

  /// Drop every line (used when modeling cache-flush operations).
  void invalidate_all();

  /// Number of resident (non-invalid) lines.
  std::size_t resident_lines() const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    Mesi state = Mesi::kInvalid;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  std::size_t set_index(PhysAddr addr) const {
    return static_cast<std::size_t>((addr >> line_shift_) % cfg_.num_sets());
  }
  std::uint64_t tag_of(PhysAddr addr) const { return addr >> line_shift_; }

  Line* find(PhysAddr addr);
  const Line* find(PhysAddr addr) const;

  std::string name_;
  CacheConfig cfg_;
  unsigned line_shift_;
  PhysAddr line_mask_;
  std::vector<Line> lines_;  // num_sets * assoc, set-major
  std::uint64_t lru_clock_ = 0;
  stats::Counter* hits_ = nullptr;
  stats::Counter* misses_ = nullptr;
  stats::Counter* evictions_ = nullptr;
  stats::Counter* writebacks_ = nullptr;
};

}  // namespace compass::mem
