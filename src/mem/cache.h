// Set-associative cache array with MESI line states and true-LRU
// replacement. Used as the building block for both the simple (snooping)
// and complex (directory CC-NUMA) backend machines.
//
// The per-set metadata is packed into contiguous parallel arrays (tags,
// states, LRU stamps) rather than an array of per-way structs: the tag scan
// in find() walks one contiguous tag array per set, invalid ways carry a
// sentinel tag that can never match a real address, and the set index is a
// precomputed power-of-two shift+mask when the geometry allows it. This
// keeps probe() — which the snooping machine calls O(P) times per miss —
// branch-light and cache-friendly on the host.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/mem_config.h"
#include "stats/counters.h"
#include "util/state_io.h"

namespace compass::mem {

enum class Mesi : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

inline constexpr std::string_view to_string(Mesi s) {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
  }
  return "?";
}

class Cache {
 public:
  /// `stats` may be null (no counting); otherwise hit/miss/eviction counters
  /// are registered under "<name>.".
  Cache(std::string name, const CacheConfig& cfg,
        stats::StatsRegistry* stats = nullptr);

  const CacheConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  PhysAddr line_addr(PhysAddr addr) const { return addr & ~line_mask_; }

  /// State of the line containing `addr` (kInvalid when absent). No LRU
  /// side effects — usable for snooping.
  Mesi probe(PhysAddr addr) const {
    const std::size_t i = find(addr);
    return i == kNotFound ? Mesi::kInvalid : states_[i];
  }

  /// Lookup for an access: returns state and refreshes LRU on hit.
  Mesi lookup(PhysAddr addr);

  /// Set the state of a resident line (upgrade/downgrade). The line must be
  /// present unless `state` is kInvalid (idempotent invalidation).
  void set_state(PhysAddr addr, Mesi state);

  /// Downgrade/update the line if it is still resident (L1 lines may have
  /// been silently replaced while the outer level kept them).
  void set_state_if_present(PhysAddr addr, Mesi state);

  /// A line evicted to make room: address and whether it was dirty.
  struct Victim {
    PhysAddr addr = 0;
    Mesi state = Mesi::kInvalid;
  };

  /// Insert the line containing `addr` with `state`, evicting the LRU way
  /// if the set is full. Returns the victim if one was displaced.
  std::optional<Victim> insert(PhysAddr addr, Mesi state);

  /// Drop every line (used when modeling cache-flush operations).
  void invalidate_all();

  // ---- indexed access for the sharded lane-B fast path --------------------
  //
  // The classify pass resolves a hit to a flat way index once (read-only),
  // and the apply pass replays exactly lookup()'s hit side effects at that
  // index without re-scanning tags — which is what lets an apply run while
  // another thread serially probes DIFFERENT lines of the same cache: the
  // apply never reads tags_ and only writes its own way's elements.

  /// No-match sentinel for find_way().
  static constexpr std::size_t kWayNotFound = ~std::size_t{0};

  /// Flat way index of the resident line containing `addr`, or
  /// kWayNotFound. No side effects (not even miss counting).
  std::size_t find_way(PhysAddr addr) const { return find(addr); }

  /// State of way `i` (from find_way).
  Mesi state_at(std::size_t i) const { return states_[i]; }

  /// Replay lookup()'s hit path at way `i`: LRU refresh + hit count.
  void touch_hit(std::size_t i) {
    lru_[i] = ++lru_clock_;
    if (hits_ != nullptr) hits_->inc();
  }

  /// Set the state of way `i` without a tag scan. `state` must not be
  /// kInvalid (indexed invalidation would skip clear_way's tag reset).
  void set_state_at(std::size_t i, Mesi state) { states_[i] = state; }

  /// Number of resident (non-invalid) lines.
  std::size_t resident_lines() const;

  /// Serialize the full metadata arrays (tags, states, LRU stamps). The
  /// geometry is config-derived, so save/load sides always agree on shape.
  void ckpt_save(util::StateSink& sink) const {
    sink.varint(tags_.size());
    for (const std::uint64_t t : tags_) sink.varint(t);
    for (const Mesi s : states_) sink.u8(static_cast<std::uint8_t>(s));
    for (const std::uint64_t l : lru_) sink.varint(l);
    sink.varint(lru_clock_);
  }

  void ckpt_load(util::StateSource& src) {
    if (src.varint() != tags_.size())
      throw util::StateError("cache geometry mismatch in checkpoint");
    for (std::uint64_t& t : tags_) t = src.varint();
    for (Mesi& s : states_) s = static_cast<Mesi>(src.u8());
    for (std::uint64_t& l : lru_) l = src.varint();
    lru_clock_ = src.varint();
  }

 private:
  /// Tag stored in invalid ways; no real address produces it (tags are
  /// addr >> line_shift_, and addresses never have all 64 bits set).
  static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  std::size_t set_base(PhysAddr addr) const {
    const std::uint64_t tag = addr >> line_shift_;
    const std::size_t set = sets_pow2_
                                ? static_cast<std::size_t>(tag & set_mask_)
                                : static_cast<std::size_t>(tag % num_sets_);
    return set * assoc_;
  }
  std::uint64_t tag_of(PhysAddr addr) const { return addr >> line_shift_; }

  /// Index of the resident way holding `addr`, or kNotFound.
  std::size_t find(PhysAddr addr) const {
    const std::uint64_t tag = tag_of(addr);
    const std::size_t base = set_base(addr);
    for (std::size_t w = 0; w < assoc_; ++w)
      if (tags_[base + w] == tag) return base + w;
    return kNotFound;
  }
  void clear_way(std::size_t i) {
    tags_[i] = kNoTag;
    states_[i] = Mesi::kInvalid;
  }

  std::string name_;
  CacheConfig cfg_;
  unsigned line_shift_;
  PhysAddr line_mask_;
  std::size_t assoc_;
  std::size_t num_sets_;
  bool sets_pow2_;
  std::uint64_t set_mask_ = 0;  // valid when sets_pow2_
  // Packed per-way metadata, set-major: way i of set s is at s * assoc_ + i.
  std::vector<std::uint64_t> tags_;
  std::vector<Mesi> states_;
  std::vector<std::uint64_t> lru_;  // larger = more recently used
  std::uint64_t lru_clock_ = 0;
  stats::Counter* hits_ = nullptr;
  stats::Counter* misses_ = nullptr;
  stats::Counter* evictions_ = nullptr;
  stats::Counter* writebacks_ = nullptr;
};

}  // namespace compass::mem
