#include "mem/line_shard.h"

namespace compass::mem {
namespace {

/// Resolve the clean-hit verdict for a one-level lookup. Returns false when
/// the reference is not a proven-clean own-L1 hit (miss, or a write hit in
/// Shared, which needs a bus/directory upgrade).
bool l1_verdict(const Cache& cache, PhysAddr line, bool is_write,
                std::size_t& way, core::LaneBOp& op) {
  way = cache.find_way(line);
  if (way == Cache::kWayNotFound) return false;
  const Mesi s = cache.state_at(way);
  if (!is_write || s == Mesi::kModified) {
    op = core::LaneBOp::kTouch;
    return true;
  }
  if (s == Mesi::kExclusive) {
    op = core::LaneBOp::kTouchToM;
    return true;
  }
  return false;
}

}  // namespace

// Classification sees the pre-window cache state for every reference, while
// execution evolves it. The only transition a clean batch can make is E -> M
// on its own lines, and every verdict is insensitive to it: a later write to
// the same line classifies as kTouchToM (idempotent re-apply of Modified)
// where serial execution would see a Modified hit, and both charge the same
// L1-hit latency. Anything else a batch does makes it non-clean here, which
// only costs parallelism, never correctness.

void classify_l1_batch(const Vm& vm, const Cache& cache, ProcId proc,
                       std::span<const core::Event> batch, Cycles l1_hit,
                       Cycles sync_overhead, core::LaneBClass& out) {
  bool clean = true;
  for (const core::Event& ev : batch) {
    if (ev.kind != core::EventKind::kMemRef) continue;
    Vm::Translation tr;
    if (!vm.probe(proc, ev.addr, tr)) {
      // A fault can map a fresh page anywhere, so the footprint of this and
      // every later reference is unknowable: the whole window stays serial.
      out.lines_known = false;
      out.all_clean = false;
      out.verdicts.clear();
      return;
    }
    const PhysAddr line = cache.line_addr(tr.paddr);
    out.slice_mask |= line_slice_bit(line);
    if (!clean) continue;  // keep accumulating the footprint
    std::size_t way = 0;
    core::LaneBOp op = core::LaneBOp::kTouch;
    if (!l1_verdict(cache, line, ev.ref_type != RefType::kLoad, way, op)) {
      clean = false;
      continue;
    }
    core::LaneBVerdict v;
    v.lat = l1_hit + (ev.ref_type == RefType::kSync ? sync_overhead : 0);
    v.way = static_cast<std::uint32_t>(way);
    v.op = op;
    out.verdicts.push_back(v);
  }
  out.all_clean = clean;
  if (!clean) out.verdicts.clear();
}

void classify_l1l2_batch(const Vm& vm, const Cache& l1, const Cache& l2,
                         ProcId proc, std::span<const core::Event> batch,
                         Cycles l1_hit, Cycles sync_overhead,
                         core::LaneBClass& out) {
  bool clean = true;
  for (const core::Event& ev : batch) {
    if (ev.kind != core::EventKind::kMemRef) continue;
    Vm::Translation tr;
    if (!vm.probe(proc, ev.addr, tr)) {
      out.lines_known = false;
      out.all_clean = false;
      out.verdicts.clear();
      return;
    }
    const PhysAddr line = l2.line_addr(tr.paddr);
    out.slice_mask |= line_slice_bit(line);
    if (!clean) continue;
    std::size_t way = 0;
    core::LaneBOp op = core::LaneBOp::kTouch;
    if (!l1_verdict(l1, line, ev.ref_type != RefType::kLoad, way, op)) {
      clean = false;
      continue;
    }
    core::LaneBVerdict v;
    v.lat = l1_hit + (ev.ref_type == RefType::kSync ? sync_overhead : 0);
    v.way = static_cast<std::uint32_t>(way);
    if (op == core::LaneBOp::kTouchToM) {
      // Inclusive M propagation needs the L2 way; resolving it here keeps
      // the apply tag-scan-free. A missing L2 copy would violate inclusion —
      // treat it as not clean rather than assume.
      const std::size_t way2 = l2.find_way(line);
      if (way2 == Cache::kWayNotFound) {
        clean = false;
        continue;
      }
      v.op = core::LaneBOp::kTouchToML2;
      v.way2 = static_cast<std::uint32_t>(way2);
    } else {
      v.op = core::LaneBOp::kTouch;
    }
    out.verdicts.push_back(v);
  }
  out.all_clean = clean;
  if (!clean) out.verdicts.clear();
}

}  // namespace compass::mem
