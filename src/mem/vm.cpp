#include "mem/vm.h"

#include <algorithm>
#include <utility>

namespace compass::mem {

Vm::Vm(const VmConfig& cfg, stats::StatsRegistry* stats) : cfg_(cfg) {
  COMPASS_CHECK(cfg_.num_nodes >= 1);
  if (stats != nullptr) {
    faults_ = &stats->counter("vm.page_faults");
    shm_attaches_ = &stats->counter("vm.shm_attaches");
  }
}

Vm::Pte Vm::alloc_ppage(NodeId touching_node, std::uint64_t block_index,
                        std::uint64_t block_total) {
  const std::uint64_t ppage = next_ppage_++;
  NodeId home = 0;
  switch (cfg_.placement) {
    case PlacementPolicy::kRoundRobin:
      home = static_cast<NodeId>(rr_next_node_++ % static_cast<std::uint64_t>(cfg_.num_nodes));
      break;
    case PlacementPolicy::kBlock: {
      // Contiguous regions are split into num_nodes equal blocks.
      const std::uint64_t total = block_total == 0 ? 1 : block_total;
      const std::uint64_t per_node = (total + static_cast<std::uint64_t>(cfg_.num_nodes) - 1) /
                                     static_cast<std::uint64_t>(cfg_.num_nodes);
      home = static_cast<NodeId>(block_index / per_node);
      if (home >= cfg_.num_nodes) home = cfg_.num_nodes - 1;
      break;
    }
    case PlacementPolicy::kFirstTouch:
      home = touching_node;
      break;
  }
  COMPASS_CHECK(home >= 0 && home < cfg_.num_nodes);
  page_homes_.emplace(ppage, home);
  return Pte{ppage, home};
}

const Vm::Segment* Vm::segment_containing(Addr vaddr) const {
  return const_cast<Vm*>(this)->segment_containing(vaddr);
}

Vm::Segment* Vm::segment_containing(Addr vaddr) {
  for (auto& [_, seg] : segments_)
    if (vaddr >= seg.base && vaddr < seg.base + seg.size) return &seg;
  return nullptr;
}

Vm::PageTable& Vm::table_for(ProcId proc, Addr vaddr) {
  if (is_kernel_addr(vaddr)) return kernel_table_;
  return tables_[proc];
}

std::vector<Vm::TlbEntry>& Vm::tlb_for(ProcId proc, bool kernel) {
  if (kernel) {
    if (kernel_tlb_.empty()) kernel_tlb_.resize(kTlbEntries);
    return kernel_tlb_;
  }
  COMPASS_CHECK_MSG(proc >= 0, "translate for negative proc " << proc);
  const auto idx = static_cast<std::size_t>(proc);
  if (idx >= tlbs_.size()) tlbs_.resize(idx + 1);
  if (tlbs_[idx].empty()) tlbs_[idx].resize(kTlbEntries);
  return tlbs_[idx];
}

Vm::Translation Vm::translate(ProcId proc, Addr vaddr, NodeId touching_node) {
  const std::uint64_t vpage = vaddr >> kPageShift;
  const bool kernel = is_kernel_addr(vaddr);
  TlbEntry& slot = tlb_for(proc, kernel)[vpage & kTlbIndexMask];
  Translation t;
  if (slot.tag == vpage + 1) {
    // TLB hit: one array index, no hash lookups.
    t.paddr = (slot.ppage << kPageShift) | (vaddr & (kPageSize - 1));
    t.home = slot.home;
#ifndef NDEBUG
    // Debug builds cross-check the TLB against the literal page-table walk
    // and the per-page home hash (same pattern as pending_index).
    {
      const PageTable& table = table_for(proc, vaddr);
      const auto it = table.find(vpage);
      COMPASS_CHECK_MSG(it != table.end(),
                        "TLB hit for unmapped vpage 0x" << std::hex << vpage);
      COMPASS_CHECK_MSG(it->second.ppage == slot.ppage &&
                            it->second.home == slot.home &&
                            home_of_ppage(slot.ppage) == slot.home,
                        "TLB disagrees with page table for vpage 0x"
                            << std::hex << vpage);
    }
#endif
    return t;
  }
  PageTable& table = table_for(proc, vaddr);
  if (const auto it = table.find(vpage); it != table.end()) {
    // Page-table hit: the PTE carries the home, so no second hash lookup.
    t.paddr = (it->second.ppage << kPageShift) | (vaddr & (kPageSize - 1));
    t.home = it->second.home;
    slot = TlbEntry{vpage + 1, it->second.ppage, it->second.home};
    return t;
  }
  // Fault: create the mapping.
  t.fault = true;
  if (faults_ != nullptr) faults_->inc();
  Pte pte;
  if (Segment* seg = is_shm_addr(vaddr) ? segment_containing(vaddr) : nullptr;
      seg != nullptr) {
    // Shared-segment page: allocate the common physical page once, then map
    // it into this process.
    const std::uint64_t seg_page = (vaddr - seg->base) >> kPageShift;
    COMPASS_CHECK(seg_page < seg->ppages.size());
    if (!seg->ppages[seg_page].has_value())
      seg->ppages[seg_page] =
          alloc_ppage(touching_node, seg_page, seg->ppages.size()).ppage;
    pte = Pte{*seg->ppages[seg_page], home_of_ppage(*seg->ppages[seg_page])};
  } else {
    // Anonymous private (or kernel) page.
    pte = alloc_ppage(touching_node, vpage, 0);
  }
  table.emplace(vpage, pte);
  slot = TlbEntry{vpage + 1, pte.ppage, pte.home};
  t.paddr = (pte.ppage << kPageShift) | (vaddr & (kPageSize - 1));
  t.home = pte.home;
  return t;
}

bool Vm::probe(ProcId proc, Addr vaddr, Translation& out) const {
  const std::uint64_t vpage = vaddr >> kPageShift;
  const PageTable* table;
  if (is_kernel_addr(vaddr)) {
    table = &kernel_table_;
  } else {
    const auto it = tables_.find(proc);
    if (it == tables_.end()) return false;
    table = &it->second;
  }
  const auto it = table->find(vpage);
  if (it == table->end()) return false;
  out.paddr = (it->second.ppage << kPageShift) | (vaddr & (kPageSize - 1));
  out.home = it->second.home;
  out.fault = false;
  return true;
}

NodeId Vm::home_of_ppage(std::uint64_t ppage) const {
  const auto it = page_homes_.find(ppage);
  COMPASS_CHECK_MSG(it != page_homes_.end(), "no home for ppage " << ppage);
  return it->second;
}

NodeId Vm::home_of(PhysAddr paddr) const {
  return home_of_ppage(paddr >> kPageShift);
}

void Vm::tlb_flush(ProcId proc) {
  if (proc < 0) return;
  ++shootdown_epoch_;
  const auto idx = static_cast<std::size_t>(proc);
  if (idx < tlbs_.size()) tlbs_[idx].assign(tlbs_[idx].size(), TlbEntry{});
}

void Vm::tlb_flush_all() {
  ++shootdown_epoch_;
  for (auto& tlb : tlbs_) tlb.assign(tlb.size(), TlbEntry{});
  kernel_tlb_.assign(kernel_tlb_.size(), TlbEntry{});
}

std::int64_t Vm::shmget(std::uint64_t key, std::uint64_t size) {
  if (const auto it = seg_by_key_.find(key); it != seg_by_key_.end())
    return it->second;
  COMPASS_CHECK_MSG(size > 0, "shmget with zero size");
  const std::int64_t id = next_segid_++;
  Segment seg;
  seg.key = key;
  seg.size = (size + kPageSize - 1) & ~(kPageSize - 1);
  seg.base = next_shm_base_;
  next_shm_base_ += seg.size + kPageSize;  // guard page between segments
  seg.ppages.resize(seg.size >> kPageShift);
  segments_.emplace(id, std::move(seg));
  seg_by_key_.emplace(key, id);
  return id;
}

std::int64_t Vm::shmat(ProcId proc, std::int64_t segid) {
  const auto it = segments_.find(segid);
  if (it == segments_.end()) return -1;
  Segment& seg = it->second;
  ++seg.attach_count;
  if (shm_attaches_ != nullptr) shm_attaches_->inc();
  // Pages are mapped lazily in translate(); pre-populate already-allocated
  // common pages into this process's table so repeated attaches are cheap.
  auto& table = tables_[proc];
  for (std::size_t i = 0; i < seg.ppages.size(); ++i)
    if (seg.ppages[i].has_value())
      table.emplace((seg.base >> kPageShift) + i,
                    Pte{*seg.ppages[i], home_of_ppage(*seg.ppages[i])});
  return static_cast<std::int64_t>(seg.base);
}

std::int64_t Vm::shmdt(ProcId proc, std::int64_t segid) {
  const auto it = segments_.find(segid);
  if (it == segments_.end()) return -1;
  Segment& seg = it->second;
  if (seg.attach_count <= 0) return -1;
  --seg.attach_count;
  auto& table = tables_[proc];
  for (std::size_t i = 0; i < seg.ppages.size(); ++i)
    table.erase((seg.base >> kPageShift) + i);
  // Mappings were removed: shoot down every cached translation this process
  // holds (the TLB is not tagged by segment, so drop it wholesale).
  tlb_flush(proc);
  return 0;
}

std::uint64_t Vm::segment_size(std::int64_t segid) const {
  const auto it = segments_.find(segid);
  COMPASS_CHECK_MSG(it != segments_.end(), "no such segment " << segid);
  return it->second.size;
}

Addr Vm::segment_base(std::int64_t segid) const {
  const auto it = segments_.find(segid);
  COMPASS_CHECK_MSG(it != segments_.end(), "no such segment " << segid);
  return it->second.base;
}

std::size_t Vm::mapped_pages(ProcId proc) const {
  const auto it = tables_.find(proc);
  return it == tables_.end() ? 0 : it->second.size();
}

std::vector<std::size_t> Vm::pages_per_node() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(cfg_.num_nodes), 0);
  for (const auto& [_, home] : page_homes_) ++out[static_cast<std::size_t>(home)];
  return out;
}

namespace {
// Unordered page tables serialize in sorted vpage order (canonical form).
void save_page_table(util::StateSink& sink, const std::unordered_map<std::uint64_t, Vm::Pte>& table) {
  std::vector<std::pair<std::uint64_t, Vm::Pte>> entries(table.begin(), table.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  sink.varint(entries.size());
  for (const auto& [vpage, pte] : entries) {
    sink.varint(vpage);
    sink.varint(pte.ppage);
    sink.svarint(pte.home);
  }
}

void load_page_table(util::StateSource& src, std::unordered_map<std::uint64_t, Vm::Pte>& table) {
  table.clear();
  const std::uint64_t n = src.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t vpage = src.varint();
    Vm::Pte pte;
    pte.ppage = src.varint();
    pte.home = static_cast<NodeId>(src.svarint());
    table.emplace(vpage, pte);
  }
}
}  // namespace

void Vm::ckpt_save(util::StateSink& sink) const {
  sink.varint(shootdown_epoch_);
  sink.varint(next_ppage_);
  sink.varint(rr_next_node_);
  sink.varint(next_shm_base_);
  sink.svarint(next_segid_);
  std::vector<std::pair<std::uint64_t, NodeId>> homes(page_homes_.begin(),
                                                      page_homes_.end());
  std::sort(homes.begin(), homes.end());
  sink.varint(homes.size());
  for (const auto& [ppage, home] : homes) {
    sink.varint(ppage);
    sink.svarint(home);
  }
  sink.varint(tables_.size());
  for (const auto& [proc, table] : tables_) {
    sink.svarint(proc);
    save_page_table(sink, table);
  }
  save_page_table(sink, kernel_table_);
  sink.varint(segments_.size());
  for (const auto& [segid, seg] : segments_) {
    sink.svarint(segid);
    sink.varint(seg.key);
    sink.varint(seg.size);
    sink.varint(seg.base);
    sink.svarint(seg.attach_count);
    sink.varint(seg.ppages.size());
    for (const auto& p : seg.ppages)
      sink.varint(p.has_value() ? *p + 1 : 0);
  }
}

void Vm::ckpt_load(util::StateSource& src) {
  shootdown_epoch_ = src.varint();
  next_ppage_ = src.varint();
  rr_next_node_ = src.varint();
  next_shm_base_ = src.varint();
  next_segid_ = src.svarint();
  page_homes_.clear();
  const std::uint64_t nh = src.varint();
  for (std::uint64_t i = 0; i < nh; ++i) {
    const std::uint64_t ppage = src.varint();
    page_homes_.emplace(ppage, static_cast<NodeId>(src.svarint()));
  }
  tables_.clear();
  const std::uint64_t nt = src.varint();
  for (std::uint64_t i = 0; i < nt; ++i) {
    const auto proc = static_cast<ProcId>(src.svarint());
    load_page_table(src, tables_[proc]);
  }
  load_page_table(src, kernel_table_);
  segments_.clear();
  seg_by_key_.clear();
  const std::uint64_t ns = src.varint();
  for (std::uint64_t i = 0; i < ns; ++i) {
    const std::int64_t segid = src.svarint();
    Segment seg;
    seg.key = src.varint();
    seg.size = src.varint();
    seg.base = src.varint();
    seg.attach_count = static_cast<int>(src.svarint());
    const std::uint64_t np = src.varint();
    seg.ppages.resize(np);
    for (std::uint64_t p = 0; p < np; ++p) {
      const std::uint64_t v = src.varint();
      if (v != 0) seg.ppages[p] = v - 1;
    }
    seg_by_key_[seg.key] = segid;
    segments_.emplace(segid, std::move(seg));
  }
  // The TLBs cache translations from the pre-install tables; drop them all
  // (they refill lazily and transparently — Debug cross-checks every hit).
  tlbs_.clear();
  for (auto& e : kernel_tlb_) e = TlbEntry{};
}

}  // namespace compass::mem
