// Simulated-address arenas backed by host memory.
//
// Workload and kernel code in this reproduction is real C++ operating on
// real data; what the simulator needs is the *simulated effective address*
// of every touched datum. An Arena carves a simulated virtual range and
// backs it with host memory, so code can allocate simulated objects, access
// them through typed helpers that both perform the host access and emit the
// memory-reference event, and pass simulated addresses across the
// user/kernel boundary (the AddressMap resolves any registered simulated
// address back to host memory, as the shared address space of a real
// machine would).
//
// Allocation uses a first-fit free list with coalescing; all methods are
// thread-safe (arenas are shared between frontend threads and OS-server
// threads).
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/sim_context.h"
#include "core/types.h"
#include "util/check.h"
#include "util/state_io.h"

namespace compass::mem {

class Arena {
 public:
  /// A simulated range [base, base+capacity) backed by a host buffer.
  Arena(std::string name, Addr base, std::size_t capacity);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  const std::string& name() const { return name_; }
  Addr base() const { return base_; }
  Addr limit() const { return base_ + capacity_; }
  std::size_t capacity() const { return capacity_; }
  bool contains(Addr a) const { return a >= base_ && a < limit(); }

  /// Allocate `size` bytes (aligned); throws SimError when exhausted.
  Addr alloc(std::size_t size, std::size_t align = 8);
  /// Return a block to the free list.
  void free(Addr addr, std::size_t size);

  /// Host pointer for a simulated address inside this arena.
  std::byte* host(Addr a) {
    COMPASS_CHECK_MSG(contains(a), name_ << ": address 0x" << std::hex << a
                                         << " outside arena");
    return data_.get() + (a - base_);
  }
  const std::byte* host(Addr a) const {
    return const_cast<Arena*>(this)->host(a);
  }

  std::size_t bytes_in_use() const;

  /// Serialize identity, free list and contents, delta-compressed against
  /// zero pages: only 4 KiB pages with any nonzero byte are emitted. Safe at
  /// a quiescent dispatch point: every frontend host thread is parked in a
  /// port wait that happens-after its last arena write.
  void ckpt_dump(util::StateSink& sink) const;

 private:
  std::string name_;
  Addr base_;
  std::size_t capacity_;
  std::unique_ptr<std::byte[]> data_;
  mutable std::mutex mu_;
  std::map<Addr, std::size_t> free_list_;  // start -> size, coalesced
};

/// Registry of arenas resolving any simulated address to host memory.
class AddressMap {
 public:
  /// Register an arena; ranges must not overlap.
  void add(Arena& arena);
  void remove(const Arena& arena);

  Arena& arena_of(Addr a);
  std::byte* host(Addr a) { return arena_of(a).host(a); }

  /// Visit every registered arena in ascending base order.
  void for_each(const std::function<void(const Arena&)>& fn) const {
    std::lock_guard lock(mu_);
    for (const auto& [base, arena] : by_base_) fn(*arena);
  }

 private:
  mutable std::mutex mu_;
  std::map<Addr, Arena*> by_base_;
};

// ---- typed simulated access helpers ---------------------------------------
//
// Each helper emits the memory-reference event (when the context is
// attached and instrumentation is on) and performs the host access, so the
// workload's results are exact while the architecture model sees the
// reference stream.

template <class T>
T sim_read(core::SimContext& ctx, AddressMap& mem, Addr addr) {
  static_assert(std::is_trivially_copyable_v<T>);
  ctx.load(addr, sizeof(T));
  T out;
  std::memcpy(&out, mem.host(addr), sizeof(T));
  return out;
}

template <class T>
void sim_write(core::SimContext& ctx, AddressMap& mem, Addr addr, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  ctx.store(addr, sizeof(T));
  std::memcpy(mem.host(addr), &v, sizeof(T));
}

/// Copy `n` bytes of simulated memory, emitting one load and one store per
/// cache-line-sized chunk (the instrumented copy loop of kernel code).
void sim_memcpy(core::SimContext& ctx, AddressMap& mem, Addr dst, Addr src,
                std::size_t n, std::size_t chunk = 64);

/// Touch `n` bytes read-only (checksum/scan loops): one load per chunk plus
/// `per_chunk_compute` cycles.
void sim_scan(core::SimContext& ctx, AddressMap& mem, Addr src, std::size_t n,
              Cycles per_chunk_compute = 2, std::size_t chunk = 64);

/// Write `n` bytes of a constant (memset-style), one store per chunk.
void sim_memset(core::SimContext& ctx, AddressMap& mem, Addr dst, int value,
                std::size_t n, std::size_t chunk = 64);

}  // namespace compass::mem
