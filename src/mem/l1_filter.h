// Frontend-resident L1 reference filter (SimConfig::l1_filter).
//
// L1Filter keeps an exact *subset* mirror of the owning frontend's current
// CPU L1: a map of proven-resident physical lines (with their MESI state)
// plus the virtual-to-physical page mappings that were proven alongside
// them. Every entry was taught by a backend reply — the backend piggybacks,
// on each data-batch reply, the line the batch's last reference left
// resident (plus any own-L1 victims it displaced) and the CPU's coherence
// generation. The mirror is dropped whenever the generation moves (remote
// invalidation/downgrade, context switch, OS/IRQ handoff, TLB shootdown),
// so a resident entry is always a *proof*:
//
//   line resident in mirror  =>  line resident in the literal L1 with at
//   least that MESI state    =>  the model charges exactly l1_hit.
//
// Absorb rules (identical for the snooping and CC-NUMA machines):
//   * loads hit on S/E/M;
//   * stores hit on M, and on E with a silent local E->M upgrade (the model
//     performs the same transition when the reference is replayed);
//   * stores on S are never absorbed (they need a bus/directory upgrade);
//   * sync references and unknown lines/pages are never absorbed.
//
// A resident line implies the page mapping exists, so no page-fault charge
// can hide inside an absorbed reference. Every model access costs at least
// l1_hit, so a wrong prediction (possible only under coarsened interleaving)
// is always an *under*-estimate that the reply's resume_time corrects.
#pragma once

#include <cstdint>

#include "core/ref_filter.h"
#include "mem/line_map.h"
#include "mem/mem_config.h"

namespace compass::mem {

class L1Filter : public core::RefFilter {
 public:
  L1Filter(Cycles hit_latency, std::uint32_t line_size);

  Cycles try_absorb(RefType type, Addr addr) override;
  void on_reply(const core::Reply& r) override;
  std::uint64_t generation() const override { return gen_; }

  // Observability (tests/bench).
  CpuId mirror_cpu() const { return cpu_; }
  std::size_t resident_lines() const { return lines_.size(); }

 private:
  const Cycles hit_;
  const Addr line_mask_;
  CpuId cpu_ = kNoCpu;
  std::uint64_t gen_ = 0;
  LineMap lines_;  ///< physical line address -> MESI code (1=S 2=E 3=M)
  LineMap pages_;  ///< vpage -> ppage + 1 (biased so values stay non-zero)
};

/// Filter for the flat fixed-latency model: every load/store costs exactly
/// `latency` regardless of history, so everything is absorbable with no
/// mirror at all. Absorbed references still replay through FlatMemory when
/// the batch crosses, keeping its reference tally and VM fault creation
/// exact.
class FlatFilter : public core::RefFilter {
 public:
  explicit FlatFilter(Cycles latency) : latency_(latency) {}

  Cycles try_absorb(RefType type, Addr addr) override {
    (void)type;
    (void)addr;
    return latency_;
  }
  void on_reply(const core::Reply& r) override { (void)r; }
  std::uint64_t generation() const override { return 0; }

 private:
  const Cycles latency_;
};

}  // namespace compass::mem
