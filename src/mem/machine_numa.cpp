// NumaMachine: the "complex backend" — two-level caches per processor with
// a full-map directory protocol, per-node memory controllers, and a ring
// interconnection network.
#include "mem/machine.h"

#include <algorithm>
#include <bit>

#include "mem/line_shard.h"

namespace compass::mem {

NumaMachine::NumaMachine(const NumaMachineConfig& cfg, int num_cpus,
                         int num_nodes, Vm& vm, stats::StatsRegistry* stats)
    : cfg_(cfg), vm_(vm), num_nodes_(num_nodes) {
  cfg_.validate();
  COMPASS_CHECK(num_cpus > 0 && num_nodes > 0);
  COMPASS_CHECK_MSG(num_cpus % num_nodes == 0,
                    "CPUs must divide evenly across nodes");
  COMPASS_CHECK_MSG(num_cpus <= 64, "directory sharer bitmask holds 64 CPUs");
  cpus_per_node_ = num_cpus / num_nodes;
  l1_.reserve(static_cast<std::size_t>(num_cpus));
  l2_.reserve(static_cast<std::size_t>(num_cpus));
  for (int c = 0; c < num_cpus; ++c) {
    l1_.emplace_back("l1.cpu" + std::to_string(c), cfg_.l1, stats);
    l2_.emplace_back("l2.cpu" + std::to_string(c), cfg_.l2, stats);
  }
  dirs_.resize(static_cast<std::size_t>(num_nodes));
  mem_free_.resize(static_cast<std::size_t>(num_nodes), 0);
  net_free_.resize(static_cast<std::size_t>(num_nodes), 0);
  gens_.resize(static_cast<std::size_t>(num_cpus), 0);
  teach_.resize(static_cast<std::size_t>(num_cpus));
  if (stats != nullptr) {
    local_accesses_ = &stats->counter("numa.local_accesses");
    remote_accesses_ = &stats->counter("numa.remote_accesses");
    dir_forwards_ = &stats->counter("numa.dir_forwards");
    dir_invalidations_ = &stats->counter("numa.dir_invalidations");
    net_msgs_ = &stats->counter("numa.net_msgs");
    faults_charged_ = &stats->counter("machine.page_faults");
  }
}

int NumaMachine::ring_hops(NodeId a, NodeId b) const {
  const int d = std::abs(a - b);
  return std::min(d, num_nodes_ - d);
}

Cycles NumaMachine::mem_service(NodeId node, Cycles now) {
  Cycles& free = mem_free_[static_cast<std::size_t>(node)];
  const Cycles start = std::max(now, free);
  free = start + cfg_.mem_access;
  return (start - now) + cfg_.mem_access;
}

Cycles NumaMachine::net_msg(NodeId from, NodeId to, std::uint32_t bytes,
                            Cycles now) {
  if (from == to) return 0;
  if (net_msgs_ != nullptr) net_msgs_->inc();
  const auto transfer =
      static_cast<Cycles>(static_cast<double>(bytes) / cfg_.net_bytes_per_cycle);
  // Sender-port contention: the port is occupied for the payload transfer.
  Cycles& free = net_free_[static_cast<std::size_t>(from)];
  const Cycles start = std::max(now, free);
  free = start + transfer + 1;
  const Cycles queue = start - now;
  return queue + cfg_.net_base +
         static_cast<Cycles>(ring_hops(from, to)) * cfg_.net_per_hop + transfer;
}

void NumaMachine::drop_from_cpu(CpuId cpu, PhysAddr line) {
  // Only ever called for a CPU other than the requester (directory-driven
  // invalidation), so the drop voids that CPU's frontend-mirror proofs.
  l1_[static_cast<std::size_t>(cpu)].set_state(line, Mesi::kInvalid);
  l2_[static_cast<std::size_t>(cpu)].set_state(line, Mesi::kInvalid);
  gen_bump(cpu);
}

void NumaMachine::evict_l2(CpuId cpu, const Cache::Victim& victim, Cycles now) {
  // The L1 copy must go too (inclusive semantics for coherence).
  l1_[static_cast<std::size_t>(cpu)].set_state(victim.addr, Mesi::kInvalid);
  // This is the requester's own eviction: the mirror learns it through the
  // teach rather than a generation bump.
  if (filter_on_) teach_[static_cast<std::size_t>(cpu)].victim2 = victim.addr;
  const NodeId home = vm_.home_of(victim.addr);
  auto& dir = dirs_[static_cast<std::size_t>(home)];
  const auto it = dir.find(victim.addr);
  if (it == dir.end()) return;
  DirEntry& e = it->second;
  if (e.state == DirEntry::State::kOwned && e.owner == cpu) {
    // Dirty or exclusive-clean owner eviction: memory becomes the owner.
    if (victim.state == Mesi::kModified) (void)mem_service(home, now);
    dir.erase(it);
  } else if (e.state == DirEntry::State::kShared) {
    e.sharers &= ~(1ull << cpu);
    if (e.sharers == 0) dir.erase(it);
  }
}

void NumaMachine::fill(CpuId cpu, PhysAddr line, Mesi state, Cycles now) {
  Cache& l1 = l1_[static_cast<std::size_t>(cpu)];
  Cache& l2 = l2_[static_cast<std::size_t>(cpu)];
  const auto l2_victim = l2.insert(line, state);
  if (l2_victim.has_value()) evict_l2(cpu, *l2_victim, now);
  const auto l1_victim = l1.insert(line, state);
  if (l1_victim.has_value()) {
    if (filter_on_) teach_[static_cast<std::size_t>(cpu)].victim = l1_victim->addr;
    if (l1_victim->state == Mesi::kModified) {
      // Fold dirty L1 victims into L2 when the line is still there.
      if (l2.probe(l1_victim->addr) != Mesi::kInvalid)
        l2.set_state(l1_victim->addr, Mesi::kModified);
    }
  }
}

Cycles NumaMachine::access(CpuId cpu, ProcId proc, const core::Event& ev) {
  Cache& l1 = l1_[static_cast<std::size_t>(cpu)];
  Cache& l2 = l2_[static_cast<std::size_t>(cpu)];
  const NodeId my_node = node_of_cpu(cpu);

  const Vm::Translation tr = vm_.translate(proc, ev.addr, my_node);
  Cycles lat = 0;
  if (tr.fault) {
    lat += cfg_.page_fault;
    if (faults_charged_ != nullptr) faults_charged_->inc();
  }
  const PhysAddr line = l2.line_addr(tr.paddr);
  const PhysAddr ppage = tr.paddr >> kPageShift;
  const bool is_write = ev.ref_type != RefType::kLoad;
  const Cycles sync_extra =
      ev.ref_type == RefType::kSync ? cfg_.sync_overhead : 0;
  if (filter_on_) {
    // Victims recorded by fill()/evict_l2() below belong to THIS reference;
    // clear leftovers from an earlier (already overwritten) teach.
    teach_[static_cast<std::size_t>(cpu)].victim = core::L1Teach::kNone;
    teach_[static_cast<std::size_t>(cpu)].victim2 = core::L1Teach::kNone;
  }

  // ---- L1 ----------------------------------------------------------------
  const Mesi s1 = l1.lookup(line);
  if (s1 != Mesi::kInvalid) {
    if (!is_write || s1 == Mesi::kModified)
      return finish_ref(cpu, ev, ppage, line, lat + cfg_.l1_hit + sync_extra);
    if (s1 == Mesi::kExclusive) {
      l1.set_state(line, Mesi::kModified);
      l2.set_state(line, Mesi::kModified);
      return finish_ref(cpu, ev, ppage, line, lat + cfg_.l1_hit + sync_extra);
    }
    // Shared in L1, write: fall through to the directory for ownership.
  }
  lat += cfg_.l1_hit;

  // ---- L2 ----------------------------------------------------------------
  const Mesi s2 = l2.lookup(line);
  if (s2 != Mesi::kInvalid) {
    if (!is_write || s2 == Mesi::kModified) {
      lat += cfg_.l2_hit;
      fill(cpu, line, s2, ev.time + lat);
      return finish_ref(cpu, ev, ppage, line, lat + sync_extra);
    }
    if (s2 == Mesi::kExclusive) {
      lat += cfg_.l2_hit;
      l2.set_state(line, Mesi::kModified);
      fill(cpu, line, Mesi::kModified, ev.time + lat);
      return finish_ref(cpu, ev, ppage, line, lat + sync_extra);
    }
    // Shared in L2, write: ownership request below.
  }
  lat += cfg_.l2_hit;

  // ---- Directory transaction at the home node -----------------------------
  const NodeId home = tr.home;
  if (home == my_node) {
    if (local_accesses_ != nullptr) local_accesses_->inc();
  } else if (remote_accesses_ != nullptr) {
    remote_accesses_->inc();
  }
  const std::uint32_t line_bytes = cfg_.l2.line_size;
  constexpr std::uint32_t kCtrlBytes = 8;

  // Request message to the home directory.
  lat += net_msg(my_node, home, kCtrlBytes, ev.time + lat);
  lat += cfg_.dir_lookup;

  auto& dir = dirs_[static_cast<std::size_t>(home)];
  const auto it = dir.find(line);
  Mesi grant;
  if (it == dir.end()) {
    // Uncached: memory supplies the line.
    lat += mem_service(home, ev.time + lat);
    DirEntry e;
    if (is_write) {
      e.state = DirEntry::State::kOwned;
      e.owner = cpu;
      grant = Mesi::kModified;
    } else {
      e.state = DirEntry::State::kOwned;  // exclusive-clean grant
      e.owner = cpu;
      grant = Mesi::kExclusive;
    }
    dir.emplace(line, e);
    lat += net_msg(home, my_node, line_bytes, ev.time + lat);
  } else {
    DirEntry& e = it->second;
    if (e.state == DirEntry::State::kOwned && e.owner != cpu) {
      // Forward to the owner; it supplies the line.
      const NodeId owner_node = node_of_cpu(e.owner);
      if (dir_forwards_ != nullptr) dir_forwards_->inc();
      lat += net_msg(home, owner_node, kCtrlBytes, ev.time + lat);
      lat += cfg_.l2_hit;  // owner cache probe
      if (is_write) {
        drop_from_cpu(e.owner, line);
        if (dir_invalidations_ != nullptr) dir_invalidations_->inc();
        e.owner = cpu;
        grant = Mesi::kModified;
      } else {
        // The owner's L1 may have silently replaced the line; L2 still
        // holds it (the directory is notified of L2 evictions).
        l1_[static_cast<std::size_t>(e.owner)].set_state_if_present(
            line, Mesi::kShared);
        l2_[static_cast<std::size_t>(e.owner)].set_state_if_present(
            line, Mesi::kShared);
        gen_bump(e.owner);  // M/E -> S: the owner's store proof is void
        // Memory is updated in the background; the directory now tracks
        // both as sharers.
        const CpuId prev = e.owner;
        e.state = DirEntry::State::kShared;
        e.owner = kNoCpu;
        e.sharers = (1ull << prev) | (1ull << cpu);
        (void)mem_service(home, ev.time + lat);
        grant = Mesi::kShared;
      }
      lat += net_msg(owner_node, my_node, line_bytes, ev.time + lat);
    } else if (e.state == DirEntry::State::kOwned && e.owner == cpu) {
      // We own it per the directory but missed locally — the line was
      // silently replaced from L1 while L2 kept it, or this is an upgrade
      // of our own exclusive line. The home already treats us as owner.
      grant = is_write ? Mesi::kModified : Mesi::kExclusive;
      lat += net_msg(home, my_node, line_bytes, ev.time + lat);
    } else {
      // Shared.
      if (is_write) {
        // Invalidate every sharer (in parallel); latency is one round trip
        // plus a small per-sharer directory cost. The directory bitmask is
        // walked bit by bit (ascending, like the old full CPU scan).
        int n_sharers = 0;
        std::uint64_t pending = e.sharers & ~(1ull << cpu);
        while (pending != 0) {
          const auto c = static_cast<CpuId>(std::countr_zero(pending));
          pending &= pending - 1;
          drop_from_cpu(c, line);
          ++n_sharers;
          if (dir_invalidations_ != nullptr) dir_invalidations_->inc();
        }
        if (n_sharers > 0)
          lat += cfg_.net_base + cfg_.net_per_hop +
                 static_cast<Cycles>(n_sharers) * 2;
        lat += mem_service(home, ev.time + lat);
        e.state = DirEntry::State::kOwned;
        e.owner = cpu;
        e.sharers = 0;
        grant = Mesi::kModified;
      } else {
        lat += mem_service(home, ev.time + lat);
        e.sharers |= 1ull << cpu;
        grant = Mesi::kShared;
      }
      lat += net_msg(home, my_node, line_bytes, ev.time + lat);
    }
  }
  fill(cpu, line, grant, ev.time + lat);
  return finish_ref(cpu, ev, ppage, line, lat + sync_extra);
}

Cycles NumaMachine::finish_ref(CpuId cpu, const core::Event& ev, PhysAddr ppage,
                               PhysAddr line, Cycles lat) {
  if (!filter_on_) return lat;
  // Teach the frontend mirror what this reference proved. Lines are tracked
  // at L2-line granularity (both levels are indexed by l2.line_addr), so
  // the filter's line mask must match the L2 line size.
  core::L1Teach& t = teach_[static_cast<std::size_t>(cpu)];
  t.vpage = ev.addr >> kPageShift;
  t.ppage = ppage;
  t.line = line;
  t.state =
      static_cast<std::uint8_t>(l1_[static_cast<std::size_t>(cpu)].probe(line));
  t.gen = l1_filter_gen(cpu);
#ifndef NDEBUG
  // Absorbed-hint cross-check (see SimpleMachine::access).
  if (ev.arg[0] == 1 && ev.arg[2] == static_cast<std::uint64_t>(cpu) &&
      ev.arg[1] == t.gen)
    COMPASS_CHECK_MSG(lat == cfg_.l1_hit,
                      "L1 filter absorbed a non-hit: cpu "
                          << cpu << " addr 0x" << std::hex << ev.addr
                          << std::dec << " latency " << lat);
#endif
  return lat;
}

void NumaMachine::lane_b_classify(CpuId cpu, ProcId proc,
                                  std::span<const core::Event> batch,
                                  core::LaneBClass& out) const {
  const auto c = static_cast<std::size_t>(cpu);
  classify_l1l2_batch(vm_, l1_[c], l2_[c], proc, batch, cfg_.l1_hit,
                      cfg_.sync_overhead, out);
}

Cycles NumaMachine::lane_b_apply(CpuId cpu, const core::Event& ev,
                                 const core::LaneBVerdict& v) {
  // Proven own-L1 hit (lines tracked at L2-line granularity, like access).
  // Touches only this CPU's cache arrays at the verdict ways: no directory,
  // no memory controller or network horizon, no gens_, no peer cache.
  const auto c = static_cast<std::size_t>(cpu);
  l1_[c].touch_hit(v.way);
  if (v.op == core::LaneBOp::kTouchToML2) {
    l1_[c].set_state_at(v.way, Mesi::kModified);
    l2_[c].set_state_at(v.way2, Mesi::kModified);
  }
  (void)ev;
  return v.lat;
}

void NumaMachine::on_context_switch(CpuId cpu, ProcId, ProcId) {
  // Cache contents persist; migration cost (cold caches on the new CPU)
  // emerges from the miss stream — this is what the affinity scheduler
  // exploits. The switch does void the outgoing frontend's mirror proofs.
  gen_bump(cpu);
}

void NumaMachine::ckpt_save(util::StateSink& sink) const {
  sink.varint(l1_.size());
  for (const Cache& c : l1_) c.ckpt_save(sink);
  for (const Cache& c : l2_) c.ckpt_save(sink);
  // Directories in sorted line order: the unordered_map's physical layout is
  // insertion-history-dependent and behaviorally irrelevant.
  sink.varint(dirs_.size());
  for (const auto& dir : dirs_) {
    std::vector<std::pair<PhysAddr, DirEntry>> entries(dir.begin(), dir.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    sink.varint(entries.size());
    for (const auto& [line, e] : entries) {
      sink.varint(line);
      sink.u8(static_cast<std::uint8_t>(e.state));
      sink.varint(e.sharers);
      sink.svarint(e.owner);
    }
  }
  for (const Cycles c : mem_free_) sink.varint(c);
  for (const Cycles c : net_free_) sink.varint(c);
  for (const std::uint64_t g : gens_) sink.varint(g);
  for (const core::L1Teach& t : teach_) ckpt_save_teach(sink, t);
}

void NumaMachine::ckpt_load(util::StateSource& src) {
  if (src.varint() != l1_.size())
    throw util::StateError("NumaMachine CPU count mismatch in checkpoint");
  for (Cache& c : l1_) c.ckpt_load(src);
  for (Cache& c : l2_) c.ckpt_load(src);
  if (src.varint() != dirs_.size())
    throw util::StateError("NumaMachine node count mismatch in checkpoint");
  for (auto& dir : dirs_) {
    dir.clear();
    const std::uint64_t n = src.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const PhysAddr line = src.varint();
      DirEntry e;
      e.state = static_cast<DirEntry::State>(src.u8());
      e.sharers = src.varint();
      e.owner = static_cast<CpuId>(src.svarint());
      dir.emplace(line, e);
    }
  }
  for (Cycles& c : mem_free_) c = src.varint();
  for (Cycles& c : net_free_) c = src.varint();
  for (std::uint64_t& g : gens_) g = src.varint();
  for (core::L1Teach& t : teach_) t = ckpt_load_teach(src);
}

}  // namespace compass::mem
