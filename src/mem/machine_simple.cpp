// FlatMemory and SimpleMachine (MESI snooping bus) implementations.
#include "mem/machine.h"

namespace compass::mem {

// ----------------------------------------------------------- FlatMemory

FlatMemory::FlatMemory(Cycles latency, Vm* vm, stats::StatsRegistry* stats)
    : latency_(latency), vm_(vm) {
  if (stats != nullptr) refs_ = &stats->counter("flat.refs");
}

Cycles FlatMemory::access(CpuId, ProcId proc, const core::Event& ev) {
  if (refs_ != nullptr) refs_->inc();
  if (vm_ != nullptr) (void)vm_->translate(proc, ev.addr, 0);
  return latency_;
}

// --------------------------------------------------------- SimpleMachine

SimpleMachine::SimpleMachine(const SimpleMachineConfig& cfg, int num_cpus,
                             Vm& vm, stats::StatsRegistry* stats)
    : cfg_(cfg), vm_(vm) {
  cfg_.validate();
  COMPASS_CHECK(num_cpus > 0);
  caches_.reserve(static_cast<std::size_t>(num_cpus));
  for (int c = 0; c < num_cpus; ++c)
    caches_.emplace_back("l1.cpu" + std::to_string(c), cfg_.l1, stats);
  if (stats != nullptr) {
    bus_txns_ = &stats->counter("bus.transactions");
    invalidations_ = &stats->counter("bus.invalidations");
    interventions_ = &stats->counter("bus.interventions");
    faults_charged_ = &stats->counter("machine.page_faults");
  }
}

Cycles SimpleMachine::bus_acquire(Cycles now, Cycles occupancy) {
  const Cycles start = std::max(now, bus_free_);
  bus_free_ = start + occupancy;
  if (bus_txns_ != nullptr) bus_txns_->inc();
  return (start - now) + occupancy;
}

void SimpleMachine::invalidate_others(CpuId cpu, PhysAddr line) {
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    if (static_cast<CpuId>(c) == cpu) continue;
    if (caches_[c].probe(line) != Mesi::kInvalid) {
      caches_[c].set_state(line, Mesi::kInvalid);
      if (invalidations_ != nullptr) invalidations_->inc();
    }
  }
}

Cycles SimpleMachine::access(CpuId cpu, ProcId proc, const core::Event& ev) {
  Cache& cache = caches_[static_cast<std::size_t>(cpu)];
  const Vm::Translation tr = vm_.translate(proc, ev.addr, 0);
  Cycles lat = 0;
  if (tr.fault) {
    lat += cfg_.page_fault;
    if (faults_charged_ != nullptr) faults_charged_->inc();
  }
  const PhysAddr line = cache.line_addr(tr.paddr);
  const bool is_write = ev.ref_type != RefType::kLoad;
  const Cycles now = ev.time + lat;

  const Mesi state = cache.lookup(line);
  if (state != Mesi::kInvalid) {
    if (!is_write || state == Mesi::kModified) {
      lat += cfg_.l1_hit;
    } else if (state == Mesi::kExclusive) {
      cache.set_state(line, Mesi::kModified);
      lat += cfg_.l1_hit;
    } else {
      // Shared, write: bus upgrade invalidating other copies.
      lat += cfg_.l1_hit + bus_acquire(now, cfg_.upgrade_latency);
      invalidate_others(cpu, line);
      cache.set_state(line, Mesi::kModified);
    }
  } else {
    // Miss: full bus transaction with a snoop of every other cache.
    lat += cfg_.l1_hit;  // probe
    CpuId dirty_owner = kNoCpu;
    bool shared_elsewhere = false;
    for (std::size_t c = 0; c < caches_.size(); ++c) {
      if (static_cast<CpuId>(c) == cpu) continue;
      const Mesi s = caches_[c].probe(line);
      if (s == Mesi::kModified) dirty_owner = static_cast<CpuId>(c);
      else if (s != Mesi::kInvalid) shared_elsewhere = true;
    }
    lat += bus_acquire(now, cfg_.bus_occupancy);
    Mesi fill_state;
    if (dirty_owner != kNoCpu) {
      // Dirty intervention: the owning cache supplies the line.
      lat += cfg_.cache_to_cache;
      if (interventions_ != nullptr) interventions_->inc();
      if (is_write) {
        caches_[static_cast<std::size_t>(dirty_owner)].set_state(line,
                                                                 Mesi::kInvalid);
        if (invalidations_ != nullptr) invalidations_->inc();
        fill_state = Mesi::kModified;
      } else {
        caches_[static_cast<std::size_t>(dirty_owner)].set_state(line,
                                                                 Mesi::kShared);
        fill_state = Mesi::kShared;
      }
    } else {
      lat += cfg_.mem_latency;
      if (is_write) {
        invalidate_others(cpu, line);
        fill_state = Mesi::kModified;
      } else if (shared_elsewhere) {
        // Other clean copies downgrade any E to S.
        for (std::size_t c = 0; c < caches_.size(); ++c) {
          if (static_cast<CpuId>(c) == cpu) continue;
          if (caches_[c].probe(line) == Mesi::kExclusive)
            caches_[c].set_state(line, Mesi::kShared);
        }
        fill_state = Mesi::kShared;
      } else {
        fill_state = Mesi::kExclusive;
      }
    }
    const auto victim = cache.insert(line, fill_state);
    if (victim.has_value() && victim->state == Mesi::kModified) {
      // Write the victim back; occupies the bus but completes asynchronously
      // with respect to the requester.
      (void)bus_acquire(bus_free_, cfg_.bus_occupancy);
    }
  }
  if (ev.ref_type == RefType::kSync) lat += cfg_.sync_overhead;
  return lat;
}

void SimpleMachine::on_context_switch(CpuId, ProcId, ProcId) {
  // Cache contents persist across context switches; nothing to do. Cold
  // misses for the incoming process emerge naturally.
}

}  // namespace compass::mem
