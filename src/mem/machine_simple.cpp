// FlatMemory and SimpleMachine (MESI snooping bus) implementations.
#include "mem/machine.h"

#include <bit>

#include "mem/line_shard.h"

namespace compass::mem {

// ----------------------------------------------------------- FlatMemory

FlatMemory::FlatMemory(Cycles latency, Vm* vm, stats::StatsRegistry* stats)
    : latency_(latency), vm_(vm) {
  if (stats != nullptr) refs_ = &stats->counter("flat.refs");
}

Cycles FlatMemory::access(CpuId, ProcId proc, const core::Event& ev) {
  // Tally into the atomic (access() may run on a shard worker); the sum is
  // order-insensitive, so the flushed counter is identical for any worker
  // count.
  if (refs_ != nullptr) pending_refs_.fetch_add(1, std::memory_order_relaxed);
  if (vm_ != nullptr) (void)vm_->translate(proc, ev.addr, 0);
  return latency_;
}

void FlatMemory::flush_stats() {
  if (refs_ != nullptr)
    refs_->inc(pending_refs_.exchange(0, std::memory_order_relaxed));
}

// --------------------------------------------------------- SimpleMachine

SimpleMachine::SimpleMachine(const SimpleMachineConfig& cfg, int num_cpus,
                             Vm& vm, stats::StatsRegistry* stats)
    : cfg_(cfg), vm_(vm) {
  cfg_.validate();
  COMPASS_CHECK(num_cpus > 0);
  snoop_filter_ = num_cpus >= cfg_.snoop_filter_min_cpus && num_cpus <= 64;
  caches_.reserve(static_cast<std::size_t>(num_cpus));
  for (int c = 0; c < num_cpus; ++c)
    caches_.emplace_back("l1.cpu" + std::to_string(c), cfg_.l1, stats);
  gens_.resize(static_cast<std::size_t>(num_cpus), 0);
  teach_.resize(static_cast<std::size_t>(num_cpus));
  if (stats != nullptr) {
    bus_txns_ = &stats->counter("bus.transactions");
    invalidations_ = &stats->counter("bus.invalidations");
    interventions_ = &stats->counter("bus.interventions");
    faults_charged_ = &stats->counter("machine.page_faults");
  }
}

Cycles SimpleMachine::bus_acquire(Cycles now, Cycles occupancy) {
  const Cycles start = std::max(now, bus_free_);
  bus_free_ = start + occupancy;
  if (bus_txns_ != nullptr) bus_txns_->inc();
  return (start - now) + occupancy;
}

std::uint64_t SimpleMachine::sharers_of(PhysAddr line) const {
  return presence_.get(line);
}

void SimpleMachine::filter_clear(CpuId cpu, PhysAddr line) {
  if (!snoop_filter_) return;
  presence_.clear_bits(line, 1ull << cpu);
}

void SimpleMachine::verify_filter(PhysAddr line) const {
#ifndef NDEBUG
  // Debug builds cross-check the filter against the literal probe sweep
  // (same pattern as pending_index / the Vm TLB).
  if (!snoop_filter_) return;
  std::uint64_t mask = 0;
  for (std::size_t c = 0; c < caches_.size(); ++c)
    if (caches_[c].probe(line) != Mesi::kInvalid) mask |= 1ull << c;
  COMPASS_CHECK_MSG(mask == sharers_of(line),
                    "snoop filter disagrees with probe sweep on line 0x"
                        << std::hex << line << ": filter 0x" << sharers_of(line)
                        << " probes 0x" << mask);
#else
  (void)line;
#endif
}

void SimpleMachine::collect_peers(CpuId cpu, PhysAddr line) {
  scratch_peers_.clear();
  scratch_mask_ = 0;
  if (snoop_filter_) {
    verify_filter(line);
    // The miss that called us always ends by inserting `line` into `cpu`'s
    // cache, so one fetch_or both reads the sharer set and records the
    // requester as a sharer — a single table walk instead of a get + a
    // later set.
    std::uint64_t m =
        presence_.fetch_or(line, 1ull << cpu) & ~(1ull << cpu);
    scratch_mask_ = m;
    while (m != 0) {
      const auto c = static_cast<CpuId>(std::countr_zero(m));
      m &= m - 1;
      // A set bit means the line is resident, so the probe only reads the
      // MESI state — no sweep over absent caches.
      scratch_peers_.emplace_back(c,
                                  caches_[static_cast<std::size_t>(c)].probe(line));
    }
    return;
  }
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    if (static_cast<CpuId>(c) == cpu) continue;
    const Mesi s = caches_[c].probe(line);
    if (s != Mesi::kInvalid)
      scratch_peers_.emplace_back(static_cast<CpuId>(c), s);
  }
}

void SimpleMachine::invalidate_others(CpuId cpu, PhysAddr line) {
  if (snoop_filter_) {
    verify_filter(line);
    const std::uint64_t peers = sharers_of(line) & ~(1ull << cpu);
    for (std::uint64_t m = peers; m != 0; m &= m - 1) {
      const auto c = static_cast<CpuId>(std::countr_zero(m));
      caches_[static_cast<std::size_t>(c)].set_state(line, Mesi::kInvalid);
      gen_bump(c);
      if (invalidations_ != nullptr) invalidations_->inc();
    }
    // Drop every peer bit with one map operation instead of one per peer.
    if (peers != 0) presence_.clear_bits(line, peers);
    return;
  }
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    if (static_cast<CpuId>(c) == cpu) continue;
    if (caches_[c].probe(line) != Mesi::kInvalid) {
      caches_[c].set_state(line, Mesi::kInvalid);
      gen_bump(static_cast<CpuId>(c));
      if (invalidations_ != nullptr) invalidations_->inc();
    }
  }
}

Cycles SimpleMachine::access(CpuId cpu, ProcId proc, const core::Event& ev) {
  const Vm::Translation tr = vm_.translate(proc, ev.addr, 0);
  Cycles lat = 0;
  if (tr.fault) {
    lat += cfg_.page_fault;
    if (faults_charged_ != nullptr) faults_charged_->inc();
  }
  Cache& cache = caches_[static_cast<std::size_t>(cpu)];
  const PhysAddr line = cache.line_addr(tr.paddr);
  const bool is_write = ev.ref_type != RefType::kLoad;
  const Cycles now = ev.time + lat;

  PhysAddr teach_victim = core::L1Teach::kNone;
  const Mesi state = cache.lookup(line);
  if (state != Mesi::kInvalid) {
    if (!is_write || state == Mesi::kModified) {
      lat += cfg_.l1_hit;
    } else if (state == Mesi::kExclusive) {
      cache.set_state(line, Mesi::kModified);
      lat += cfg_.l1_hit;
    } else {
      // Shared, write: bus upgrade invalidating other copies.
      lat += cfg_.l1_hit + bus_acquire(now, cfg_.upgrade_latency);
      invalidate_others(cpu, line);
      cache.set_state(line, Mesi::kModified);
    }
  } else {
    // Miss: one snoop pass over the peers actually holding the line (all
    // peers when the filter is off). The pass records each peer's state, so
    // the write-invalidate below reuses it instead of re-probing — the
    // former probe + invalidate_others double sweep folded into one.
    lat += cfg_.l1_hit;  // probe
    collect_peers(cpu, line);
    CpuId dirty_owner = kNoCpu;
    bool shared_elsewhere = false;
    for (const auto& [c, s] : scratch_peers_) {
      if (s == Mesi::kModified) dirty_owner = c;
      else shared_elsewhere = true;
    }
    lat += bus_acquire(now, cfg_.bus_occupancy);
    Mesi fill_state;
    if (dirty_owner != kNoCpu) {
      // Dirty intervention: the owning cache supplies the line.
      lat += cfg_.cache_to_cache;
      if (interventions_ != nullptr) interventions_->inc();
      if (is_write) {
        caches_[static_cast<std::size_t>(dirty_owner)].set_state(line,
                                                                 Mesi::kInvalid);
        filter_clear(dirty_owner, line);
        gen_bump(dirty_owner);
        if (invalidations_ != nullptr) invalidations_->inc();
        fill_state = Mesi::kModified;
      } else {
        caches_[static_cast<std::size_t>(dirty_owner)].set_state(line,
                                                                 Mesi::kShared);
        gen_bump(dirty_owner);  // M -> S: the owner's store proof is void
        fill_state = Mesi::kShared;
      }
    } else {
      lat += cfg_.mem_latency;
      if (is_write) {
        for (const auto& [c, s] : scratch_peers_) {
          (void)s;
          caches_[static_cast<std::size_t>(c)].set_state(line, Mesi::kInvalid);
          gen_bump(c);
          if (invalidations_ != nullptr) invalidations_->inc();
        }
        // One map operation clears every peer bit (scratch_mask_ is exactly
        // the peers collected above when the filter is on).
        if (snoop_filter_ && scratch_mask_ != 0)
          presence_.clear_bits(line, scratch_mask_);
        fill_state = Mesi::kModified;
      } else if (shared_elsewhere) {
        // Other clean copies downgrade any E to S.
        for (const auto& [c, s] : scratch_peers_)
          if (s == Mesi::kExclusive) {
            caches_[static_cast<std::size_t>(c)].set_state(line, Mesi::kShared);
            gen_bump(c);  // E -> S: the peer's silent-upgrade proof is void
          }
        fill_state = Mesi::kShared;
      } else {
        fill_state = Mesi::kExclusive;
      }
    }
    // The requester's presence bit was already set by collect_peers'
    // fetch_or; only the displaced victim needs a filter update.
    const auto victim = cache.insert(line, fill_state);
    if (victim.has_value()) {
      filter_clear(cpu, victim->addr);
      teach_victim = victim->addr;
    }
    if (victim.has_value() && victim->state == Mesi::kModified) {
      // Write the victim back; occupies the bus but completes asynchronously
      // with respect to the requester.
      (void)bus_acquire(bus_free_, cfg_.bus_occupancy);
    }
  }
  if (ev.ref_type == RefType::kSync) lat += cfg_.sync_overhead;
  if (filter_on_) {
    // Teach the frontend mirror what this reference proved: the line it
    // left resident (post-access state) and the own-L1 line it displaced.
    core::L1Teach& t = teach_[static_cast<std::size_t>(cpu)];
    t.vpage = ev.addr >> kPageShift;
    t.ppage = tr.paddr >> kPageShift;
    t.line = line;
    t.victim = teach_victim;
    t.victim2 = core::L1Teach::kNone;
    t.state = static_cast<std::uint8_t>(cache.probe(line));
    t.gen = l1_filter_gen(cpu);
#ifndef NDEBUG
    // Absorbed-hint cross-check: the frontend predicted exactly l1_hit for
    // this reference under (cpu, generation); if that proof still holds at
    // replay time, the literal model must agree.
    if (ev.arg[0] == 1 && ev.arg[2] == static_cast<std::uint64_t>(cpu) &&
        ev.arg[1] == t.gen)
      COMPASS_CHECK_MSG(lat == cfg_.l1_hit,
                        "L1 filter absorbed a non-hit: cpu "
                            << cpu << " addr 0x" << std::hex << ev.addr
                            << std::dec << " latency " << lat);
#endif
  }
  return lat;
}

void SimpleMachine::lane_b_classify(CpuId cpu, ProcId proc,
                                    std::span<const core::Event> batch,
                                    core::LaneBClass& out) const {
  classify_l1_batch(vm_, caches_[static_cast<std::size_t>(cpu)], proc, batch,
                    cfg_.l1_hit, cfg_.sync_overhead, out);
}

Cycles SimpleMachine::lane_b_apply(CpuId cpu, const core::Event& ev,
                                   const core::LaneBVerdict& v) {
  // Proven own-L1 hit: replay lookup()'s hit side effects at the resolved
  // way. Never touches the bus horizon, the snoop filter, gens_ or any peer
  // cache — that confinement is what makes applies safe concurrently with
  // the window's serial tier (see line_shard.h).
  Cache& cache = caches_[static_cast<std::size_t>(cpu)];
  cache.touch_hit(v.way);
  if (v.op == core::LaneBOp::kTouchToM)
    cache.set_state_at(v.way, Mesi::kModified);
  (void)ev;
  return v.lat;
}

void SimpleMachine::on_context_switch(CpuId cpu, ProcId, ProcId) {
  // Cache contents persist across context switches, but the outgoing
  // process's frontend mirror must not keep absorbing against a cache that
  // the incoming process is about to mutate without teaching it.
  gen_bump(cpu);
}

void FlatMemory::ckpt_save(util::StateSink& sink) const {
  // Latency is config; the only run state is the unflushed reference tally
  // (flush_stats runs in the run() epilogue, after any mid-run snapshot).
  sink.varint(pending_refs_.load(std::memory_order_relaxed));
}

void FlatMemory::ckpt_load(util::StateSource& src) {
  pending_refs_.store(src.varint(), std::memory_order_relaxed);
}

void SimpleMachine::ckpt_save(util::StateSink& sink) const {
  sink.varint(caches_.size());
  for (const Cache& c : caches_) c.ckpt_save(sink);
  sink.varint(bus_free_);
  presence_.ckpt_save(sink);
  for (const std::uint64_t g : gens_) sink.varint(g);
  for (const core::L1Teach& t : teach_) ckpt_save_teach(sink, t);
}

void SimpleMachine::ckpt_load(util::StateSource& src) {
  if (src.varint() != caches_.size())
    throw util::StateError("SimpleMachine CPU count mismatch in checkpoint");
  for (Cache& c : caches_) c.ckpt_load(src);
  bus_free_ = src.varint();
  presence_.ckpt_load(src);
  for (std::uint64_t& g : gens_) g = src.varint();
  for (core::L1Teach& t : teach_) t = ckpt_load_teach(src);
}

}  // namespace compass::mem
