// Line-slice hashing and the read-only classify kernels for the sharded
// lane-B backend path (core/memory_system.h "sharded lane B", backend.cpp
// lane_b_window).
//
// A cache line's *slice* is one of 64 hash buckets of its physical line
// address. Classification records each window item's footprint as a 64-bit
// slice bitmask; the backend's plan keeps an item in the parallel tier only
// when its slices are disjoint from every serially-executed item's
// footprint, so the two tiers can never alias a line: every cross-CPU
// mutation a serial reference performs targets the line it accesses, and
// that line's slice bit is, by construction, excluded from every parallel
// footprint.
#pragma once

#include <cstdint>
#include <span>

#include "core/event.h"
#include "core/memory_system.h"
#include "mem/cache.h"
#include "mem/vm.h"

namespace compass::mem {

inline constexpr int kLineSliceCount = 64;

/// Slice bit of a physical line address: a splitmix64-style mix of the line
/// number, so neighboring lines land in unrelated slices and a strided
/// footprint does not collapse onto a few bits.
inline std::uint64_t line_slice_bit(PhysAddr line) {
  std::uint64_t x = line;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return 1ull << (x & 63);
}

/// Classify `batch` against `cache` (the CPU's own L1) for the one-level
/// snooping machine. `l1_hit`/`sync_overhead` are the machine's hit and
/// kSync charges. Strictly read-only; fills `out` per the LaneBClass
/// contract (verdicts only when every reference is a proven-clean hit, the
/// slice footprint always accumulated while translations resolve).
void classify_l1_batch(const Vm& vm, const Cache& cache, ProcId proc,
                       std::span<const core::Event> batch, Cycles l1_hit,
                       Cycles sync_overhead, core::LaneBClass& out);

/// Two-level variant (CC-NUMA machine): a clean write hit in Exclusive also
/// resolves the matching L2 way so the apply can propagate Modified without
/// a tag scan (inclusive hierarchy).
void classify_l1l2_batch(const Vm& vm, const Cache& l1, const Cache& l2,
                         ProcId proc, std::span<const core::Event> batch,
                         Cycles l1_hit, Cycles sync_overhead,
                         core::LaneBClass& out);

}  // namespace compass::mem
