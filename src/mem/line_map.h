// Flat open-addressing hash map from cache-line address to a 64-bit
// sharer bitmask — the storage behind SimpleMachine's snoop filter.
//
// The per-reference hot path updates this map on every insert, eviction and
// invalidation, so a node-based std::unordered_map (malloc/free per entry,
// pointer chase per lookup) costs more than the O(P) probe sweep the filter
// is meant to replace. This map keeps keys and values in two contiguous
// pow2-sized arrays with linear probing and backward-shift deletion: no
// allocation in steady state, one multiplicative hash plus a short linear
// scan per operation.
//
// Invariant: values are never zero — clear_bits erases the entry when the
// mask empties, so size() counts lines with at least one sharer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/state_io.h"

namespace compass::mem {

class LineMap {
 public:
  explicit LineMap(std::size_t initial_capacity = 1024) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
  }

  /// Bitmask stored for `key`, or 0 when absent.
  std::uint64_t get(std::uint64_t key) const {
    std::size_t i = home(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    return 0;
  }

  /// OR `bits` into the mask for `key`, inserting the entry if absent;
  /// returns the previous mask (0 when absent). One table walk serves both
  /// the read and the update — the hot path's "who shares this line, and
  /// mark me a sharer" is a single operation.
  std::uint64_t fetch_or(std::uint64_t key, std::uint64_t bits) {
    COMPASS_CHECK(key != kEmpty && bits != 0);
    if ((size_ + 1) * 2 > keys_.size()) grow();
    std::size_t i = home(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        const std::uint64_t old = vals_[i];
        vals_[i] |= bits;
        return old;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = bits;
    ++size_;
    return 0;
  }

  /// OR `bits` into the mask for `key`, inserting the entry if absent.
  void set_bits(std::uint64_t key, std::uint64_t bits) {
    (void)fetch_or(key, bits);
  }

  /// Replace the value for `key` (insert if absent). Unlike set_bits this
  /// does not OR — callers storing small enums (MESI codes) need downgrade
  /// writes (E -> S) to land exactly. `value` must be non-zero; use erase()
  /// to remove.
  void set(std::uint64_t key, std::uint64_t value) {
    COMPASS_CHECK(key != kEmpty && value != 0);
    if ((size_ + 1) * 2 > keys_.size()) grow();
    std::size_t i = home(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        vals_[i] = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
  }

  /// Remove `key` entirely; absent keys are a no-op.
  void erase(std::uint64_t key) {
    std::size_t i = home(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        erase_slot(i);
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Drop every entry, keeping the current capacity.
  void clear() {
    if (size_ == 0) return;
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    std::fill(vals_.begin(), vals_.end(), 0);
    size_ = 0;
  }

  /// Clear `bits` from the mask for `key`; erases the entry when the mask
  /// reaches zero. A key with no entry is a no-op.
  void clear_bits(std::uint64_t key, std::uint64_t bits) {
    std::size_t i = home(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        vals_[i] &= ~bits;
        if (vals_[i] == 0) erase_slot(i);
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Number of keys with a non-zero mask.
  std::size_t size() const { return size_; }

  /// Serialize entries in sorted key order (canonical form — the physical
  /// slot layout is probe-history-dependent and behaviorally irrelevant).
  void ckpt_save(util::StateSink& sink) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    entries.reserve(size_);
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != kEmpty) entries.emplace_back(keys_[i], vals_[i]);
    std::sort(entries.begin(), entries.end());
    sink.varint(entries.size());
    for (const auto& [k, v] : entries) {
      sink.varint(k);
      sink.varint(v);
    }
  }

  void ckpt_load(util::StateSource& src) {
    clear();
    const std::uint64_t n = src.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t k = src.varint();
      set(k, src.varint());
    }
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::size_t home(std::uint64_t key) const {
    // Fibonacci hashing; line addresses share low zero bits, so mix before
    // masking.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  /// Backward-shift deletion: re-slot the cluster after the hole so probe
  /// chains stay unbroken (no tombstones).
  void erase_slot(std::size_t i) {
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (keys_[j] == kEmpty) break;
      const std::size_t k = home(keys_[j]);
      // Skip entries whose home lies cyclically in (i, j] — they are
      // already as close to home as the hole allows.
      const bool in_between = i < j ? (i < k && k <= j) : (i < k || k <= j);
      if (!in_between) {
        keys_[i] = keys_[j];
        vals_[i] = vals_[j];
        i = j;
      }
    }
    keys_[i] = kEmpty;
    vals_[i] = 0;
    --size_;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint64_t> old_vals = std::move(vals_);
    const std::size_t cap = old_keys.size() * 2;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
    for (std::size_t s = 0; s < old_keys.size(); ++s)
      if (old_keys[s] != kEmpty) set_bits(old_keys[s], old_vals[s]);
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace compass::mem
