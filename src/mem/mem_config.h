// Configuration structures for the target memory-system models.
#pragma once

#include <cstdint>

#include "core/types.h"
#include "util/check.h"

namespace compass::mem {

/// Physical address in the simulated machine.
using PhysAddr = std::uint64_t;

inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;

/// Virtual address map of a simulated process. Private ranges are
/// per-process (distinct page tables); the shared-segment and kernel ranges
/// are mapped identically in every process.
inline constexpr Addr kShmBase = 0x7000'0000'0000ull;
inline constexpr Addr kKernelBase = 0xF000'0000'0000ull;

inline bool is_kernel_addr(Addr va) { return va >= kKernelBase; }
inline bool is_shm_addr(Addr va) { return va >= kShmBase && va < kKernelBase; }

/// Geometry of one cache level.
struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t assoc = 4;
  std::uint32_t line_size = 64;

  std::uint32_t num_sets() const { return size_bytes / (assoc * line_size); }

  void validate() const {
    COMPASS_CHECK_MSG(line_size >= 8 && (line_size & (line_size - 1)) == 0,
                      "line_size must be a power of two >= 8");
    COMPASS_CHECK_MSG(assoc >= 1, "associativity must be >= 1");
    COMPASS_CHECK_MSG(size_bytes % (assoc * line_size) == 0,
                      "cache size must be a whole number of sets");
    COMPASS_CHECK_MSG(num_sets() >= 1, "cache must have at least one set");
  }
};

/// Page placement policy for assigning home nodes to physical pages
/// (paper §3.3.1): at page creation (round-robin / block) or at first
/// reference (first-touch).
enum class PlacementPolicy : std::uint8_t {
  kRoundRobin,
  kBlock,
  kFirstTouch,
};

inline constexpr std::string_view to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kBlock: return "block";
    case PlacementPolicy::kFirstTouch: return "first-touch";
  }
  return "?";
}

/// "The simplest backend consists of only a one-level cache per processor":
/// per-CPU L1s kept coherent by a MESI snooping bus over a shared memory.
struct SimpleMachineConfig {
  CacheConfig l1{32 * 1024, 4, 64};
  Cycles l1_hit = 1;
  Cycles mem_latency = 40;        ///< DRAM access after bus grant
  Cycles bus_occupancy = 8;       ///< bus cycles held per transaction
  Cycles cache_to_cache = 24;     ///< dirty intervention latency
  Cycles upgrade_latency = 10;    ///< S->M invalidation transaction
  Cycles page_fault = 500;        ///< soft fault on first touch
  Cycles sync_overhead = 6;       ///< extra cycles for atomic RMW
  /// Smallest CPU count at which the machine-level snoop filter (exact
  /// per-line sharer bitmask) replaces the literal probe sweep on a miss.
  /// The filter is simulation-invisible either way — same cycles, same
  /// counters — so this is purely a host-cost tradeoff: below the
  /// threshold the packed-metadata sweep over P-1 small tag arrays is
  /// cheaper than the filter's hash-map maintenance; above it the O(P)
  /// sweep dominates. The bitmask caps the filter at 64 CPUs; larger
  /// machines always use the sweep.
  int snoop_filter_min_cpus = 8;

  void validate() const {
    l1.validate();
    COMPASS_CHECK_MSG(snoop_filter_min_cpus >= 2,
                      "snoop filter needs at least one potential peer");
  }
};

/// "The most complex backend models all the other system components along
/// with a two-level cache per processor": CC-NUMA with per-node directories,
/// memory controllers and an interconnection network.
struct NumaMachineConfig {
  CacheConfig l1{16 * 1024, 2, 64};
  CacheConfig l2{512 * 1024, 8, 64};
  Cycles l1_hit = 1;
  Cycles l2_hit = 8;
  Cycles dir_lookup = 20;         ///< directory/coherence controller access
  Cycles mem_access = 50;         ///< node memory controller service time
  Cycles net_base = 16;           ///< per-message network launch latency
  Cycles net_per_hop = 10;
  double net_bytes_per_cycle = 8; ///< link bandwidth for the data payload
  Cycles page_fault = 500;
  Cycles sync_overhead = 6;
  PlacementPolicy placement = PlacementPolicy::kFirstTouch;

  void validate() const {
    l1.validate();
    l2.validate();
    COMPASS_CHECK_MSG(l2.line_size == l1.line_size,
                      "L1/L2 line sizes must match");
    COMPASS_CHECK(net_bytes_per_cycle > 0);
  }
};

}  // namespace compass::mem
