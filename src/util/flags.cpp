#include "util/flags.h"

#include <sstream>

#include "util/check.h"

namespace compass::util {

Flags::Flags(int argc, const char* const* argv,
             std::map<std::string, std::string> defaults,
             std::map<std::string, std::string> help)
    : values_(std::move(defaults)), help_(std::move(help)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare boolean flag
    }
    if (!values_.contains(name))
      throw ConfigError("unknown flag --" + name);
    values_[name] = std::move(value);
  }
}

std::string Flags::get(std::string_view name) const {
  const auto it = values_.find(std::string(name));
  COMPASS_CHECK_MSG(it != values_.end(), "no such flag --" << name);
  return it->second;
}

std::int64_t Flags::get_int(std::string_view name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t r = std::stoll(v, &pos, 0);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + std::string(name) + " is not an integer: " + v);
  }
}

double Flags::get_double(std::string_view name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double r = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + std::string(name) + " is not a number: " + v);
  }
}

bool Flags::get_bool(std::string_view name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("flag --" + std::string(name) + " is not a boolean: " + v);
}

std::string Flags::usage(std::string_view program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, def] : values_) {
    os << "  --" << name << " (default: " << def << ")";
    if (const auto it = help_.find(name); it != help_.end())
      os << "  " << it->second;
    os << '\n';
  }
  return os.str();
}

}  // namespace compass::util
