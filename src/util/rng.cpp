#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace compass::util {

Zipf::Zipf(std::size_t n, double theta) {
  COMPASS_CHECK(n > 0);
  COMPASS_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t Zipf::next(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                   : it - cdf_.begin());
}

}  // namespace compass::util
