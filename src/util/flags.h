// Minimal command-line flag parsing for examples and bench harnesses.
//
// Supports --name=value and --name value forms plus --help generation.
// Deliberately tiny: COMPASS binaries are configured programmatically via
// SimConfig; flags only override a handful of experiment knobs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace compass::util {

class Flags {
 public:
  /// Parse argv. Unknown flags throw ConfigError; positional args collect.
  Flags(int argc, const char* const* argv,
        std::map<std::string, std::string> defaults,
        std::map<std::string, std::string> help = {});

  std::string get(std::string_view name) const;
  std::int64_t get_int(std::string_view name) const;
  double get_double(std::string_view name) const;
  bool get_bool(std::string_view name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }
  /// Render the --help text (flag, default, description).
  std::string usage(std::string_view program) const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> help_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace compass::util
