// Byte-oriented serialization primitives for checkpoint state sections.
//
// StateSink appends scalars/blobs to a growable byte vector; StateSource is
// a bounds-checked cursor modeled on trace/'s ByteReader: every overrun or
// malformed varint throws StateError instead of reading past the buffer, so
// a truncated or corrupt checkpoint fails loudly rather than installing
// garbage simulator state. Lives in util/ so core/mem/os/dev state dumpers
// depend only on util, keeping src/ckpt/ free to link sim+trace on top.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace compass::util {

/// Any malformed-checkpoint condition: truncation, corrupt varint,
/// bad magic/version/hash, section mismatch.
class StateError : public SimError {
 public:
  explicit StateError(const std::string& what) : SimError(what) {}
};

/// FNV-1a over a byte span (section and page fingerprints).
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only byte-vector writer. All integers go out as LEB128 varints
/// unless a fixed-width little-endian form is requested explicitly.
class StateSink {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u64le(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u32le(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void raw(std::span<const std::uint8_t> b) {
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  /// Length-prefixed byte blob.
  void blob(std::span<const std::uint8_t> b) {
    varint(b.size());
    raw(b);
  }

  /// Length-prefixed string.
  void str(std::string_view s) {
    varint(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked cursor over serialized state. Mirrors trace::ByteReader's
/// rejection discipline (truncation + non-canonical varints throw).
class StateSource {
 public:
  explicit StateSource(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t pos() const { return pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    if (pos_ >= bytes_.size())
      throw StateError("checkpoint truncated at byte " + std::to_string(pos_));
    return bytes_[pos_++];
  }

  std::uint64_t u64le() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  std::uint32_t u32le() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        // Reject non-canonical 10-byte encodings overflowing 64 bits.
        if (shift == 63 && b > 1)
          throw StateError("corrupt varint at byte " + std::to_string(pos_));
        return v;
      }
    }
    throw StateError("corrupt varint at byte " + std::to_string(pos_));
  }

  std::int64_t svarint() {
    const std::uint64_t v = varint();
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
  }

  void raw(std::span<std::uint8_t> out) {
    if (bytes_.size() - pos_ < out.size())
      throw StateError("checkpoint truncated at byte " + std::to_string(pos_));
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = bytes_[pos_ + i];
    pos_ += out.size();
  }

  /// `n` raw bytes; the returned span aliases the source buffer.
  std::span<const std::uint8_t> bytes(std::uint64_t n) {
    if (bytes_.size() - pos_ < n)
      throw StateError("checkpoint truncated at byte " + std::to_string(pos_));
    const std::span<const std::uint8_t> out = bytes_.subspan(
        pos_, static_cast<std::size_t>(n));
    pos_ += n;
    return out;
  }

  /// Length-prefixed blob; the returned span aliases the source buffer.
  std::span<const std::uint8_t> blob() { return bytes(varint()); }

  std::string str() {
    const std::span<const std::uint8_t> b = blob();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace compass::util
