// Deterministic pseudo-random number generation for workload generators.
//
// All COMPASS workloads (TPC-C-like keys, SPECWeb-like file picks, disk
// layouts) draw from this RNG so that a (config, seed) pair fully determines
// the simulation. xoshiro256** — fast, high quality, trivially seedable.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace compass::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-seed via splitmix64 so nearby seeds give uncorrelated streams.
  void reseed(std::uint64_t seed) {
    auto splitmix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = splitmix();
  }

  /// Raw generator state, for checkpointing stream positions.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    COMPASS_CHECK(bound != 0);
    // Lemire's debiased multiply-shift reduction.
    const auto x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    COMPASS_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// TPC-style NURand non-uniform random in [lo, hi].
  std::int64_t nurand(std::int64_t a, std::int64_t lo, std::int64_t hi) {
    const std::int64_t c = a / 2;
    return (((next_in(0, a) | next_in(lo, hi)) + c) % (hi - lo + 1)) + lo;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf-distributed integer sampler over [0, n); used by the SPECWeb-like
/// fileset picker and hot-page generators. Precomputes the harmonic table.
class Zipf {
 public:
  Zipf(std::size_t n, double theta);
  /// Draw the next rank in [0, n).
  std::size_t next(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace compass::util
