// Invariant-checking macros used across COMPASS.
//
// COMPASS_CHECK is always on (release included): simulator invariants guard
// against silent corruption of simulated time or protocol state, which would
// invalidate every downstream statistic. Violations throw util::SimError so
// tests can assert on misuse and long simulations fail loudly with context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace compass::util {

/// Base error for all simulator failures (protocol misuse, bad config,
/// invariant violations). Carries the human-readable reason in what().
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Config-time validation failure (bad parameter combination).
class ConfigError : public SimError {
 public:
  explicit ConfigError(const std::string& what) : SimError(what) {}
};

/// Frontend/backend protocol violation (e.g. double-post on an event port).
class ProtocolError : public SimError {
 public:
  explicit ProtocolError(const std::string& what) : SimError(what) {}
};

/// Simulated-OS level failure surfaced to workload code as an errno-like
/// result rather than thrown; thrown only for kernel invariant violations.
class KernelPanic : public SimError {
 public:
  explicit KernelPanic(const std::string& what) : SimError(what) {}
};

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "COMPASS_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}

}  // namespace compass::util

#define COMPASS_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) [[unlikely]]                                                \
      ::compass::util::throw_check_failure(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define COMPASS_CHECK_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      std::ostringstream compass_check_os_;                                  \
      compass_check_os_ << msg; /* NOLINT */                                 \
      ::compass::util::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                           compass_check_os_.str());         \
    }                                                                        \
  } while (0)
