#include "stats/json.h"

#include <cstdio>

#include "util/check.h"

namespace compass::stats {

StatsSnapshot make_snapshot(Cycles cycles, const StatsRegistry& registry,
                            const TimeBreakdown& breakdown) {
  StatsSnapshot snap;
  snap.cycles = cycles;
  for (const auto& [name, counter] : registry.counters())
    snap.counters[name] = counter.value();
  for (int c = 0; c < breakdown.num_cpus(); ++c) {
    const CpuTime& t = breakdown.cpu(c);
    std::array<std::uint64_t, 4> row{};
    for (std::size_t m = 0; m < 4; ++m)
      row[m] = static_cast<std::uint64_t>(t.by_mode[m]);
    snap.cpu_time.push_back(row);
  }
  for (const auto& [name, hist] : registry.histograms())
    snap.histograms[name] =
        HistSummary{hist.count(), hist.sum(), hist.min(), hist.max()};
  return snap;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const StatsSnapshot& snap) {
  std::string out;
  out += "{\n  \"cycles\": " + std::to_string(snap.cycles) + ",\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"cpu_time\": [";
  for (std::size_t c = 0; c < snap.cpu_time.size(); ++c) {
    out += c == 0 ? "\n" : ",\n";
    out += "    [";
    for (std::size_t m = 0; m < 4; ++m) {
      if (m != 0) out += ", ";
      out += std::to_string(snap.cpu_time[c][m]);
    }
    out += "]";
  }
  out += snap.cpu_time.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Minimal recursive-descent parser for the subset to_json emits: objects,
/// arrays, strings, unsigned integers.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        if (e == 'u') {
          if (pos_ + 4 > text_.size()) fail("bad unicode escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad unicode escape");
          }
          out += static_cast<char>(v);  // snapshot names are ASCII
        } else {
          out += e;
        }
      } else {
        out += c;
      }
    }
  }

  std::uint64_t integer() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      fail("expected integer");
    std::uint64_t v = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    return v;
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

  [[noreturn]] void fail(const std::string& what) {
    throw util::SimError("stats json parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatsSnapshot parse_stats_json(const std::string& text) {
  StatsSnapshot snap;
  JsonCursor c(text);
  c.expect('{');
  bool first_key = true;
  std::map<std::string, bool> seen_top;
  while (!c.try_consume('}')) {
    if (!first_key) c.expect(',');
    first_key = false;
    const std::string key = c.string();
    // A duplicate key means one of the two values silently wins — reject it
    // rather than hand golden comparisons a half-overwritten snapshot.
    if (!seen_top.emplace(key, true).second)
      c.fail("duplicate key '" + key + "'");
    c.expect(':');
    if (key == "cycles") {
      snap.cycles = static_cast<Cycles>(c.integer());
    } else if (key == "counters") {
      c.expect('{');
      bool first = true;
      while (!c.try_consume('}')) {
        if (!first) c.expect(',');
        first = false;
        const std::string name = c.string();
        c.expect(':');
        const std::uint64_t v = c.integer();
        if (!snap.counters.emplace(name, v).second)
          c.fail("duplicate counter '" + name + "'");
      }
    } else if (key == "cpu_time") {
      c.expect('[');
      while (!c.try_consume(']')) {
        if (!snap.cpu_time.empty()) c.expect(',');
        c.expect('[');
        std::array<std::uint64_t, 4> row{};
        for (std::size_t m = 0; m < 4; ++m) {
          if (m != 0) c.expect(',');
          row[m] = c.integer();
        }
        c.expect(']');
        snap.cpu_time.push_back(row);
      }
    } else if (key == "histograms") {
      c.expect('{');
      bool first = true;
      while (!c.try_consume('}')) {
        if (!first) c.expect(',');
        first = false;
        const std::string name = c.string();
        c.expect(':');
        c.expect('{');
        HistSummary h;
        bool hfirst = true;
        std::map<std::string, bool> seen_fields;
        while (!c.try_consume('}')) {
          if (!hfirst) c.expect(',');
          hfirst = false;
          const std::string field = c.string();
          if (!seen_fields.emplace(field, true).second)
            c.fail("duplicate histogram field '" + field + "'");
          c.expect(':');
          const std::uint64_t v = c.integer();
          if (field == "count") h.count = v;
          else if (field == "sum") h.sum = v;
          else if (field == "min") h.min = v;
          else if (field == "max") h.max = v;
          else c.fail("unknown histogram field '" + field + "'");
        }
        if (!snap.histograms.emplace(name, h).second)
          c.fail("duplicate histogram '" + name + "'");
      }
    } else {
      c.fail("unknown key '" + key + "'");
    }
  }
  c.finish();
  return snap;
}

void write_json_file(const std::string& path, const StatsSnapshot& snap) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw util::SimError("cannot open stats json for writing: " + path);
  const std::string text = to_json(snap);
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (n != text.size() || rc != 0)
    throw util::SimError("short write to stats json: " + path);
}

StatsSnapshot read_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw util::SimError("cannot open stats json: " + path);
  std::string text;
  char chunk[16384];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) text.append(chunk, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw util::SimError("read error on stats json: " + path);
  return parse_stats_json(text);
}

}  // namespace compass::stats
