// Named counters and histograms for simulator statistics.
//
// All statistics in COMPASS are updated from the (single) backend thread, so
// these are plain integers — no atomics. Frontend threads never touch them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.h"

namespace compass::stats {

/// A monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Log2-bucketed histogram of nonnegative samples (latencies, sizes).
/// Bucket i covers [2^(i-1), 2^i) with bucket 0 covering {0}.
class Histogram {
 public:
  Histogram() : buckets_(kBuckets, 0) {}

  void record(std::uint64_t sample);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Approximate quantile (within the containing power-of-two bucket).
  std::uint64_t quantile(double q) const;
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  void reset();

 private:
  static constexpr std::size_t kBuckets = 65;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// A registry of named counters/histograms; modules register their stats here
/// so reports can enumerate everything without compile-time coupling.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Value of a named counter, 0 if it was never registered.
  std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  void reset_all();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace compass::stats
