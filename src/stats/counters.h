// Named counters and histograms for simulator statistics.
//
// All statistics in COMPASS are updated from the (single) backend thread, so
// these are plain integers — no atomics. Frontend threads never touch them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/state_io.h"

namespace compass::stats {

/// A monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }
  /// Checkpoint install only: overwrite with the snapshotted value.
  void set(std::uint64_t v) { value_ = v; }

 private:
  std::uint64_t value_ = 0;
};

/// Log2-bucketed histogram of nonnegative samples (latencies, sizes).
/// Bucket i covers [2^(i-1), 2^i) with bucket 0 covering {0}.
class Histogram {
 public:
  Histogram() : buckets_(kBuckets, 0) {}

  void record(std::uint64_t sample);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Approximate quantile (within the containing power-of-two bucket).
  std::uint64_t quantile(double q) const;
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  void reset();

  void ckpt_save(util::StateSink& sink) const {
    sink.varint(count_);
    sink.varint(sum_);
    sink.varint(min_);
    sink.varint(max_);
    std::size_t nonzero = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      if (buckets_[i] != 0) ++nonzero;
    sink.varint(nonzero);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      sink.varint(i);
      sink.varint(buckets_[i]);
    }
  }

  void ckpt_load(util::StateSource& src) {
    reset();
    count_ = src.varint();
    sum_ = src.varint();
    min_ = src.varint();
    max_ = src.varint();
    const std::uint64_t nonzero = src.varint();
    for (std::uint64_t i = 0; i < nonzero; ++i) {
      const std::uint64_t idx = src.varint();
      if (idx >= buckets_.size())
        throw util::StateError("histogram bucket index out of range");
      buckets_[idx] = src.varint();
    }
  }

 private:
  static constexpr std::size_t kBuckets = 65;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// A registry of named counters/histograms; modules register their stats here
/// so reports can enumerate everything without compile-time coupling.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Value of a named counter, 0 if it was never registered.
  std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  void reset_all();

  /// Serialize every named counter value and histogram.
  void ckpt_save(util::StateSink& sink) const {
    sink.varint(counters_.size());
    for (const auto& [name, c] : counters_) {
      sink.str(name);
      sink.varint(c.value());
    }
    sink.varint(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      sink.str(name);
      h.ckpt_save(sink);
    }
  }

  /// Install a snapshot wholesale: named entries take the snapshotted
  /// values, entries registered since (warp-time registrations) are zeroed.
  /// std::map nodes are stable, so cached Counter*/Histogram* pointers held
  /// by hot paths stay valid across the install.
  void ckpt_load(util::StateSource& src) {
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, h] : histograms_) h.reset();
    const std::uint64_t nc = src.varint();
    for (std::uint64_t i = 0; i < nc; ++i) {
      const std::string name = src.str();
      counters_[name].set(src.varint());
    }
    const std::uint64_t nh = src.varint();
    for (std::uint64_t i = 0; i < nh; ++i) {
      const std::string name = src.str();
      histograms_[name].ckpt_load(src);
    }
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace compass::stats
