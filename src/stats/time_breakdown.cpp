#include "stats/time_breakdown.h"

#include <iomanip>
#include <sstream>

namespace compass::stats {

CpuTime TimeBreakdown::total() const {
  CpuTime t;
  for (const auto& c : cpus_)
    for (std::size_t m = 0; m < t.by_mode.size(); ++m) t.by_mode[m] += c.by_mode[m];
  return t;
}

TimeShares TimeBreakdown::shares() const {
  const CpuTime t = total();
  const auto busy = static_cast<double>(t.busy());
  TimeShares s;
  if (busy <= 0.0) return s;
  s.user = 100.0 * static_cast<double>(t[ExecMode::kUser]) / busy;
  s.kernel = 100.0 * static_cast<double>(t[ExecMode::kKernel]) / busy;
  s.interrupt = 100.0 * static_cast<double>(t[ExecMode::kInterrupt]) / busy;
  s.os_total = s.kernel + s.interrupt;
  return s;
}

std::string TimeBreakdown::to_string(const std::string& label) const {
  const TimeShares s = shares();
  const CpuTime t = total();
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << label << ": user " << s.user << "%  OS " << s.os_total << "% (interrupt "
     << s.interrupt << "%, kernel " << s.kernel << "%)  busy cycles " << t.busy()
     << "  idle cycles " << t[ExecMode::kIdle];
  return os.str();
}

void TimeBreakdown::reset() {
  for (auto& c : cpus_) c = CpuTime{};
}

}  // namespace compass::stats
