// Per-CPU execution-time accounting by mode (user / kernel / interrupt /
// idle) — the machinery behind the paper's Table 1.
//
// The backend attributes every simulated cycle of every CPU to exactly one
// mode: compute intervals and memory stalls are charged to the mode of the
// event that consumed them; gaps with no scheduled process are idle.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/check.h"
#include "util/state_io.h"

namespace compass::stats {

/// Accumulated cycles per mode for one CPU.
struct CpuTime {
  std::array<Cycles, 4> by_mode{};  // indexed by ExecMode

  Cycles& operator[](ExecMode m) { return by_mode[static_cast<std::size_t>(m)]; }
  Cycles operator[](ExecMode m) const { return by_mode[static_cast<std::size_t>(m)]; }
  Cycles busy() const {
    return by_mode[0] + by_mode[1] + by_mode[2];
  }
  Cycles total() const { return busy() + by_mode[3]; }
};

/// Mode-split totals as fractions of busy (non-idle) CPU time. This matches
/// the paper's Table 1, which reports percentages of "total CPU time which
/// excludes wait time due to disk IO".
struct TimeShares {
  double user = 0.0;
  double os_total = 0.0;   ///< kernel + interrupt
  double interrupt = 0.0;
  double kernel = 0.0;
};

class TimeBreakdown {
 public:
  explicit TimeBreakdown(int num_cpus) : cpus_(static_cast<std::size_t>(num_cpus)) {
    COMPASS_CHECK(num_cpus > 0);
  }

  /// Charge `cycles` on `cpu` to `mode`.
  void charge(CpuId cpu, ExecMode mode, Cycles cycles) {
    COMPASS_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < cpus_.size());
    cpus_[static_cast<std::size_t>(cpu)][mode] += cycles;
  }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  const CpuTime& cpu(CpuId c) const { return cpus_.at(static_cast<std::size_t>(c)); }

  /// Sum over all CPUs.
  CpuTime total() const;

  /// Percent shares of busy time across all CPUs (Table 1 semantics).
  TimeShares shares() const;

  /// Render a Table-1-style breakdown block.
  std::string to_string(const std::string& label) const;

  void reset();

  void ckpt_save(util::StateSink& sink) const {
    sink.varint(cpus_.size());
    for (const CpuTime& ct : cpus_)
      for (const Cycles c : ct.by_mode) sink.varint(c);
  }

  void ckpt_load(util::StateSource& src) {
    if (src.varint() != cpus_.size())
      throw util::StateError("time-breakdown CPU count mismatch");
    for (CpuTime& ct : cpus_)
      for (Cycles& c : ct.by_mode) c = src.varint();
  }

 private:
  std::vector<CpuTime> cpus_;
};

}  // namespace compass::stats
